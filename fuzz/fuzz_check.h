#ifndef RADIX_FUZZ_FUZZ_CHECK_H_
#define RADIX_FUZZ_FUZZ_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Harness-side assertion: a failed property is a finding, reported by
/// crashing so libFuzzer saves the input (and the replay binary reds the
/// ctest). Distinct from RADIX_CHECK so a harness failure is attributable
/// to the *oracle disagreeing*, not to a library-internal invariant.
#define FUZZ_CHECK(cond, what)                                          \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "FUZZ_CHECK failed at %s:%d: %s (%s)\n",     \
                   __FILE__, __LINE__, #cond, what);                    \
      std::abort();                                                     \
    }                                                                   \
  } while (0)

#endif  // RADIX_FUZZ_FUZZ_CHECK_H_
