// Differential fuzz target: the six Fig. 10 projection strategies over a
// decoded varchar workload, each checked against an O(n^2) nested-loop
// scalar reference (no hash tables, no radix kernels — only the
// deterministic payload functions and the shared per-row digest). The
// decoded dimensions are exactly the workload knobs of paper §4/§5:
// cardinality, hit rate, selectivity, projection widths, and the varchar
// distribution (uniform / Zipf-skewed / empty-heavy), so the fuzzer walks
// the same parameter space as Figs. 10-13 but off the grid the tests pin.

#include <cstdint>
#include <vector>

#include "common/overflow.h"
#include "fuzz_check.h"
#include "fuzz_input.h"
#include "hardware/memory_hierarchy.h"
#include "project/checksum.h"
#include "project/executor.h"
#include "project/strategy.h"
#include "workload/generator.h"

namespace {

using radix::value_t;
using radix::project::JoinStrategy;

/// The nested-loop oracle from tests/varchar_query_test.cc, verbatim in
/// construction: per-row digests over (left fixed, right fixed, left
/// varchar, right varchar), summed mod 2^64.
uint64_t ReferenceChecksum(const radix::workload::JoinWorkload& w,
                           const radix::workload::JoinWorkloadSpec& ws,
                           const radix::project::QueryOptions& opt,
                           size_t* cardinality) {
  uint64_t sum = 0;
  size_t rows = 0;
  const size_t n = w.dsm_left.cardinality();
  for (size_t i = 0; i < n; ++i) {
    const value_t lk = w.dsm_left.key()[i];
    for (size_t j = 0; j < w.dsm_right.cardinality(); ++j) {
      if (w.dsm_right.key()[j] != lk) continue;
      radix::project::RowDigest d;
      for (size_t c = 0; c < opt.pi_left; ++c) {
        d.AddValue(radix::workload::PayloadValue(lk, 1 + c));
      }
      for (size_t c = 0; c < opt.pi_right; ++c) {
        d.AddValue(radix::workload::PayloadValue(lk, 1 + c + 1000));
      }
      for (size_t c = 0; c < opt.pi_varchar_left; ++c) {
        d.AddString(radix::workload::PayloadString(lk, c, ws.varchar));
      }
      for (size_t c = 0; c < opt.pi_varchar_right; ++c) {
        d.AddString(radix::workload::PayloadString(
            lk, radix::workload::kRightVarcharAttrOffset + c, ws.varchar));
      }
      sum = radix::WrapAdd(sum, d.digest());
      ++rows;
    }
  }
  if (cardinality != nullptr) *cardinality = rows;
  return sum;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  radix::fuzz::FuzzInput in(data, size);

  radix::workload::JoinWorkloadSpec ws;
  ws.cardinality = in.SizeInRange(1, 288);
  ws.num_attrs = in.SizeInRange(2, 4);
  const double hit_rates[] = {0.3, 1.0, 3.0};
  ws.hit_rate = hit_rates[in.InRange(0, 2)];
  ws.selectivity = in.Bool() ? 1.0 : 0.5;
  ws.seed = in.U64();
  ws.varchar.num_cols = in.SizeInRange(1, 2);
  ws.varchar.min_len = in.SizeInRange(0, 4);
  ws.varchar.max_len = ws.varchar.min_len + in.SizeInRange(0, 24);
  ws.varchar.zipf_skew = in.Bool() ? 0.0 : 1.2;
  ws.varchar.empty_fraction =
      static_cast<double>(in.InRange(0, 10)) / 10.0;  // includes all-empty
  const radix::workload::JoinWorkload w = radix::workload::MakeJoinWorkload(ws);

  radix::project::QueryOptions opt;
  opt.pi_left = in.SizeInRange(0, ws.num_attrs - 1);
  opt.pi_right = in.SizeInRange(0, ws.num_attrs - 1);
  opt.pi_varchar_left = in.SizeInRange(0, ws.varchar.num_cols);
  opt.pi_varchar_right = in.SizeInRange(0, ws.varchar.num_cols);
  // At least one projected column: the engine's row count rides on the
  // materialized columns (zero-width rows collapse to cardinality 0, see
  // executor.cc), so the all-empty projection list is outside the query
  // contract — and outside Fig. 10's parameter space, which always
  // projects width >= 1.
  if (opt.pi_left + opt.pi_right + opt.pi_varchar_left + opt.pi_varchar_right ==
      0) {
    opt.pi_left = 1;
  }

  size_t expected_rows = 0;
  const uint64_t expected =
      ReferenceChecksum(w, ws, opt, &expected_rows);

  const auto hw = radix::hardware::MemoryHierarchy::Pentium4();
  for (int s = 0; s <= 5; ++s) {
    const auto strategy = static_cast<JoinStrategy>(s);
    radix::project::QueryRun run =
        radix::project::RunQuery(w, strategy, opt, hw);
    FUZZ_CHECK(run.result_cardinality == expected_rows,
               radix::project::JoinStrategyName(strategy));
    FUZZ_CHECK(run.checksum == expected,
               radix::project::JoinStrategyName(strategy));
  }
  return 0;
}
