// Corpus-replay driver: the non-libFuzzer entry point for the fuzz
// harnesses. Linked when RADIX_FUZZER is OFF (any compiler, including
// GCC, where -fsanitize=fuzzer is unavailable), so the same harness
// object file serves two modes:
//   * libFuzzer mode: coverage-guided mutation (Clang, RADIX_FUZZER=ON);
//   * replay mode (this file): run every file in the given corpus
//     directories/files once, plus an optional deterministic pseudo-fuzz
//     smoke (--rand N [--rand-seed S] [--max-len L]) that feeds N
//     PRNG-generated inputs through the harness. Replay is what ctest
//     runs (label `fuzz`): every checked-in seed — including every
//     regression input from a previously found bug — must pass clean
//     under whatever sanitizers the build carries.
//
// Unknown "-..." arguments are ignored so a libFuzzer-style invocation
// (e.g. `harness -runs=1000 corpus/`) degrades to a corpus replay.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <type_traits>
#include <vector>

#include "common/rng.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

// --dump-last PATH: write every input here *before* running it. A
// FUZZ_CHECK abort then leaves the failing bytes on disk, ready to be
// committed under fuzz/corpus/<harness>/ as the regression seed.
std::string g_dump_last;

void RunInput(const uint8_t* data, size_t size) {
  if (!g_dump_last.empty()) {
    std::ofstream out(g_dump_last, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(data),
              static_cast<std::streamsize>(size));
  }
  LLVMFuzzerTestOneInput(data, size);
}

int RunFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.string().c_str());
    return 1;
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  RunInput(bytes.data(), bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  size_t rand_runs = 0;
  uint64_t rand_seed = 1;
  size_t max_len = 512;
  size_t files = 0;
  int rc = 0;

  std::vector<std::string> args(argv + 1, argv + argc);
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto take_value = [&](const char* name, auto* out) {
      if (arg != name || i + 1 >= args.size()) return false;
      *out = static_cast<std::remove_pointer_t<decltype(out)>>(
          std::strtoull(args[++i].c_str(), nullptr, 10));
      return true;
    };
    if (take_value("--rand", &rand_runs)) continue;
    if (take_value("--rand-seed", &rand_seed)) continue;
    if (take_value("--max-len", &max_len)) continue;
    if (arg == "--dump-last" && i + 1 < args.size()) {
      g_dump_last = args[++i];
      continue;
    }
    if (!arg.empty() && arg[0] == '-') continue;  // libFuzzer-style flag

    std::filesystem::path p(arg);
    std::error_code ec;
    if (std::filesystem::is_directory(p, ec)) {
      for (const auto& entry : std::filesystem::directory_iterator(p)) {
        if (!entry.is_regular_file()) continue;
        rc |= RunFile(entry.path());
        ++files;
      }
    } else {
      rc |= RunFile(p);
      ++files;
    }
  }

  // Deterministic pseudo-fuzz: no coverage guidance, but with the
  // structured FuzzInput decoding every random byte string is a valid
  // structured input, so even blind inputs exercise the oracle checks.
  radix::Rng rng(rand_seed);
  for (size_t i = 0; i < rand_runs; ++i) {
    std::vector<uint8_t> bytes(rng.Below(max_len + 1));
    for (uint8_t& b : bytes) b = static_cast<uint8_t>(rng.Next());
    RunInput(bytes.data(), bytes.size());
  }

  std::fprintf(stderr, "replayed %zu corpus file(s), %zu random input(s)\n",
               files, rand_runs);
  return rc;
}
