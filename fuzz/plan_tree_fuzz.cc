// Differential fuzz target: random logical plan trees through the whole
// optimized stack — ops::Optimize (cost-model strategy choice) +
// ops::ExecutePlan (chunked operator engine over the radix kernels) —
// against ops::ReferenceExecute, the scalar tuple-at-a-time interpreter
// with no radix machinery. The checksum construction is shared, so:
//   * if the optimized path accepts the tree, the reference must too, and
//     row count + checksum must match exactly (a divergence is a wrong
//     answer in some radix kernel or in the estimator's plumbing);
//   * if the optimized path rejects the tree, the reference must reject it
//     as well (Status parity — an error-path divergence would read as a
//     found bug in every later differential run).
//
// The tree builder deliberately decodes table/attr indices from ranges one
// past the catalog, so a slice of inputs is malformed: the parity branch
// is exercised on every run, and the validator itself is under test (the
// post-order fix in ops/plan.cc came from this harness; regression seed
// oob_scan_under_project).

#include <cstdint>
#include <memory>
#include <vector>

#include "costmodel/models.h"
#include "fuzz_check.h"
#include "fuzz_input.h"
#include "hardware/memory_hierarchy.h"
#include "ops/executor.h"
#include "ops/optimizer.h"
#include "ops/plan.h"
#include "ops/reference.h"
#include "ops/table.h"
#include "workload/chain.h"

namespace {

using radix::fuzz::FuzzInput;
using radix::ops::ColumnRef;
using radix::ops::LogicalPlan;
using radix::ops::PlanNode;

constexpr size_t kTables = 3;

/// One static chain workload: 3 joinable tables, fixed + varchar payloads.
/// Building data per input would drown the signal in generator time.
struct Fixture {
  radix::workload::ChainWorkload workload;
  radix::ops::Catalog catalog;
  radix::hardware::MemoryHierarchy hw;
  radix::costmodel::CpuCosts cpu;

  Fixture()
      : workload([] {
          radix::workload::ChainWorkloadSpec spec;
          spec.cardinalities = {600, 400, 500};
          spec.num_attrs = 3;
          spec.seed = 11;
          spec.varchar.num_cols = 1;
          spec.varchar.min_len = 0;
          spec.varchar.max_len = 12;
          spec.varchar.empty_fraction = 0.05;
          return radix::workload::MakeChainWorkload(spec);
        }()),
        catalog(radix::ops::CatalogFromChainWorkload(workload)),
        hw(radix::hardware::MemoryHierarchy::Pentium4()),
        cpu(radix::costmodel::CpuCosts::Default()) {}
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

/// Mostly-valid index: in range, but one past it a few % of the time so
/// malformed trees stay in the input distribution.
size_t TableIndex(FuzzInput& in) {
  return in.U8() % 16 == 0 ? kTables + in.SizeInRange(0, 2)
                           : in.SizeInRange(0, kTables - 1);
}

ColumnRef DecodeColumnRef(FuzzInput& in, const std::vector<size_t>& tables) {
  ColumnRef ref;
  ref.table = tables.empty() || in.U8() % 16 == 0 ? TableIndex(in)
                                                  : tables[in.SizeInRange(
                                                        0, tables.size() - 1)];
  ref.is_varchar = in.U8() % 4 == 0;
  // Valid attrs: fixed 0..2 (key + 2 payloads), varchar only column 0;
  // decode one past to probe the attr-range checks.
  ref.attr = ref.is_varchar ? in.SizeInRange(0, 1) : in.SizeInRange(0, 3);
  return ref;
}

radix::ops::Predicate DecodePredicate(FuzzInput& in,
                                      const std::vector<size_t>& tables) {
  radix::ops::Predicate pred;
  pred.col = DecodeColumnRef(in, tables);
  pred.op = static_cast<radix::ops::CmpOp>(in.InRange(0, 5));
  if (pred.col.is_varchar) {
    pred.str_value = in.Ascii(in.SizeInRange(0, 6));
    pred.str_prefix = in.Bool();
  } else {
    pred.value = in.I32() % 4096;  // near the payload range, so selects bite
  }
  return pred;
}

/// Random join/select tree; `tables` collects the scanned tables so column
/// refs and join keys usually name visible tables.
std::unique_ptr<PlanNode> BuildSubtree(FuzzInput& in, size_t depth,
                                       std::vector<size_t>* tables) {
  const uint8_t pick = in.U8();
  if (depth == 0 || pick % 4 == 0) {
    const size_t t = TableIndex(in);
    tables->push_back(t);
    return radix::ops::Scan(t);
  }
  if (pick % 4 == 1) {
    std::unique_ptr<PlanNode> child = BuildSubtree(in, depth - 1, tables);
    return radix::ops::Select(std::move(child), DecodePredicate(in, *tables));
  }
  std::vector<size_t> left_tables, right_tables;
  std::unique_ptr<PlanNode> left = BuildSubtree(in, depth - 1, &left_tables);
  std::unique_ptr<PlanNode> right = BuildSubtree(in, depth - 1, &right_tables);
  const size_t lt = left_tables.empty() || in.U8() % 16 == 0
                        ? TableIndex(in)
                        : left_tables[in.SizeInRange(0, left_tables.size() - 1)];
  const size_t rt =
      right_tables.empty() || in.U8() % 16 == 0
          ? TableIndex(in)
          : right_tables[in.SizeInRange(0, right_tables.size() - 1)];
  tables->insert(tables->end(), left_tables.begin(), left_tables.end());
  tables->insert(tables->end(), right_tables.begin(), right_tables.end());
  return radix::ops::Join(std::move(left), std::move(right), lt, rt);
}

LogicalPlan BuildPlan(FuzzInput& in) {
  std::vector<size_t> tables;
  // Decoded before the call: argument evaluation order is unspecified and
  // the byte stream must decode identically on every compiler, or corpus
  // seeds would mean different trees in different builds.
  const size_t depth = in.SizeInRange(1, 3);
  std::unique_ptr<PlanNode> body = BuildSubtree(in, depth, &tables);
  LogicalPlan plan;
  if (in.Bool()) {
    std::vector<ColumnRef> columns;
    const size_t n_cols = in.SizeInRange(1, 4);
    for (size_t i = 0; i < n_cols; ++i) {
      columns.push_back(DecodeColumnRef(in, tables));
    }
    plan.root = radix::ops::Project(std::move(body), std::move(columns));
  } else {
    std::vector<ColumnRef> group_by;
    if (in.Bool()) {
      ColumnRef g = DecodeColumnRef(in, tables);
      group_by.push_back(g);
    }
    std::vector<radix::ops::AggExpr> aggs;
    const size_t n_aggs = in.SizeInRange(1, 3);
    for (size_t i = 0; i < n_aggs; ++i) {
      radix::ops::AggExpr agg;
      agg.fn = static_cast<radix::ops::AggFn>(in.InRange(0, 3));
      agg.col = DecodeColumnRef(in, tables);
      aggs.push_back(agg);
    }
    plan.root =
        radix::ops::Aggregate(std::move(body), std::move(group_by), aggs);
  }
  return plan;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  FuzzInput in(data, size);
  const Fixture& f = fixture();

  LogicalPlan plan = BuildPlan(in);
  // Chunk-size sweep: 0 = cache-sized default; tiny chunks stress the
  // chunk-boundary logic the most.
  const size_t chunk_rows_choices[] = {0, 1, 7, 64, 1000};
  radix::ops::ExecOptions exec_opts;
  exec_opts.hw = &f.hw;
  exec_opts.chunk_rows = chunk_rows_choices[in.InRange(0, 4)];

  radix::ops::PlanRun ref_run;
  radix::Status ref = radix::ops::ReferenceExecute(f.catalog, plan, &ref_run);

  radix::ops::PhysicalPlan physical;
  radix::Status opt =
      radix::ops::Optimize(f.catalog, plan, f.hw, f.cpu, 1, &physical);

  if (!opt.ok()) {
    FUZZ_CHECK(!ref.ok(),
               "reference must reject every tree the optimizer rejects");
    return 0;
  }
  FUZZ_CHECK(ref.ok(), "reference must accept every tree the optimizer accepts");

  radix::ops::PlanRun run;
  radix::Status ex =
      radix::ops::ExecutePlan(f.catalog, plan, physical, exec_opts, &run);
  FUZZ_CHECK(ex.ok(), "executor must execute every optimized plan");
  FUZZ_CHECK(run.result_rows == ref_run.result_rows,
             "row-count divergence from the scalar reference");
  FUZZ_CHECK(run.checksum == ref_run.checksum,
             "checksum divergence from the scalar reference");
  return 0;
}
