// Fuzz target: ClusterSpec validation + the multi-pass Radix-Cluster
// kernel against a stable-sort oracle.
//
// The decoded spec fields cover their full raw ranges, so every rejection
// path of ValidateClusterSpec is reachable (including the 64-bit
// total_bits gap this harness found: corpus seed full_width_single_pass).
// Specs the validator accepts — bounded to a size the kernel can execute
// per input — are run through RadixClusterMultiPass and checked against
// std::stable_sort on the radix bits: same permutation (stability
// included) and borders that exactly partition each cluster.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cluster/radix_cluster.h"
#include "common/bits.h"
#include "common/status.h"
#include "fuzz_check.h"
#include "fuzz_input.h"
#include "simcache/mem_tracer.h"

namespace {

struct Rec {
  uint64_t value;
  uint32_t seq;  ///< original position, for the stability check
};

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  radix::fuzz::FuzzInput in(data, size);

  radix::cluster::ClusterSpec spec;
  spec.total_bits = in.U8();   // full range: probes the validator itself
  spec.ignore_bits = in.U8();
  spec.passes = in.U8();

  // The validator must give a verdict — never crash, never UB — for every
  // representable spec.
  radix::Status st = radix::cluster::ValidateClusterSpec(spec);
  if (!st.ok()) return 0;

  // Every *accepted* spec's derived quantities must be computable without
  // UB — this is where the total_bits = 64 validator gap surfaced: the
  // validator said OK and num_clusters()/RadixBits shifted a 64-bit value
  // by 64 (caught by UBSan under -fno-sanitize-recover).
  (void)spec.num_clusters();
  (void)spec.PassBits();
  (void)spec.EffectivePasses();
  (void)radix::RadixBits(~uint64_t{0}, spec.ignore_bits, spec.total_bits);

  // Accepted specs must be executable. Bound the per-input cost (2^B
  // border slots) without shrinking the validator's input space above.
  if (spec.total_bits > 12 || spec.passes > 8) return 0;

  const size_t n = in.SizeInRange(0, 512);
  std::vector<Rec> recs(n), scratch(n);
  for (size_t i = 0; i < n; ++i) {
    recs[i] = {in.U64(), static_cast<uint32_t>(i)};
  }
  std::vector<Rec> expected = recs;

  auto radix_of = [](const Rec& r) -> uint64_t { return r.value; };
  radix::simcache::NoTracer tracer;
  radix::cluster::ClusterBorders borders = radix::cluster::RadixClusterMultiPass(
      recs.data(), scratch.data(), n, radix_of, spec, tracer);

  auto bits_of = [&](const Rec& r) {
    return radix::RadixBits(r.value, spec.ignore_bits, spec.total_bits);
  };
  std::stable_sort(expected.begin(), expected.end(),
                   [&](const Rec& a, const Rec& b) {
                     return bits_of(a) < bits_of(b);
                   });

  FUZZ_CHECK(borders.offsets.front() == 0, "borders start at 0");
  FUZZ_CHECK(borders.offsets.back() == n, "borders end at n");
  for (size_t c = 1; c < borders.offsets.size(); ++c) {
    FUZZ_CHECK(borders.offsets[c - 1] <= borders.offsets[c],
               "borders monotone");
  }
  for (size_t i = 0; i < n; ++i) {
    FUZZ_CHECK(recs[i].value == expected[i].value,
               "cluster order equals stable sort by radix bits");
    FUZZ_CHECK(recs[i].seq == expected[i].seq,
               "cluster scatter is stable");
  }
  // Every element lies inside the border range of its own radix value.
  if (spec.total_bits > 0 && borders.num_clusters() == size_t{1}
                                                          << spec.total_bits) {
    for (size_t i = 0; i < n; ++i) {
      const uint32_t c = bits_of(recs[i]);
      FUZZ_CHECK(i >= borders.offsets[c] && i < borders.offsets[c + 1],
                 "element within its cluster's borders");
    }
  }
  return 0;
}
