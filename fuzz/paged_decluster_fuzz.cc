// Fuzz target: the paged decluster (paper §3.2 preconditions + the Fig. 12
// three-phase varchar path) via ValidatePagedDecluster and the kernels.
//
// Two halves per input:
//   1. A *valid-by-construction* §3.2 input — ids [0, n) stably ordered by
//      their low cluster bits (ascending per cluster + dense permutation),
//      borders from the bucket histogram — is declustered both fixed-size
//      and variable-size; every directory entry must read back exactly the
//      value that was scattered to that result position.
//   2. A decoded corruption of the same input (border overshoot, shuffled
//      borders, zero window, size mismatch) must be *rejected* by
//      ValidatePagedDecluster — the recoverable validator, whose contract
//      is exactly the size/partition/window checks mutated here.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <vector>

#include "bufferpool/buffer_manager.h"
#include "cluster/radix_cluster.h"
#include "common/status.h"
#include "common/types.h"
#include "decluster/paged_decluster.h"
#include "fuzz_check.h"
#include "fuzz_input.h"

using radix::oid_t;
using radix::value_t;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  radix::fuzz::FuzzInput in(data, size);

  const size_t n = in.SizeInRange(0, 768);
  const uint32_t bits = static_cast<uint32_t>(in.InRange(0, 6));
  const size_t clusters = size_t{1} << bits;
  const size_t window = in.SizeInRange(1, 64);
  // Page small enough to force multi-page results, large enough for the
  // longest record + its slot. Rounded down to even: Page requires
  // slot-aligned sizes — this harness's odd sizes under UBSan are what
  // exposed the misaligned slot-directory stores the ctor now rejects.
  const size_t page_bytes = in.SizeInRange(96, 4096) & ~size_t{1};
  const size_t max_len = 16;

  // Valid §3.2 input: result positions [0, n) clustered on their low
  // `bits` (stable, so ascending within each cluster), borders from the
  // histogram.
  std::vector<oid_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0u);
  const uint32_t mask = static_cast<uint32_t>(clusters - 1);
  std::stable_sort(ids.begin(), ids.end(), [&](oid_t a, oid_t b) {
    return (a & mask) < (b & mask);
  });
  radix::cluster::ClusterBorders borders;
  borders.offsets.assign(clusters + 1, 0);
  for (oid_t id : ids) ++borders.offsets[(id & mask) + 1];
  for (size_t c = 0; c < clusters; ++c) {
    borders.offsets[c + 1] += borders.offsets[c];
  }

  FUZZ_CHECK(radix::decluster::ValidatePagedDecluster(n, ids, borders, window)
                 .ok(),
             "constructed input is valid");

  {  // Fixed-size path: value j must land at result position ids[j].
    std::vector<value_t> values(n);
    for (size_t j = 0; j < n; ++j) values[j] = in.I32();
    radix::bufferpool::BufferManager bm(page_bytes);
    radix::decluster::PagedResult result = radix::decluster::PagedDeclusterFixed(
        values, ids, borders, window, &bm);
    FUZZ_CHECK(result.directory.size() == n, "fixed directory covers result");
    for (size_t j = 0; j < n; ++j) {
      std::string_view got = result.Read(bm, ids[j]);
      FUZZ_CHECK(got.size() == sizeof(value_t), "fixed record width");
      value_t v;
      std::memcpy(&v, got.data(), sizeof(v));
      FUZZ_CHECK(v == values[j], "fixed value at its result position");
    }
  }

  {  // Varchar path (three-phase Fig. 12), including empty strings.
    radix::decluster::VarValues values;
    std::vector<std::string> originals(n);
    for (size_t j = 0; j < n; ++j) {
      originals[j] = in.Ascii(in.SizeInRange(0, max_len));
      values.Append(originals[j]);
    }
    if (n == 0) values.offsets.push_back(0);
    radix::bufferpool::BufferManager bm(page_bytes);
    radix::decluster::PagedResult result = radix::decluster::PagedDeclusterVar(
        values, ids, borders, window, &bm);
    FUZZ_CHECK(result.directory.size() == n, "var directory covers result");
    for (size_t j = 0; j < n; ++j) {
      FUZZ_CHECK(result.Read(bm, ids[j]) == originals[j],
                 "varchar value at its result position");
    }
  }

  // Corrupt exactly what the validator promises to catch; each mutation
  // must flip the verdict to non-OK (and must not crash the validator).
  switch (in.InRange(0, 4)) {
    case 0: {  // window of zero would never retire a tuple...
      if (n > 0) {  // ...but with no tuples to retire it is explicitly OK
        FUZZ_CHECK(
            !radix::decluster::ValidatePagedDecluster(n, ids, borders, 0).ok(),
            "zero window rejected");
      }
      break;
    }
    case 1: {  // borders not covering exactly [0, n)
      borders.offsets.back() += 1 + in.InRange(0, 7);
      FUZZ_CHECK(
          !radix::decluster::ValidatePagedDecluster(n, ids, borders, window)
               .ok(),
          "border overshoot rejected");
      break;
    }
    case 2: {  // non-monotone borders
      if (borders.offsets.size() >= 3 && n >= 2) {
        const size_t c = 1 + in.SizeInRange(0, borders.offsets.size() - 3);
        borders.offsets[c] = borders.offsets.back() + 1;
        FUZZ_CHECK(
            !radix::decluster::ValidatePagedDecluster(n, ids, borders, window)
                 .ok(),
            "non-monotone borders rejected");
      }
      break;
    }
    case 3: {  // ids/values size disagreement
      ids.push_back(0);
      FUZZ_CHECK(
          !radix::decluster::ValidatePagedDecluster(n, ids, borders, window)
               .ok(),
          "size mismatch rejected");
      break;
    }
    default: {  // borders that do not start at 0
      if (n > 0) {
        borders.offsets.front() = 1;
        FUZZ_CHECK(
            !radix::decluster::ValidatePagedDecluster(n, ids, borders, window)
                 .ok(),
            "nonzero first border rejected");
      }
      break;
    }
  }
  return 0;
}
