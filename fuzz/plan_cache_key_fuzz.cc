// Fuzz target: plan-cache key construction. A cache key that aliases two
// distinct plan shapes executes the wrong cached plan — silently — so the
// property fuzzed here is injectivity over every field the key claims to
// pin: two decoded QuerySpecs produce equal keys iff every key-relevant
// field is equal, two-sided keys ("nl=") and tree keys ("tree|") never
// collide, and tree fingerprints track predicate constants, column lists
// and tree shape.

#include <cstdint>
#include <string>
#include <tuple>

#include "engine/engine.h"
#include "engine/plan_cache.h"
#include "fuzz_check.h"
#include "fuzz_input.h"
#include "ops/plan.h"
#include "ops/table.h"
#include "project/strategy.h"
#include "workload/generator.h"

namespace {

using radix::engine::QuerySpec;

/// Tiny fixed workload: the key folds its cardinalities and varchar stats,
/// which are constant here so only QuerySpec fields drive key equality.
const radix::workload::JoinWorkload& FixedWorkload() {
  static const radix::workload::JoinWorkload w = [] {
    radix::workload::JoinWorkloadSpec ws;
    ws.cardinality = 64;
    ws.num_attrs = 3;
    ws.seed = 7;
    ws.build_nsm = false;
    ws.varchar.num_cols = 2;
    return radix::workload::MakeJoinWorkload(ws);
  }();
  return w;
}

QuerySpec DecodeSpec(radix::fuzz::FuzzInput& in) {
  QuerySpec spec;
  spec.strategy = static_cast<radix::project::JoinStrategy>(in.InRange(0, 5));
  spec.pi_left = in.SizeInRange(0, 4);
  spec.pi_right = in.SizeInRange(0, 4);
  spec.pi_varchar_left = in.SizeInRange(0, 2);
  spec.pi_varchar_right = in.SizeInRange(0, 2);
  spec.plan_sides = in.Bool();
  spec.left = static_cast<radix::project::SideStrategy>(in.InRange(0, 3));
  spec.right = static_cast<radix::project::SideStrategy>(in.InRange(0, 3));
  spec.left_bits = in.U32();
  spec.right_bits = in.U32();
  spec.window_elems = in.SizeInRange(0, 1 << 20);
  spec.chunking = static_cast<radix::engine::ChunkingPolicy>(in.InRange(0, 2));
  spec.chunk_rows = in.SizeInRange(0, 1 << 16);
  return spec;
}

auto KeyFields(const QuerySpec& s) {
  return std::make_tuple(s.strategy, s.pi_left, s.pi_right, s.pi_varchar_left,
                         s.pi_varchar_right, s.plan_sides, s.left, s.right,
                         s.left_bits, s.right_bits, s.window_elems, s.chunking,
                         s.chunk_rows);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  radix::fuzz::FuzzInput in(data, size);
  const radix::workload::JoinWorkload& w = FixedWorkload();

  QuerySpec a = DecodeSpec(in);
  QuerySpec b = DecodeSpec(in);
  const std::string key_a = radix::engine::PlanCacheKey(w, a);
  const std::string key_b = radix::engine::PlanCacheKey(w, b);

  FUZZ_CHECK(key_a.rfind("nl=", 0) == 0, "two-sided key prefix");
  FUZZ_CHECK((key_a == key_b) == (KeyFields(a) == KeyFields(b)),
             "two-sided keys equal iff every pinned field equal");
  // Deterministic: rebuilding yields the identical key.
  FUZZ_CHECK(radix::engine::PlanCacheKey(w, a) == key_a, "key deterministic");

  // Tree keys: same catalog, two plans differing only in decoded predicate
  // constant / projected column — fingerprints must separate them, and the
  // "tree|" prefix keeps them disjoint from every two-sided key.
  radix::ops::Catalog catalog = radix::ops::CatalogFromJoinWorkload(w);
  const radix::value_t pred_a = in.I32();
  const radix::value_t pred_b = in.I32();
  const size_t col_a = in.SizeInRange(1, 2);
  const size_t col_b = in.SizeInRange(1, 2);
  auto make_plan = [](radix::value_t pred_value, size_t col) {
    radix::ops::Predicate pred;
    pred.col = {0, 1, false};
    pred.op = radix::ops::CmpOp::kLt;
    pred.value = pred_value;
    radix::ops::LogicalPlan plan;
    plan.root = radix::ops::Project(
        radix::ops::Select(radix::ops::Scan(0), pred), {{0, col, false}});
    return plan;
  };
  radix::ops::LogicalPlan plan_a = make_plan(pred_a, col_a);
  radix::ops::LogicalPlan plan_b = make_plan(pred_b, col_b);
  const std::string tree_a = radix::engine::PlanCacheKey(catalog, plan_a);
  const std::string tree_b = radix::engine::PlanCacheKey(catalog, plan_b);
  FUZZ_CHECK(tree_a.rfind("tree|", 0) == 0, "tree key prefix");
  FUZZ_CHECK(tree_a != key_a, "tree and two-sided keys disjoint");
  FUZZ_CHECK((tree_a == tree_b) == (pred_a == pred_b && col_a == col_b),
             "tree keys track predicate constant and column list");
  return 0;
}
