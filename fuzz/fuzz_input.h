#ifndef RADIX_FUZZ_FUZZ_INPUT_H_
#define RADIX_FUZZ_FUZZ_INPUT_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

namespace radix::fuzz {

/// Structured decoding of a raw fuzz byte stream (the FuzzedDataProvider
/// idiom, hand-rolled so the harnesses carry no external dependency).
/// Every accessor is total: an exhausted stream yields zeros/empties
/// rather than failing, so byte-level mutations always decode to *some*
/// structured input and coverage-guided mutation stays productive.
class FuzzInput {
 public:
  FuzzInput(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }
  bool empty() const { return pos_ >= size_; }

  uint8_t U8() { return TakeByte(); }

  uint16_t U16() {
    return static_cast<uint16_t>(uint16_t{TakeByte()} |
                                 (uint16_t{TakeByte()} << 8));
  }

  uint32_t U32() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= uint32_t{TakeByte()} << (8 * i);
    return v;
  }

  uint64_t U64() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= uint64_t{TakeByte()} << (8 * i);
    return v;
  }

  bool Bool() { return (TakeByte() & 1) != 0; }

  int32_t I32() { return static_cast<int32_t>(U32()); }

  /// Uniform-ish value in [lo, hi] (inclusive); lo when the range is
  /// degenerate. Consumes 8 bytes so the mapping is stable as ranges vary.
  uint64_t InRange(uint64_t lo, uint64_t hi) {
    if (lo >= hi) return lo;
    const uint64_t span = hi - lo + 1;
    return span == 0 ? U64() : lo + U64() % span;
  }

  size_t SizeInRange(size_t lo, size_t hi) {
    return static_cast<size_t>(InRange(lo, hi));
  }

  /// Up to max_len raw bytes as a string (shorter if the stream runs dry).
  std::string Bytes(size_t max_len) {
    const size_t n = std::min(max_len, remaining());
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  /// Printable-ASCII string of length up to max_len, for varchar payloads.
  std::string Ascii(size_t max_len) {
    std::string s = Bytes(max_len);
    for (char& c : s) {
      c = static_cast<char>(' ' + (static_cast<uint8_t>(c) % 95));
    }
    return s;
  }

 private:
  uint8_t TakeByte() { return pos_ < size_ ? data_[pos_++] : 0; }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace radix::fuzz

#endif  // RADIX_FUZZ_FUZZ_INPUT_H_
