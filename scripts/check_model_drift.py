#!/usr/bin/env python3
"""Gate modeled-vs-measured drift for the Appendix-A cost model.

Reads a Google Benchmark JSON file produced by bench_fig09 (each benchmark
carries a `modeled_ms` counter next to its measured `real_time`) and
closes the ROADMAP item "validate modeled vs measured drift in CI".

What Fig. 9 actually claims is that model and measurement *move together*
— same optima, same cliffs at the same radix-bits — not that the absolute
milliseconds agree on an arbitrary uncalibrated machine (the CPU constants
and miss latencies are defaults unless the Calibrator ran). The gate
therefore works per kernel (benchmark family):

 * compute each point's measured/modeled ratio;
 * absorb the kernel's constant scale error as the median ratio;
 * FAIL any point whose ratio deviates from that median by more than
   MAX_POINT_DRIFT in either direction (the curve shapes diverged);
 * FAIL if the median itself exceeds MAX_SCALE (the model is off by so
   much that even "constant factor" is implausible — total model rot).

Thresholds live here, in ONE place, and are generous: CI machines are
noisy and share caches with neighbours.

Usage: check_model_drift.py BENCH_JSON [--max-point-drift X] [--max-scale Y]
"""

import argparse
import json
import sys
from collections import defaultdict

# A point may drift this far from its kernel's median measured/modeled
# ratio before the gate fails (shape divergence).
MAX_POINT_DRIFT = 5.0

# The per-kernel constant scale error may be at most this large in either
# direction (sanity bound against total model rot).
MAX_SCALE = 100.0

# Measurements below this are dominated by timer/allocator noise at
# Iterations(1); skip them rather than gate on noise.
MIN_MEASURED_MS = 0.5


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json")
    parser.add_argument("--max-point-drift", type=float,
                        default=MAX_POINT_DRIFT)
    parser.add_argument("--max-scale", type=float, default=MAX_SCALE)
    args = parser.parse_args()

    with open(args.bench_json) as f:
        report = json.load(f)

    families = defaultdict(list)  # kernel name -> [(bench name, ratio)]
    skipped = 0
    failures = []
    for bench in report.get("benchmarks", []):
        name = bench.get("name", "?")
        modeled = bench.get("modeled_ms")
        measured = bench.get("real_time")
        if modeled is None or bench.get("time_unit") != "ms":
            skipped += 1
            continue
        if measured is None or measured < MIN_MEASURED_MS:
            skipped += 1
            continue
        if modeled <= 0:
            failures.append(f"{name}: modeled_ms={modeled} (non-positive)")
            continue
        families[name.split("/")[0]].append((name, measured / modeled))

    checked = 0
    for family in sorted(families):
        points = families[family]
        ratios = sorted(r for _, r in points)
        median = ratios[len(ratios) // 2]
        scale = max(median, 1.0 / median)
        status = "FAIL" if scale > args.max_scale else "ok"
        print(f"{status:4} {family}: {len(points)} points, "
              f"median measured/modeled = {median:.2f}")
        if scale > args.max_scale:
            failures.append(
                f"{family}: median ratio {median:.2f} beyond the "
                f"{args.max_scale}x scale sanity bound")
        for name, ratio in points:
            drift = max(ratio / median, median / ratio)
            checked += 1
            if drift > args.max_point_drift:
                print(f"  FAIL {name}: ratio {ratio:.2f} drifts "
                      f"{drift:.2f}x from the family median {median:.2f}")
                failures.append(
                    f"{name}: {drift:.2f}x shape drift "
                    f"(> {args.max_point_drift}x)")

    print(f"\nchecked {checked} benchmarks in {len(families)} kernel "
          f"families, skipped {skipped} (no model counter / below "
          f"{MIN_MEASURED_MS} ms noise floor)")
    if failures:
        print(f"\nModel drift gate FAILED ({len(failures)} finding(s)):",
              file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    if checked == 0:
        print("No benchmarks were checked — treating as failure "
              "(did bench_fig09 emit modeled_ms?)", file=sys.stderr)
        return 1
    print("Model drift gate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
