#!/usr/bin/env python3
"""Perf-regression gate for the hot radix kernels.

Compares a fresh quick-mode Google Benchmark JSON report (the
`BM_Dispatch*` section of bench_ablation) against the committed
`bench/baseline.json` and fails when any kernel's median time regresses
beyond a generous noise threshold. Two further checks ride along:

  1. Presence: the dispatched (Arg=1) rows for radix_count / gather /
     scatter must exist — a dispatch-table wiring regression that
     silently falls back to scalar-only registration fails here.
  2. Byte-identity: within the current report, the scalar (Arg=0) and
     dispatched (Arg=1) row of each kernel pair must carry the same
     `checksum_lo32` counter. A SIMD variant that produces different
     bytes fails CI even if it is fast.

The timing gate is deliberately loose (default 2.0x) because CI runners
are shared, 1-2 core machines: it exists to catch order-of-magnitude
mistakes (an accidentally-scalar dispatched path, a debug-mode binary, a
quadratic slip), not 10% noise. When the baseline was recorded on a
machine with a different core count than the current run, the timing
comparison is SKIPPED with a clear message (the numbers are not
comparable) — the presence and checksum checks still run.

Usage:
  check_bench_regression.py CURRENT.json [--baseline bench/baseline.json]
                            [--threshold 2.0]
  check_bench_regression.py --self-test

Refresh the baseline after an intentional perf change with:
  RADIX_BENCH_QUICK=1 ./build/bench/bench_ablation \
      --benchmark_filter='BM_Dispatch' \
      --benchmark_out=bench/baseline.json --benchmark_out_format=json
"""

import argparse
import json
import statistics
import sys

# Kernels whose dispatched rows must be present in every report.
REQUIRED_DISPATCHED = [
    "BM_DispatchRadixCount/1",
    "BM_DispatchGather/1",
    "BM_DispatchScatter/1",
]

# Only rows in this family are gated: the dispatch section is sized for
# quick mode and designed for comparison; the rest of bench_ablation has
# its own smoke coverage.
GATE_PREFIX = "BM_Dispatch"

# Median-vs-median slowdown beyond which the gate fails. Generous on
# purpose — see module docstring.
DEFAULT_THRESHOLD = 2.0


def base_name(full_name):
    """'BM_DispatchGather/1/iterations:1' -> 'BM_DispatchGather/1'."""
    parts = [p for p in full_name.split("/") if not p.startswith("iterations:")]
    return "/".join(parts)


def rows_by_name(report):
    rows = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        rows.setdefault(base_name(bench["name"]), []).append(bench)
    return rows


def median_time(rows):
    return statistics.median(r["real_time"] for r in rows)


def check(current, baseline, threshold, out=sys.stdout):
    """Returns (ok, messages). Pure so --self-test can drive it."""
    ok = True
    msgs = []

    def emit(line, failed=False):
        nonlocal ok
        if failed:
            ok = False
        msgs.append(line)
        print(line, file=out)

    cur_rows = rows_by_name(current)

    # 1. Presence of the dispatched columns.
    for name in REQUIRED_DISPATCHED:
        if name not in cur_rows:
            emit(f"FAIL missing dispatched row: {name}", failed=True)
    # 2. Byte-identity between each kernel's scalar and dispatched row.
    for name in REQUIRED_DISPATCHED:
        scalar = name.rsplit("/", 1)[0] + "/0"
        if name not in cur_rows or scalar not in cur_rows:
            continue
        cs_d = cur_rows[name][0].get("checksum_lo32")
        cs_s = cur_rows[scalar][0].get("checksum_lo32")
        if cs_d is None or cs_s is None:
            emit(f"FAIL {name}: checksum_lo32 counter missing", failed=True)
        elif cs_d != cs_s:
            emit(
                f"FAIL checksum mismatch {scalar}={cs_s:.0f} vs "
                f"{name}={cs_d:.0f} — dispatched kernel is not "
                "byte-identical to scalar",
                failed=True,
            )
        else:
            emit(f"ok   {name}: checksum matches scalar ({cs_s:.0f})")

    # 3. Timing gate, skipped on incomparable machines.
    cur_cpus = current.get("context", {}).get("num_cpus")
    base_cpus = baseline.get("context", {}).get("num_cpus")
    if cur_cpus != base_cpus:
        emit(
            f"SKIP timing gate: baseline recorded on {base_cpus} CPUs, "
            f"current run has {cur_cpus} — times are not comparable. "
            "Refresh bench/baseline.json on the current runner class."
        )
        return ok, msgs

    base_rows = rows_by_name(baseline)
    gated = sorted(
        n for n in cur_rows if n.startswith(GATE_PREFIX) and n in base_rows
    )
    if not gated:
        emit("SKIP timing gate: no gated benchmarks shared with baseline")
        return ok, msgs
    for name in gated:
        cur_t = median_time(cur_rows[name])
        base_t = median_time(base_rows[name])
        if base_t <= 0:
            emit(f"SKIP {name}: non-positive baseline time")
            continue
        ratio = cur_t / base_t
        line = f"{name}: {cur_t:.3f} vs baseline {base_t:.3f} ({ratio:.2f}x)"
        if ratio > threshold:
            emit(f"FAIL {line} > {threshold:.1f}x threshold", failed=True)
        else:
            emit(f"ok   {line}")
    return ok, msgs


# --------------------------------------------------------------- self-test


def _make_report(num_cpus=2, scale=1.0, checksums=None):
    checksums = checksums or {}
    benchmarks = []
    times = {
        "BM_DispatchRadixCount": 3.0,
        "BM_DispatchGather": 8.0,
        "BM_DispatchScatter": 18.0,
    }
    for kernel, t in times.items():
        for arg, factor in ((0, 1.0), (1, 0.4)):
            name = f"{kernel}/{arg}/iterations:1"
            benchmarks.append(
                {
                    "name": name,
                    "run_type": "iteration",
                    "real_time": t * factor * scale,
                    "checksum_lo32": checksums.get(f"{kernel}/{arg}", 12345.0),
                }
            )
    return {"context": {"num_cpus": num_cpus}, "benchmarks": benchmarks}


def self_test():
    import io

    baseline = _make_report()
    failures = []

    def expect(label, want_ok, current, threshold=DEFAULT_THRESHOLD,
               want_msg=None):
        sink = io.StringIO()
        ok, msgs = check(current, baseline, threshold, out=sink)
        if ok != want_ok:
            failures.append(f"{label}: expected ok={want_ok}, got {ok}")
        if want_msg and not any(want_msg in m for m in msgs):
            failures.append(f"{label}: expected message containing "
                            f"{want_msg!r}, got {msgs}")

    # Identical run passes.
    expect("identical", True, _make_report())
    # Mild noise passes.
    expect("noise-1.5x", True, _make_report(scale=1.5))
    # The seeded regression the acceptance criteria call for: a 2x
    # slowdown of radix_count must fail the gate.
    doctored = _make_report()
    for b in doctored["benchmarks"]:
        if b["name"].startswith("BM_DispatchRadixCount"):
            b["real_time"] *= 2.5
    expect("seeded-radix-count-2x", False, doctored, want_msg="FAIL")
    # A dispatched row whose bytes differ from scalar must fail even
    # with identical timings.
    expect(
        "checksum-mismatch",
        False,
        _make_report(checksums={"BM_DispatchGather/1": 99999.0}),
        want_msg="byte-identical",
    )
    # A missing dispatched row must fail.
    missing = _make_report()
    missing["benchmarks"] = [
        b
        for b in missing["benchmarks"]
        if not b["name"].startswith("BM_DispatchScatter/1")
    ]
    expect("missing-dispatched-row", False, missing,
           want_msg="missing dispatched row")
    # Core-count mismatch: timing must be skipped, so even a 10x
    # slowdown passes (with a SKIP message); checksums still checked.
    slow_other_machine = _make_report(num_cpus=16, scale=10.0)
    expect("core-mismatch-skips", True, slow_other_machine,
           want_msg="SKIP timing gate")
    mismatched = _make_report(
        num_cpus=16, checksums={"BM_DispatchScatter/1": 7.0}
    )
    expect("core-mismatch-still-checks-bytes", False, mismatched,
           want_msg="byte-identical")
    # Self-check that deepcopy isn't needed: baseline untouched.
    assert baseline == _make_report(), "baseline mutated by check()"

    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}", file=sys.stderr)
        return 1
    print("self-test: all cases behave as expected")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", nargs="?", help="fresh benchmark JSON")
    parser.add_argument("--baseline", default="bench/baseline.json")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD)
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.current:
        parser.error("CURRENT.json required unless --self-test")
    with open(args.current) as f:
        current = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)
    ok, _ = check(current, baseline, args.threshold)
    if not ok:
        print(
            "\nbench regression gate FAILED. If the slowdown is intentional "
            "(algorithm change), refresh bench/baseline.json — see the "
            "module docstring.",
            file=sys.stderr,
        )
        return 1
    print("\nbench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
