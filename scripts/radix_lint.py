#!/usr/bin/env python3
"""Project-specific lint for the radix engine (src/ only).

Rules (each prints `file:line: [rule] message` and fails the run):

  raw-primitive      std::mutex / std::condition_variable / std::thread /
                     std::lock_guard / std::unique_lock / std::scoped_lock
                     outside src/common/ — everything else must use the
                     annotated radix::Mutex / MutexLock / CondVar wrappers
                     (common/mutex.h) or the ThreadPool so Clang Thread
                     Safety Analysis sees every lock.
  raw-new-array      `new T[...]` anywhere in src/ — the repo allocates
                     through containers and AlignedBuffer.
  notify-outside-lock  CondVar::Notify{One,All} must be called while a
                     MutexLock is live in the same scope. Notifying after
                     unlock races destruction of the waiting side (the
                     TSan-caught executor destroy race); see
                     docs/CONCURRENCY.md.
  unchecked-snprintf std::snprintf as a bare statement — check (or
                     explicitly (void)) the return value (cert-err33-c).
  tsa-escape         RADIX_NO_THREAD_SAFETY_ANALYSIS anywhere except
                     src/common/thread_pool.cc (the only sanctioned home,
                     and only with a justification comment).
  raw-intrinsics     #include <immintrin.h> (or any x86 intrinsic header)
                     outside src/common/ and outside *_avx2.cc /
                     *_avx512.cc translation units. Kernel code must go
                     through the dispatch table (common/simd_kernels.h):
                     scattered raw intrinsics dodge the runtime ISA
                     clamp, the forced-ISA test matrix, and the
                     byte-identity property tests.
  layer-violation    #include "<layer>/..." that is not in the including
                     layer's transitive dependency closure (the DAG
                     documented in src/CMakeLists.txt). Catches include
                     cycles and upward includes at review time instead of
                     link time.
  fuzz-unregistered  every fuzz/*_fuzz.cc must appear in the
                     RADIX_FUZZ_HARNESSES list of fuzz/CMakeLists.txt (so
                     it builds in both libFuzzer and corpus-replay mode
                     and runs under `ctest -L fuzz`) and must have a
                     non-empty seed corpus in fuzz/corpus/<name>/. A
                     harness without seeds proves nothing on replay; one
                     without a target silently rots.

`--self-test` runs every rule against embedded seeded violations and fails
unless each one is caught — proving the gate actually gates.
"""

import argparse
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src"

# The layer DAG of src/CMakeLists.txt: direct dependencies per layer.
LAYER_DEPS = {
    "common": set(),
    "hardware": {"common"},
    "bufferpool": {"common"},
    "storage": {"common"},
    "simcache": {"common", "hardware"},
    "workload": {"common", "storage"},
    "cluster": {"common", "hardware", "simcache", "storage"},
    "costmodel": {"common", "hardware", "cluster"},
    "join": {"cluster"},
    "decluster": {"cluster", "bufferpool"},
    "pipeline": {"join", "decluster"},
    "project": {"costmodel", "decluster", "join", "pipeline", "workload"},
    "ops": {"project", "pipeline"},
    "engine": {"project", "ops"},
}


def transitive_closure(deps):
    closure = {}

    def visit(layer, stack):
        if layer in closure:
            return closure[layer]
        if layer in stack:
            raise SystemExit(f"layer cycle through {layer!r}")
        out = set()
        for d in deps[layer]:
            out.add(d)
            out |= visit(d, stack | {layer})
        closure[layer] = out
        return out

    for layer in deps:
        visit(layer, frozenset())
    return closure


CLOSURE = transitive_closure(LAYER_DEPS)

RAW_PRIMITIVE = re.compile(
    r"std::(mutex|condition_variable(_any)?|lock_guard|unique_lock|"
    r"scoped_lock|shared_mutex|shared_lock|recursive_mutex)\b"
)
# std::thread as a type/object, but not std::thread::hardware_concurrency
# (a pure query, used by the pool itself for sizing).
RAW_THREAD = re.compile(r"std::thread\b(?!::hardware_concurrency)")
RAW_NEW_ARRAY = re.compile(r"\bnew\s+[A-Za-z_][\w:<>, ]*\[")
NOTIFY = re.compile(r"\.Notify(One|All)\s*\(")
MUTEX_LOCK_DECL = re.compile(r"\bMutexLock\s+\w+\s*[({]")
SNPRINTF_STMT = re.compile(r"^\s*(std::)?snprintf\s*\(")
TSA_ESCAPE = re.compile(r"\bRADIX_NO_THREAD_SAFETY_ANALYSIS\b")
INCLUDE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
ANGLE_INCLUDE = re.compile(r"^\s*#\s*include\s+<([^>]+)>")
# The x86 SIMD intrinsic headers (immintrin.h is the umbrella; the rest
# are its per-ISA pieces someone might reach for directly).
INTRINSIC_HEADERS = {
    "immintrin.h", "x86intrin.h", "xmmintrin.h", "emmintrin.h",
    "pmmintrin.h", "tmmintrin.h", "smmintrin.h", "nmmintrin.h",
    "wmmintrin.h", "avxintrin.h", "avx2intrin.h",
}
# TUs allowed to use intrinsics outside common/: per-ISA kernel files
# compiled with their own -m flags and registered in the dispatch table.
INTRINSIC_TU = re.compile(r"_(avx2|avx512)\.cc$")
LINE_COMMENT = re.compile(r"//[^\n]*")
TSA_ESCAPE_HOME = "common/thread_pool.cc"
# Files allowed to name the escape macro without using it (definition and
# the lint itself).
TSA_ESCAPE_MENTIONS = {"common/thread_annotations.h"}


def strip_comments_and_strings(line):
    """Good-enough scrub: drop // comments and "..." string contents so the
    regexes do not fire on prose. (Block comments are handled per-file.)"""
    line = LINE_COMMENT.sub("", line)
    return re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)


def strip_block_comments(text):
    """Replace /* ... */ spans with spaces, preserving line structure."""
    out = []
    in_block = False
    i = 0
    while i < len(text):
        if not in_block and text.startswith("/*", i):
            in_block = True
            i += 2
            out.append("  ")
        elif in_block and text.startswith("*/", i):
            in_block = False
            i += 2
            out.append("  ")
        elif in_block and text[i] != "\n":
            out.append(" ")
            i += 1
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def lint_file(rel, text):
    """Lint one file; `rel` is the path relative to src/ with / separators.
    Yields (lineno, rule, message)."""
    layer = rel.split("/", 1)[0]
    allowed_layers = {layer} | CLOSURE.get(layer, set())
    lines = strip_block_comments(text).split("\n")

    # Scope tracking for notify-outside-lock: a stack of brace depths at
    # which a MutexLock was declared. A Notify is fine iff some live
    # MutexLock sits at a depth <= the current one.
    depth = 0
    lock_depths = []

    for lineno, raw in enumerate(lines, start=1):
        line = strip_comments_and_strings(raw)

        # Match includes on the raw line: the string-stripper above blanks
        # the quoted path.
        m = INCLUDE.match(LINE_COMMENT.sub("", raw))
        if m:
            inc = m.group(1)
            inc_layer = inc.split("/", 1)[0]
            if inc_layer in LAYER_DEPS and inc_layer not in allowed_layers:
                yield (lineno, "layer-violation",
                       f'layer "{layer}" must not include "{inc}" '
                       f'("{inc_layer}" is not in its dependency closure; '
                       "see src/CMakeLists.txt)")

        am = ANGLE_INCLUDE.match(LINE_COMMENT.sub("", raw))
        if (am and am.group(1) in INTRINSIC_HEADERS
                and layer != "common" and not INTRINSIC_TU.search(rel)):
            yield (lineno, "raw-intrinsics",
                   f"<{am.group(1)}> outside common/ and *_avx2.cc/"
                   "*_avx512.cc; route SIMD through the dispatch table "
                   "(common/simd_kernels.h) so the ISA clamp, forced-ISA "
                   "matrix and byte-identity tests cover it")

        if layer != "common":
            if RAW_PRIMITIVE.search(line):
                yield (lineno, "raw-primitive",
                       "raw std synchronization primitive outside common/; "
                       "use radix::Mutex / MutexLock / CondVar "
                       "(common/mutex.h)")
            if RAW_THREAD.search(line):
                yield (lineno, "raw-primitive",
                       "raw std::thread outside common/; use the ThreadPool")

        if RAW_NEW_ARRAY.search(line):
            yield (lineno, "raw-new-array",
                   "raw new[]; use std::vector or AlignedBuffer")

        if SNPRINTF_STMT.match(line):
            yield (lineno, "unchecked-snprintf",
                   "snprintf result discarded; check the return value "
                   "(or (void)-cast a deliberate ignore)")

        if TSA_ESCAPE.search(line):
            if rel != TSA_ESCAPE_HOME and rel not in TSA_ESCAPE_MENTIONS:
                yield (lineno, "tsa-escape",
                       "RADIX_NO_THREAD_SAFETY_ANALYSIS is only sanctioned "
                       f"in {TSA_ESCAPE_HOME} (with a justification "
                       "comment)")

        # Update scope state in positional order: braces, MutexLock
        # declarations and Notify calls interleave on one line, and a
        # notify only counts as locked if a still-live MutexLock was
        # declared before it.
        events = [(m.start(), "{" if m.group() == "{" else "}")
                  for m in re.finditer(r"[{}]", line)]
        events += [(m.start(), "lock")
                   for m in MUTEX_LOCK_DECL.finditer(line)]
        events += [(m.start(), "notify") for m in NOTIFY.finditer(line)]
        for _, kind in sorted(events):
            if kind == "{":
                depth += 1
            elif kind == "}":
                depth -= 1
                while lock_depths and lock_depths[-1] > depth:
                    lock_depths.pop()
            elif kind == "lock":
                lock_depths.append(depth)
            elif not lock_depths:
                yield (lineno, "notify-outside-lock",
                       "CondVar notify with no MutexLock live in scope; "
                       "notify under the lock (docs/CONCURRENCY.md)")


FUZZ = REPO / "fuzz"
# A harness counts as registered when its name appears on its own line
# inside fuzz/CMakeLists.txt (the RADIX_FUZZ_HARNESSES list entries).
FUZZ_LIST_ENTRY = re.compile(r"^\s*([a-z0-9_]+_fuzz)\)?\s*$", re.MULTILINE)


def lint_fuzz_registration(harness_names, cmake_text, corpus_seeds):
    """Pure core of the fuzz-unregistered rule, separated from the
    filesystem so --self-test can fabricate its inputs.

    harness_names: iterable of harness stems (e.g. "cluster_spec_fuzz")
                   for each fuzz/*_fuzz.cc present.
    cmake_text:    contents of fuzz/CMakeLists.txt.
    corpus_seeds:  dict harness stem -> number of seed files in
                   fuzz/corpus/<stem>/ (missing key = no directory).
    Yields (harness, message).
    """
    registered = set(FUZZ_LIST_ENTRY.findall(cmake_text))
    for name in sorted(harness_names):
        if name not in registered:
            yield (name,
                   f"fuzz/{name}.cc has no target: add it to the "
                   "RADIX_FUZZ_HARNESSES list in fuzz/CMakeLists.txt "
                   "(and a RADIX_FUZZ_RAND_<name> smoke depth)")
        if corpus_seeds.get(name, 0) == 0:
            yield (name,
                   f"fuzz/corpus/{name}/ is missing or empty: commit at "
                   "least one seed input (replay mode proves nothing "
                   "without seeds; see docs/FUZZING.md)")


def run_fuzz_registration():
    """Collect the real fuzz/ layout and apply the pure rule."""
    if not FUZZ.is_dir():
        return []
    harnesses = [p.stem for p in FUZZ.glob("*_fuzz.cc")]
    cmake = FUZZ / "CMakeLists.txt"
    cmake_text = cmake.read_text() if cmake.is_file() else ""
    seeds = {}
    for name in harnesses:
        corpus = FUZZ / "corpus" / name
        if corpus.is_dir():
            seeds[name] = sum(1 for f in corpus.iterdir() if f.is_file())
    return [f"fuzz/{name}.cc: [fuzz-unregistered] {msg}"
            for name, msg in lint_fuzz_registration(harnesses, cmake_text,
                                                    seeds)]


def run(paths=None):
    failures = []
    files = sorted(SRC.rglob("*.h")) + sorted(SRC.rglob("*.cc"))
    if paths:
        files = [pathlib.Path(p) for p in paths]
    for path in files:
        rel = path.resolve().relative_to(SRC).as_posix()
        for lineno, rule, msg in lint_file(rel, path.read_text()):
            failures.append(f"src/{rel}:{lineno}: [{rule}] {msg}")
    if not paths:
        failures.extend(run_fuzz_registration())
    return failures


SELF_TEST_CASES = [
    # (relative-path-to-pretend, source, expected rule or None)
    ("engine/bad.cc", "std::mutex mu_;\n", "raw-primitive"),
    ("engine/bad.cc", "std::lock_guard<std::mutex> l(mu_);\n",
     "raw-primitive"),
    ("pipeline/bad.cc", "std::thread t([] {});\n", "raw-primitive"),
    ("common/ok.cc", "std::mutex mu_;\n", None),  # common/ may wrap raws
    ("cluster/bad.cc", "auto* p = new uint64_t[n];\n", "raw-new-array"),
    ("engine/bad.cc", "  std::snprintf(buf, sizeof(buf), \"%d\", x);\n",
     "unchecked-snprintf"),
    ("engine/ok.cc",
     "  const int n = std::snprintf(buf, sizeof(buf), \"%d\", x);\n", None),
    ("cluster/bad.cc", "void F() RADIX_NO_THREAD_SAFETY_ANALYSIS;\n",
     "tsa-escape"),
    ("common/thread_pool.cc",
     "void F() RADIX_NO_THREAD_SAFETY_ANALYSIS;\n", None),
    ("bufferpool/bad.cc", '#include "engine/engine.h"\n', "layer-violation"),
    ("storage/bad.cc", '#include "cluster/radix_cluster.h"\n',
     "layer-violation"),
    ("engine/ok.cc", '#include "cluster/radix_cluster.h"\n', None),
    # ops sits below engine: an upward include must be caught...
    ("ops/bad.cc", '#include "engine/engine.h"\n', "layer-violation"),
    # ...while its sanctioned deps (project + closure) are clean, and
    # engine may reach down into ops.
    ("ops/ok.cc", '#include "project/dsm_post.h"\n', None),
    ("ops/ok.cc", '#include "join/positional_join.h"\n', None),
    ("engine/ok.cc", '#include "ops/plan.h"\n', None),
    ("engine/bad.cc",
     "void F() {\n  { MutexLock lock(mu_); x = 1; }\n  cv_.NotifyAll();\n}\n",
     "notify-outside-lock"),
    ("engine/ok.cc",
     "void F() {\n  MutexLock lock(mu_);\n  x = 1;\n  cv_.NotifyAll();\n}\n",
     None),
    ("engine/ok.cc",
     "void F() {\n  { MutexLock lock(mu_); cv_.NotifyOne(); }\n}\n", None),
    # Comments and strings must not fire.
    ("engine/ok.cc", "// std::mutex is banned here\n", None),
    ("engine/ok.cc", 's += "std::mutex";\n', None),
    # Raw intrinsics: banned in ordinary layer code...
    ("cluster/bad.cc", "#include <immintrin.h>\n", "raw-intrinsics"),
    ("join/bad.h", "#include <emmintrin.h>\n", "raw-intrinsics"),
    # ...allowed in common/ (the dispatch table lives there) and in
    # per-ISA kernel TUs that get their own -m flags...
    ("common/simd_kernels.h", "#include <immintrin.h>\n", None),
    ("cluster/scatter_avx2.cc", "#include <immintrin.h>\n", None),
    ("cluster/scatter_avx512.cc", "#include <immintrin.h>\n", None),
    # ...and prose or non-intrinsic angle includes never fire.
    ("cluster/ok.cc", "// #include <immintrin.h> is banned\n", None),
    ("cluster/ok.cc", "#include <vector>\n", None),
]

# Fabricated fuzz/ layouts for the fuzz-unregistered rule:
# (harness names, CMakeLists text, corpus seed counts, expected hit count).
FUZZ_CMAKE_OK = (
    "set(RADIX_FUZZ_HARNESSES\n  alpha_fuzz\n  beta_fuzz)\n"
)
FUZZ_SELF_TEST_CASES = [
    # Both registered, both seeded: clean.
    (["alpha_fuzz", "beta_fuzz"], FUZZ_CMAKE_OK,
     {"alpha_fuzz": 3, "beta_fuzz": 1}, 0),
    # Harness source exists but is absent from the list: caught.
    (["alpha_fuzz", "beta_fuzz", "gamma_fuzz"], FUZZ_CMAKE_OK,
     {"alpha_fuzz": 3, "beta_fuzz": 1, "gamma_fuzz": 2}, 1),
    # Registered but the corpus directory is empty: caught.
    (["alpha_fuzz", "beta_fuzz"], FUZZ_CMAKE_OK,
     {"alpha_fuzz": 3, "beta_fuzz": 0}, 1),
    # ...or missing entirely: caught.
    (["alpha_fuzz", "beta_fuzz"], FUZZ_CMAKE_OK, {"alpha_fuzz": 3}, 1),
    # Unregistered AND unseeded: two findings for the one harness.
    (["alpha_fuzz", "beta_fuzz", "gamma_fuzz"], FUZZ_CMAKE_OK,
     {"alpha_fuzz": 3, "beta_fuzz": 1}, 2),
    # The name must be a list entry, not prose in a comment.
    (["alpha_fuzz"], "# alpha_fuzz is documented here\n",
     {"alpha_fuzz": 3}, 1),
]


def self_test():
    bad = 0
    for i, (rel, source, expected) in enumerate(SELF_TEST_CASES):
        hits = [rule for (_, rule, _) in lint_file(rel, source)]
        if expected is None:
            if hits:
                print(f"self-test case {i} ({rel}): expected clean, "
                      f"got {hits}")
                bad += 1
        elif expected not in hits:
            print(f"self-test case {i} ({rel}): seeded {expected} "
                  f"violation NOT caught (got {hits})")
            bad += 1
    for i, (names, cmake, seeds, expected) in enumerate(FUZZ_SELF_TEST_CASES):
        hits = list(lint_fuzz_registration(names, cmake, seeds))
        if len(hits) != expected:
            print(f"fuzz self-test case {i}: expected {expected} "
                  f"finding(s), got {len(hits)}: {hits}")
            bad += 1
    if bad:
        print(f"radix_lint self-test: {bad} case(s) FAILED")
        return 1
    print(f"radix_lint self-test: all "
          f"{len(SELF_TEST_CASES) + len(FUZZ_SELF_TEST_CASES)} cases pass")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded seeded-violation suite")
    parser.add_argument("paths", nargs="*",
                        help="specific files to lint (default: all of src/)")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    failures = run(args.paths)
    for f in failures:
        print(f)
    if failures:
        print(f"radix_lint: {len(failures)} violation(s)")
        return 1
    print("radix_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
