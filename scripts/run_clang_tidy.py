#!/usr/bin/env python3
"""Run clang-tidy (config: .clang-tidy) over the project's own sources.

Reads compile_commands.json from the build directory (exported by default —
CMAKE_EXPORT_COMPILE_COMMANDS is ON in the top-level CMakeLists.txt),
filters it to src/*.cc (third-party and test code excluded), and runs
clang-tidy in parallel with --warnings-as-errors=* so any finding fails
the run.

When clang-tidy is not installed the script skips with a notice and exit
code 0 so local GCC-only environments are not blocked; CI passes --strict
to turn a missing tool into a failure.

Usage:
  python3 scripts/run_clang_tidy.py [--build-dir build] [--strict] [-j N]
"""

import argparse
import concurrent.futures
import json
import pathlib
import shutil
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="build directory with compile_commands.json")
    parser.add_argument("--strict", action="store_true",
                        help="fail (instead of skip) when clang-tidy is "
                             "missing — what CI uses")
    parser.add_argument("-j", "--jobs", type=int, default=0,
                        help="parallel clang-tidy processes (0 = #cpus)")
    parser.add_argument("--clang-tidy", default="clang-tidy",
                        help="clang-tidy binary to use")
    args = parser.parse_args()

    tidy = shutil.which(args.clang_tidy)
    if tidy is None:
        msg = f"{args.clang_tidy} not found"
        if args.strict:
            print(f"run_clang_tidy: {msg} (--strict)", file=sys.stderr)
            return 1
        print(f"run_clang_tidy: {msg}; skipping (CI runs this with "
              "--strict)")
        return 0

    build_dir = (REPO / args.build_dir).resolve()
    db_path = build_dir / "compile_commands.json"
    if not db_path.exists():
        print(f"run_clang_tidy: {db_path} not found — configure first "
              "(compile_commands.json export is on by default)",
              file=sys.stderr)
        return 1

    db = json.loads(db_path.read_text())
    src = (REPO / "src").resolve()
    files = sorted({
        str(pathlib.Path(e["file"]).resolve())
        for e in db
        if pathlib.Path(e["file"]).resolve().is_relative_to(src)
        and e["file"].endswith(".cc")
    })
    if not files:
        print("run_clang_tidy: no src/*.cc entries in compile_commands.json",
              file=sys.stderr)
        return 1

    jobs = args.jobs or (len(files) if len(files) < 32 else 32)

    def run_one(path):
        proc = subprocess.run(
            [tidy, "-p", str(build_dir), "--quiet",
             "--warnings-as-errors=*", path],
            capture_output=True, text=True)
        return path, proc.returncode, proc.stdout + proc.stderr

    failed = 0
    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
        for path, rc, output in pool.map(run_one, files):
            rel = pathlib.Path(path).relative_to(REPO)
            if rc != 0:
                failed += 1
                print(f"FAIL {rel}\n{output}")
            else:
                print(f"ok   {rel}")

    if failed:
        print(f"run_clang_tidy: {failed}/{len(files)} files failed")
        return 1
    print(f"run_clang_tidy: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
