#!/usr/bin/env python3
"""Merge several Google Benchmark JSON reports into one artifact.

Used by CI to publish BENCH_ci.json — the quick-mode fig09/fig10/ablation
numbers of every main push — so future PRs have a perf trajectory to
compare against. The output keeps one `context` (they only differ in
timestamps) and tags each benchmark with its source binary.

Usage: merge_bench_json.py OUT.json IN1.json IN2.json ...

Trajectory mode appends one entry per commit to a history file
(BENCH_trajectory.json — a JSON array, newest last), so a cached file
carried across CI runs accumulates the perf curve of main over time:

  merge_bench_json.py --trajectory BENCH_trajectory.json \
      --sha "$GITHUB_SHA" --date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
      MERGED.json

Re-running for a sha already present replaces that entry (CI retries
must not duplicate points). Each entry keeps only the per-benchmark
medians plus the counters needed for plotting, not the full reports,
so the file stays small over hundreds of commits.
"""

import argparse
import json
import os
import sys


def merge(out_path, in_paths):
    merged = {"context": None, "benchmarks": []}
    for path in in_paths:
        with open(path) as f:
            report = json.load(f)
        if merged["context"] is None:
            merged["context"] = report.get("context", {})
        source = os.path.splitext(os.path.basename(path))[0]
        for bench in report.get("benchmarks", []):
            bench["source"] = source
            merged["benchmarks"].append(bench)
    with open(out_path, "w") as f:
        json.dump(merged, f, indent=1)
    print(f"wrote {out_path}: {len(merged['benchmarks'])} benchmarks "
          f"from {len(in_paths)} reports")
    return 0


def append_trajectory(trajectory_path, sha, date, report_path):
    with open(report_path) as f:
        report = json.load(f)
    point = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        entry = {"real_time": bench.get("real_time")}
        for key in ("checksum_lo32", "isa", "N", "source"):
            if key in bench:
                entry[key] = bench[key]
        point[bench["name"]] = entry

    history = []
    if os.path.exists(trajectory_path):
        with open(trajectory_path) as f:
            try:
                history = json.load(f)
            except json.JSONDecodeError:
                print(f"warning: {trajectory_path} is corrupt, restarting "
                      "the trajectory", file=sys.stderr)
                history = []
    history = [h for h in history if h.get("sha") != sha]
    history.append({
        "sha": sha,
        "date": date,
        "num_cpus": report.get("context", {}).get("num_cpus"),
        "benchmarks": point,
    })
    history.sort(key=lambda h: h.get("date") or "")
    with open(trajectory_path, "w") as f:
        json.dump(history, f, indent=1)
    print(f"trajectory {trajectory_path}: {len(history)} commits, "
          f"latest {sha[:12]} with {len(point)} benchmarks")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--trajectory", metavar="HISTORY.json",
                        help="append mode: add one entry per commit")
    parser.add_argument("--sha", help="commit sha (trajectory mode)")
    parser.add_argument("--date", help="ISO date (trajectory mode)")
    parser.add_argument("paths", nargs="+",
                        help="OUT.json IN...json, or MERGED.json in "
                        "trajectory mode")
    args = parser.parse_args()

    if args.trajectory:
        if not args.sha or not args.date or len(args.paths) != 1:
            parser.error("--trajectory requires --sha, --date and exactly "
                         "one merged report")
        return append_trajectory(args.trajectory, args.sha, args.date,
                                 args.paths[0])
    if len(args.paths) < 2:
        parser.error("need OUT.json and at least one input report")
    return merge(args.paths[0], args.paths[1:])


if __name__ == "__main__":
    sys.exit(main())
