#!/usr/bin/env python3
"""Merge several Google Benchmark JSON reports into one artifact.

Used by CI to publish BENCH_ci.json — the quick-mode fig09/fig10/ablation
numbers of every main push — so future PRs have a perf trajectory to
compare against. The output keeps one `context` (they only differ in
timestamps) and tags each benchmark with its source binary.

Usage: merge_bench_json.py OUT.json IN1.json IN2.json ...
"""

import json
import os
import sys


def main() -> int:
    if len(sys.argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    out_path, in_paths = sys.argv[1], sys.argv[2:]
    merged = {"context": None, "benchmarks": []}
    for path in in_paths:
        with open(path) as f:
            report = json.load(f)
        if merged["context"] is None:
            merged["context"] = report.get("context", {})
        source = os.path.splitext(os.path.basename(path))[0]
        for bench in report.get("benchmarks", []):
            bench["source"] = source
            merged["benchmarks"].append(bench)
    with open(out_path, "w") as f:
        json.dump(merged, f, indent=1)
    print(f"wrote {out_path}: {len(merged['benchmarks'])} benchmarks "
          f"from {len(in_paths)} reports")
    return 0


if __name__ == "__main__":
    sys.exit(main())
