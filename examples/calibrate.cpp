// Calibrator demo, mirroring the MonetDB Calibrator the paper uses to
// derive its cost-model parameters: measures the latency curve over
// growing working sets (exposing the cache capacities as knees), the
// sequential bandwidth, and prints the refined hierarchy plus the derived
// radix-algorithm parameters for this machine.

#include <cstdio>

#include "cluster/partition_plan.h"
#include "decluster/window.h"
#include "engine/engine.h"
#include "hardware/calibrator.h"
#include "hardware/memory_hierarchy.h"
#include "workload/generator.h"

int main() {
  using namespace radix;  // NOLINT

  hardware::MemoryHierarchy detected = hardware::MemoryHierarchy::Detect();
  std::printf("Detected geometry (sysfs):\n%s\n",
              detected.ToString().c_str());

  hardware::Calibrator::Options opts;
  opts.accesses_per_point = 1u << 20;
  opts.max_working_set_bytes = 32u << 20;
  hardware::Calibrator cal(opts);

  std::printf("Latency curve (random pointer chase):\n");
  std::printf("%12s %12s\n", "working set", "ns/access");
  for (const auto& point : cal.MeasureLatencyCurve()) {
    std::printf("%10zuKB %12.2f\n", point.working_set_bytes / 1024,
                point.ns_per_access);
  }

  // A calibrate_on_startup engine runs exactly this measurement once and
  // plans/models against the refined hierarchy for its whole session —
  // the paper's §1.1 story of a startup Calibrator parameterizing the
  // cost model.
  engine::EngineConfig config;
  config.calibrate_on_startup = true;
  config.calibrator_options = opts;
  engine::Engine eng(std::move(config));
  const hardware::MemoryHierarchy& calibrated = eng.hierarchy();
  std::printf("\nCalibrated hierarchy (engine session profile):\n%s\n",
              calibrated.ToString().c_str());

  // What the planner does with it: explain the paper's query at 4M tuples
  // without running it — modeled seconds are in this machine's units.
  workload::JoinWorkloadSpec wspec;
  wspec.cardinality = 4u << 20;
  wspec.num_attrs = 3;
  wspec.build_nsm = false;
  workload::JoinWorkload w = workload::MakeJoinWorkload(wspec);
  engine::QuerySpec qspec;
  qspec.pi_left = 2;
  qspec.pi_right = 2;
  std::printf("Explain (N = 4M, pi = 2, not executed):\n%s\n\n",
              eng.Prepare(w, qspec).Explain().ToString().c_str());

  // What the radix algorithms derive from this machine.
  std::printf("Derived parameters for this machine:\n");
  std::printf("  max healthy per-pass radix bits: %u\n",
              cluster::MaxPassBits(calibrated));
  for (size_t n : {1'000'000ul, 10'000'000ul, 100'000'000ul}) {
    radix_bits_t b = cluster::PartialClusterBits(n, 4, calibrated);
    std::printf("  partial-cluster bits for %9zu-tuple column: B=%u "
                "(ignore %u)\n",
                n, b, cluster::IgnoreBits(n, b));
  }
  std::printf("  default decluster window: %zu elements (4-byte values)\n",
              decluster::WindowPolicy::DefaultWindowElems(calibrated, 4));
  std::printf("  max efficient decluster cardinality: %zu tuples\n",
              decluster::WindowPolicy::MaxEfficientCardinality(calibrated, 4));
  return 0;
}
