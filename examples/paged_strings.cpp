// Section-5 example: Radix-Decluster into an NSM buffer manager with
// variable-size (string) values — the three-phase scheme of the paper's
// Fig. 12. Shows that the result pages contain every string at its correct
// result position even though values cannot be inserted "by position"
// directly.

#include <cstdio>
#include <string>
#include <vector>

#include "bufferpool/buffer_manager.h"
#include "cluster/radix_cluster.h"
#include "common/rng.h"
#include "decluster/paged_decluster.h"
#include "workload/distributions.h"

int main(int argc, char** argv) {
  using namespace radix;  // NOLINT

  size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100'000;

  // Build a clustered (string values, result positions) pair, as the DSM
  // post-projection pipeline would deliver it: positions ascend within
  // each cluster but spread over the whole result.
  struct KeyPos {
    oid_t key;
    oid_t pos;
  };
  Rng rng(1);
  std::vector<KeyPos> pairs(n);
  for (size_t i = 0; i < n; ++i) {
    pairs[i] = {static_cast<oid_t>(rng.Below(n)), static_cast<oid_t>(i)};
  }
  radix_bits_t sig = SignificantBits(n);
  radix_bits_t bits = std::min<radix_bits_t>(8, sig);
  cluster::ClusterSpec spec{.total_bits = bits,
                            .ignore_bits = static_cast<radix_bits_t>(sig - bits),
                            .passes = 1};
  std::vector<KeyPos> scratch(n);
  simcache::NoTracer tracer;
  auto radix_of = [](const KeyPos& p) -> uint64_t { return p.key; };
  cluster::ClusterBorders borders = cluster::RadixClusterMultiPass(
      pairs.data(), scratch.data(), n, radix_of, spec, tracer);

  decluster::VarValues values;
  std::vector<oid_t> ids(n);
  for (size_t i = 0; i < n; ++i) {
    ids[i] = pairs[i].pos;
    // Variable-length strings, like the "fast"/"hashing"/"great" of Fig. 12.
    values.Append("str-" + std::to_string(pairs[i].pos) +
                  std::string(pairs[i].pos % 17, '.'));
  }

  bufferpool::BufferManager bm(8192);
  decluster::PagedResult result =
      decluster::PagedDeclusterVar(values, ids, borders, 64 * 1024, &bm);

  std::printf("Declustered %zu variable-size strings into %zu pages of %zu "
              "bytes\n", n, result.num_pages, bm.page_bytes());

  // Verify: result position i must hold the string built for position i.
  size_t errors = 0;
  for (size_t i = 0; i < n; ++i) {
    std::string expect = "str-" + std::to_string(i) + std::string(i % 17, '.');
    if (result.Read(bm, i) != expect) ++errors;
  }
  std::printf("Verification: %zu mismatches out of %zu strings\n", errors, n);

  std::printf("First page holds %zu records; e.g. result[0] = \"%.*s\"\n",
              bm.page(result.first_page).num_records(),
              static_cast<int>(result.Read(bm, 0).size()),
              result.Read(bm, 0).data());
  return errors == 0 ? 0 : 1;
}
