// Strategy explorer: runs the paper's project-join query under all six
// end-to-end strategies of Fig. 10 on one workload, prints a comparison
// table, and cross-checks that every strategy computed the same relation
// (order-independent checksum).
//
//   ./build/examples/strategy_explorer [N] [omega] [pi] [hit_rate_pct]
// e.g.
//   ./build/examples/strategy_explorer 500000 64 4 100

#include <cstdio>
#include <cstdlib>

#include "engine/engine.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace radix;  // NOLINT
  using project::JoinStrategy;

  size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 500'000;
  size_t omega = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 16;
  size_t pi = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 4;
  double h = argc > 4 ? std::strtod(argv[4], nullptr) / 100.0 : 1.0;
  if (pi + 1 > omega) {
    std::fprintf(stderr, "pi must be < omega\n");
    return 2;
  }

  // One session engine drives all six strategies; Explain() supplies the
  // modeled cost column so measured and predicted sit side by side.
  engine::Engine eng{engine::EngineConfig{}};
  workload::JoinWorkloadSpec spec;
  spec.cardinality = n;
  spec.num_attrs = omega;
  spec.hit_rate = h;
  workload::JoinWorkload w = workload::MakeJoinWorkload(spec);

  std::printf("Query: N=%zu, omega=%zu, pi=%zu per side, hit rate %.2f\n\n",
              n, omega, pi, h);
  std::printf("%-22s %10s %10s %12s %11s %8s  %s\n", "strategy", "total ms",
              "join ms", "project ms", "modeled ms", "tuples", "detail");

  engine::QuerySpec qspec;
  qspec.pi_left = pi;
  qspec.pi_right = pi;

  uint64_t reference_checksum = 0;
  bool first = true;
  bool mismatch = false;
  for (JoinStrategy s :
       {JoinStrategy::kNsmPreHash, JoinStrategy::kNsmPrePhash,
        JoinStrategy::kDsmPrePhash, JoinStrategy::kDsmPostDecluster,
        JoinStrategy::kNsmPostDecluster, JoinStrategy::kNsmPostJive}) {
    qspec.strategy = s;
    engine::PreparedQuery prepared = eng.Prepare(w, qspec);
    project::QueryRun run = prepared.Execute();
    double project_ms = (run.phases.cluster_seconds +
                         run.phases.projection_seconds +
                         run.phases.decluster_seconds) *
                        1e3;
    std::printf("%-22s %10.1f %10.1f %12.1f %11.1f %8zu  %s\n",
                project::JoinStrategyName(s), run.seconds * 1e3,
                run.phases.join_seconds * 1e3, project_ms,
                prepared.Explain().modeled_seconds * 1e3,
                run.result_cardinality, run.detail.c_str());
    if (first) {
      reference_checksum = run.checksum;
      first = false;
    } else if (run.checksum != reference_checksum) {
      mismatch = true;
      std::printf("  ^^ CHECKSUM MISMATCH\n");
    }
  }
  std::printf("\nAll strategies %s the same relation.\n",
              mismatch ? "did NOT compute" : "computed");
  return mismatch ? 1 : 0;
}
