// Domain example from the paper's introduction: a multimedia application
// joining a result set against a table of feature vectors, where the
// projection propagates MANY columns ("imagine a join with thousands of
// projection columns to propagate feature vectors"). This is the regime
// where projection dominates total cost (>90% in the paper's measurements)
// and where the choice of projection strategy matters most.
//
// We join a 64-dimensional feature-vector table against a selection and
// compare three right-side projection strategies: unsorted, sorted (full
// Radix-Sort of the join index), and the paper's cluster+decluster.

#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "hardware/memory_hierarchy.h"
#include "join/partitioned_hash_join.h"
#include "project/dsm_post.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace radix;  // NOLINT

  size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : (1u << 20);
  constexpr size_t kDims = 64;  // feature-vector dimensionality

  hardware::MemoryHierarchy hw = hardware::MemoryHierarchy::Detect();

  // Feature table: key + 64 feature columns, DSM so the join phase touches
  // only the key column.
  workload::JoinWorkloadSpec spec;
  spec.cardinality = n;
  spec.num_attrs = 1 + kDims;
  spec.hit_rate = 1.0;
  spec.build_nsm = false;  // column store only
  workload::JoinWorkload w = workload::MakeJoinWorkload(spec);

  join::JoinIndex index = join::PartitionedHashJoin(
      w.dsm_left.key().span(), w.dsm_right.key().span(), hw);
  std::printf("Joined %zu query tuples against %zu feature vectors "
              "(%zu matches)\n\n", n, n, index.size());

  auto run = [&](project::SideStrategy strategy, const char* name) {
    // Project all 64 feature columns of the "smaller" (right) table.
    std::vector<oid_t> ids = index.RightOids();
    std::vector<std::span<const value_t>> columns(kDims);
    std::vector<storage::Column<value_t>> out(kDims);
    std::vector<std::span<value_t>> out_spans(kDims);
    for (size_t d = 0; d < kDims; ++d) {
      columns[d] = w.dsm_right.attr(1 + d).span();
      out[d].Resize(index.size());
      out_spans[d] = out[d].span();
    }
    Timer timer;
    project::PhaseBreakdown phases;
    project::ProjectSide(ids, strategy, columns, out_spans, n, hw,
                         project::DsmPostOptions::kAuto, 0, &phases);
    double ms = timer.ElapsedMillis();
    std::printf("%-22s %8.1f ms  (reorder %6.1f, fetch %6.1f, "
                "decluster %6.1f)\n",
                name, ms, phases.cluster_seconds * 1e3,
                phases.projection_seconds * 1e3,
                phases.decluster_seconds * 1e3);
    return out[0][0];  // defeat dead-code elimination
  };

  std::printf("Projecting %zu feature columns of the matched vectors:\n",
              kDims);
  value_t sink = 0;
  sink ^= run(project::SideStrategy::kUnsorted, "unsorted (u)");
  sink ^= run(project::SideStrategy::kDecluster, "radix-decluster (d)");
  // For reference, what the *first* (reorderable) table could use:
  sink ^= run(project::SideStrategy::kSorted, "full radix-sort (s)");
  sink ^= run(project::SideStrategy::kClustered, "partial cluster (c)");

  std::printf("\nNote: u and d preserve the result order and are the only "
              "valid choices for the second projection table; s and c are "
              "shown for comparison (paper §4.1).\n");
  return sink == 1 ? 1 : 0;
}
