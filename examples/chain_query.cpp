// Chain query: run a three-table plan *tree* — select, two joins, grouped
// aggregate — through the composable operator layer via the session engine
// (Prepare -> Explain -> Execute), then verify against the scalar
// tuple-at-a-time reference interpreter.
//
//   SELECT t2.a1, SUM(t0.a1), COUNT(*)
//   FROM t0, t1, t2
//   WHERE t0.a1 < bound AND t0.key = t1.key AND t1.key = t2.key
//   GROUP BY t2.a1
//
// Each join edge gets its own Fig. 10 strategy (u/s/c/d per side) from the
// cost model; Explain() prints the per-edge codes before anything runs.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/chain_query [cardinality]

#include <cstdio>
#include <cstdlib>

#include "engine/engine.h"
#include "ops/plan.h"
#include "ops/reference.h"
#include "ops/table.h"
#include "workload/chain.h"

int main(int argc, char** argv) {
  using namespace radix;  // NOLINT

  size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : (1u << 18);

  // 1. A three-table chain workload: every key of table t also appears in
  //    table t+1, so t0 |X| t1 |X| t2 threads each t0 tuple through the
  //    whole chain. Payload attribute a of table t holds
  //    PayloadValue(key, a + 1000*t) — recomputable by any verifier.
  workload::ChainWorkloadSpec spec;
  spec.cardinalities = {n, n / 2, n};
  spec.num_attrs = 4;
  workload::ChainWorkload w = workload::MakeChainWorkload(spec);
  ops::Catalog catalog = ops::CatalogFromChainWorkload(w);
  std::printf("Chain workload: |t0|=%zu |t1|=%zu |t2|=%zu\n\n",
              w.tables[0].cardinality(), w.tables[1].cardinality(),
              w.tables[2].cardinality());

  // 2. Compose the logical plan tree from operators. PayloadValue is
  //    uniform over [0, 2^31), so the midpoint bound keeps ~half of t0.
  ops::Predicate pred;
  pred.col = {0, 1, false};
  pred.op = ops::CmpOp::kLt;
  pred.value = value_t{1} << 30;
  ops::LogicalPlan plan;
  plan.root = ops::Aggregate(
      ops::Join(ops::Join(ops::Select(ops::Scan(0), pred), ops::Scan(1), 0, 1),
                ops::Scan(2), 1, 2),
      {{2, 1, false}},
      {{ops::AggFn::kSum, {0, 1, false}}, {ops::AggFn::kCount, {}}});

  // 3. Prepare through the session engine: the optimizer estimates
  //    cardinalities bottom-up and picks each join edge's Fig. 10 strategy;
  //    the plan cache keys on the full tree shape + catalog.
  engine::EngineConfig config;
  config.num_threads = 0;  // all hardware threads
  engine::Engine eng(std::move(config));
  engine::PreparedPlan prepared;
  Status st = eng.Prepare(catalog, plan, &prepared);
  if (!st.ok()) {
    std::printf("Prepare failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("Explain:\n%s\n\n", prepared.Explain().ToString().c_str());

  // 4. Execute chunk-at-a-time on the session resources: radix joins on the
  //    edges, streaming select/project, blocking aggregate at the root.
  ops::PlanRun run;
  st = prepared.Execute(&run);
  if (!st.ok()) {
    std::printf("Execute failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("Result: %zu groups in %.2f ms on %zu thread(s) (%zu chunks)\n",
              run.result_rows, run.seconds * 1e3, run.threads_used,
              run.chunks);

  // 5. Verify against the scalar reference interpreter: row-major tuples,
  //    hash-lookup joins, std::map grouping — no radix machinery, no
  //    chunking — must land on the identical order-independent checksum.
  ops::PlanRun ref;
  st = ops::ReferenceExecute(catalog, plan, &ref);
  if (!st.ok()) {
    std::printf("Reference failed: %s\n", st.ToString().c_str());
    return 1;
  }
  bool ok = run.result_rows == ref.result_rows && run.checksum == ref.checksum;
  std::printf("Scalar reference check: %s (%zu groups, checksum %016llx)\n",
              ok ? "checksum matches" : "MISMATCH", ref.result_rows,
              static_cast<unsigned long long>(ref.checksum));
  return ok ? 0 : 1;
}
