// Quickstart: run the paper's project-join query end-to-end with the
// winning strategy (DSM post-projection with Radix-Decluster) and print
// what happened in each phase.
//
//   SELECT larger.a1, larger.a2, smaller.b1, smaller.b2
//   FROM larger, smaller WHERE larger.key = smaller.key
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart [cardinality]

#include <cstdio>
#include <cstdlib>

#include "hardware/memory_hierarchy.h"
#include "join/partitioned_hash_join.h"
#include "project/dsm_post.h"
#include "project/executor.h"
#include "project/planner.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace radix;  // NOLINT

  size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : (1u << 20);

  // 1. Describe the machine. Detect() reads cache geometry from sysfs; the
  //    paper's Pentium 4 is available as a preset for planning experiments.
  hardware::MemoryHierarchy hw = hardware::MemoryHierarchy::Detect();
  std::printf("Memory hierarchy:\n%s\n", hw.ToString().c_str());

  // 2. Generate the paper's workload: two relations of N tuples, 4
  //    attributes each (key + 3 payload columns), join hit rate 1:1.
  workload::JoinWorkloadSpec spec;
  spec.cardinality = n;
  spec.num_attrs = 4;
  spec.hit_rate = 1.0;
  workload::JoinWorkload w = workload::MakeJoinWorkload(spec);
  std::printf("Workload: N = %zu tuples per relation, expected result %zu\n\n",
              n, w.expected_result_size);

  // 3. Ask the planner which DSM post-projection side strategies to use —
  //    "easy" joins use unsorted positional joins, "hard" ones the radix
  //    machinery (paper Fig. 10c's u/u -> c/u -> c/d -> s/d progression).
  project::Plan plan = project::PlanDsmPost(n, n, n, /*pi_left=*/2,
                                            /*pi_right=*/2, hw);
  std::printf("Planner: join is %s, side strategies %s\n",
              plan.easy ? "easy (columns fit cache)" : "hard", plan.code.c_str());

  // 4. Phase one: cache-conscious Partitioned Hash-Join on the key columns
  //    only, producing a join index.
  join::JoinIndex index = join::PartitionedHashJoin(
      w.dsm_left.key().span(), w.dsm_right.key().span(), hw);
  std::printf("Join index: %zu matching pairs\n", index.size());

  // 5. Phase two: post-projection. Left side is partially radix-clustered
  //    (sequentialish fetches), right side goes through cluster +
  //    positional join + Radix-Decluster.
  project::PhaseBreakdown phases;
  storage::DsmResult result = project::DsmPostProject(
      index, w.dsm_left, w.dsm_right, /*pi_left=*/2, /*pi_right=*/2, hw,
      plan.options, &phases);

  std::printf("Result: %zu tuples x (%zu left + %zu right) columns\n",
              result.cardinality, result.left_columns.size(),
              result.right_columns.size());
  std::printf("Phases: cluster %.2f ms, positional joins %.2f ms, "
              "decluster %.2f ms\n",
              phases.cluster_seconds * 1e3, phases.projection_seconds * 1e3,
              phases.decluster_seconds * 1e3);

  // 6. Verify a few rows: payloads are deterministic functions of the key.
  size_t errors = 0;
  for (size_t i = 0; i < result.cardinality; i += 1 + result.cardinality / 1000) {
    value_t key = w.dsm_left.key()[index[i].left];
    if (result.left_columns[0][i] != workload::PayloadValue(key, 1)) ++errors;
  }
  std::printf("Spot check: %zu mismatches\n", errors);
  return errors == 0 ? 0 : 1;
}
