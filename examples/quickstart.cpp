// Quickstart: run the paper's project-join query end-to-end through the
// session engine — the library's public entry point — and print the plan
// *before* it runs (Prepare -> Explain -> Execute).
//
//   SELECT larger.a1, larger.a2, smaller.b1, smaller.b2
//   FROM larger, smaller WHERE larger.key = smaller.key
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart [cardinality]

#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/hash.h"
#include "engine/engine.h"
#include "project/checksum.h"
#include "workload/generator.h"

namespace {

/// Independent ground truth: a scalar nested-loop join + projection digest
/// sharing no code with the radix kernels (only the canonical per-row
/// digest). Any engine strategy must land on exactly this
/// order-independent checksum — string bytes included.
uint64_t ReferenceChecksum(const radix::workload::JoinWorkload& w,
                           size_t pi_left, size_t pi_right,
                           size_t pi_varchar) {
  using radix::value_t;
  std::multimap<value_t, size_t> right_index;
  for (size_t i = 0; i < w.dsm_right.cardinality(); ++i) {
    right_index.emplace(w.dsm_right.key()[i], i);
  }
  uint64_t sum = 0;
  for (size_t i = 0; i < w.dsm_left.cardinality(); ++i) {
    auto [lo, hi] = right_index.equal_range(w.dsm_left.key()[i]);
    for (auto it = lo; it != hi; ++it) {
      radix::project::RowDigest d;
      for (size_t c = 0; c < pi_left; ++c) {
        d.AddValue(w.dsm_left.attr(1 + c)[i]);
      }
      for (size_t c = 0; c < pi_right; ++c) {
        d.AddValue(w.dsm_right.attr(1 + c)[it->second]);
      }
      for (size_t c = 0; c < pi_varchar; ++c) {
        d.AddString(w.left_varchars[c].at(i));
      }
      for (size_t c = 0; c < pi_varchar; ++c) {
        d.AddString(w.right_varchars[c].at(it->second));
      }
      sum += d.digest();
    }
  }
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace radix;  // NOLINT

  size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : (1u << 20);

  // 1. Build the session engine once per process. The config owns the
  //    machine description (Detect() reads cache geometry from sysfs; the
  //    paper's Pentium 4 is available as a preset), the worker pool, and
  //    the cost-model constants. calibrate_on_startup = true would refine
  //    the latencies with the §1.1-style runtime Calibrator.
  engine::EngineConfig config;
  config.num_threads = 1;  // serial kernels; try 0 for all hardware threads
  engine::Engine eng(std::move(config));
  std::printf("Memory hierarchy:\n%s\n", eng.hierarchy().ToString().c_str());

  // 2. Generate the paper's workload: two relations of N tuples, 4 fixed
  //    attributes each (key + 3 payload columns) plus one varchar payload
  //    column per side (paper §5's variable-size values), hit rate 1:1.
  workload::JoinWorkloadSpec spec;
  spec.cardinality = n;
  spec.num_attrs = 4;
  spec.hit_rate = 1.0;
  spec.varchar.num_cols = 1;
  workload::JoinWorkload w = workload::MakeJoinWorkload(spec);
  std::printf("Workload: N = %zu tuples per relation, expected result %zu, "
              "varchar heap %zu KB/side\n\n",
              n, w.expected_result_size,
              w.left_varchars[0].heap_bytes() / 1024);

  // 3. Prepare the query. The planner resolves the per-side strategies
  //    (Fig. 10c's u/u -> c/u -> c/d -> s/d progression), the radix/window
  //    parameters, and materializing-vs-streaming execution — and Explain()
  //    shows the whole plan with its modeled cost before anything runs.
  engine::QuerySpec query;
  query.pi_left = 2;
  query.pi_right = 2;
  query.pi_varchar_left = 1;   // mixed fixed+varchar projection list:
  query.pi_varchar_right = 1;  // the right strings run Fig. 12's scheme
  engine::PreparedQuery prepared = eng.Prepare(w, query);
  std::printf("Explain:\n%s\n\n", prepared.Explain().ToString().c_str());

  // 4. Execute on the session resources: Partitioned Hash-Join on the key
  //    columns, then the planned post-projection (e.g. partial cluster on
  //    the left, cluster + positional join + Radix-Decluster on the right).
  project::QueryRun run = prepared.Execute();
  std::printf("Result: %zu tuples, plan %s, %zu thread(s)\n",
              run.result_cardinality, run.detail.c_str(), run.threads_used);
  std::printf("Phases: join %.2f ms, cluster %.2f ms, positional joins "
              "%.2f ms, decluster %.2f ms\n",
              run.phases.join_seconds * 1e3, run.phases.cluster_seconds * 1e3,
              run.phases.projection_seconds * 1e3,
              run.phases.decluster_seconds * 1e3);

  // 5. Verify against ground truth: a scalar nested-loop reference that
  //    shares no code with the radix kernels must produce the same
  //    order-independent checksum — and so must the (deprecated) legacy
  //    entry point on the same hardware profile.
  size_t errors = 0;
  uint64_t expected = ReferenceChecksum(w, 2, 2, 1);
  if (run.checksum != expected) ++errors;
  std::printf("Scalar reference check (incl. string bytes): %s\n",
              run.checksum == expected ? "checksum matches" : "MISMATCH");
  project::QueryOptions legacy;
  legacy.pi_left = 2;
  legacy.pi_right = 2;
  legacy.pi_varchar_left = 1;
  legacy.pi_varchar_right = 1;
  project::QueryRun ref = project::RunQuery(
      w, project::JoinStrategy::kDsmPostDecluster, legacy, eng.hierarchy());
  if (run.checksum != ref.checksum) ++errors;
  if (run.result_cardinality != ref.result_cardinality) ++errors;
  std::printf("Cross-check vs legacy RunQuery: %s\n",
              run.checksum == ref.checksum ? "checksums match" : "MISMATCH");
  return errors == 0 ? 0 : 1;
}
