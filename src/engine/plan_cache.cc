#include "engine/plan_cache.h"

#include <cinttypes>
#include <cstdio>

namespace radix::engine {

std::string PlanCacheKey(const workload::JoinWorkload& workload,
                         const QuerySpec& spec) {
  // The workload quantities Prepare() reads: cardinalities and the result
  // estimate feed every cost term, num_attrs() sets the NSM record width,
  // and the varchar columns' availability and average lengths drive the
  // §5 paged-decluster terms. Average lengths are keyed per requested
  // column count because that is exactly what AverageVarcharBytes folds.
  const size_t avg_var_l = workload::AverageVarcharBytes(
      workload.left_varchars, spec.pi_varchar_left);
  const size_t avg_var_r = workload::AverageVarcharBytes(
      workload.right_varchars, spec.pi_varchar_right);
  char buf[320];
  const int len = std::snprintf(
      buf, sizeof(buf),
      "nl=%zu;nr=%zu;ni=%zu;w=%zu;vl=%zu;vr=%zu;avl=%zu;avr=%zu|"
      "s=%u;pl=%zu;pr=%zu;pvl=%zu;pvr=%zu;ps=%u;l=%u;r=%u;lb=%" PRIu32
      ";rb=%" PRIu32 ";we=%zu;ch=%u;cr=%zu",
      workload.dsm_left.cardinality(), workload.dsm_right.cardinality(),
      workload.expected_result_size, workload.dsm_left.num_attrs(),
      workload.left_varchars.size(), workload.right_varchars.size(),
      avg_var_l, avg_var_r, static_cast<unsigned>(spec.strategy),
      spec.pi_left, spec.pi_right, spec.pi_varchar_left,
      spec.pi_varchar_right, static_cast<unsigned>(spec.plan_sides),
      static_cast<unsigned>(spec.left), static_cast<unsigned>(spec.right),
      static_cast<uint32_t>(spec.left_bits),
      static_cast<uint32_t>(spec.right_bits), spec.window_elems,
      static_cast<unsigned>(spec.chunking), spec.chunk_rows);
  // A truncated key would let two distinct plan shapes share an entry and
  // execute the wrong cached plan; the buffer is sized for 21 full 64-bit
  // fields, so truncation is a programmer error, not an input condition.
  RADIX_CHECK(len > 0 && static_cast<size_t>(len) < sizeof(buf));
  return std::string(buf, static_cast<size_t>(len));
}

std::string PlanCacheKey(const ops::Catalog& catalog,
                         const ops::LogicalPlan& plan) {
  // "tree|" keeps plan-tree keys disjoint from two-sided keys (which start
  // "nl="). The catalog section pins every cardinality and varchar count
  // the optimizer's estimates read; PlanFingerprint pins the full tree
  // shape down to predicate constants and aggregate lists, so distinct
  // trees never alias (tests/plan_cache_test.cc perturbs every dimension).
  std::string key = "tree|";
  for (size_t t = 0; t < catalog.size(); ++t) {
    char buf[64];
    const int len = std::snprintf(buf, sizeof(buf), "t%zu=%zu,v%zu;", t,
                                  catalog.table(t).cardinality(),
                                  catalog.table(t).varchars.size());
    RADIX_CHECK(len > 0 && static_cast<size_t>(len) < sizeof(buf));
    key.append(buf, static_cast<size_t>(len));
  }
  key += "|";
  key += ops::PlanFingerprint(plan);
  return key;
}

bool PlanCache::Lookup(const std::string& key, Explanation* out) {
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ++hits_;
  *out = it->second->second.explanation;
  return true;
}

void PlanCache::Insert(const std::string& key, const Explanation& explanation) {
  if (capacity_ == 0) return;
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // A concurrent Prepare of the same shape raced us here; refresh.
    it->second->second.explanation = explanation;
    it->second->second.has_physical = false;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, CachedPlan{explanation, {}, false});
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

bool PlanCache::LookupTree(const std::string& key, Explanation* out,
                           ops::PhysicalPlan* physical) {
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end() || !it->second->second.has_physical) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  *out = it->second->second.explanation;
  *physical = it->second->second.physical;
  return true;
}

void PlanCache::InsertTree(const std::string& key,
                           const Explanation& explanation,
                           const ops::PhysicalPlan& physical) {
  if (capacity_ == 0) return;
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = CachedPlan{explanation, physical, true};
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, CachedPlan{explanation, physical, true});
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

PlanCacheStats PlanCache::Stats() const {
  MutexLock lock(mu_);
  PlanCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = lru_.size();
  s.capacity = capacity_;
  return s;
}

}  // namespace radix::engine
