#include "engine/plan_cache.h"

#include <cinttypes>
#include <cstdio>

namespace radix::engine {

std::string PlanCacheKey(const workload::JoinWorkload& workload,
                         const QuerySpec& spec) {
  // The workload quantities Prepare() reads: cardinalities and the result
  // estimate feed every cost term, num_attrs() sets the NSM record width,
  // and the varchar columns' availability and average lengths drive the
  // §5 paged-decluster terms. Average lengths are keyed per requested
  // column count because that is exactly what AverageVarcharBytes folds.
  const size_t avg_var_l = workload::AverageVarcharBytes(
      workload.left_varchars, spec.pi_varchar_left);
  const size_t avg_var_r = workload::AverageVarcharBytes(
      workload.right_varchars, spec.pi_varchar_right);
  char buf[320];
  const int len = std::snprintf(
      buf, sizeof(buf),
      "nl=%zu;nr=%zu;ni=%zu;w=%zu;vl=%zu;vr=%zu;avl=%zu;avr=%zu|"
      "s=%u;pl=%zu;pr=%zu;pvl=%zu;pvr=%zu;ps=%u;l=%u;r=%u;lb=%" PRIu32
      ";rb=%" PRIu32 ";we=%zu;ch=%u;cr=%zu",
      workload.dsm_left.cardinality(), workload.dsm_right.cardinality(),
      workload.expected_result_size, workload.dsm_left.num_attrs(),
      workload.left_varchars.size(), workload.right_varchars.size(),
      avg_var_l, avg_var_r, static_cast<unsigned>(spec.strategy),
      spec.pi_left, spec.pi_right, spec.pi_varchar_left,
      spec.pi_varchar_right, static_cast<unsigned>(spec.plan_sides),
      static_cast<unsigned>(spec.left), static_cast<unsigned>(spec.right),
      static_cast<uint32_t>(spec.left_bits),
      static_cast<uint32_t>(spec.right_bits), spec.window_elems,
      static_cast<unsigned>(spec.chunking), spec.chunk_rows);
  // A truncated key would let two distinct plan shapes share an entry and
  // execute the wrong cached plan; the buffer is sized for 21 full 64-bit
  // fields, so truncation is a programmer error, not an input condition.
  RADIX_CHECK(len > 0 && static_cast<size_t>(len) < sizeof(buf));
  return std::string(buf, static_cast<size_t>(len));
}

bool PlanCache::Lookup(const std::string& key, Explanation* out) {
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ++hits_;
  *out = it->second->second;
  return true;
}

void PlanCache::Insert(const std::string& key, const Explanation& explanation) {
  if (capacity_ == 0) return;
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // A concurrent Prepare of the same shape raced us here; refresh.
    it->second->second = explanation;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, explanation);
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

PlanCacheStats PlanCache::Stats() const {
  MutexLock lock(mu_);
  PlanCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = lru_.size();
  s.capacity = capacity_;
  return s;
}

}  // namespace radix::engine
