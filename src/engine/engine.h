#ifndef RADIX_ENGINE_ENGINE_H_
#define RADIX_ENGINE_ENGINE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/types.h"
#include "costmodel/models.h"
#include "engine/admission.h"
#include "hardware/calibrator.h"
#include "hardware/memory_hierarchy.h"
#include "ops/executor.h"
#include "ops/optimizer.h"
#include "ops/plan.h"
#include "ops/table.h"
#include "project/dsm_post.h"
#include "project/executor.h"
#include "project/strategy.h"
#include "workload/generator.h"

namespace radix {
class ThreadPool;
}  // namespace radix

namespace radix::pipeline {
class MemoryGauge;
}  // namespace radix::pipeline

/// The session-scoped public entry point of the library (paper §1.1's
/// architecture): a process builds one Engine from an EngineConfig — which
/// runs the startup Calibrator, fixes the cost-model constants, and spawns
/// the worker pool once — and then drives every query through
/// Prepare() -> Explain() -> Execute(). The planner's choices (per-side
/// strategies, radix bits, insertion window, materializing vs streaming
/// execution, chunk size) are visible *before* anything runs, and repeated
/// queries share the session's threads instead of respawning them.
namespace radix::engine {

/// How the decluster-side projection executes.
enum class ChunkingPolicy : uint8_t {
  /// Defer to the engine's configured policy (QuerySpec default).
  kEngineDefault,
  /// Planner decides: stream when the materializing path's clustered
  /// intermediate would exceed EngineConfig::streaming_budget_bytes,
  /// with the chunk size chosen from StreamingRadixDeclusterCost.
  kAuto,
  /// Always materialize full intermediates (the legacy RunQuery path).
  kMaterialize,
  /// Always stream through the pipeline/ subsystem.
  kStream,
};

struct EngineConfig {
  /// Session worker threads for the parallel radix kernels. 1 (default)
  /// runs the exact serial kernels and spawns nothing; > 1 spawns the pool
  /// once at engine startup (byte-identical output); 0 = all hardware
  /// threads.
  size_t num_threads = 1;
  /// Hardware profile to plan and model against. Default-constructed (no
  /// cache levels) detects the running machine; tests and planning
  /// experiments pin a preset (e.g. MemoryHierarchy::Pentium4()). Not a
  /// std::optional: GCC 12's -Wmaybe-uninitialized false-fires on copying
  /// optionals of vector-bearing types under -O2.
  hardware::MemoryHierarchy hierarchy;
  /// Run the startup Calibrator (the paper's §1.1 MonetDB calibrator) to
  /// refine the profile's miss latencies and bandwidth with measured
  /// values, so modeled costs are in this machine's units. Geometry is
  /// unchanged, so planner *choices* equal the uncalibrated engine's and
  /// results are identical; only the modeled seconds move.
  bool calibrate_on_startup = false;
  hardware::Calibrator::Options calibrator_options;
  /// CPU constants of the Appendix-A cost model.
  costmodel::CpuCosts cpu_costs = costmodel::CpuCosts::Default();
  /// Session-wide execution mode for decluster-side projections.
  ChunkingPolicy chunking = ChunkingPolicy::kAuto;
  /// kAuto's memory budget for materialized intermediates (the clustered
  /// value column of the decluster side, N * sizeof(value_t) bytes): when
  /// a query's intermediate would exceed it, the planner streams instead,
  /// shrinking the chunk size until the in-flight buffers fit (floored
  /// where StreamingRadixDeclusterCost says the overhead turns into a
  /// cliff). 0 (default) = unlimited, i.e. kAuto materializes.
  size_t streaming_budget_bytes = 0;

  /// Concurrent-serving knobs. Execute() is safe to call from any number
  /// of client threads; these control how the shared session resources are
  /// arbitrated between them.

  /// Admission budget for Execute(): each query reserves its modeled peak
  /// intermediate bytes (Explanation::modeled_intermediate_bytes) before
  /// running and concurrent queries queue FIFO when the sum would exceed
  /// this. A query whose reservation alone exceeds the whole budget fails
  /// fast with kResourceExhausted instead of deadlocking the queue.
  /// 0 (default) = no gating. Pairs naturally with streaming_budget_bytes:
  /// that knob shrinks a single query's footprint, this one bounds the sum
  /// of all in-flight footprints.
  size_t admission_budget_bytes = 0;
  /// Plan-cache entries (LRU): repeated Prepare() calls with the same
  /// plan-affecting (workload, spec) shape skip planning and cost-model
  /// evaluation. 0 disables the cache.
  size_t plan_cache_capacity = 64;
  /// Queries whose workload (and estimated result) stay at or under this
  /// many rows run their grains at ThreadPool::Priority::kHigh, so
  /// point-ish queries overtake the queued grains of heavy queries at
  /// grain boundaries instead of waiting behind whole phases.
  size_t point_query_rows_threshold = size_t{1} << 16;
  /// Gauge the streaming pipelines of this engine's queries register their
  /// ring-buffer bytes with; nullptr = the process-wide
  /// pipeline::MemoryGauge::Instance(). Inject a private gauge to assert
  /// (as the admission tests do) that measured intermediate bytes never
  /// exceed admission_budget_bytes.
  pipeline::MemoryGauge* gauge = nullptr;
  /// Time source for admission queue-wait accounting; nullptr = the real
  /// steady clock. Tests inject a FakeClock for deterministic wait-time
  /// assertions.
  Clock* clock = nullptr;
};

/// Counters of the concurrent-serving machinery, snapshot via
/// Engine::Stats(). All monotonic except the gauges noted in
/// AdmissionStats.
struct EngineStats {
  uint64_t queries_executed = 0;  ///< Execute() calls that ran to completion
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  size_t plan_cache_entries = 0;
  AdmissionStats admission;
};

/// What a query asks for; cardinalities come from the workload at
/// Prepare() time. The default spec is the planner-driven DSM
/// post-projection query of Fig. 10.
struct QuerySpec {
  project::JoinStrategy strategy = project::JoinStrategy::kDsmPostDecluster;
  size_t pi_left = 1;
  size_t pi_right = 1;
  /// Varchar projection columns per side, drawn from the workload's
  /// {left,right}_varchars (their length distribution is set at workload
  /// generation, workload::VarcharColumnSpec). Mixed fixed+varchar
  /// projection lists are planned per column type: the DSM post-projection
  /// strategy declusters right-side varchars with the paper's Fig. 12
  /// three-phase paged scheme (Explain() reports its cost as the
  /// paged-decluster term), other strategies gather them positionally from
  /// result-order oids. Varchar queries always materialize (no streaming
  /// path for variable-size chunks yet) and their string bytes are folded
  /// into QueryRun::checksum, so equal checksums assert byte-identical
  /// strings across strategies.
  size_t pi_varchar_left = 0;
  size_t pi_varchar_right = 0;
  /// Let the planner pick the DSM-post side strategies (default);
  /// otherwise use the explicit codes below. A right side of s or c is
  /// coerced to d exactly as the executor does (§4.1: only the first
  /// projection table may be reordered).
  bool plan_sides = true;
  project::SideStrategy left = project::SideStrategy::kClustered;
  project::SideStrategy right = project::SideStrategy::kDecluster;
  /// Radix-bits overrides for the partial clusters; kAuto = from geometry.
  radix_bits_t left_bits = project::DsmPostOptions::kAuto;
  radix_bits_t right_bits = project::DsmPostOptions::kAuto;
  /// Insertion-window override in elements; 0 = WindowPolicy default.
  size_t window_elems = 0;
  /// Execution-mode override; kEngineDefault defers to the EngineConfig.
  ChunkingPolicy chunking = ChunkingPolicy::kEngineDefault;
  /// Streamed chunk size override in rows; 0 = planner-chosen.
  size_t chunk_rows = 0;
};

/// The plan and its modeled cost, fixed at Prepare() time — everything the
/// paper's Fig. 9/10 "modeled" curves know about a run, before it runs.
/// Costs come from the costmodel/ layer evaluated against the engine's
/// (possibly calibrated) hierarchy and CPU constants; for the DSM
/// post-projection strategy they are per-phase faithful, for the
/// comparison strategies they are the same coarse per-algorithm models the
/// figure harnesses plot.
struct Explanation {
  project::JoinStrategy strategy;
  /// DSM-post per-side plan code ("c/d"); "-" for other strategies. For
  /// plan trees: the per-join-edge codes joined with "+", in the
  /// executor's post-order.
  std::string plan_code = "-";
  /// Why the chosen execution mode was chosen — in particular why
  /// streaming was *rejected* (policy, budget fit, or varchar columns
  /// forcing materializing). Surfaced by ToString().
  std::string mode_reason;
  /// Plan-tree prepares only: true, plus the optimizer's per-edge summary
  /// ("t0*t1: c/d (est N rows)") and the individual edge codes in
  /// post-order. Two-sided QuerySpec prepares leave these empty.
  bool plan_tree = false;
  std::string plan_summary;
  std::vector<std::string> edge_codes;
  bool easy = false;  ///< planner classified both columns as cache-resident
  /// Resolved per-side options the executor will run with (DSM-post only).
  project::DsmPostOptions side_options;
  /// Resolved decluster-side radix plan (DSM-post with a d right side).
  radix_bits_t decluster_bits = 0;
  uint32_t decluster_passes = 0;
  size_t window_elems = 0;
  /// Chosen execution mode and chunk size.
  bool streaming = false;
  size_t chunk_rows = 0;
  size_t threads = 1;
  /// Estimated result rows (the workload's expectation at Prepare time).
  size_t estimated_result_rows = 0;
  /// Point-ish classification: this query's grains run at
  /// ThreadPool::Priority::kHigh on the shared pool (see
  /// EngineConfig::point_query_rows_threshold).
  bool high_priority = false;
  /// Peak bytes of the projection phase's value intermediates under the
  /// chosen mode (0 when the strategy materializes no side intermediate).
  size_t modeled_intermediate_bytes = 0;
  /// Varchar projection columns (left + right) and their mean value length
  /// in bytes, as planned from the workload.
  size_t varchar_cols = 0;
  size_t avg_varchar_len = 0;
  /// Modeled per-phase costs (misses + seconds) and their total.
  costmodel::CostEstimate join_cost;
  costmodel::CostEstimate cluster_cost;
  costmodel::CostEstimate projection_cost;
  costmodel::CostEstimate decluster_cost;
  /// The paper §5 three-phase paged-decluster term: cost of declustering
  /// the right side's varchar columns (0 unless the plan runs a d right
  /// side with pi_varchar_right > 0). Included in modeled_seconds.
  costmodel::CostEstimate varchar_decluster_cost;
  double modeled_seconds = 0;

  std::string ToString() const;
};

class Engine;

/// A planned query bound to its workload: Explain() is free and
/// side-effect-less; Execute() runs it on the engine's session resources.
/// The workload (and the engine) must outlive the PreparedQuery.
class PreparedQuery {
 public:
  /// The plan and its modeled cost. Ref-qualified so
  /// `engine.Prepare(...).Explain()` on a temporary returns a copy instead
  /// of a dangling reference.
  const Explanation& Explain() const& { return explanation_; }
  Explanation Explain() && { return std::move(explanation_); }
  const QuerySpec& spec() const { return spec_; }

  /// Run the query. Byte-identical results to the legacy free functions
  /// for the same spec and hardware profile; spawns no threads (the
  /// engine's pool, created at startup, is reused). The explained sides,
  /// execution mode and chunk size run verbatim; radix bits and window
  /// re-derive at execution from the actual join cardinality (Explain()
  /// models them from the workload's estimate) under the same rules.
  ///
  /// Thread-safe: any number of client threads may Execute() prepared
  /// queries of the same engine concurrently. Each call passes the
  /// engine's admission gate (FIFO memory-budget queue — it may block
  /// until earlier queries release their reservations), then runs with
  /// its grains scheduled on the shared session pool at the plan's
  /// priority. Aborts the process if admission rejects the query; use the
  /// Status overload when a rejection must be handled.
  project::QueryRun Execute() const;

  /// Status-returning Execute: *out receives the result on OK. Returns
  /// kResourceExhausted — quickly, without queueing — when the engine has
  /// an admission budget and this query's reservation alone exceeds it.
  /// [[nodiscard]]: ignoring a rejection here would read *out as if the
  /// query had run.
  [[nodiscard]] Status Execute(project::QueryRun* out) const;

 private:
  friend class Engine;
  PreparedQuery(const Engine* engine, const workload::JoinWorkload* workload,
                QuerySpec spec, Explanation explanation)
      : engine_(engine),
        workload_(workload),
        spec_(spec),
        explanation_(std::move(explanation)) {}

  const Engine* engine_;
  const workload::JoinWorkload* workload_;
  QuerySpec spec_;
  Explanation explanation_;
};

/// A planned logical plan tree bound to its catalog: the plan-tree
/// counterpart of PreparedQuery. Explain() reports the per-join-edge
/// Fig. 10 strategies the optimizer chose; Execute() pulls chunks through
/// the ops/ operator tree on the engine's session resources. The catalog,
/// the plan and the engine must outlive the PreparedPlan.
class PreparedPlan {
 public:
  /// Empty shell for Engine::Prepare's out-parameter; Execute() on a
  /// never-filled PreparedPlan is a programmer error.
  PreparedPlan() = default;

  const Explanation& Explain() const& { return explanation_; }
  Explanation Explain() && { return std::move(explanation_); }
  const ops::PhysicalPlan& physical() const { return physical_; }

  /// Run the plan through the chunk-at-a-time executor. Passes the same
  /// admission gate and priority scheduling as PreparedQuery::Execute();
  /// byte-identical results at every thread count (the operators reuse the
  /// byte-identical parallel kernels). Returns kResourceExhausted without
  /// queueing when the reservation alone exceeds the admission budget.
  [[nodiscard]] Status Execute(ops::PlanRun* out) const;

 private:
  friend class Engine;
  PreparedPlan(const Engine* engine, const ops::Catalog* catalog,
               const ops::LogicalPlan* plan, ops::PhysicalPlan physical,
               Explanation explanation)
      : engine_(engine),
        catalog_(catalog),
        plan_(plan),
        physical_(std::move(physical)),
        explanation_(std::move(explanation)) {}

  const Engine* engine_ = nullptr;
  const ops::Catalog* catalog_ = nullptr;
  const ops::LogicalPlan* plan_ = nullptr;
  ops::PhysicalPlan physical_;
  Explanation explanation_ = {};
};

class PlanCache;

class Engine {
 public:
  explicit Engine(EngineConfig config = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// The session hardware profile: the configured/detected hierarchy,
  /// calibrator-refined when calibrate_on_startup was set.
  const hardware::MemoryHierarchy& hierarchy() const { return hw_; }
  const costmodel::CpuCosts& cpu_costs() const { return config_.cpu_costs; }
  const EngineConfig& config() const { return config_; }
  /// Session worker threads (1 = serial kernels, no pool spawned).
  size_t num_threads() const;
  /// The session pool; nullptr when the engine runs serial.
  ThreadPool* pool() const { return pool_.get(); }

  /// Plan the query: resolve side strategies, radix/chunk parameters and
  /// execution mode, and model their cost — all before anything runs.
  /// Thread-safe; consults the plan cache first, so a repeated
  /// plan-affecting shape costs one lookup instead of a planning pass.
  PreparedQuery Prepare(const workload::JoinWorkload& workload,
                        const QuerySpec& spec) const;

  /// Prepare() + Execute() in one call.
  project::QueryRun Execute(const workload::JoinWorkload& workload,
                            const QuerySpec& spec) const;

  /// Plan a logical plan tree: validate it, estimate per-node
  /// cardinalities, pick the Fig. 10 per-side strategy for every join edge
  /// via the cost model, and fix the modeled costs — all before anything
  /// runs. kInvalidArgument (not a crash) on malformed or unsupported
  /// trees. Thread-safe; consults the plan cache keyed on the full tree
  /// shape (operator kinds, predicate constants, aggregate list,
  /// cardinalities) so distinct trees never alias.
  [[nodiscard]] Status Prepare(const ops::Catalog& catalog,
                               const ops::LogicalPlan& plan,
                               PreparedPlan* out) const;

  /// Prepare() + Execute() in one call for plan trees.
  [[nodiscard]] Status Execute(const ops::Catalog& catalog,
                               const ops::LogicalPlan& plan,
                               ops::PlanRun* out) const;

  /// Counters of the serving machinery: plan-cache hits/misses, admission
  /// queue/rejection/reservation stats, executed-query count. Thread-safe
  /// snapshot.
  EngineStats Stats() const;

  /// The process-wide default engine backing one-shot callers: serial,
  /// detected hardware, no calibration. Constructed on first use.
  static Engine& Default();

 private:
  friend class PreparedQuery;
  friend class PreparedPlan;

  /// The admission-gated execution path behind both Execute overloads.
  [[nodiscard]] Status ExecutePrepared(const PreparedQuery& query,
                                       project::QueryRun* out) const;
  /// The admission-gated execution path behind PreparedPlan::Execute().
  [[nodiscard]] Status ExecutePreparedPlan(const PreparedPlan& prepared,
                                           ops::PlanRun* out) const;
  /// Resolve materializing vs streaming (and the chunk size) for a
  /// decluster-side plan from the resolved chunking policy, the streaming
  /// budget and StreamingRadixDeclusterCost; fills the mode fields of `ex`.
  void PlanExecutionMode(const QuerySpec& spec, ChunkingPolicy policy,
                         size_t n_index, radix_bits_t bits,
                         Explanation* ex) const;

  EngineConfig config_;
  hardware::MemoryHierarchy hw_;
  std::unique_ptr<ThreadPool> pool_;
  /// Serving state; mutable because Prepare()/Execute() are logically
  /// const (they do not change what any query computes) but count and
  /// arbitrate. Each is internally synchronized.
  mutable AdmissionController admission_;
  std::unique_ptr<PlanCache> plan_cache_;
  mutable std::atomic<uint64_t> queries_executed_{0};
};

}  // namespace radix::engine

#endif  // RADIX_ENGINE_ENGINE_H_
