#ifndef RADIX_ENGINE_PLAN_CACHE_H_
#define RADIX_ENGINE_PLAN_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "engine/engine.h"

namespace radix::engine {

/// Snapshot of the plan cache's counters (Engine::Stats()).
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  size_t entries = 0;
  size_t capacity = 0;
};

/// The cache key of one Prepare() call: every plan-affecting input, i.e.
/// every QuerySpec field plus the workload quantities the planner and cost
/// model read (cardinalities, estimated result size, record width, varchar
/// column counts and average lengths). Everything *else* Prepare() depends
/// on — hierarchy, thread count, chunking policy, streaming budget — is
/// fixed at Engine construction, and the cache is per-engine, so it is
/// deliberately not in the key.
///
/// Exposed so the property tests can assert the contract directly: two
/// (workload, spec) pairs differing in any plan-affecting field map to
/// different keys.
std::string PlanCacheKey(const workload::JoinWorkload& workload,
                         const QuerySpec& spec);

/// The cache key of one plan-tree Prepare(): the catalog's per-table
/// cardinalities and varchar counts plus ops::PlanFingerprint — the full
/// tree shape (operator kinds and arrangement, predicate columns,
/// comparison ops and constants, projection lists, group-by and aggregate
/// lists). Prefixed "tree|" so plan-tree keys can never alias the
/// two-sided keys above (those start "nl="). Distinct trees, or the same
/// tree over different-shaped catalogs, always map to different keys.
std::string PlanCacheKey(const ops::Catalog& catalog,
                         const ops::LogicalPlan& plan);

/// Thread-safe LRU map PlanCacheKey -> Explanation, sitting under
/// Engine::Prepare() so a repeated query shape skips planning, cost-model
/// evaluation and hardware-profile lookups entirely. capacity == 0
/// disables caching (every Prepare is a counted miss and nothing is
/// stored).
class PlanCache {
 public:
  explicit PlanCache(size_t capacity) : capacity_(capacity) {}
  RADIX_DISALLOW_COPY_AND_ASSIGN(PlanCache);

  /// On hit, copies the cached Explanation into *out, refreshes LRU order
  /// and counts a hit; counts a miss otherwise.
  bool Lookup(const std::string& key, Explanation* out) RADIX_EXCLUDES(mu_);

  /// Insert (or refresh) the plan for `key`, evicting the least recently
  /// used entry when over capacity. No-op when the cache is disabled.
  void Insert(const std::string& key, const Explanation& explanation)
      RADIX_EXCLUDES(mu_);

  /// Plan-tree variants: entries additionally carry the optimizer's
  /// PhysicalPlan (per-edge strategies and bits), so a cache hit skips the
  /// whole Optimize() pass. LookupTree misses on a legacy entry under the
  /// same key (cannot happen with PlanCacheKey's disjoint prefixes, but
  /// the cache itself does not rely on that).
  bool LookupTree(const std::string& key, Explanation* out,
                  ops::PhysicalPlan* physical) RADIX_EXCLUDES(mu_);
  void InsertTree(const std::string& key, const Explanation& explanation,
                  const ops::PhysicalPlan& physical) RADIX_EXCLUDES(mu_);

  PlanCacheStats Stats() const RADIX_EXCLUDES(mu_);

 private:
  struct CachedPlan {
    Explanation explanation;
    ops::PhysicalPlan physical;
    bool has_physical = false;
  };
  using Entry = std::pair<std::string, CachedPlan>;

  const size_t capacity_;
  /// mu_ guards the LRU list, its index and the counters as one unit (the
  /// list and map must never disagree). Leaf lock — docs/CONCURRENCY.md.
  mutable Mutex mu_;
  /// Front = most recently used.
  std::list<Entry> lru_ RADIX_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      RADIX_GUARDED_BY(mu_);
  uint64_t hits_ RADIX_GUARDED_BY(mu_) = 0;
  uint64_t misses_ RADIX_GUARDED_BY(mu_) = 0;
  uint64_t evictions_ RADIX_GUARDED_BY(mu_) = 0;
};

}  // namespace radix::engine

#endif  // RADIX_ENGINE_PLAN_CACHE_H_
