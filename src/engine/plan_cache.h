#ifndef RADIX_ENGINE_PLAN_CACHE_H_
#define RADIX_ENGINE_PLAN_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "engine/engine.h"

namespace radix::engine {

/// Snapshot of the plan cache's counters (Engine::Stats()).
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  size_t entries = 0;
  size_t capacity = 0;
};

/// The cache key of one Prepare() call: every plan-affecting input, i.e.
/// every QuerySpec field plus the workload quantities the planner and cost
/// model read (cardinalities, estimated result size, record width, varchar
/// column counts and average lengths). Everything *else* Prepare() depends
/// on — hierarchy, thread count, chunking policy, streaming budget — is
/// fixed at Engine construction, and the cache is per-engine, so it is
/// deliberately not in the key.
///
/// Exposed so the property tests can assert the contract directly: two
/// (workload, spec) pairs differing in any plan-affecting field map to
/// different keys.
std::string PlanCacheKey(const workload::JoinWorkload& workload,
                         const QuerySpec& spec);

/// Thread-safe LRU map PlanCacheKey -> Explanation, sitting under
/// Engine::Prepare() so a repeated query shape skips planning, cost-model
/// evaluation and hardware-profile lookups entirely. capacity == 0
/// disables caching (every Prepare is a counted miss and nothing is
/// stored).
class PlanCache {
 public:
  explicit PlanCache(size_t capacity) : capacity_(capacity) {}
  RADIX_DISALLOW_COPY_AND_ASSIGN(PlanCache);

  /// On hit, copies the cached Explanation into *out, refreshes LRU order
  /// and counts a hit; counts a miss otherwise.
  bool Lookup(const std::string& key, Explanation* out) RADIX_EXCLUDES(mu_);

  /// Insert (or refresh) the plan for `key`, evicting the least recently
  /// used entry when over capacity. No-op when the cache is disabled.
  void Insert(const std::string& key, const Explanation& explanation)
      RADIX_EXCLUDES(mu_);

  PlanCacheStats Stats() const RADIX_EXCLUDES(mu_);

 private:
  using Entry = std::pair<std::string, Explanation>;

  const size_t capacity_;
  /// mu_ guards the LRU list, its index and the counters as one unit (the
  /// list and map must never disagree). Leaf lock — docs/CONCURRENCY.md.
  mutable Mutex mu_;
  /// Front = most recently used.
  std::list<Entry> lru_ RADIX_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      RADIX_GUARDED_BY(mu_);
  uint64_t hits_ RADIX_GUARDED_BY(mu_) = 0;
  uint64_t misses_ RADIX_GUARDED_BY(mu_) = 0;
  uint64_t evictions_ RADIX_GUARDED_BY(mu_) = 0;
};

}  // namespace radix::engine

#endif  // RADIX_ENGINE_PLAN_CACHE_H_
