#include "engine/admission.h"

#include <algorithm>
#include <string>

namespace radix::engine {

Status AdmissionController::Admit(size_t bytes) {
  MutexLock lock(mu_);
  if (budget_ == 0) {
    // Gating disabled: admit immediately but keep the books, so Stats()
    // reports real reservation pressure even on an unlimited engine.
    ++stats_.admitted;
    stats_.reserved_bytes += bytes;
    stats_.peak_reserved_bytes =
        std::max(stats_.peak_reserved_bytes, stats_.reserved_bytes);
    return Status::OK();
  }
  if (bytes > budget_) {
    ++stats_.rejected;
    return Status::ResourceExhausted(
        "query needs " + std::to_string(bytes) +
        " bytes of intermediates but the admission budget is only " +
        std::to_string(budget_) +
        " bytes; it could never be admitted (raise "
        "EngineConfig::admission_budget_bytes or stream with a smaller "
        "chunk)");
  }

  const uint64_t ticket = next_ticket_++;
  bool waited = false;
  uint64_t parked_at = 0;
  while (ticket != serving_ || stats_.reserved_bytes + bytes > budget_) {
    if (!waited) {
      waited = true;
      parked_at = clock_->NowNanos();
      ++stats_.queued;
      ++stats_.waiting;
    }
    cv_.Wait(lock);
  }
  if (waited) {
    --stats_.waiting;
    stats_.total_queue_wait_nanos += clock_->NowNanos() - parked_at;
  }
  ++serving_;  // hand the head of the queue to the next arrival
  ++stats_.admitted;
  stats_.reserved_bytes += bytes;
  stats_.peak_reserved_bytes =
      std::max(stats_.peak_reserved_bytes, stats_.reserved_bytes);
  // The next ticket may already fit (e.g. a zero-byte reservation): wake
  // the queue so it can check.
  cv_.NotifyAll();
  return Status::OK();
}

void AdmissionController::Release(size_t bytes) {
  // Notify under the lock: a waiter that admits and lets the controller be
  // destroyed must not race a notifier that unlocked but had not yet
  // signalled (same destroy-race discipline as the streaming executor;
  // regression: AdmissionControllerTest.ReleaseDoesNotRaceControllerDestruction).
  MutexLock lock(mu_);
  RADIX_CHECK(stats_.reserved_bytes >= bytes);
  stats_.reserved_bytes -= bytes;
  cv_.NotifyAll();
}

AdmissionStats AdmissionController::Stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace radix::engine
