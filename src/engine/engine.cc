#include "engine/engine.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "cluster/partition_plan.h"
#include "cluster/radix_cluster.h"
#include "common/bits.h"
#include "common/thread_pool.h"
#include "decluster/window.h"
#include "engine/plan_cache.h"
#include "project/planner.h"

namespace radix::engine {

namespace {

using costmodel::CostEstimate;
using project::JoinStrategy;
using project::SideStrategy;

/// add * factor folded into `into` (misses and seconds alike).
void Accumulate(CostEstimate* into, const CostEstimate& add, double factor) {
  into->misses += add.misses * factor;
  into->seconds += add.seconds * factor;
}

const char* ModeName(bool streaming) {
  return streaming ? "streaming" : "materializing";
}

}  // namespace

Engine::Engine(EngineConfig config)
    : config_(std::move(config)),
      admission_(config_.admission_budget_bytes, config_.clock) {
  hw_ = config_.hierarchy.caches.empty()
            ? hardware::MemoryHierarchy::Detect()
            : config_.hierarchy;
  if (config_.calibrate_on_startup) {
    hardware::Calibrator calibrator(config_.calibrator_options);
    hw_ = calibrator.Calibrate(hw_);
    // Refine the cost model's CPU terms from the *dispatched* kernels (the
    // tier cpu::ActiveIsa() picked), so a SIMD variant that changes the
    // per-tuple instruction cost moves the model with it instead of
    // silently widening the Fig. 9 modeled-vs-measured gap.
    const hardware::Calibrator::KernelSpeeds speeds =
        calibrator.MeasureKernelSpeeds();
    if (speeds.gather_ns_per_tuple > 0.0) {
      config_.cpu_costs.pos_join_ns_per_tuple = speeds.gather_ns_per_tuple;
    }
    if (speeds.cluster_ns_per_tuple > 0.0) {
      config_.cpu_costs.cluster_ns_per_tuple = speeds.cluster_ns_per_tuple;
    }
  }
  // Keep config() consistent with the session: its hierarchy reflects the
  // resolved (detected/calibrated) profile, not the pre-startup input.
  config_.hierarchy = hw_;
  size_t threads = config_.num_threads;
  if (threads == 0) threads = ThreadPool::DefaultThreads();
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
  plan_cache_ = std::make_unique<PlanCache>(config_.plan_cache_capacity);
}

Engine::~Engine() = default;

size_t Engine::num_threads() const {
  return pool_ != nullptr ? pool_->num_threads() : 1;
}

Engine& Engine::Default() {
  static Engine instance{EngineConfig{}};
  return instance;
}

PreparedQuery Engine::Prepare(const workload::JoinWorkload& workload,
                              const QuerySpec& spec) const {
  // A repeated plan-affecting shape (see PlanCacheKey) skips planning,
  // cost-model evaluation and hardware-profile lookups entirely: every
  // other Prepare() input is fixed for the life of this engine.
  const std::string cache_key = PlanCacheKey(workload, spec);
  Explanation cached;
  if (plan_cache_->Lookup(cache_key, &cached)) {
    return PreparedQuery(this, &workload, spec, std::move(cached));
  }
  const hardware::MemoryHierarchy& hw = hw_;
  const costmodel::CpuCosts& cpu = config_.cpu_costs;
  const size_t n_left = workload.dsm_left.cardinality();
  const size_t n_right = workload.dsm_right.cardinality();
  // Cardinality estimate for the cost model; the generator knows the true
  // value, a real system would use join selectivity statistics. The plan
  // *choice* never depends on it (PlanDsmPost plans from the inputs), so
  // execution is identical to the legacy post-join planning.
  const size_t n_index = workload.expected_result_size;
  const double pi_l = static_cast<double>(std::max<size_t>(1, spec.pi_left));
  const double pi_r = static_cast<double>(std::max<size_t>(1, spec.pi_right));

  const size_t var_l = spec.pi_varchar_left;
  const size_t var_r = spec.pi_varchar_right;
  const size_t avg_var_l =
      workload::AverageVarcharBytes(workload.left_varchars, var_l);
  const size_t avg_var_r =
      workload::AverageVarcharBytes(workload.right_varchars, var_r);

  Explanation ex;
  ex.strategy = spec.strategy;
  ex.threads = num_threads();
  ex.estimated_result_rows = n_index;
  // Point-ish queries (small inputs and result) run their grains at high
  // priority on the shared pool, overtaking heavy queries' queued grains
  // at every grain boundary.
  ex.high_priority = std::max({n_left, n_right, n_index}) <=
                     config_.point_query_rows_threshold;
  ex.varchar_cols = var_l + var_r;
  if (ex.varchar_cols > 0) {
    size_t values = var_l + var_r;
    ex.avg_varchar_len = (avg_var_l * var_l + avg_var_r * var_r) / values;
  }

  // A varchar positional join touches the 8-byte offset array plus
  // avg_len heap bytes per tuple; model it as a gather of that width.
  const size_t var_width_l = sizeof(uint64_t) + avg_var_l;
  const size_t var_width_r = sizeof(uint64_t) + avg_var_r;

  // The join index is [left-oid, right-oid] pairs for every strategy that
  // builds one; its partitioned hash join is clustered by cache geometry.
  const size_t pair_width = sizeof(cluster::KeyOid);
  const radix_bits_t join_bits =
      cluster::PartitionedJoinBits(n_right, pair_width, hw);

  switch (spec.strategy) {
    case JoinStrategy::kDsmPostDecluster: {
      ex.join_cost = costmodel::PartitionedHashJoinCost(
          hw, cpu, n_left, n_right, pair_width, join_bits);

      // Resolve the per-side plan exactly as the executor will.
      if (spec.plan_sides) {
        project::Plan plan =
            project::PlanDsmPost(n_left, n_right, n_index, spec.pi_left,
                                 spec.pi_right, hw, ex.threads, var_l, var_r,
                                 avg_var_l, avg_var_r);
        ex.side_options = plan.options;
        ex.easy = plan.easy;
        ex.plan_code = plan.code;
      } else {
        ex.side_options.left = spec.left;
        ex.side_options.right = spec.right;
        // §4.1: only the first projection table may be reordered; the
        // executor coerces a reordering right side to d, so the plan says
        // what will actually run.
        if (ex.side_options.right == SideStrategy::kSorted ||
            ex.side_options.right == SideStrategy::kClustered) {
          ex.side_options.right = SideStrategy::kDecluster;
        }
        std::string code = project::SideStrategyCode(ex.side_options.left);
        code += "/";
        code += project::SideStrategyCode(ex.side_options.right);
        ex.plan_code = code;
        ex.easy = project::ColumnFitsCache(n_left, hw) &&
                  project::ColumnFitsCache(n_right, hw);
      }
      ex.side_options.left_bits = spec.left_bits;
      ex.side_options.right_bits = spec.right_bits;
      ex.side_options.window_elems = spec.window_elems;
      ex.side_options.num_threads = ex.threads;

      // Left side: index reorder (cluster or sort of the oid pairs), then
      // pi_left sequential-ish positional gathers; varchar columns gather
      // under the same (re)ordering at their offsets+heap width.
      switch (ex.side_options.left) {
        case SideStrategy::kUnsorted:
          Accumulate(&ex.projection_cost,
                     costmodel::ClusteredPositionalJoinCost(
                         hw, cpu, n_index, n_left, sizeof(value_t),
                         /*bits=*/0, /*sorted=*/false),
                     pi_l);
          Accumulate(&ex.projection_cost,
                     costmodel::ClusteredPositionalJoinCost(
                         hw, cpu, n_index, n_left, var_width_l,
                         /*bits=*/0, /*sorted=*/false),
                     static_cast<double>(var_l));
          break;
        case SideStrategy::kSorted: {
          radix_bits_t bits = SignificantBits(std::max<size_t>(1, n_left));
          Accumulate(&ex.cluster_cost,
                     costmodel::RadixClusterCost(
                         hw, cpu, n_index, sizeof(cluster::OidPair), bits,
                         cluster::PassesFor(bits, hw)),
                     1.0);
          Accumulate(&ex.projection_cost,
                     costmodel::ClusteredPositionalJoinCost(
                         hw, cpu, n_index, n_left, sizeof(value_t),
                         /*bits=*/0, /*sorted=*/true),
                     pi_l);
          Accumulate(&ex.projection_cost,
                     costmodel::ClusteredPositionalJoinCost(
                         hw, cpu, n_index, n_left, var_width_l,
                         /*bits=*/0, /*sorted=*/true),
                     static_cast<double>(var_l));
          break;
        }
        case SideStrategy::kClustered:
        case SideStrategy::kDecluster: {
          cluster::ClusterSpec left_spec = project::detail::SpecFor(
              SideStrategy::kClustered, n_index, n_left, hw, spec.left_bits);
          Accumulate(&ex.cluster_cost,
                     costmodel::RadixClusterCost(
                         hw, cpu, n_index, sizeof(cluster::OidPair),
                         left_spec.total_bits, left_spec.passes),
                     1.0);
          Accumulate(&ex.projection_cost,
                     costmodel::ClusteredPositionalJoinCost(
                         hw, cpu, n_index, n_left, sizeof(value_t),
                         left_spec.total_bits, /*sorted=*/false),
                     pi_l);
          Accumulate(&ex.projection_cost,
                     costmodel::ClusteredPositionalJoinCost(
                         hw, cpu, n_index, n_left, var_width_l,
                         left_spec.total_bits, /*sorted=*/false),
                     static_cast<double>(var_l));
          break;
        }
      }

      // Right side: u = random positional gathers in result order; d = the
      // paper's cluster + positional-join + Radix-Decluster machinery.
      // Per-query chunking overrides beat the engine's session policy.
      const ChunkingPolicy policy =
          spec.chunking == ChunkingPolicy::kEngineDefault ? config_.chunking
                                                          : spec.chunking;
      if (ex.side_options.right == SideStrategy::kUnsorted) {
        Accumulate(&ex.projection_cost,
                   costmodel::ClusteredPositionalJoinCost(
                       hw, cpu, n_index, n_right, sizeof(value_t),
                       /*bits=*/0, /*sorted=*/false),
                   pi_r);
        Accumulate(&ex.projection_cost,
                   costmodel::ClusteredPositionalJoinCost(
                       hw, cpu, n_index, n_right, var_width_r,
                       /*bits=*/0, /*sorted=*/false),
                   static_cast<double>(var_r));
        // No value intermediates; an explicit kStream policy still streams
        // the gathers (chunked, zero-copy), which changes nothing modeled.
        // Varchar queries are the exception: the executor falls back to
        // materializing for them on every path, so Explain must too.
        ex.streaming =
            policy == ChunkingPolicy::kStream && ex.varchar_cols == 0;
        if (ex.streaming) {
          ex.chunk_rows = spec.chunk_rows != 0 ? spec.chunk_rows
                                               : project::DefaultChunkRows(hw);
          ex.mode_reason = "policy: stream";
        } else if (policy == ChunkingPolicy::kStream) {
          ex.mode_reason =
              "varchar columns force materializing (no streaming path for "
              "variable-size chunks)";
        } else {
          ex.mode_reason = "u right side materializes no value intermediates";
        }
      } else {
        cluster::ClusterSpec right_spec = project::detail::SpecFor(
            SideStrategy::kClustered, n_index, n_right, hw, spec.right_bits);
        ex.decluster_bits = right_spec.total_bits;
        ex.decluster_passes = right_spec.passes;
        ex.window_elems =
            spec.window_elems != 0
                ? spec.window_elems
                : decluster::WindowPolicy::ChooseWindowElems(
                      hw, sizeof(value_t),
                      size_t{1} << right_spec.total_bits,
                      std::max<size_t>(1, n_index));
        // Cluster (id, result-position) pairs once; gather + decluster
        // repeat per projected column.
        Accumulate(&ex.cluster_cost,
                   costmodel::RadixClusterCost(hw, cpu, n_index,
                                               2 * sizeof(oid_t),
                                               right_spec.total_bits,
                                               right_spec.passes),
                   1.0);
        Accumulate(&ex.projection_cost,
                   costmodel::ClusteredPositionalJoinCost(
                       hw, cpu, n_index, n_right, sizeof(value_t),
                       right_spec.total_bits, /*sorted=*/false),
                   pi_r);
        Accumulate(&ex.projection_cost,
                   costmodel::ClusteredPositionalJoinCost(
                       hw, cpu, n_index, n_right, var_width_r,
                       right_spec.total_bits, /*sorted=*/false),
                   static_cast<double>(var_r));
        PlanExecutionMode(spec, policy, n_index, right_spec.total_bits, &ex);
        if (ex.varchar_cols > 0 && ex.streaming) {
          // Mirror the executor: varchar projections have no streaming
          // path yet, so the plan must not claim one.
          ex.streaming = false;
          ex.chunk_rows = 0;
          ex.modeled_intermediate_bytes = n_index * sizeof(value_t);
          ex.mode_reason =
              "varchar columns force materializing (no streaming path for "
              "variable-size chunks)";
        }
        const CostEstimate decluster_once =
            ex.streaming
                ? costmodel::StreamingRadixDeclusterCost(
                      hw, cpu, n_index, sizeof(value_t),
                      right_spec.total_bits, ex.window_elems, ex.chunk_rows)
                : costmodel::RadixDeclusterCost(hw, cpu, n_index,
                                                sizeof(value_t),
                                                right_spec.total_bits,
                                                ex.window_elems);
        Accumulate(&ex.decluster_cost, decluster_once, pi_r);
        if (var_r > 0) {
          // The Fig. 12 three-phase paged-decluster term, per varchar
          // column; its window holds avg_len-byte values (the executor
          // sizes it the same way).
          size_t vwindow =
              spec.window_elems != 0
                  ? spec.window_elems
                  : decluster::WindowPolicy::ChooseWindowElems(
                        hw, std::max(sizeof(uint32_t), avg_var_r),
                        size_t{1} << right_spec.total_bits,
                        std::max<size_t>(1, n_index));
          Accumulate(&ex.varchar_decluster_cost,
                     costmodel::VarcharRadixDeclusterCost(
                         hw, cpu, n_index, avg_var_r, right_spec.total_bits,
                         vwindow),
                     static_cast<double>(var_r));
          // The clustered varchar intermediate (offsets + heap) counts
          // toward the materialized footprint.
          ex.modeled_intermediate_bytes +=
              n_index * (sizeof(uint64_t) + avg_var_r) * var_r;
        }
      }
      break;
    }

    // The comparison strategies of Fig. 10 get the same coarse
    // per-algorithm models the figure harnesses plot; they execute serial
    // (QueryRun::threads_used == 1) and never stream.
    case JoinStrategy::kDsmPrePhash: {
      ex.threads = 1;
      size_t tuple_width =
          sizeof(value_t) * (1 + (spec.pi_left + spec.pi_right + 1) / 2);
      ex.join_cost = costmodel::PartitionedHashJoinCost(
          hw, cpu, n_left, n_right, tuple_width,
          cluster::PartitionedJoinBits(n_right, tuple_width, hw));
      Accumulate(&ex.projection_cost,
                 costmodel::ClusteredPositionalJoinCost(
                     hw, cpu, n_index, n_index, sizeof(value_t), 0,
                     /*sorted=*/true),
                 pi_l + pi_r);
      break;
    }
    case JoinStrategy::kNsmPreHash:
    case JoinStrategy::kNsmPrePhash: {
      ex.threads = 1;
      size_t record_width = sizeof(value_t) * workload.dsm_left.num_attrs();
      radix_bits_t bits =
          spec.strategy == JoinStrategy::kNsmPreHash
              ? 0
              : cluster::PartitionedJoinBits(n_right, record_width, hw);
      ex.join_cost = costmodel::PartitionedHashJoinCost(
          hw, cpu, n_left, n_right, record_width, bits);
      Accumulate(&ex.projection_cost,
                 costmodel::ClusteredPositionalJoinCost(
                     hw, cpu, n_index, n_index, sizeof(value_t), 0,
                     /*sorted=*/true),
                 pi_l + pi_r);
      break;
    }
    case JoinStrategy::kNsmPostDecluster: {
      ex.threads = 1;
      size_t record_width = sizeof(value_t) * workload.dsm_left.num_attrs();
      ex.join_cost = costmodel::PartitionedHashJoinCost(
          hw, cpu, n_left, n_right, pair_width, join_bits);
      radix_bits_t bits = cluster::PartialClusterBits(
          std::max<size_t>(1, n_right), record_width, hw);
      size_t window = decluster::WindowPolicy::ChooseWindowElems(
          hw, record_width, size_t{1} << bits, std::max<size_t>(1, n_index));
      // Both sides fetch whole records through the decluster machinery.
      Accumulate(&ex.decluster_cost,
                 costmodel::RadixDeclusterCost(hw, cpu, n_index, record_width,
                                               bits, window),
                 2.0);
      ex.decluster_bits = bits;
      ex.window_elems = window;
      break;
    }
    case JoinStrategy::kNsmPostJive: {
      ex.threads = 1;
      size_t record_width = sizeof(value_t) * workload.dsm_left.num_attrs();
      ex.join_cost = costmodel::PartitionedHashJoinCost(
          hw, cpu, n_left, n_right, pair_width, join_bits);
      // Mirrors the executor's fixed cluster_bits = 6 for the Jive passes.
      constexpr radix_bits_t kJiveBits = 6;
      Accumulate(&ex.projection_cost,
                 costmodel::LeftJiveJoinCost(hw, cpu, n_index, n_left,
                                             record_width, kJiveBits),
                 1.0);
      Accumulate(&ex.projection_cost,
                 costmodel::RightJiveJoinCost(hw, cpu, n_index, n_right,
                                              record_width, kJiveBits),
                 1.0);
      break;
    }
  }

  // The Fig. 10 comparison strategies gather their varchar columns
  // positionally from result-order oids (u-style random access), on top of
  // the oid-pair luggage their joins carry; model the gathers coarsely,
  // like the rest of their per-algorithm costs.
  if (spec.strategy != JoinStrategy::kDsmPostDecluster &&
      ex.varchar_cols > 0) {
    Accumulate(&ex.projection_cost,
               costmodel::ClusteredPositionalJoinCost(hw, cpu, n_index,
                                                      n_left, var_width_l,
                                                      /*bits=*/0,
                                                      /*sorted=*/false),
               static_cast<double>(var_l));
    Accumulate(&ex.projection_cost,
               costmodel::ClusteredPositionalJoinCost(hw, cpu, n_index,
                                                      n_right, var_width_r,
                                                      /*bits=*/0,
                                                      /*sorted=*/false),
               static_cast<double>(var_r));
  }

  if (ex.mode_reason.empty()) {
    // The Fig. 10 comparison strategies have no streaming variant at all.
    ex.mode_reason = "comparison strategy: materializing only";
  }
  ex.modeled_seconds = ex.join_cost.seconds + ex.cluster_cost.seconds +
                       ex.projection_cost.seconds + ex.decluster_cost.seconds +
                       ex.varchar_decluster_cost.seconds;
  plan_cache_->Insert(cache_key, ex);
  return PreparedQuery(this, &workload, spec, std::move(ex));
}

Status Engine::Prepare(const ops::Catalog& catalog,
                       const ops::LogicalPlan& plan,
                       PreparedPlan* out) const {
  // Validate first so a malformed tree is a clean kInvalidArgument before
  // any cache or optimizer work (and before fingerprinting, which assumes
  // a structurally sound tree).
  Status valid = ops::ValidatePlan(catalog, plan);
  if (!valid.ok()) return valid;

  const std::string cache_key = PlanCacheKey(catalog, plan);
  {
    Explanation cached;
    ops::PhysicalPlan cached_physical;
    if (plan_cache_->LookupTree(cache_key, &cached, &cached_physical)) {
      *out = PreparedPlan(this, &catalog, &plan, std::move(cached_physical),
                          std::move(cached));
      return Status::OK();
    }
  }

  ops::PhysicalPlan physical;
  Status opt = ops::Optimize(catalog, plan, hw_, config_.cpu_costs,
                             num_threads(), &physical);
  if (!opt.ok()) return opt;

  Explanation ex;
  ex.strategy = JoinStrategy::kDsmPostDecluster;
  ex.plan_tree = true;
  ex.threads = num_threads();
  ex.estimated_result_rows = physical.est_result_rows;
  ex.modeled_intermediate_bytes = physical.modeled_intermediate_bytes;
  ex.join_cost = physical.join_cost;
  ex.cluster_cost = physical.cluster_cost;
  ex.projection_cost = physical.projection_cost;
  ex.decluster_cost = physical.decluster_cost;
  ex.modeled_seconds = physical.modeled_seconds;
  ex.plan_summary = physical.Summary();
  // Blocking operators (join, aggregate) materialize their inputs and
  // stream output chunks; there is no fully-pipelined mode to reject.
  ex.mode_reason =
      "operator-at-a-time: blocking operators materialize, chunks stream "
      "between operators";
  ex.streaming = false;
  std::string code;
  bool easy = !physical.edges.empty();
  for (const ops::EdgePlan& edge : physical.edges) {
    ex.edge_codes.push_back(edge.code);
    if (!code.empty()) code += "+";
    code += edge.code;
    easy = easy && edge.easy;
  }
  ex.plan_code = code.empty() ? "-" : code;
  ex.easy = easy;
  size_t max_card = physical.est_result_rows;
  for (size_t t = 0; t < catalog.size(); ++t) {
    max_card = std::max(max_card, catalog.table(t).cardinality());
  }
  ex.high_priority = max_card <= config_.point_query_rows_threshold;

  plan_cache_->InsertTree(cache_key, ex, physical);
  *out = PreparedPlan(this, &catalog, &plan, std::move(physical),
                      std::move(ex));
  return Status::OK();
}

Status Engine::Execute(const ops::Catalog& catalog,
                       const ops::LogicalPlan& plan,
                       ops::PlanRun* out) const {
  PreparedPlan prepared;
  Status status = Prepare(catalog, plan, &prepared);
  if (!status.ok()) return status;
  return prepared.Execute(out);
}

void Engine::PlanExecutionMode(const QuerySpec& spec, ChunkingPolicy policy,
                               size_t n_index, radix_bits_t bits,
                               Explanation* ex) const {
  const size_t materialized_bytes = n_index * sizeof(value_t);
  // `policy` arrives resolved (never kEngineDefault): kAuto streams only
  // when the budget says the materialized intermediate is too large.
  const bool stream =
      policy == ChunkingPolicy::kStream ||
      (policy == ChunkingPolicy::kAuto &&
       config_.streaming_budget_bytes != 0 &&
       materialized_bytes > config_.streaming_budget_bytes);
  if (!stream) {
    ex->streaming = false;
    ex->chunk_rows = 0;
    ex->modeled_intermediate_bytes = materialized_bytes;
    if (policy == ChunkingPolicy::kMaterialize) {
      ex->mode_reason = "chunking policy: always materialize";
    } else if (config_.streaming_budget_bytes == 0) {
      ex->mode_reason = "auto: no streaming budget configured";
    } else {
      ex->mode_reason = "auto: intermediate fits streaming budget";
    }
    return;
  }
  ex->mode_reason = policy == ChunkingPolicy::kStream
                        ? "policy: stream"
                        : "auto: intermediate exceeds streaming budget";

  // The streamed ring holds (pool threads + 2) chunks when threaded, 1
  // when serial (ExecutorOptions auto ring), each pi_right columns wide.
  const size_t ring = pool_ != nullptr ? pool_->num_threads() + 2 : 1;
  const size_t per_row_bytes =
      sizeof(value_t) * std::max<size_t>(1, spec.pi_right) * ring;
  size_t chunk = spec.chunk_rows != 0 ? spec.chunk_rows
                                      : project::DefaultChunkRows(hw_);
  if (spec.chunk_rows == 0 && config_.streaming_budget_bytes != 0) {
    // Shrink the chunk until the in-flight buffers fit the budget — but
    // stop where StreamingRadixDeclusterCost says the per-chunk overhead
    // would cliff past 1.5x the materializing prediction. The cost model,
    // not the entry point, owns the trade-off.
    const double materializing_seconds =
        costmodel::RadixDeclusterCost(hw_, config_.cpu_costs, n_index,
                                      sizeof(value_t), bits,
                                      ex->window_elems)
            .seconds;
    while (chunk > 1 && chunk * per_row_bytes >
                            config_.streaming_budget_bytes) {
      double next_seconds =
          costmodel::StreamingRadixDeclusterCost(
              hw_, config_.cpu_costs, n_index, sizeof(value_t), bits,
              ex->window_elems, chunk / 2)
              .seconds;
      if (next_seconds > 1.5 * materializing_seconds) break;
      chunk /= 2;
    }
  }
  ex->streaming = true;
  ex->chunk_rows = chunk;
  ex->modeled_intermediate_bytes =
      std::min(materialized_bytes, chunk * per_row_bytes);
}

project::QueryRun Engine::Execute(const workload::JoinWorkload& workload,
                                  const QuerySpec& spec) const {
  return Prepare(workload, spec).Execute();
}

EngineStats Engine::Stats() const {
  EngineStats s;
  s.queries_executed = queries_executed_.load(std::memory_order_relaxed);
  PlanCacheStats pc = plan_cache_->Stats();
  s.plan_cache_hits = pc.hits;
  s.plan_cache_misses = pc.misses;
  s.plan_cache_entries = pc.entries;
  s.admission = admission_.Stats();
  return s;
}

Status Engine::ExecutePrepared(const PreparedQuery& query,
                               project::QueryRun* out) const {
  const Explanation& ex = query.explanation_;
  const QuerySpec& spec = query.spec_;

  // Admission: reserve the plan's peak intermediate bytes before touching
  // any shared resource. Blocks FIFO behind earlier arrivals when the
  // budget is full; admitted queries always complete (the calling thread
  // drives its own grains), so the reservation always comes back.
  const size_t admission_bytes = ex.modeled_intermediate_bytes;
  Status admit = admission_.Admit(admission_bytes);
  if (!admit.ok()) return admit;
  // Scope-exit release: the reservation must come back on *every* exit
  // path — an exception escaping the run (e.g. std::bad_alloc) would
  // otherwise shrink the effective budget forever and wedge the FIFO
  // admission queue for all clients.
  struct ReservationGuard {
    AdmissionController& admission;
    size_t bytes;
    ~ReservationGuard() { admission.Release(bytes); }
  } release_on_exit{admission_, admission_bytes};

  // Grains this query enqueues on the shared pool — kernel ParallelFor
  // morsels and streamed chunk stages alike — inherit its class.
  ThreadPool::ScopedPriority priority(ex.high_priority
                                          ? ThreadPool::Priority::kHigh
                                          : ThreadPool::Priority::kNormal);

  project::QueryOptions options;
  options.pi_left = spec.pi_left;
  options.pi_right = spec.pi_right;
  // The prepared plan's sides, execution mode and chunk size execute
  // verbatim, so Explain() and the run can never disagree on them. The
  // radix bits and insertion window are forwarded as the spec gave them
  // (usually the kAuto sentinels): the kernels re-derive them from the
  // *actual* join cardinality with the exact rules Explain() applied to
  // the workload's estimate — pinning Explain's values instead would
  // diverge from the legacy executors whenever estimate != actual,
  // breaking byte-identity for no planning benefit.
  options.pi_varchar_left = spec.pi_varchar_left;
  options.pi_varchar_right = spec.pi_varchar_right;
  options.plan_sides = false;
  options.left = ex.side_options.left;
  options.right = ex.side_options.right;
  options.left_bits = ex.side_options.left_bits;
  options.right_bits = ex.side_options.right_bits;
  options.window_elems = ex.side_options.window_elems;
  options.num_threads = num_threads();
  options.pool = pool_.get();
  options.chunk_rows = ex.chunk_rows;
  options.gauge = config_.gauge;
  *out = ex.streaming
             ? project::RunQueryStreaming(*query.workload_, spec.strategy,
                                          options, hw_)
             : project::RunQuery(*query.workload_, spec.strategy, options,
                                 hw_);
  queries_executed_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status Engine::ExecutePreparedPlan(const PreparedPlan& prepared,
                                   ops::PlanRun* out) const {
  const Explanation& ex = prepared.explanation_;

  // The same admission gate as two-sided queries: the optimizer's peak
  // intermediate estimate is the reservation currency.
  const size_t admission_bytes = ex.modeled_intermediate_bytes;
  Status admit = admission_.Admit(admission_bytes);
  if (!admit.ok()) return admit;
  struct ReservationGuard {
    AdmissionController& admission;
    size_t bytes;
    ~ReservationGuard() { admission.Release(bytes); }
  } release_on_exit{admission_, admission_bytes};

  ThreadPool::ScopedPriority priority(ex.high_priority
                                          ? ThreadPool::Priority::kHigh
                                          : ThreadPool::Priority::kNormal);

  ops::ExecOptions options;
  options.hw = &hw_;
  options.pool = pool_.get();
  options.gauge = config_.gauge;
  Status status = ops::ExecutePlan(*prepared.catalog_, *prepared.plan_,
                                   prepared.physical_, options, out);
  if (status.ok()) {
    queries_executed_.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

Status PreparedQuery::Execute(project::QueryRun* out) const {
  return engine_->ExecutePrepared(*this, out);
}

Status PreparedPlan::Execute(ops::PlanRun* out) const {
  return engine_->ExecutePreparedPlan(*this, out);
}

project::QueryRun PreparedQuery::Execute() const {
  project::QueryRun run;
  Status status = engine_->ExecutePrepared(*this, &run);
  if (!status.ok()) {
    (void)std::fprintf(stderr, "Engine::Execute failed: %s\n",
                       status.ToString().c_str());
  }
  RADIX_CHECK(status.ok());
  return run;
}

std::string Explanation::ToString() const {
  std::string s = "strategy: ";
  s += plan_tree ? "plan tree (dsm-post per edge)"
                 : project::JoinStrategyName(strategy);
  s += "  sides: ";
  s += plan_code;
  s += easy ? "  (easy join)" : "  (hard join)";
  if (!plan_summary.empty()) {
    s += "\nplan: ";
    s += plan_summary;
  }
  s += "\nexecution: ";
  s += ModeName(streaming);
  if (streaming) {
    s += ", chunk_rows=";
    s += std::to_string(chunk_rows);
  }
  s += ", threads=";
  s += std::to_string(threads);
  s += ", priority=";
  s += high_priority ? "high" : "normal";
  if (!mode_reason.empty()) {
    s += "\nmode reason: ";
    s += mode_reason;
  }
  if (decluster_bits != 0) {
    s += "\nradix plan: B=";
    s += std::to_string(decluster_bits);
    s += " (";
    s += std::to_string(decluster_passes);
    s += " pass";
    s += decluster_passes == 1 ? "" : "es";
    s += "), window=";
    s += std::to_string(window_elems);
    s += " elems";
  }
  if (modeled_intermediate_bytes != 0) {
    s += "\nintermediates: ~";
    s += std::to_string(modeled_intermediate_bytes / 1024);
    s += " KB peak";
  }
  if (varchar_cols != 0) {
    s += "\nvarchar: ";
    s += std::to_string(varchar_cols);
    s += " col";
    s += varchar_cols == 1 ? "" : "s";
    s += ", avg len ";
    s += std::to_string(avg_varchar_len);
    s += " B";
    char vbuf[64];
    const int vlen = std::snprintf(vbuf, sizeof(vbuf),
                                   ", paged-decluster %.3f ms",
                                   varchar_decluster_cost.seconds * 1e3);
    RADIX_CHECK(vlen > 0 && static_cast<size_t>(vlen) < sizeof(vbuf));
    s += vbuf;
  }
  s += "\nmodeled cost: ";
  char buf[200];
  const int len = std::snprintf(
      buf, sizeof(buf),
      "%.3f ms  (join %.3f + cluster %.3f + project %.3f + "
      "decluster %.3f + varchar %.3f)",
      modeled_seconds * 1e3, join_cost.seconds * 1e3,
      cluster_cost.seconds * 1e3, projection_cost.seconds * 1e3,
      decluster_cost.seconds * 1e3, varchar_decluster_cost.seconds * 1e3);
  RADIX_CHECK(len > 0 && static_cast<size_t>(len) < sizeof(buf));
  s += buf;
  return s;
}

}  // namespace radix::engine
