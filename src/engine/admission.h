#ifndef RADIX_ENGINE_ADMISSION_H_
#define RADIX_ENGINE_ADMISSION_H_

#include <cstddef>
#include <cstdint>

#include "common/clock.h"
#include "common/macros.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace radix::engine {

/// Snapshot of the admission controller's counters (Engine::Stats()).
struct AdmissionStats {
  uint64_t admitted = 0;   ///< queries that passed admission (incl. waiters)
  uint64_t queued = 0;     ///< queries that had to wait for budget/turn
  uint64_t rejected = 0;   ///< fail-fast: reservation larger than the budget
  size_t waiting = 0;      ///< queries parked in the queue right now
  size_t reserved_bytes = 0;       ///< bytes reserved by running queries
  size_t peak_reserved_bytes = 0;  ///< high-water mark of reserved_bytes
  uint64_t total_queue_wait_nanos = 0;  ///< summed park time of all waiters
};

/// Memory-budget admission gate in front of Engine::Execute(): each query
/// reserves its modeled peak intermediate bytes before running and releases
/// them after, so the sum of in-flight intermediates — the thing the
/// streaming MemoryGauge measures — never exceeds the budget no matter how
/// many client threads call Execute() concurrently.
///
/// Queueing is strict FIFO on arrival order (ticket numbers): a query waits
/// until it is the head of the queue AND its reservation fits, so small
/// queries cannot starve a large one indefinitely (fairness) and a large
/// one cannot be overtaken forever (no livelock). Deadlock-free by
/// construction: admitted queries always complete — the pool's per-call
/// ParallelFor groups guarantee the admitting thread can drive its own
/// work to completion — so reservations always come back and the head of
/// the queue always eventually fits (a reservation that can *never* fit,
/// i.e. bytes > budget, is rejected immediately with ResourceExhausted
/// instead of queueing forever).
///
/// budget_bytes == 0 disables gating: everything admits immediately
/// (reservations are still counted, so Stats() stays meaningful).
class AdmissionController {
 public:
  explicit AdmissionController(size_t budget_bytes, Clock* clock = nullptr)
      : budget_(budget_bytes),
        clock_(clock != nullptr ? clock : Clock::Steady()) {}
  RADIX_DISALLOW_COPY_AND_ASSIGN(AdmissionController);

  /// Reserve `bytes` against the budget; blocks (FIFO) until it fits.
  /// Fails fast with kResourceExhausted — without queueing — when bytes
  /// alone exceed the whole budget: such a query could otherwise park at
  /// the head of the queue forever and deadlock everyone behind it.
  /// Dropping the returned Status is a compile error: an unchecked
  /// rejection would run the query without a reservation.
  [[nodiscard]] Status Admit(size_t bytes) RADIX_EXCLUDES(mu_);

  /// Return a previous Admit()'s reservation and wake the queue.
  void Release(size_t bytes) RADIX_EXCLUDES(mu_);

  size_t budget_bytes() const { return budget_; }
  AdmissionStats Stats() const RADIX_EXCLUDES(mu_);

 private:
  const size_t budget_;
  Clock* const clock_;

  /// mu_ guards the ticket queue and counters; it is a leaf lock (never
  /// held while acquiring any other radix mutex — docs/CONCURRENCY.md).
  /// cv_ is notified under mu_ whenever serving_ advances or reservations
  /// shrink, so a parked Admit() re-checks its FIFO turn and budget fit.
  mutable Mutex mu_;
  CondVar cv_;
  uint64_t next_ticket_ RADIX_GUARDED_BY(mu_) = 0;  ///< arrival order
  /// Ticket currently allowed to admit.
  uint64_t serving_ RADIX_GUARDED_BY(mu_) = 0;
  AdmissionStats stats_ RADIX_GUARDED_BY(mu_);
};

}  // namespace radix::engine

#endif  // RADIX_ENGINE_ADMISSION_H_
