#include "workload/distributions.h"

#include <cmath>
#include <numeric>

#include "common/macros.h"

namespace radix::workload {

std::vector<uint32_t> RandomPermutation(size_t n, Rng& rng) {
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  Shuffle(perm.data(), n, rng);
  return perm;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double s) : n_(n), s_(s) {
  RADIX_CHECK(n >= 1);
  RADIX_CHECK(s >= 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  threshold_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -s_));
}

double ZipfGenerator::H(double x) const {
  if (s_ == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfGenerator::HInverse(double x) const {
  if (s_ == 1.0) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

uint64_t ZipfGenerator::Next(Rng& rng) {
  // Rejection-inversion sampling; expected <2 iterations for any s.
  for (;;) {
    double u = h_x1_ + rng.NextDouble() * (h_n_ - h_x1_);
    double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    if (static_cast<double>(k) - x <= threshold_) return k - 1;
    if (u >= H(static_cast<double>(k) + 0.5) - std::pow(static_cast<double>(k), -s_)) {
      return k - 1;
    }
  }
}

}  // namespace radix::workload
