#include "workload/generator.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "common/macros.h"
#include "workload/distributions.h"

namespace radix::workload {

value_t PayloadValue(value_t key, size_t attr) {
  // Cheap mixing keeps payloads distinct across attributes while remaining
  // recomputable by verifiers.
  uint64_t h = HashInt64(static_cast<uint64_t>(static_cast<uint32_t>(key)) |
                         (static_cast<uint64_t>(attr) << 32));
  return static_cast<value_t>(h & 0x7fffffff);
}

std::string PayloadString(value_t key, size_t attr,
                          const VarcharColumnSpec& spec) {
  // Salted separately from PayloadValue so the string stream never
  // correlates with the fixed payloads of the same (key, attr).
  uint64_t h =
      HashInt64((static_cast<uint64_t>(static_cast<uint32_t>(key)) |
                 (static_cast<uint64_t>(attr) << 32)) ^
                0x7661726368617221ULL);  // "varchar!"

  // Length: one uniform draw decides emptiness, a second (skewable) draw
  // picks from [min_len, max_len]. pow(u, 1 + skew) pushes mass toward 0,
  // i.e. toward min_len — many short values, a thinning tail of long ones.
  double u_empty = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u_empty < spec.empty_fraction) return {};
  uint64_t h2 = HashInt64(h);
  double u = static_cast<double>(h2 >> 11) * 0x1.0p-53;
  if (spec.zipf_skew > 0) u = std::pow(u, 1.0 + spec.zipf_skew);
  size_t lo = spec.min_len;
  size_t hi = std::max(spec.max_len, spec.min_len);
  size_t len = lo + static_cast<size_t>(u * static_cast<double>(hi - lo + 1));
  if (len > hi) len = hi;

  // Content: 6 printable chars per hash refresh, keyed by (h, position).
  static constexpr char kAlphabet[65] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
  std::string out;
  out.reserve(len);
  uint64_t g = 0;
  for (size_t i = 0; i < len; ++i) {
    if (i % 6 == 0) g = HashInt64(h2 ^ (i + 1));
    out.push_back(kAlphabet[g & 63]);
    g >>= 6;
  }
  return out;
}

size_t AverageVarcharBytes(std::span<const storage::VarcharColumn> cols,
                           size_t first_k) {
  first_k = std::min(first_k, cols.size());
  if (first_k == 0) return 0;
  size_t values = 0, heap = 0;
  for (size_t c = 0; c < first_k; ++c) {
    values += cols[c].size();
    heap += cols[c].heap_bytes();
  }
  if (values == 0) return 0;
  return std::max<size_t>(1, heap / values);
}

namespace {

/// Generate the two key arrays per the hit-rate scheme documented in the
/// header. Returns the expected join result size.
size_t MakeKeys(const JoinWorkloadSpec& spec, std::vector<value_t>* left,
                std::vector<value_t>* right, Rng& rng) {
  size_t n = spec.cardinality;
  left->resize(n);
  right->resize(n);
  double h = spec.hit_rate;
  RADIX_CHECK(h > 0);

  if (h >= 0.999 && h <= 1.001) {
    for (size_t i = 0; i < n; ++i) (*right)[i] = static_cast<value_t>(i);
    for (size_t i = 0; i < n; ++i) (*left)[i] = static_cast<value_t>(i);
    Shuffle(right->data(), n, rng);
    Shuffle(left->data(), n, rng);
    return n;
  }
  if (h > 1.0) {
    // Domain of size n/h; right repeats each key h times, left draws
    // uniformly from the domain: each left tuple matches h right tuples.
    size_t domain = std::max<size_t>(1, static_cast<size_t>(std::llround(n / h)));
    for (size_t i = 0; i < n; ++i) {
      (*right)[i] = static_cast<value_t>(i % domain);
    }
    Shuffle(right->data(), n, rng);
    // Exact expected size: each right key k occurs n/domain (+1 for the
    // first n%domain keys) times; sum the occurrence count of every drawn
    // left key.
    size_t base_count = n / domain;
    size_t remainder = n % domain;
    size_t matches = 0;
    for (size_t i = 0; i < n; ++i) {
      size_t k = rng.Below(domain);
      (*left)[i] = static_cast<value_t>(k);
      matches += base_count + (k < remainder ? 1 : 0);
    }
    return matches;
  }
  // h < 1: right keys distinct [0, n); an h-fraction of left keys drawn
  // from the matching domain (distinct), the rest from a disjoint range.
  for (size_t i = 0; i < n; ++i) (*right)[i] = static_cast<value_t>(i);
  Shuffle(right->data(), n, rng);
  size_t hits = static_cast<size_t>(std::llround(h * static_cast<double>(n)));
  std::vector<uint32_t> perm = RandomPermutation(n, rng);
  for (size_t i = 0; i < hits; ++i) (*left)[i] = static_cast<value_t>(perm[i]);
  for (size_t i = hits; i < n; ++i) {
    (*left)[i] = static_cast<value_t>(n + rng.Below(n));
  }
  Shuffle(left->data(), n, rng);
  return hits;
}

}  // namespace

JoinWorkload MakeJoinWorkload(const JoinWorkloadSpec& spec) {
  RADIX_CHECK(spec.num_attrs >= 1);
  Rng rng(spec.seed);
  std::vector<value_t> left_keys, right_keys;
  size_t expected = MakeKeys(spec, &left_keys, &right_keys, rng);

  JoinWorkload w;
  size_t n = spec.cardinality;
  size_t omega = spec.num_attrs;
  w.expected_result_size = expected;

  w.dsm_left = storage::DsmRelation("larger", n, omega);
  w.dsm_right = storage::DsmRelation("smaller", n, omega);
  if (spec.build_nsm) {
    w.nsm_left = storage::NsmRelation("larger", n, omega);
    w.nsm_right = storage::NsmRelation("smaller", n, omega);
  }

  for (size_t i = 0; i < n; ++i) {
    w.dsm_left.key()[i] = left_keys[i];
    w.dsm_right.key()[i] = right_keys[i];
    if (spec.build_nsm) {
      w.nsm_left.record(i)[0] = left_keys[i];
      w.nsm_right.record(i)[0] = right_keys[i];
    }
  }
  for (size_t a = 1; a < omega; ++a) {
    auto& lcol = w.dsm_left.attr(a);
    auto& rcol = w.dsm_right.attr(a);
    for (size_t i = 0; i < n; ++i) {
      value_t lv = PayloadValue(left_keys[i], a);
      value_t rv = PayloadValue(right_keys[i], a + 1000);  // distinct per side
      lcol[i] = lv;
      rcol[i] = rv;
      if (spec.build_nsm) {
        w.nsm_left.record(i)[a] = lv;
        w.nsm_right.record(i)[a] = rv;
      }
    }
  }
  if (spec.varchar.num_cols > 0) {
    const VarcharColumnSpec& vs = spec.varchar;
    // Mean of the length distribution, for the one-shot heap reservation.
    size_t avg = (vs.min_len + std::max(vs.max_len, vs.min_len) + 1) / 2;
    w.left_varchars.resize(vs.num_cols);
    w.right_varchars.resize(vs.num_cols);
    for (size_t c = 0; c < vs.num_cols; ++c) {
      w.left_varchars[c].Reserve(n, n * avg);
      w.right_varchars[c].Reserve(n, n * avg);
      for (size_t i = 0; i < n; ++i) {
        w.left_varchars[c].Append(PayloadString(left_keys[i], c, vs));
        w.right_varchars[c].Append(
            PayloadString(right_keys[i], kRightVarcharAttrOffset + c, vs));
      }
    }
  }
  return w;
}

std::vector<oid_t> MakeSparseOids(size_t n, double selectivity, Rng& rng) {
  RADIX_CHECK(selectivity > 0 && selectivity <= 1.0);
  size_t base = static_cast<size_t>(std::llround(n / selectivity));
  std::vector<oid_t> oids(n);
  if (selectivity >= 0.999) {
    for (size_t i = 0; i < n; ++i) oids[i] = static_cast<oid_t>(i);
  } else {
    // Every (1/s)-th position with per-slot jitter: distinct, spread evenly
    // over the base table as a uniform selection would be.
    double stride = static_cast<double>(base) / static_cast<double>(n);
    for (size_t i = 0; i < n; ++i) {
      size_t lo = static_cast<size_t>(i * stride);
      size_t hi = static_cast<size_t>((i + 1) * stride);
      if (hi <= lo) hi = lo + 1;
      oids[i] = static_cast<oid_t>(lo + rng.Below(hi - lo));
    }
  }
  Shuffle(oids.data(), n, rng);
  return oids;
}

storage::Column<value_t> MakeBaseColumn(size_t cardinality, size_t attr) {
  storage::Column<value_t> col(cardinality);
  for (size_t i = 0; i < cardinality; ++i) {
    col[i] = PayloadValue(static_cast<value_t>(i), attr);
  }
  return col;
}

}  // namespace radix::workload
