#ifndef RADIX_WORKLOAD_GENERATOR_H_
#define RADIX_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "storage/dsm.h"
#include "storage/nsm.h"
#include "storage/varchar.h"

namespace radix::workload {

/// Variable-size (varchar) payload columns for the experimental query
/// (paper §5's workload): each side gets `num_cols` string columns whose
/// value is a deterministic function of the tuple's join key, so result
/// verifiers can recompute every string from the keys alone (the varchar
/// analogue of PayloadValue). Lengths follow a configurable distribution.
struct VarcharColumnSpec {
  size_t num_cols = 0;  ///< varchar columns generated per side
  size_t min_len = 4;   ///< shortest non-empty value, bytes
  size_t max_len = 20;  ///< longest value, bytes
  /// 0 = uniform lengths over [min_len, max_len]; > 0 skews the mass
  /// toward min_len Zipf-style (many short strings, a long tail of long
  /// ones), exercising imbalanced heap traffic in the paged decluster.
  double zipf_skew = 0.0;
  /// Fraction of values that are the empty string "" (edge case of the
  /// three-phase decluster: zero-length records still need slots).
  double empty_fraction = 0.0;
};

/// Parameters of the paper's experimental query (§1.1, §4):
///   SELECT larger.a1..aY, smaller.b1..bZ
///   FROM larger, smaller WHERE larger.key = smaller.key
/// with equal-size relations of N tuples, ω all-integer attributes,
/// join hit rate h in {3, 1, 0.3} and π projected columns per side.
struct JoinWorkloadSpec {
  size_t cardinality = 1u << 20;  ///< N (both relations)
  size_t num_attrs = 4;           ///< ω, including the key
  double hit_rate = 1.0;          ///< h: expected result size = h * N
  uint64_t seed = 42;

  /// Selectivity s of a selection feeding the join (paper §4, Fig. 11 and
  /// the error bars in Fig. 10): the join input's column values are spread
  /// over a base table of cardinality N / s, making projections sparse.
  /// 1.0 means the input is a full base table (dense oids).
  double selectivity = 1.0;

  /// Skip materializing the row-major NSM copies. DSM-only experiments
  /// (e.g. Fig. 10c at 16M tuples) need only the columns — "for DSM systems
  /// only π matters, not ω" (paper §4.1) — and the NSM copies would double
  /// or quadruple the memory footprint.
  bool build_nsm = true;

  /// Variable-size payload columns per side (paper §5's workload); see
  /// VarcharColumnSpec. num_cols == 0 (default) generates none.
  VarcharColumnSpec varchar;
};

/// A generated pair of join inputs, in both storage models, built from the
/// same logical tuples so every strategy computes the identical result.
struct JoinWorkload {
  storage::DsmRelation dsm_left;   ///< "larger" in the paper's query
  storage::DsmRelation dsm_right;  ///< "smaller"
  storage::NsmRelation nsm_left;
  storage::NsmRelation nsm_right;
  /// Variable-size payload columns (spec.varchar.num_cols per side); the
  /// varchar analogue of dsm_*.attr(). Column c of the left side holds
  /// PayloadString(key, c, spec.varchar); the right side holds
  /// PayloadString(key, kRightVarcharAttrOffset + c, spec.varchar).
  std::vector<storage::VarcharColumn> left_varchars;
  std::vector<storage::VarcharColumn> right_varchars;
  size_t expected_result_size = 0;
};

/// Attribute-space offset separating right-side varchar payloads from left
/// ones, mirroring PayloadValue's `attr + 1000` convention for the right
/// side's fixed columns.
inline constexpr size_t kRightVarcharAttrOffset = 1000;

/// Keys are constructed so that
///  * h == 1 : left keys are a random permutation of right keys
///             (every tuple matches exactly once);
///  * h  > 1 : right holds each key of a domain of size N/h exactly h
///             times; left holds N tuples over the same domain
///             (each left tuple matches h right tuples);
///  * h  < 1 : a random h-fraction of left keys match distinct right keys;
///             the rest miss.
/// Payload attribute a of tuple t is a deterministic function of (a, key),
/// so result correctness can be verified from key values alone.
JoinWorkload MakeJoinWorkload(const JoinWorkloadSpec& spec);

/// Deterministic payload value for attribute `attr` of the tuple with the
/// given key; used by generators and by result verification in tests.
value_t PayloadValue(value_t key, size_t attr);

/// Deterministic varchar payload for attribute `attr` of the tuple with
/// the given key (content *and* length are pure functions of (key, attr,
/// spec)), so scalar reference verifiers can recompute every string
/// without replaying any RNG stream. Left varchar column c uses attr = c;
/// right column c uses attr = kRightVarcharAttrOffset + c.
std::string PayloadString(value_t key, size_t attr,
                          const VarcharColumnSpec& spec);

/// Mean value length in bytes over the first `first_k` columns (total heap
/// bytes / total values, >= 1 unless empty); the avg_len the planner and
/// cost model use for heap-traffic terms. 0 when first_k == 0.
size_t AverageVarcharBytes(std::span<const storage::VarcharColumn> cols,
                           size_t first_k);

/// Build a sparse positional-join input (Fig. 11): `n` distinct oids into a
/// base column of cardinality n / selectivity, in random order. With
/// selectivity 1.0 this is a random permutation of [0, n).
std::vector<oid_t> MakeSparseOids(size_t n, double selectivity, Rng& rng);

/// A base column where base[oid] = PayloadValue(oid, attr); fetch target
/// for positional-join experiments.
storage::Column<value_t> MakeBaseColumn(size_t cardinality, size_t attr = 1);

}  // namespace radix::workload

#endif  // RADIX_WORKLOAD_GENERATOR_H_
