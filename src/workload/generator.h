#ifndef RADIX_WORKLOAD_GENERATOR_H_
#define RADIX_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "storage/dsm.h"
#include "storage/nsm.h"

namespace radix::workload {

/// Parameters of the paper's experimental query (§1.1, §4):
///   SELECT larger.a1..aY, smaller.b1..bZ
///   FROM larger, smaller WHERE larger.key = smaller.key
/// with equal-size relations of N tuples, ω all-integer attributes,
/// join hit rate h in {3, 1, 0.3} and π projected columns per side.
struct JoinWorkloadSpec {
  size_t cardinality = 1u << 20;  ///< N (both relations)
  size_t num_attrs = 4;           ///< ω, including the key
  double hit_rate = 1.0;          ///< h: expected result size = h * N
  uint64_t seed = 42;

  /// Selectivity s of a selection feeding the join (paper §4, Fig. 11 and
  /// the error bars in Fig. 10): the join input's column values are spread
  /// over a base table of cardinality N / s, making projections sparse.
  /// 1.0 means the input is a full base table (dense oids).
  double selectivity = 1.0;

  /// Skip materializing the row-major NSM copies. DSM-only experiments
  /// (e.g. Fig. 10c at 16M tuples) need only the columns — "for DSM systems
  /// only π matters, not ω" (paper §4.1) — and the NSM copies would double
  /// or quadruple the memory footprint.
  bool build_nsm = true;
};

/// A generated pair of join inputs, in both storage models, built from the
/// same logical tuples so every strategy computes the identical result.
struct JoinWorkload {
  storage::DsmRelation dsm_left;   ///< "larger" in the paper's query
  storage::DsmRelation dsm_right;  ///< "smaller"
  storage::NsmRelation nsm_left;
  storage::NsmRelation nsm_right;
  size_t expected_result_size = 0;
};

/// Keys are constructed so that
///  * h == 1 : left keys are a random permutation of right keys
///             (every tuple matches exactly once);
///  * h  > 1 : right holds each key of a domain of size N/h exactly h
///             times; left holds N tuples over the same domain
///             (each left tuple matches h right tuples);
///  * h  < 1 : a random h-fraction of left keys match distinct right keys;
///             the rest miss.
/// Payload attribute a of tuple t is a deterministic function of (a, key),
/// so result correctness can be verified from key values alone.
JoinWorkload MakeJoinWorkload(const JoinWorkloadSpec& spec);

/// Deterministic payload value for attribute `attr` of the tuple with the
/// given key; used by generators and by result verification in tests.
value_t PayloadValue(value_t key, size_t attr);

/// Build a sparse positional-join input (Fig. 11): `n` distinct oids into a
/// base column of cardinality n / selectivity, in random order. With
/// selectivity 1.0 this is a random permutation of [0, n).
std::vector<oid_t> MakeSparseOids(size_t n, double selectivity, Rng& rng);

/// A base column where base[oid] = PayloadValue(oid, attr); fetch target
/// for positional-join experiments.
storage::Column<value_t> MakeBaseColumn(size_t cardinality, size_t attr = 1);

}  // namespace radix::workload

#endif  // RADIX_WORKLOAD_GENERATOR_H_
