#ifndef RADIX_WORKLOAD_CHAIN_H_
#define RADIX_WORKLOAD_CHAIN_H_

#include <cstdint>
#include <vector>

#include "storage/dsm.h"
#include "storage/varchar.h"
#include "workload/generator.h"

namespace radix::workload {

/// Parameters of a multi-table join-chain workload: k base tables
/// T0 ⋈ T1 ⋈ ... ⋈ T(k-1), each joined to its neighbour on the key column.
/// Every table's keys are a random permutation of [0, cardinality_t), so
/// the join semantics stay analytic: table s matches table t exactly on the
/// keys below min(|Ts|, |Tt|), and a full chain's result size is the
/// minimum cardinality along it — the property the operator-layer property
/// tests and the optimizer's cardinality estimates both lean on.
struct ChainWorkloadSpec {
  /// Per-table cardinalities; size() = chain length (>= 1).
  std::vector<size_t> cardinalities = {size_t{1} << 16, size_t{1} << 16,
                                       size_t{1} << 16};
  size_t num_attrs = 4;  ///< ω per table, including the key (attr 0)
  uint64_t seed = 42;
  /// Varchar payload columns generated per table (same spec for all).
  VarcharColumnSpec varchar;
};

/// A generated join chain: tables[t] holds the key column (attr 0) and
/// num_attrs - 1 fixed payload columns; varchars[t] the per-table string
/// columns. Payloads are deterministic functions of (key, attr, table) —
/// see ChainPayloadAttr — so scalar reference interpreters can recompute
/// every result value from key values alone.
struct ChainWorkload {
  std::vector<storage::DsmRelation> tables;
  std::vector<std::vector<storage::VarcharColumn>> varchars;
};

/// Attribute-space salt separating the payloads of different chain tables,
/// generalizing MakeJoinWorkload's `attr + 1000` right-side convention:
/// table t's fixed attribute a holds PayloadValue(key, ChainPayloadAttr(t,
/// a)) and its varchar column c holds PayloadString(key, ChainPayloadAttr(t,
/// c), spec). Tables 0 and 1 therefore reproduce the two-sided workload's
/// left/right payload streams exactly.
inline constexpr size_t kChainAttrStride = 1000;
inline size_t ChainPayloadAttr(size_t table, size_t attr) {
  return attr + kChainAttrStride * table;
}

ChainWorkload MakeChainWorkload(const ChainWorkloadSpec& spec);

}  // namespace radix::workload

#endif  // RADIX_WORKLOAD_CHAIN_H_
