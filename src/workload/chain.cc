#include "workload/chain.h"

#include <string>

#include "common/macros.h"
#include "common/rng.h"
#include "workload/distributions.h"

namespace radix::workload {

ChainWorkload MakeChainWorkload(const ChainWorkloadSpec& spec) {
  RADIX_CHECK(!spec.cardinalities.empty());
  RADIX_CHECK(spec.num_attrs >= 1);
  Rng rng(spec.seed);

  ChainWorkload w;
  w.tables.reserve(spec.cardinalities.size());
  w.varchars.resize(spec.cardinalities.size());

  for (size_t t = 0; t < spec.cardinalities.size(); ++t) {
    const size_t n = spec.cardinalities[t];
    storage::DsmRelation rel("chain" + std::to_string(t), n, spec.num_attrs);

    // Keys: a shuffled permutation of [0, n) — dense domains, so
    // neighbouring tables match exactly on the overlap of their domains.
    std::vector<value_t> keys(n);
    for (size_t i = 0; i < n; ++i) keys[i] = static_cast<value_t>(i);
    Shuffle(keys.data(), n, rng);

    for (size_t i = 0; i < n; ++i) rel.key()[i] = keys[i];
    for (size_t a = 1; a < spec.num_attrs; ++a) {
      auto& col = rel.attr(a);
      const size_t salted = ChainPayloadAttr(t, a);
      for (size_t i = 0; i < n; ++i) {
        col[i] = PayloadValue(keys[i], salted);
      }
    }

    if (spec.varchar.num_cols > 0) {
      const VarcharColumnSpec& vs = spec.varchar;
      const size_t avg = (vs.min_len + std::max(vs.max_len, vs.min_len) + 1) / 2;
      w.varchars[t].resize(vs.num_cols);
      for (size_t c = 0; c < vs.num_cols; ++c) {
        storage::VarcharColumn& col = w.varchars[t][c];
        col.Reserve(n, n * avg);
        const size_t salted = ChainPayloadAttr(t, c);
        for (size_t i = 0; i < n; ++i) {
          col.Append(PayloadString(keys[i], salted, vs));
        }
      }
    }
    w.tables.push_back(std::move(rel));
  }
  return w;
}

}  // namespace radix::workload
