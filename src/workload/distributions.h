#ifndef RADIX_WORKLOAD_DISTRIBUTIONS_H_
#define RADIX_WORKLOAD_DISTRIBUTIONS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace radix::workload {

/// Fisher-Yates shuffle of an array.
template <typename T>
void Shuffle(T* data, size_t n, Rng& rng) {
  for (size_t i = n; i > 1; --i) {
    size_t j = rng.Below(i);
    std::swap(data[i - 1], data[j]);
  }
}

/// A random permutation of [0, n).
std::vector<uint32_t> RandomPermutation(size_t n, Rng& rng);

/// Draw from a Zipf(s) distribution over [0, n) using rejection-inversion
/// (Hörmann & Derflinger). Used by the skew ablation: Radix-Cluster hashes
/// join keys precisely to combat skew (paper §2.2), and this lets us test
/// that clusters stay balanced under skewed keys.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double s);

  uint64_t Next(Rng& rng);

  uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double threshold_;
};

}  // namespace radix::workload

#endif  // RADIX_WORKLOAD_DISTRIBUTIONS_H_
