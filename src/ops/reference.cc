#include "ops/reference.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/overflow.h"
#include "project/checksum.h"

namespace radix::ops {

namespace {

/// A row-major intermediate: `tables[c]` names the base table behind oid
/// column c, `tuples` holds one oid per column per row, flattened.
struct Rows {
  std::vector<size_t> tables;
  std::vector<oid_t> tuples;

  size_t width() const { return tables.size(); }
  size_t rows() const { return tables.empty() ? 0 : tuples.size() / width(); }
  const oid_t* row(size_t i) const { return tuples.data() + i * width(); }

  size_t ColumnFor(size_t table) const {
    for (size_t c = 0; c < tables.size(); ++c) {
      if (tables[c] == table) return c;
    }
    RADIX_CHECK(false && "table not in reference intermediate");
    return 0;
  }
};

bool EvalValue(CmpOp op, value_t v, value_t c) {
  switch (op) {
    case CmpOp::kLt: return v < c;
    case CmpOp::kLe: return v <= c;
    case CmpOp::kGt: return v > c;
    case CmpOp::kGe: return v >= c;
    case CmpOp::kEq: return v == c;
    case CmpOp::kNe: return v != c;
  }
  return false;
}

bool EvalVarchar(const Predicate& pred, std::string_view s) {
  bool match;
  if (pred.str_prefix) {
    match = s.size() >= pred.str_value.size() &&
            s.compare(0, pred.str_value.size(), pred.str_value) == 0;
  } else {
    match = s == pred.str_value;
  }
  return pred.op == CmpOp::kNe ? !match : match;
}

Rows EvalNode(const Catalog& catalog, const PlanNode& node) {
  switch (node.kind) {
    case NodeKind::kScan: {
      Rows r;
      r.tables = {node.table};
      const size_t n = catalog.table(node.table).cardinality();
      r.tuples.resize(n);
      for (size_t i = 0; i < n; ++i) r.tuples[i] = static_cast<oid_t>(i);
      return r;
    }
    case NodeKind::kSelect: {
      Rows in = EvalNode(catalog, *node.children[0]);
      const Table& table = catalog.table(node.pred.col.table);
      const size_t col = in.ColumnFor(node.pred.col.table);
      Rows out;
      out.tables = in.tables;
      const size_t w = in.width();
      for (size_t i = 0; i < in.rows(); ++i) {
        const oid_t oid = in.row(i)[col];
        bool keep;
        if (node.pred.col.is_varchar) {
          keep = EvalVarchar(node.pred,
                             table.varchars[node.pred.col.attr]->at(oid));
        } else {
          keep = EvalValue(node.pred.op,
                           table.relation->attr(node.pred.col.attr)[oid],
                           node.pred.value);
        }
        if (keep) {
          out.tuples.insert(out.tuples.end(), in.row(i), in.row(i) + w);
        }
      }
      return out;
    }
    case NodeKind::kJoin: {
      Rows left = EvalNode(catalog, *node.children[0]);
      Rows right = EvalNode(catalog, *node.children[1]);
      const size_t lcol = left.ColumnFor(node.left_table);
      const size_t rcol = right.ColumnFor(node.right_table);
      const auto& lkey = catalog.table(node.left_table).relation->key();
      const auto& rkey = catalog.table(node.right_table).relation->key();

      std::unordered_multimap<value_t, size_t> index;
      index.reserve(right.rows());
      for (size_t j = 0; j < right.rows(); ++j) {
        index.emplace(rkey[right.row(j)[rcol]], j);
      }

      Rows out;
      out.tables = left.tables;
      out.tables.insert(out.tables.end(), right.tables.begin(),
                        right.tables.end());
      const size_t lw = left.width();
      const size_t rw = right.width();
      for (size_t i = 0; i < left.rows(); ++i) {
        auto [begin, end] = index.equal_range(lkey[left.row(i)[lcol]]);
        for (auto it = begin; it != end; ++it) {
          const size_t j = it->second;
          out.tuples.insert(out.tuples.end(), left.row(i), left.row(i) + lw);
          out.tuples.insert(out.tuples.end(), right.row(j),
                            right.row(j) + rw);
        }
      }
      return out;
    }
    case NodeKind::kProject:
    case NodeKind::kAggregate:
      // Roots are handled by ReferenceExecute, never recursed into.
      break;
  }
  RADIX_CHECK(false && "unexpected node in reference subtree");
  return {};
}

int64_t AccInit(AggFn fn) {
  switch (fn) {
    case AggFn::kSum:
    case AggFn::kCount:
      return 0;
    case AggFn::kMin:
      return std::numeric_limits<int64_t>::max();
    case AggFn::kMax:
      return std::numeric_limits<int64_t>::min();
  }
  return 0;
}

void AccUpdate(AggFn fn, int64_t* acc, value_t v) {
  switch (fn) {
    case AggFn::kSum: *acc += v; break;
    case AggFn::kCount: *acc += 1; break;
    case AggFn::kMin: *acc = std::min<int64_t>(*acc, v); break;
    case AggFn::kMax: *acc = std::max<int64_t>(*acc, v); break;
  }
}

value_t AccFinal(AggFn fn, int64_t acc) {
  switch (fn) {
    case AggFn::kSum:
    case AggFn::kCount:
      // The same low-32-bit two's-complement truncation as the operator.
      return static_cast<value_t>(
          static_cast<uint32_t>(static_cast<uint64_t>(acc)));
    case AggFn::kMin:
    case AggFn::kMax:
      return static_cast<value_t>(acc);
  }
  return 0;
}

}  // namespace

Status ReferenceExecute(const Catalog& catalog, const LogicalPlan& plan,
                        PlanRun* out) {
  Status valid = ValidatePlan(catalog, plan);
  if (!valid.ok()) return valid;

  const PlanNode& root = *plan.root;
  Rows rows = EvalNode(catalog, *root.children[0]);

  PlanRun run;
  if (root.kind == NodeKind::kProject) {
    run.result_rows = rows.rows();
    for (size_t i = 0; i < rows.rows(); ++i) {
      project::RowDigest digest;
      // Values first, then varchar columns — the root column order split
      // the same way ExecutePlan's chunks split it.
      for (const ColumnRef& ref : root.columns) {
        if (ref.is_varchar) continue;
        const oid_t oid = rows.row(i)[rows.ColumnFor(ref.table)];
        digest.AddValue(catalog.table(ref.table).relation->attr(ref.attr)[oid]);
      }
      for (const ColumnRef& ref : root.columns) {
        if (!ref.is_varchar) continue;
        const oid_t oid = rows.row(i)[rows.ColumnFor(ref.table)];
        digest.AddString(catalog.table(ref.table).varchars[ref.attr]->at(oid));
      }
      run.checksum = WrapAdd(run.checksum, digest.digest());
    }
    *out = run;
    return Status::OK();
  }

  RADIX_CHECK(root.kind == NodeKind::kAggregate);
  const size_t n_aggs = root.aggs.size();
  const bool grouped = !root.group_by.empty();

  auto agg_input = [&](size_t j, size_t i) -> value_t {
    const ColumnRef& ref = root.aggs[j].col;
    const oid_t oid = rows.row(i)[rows.ColumnFor(ref.table)];
    return catalog.table(ref.table).relation->attr(ref.attr)[oid];
  };

  // std::map keeps groups in key order; output order differs from the
  // operator (hash-cluster order), which the order-independent checksum
  // absorbs.
  std::map<value_t, std::vector<int64_t>> groups;
  if (!grouped) {
    auto& accs = groups[0];
    accs.resize(n_aggs);
    for (size_t j = 0; j < n_aggs; ++j) accs[j] = AccInit(root.aggs[j].fn);
    for (size_t i = 0; i < rows.rows(); ++i) {
      for (size_t j = 0; j < n_aggs; ++j) {
        AccUpdate(root.aggs[j].fn, &accs[j],
                  root.aggs[j].fn == AggFn::kCount ? 0 : agg_input(j, i));
      }
    }
  } else {
    const ColumnRef& g = root.group_by[0];
    const size_t gcol = rows.ColumnFor(g.table);
    const auto& gbase = catalog.table(g.table).relation->attr(g.attr);
    for (size_t i = 0; i < rows.rows(); ++i) {
      const value_t key = gbase[rows.row(i)[gcol]];
      auto [it, inserted] = groups.try_emplace(key);
      if (inserted) {
        it->second.resize(n_aggs);
        for (size_t j = 0; j < n_aggs; ++j) {
          it->second[j] = AccInit(root.aggs[j].fn);
        }
      }
      for (size_t j = 0; j < n_aggs; ++j) {
        AccUpdate(root.aggs[j].fn, &it->second[j],
                  root.aggs[j].fn == AggFn::kCount ? 0 : agg_input(j, i));
      }
    }
  }

  run.result_rows = groups.size();
  for (const auto& [key, accs] : groups) {
    project::RowDigest digest;
    if (grouped) digest.AddValue(key);
    for (size_t j = 0; j < n_aggs; ++j) {
      digest.AddValue(AccFinal(root.aggs[j].fn, accs[j]));
    }
    run.checksum = WrapAdd(run.checksum, digest.digest());
  }
  *out = run;
  return Status::OK();
}

}  // namespace radix::ops
