#include "ops/table.h"

namespace radix::ops {

Catalog CatalogFromJoinWorkload(const workload::JoinWorkload& w) {
  Catalog c;
  Table left;
  left.name = w.dsm_left.name();
  left.relation = &w.dsm_left;
  for (const storage::VarcharColumn& col : w.left_varchars) {
    left.varchars.push_back(&col);
  }
  Table right;
  right.name = w.dsm_right.name();
  right.relation = &w.dsm_right;
  for (const storage::VarcharColumn& col : w.right_varchars) {
    right.varchars.push_back(&col);
  }
  c.tables.push_back(std::move(left));
  c.tables.push_back(std::move(right));
  return c;
}

Catalog CatalogFromChainWorkload(const workload::ChainWorkload& w) {
  Catalog c;
  for (size_t t = 0; t < w.tables.size(); ++t) {
    Table table;
    table.name = w.tables[t].name();
    table.relation = &w.tables[t];
    for (const storage::VarcharColumn& col : w.varchars[t]) {
      table.varchars.push_back(&col);
    }
    c.tables.push_back(std::move(table));
  }
  return c;
}

}  // namespace radix::ops
