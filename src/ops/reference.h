#ifndef RADIX_OPS_REFERENCE_H_
#define RADIX_OPS_REFERENCE_H_

#include "common/status.h"
#include "ops/executor.h"
#include "ops/plan.h"
#include "ops/table.h"

namespace radix::ops {

/// Scalar tuple-at-a-time reference interpreter: row-major oid tuples,
/// nested hash-lookup joins, std::map grouping — no radix machinery, no
/// chunking, no threads. Computes the same order-independent checksum
/// construction as ExecutePlan (values then varchar columns per row, 64-bit
/// accumulate-and-truncate aggregates), so `checksum` equality against the
/// operator executor proves the whole radix pipeline end to end. The
/// property tests sweep plan shapes x seeds x threads against this.
[[nodiscard]] Status ReferenceExecute(const Catalog& catalog,
                                      const LogicalPlan& plan, PlanRun* out);

}  // namespace radix::ops

#endif  // RADIX_OPS_REFERENCE_H_
