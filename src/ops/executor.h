#ifndef RADIX_OPS_EXECUTOR_H_
#define RADIX_OPS_EXECUTOR_H_

#include <cstdint>

#include "common/status.h"
#include "hardware/memory_hierarchy.h"
#include "ops/optimizer.h"
#include "ops/plan.h"
#include "ops/table.h"

namespace radix {
class ThreadPool;
namespace pipeline {
class MemoryGauge;
}
}  // namespace radix

namespace radix::ops {

/// Execution resources for one plan run; mirrors the knobs the engine's
/// session provides.
struct ExecOptions {
  const hardware::MemoryHierarchy* hw = nullptr;  ///< required
  /// Kernel pool; nullptr or size 1 = the exact serial kernels. Results are
  /// byte-identical at every pool size.
  ThreadPool* pool = nullptr;
  /// Gauge the operator arenas register with; nullptr = process-wide.
  pipeline::MemoryGauge* gauge = nullptr;
  /// Rows per operator chunk; 0 = cache-sized (project::DefaultChunkRows).
  size_t chunk_rows = 0;
};

/// What one plan run produced — the ops-layer analogue of
/// project::QueryRun: a row count and the order-independent checksum over
/// the root chunks (sum of per-row RowDigests, value columns then varchar
/// columns in the root's output order).
struct PlanRun {
  size_t result_rows = 0;
  uint64_t checksum = 0;
  double seconds = 0;
  size_t threads_used = 1;
  size_t chunks = 0;  ///< root chunks pulled
};

/// Build the operator tree for (plan, physical), pull it chunk-at-a-time,
/// and fold the result into *out. `physical.edges` must come from
/// Optimize() on the same logical plan (post-order join traversal).
/// Validates the plan and returns kInvalidArgument on malformed or
/// unsupported trees instead of crashing.
[[nodiscard]] Status ExecutePlan(const Catalog& catalog,
                                 const LogicalPlan& plan,
                                 const PhysicalPlan& physical,
                                 const ExecOptions& options, PlanRun* out);

}  // namespace radix::ops

#endif  // RADIX_OPS_EXECUTOR_H_
