#ifndef RADIX_OPS_OPTIMIZER_H_
#define RADIX_OPS_OPTIMIZER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "costmodel/models.h"
#include "hardware/memory_hierarchy.h"
#include "ops/operator.h"
#include "ops/plan.h"
#include "ops/table.h"

namespace radix::ops {

/// The optimizer's physical choice for one join edge: the Fig. 10 per-side
/// post-projection strategies, chosen by the cost model from the edge's
/// *estimated* input and output cardinalities (selectivities sampled from
/// the base columns, join sizes propagated bottom-up). Edges are stored in
/// post-order of the plan's join nodes — the same traversal the executor
/// uses to build RadixJoinOps, so edge i always belongs to join node i.
struct EdgePlan {
  size_t left_table = 0;
  size_t right_table = 0;
  JoinEdgePhysical physical;
  std::string code;  ///< Fig. 10 point label, e.g. "c/d"
  bool easy = false;
  size_t est_left_rows = 0;
  size_t est_right_rows = 0;
  size_t est_result_rows = 0;
};

/// A costed physical plan for a logical plan tree: per-edge strategies plus
/// the modeled phase costs summed over every edge (the same Appendix-A
/// formulas the two-sided engine Explain uses, applied per edge).
struct PhysicalPlan {
  std::vector<EdgePlan> edges;
  size_t est_result_rows = 0;
  /// Peak modeled footprint of the blocking operators (drained inputs +
  /// join index + materialized output of the widest edge; gathered
  /// grouping pairs for an aggregate) — the admission currency.
  size_t modeled_intermediate_bytes = 0;
  costmodel::CostEstimate join_cost;
  costmodel::CostEstimate cluster_cost;
  costmodel::CostEstimate projection_cost;
  costmodel::CostEstimate decluster_cost;
  double modeled_seconds = 0;

  /// One line per edge: "t0*t1: c/d (est 65536 rows)".
  std::string Summary() const;
};

/// Cost-model-driven physical planning: validates the plan, estimates
/// cardinalities bottom-up (predicate selectivities by strided sampling of
/// the base columns), and picks each join edge's Fig. 10 strategy with
/// project::PlanDsmPost against the edge's estimates. A right side of s/c
/// is coerced to d (only the first projection table of an edge may be
/// reordered, §4.1 — and a composable operator must not reorder its
/// output against its siblings).
[[nodiscard]] Status Optimize(const Catalog& catalog, const LogicalPlan& plan,
                              const hardware::MemoryHierarchy& hw,
                              const costmodel::CpuCosts& cpu,
                              size_t num_threads, PhysicalPlan* out);

}  // namespace radix::ops

#endif  // RADIX_OPS_OPTIMIZER_H_
