#include <algorithm>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <utility>

#include "cluster/partition_plan.h"
#include "cluster/radix_cluster.h"
#include "common/bits.h"
#include "common/hash.h"
#include "common/thread_pool.h"
#include "join/partitioned_hash_join.h"
#include "join/positional_join.h"
#include "ops/operator.h"
#include "common/overflow.h"
#include "project/dsm_post.h"

namespace radix::ops {

namespace {

/// ChunkArena stores value_t; the operator layer stores oids in it. oid_t
/// and value_t are the unsigned/signed 32-bit pair, so viewing one as the
/// other is well-defined aliasing.
oid_t* OidColumn(pipeline::ChunkArena& arena, size_t a) {
  return reinterpret_cast<oid_t*>(arena.column(a));
}

bool EvalValuePred(CmpOp op, value_t v, value_t c) {
  switch (op) {
    case CmpOp::kLt: return v < c;
    case CmpOp::kLe: return v <= c;
    case CmpOp::kGt: return v > c;
    case CmpOp::kGe: return v >= c;
    case CmpOp::kEq: return v == c;
    case CmpOp::kNe: return v != c;
  }
  return false;
}

bool EvalVarcharPred(const Predicate& pred, std::string_view s) {
  bool match;
  if (pred.str_prefix) {
    match = s.size() >= pred.str_value.size() &&
            s.compare(0, pred.str_value.size(), pred.str_value) == 0;
  } else {
    match = s == pred.str_value;
  }
  return pred.op == CmpOp::kNe ? !match : match;
}

/// Pull every chunk of `child` and append its oid columns to `cols`
/// (one vector per schema column). Returns the drained row count.
size_t DrainChild(Operator* child, std::vector<std::vector<oid_t>>* cols) {
  cols->assign(child->schema().oid_tables.size(), {});
  OpChunk chunk;
  size_t rows = 0;
  while (child->NextChunk(&chunk)) {
    rows += chunk.rows;
    for (size_t c = 0; c < cols->size(); ++c) {
      (*cols)[c].insert((*cols)[c].end(), chunk.oid_cols[c].begin(),
                        chunk.oid_cols[c].end());
    }
  }
  return rows;
}

}  // namespace

// ---------------------------------------------------------------- ScanOp

ScanOp::ScanOp(size_t table) : table_(table) {
  schema_.oid_tables = {table};
}

void ScanOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  pos_ = 0;
  cardinality_ = ctx->catalog->table(table_).cardinality();
  CheckOidCapacity(cardinality_);  // NextChunk emits positions as oids
  arena_.Reset(1, ctx->chunk_rows, ctx->gauge);
}

bool ScanOp::NextChunk(OpChunk* out) {
  if (pos_ >= cardinality_) return false;
  size_t n = std::min(ctx_->chunk_rows, cardinality_ - pos_);
  oid_t* col = OidColumn(arena_, 0);
  for (size_t i = 0; i < n; ++i) col[i] = static_cast<oid_t>(pos_ + i);
  pos_ += n;
  out->rows = n;
  out->oid_cols.assign(1, std::span<const oid_t>(col, n));
  out->val_cols.clear();
  out->var_cols.clear();
  return true;
}

void ScanOp::Close() { arena_.Reset(0, 0, ctx_ != nullptr ? ctx_->gauge : nullptr); }

// -------------------------------------------------------------- SelectOp

SelectOp::SelectOp(std::unique_ptr<Operator> child, Predicate pred)
    : child_(std::move(child)), pred_(std::move(pred)) {
  schema_.oid_tables = child_->schema().oid_tables;
  pred_col_ = schema_.OidColumnFor(pred_.col.table);
}

void SelectOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  child_->Open(ctx);
  arena_.Reset(schema_.oid_tables.size(), ctx->chunk_rows, ctx->gauge);
}

bool SelectOp::NextChunk(OpChunk* out) {
  const Table& table = ctx_->catalog->table(pred_.col.table);
  OpChunk chunk;
  // Fully-filtered chunks are skipped, not emitted as empty output.
  while (child_->NextChunk(&chunk)) {
    std::span<const oid_t> pred_oids = chunk.oid_cols[pred_col_];
    size_t kept = 0;
    if (pred_.col.is_varchar) {
      const storage::VarcharColumn& col = *table.varchars[pred_.col.attr];
      for (size_t i = 0; i < chunk.rows; ++i) {
        if (!EvalVarcharPred(pred_, col.at(pred_oids[i]))) continue;
        for (size_t c = 0; c < chunk.oid_cols.size(); ++c) {
          OidColumn(arena_, c)[kept] = chunk.oid_cols[c][i];
        }
        ++kept;
      }
    } else {
      const auto& col = table.relation->attr(pred_.col.attr);
      for (size_t i = 0; i < chunk.rows; ++i) {
        if (!EvalValuePred(pred_.op, col[pred_oids[i]], pred_.value)) continue;
        for (size_t c = 0; c < chunk.oid_cols.size(); ++c) {
          OidColumn(arena_, c)[kept] = chunk.oid_cols[c][i];
        }
        ++kept;
      }
    }
    if (kept == 0) continue;
    out->rows = kept;
    out->oid_cols.resize(chunk.oid_cols.size());
    for (size_t c = 0; c < chunk.oid_cols.size(); ++c) {
      out->oid_cols[c] = std::span<const oid_t>(OidColumn(arena_, c), kept);
    }
    out->val_cols.clear();
    out->var_cols.clear();
    return true;
  }
  return false;
}

void SelectOp::Close() {
  child_->Close();
  arena_.Reset(0, 0, ctx_ != nullptr ? ctx_->gauge : nullptr);
}

// ----------------------------------------------------------- RadixJoinOp

RadixJoinOp::RadixJoinOp(std::unique_ptr<Operator> left,
                         std::unique_ptr<Operator> right, size_t left_table,
                         size_t right_table, JoinEdgePhysical physical)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_table_(left_table),
      right_table_(right_table),
      physical_(physical) {
  schema_.oid_tables = left_->schema().oid_tables;
  const Schema& rs = right_->schema();
  schema_.oid_tables.insert(schema_.oid_tables.end(), rs.oid_tables.begin(),
                            rs.oid_tables.end());
}

void RadixJoinOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  left_->Open(ctx);
  right_->Open(ctx);
  materialized_ = false;
  result_rows_ = 0;
  pos_ = 0;
}

void RadixJoinOp::Materialize() {
  materialized_ = true;
  const size_t n_left_cols = left_->schema().oid_tables.size();

  std::vector<std::vector<oid_t>> lcols, rcols;
  const size_t lrows = DrainChild(left_.get(), &lcols);
  const size_t rrows = DrainChild(right_.get(), &rcols);

  // Gather the key values of the two join tables through their oid columns;
  // the hash join then works on drained-row positions, so every surviving
  // oid column — of any table in either subtree — projects through the same
  // join index.
  const size_t lkey_col = left_->schema().OidColumnFor(left_table_);
  const size_t rkey_col = right_->schema().OidColumnFor(right_table_);
  const auto& lkey_base = ctx_->catalog->table(left_table_).relation->key();
  const auto& rkey_base = ctx_->catalog->table(right_table_).relation->key();
  std::vector<value_t> lkeys(lrows), rkeys(rrows);
  for (size_t i = 0; i < lrows; ++i) lkeys[i] = lkey_base[lcols[lkey_col][i]];
  for (size_t i = 0; i < rrows; ++i) rkeys[i] = rkey_base[rcols[rkey_col][i]];

  ThreadPool* pool =
      (ctx_->pool != nullptr && ctx_->pool->num_threads() > 1) ? ctx_->pool
                                                               : nullptr;
  join::PartitionedHashJoinOptions jopts;
  jopts.pool = pool;
  join::JoinIndex index =
      join::PartitionedHashJoin(lkeys, rkeys, *ctx_->hw, jopts);
  lkeys.clear();
  lkeys.shrink_to_fit();
  rkeys.clear();
  rkeys.shrink_to_fit();

  // Fig. 10, left side: optionally reorder the index (sort / partial
  // cluster on the left positions) before the positional gathers.
  project::detail::ReorderIndexLeft(index, lrows, *ctx_->hw, physical_.left,
                                    physical_.left_bits, pool);

  const size_t n_out = index.size();
  result_rows_ = n_out;
  result_cols_.assign(schema_.oid_tables.size(), {});
  for (auto& col : result_cols_) col.resize(n_out);
  if (n_out == 0) {
    left_->Close();
    right_->Close();
    return;
  }

  // Left-subtree columns gather straight off the (reordered) index.
  {
    std::vector<std::span<const oid_t>> cols(n_left_cols);
    std::vector<std::span<oid_t>> outs(n_left_cols);
    for (size_t c = 0; c < n_left_cols; ++c) {
      cols[c] = lcols[c];
      outs[c] = result_cols_[c];
    }
    join::PositionalJoinPairsColumns<oid_t, /*kLeft=*/true>(index.span(), cols,
                                                            outs, pool);
  }

  // Right-subtree columns follow the edge's right strategy: u gathers in
  // result order; anything else runs cluster + positional join +
  // Radix-Decluster (s/c reorder the output and are not composable, so the
  // optimizer — and this fallback — coerce them to d).
  if (physical_.right == project::SideStrategy::kUnsorted) {
    std::vector<std::span<const oid_t>> cols(rcols.size());
    std::vector<std::span<oid_t>> outs(rcols.size());
    for (size_t c = 0; c < rcols.size(); ++c) {
      cols[c] = rcols[c];
      outs[c] = result_cols_[n_left_cols + c];
    }
    join::PositionalJoinPairsColumns<oid_t, /*kLeft=*/false>(index.span(),
                                                             cols, outs, pool);
  } else {
    std::vector<oid_t> ids = index.RightOids();
    std::vector<std::span<const value_t>> cols(rcols.size());
    std::vector<std::span<value_t>> outs(rcols.size());
    for (size_t c = 0; c < rcols.size(); ++c) {
      cols[c] = std::span<const value_t>(
          reinterpret_cast<const value_t*>(rcols[c].data()), rcols[c].size());
      outs[c] = std::span<value_t>(
          reinterpret_cast<value_t*>(result_cols_[n_left_cols + c].data()),
          n_out);
    }
    project::detail::ProjectSideWithPool(
        ids, project::SideStrategy::kDecluster, cols, outs, rrows, *ctx_->hw,
        physical_.right_bits, /*window_elems=*/0, /*phases=*/nullptr, pool);
  }

  // The children are fully consumed; release their arenas before streaming.
  left_->Close();
  right_->Close();
}

bool RadixJoinOp::NextChunk(OpChunk* out) {
  if (!materialized_) Materialize();
  if (pos_ >= result_rows_) return false;
  size_t n = std::min(ctx_->chunk_rows, result_rows_ - pos_);
  out->rows = n;
  out->oid_cols.resize(result_cols_.size());
  for (size_t c = 0; c < result_cols_.size(); ++c) {
    out->oid_cols[c] =
        std::span<const oid_t>(result_cols_[c].data() + pos_, n);
  }
  out->val_cols.clear();
  out->var_cols.clear();
  pos_ += n;
  return true;
}

void RadixJoinOp::Close() {
  if (!materialized_) {
    left_->Close();
    right_->Close();
  }
  result_cols_.clear();
  result_cols_.shrink_to_fit();
}

// ------------------------------------------------------------- ProjectOp

ProjectOp::ProjectOp(std::unique_ptr<Operator> child,
                     std::vector<ColumnRef> columns)
    : child_(std::move(child)), columns_(std::move(columns)) {
  schema_.oid_tables = child_->schema().oid_tables;
  for (const ColumnRef& ref : columns_) {
    if (ref.is_varchar) {
      ++schema_.varchar_cols;
    } else {
      ++schema_.value_cols;
    }
  }
}

void ProjectOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  child_->Open(ctx);
  arena_.Reset(schema_.value_cols, ctx->chunk_rows, ctx->gauge);
}

bool ProjectOp::NextChunk(OpChunk* out) {
  OpChunk chunk;
  if (!child_->NextChunk(&chunk)) return false;
  RADIX_CHECK(chunk.rows <= arena_.capacity_rows());
  out->rows = chunk.rows;
  out->oid_cols.clear();
  out->val_cols.clear();
  out->var_cols.clear();
  size_t val_idx = 0;
  for (const ColumnRef& ref : columns_) {
    const Table& table = ctx_->catalog->table(ref.table);
    std::span<const oid_t> oids =
        chunk.oid_cols[child_->schema().OidColumnFor(ref.table)];
    if (ref.is_varchar) {
      // Late-materialized view: the consumer reads base->at(oids[r]);
      // gathering the bytes here would only copy the heap.
      out->var_cols.push_back({table.varchars[ref.attr], oids});
    } else {
      const auto& base = table.relation->attr(ref.attr);
      value_t* dst = arena_.column(val_idx);
      for (size_t i = 0; i < chunk.rows; ++i) dst[i] = base[oids[i]];
      out->val_cols.push_back(std::span<const value_t>(dst, chunk.rows));
      ++val_idx;
    }
  }
  return true;
}

void ProjectOp::Close() {
  child_->Close();
  arena_.Reset(0, 0, ctx_ != nullptr ? ctx_->gauge : nullptr);
}

// ------------------------------------------------------ GroupAggregateOp

GroupAggregateOp::GroupAggregateOp(std::unique_ptr<Operator> child,
                                   std::vector<ColumnRef> group_by,
                                   std::vector<AggExpr> aggs)
    : child_(std::move(child)),
      group_by_(std::move(group_by)),
      aggs_(std::move(aggs)) {
  schema_.value_cols = group_by_.size() + aggs_.size();
}

void GroupAggregateOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  child_->Open(ctx);
  materialized_ = false;
  pos_ = 0;
  result_rows_ = 0;
}

namespace {

/// Per-group accumulator slots, one int64 per aggregate expression.
struct AggAccs {
  static int64_t Init(AggFn fn) {
    switch (fn) {
      case AggFn::kSum:
      case AggFn::kCount:
        return 0;
      case AggFn::kMin:
        return std::numeric_limits<int64_t>::max();
      case AggFn::kMax:
        return std::numeric_limits<int64_t>::min();
    }
    return 0;
  }

  static void Update(AggFn fn, int64_t* acc, value_t v) {
    switch (fn) {
      case AggFn::kSum:
        *acc += v;
        break;
      case AggFn::kCount:
        *acc += 1;
        break;
      case AggFn::kMin:
        *acc = std::min<int64_t>(*acc, v);
        break;
      case AggFn::kMax:
        *acc = std::max<int64_t>(*acc, v);
        break;
    }
  }

  /// Sums and counts report the low 32 bits of the 64-bit accumulator
  /// (two's complement); min/max are exact. The scalar reference applies
  /// the same rule, so checksums agree even when a sum overflows 32 bits.
  static value_t Final(AggFn fn, int64_t acc) {
    switch (fn) {
      case AggFn::kSum:
      case AggFn::kCount:
        return static_cast<value_t>(
            static_cast<uint32_t>(static_cast<uint64_t>(acc)));
      case AggFn::kMin:
      case AggFn::kMax:
        return static_cast<value_t>(acc);
    }
    return 0;
  }
};

}  // namespace

void GroupAggregateOp::Materialize() {
  materialized_ = true;
  const size_t n_aggs = aggs_.size();
  const bool grouped = !group_by_.empty();

  // Drain the child, gathering the group keys and every aggregate input
  // through the oid columns as the chunks stream by — the only pass over
  // the child's output.
  std::vector<value_t> group_vals;
  std::vector<std::vector<value_t>> agg_vals(n_aggs);
  {
    OpChunk chunk;
    while (child_->NextChunk(&chunk)) {
      if (grouped) {
        const ColumnRef& g = group_by_[0];
        const auto& base = ctx_->catalog->table(g.table).relation->attr(g.attr);
        std::span<const oid_t> oids =
            chunk.oid_cols[child_->schema().OidColumnFor(g.table)];
        for (size_t i = 0; i < chunk.rows; ++i) {
          group_vals.push_back(base[oids[i]]);
        }
      }
      for (size_t j = 0; j < n_aggs; ++j) {
        if (aggs_[j].fn == AggFn::kCount) continue;
        const ColumnRef& ref = aggs_[j].col;
        const auto& base =
            ctx_->catalog->table(ref.table).relation->attr(ref.attr);
        std::span<const oid_t> oids =
            chunk.oid_cols[child_->schema().OidColumnFor(ref.table)];
        for (size_t i = 0; i < chunk.rows; ++i) {
          agg_vals[j].push_back(base[oids[i]]);
        }
      }
      pos_ += chunk.rows;  // reuse pos_ as the drained row counter
    }
  }
  const size_t n = pos_;
  pos_ = 0;
  child_->Close();

  result_cols_.assign(schema_.value_cols, {});

  if (!grouped) {
    // One global group (even over zero input rows: count = 0, sum = 0,
    // min/max of an empty input are the accumulator identities).
    std::vector<int64_t> accs(n_aggs);
    for (size_t j = 0; j < n_aggs; ++j) accs[j] = AggAccs::Init(aggs_[j].fn);
    for (size_t j = 0; j < n_aggs; ++j) {
      if (aggs_[j].fn == AggFn::kCount) {
        accs[j] = static_cast<int64_t>(n);
      } else {
        for (value_t v : agg_vals[j]) AggAccs::Update(aggs_[j].fn, &accs[j], v);
      }
    }
    result_rows_ = 1;
    for (size_t j = 0; j < n_aggs; ++j) {
      result_cols_[j].push_back(AggAccs::Final(aggs_[j].fn, accs[j]));
    }
    return;
  }

  RADIX_CHECK(n <= std::numeric_limits<oid_t>::max());

  // Radix-cluster (group value, row) pairs on the hash of the group value:
  // each cluster then holds complete groups, so the per-cluster
  // accumulation needs no cross-thread merge — the same
  // partition-then-work-privately scheme as the partitioned hash join.
  std::vector<cluster::KeyOid> pairs(n);
  for (size_t i = 0; i < n; ++i) {
    pairs[i] = {group_vals[i], static_cast<oid_t>(i)};
  }
  cluster::ClusterSpec spec;
  spec.total_bits = std::min<radix_bits_t>(
      8, SignificantBits(std::max<size_t>(n, 1)));
  spec.ignore_bits = 0;
  spec.passes = std::max(1u, cluster::PassesFor(spec.total_bits, *ctx_->hw));
  auto radix_of = [](const cluster::KeyOid& p) -> uint64_t {
    return HashInt32(static_cast<uint32_t>(p.key));
  };
  std::vector<cluster::KeyOid> scratch(n);
  ThreadPool* pool =
      (ctx_->pool != nullptr && ctx_->pool->num_threads() > 1) ? ctx_->pool
                                                               : nullptr;
  cluster::ClusterBorders borders;
  if (pool != nullptr) {
    borders = cluster::RadixClusterMultiPassParallel(
        pairs.data(), scratch.data(), n, radix_of, spec, *pool);
  } else {
    simcache::NoTracer tracer;
    borders = cluster::RadixClusterMultiPass(pairs.data(), scratch.data(), n,
                                             radix_of, spec, tracer);
  }
  scratch.clear();
  scratch.shrink_to_fit();

  // Per-cluster accumulation; output groups sorted by key within each
  // cluster, clusters in order — deterministic at every thread count.
  const size_t n_clusters = borders.num_clusters();
  std::vector<std::vector<std::vector<value_t>>> cluster_out(n_clusters);
  auto accumulate_cluster = [&](size_t c) {
    std::unordered_map<value_t, size_t> group_of;
    std::vector<value_t> keys;
    std::vector<std::vector<int64_t>> accs(n_aggs);
    for (uint64_t i = borders.start(c); i < borders.end(c); ++i) {
      const value_t key = pairs[i].key;
      const size_t row = pairs[i].oid;
      auto [it, inserted] = group_of.try_emplace(key, keys.size());
      if (inserted) {
        keys.push_back(key);
        for (size_t j = 0; j < n_aggs; ++j) {
          accs[j].push_back(AggAccs::Init(aggs_[j].fn));
        }
      }
      const size_t g = it->second;
      for (size_t j = 0; j < n_aggs; ++j) {
        const value_t v =
            aggs_[j].fn == AggFn::kCount ? 0 : agg_vals[j][row];
        AggAccs::Update(aggs_[j].fn, &accs[j][g], v);
      }
    }
    std::vector<size_t> order(keys.size());
    for (size_t g = 0; g < order.size(); ++g) order[g] = g;
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return keys[a] < keys[b]; });
    std::vector<std::vector<value_t>> cols(schema_.value_cols);
    for (auto& col : cols) col.reserve(keys.size());
    for (size_t g : order) {
      cols[0].push_back(keys[g]);
      for (size_t j = 0; j < n_aggs; ++j) {
        cols[1 + j].push_back(AggAccs::Final(aggs_[j].fn, accs[j][g]));
      }
    }
    cluster_out[c] = std::move(cols);
  };
  if (pool != nullptr) {
    pool->ParallelFor(n_clusters, accumulate_cluster);
  } else {
    for (size_t c = 0; c < n_clusters; ++c) accumulate_cluster(c);
  }

  for (size_t c = 0; c < n_clusters; ++c) {
    for (size_t col = 0; col < schema_.value_cols; ++col) {
      result_cols_[col].insert(result_cols_[col].end(),
                               cluster_out[c][col].begin(),
                               cluster_out[c][col].end());
    }
  }
  result_rows_ = result_cols_[0].size();
}

bool GroupAggregateOp::NextChunk(OpChunk* out) {
  if (!materialized_) Materialize();
  if (pos_ >= result_rows_) return false;
  size_t n = std::min(ctx_->chunk_rows, result_rows_ - pos_);
  out->rows = n;
  out->oid_cols.clear();
  out->val_cols.resize(result_cols_.size());
  for (size_t c = 0; c < result_cols_.size(); ++c) {
    out->val_cols[c] =
        std::span<const value_t>(result_cols_[c].data() + pos_, n);
  }
  out->var_cols.clear();
  pos_ += n;
  return true;
}

void GroupAggregateOp::Close() {
  if (!materialized_) child_->Close();
  result_cols_.clear();
  result_cols_.shrink_to_fit();
}

}  // namespace radix::ops
