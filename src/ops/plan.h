#ifndef RADIX_OPS_PLAN_H_
#define RADIX_OPS_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "ops/table.h"

/// The logical plan the operator layer executes: a small tree of
/// scan/select/join/project/aggregate nodes over a Catalog — what
/// engine::QuerySpec grows into. The fixed two-sided π(A ⋈ B) query of the
/// paper is one particular shape of this tree (TwoSidedPlan); multi-way
/// join chains are left-deep chains of join nodes, each of which the
/// optimizer assigns its own Fig. 10 per-edge strategy.
namespace radix::ops {

enum class NodeKind : uint8_t {
  kScan,       ///< dense oid scan of one catalog table
  kSelect,     ///< predicate filter (value or varchar column)
  kJoin,       ///< key-equality join of two subtrees
  kProject,    ///< final payload materialization (root only)
  kAggregate,  ///< grouped sum/count/min/max (root only)
};

/// A column of one catalog table: attr is the DsmRelation attribute index
/// (0 = key, 1.. = fixed payloads) for value columns, or the index into
/// Table::varchars for varchar columns.
struct ColumnRef {
  size_t table = 0;
  size_t attr = 0;
  bool is_varchar = false;
};

enum class CmpOp : uint8_t { kLt, kLe, kGt, kGe, kEq, kNe };

/// `col OP constant`. Value columns support every CmpOp against `value`;
/// varchar columns support equality/inequality against `str_value`, or a
/// starts-with match when `str_prefix` is set (op must then be kEq/kNe).
struct Predicate {
  ColumnRef col;
  CmpOp op = CmpOp::kLt;
  value_t value = 0;
  std::string str_value;
  bool str_prefix = false;
};

enum class AggFn : uint8_t { kSum, kCount, kMin, kMax };

/// One aggregate output. kCount ignores `col`. Sums and counts accumulate
/// in 64 bits and report their low 32 bits as a value_t (two's complement),
/// a rule the scalar reference interpreter applies identically.
struct AggExpr {
  AggFn fn = AggFn::kCount;
  ColumnRef col;
};

struct PlanNode {
  NodeKind kind = NodeKind::kScan;
  std::vector<std::unique_ptr<PlanNode>> children;
  // kScan
  size_t table = 0;
  // kSelect
  Predicate pred;
  // kJoin: children[0]'s table `left_table` joins children[1]'s table
  // `right_table`, both on their key column (attr 0).
  size_t left_table = 0;
  size_t right_table = 0;
  // kProject
  std::vector<ColumnRef> columns;
  // kAggregate: at most one group-by column (empty = one global row).
  std::vector<ColumnRef> group_by;
  std::vector<AggExpr> aggs;
};

struct LogicalPlan {
  std::unique_ptr<PlanNode> root;
};

/// Builder helpers (free functions so plans read as their shape):
///   Project(Join(Scan(0), Scan(1), 0, 1), {...})
std::unique_ptr<PlanNode> Scan(size_t table);
std::unique_ptr<PlanNode> Select(std::unique_ptr<PlanNode> child,
                                 Predicate pred);
std::unique_ptr<PlanNode> Join(std::unique_ptr<PlanNode> left,
                               std::unique_ptr<PlanNode> right,
                               size_t left_table, size_t right_table);
std::unique_ptr<PlanNode> Project(std::unique_ptr<PlanNode> child,
                                  std::vector<ColumnRef> columns);
std::unique_ptr<PlanNode> Aggregate(std::unique_ptr<PlanNode> child,
                                    std::vector<ColumnRef> group_by,
                                    std::vector<AggExpr> aggs);

/// The compatibility constructor: the legacy two-sided query
/// π(left.a1..a_pi_l, right.b1..b_pi_r) over left ⋈ right as a plan tree,
/// with projected columns in the canonical checksum order (left fixed,
/// right fixed, left varchar, right varchar) so its checksum matches the
/// legacy executors bit for bit.
LogicalPlan TwoSidedPlan(size_t pi_left, size_t pi_right,
                         size_t pi_varchar_left = 0,
                         size_t pi_varchar_right = 0);

/// Structural + payload validation against a catalog. Returns
/// kInvalidArgument — never a debug CHECK — for malformed trees and for
/// unsupported operator/payload combinations (varchar join keys, varchar
/// aggregate inputs or group-by columns, ordered comparisons on varchar
/// predicates, project/aggregate below the root, a table scanned twice).
[[nodiscard]] Status ValidatePlan(const Catalog& catalog,
                                  const LogicalPlan& plan);

/// Deterministic serialization of the full plan shape — every operator
/// kind, column reference, predicate constant, aggregate list and group-by
/// — used by the engine's plan-cache key so distinct trees never alias.
std::string PlanFingerprint(const LogicalPlan& plan);

/// Number of distinct base tables scanned in the subtree (the oid columns
/// a chunk of this subtree carries).
size_t SubtreeTableCount(const PlanNode& node);

}  // namespace radix::ops

#endif  // RADIX_OPS_PLAN_H_
