#include "ops/optimizer.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "cluster/partition_plan.h"
#include "cluster/radix_cluster.h"
#include "common/bits.h"
#include "decluster/window.h"
#include "project/dsm_post.h"
#include "project/planner.h"
#include "project/strategy.h"

namespace radix::ops {

namespace {

using costmodel::CostEstimate;
using project::SideStrategy;

void Accumulate(CostEstimate* into, const CostEstimate& add, double factor) {
  into->misses += add.misses * factor;
  into->seconds += add.seconds * factor;
}

/// Predicate selectivity by strided sampling of the base column: cheap,
/// deterministic, and honest about what a real system would have (a
/// statistic, not the truth). A sample with zero hits still reports a
/// small non-zero fraction — downstream estimates divide by these.
double SampleSelectivity(const Catalog& catalog, const Predicate& pred) {
  const Table& table = catalog.table(pred.col.table);
  const size_t n = table.cardinality();
  if (n == 0) return 0.5;
  constexpr size_t kMaxSamples = 1024;
  const size_t step = std::max<size_t>(1, n / kMaxSamples);
  size_t samples = 0;
  size_t hits = 0;
  if (pred.col.is_varchar) {
    const storage::VarcharColumn& col = *table.varchars[pred.col.attr];
    for (size_t i = 0; i < n; i += step) {
      ++samples;
      std::string_view s = col.at(i);
      bool match;
      if (pred.str_prefix) {
        match = s.size() >= pred.str_value.size() &&
                s.compare(0, pred.str_value.size(), pred.str_value) == 0;
      } else {
        match = s == pred.str_value;
      }
      hits += (pred.op == CmpOp::kNe ? !match : match) ? 1 : 0;
    }
  } else {
    const auto& col = table.relation->attr(pred.col.attr);
    for (size_t i = 0; i < n; i += step) {
      ++samples;
      const value_t v = col[i];
      bool match = false;
      switch (pred.op) {
        case CmpOp::kLt: match = v < pred.value; break;
        case CmpOp::kLe: match = v <= pred.value; break;
        case CmpOp::kGt: match = v > pred.value; break;
        case CmpOp::kGe: match = v >= pred.value; break;
        case CmpOp::kEq: match = v == pred.value; break;
        case CmpOp::kNe: match = v != pred.value; break;
      }
      hits += match ? 1 : 0;
    }
  }
  if (hits == 0) return 0.5 / static_cast<double>(samples);
  return static_cast<double>(hits) / static_cast<double>(samples);
}

struct EstimatorState {
  const Catalog* catalog;
  const hardware::MemoryHierarchy* hw;
  const costmodel::CpuCosts* cpu;
  size_t num_threads;
  PhysicalPlan* out;
};

/// The per-edge cost accounting of the two-sided engine Explain, applied
/// with the edge's estimated cardinalities. Left/right "columns" here are
/// the subtree oid columns the join gathers, all sizeof(oid_t) wide.
void CostEdge(EstimatorState* st, EdgePlan* edge, size_t pi_left,
              size_t pi_right) {
  const hardware::MemoryHierarchy& hw = *st->hw;
  const costmodel::CpuCosts& cpu = *st->cpu;
  PhysicalPlan* out = st->out;
  const size_t nl = edge->est_left_rows;
  const size_t nr = edge->est_right_rows;
  const size_t n_index = edge->est_result_rows;
  const double pi_l = static_cast<double>(std::max<size_t>(1, pi_left));
  const double pi_r = static_cast<double>(std::max<size_t>(1, pi_right));

  const size_t pair_width = sizeof(cluster::KeyOid);
  Accumulate(&out->join_cost,
             costmodel::PartitionedHashJoinCost(
                 hw, cpu, nl, nr, pair_width,
                 cluster::PartitionedJoinBits(nr, pair_width, hw)),
             1.0);

  switch (edge->physical.left) {
    case SideStrategy::kUnsorted:
      Accumulate(&out->projection_cost,
                 costmodel::ClusteredPositionalJoinCost(
                     hw, cpu, n_index, nl, sizeof(oid_t), /*bits=*/0,
                     /*sorted=*/false),
                 pi_l);
      break;
    case SideStrategy::kSorted: {
      radix_bits_t bits = SignificantBits(std::max<size_t>(1, nl));
      Accumulate(&out->cluster_cost,
                 costmodel::RadixClusterCost(hw, cpu, n_index,
                                             sizeof(cluster::OidPair), bits,
                                             cluster::PassesFor(bits, hw)),
                 1.0);
      Accumulate(&out->projection_cost,
                 costmodel::ClusteredPositionalJoinCost(
                     hw, cpu, n_index, nl, sizeof(oid_t), /*bits=*/0,
                     /*sorted=*/true),
                 pi_l);
      break;
    }
    case SideStrategy::kClustered:
    case SideStrategy::kDecluster: {
      cluster::ClusterSpec spec = project::detail::SpecFor(
          SideStrategy::kClustered, n_index, nl, hw,
          edge->physical.left_bits);
      Accumulate(&out->cluster_cost,
                 costmodel::RadixClusterCost(hw, cpu, n_index,
                                             sizeof(cluster::OidPair),
                                             spec.total_bits, spec.passes),
                 1.0);
      Accumulate(&out->projection_cost,
                 costmodel::ClusteredPositionalJoinCost(
                     hw, cpu, n_index, nl, sizeof(oid_t), spec.total_bits,
                     /*sorted=*/false),
                 pi_l);
      break;
    }
  }

  if (edge->physical.right == SideStrategy::kUnsorted) {
    Accumulate(&out->projection_cost,
               costmodel::ClusteredPositionalJoinCost(
                   hw, cpu, n_index, nr, sizeof(oid_t), /*bits=*/0,
                   /*sorted=*/false),
               pi_r);
  } else {
    cluster::ClusterSpec spec = project::detail::SpecFor(
        SideStrategy::kClustered, n_index, nr, hw, edge->physical.right_bits);
    const size_t window = decluster::WindowPolicy::ChooseWindowElems(
        hw, sizeof(oid_t), size_t{1} << spec.total_bits,
        std::max<size_t>(1, n_index));
    Accumulate(&out->cluster_cost,
               costmodel::RadixClusterCost(hw, cpu, n_index, 2 * sizeof(oid_t),
                                           spec.total_bits, spec.passes),
               1.0);
    Accumulate(&out->projection_cost,
               costmodel::ClusteredPositionalJoinCost(
                   hw, cpu, n_index, nr, sizeof(oid_t), spec.total_bits,
                   /*sorted=*/false),
               pi_r);
    Accumulate(&out->decluster_cost,
               costmodel::RadixDeclusterCost(hw, cpu, n_index, sizeof(oid_t),
                                             spec.total_bits, window),
               pi_r);
  }

  // The blocking join's modeled footprint: both drained inputs, the key
  // copies, the join index, and the materialized output oid columns.
  const size_t footprint =
      sizeof(oid_t) * (nl * pi_left + nr * pi_right)     // drained inputs
      + sizeof(value_t) * (nl + nr)                      // gathered keys
      + sizeof(cluster::OidPair) * n_index               // join index
      + sizeof(oid_t) * n_index * (pi_left + pi_right);  // output
  out->modeled_intermediate_bytes =
      std::max(out->modeled_intermediate_bytes, footprint);
}

/// Bottom-up cardinality estimation + per-edge planning. Returns the
/// estimated row count of the subtree and appends join EdgePlans in
/// post-order.
size_t EstimateNode(EstimatorState* st, const PlanNode& node) {
  switch (node.kind) {
    case NodeKind::kScan:
      return st->catalog->table(node.table).cardinality();
    case NodeKind::kSelect: {
      const size_t child = EstimateNode(st, *node.children[0]);
      const double sel = SampleSelectivity(*st->catalog, node.pred);
      return static_cast<size_t>(std::llround(
          std::max(1.0, sel * static_cast<double>(child))));
    }
    case NodeKind::kJoin: {
      const size_t nl = EstimateNode(st, *node.children[0]);
      const size_t nr = EstimateNode(st, *node.children[1]);
      // Key-equality join over dense key domains: the surviving fraction of
      // each side scales the overlap of the two key sets.
      const size_t base_l =
          st->catalog->table(node.left_table).cardinality();
      const size_t base_r =
          st->catalog->table(node.right_table).cardinality();
      const double fl =
          base_l == 0 ? 0.0
                      : std::min(1.0, static_cast<double>(nl) /
                                          static_cast<double>(base_l));
      const double fr =
          base_r == 0 ? 0.0
                      : std::min(1.0, static_cast<double>(nr) /
                                          static_cast<double>(base_r));
      const size_t overlap = std::min(base_l, base_r);
      const size_t est = static_cast<size_t>(std::llround(
          std::max(1.0, fl * fr * static_cast<double>(overlap))));

      const size_t pi_left = SubtreeTableCount(*node.children[0]);
      const size_t pi_right = SubtreeTableCount(*node.children[1]);

      EdgePlan edge;
      edge.left_table = node.left_table;
      edge.right_table = node.right_table;
      edge.est_left_rows = nl;
      edge.est_right_rows = nr;
      edge.est_result_rows = est;

      // Fig. 10 per-edge strategy choice, against the edge's estimates.
      project::Plan plan = project::PlanDsmPost(nl, nr, est, pi_left,
                                                pi_right, *st->hw,
                                                st->num_threads);
      edge.physical.left = plan.options.left;
      edge.physical.right = plan.options.right;
      if (edge.physical.right == SideStrategy::kSorted ||
          edge.physical.right == SideStrategy::kClustered) {
        edge.physical.right = SideStrategy::kDecluster;
      }
      edge.physical.left_bits = plan.options.left_bits;
      edge.physical.right_bits = plan.options.right_bits;
      edge.easy = plan.easy;
      edge.code = project::SideStrategyCode(edge.physical.left);
      edge.code += "/";
      edge.code += project::SideStrategyCode(edge.physical.right);

      CostEdge(st, &edge, pi_left, pi_right);
      st->out->edges.push_back(std::move(edge));
      return est;
    }
    case NodeKind::kProject:
      return EstimateNode(st, *node.children[0]);
    case NodeKind::kAggregate: {
      const size_t child = EstimateNode(st, *node.children[0]);
      // The aggregate drains its input and clusters (key, row) pairs plus
      // the gathered inputs — that footprint competes with the join edges'.
      const size_t n_inputs =
          node.group_by.size() + node.aggs.size();
      const size_t footprint =
          child * (sizeof(cluster::KeyOid) + sizeof(value_t) * n_inputs);
      st->out->modeled_intermediate_bytes =
          std::max(st->out->modeled_intermediate_bytes, footprint);
      // Output rows: bounded by the input; without group statistics assume
      // most keys are distinct for small inputs.
      return node.group_by.empty() ? 1 : child;
    }
  }
  return 0;
}

}  // namespace

std::string PhysicalPlan::Summary() const {
  std::string s;
  for (const EdgePlan& e : edges) {
    if (!s.empty()) s += "; ";
    // Appended term by term: GCC 12's -Wrestrict false-fires on chained
    // operator+ temporaries (same workaround as PR 1's string concats).
    s += "t";
    s += std::to_string(e.left_table);
    s += "*t";
    s += std::to_string(e.right_table);
    s += ": ";
    s += e.code;
    s += " (est ";
    s += std::to_string(e.est_result_rows);
    s += " rows";
    if (e.easy) s += ", easy";
    s += ")";
  }
  if (s.empty()) s = "no joins";
  return s;
}

Status Optimize(const Catalog& catalog, const LogicalPlan& plan,
                const hardware::MemoryHierarchy& hw,
                const costmodel::CpuCosts& cpu, size_t num_threads,
                PhysicalPlan* out) {
  Status valid = ValidatePlan(catalog, plan);
  if (!valid.ok()) return valid;

  *out = PhysicalPlan{};
  EstimatorState st{&catalog, &hw, &cpu, num_threads, out};
  out->est_result_rows = EstimateNode(&st, *plan.root);
  out->modeled_seconds = out->join_cost.seconds + out->cluster_cost.seconds +
                         out->projection_cost.seconds +
                         out->decluster_cost.seconds;
  return Status::OK();
}

}  // namespace radix::ops
