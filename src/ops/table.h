#ifndef RADIX_OPS_TABLE_H_
#define RADIX_OPS_TABLE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/macros.h"
#include "storage/dsm.h"
#include "storage/varchar.h"
#include "workload/chain.h"
#include "workload/generator.h"

namespace radix::ops {

/// A non-owning view of one base table as the operator layer sees it:
/// attr(0) is the join key, attrs 1..num_attrs-1 are fixed payload columns,
/// plus any number of varchar payload columns. The backing storage (a
/// workload, or any DsmRelation the caller built) must outlive the Catalog.
struct Table {
  std::string name;
  const storage::DsmRelation* relation = nullptr;
  std::vector<const storage::VarcharColumn*> varchars;

  size_t cardinality() const { return relation->cardinality(); }
  size_t num_attrs() const { return relation->num_attrs(); }
};

/// The table universe one logical plan resolves against; plans name tables
/// by their index here.
struct Catalog {
  std::vector<Table> tables;

  size_t size() const { return tables.size(); }
  const Table& table(size_t id) const {
    RADIX_DCHECK(id < tables.size());
    return tables[id];
  }
};

/// View a two-sided join workload as a 2-table catalog (table 0 = left /
/// "larger", table 1 = right / "smaller") — the bridge from the legacy
/// QuerySpec world into plan trees.
Catalog CatalogFromJoinWorkload(const workload::JoinWorkload& w);

/// View a join-chain workload as a k-table catalog (table t = chain
/// position t).
Catalog CatalogFromChainWorkload(const workload::ChainWorkload& w);

}  // namespace radix::ops

#endif  // RADIX_OPS_TABLE_H_
