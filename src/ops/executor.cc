#include "ops/executor.h"

#include <memory>
#include <utility>
#include <vector>

#include "common/overflow.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "ops/operator.h"
#include "project/checksum.h"
#include "project/dsm_post.h"

namespace radix::ops {

namespace {

/// Recursive operator-tree construction. Join nodes consume EdgePlans in
/// post-order — the same traversal Optimize() used to emit them.
std::unique_ptr<Operator> BuildOperator(const PlanNode& node,
                                        const PhysicalPlan& physical,
                                        size_t* next_edge) {
  switch (node.kind) {
    case NodeKind::kScan:
      return std::make_unique<ScanOp>(node.table);
    case NodeKind::kSelect:
      return std::make_unique<SelectOp>(
          BuildOperator(*node.children[0], physical, next_edge), node.pred);
    case NodeKind::kJoin: {
      auto left = BuildOperator(*node.children[0], physical, next_edge);
      auto right = BuildOperator(*node.children[1], physical, next_edge);
      RADIX_CHECK(*next_edge < physical.edges.size());
      const EdgePlan& edge = physical.edges[(*next_edge)++];
      RADIX_CHECK(edge.left_table == node.left_table &&
                  edge.right_table == node.right_table);
      return std::make_unique<RadixJoinOp>(std::move(left), std::move(right),
                                           node.left_table, node.right_table,
                                           edge.physical);
    }
    case NodeKind::kProject:
      return std::make_unique<ProjectOp>(
          BuildOperator(*node.children[0], physical, next_edge),
          node.columns);
    case NodeKind::kAggregate:
      return std::make_unique<GroupAggregateOp>(
          BuildOperator(*node.children[0], physical, next_edge),
          node.group_by, node.aggs);
  }
  RADIX_CHECK(false && "unknown plan node kind");
  return nullptr;
}

}  // namespace

Status ExecutePlan(const Catalog& catalog, const LogicalPlan& plan,
                   const PhysicalPlan& physical, const ExecOptions& options,
                   PlanRun* out) {
  RADIX_CHECK(options.hw != nullptr);
  Status valid = ValidatePlan(catalog, plan);
  if (!valid.ok()) return valid;

  ExecContext ctx;
  ctx.catalog = &catalog;
  ctx.hw = options.hw;
  ctx.pool = options.pool;
  ctx.gauge = options.gauge;
  ctx.chunk_rows = options.chunk_rows != 0
                       ? options.chunk_rows
                       : project::DefaultChunkRows(*options.hw);

  size_t next_edge = 0;
  std::unique_ptr<Operator> root = BuildOperator(*plan.root, physical,
                                                 &next_edge);
  RADIX_CHECK(next_edge == physical.edges.size());

  Timer timer;
  timer.Reset();
  root->Open(&ctx);
  PlanRun run;
  run.threads_used =
      options.pool != nullptr ? options.pool->num_threads() : 1;
  OpChunk chunk;
  while (root->NextChunk(&chunk)) {
    ++run.chunks;
    run.result_rows += chunk.rows;
    // Order-independent checksum: one RowDigest per row over the root's
    // output columns (values first, then varchar views), summed — the same
    // construction project::QueryRun uses, so identical result sets give
    // identical checksums whatever the operator or row order.
    for (size_t i = 0; i < chunk.rows; ++i) {
      project::RowDigest digest;
      for (const std::span<const value_t>& col : chunk.val_cols) {
        digest.AddValue(col[i]);
      }
      for (const VarcharChunkCol& col : chunk.var_cols) {
        digest.AddString(col.base->at(col.oids[i]));
      }
      run.checksum = WrapAdd(run.checksum, digest.digest());
    }
  }
  root->Close();
  run.seconds = timer.ElapsedSeconds();
  *out = run;
  return Status::OK();
}

}  // namespace radix::ops
