#include "ops/plan.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/macros.h"

namespace radix::ops {

std::unique_ptr<PlanNode> Scan(size_t table) {
  auto node = std::make_unique<PlanNode>();
  node->kind = NodeKind::kScan;
  node->table = table;
  return node;
}

std::unique_ptr<PlanNode> Select(std::unique_ptr<PlanNode> child,
                                 Predicate pred) {
  auto node = std::make_unique<PlanNode>();
  node->kind = NodeKind::kSelect;
  node->pred = std::move(pred);
  node->children.push_back(std::move(child));
  return node;
}

std::unique_ptr<PlanNode> Join(std::unique_ptr<PlanNode> left,
                               std::unique_ptr<PlanNode> right,
                               size_t left_table, size_t right_table) {
  auto node = std::make_unique<PlanNode>();
  node->kind = NodeKind::kJoin;
  node->left_table = left_table;
  node->right_table = right_table;
  node->children.push_back(std::move(left));
  node->children.push_back(std::move(right));
  return node;
}

std::unique_ptr<PlanNode> Project(std::unique_ptr<PlanNode> child,
                                  std::vector<ColumnRef> columns) {
  auto node = std::make_unique<PlanNode>();
  node->kind = NodeKind::kProject;
  node->columns = std::move(columns);
  node->children.push_back(std::move(child));
  return node;
}

std::unique_ptr<PlanNode> Aggregate(std::unique_ptr<PlanNode> child,
                                    std::vector<ColumnRef> group_by,
                                    std::vector<AggExpr> aggs) {
  auto node = std::make_unique<PlanNode>();
  node->kind = NodeKind::kAggregate;
  node->group_by = std::move(group_by);
  node->aggs = std::move(aggs);
  node->children.push_back(std::move(child));
  return node;
}

LogicalPlan TwoSidedPlan(size_t pi_left, size_t pi_right,
                         size_t pi_varchar_left, size_t pi_varchar_right) {
  std::vector<ColumnRef> cols;
  cols.reserve(pi_left + pi_right + pi_varchar_left + pi_varchar_right);
  // Canonical checksum order: left fixed, right fixed, left varchar, right
  // varchar (project/checksum.h).
  for (size_t a = 0; a < pi_left; ++a) cols.push_back({0, a + 1, false});
  for (size_t a = 0; a < pi_right; ++a) cols.push_back({1, a + 1, false});
  for (size_t c = 0; c < pi_varchar_left; ++c) cols.push_back({0, c, true});
  for (size_t c = 0; c < pi_varchar_right; ++c) cols.push_back({1, c, true});
  LogicalPlan plan;
  plan.root = Project(Join(Scan(0), Scan(1), 0, 1), std::move(cols));
  return plan;
}

size_t SubtreeTableCount(const PlanNode& node) {
  if (node.kind == NodeKind::kScan) return 1;
  size_t n = 0;
  for (const auto& child : node.children) n += SubtreeTableCount(*child);
  return n;
}

namespace {

/// Collect the tables scanned in a subtree, in scan order.
void CollectTables(const PlanNode& node, std::vector<size_t>* out) {
  if (node.kind == NodeKind::kScan) {
    out->push_back(node.table);
    return;
  }
  for (const auto& child : node.children) CollectTables(*child, out);
}

Status CheckColumnRef(const Catalog& catalog, const ColumnRef& ref,
                      const std::vector<size_t>& visible,
                      const char* context) {
  if (std::find(visible.begin(), visible.end(), ref.table) == visible.end()) {
    return Status::InvalidArgument(
        std::string(context) + ": column references table " +
        std::to_string(ref.table) + " which is not scanned in this subtree");
  }
  const Table& t = catalog.table(ref.table);
  if (ref.is_varchar) {
    if (ref.attr >= t.varchars.size()) {
      return Status::InvalidArgument(
          std::string(context) + ": varchar column " +
          std::to_string(ref.attr) + " out of range for table " +
          std::to_string(ref.table) + " (" +
          std::to_string(t.varchars.size()) + " varchar columns)");
    }
  } else if (ref.attr >= t.num_attrs()) {
    return Status::InvalidArgument(
        std::string(context) + ": attribute " + std::to_string(ref.attr) +
        " out of range for table " + std::to_string(ref.table) + " (" +
        std::to_string(t.num_attrs()) + " attributes)");
  }
  return Status::OK();
}

Status ValidateNode(const Catalog& catalog, const PlanNode& node,
                    bool is_root) {
  // Child counts first, so the per-kind checks below can index freely.
  const size_t want_children =
      node.kind == NodeKind::kScan ? 0 : node.kind == NodeKind::kJoin ? 2 : 1;
  if (node.children.size() != want_children) {
    return Status::InvalidArgument("plan node has wrong child count");
  }
  for (const auto& child : node.children) {
    if (child == nullptr) {
      return Status::InvalidArgument("plan node has null child");
    }
  }

  // Children before this node's per-kind checks: CheckColumnRef indexes
  // catalog.table(ref.table) for any table the subtree claims to scan, so
  // an out-of-range scan must be rejected before a column ref naming the
  // same table is looked up (fuzz: plan_tree seed oob_scan_under_project).
  for (const auto& child : node.children) {
    Status st = ValidateNode(catalog, *child, /*is_root=*/false);
    if (!st.ok()) return st;
  }

  switch (node.kind) {
    case NodeKind::kScan:
      if (node.table >= catalog.size()) {
        return Status::InvalidArgument(
            "scan of table " + std::to_string(node.table) +
            " out of range (catalog has " + std::to_string(catalog.size()) +
            " tables)");
      }
      break;

    case NodeKind::kSelect: {
      std::vector<size_t> visible;
      CollectTables(*node.children[0], &visible);
      Status st = CheckColumnRef(catalog, node.pred.col, visible, "select");
      if (!st.ok()) return st;
      if (node.pred.col.is_varchar) {
        if (node.pred.op != CmpOp::kEq && node.pred.op != CmpOp::kNe) {
          return Status::InvalidArgument(
              "select: varchar predicates support only equality/inequality "
              "(and prefix match); ordered comparisons on strings are "
              "unsupported");
        }
      } else if (node.pred.str_prefix || !node.pred.str_value.empty()) {
        return Status::InvalidArgument(
            "select: string constant on a value-column predicate");
      }
      break;
    }

    case NodeKind::kJoin: {
      std::vector<size_t> left_tables, right_tables;
      CollectTables(*node.children[0], &left_tables);
      CollectTables(*node.children[1], &right_tables);
      auto has = [](const std::vector<size_t>& v, size_t t) {
        return std::find(v.begin(), v.end(), t) != v.end();
      };
      if (!has(left_tables, node.left_table)) {
        return Status::InvalidArgument(
            "join: left key table " + std::to_string(node.left_table) +
            " is not scanned in the left subtree");
      }
      if (!has(right_tables, node.right_table)) {
        return Status::InvalidArgument(
            "join: right key table " + std::to_string(node.right_table) +
            " is not scanned in the right subtree");
      }
      break;
    }

    case NodeKind::kProject: {
      if (!is_root) {
        return Status::InvalidArgument(
            "project is only supported at the plan root");
      }
      std::vector<size_t> visible;
      CollectTables(*node.children[0], &visible);
      if (node.columns.empty()) {
        return Status::InvalidArgument("project with no output columns");
      }
      for (const ColumnRef& ref : node.columns) {
        Status st = CheckColumnRef(catalog, ref, visible, "project");
        if (!st.ok()) return st;
      }
      break;
    }

    case NodeKind::kAggregate: {
      if (!is_root) {
        return Status::InvalidArgument(
            "aggregate is only supported at the plan root");
      }
      std::vector<size_t> visible;
      CollectTables(*node.children[0], &visible);
      if (node.group_by.size() > 1) {
        return Status::InvalidArgument(
            "aggregate supports at most one group-by column");
      }
      for (const ColumnRef& ref : node.group_by) {
        if (ref.is_varchar) {
          return Status::InvalidArgument(
              "aggregate: varchar group-by columns are unsupported "
              "(no variable-size grouping keys yet)");
        }
        Status st = CheckColumnRef(catalog, ref, visible, "group-by");
        if (!st.ok()) return st;
      }
      if (node.aggs.empty()) {
        return Status::InvalidArgument("aggregate with no aggregate exprs");
      }
      for (const AggExpr& agg : node.aggs) {
        if (agg.fn == AggFn::kCount) continue;
        if (agg.col.is_varchar) {
          return Status::InvalidArgument(
              "aggregate: varchar aggregate inputs are unsupported "
              "(sum/min/max are defined on value columns)");
        }
        Status st = CheckColumnRef(catalog, agg.col, visible, "aggregate");
        if (!st.ok()) return st;
      }
      break;
    }
  }

  return Status::OK();
}

void FingerprintColumnRef(const ColumnRef& ref, std::string* out) {
  *out += ref.is_varchar ? 'v' : 'a';
  *out += std::to_string(ref.table);
  *out += '.';
  *out += std::to_string(ref.attr);
}

void FingerprintNode(const PlanNode& node, std::string* out) {
  switch (node.kind) {
    case NodeKind::kScan:
      *out += "S(";
      *out += std::to_string(node.table);
      break;
    case NodeKind::kSelect: {
      *out += "F(";
      FingerprintColumnRef(node.pred.col, out);
      *out += " op";
      *out += std::to_string(static_cast<int>(node.pred.op));
      if (node.pred.col.is_varchar) {
        *out += node.pred.str_prefix ? " pfx:" : " str:";
        // Length-prefixed so constants can never splice into neighbours.
        *out += std::to_string(node.pred.str_value.size());
        *out += ':';
        *out += node.pred.str_value;
      } else {
        *out += ' ';
        *out += std::to_string(node.pred.value);
      }
      *out += ';';
      FingerprintNode(*node.children[0], out);
      break;
    }
    case NodeKind::kJoin:
      *out += "J(";
      *out += std::to_string(node.left_table);
      *out += '=';
      *out += std::to_string(node.right_table);
      *out += ';';
      FingerprintNode(*node.children[0], out);
      *out += ';';
      FingerprintNode(*node.children[1], out);
      break;
    case NodeKind::kProject:
      *out += "P(";
      for (const ColumnRef& ref : node.columns) {
        FingerprintColumnRef(ref, out);
        *out += ',';
      }
      *out += ';';
      FingerprintNode(*node.children[0], out);
      break;
    case NodeKind::kAggregate:
      *out += "A(g:";
      for (const ColumnRef& ref : node.group_by) {
        FingerprintColumnRef(ref, out);
        *out += ',';
      }
      for (const AggExpr& agg : node.aggs) {
        *out += " f";
        *out += std::to_string(static_cast<int>(agg.fn));
        if (agg.fn != AggFn::kCount) {
          *out += ':';
          FingerprintColumnRef(agg.col, out);
        }
      }
      *out += ';';
      FingerprintNode(*node.children[0], out);
      break;
  }
  *out += ')';
}

}  // namespace

Status ValidatePlan(const Catalog& catalog, const LogicalPlan& plan) {
  if (plan.root == nullptr) {
    return Status::InvalidArgument("plan has no root node");
  }
  if (plan.root->kind != NodeKind::kProject &&
      plan.root->kind != NodeKind::kAggregate) {
    return Status::InvalidArgument(
        "plan root must be a project or aggregate node (something has to "
        "say which payloads the query returns)");
  }
  // Each base table may appear once: chunk columns are keyed by table id.
  std::vector<size_t> tables;
  CollectTables(*plan.root, &tables);
  std::vector<size_t> sorted = tables;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    return Status::InvalidArgument(
        "self-joins are unsupported: each table may be scanned once");
  }
  return ValidateNode(catalog, *plan.root, /*is_root=*/true);
}

std::string PlanFingerprint(const LogicalPlan& plan) {
  std::string out;
  if (plan.root != nullptr) FingerprintNode(*plan.root, &out);
  return out;
}

}  // namespace radix::ops
