#ifndef RADIX_OPS_OPERATOR_H_
#define RADIX_OPS_OPERATOR_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/types.h"
#include "hardware/memory_hierarchy.h"
#include "ops/plan.h"
#include "ops/table.h"
#include "pipeline/chunk.h"
#include "project/strategy.h"

namespace radix {
class ThreadPool;
namespace pipeline {
class MemoryGauge;
}
}  // namespace radix

namespace radix::ops {

/// What an operator chunk says about itself. Below the root every chunk is
/// late-materialized: it carries one oid column per base table visible in
/// the subtree (`oid_tables[i]` names the table oid column i indexes into)
/// and nothing else. Only the root operator (Project or Aggregate) emits
/// payload columns.
struct Schema {
  std::vector<size_t> oid_tables;
  size_t value_cols = 0;    ///< root only: fixed payload columns per chunk
  size_t varchar_cols = 0;  ///< root only: varchar view columns per chunk

  size_t OidColumnFor(size_t table) const {
    for (size_t i = 0; i < oid_tables.size(); ++i) {
      if (oid_tables[i] == table) return i;
    }
    RADIX_CHECK(false && "table not visible in operator schema");
    return 0;
  }
};

/// A varchar output column of a root Project chunk: late-materialized as
/// (base column, row oids) — consumers call base->at(oids[r]). Gathering
/// the bytes would only copy the heap; the checksum reads through the view.
struct VarcharChunkCol {
  const storage::VarcharColumn* base = nullptr;
  std::span<const oid_t> oids;
};

/// One chunk of operator output. Spans point into the producing operator's
/// arena (or into a blocking operator's materialized result) and are valid
/// only until the next NextChunk call on that operator — chunk-at-a-time
/// consumers must finish with a chunk before pulling the next.
struct OpChunk {
  size_t rows = 0;
  std::vector<std::span<const oid_t>> oid_cols;
  std::vector<std::span<const value_t>> val_cols;
  std::vector<VarcharChunkCol> var_cols;
};

/// Everything an operator tree shares at execution time. `pool` may be
/// nullptr (serial execution); `gauge` may be nullptr (process-wide gauge);
/// `chunk_rows` is the target rows per chunk and must be non-zero.
struct ExecContext {
  const Catalog* catalog = nullptr;
  const hardware::MemoryHierarchy* hw = nullptr;
  ThreadPool* pool = nullptr;
  pipeline::MemoryGauge* gauge = nullptr;
  size_t chunk_rows = 0;
};

/// The chunk-at-a-time operator contract (MonetDB-honest: blocking
/// operators like RadixJoin and GroupAggregate fully materialize their
/// result, then stream it out as chunk views — operator-at-a-time under a
/// pull interface). Lifecycle: Open → NextChunk until it returns false →
/// Close. NextChunk fills `out` and returns true, or returns false at end
/// of stream; after false, further calls keep returning false.
class Operator {
 public:
  virtual ~Operator() = default;

  virtual const Schema& schema() const = 0;
  virtual void Open(ExecContext* ctx) = 0;
  virtual bool NextChunk(OpChunk* out) = 0;
  virtual void Close() = 0;
};

/// Dense oid scan of one catalog table: emits oids [pos, pos + chunk_rows)
/// until the table's cardinality is exhausted.
class ScanOp final : public Operator {
 public:
  explicit ScanOp(size_t table);

  const Schema& schema() const override { return schema_; }
  void Open(ExecContext* ctx) override;
  bool NextChunk(OpChunk* out) override;
  void Close() override;

 private:
  size_t table_;
  Schema schema_;
  ExecContext* ctx_ = nullptr;
  size_t pos_ = 0;
  size_t cardinality_ = 0;
  pipeline::ChunkArena arena_;
};

/// Predicate filter. Evaluates the predicate against the base table column
/// through the child's oid column for the predicate's table, and compacts
/// every oid column of qualifying rows into its own arena. Empty chunks are
/// skipped, not emitted.
class SelectOp final : public Operator {
 public:
  SelectOp(std::unique_ptr<Operator> child, Predicate pred);

  const Schema& schema() const override { return schema_; }
  void Open(ExecContext* ctx) override;
  bool NextChunk(OpChunk* out) override;
  void Close() override;

 private:
  std::unique_ptr<Operator> child_;
  Predicate pred_;
  Schema schema_;
  ExecContext* ctx_ = nullptr;
  size_t pred_col_ = 0;  ///< child oid column the predicate reads through
  pipeline::ChunkArena arena_;
};

/// Per-side physical choices for one join edge, produced by the optimizer
/// from the Fig. 10 cost model. The right side's sorted/clustered
/// strategies are coerced to decluster by the optimizer (s/c order the
/// output by the index side, which a composable operator must not).
struct JoinEdgePhysical {
  project::SideStrategy left = project::SideStrategy::kUnsorted;
  project::SideStrategy right = project::SideStrategy::kUnsorted;
  radix_bits_t left_bits = 0;
  radix_bits_t right_bits = 0;
};

/// Blocking radix join on the key columns (attr 0) of `left_table` and
/// `right_table`. Drains both children, runs the partitioned hash join on
/// gathered keys, post-projects every oid column through the join index
/// using the edge's Fig. 10 strategies (left: optional partial cluster of
/// the index before positional gathers; right: positional join or
/// cluster + positional join + Radix-Decluster), then streams the
/// materialized result as row-chunk views. All kernels involved are
/// byte-identical across thread counts, so is this operator.
class RadixJoinOp final : public Operator {
 public:
  RadixJoinOp(std::unique_ptr<Operator> left, std::unique_ptr<Operator> right,
              size_t left_table, size_t right_table, JoinEdgePhysical physical);

  const Schema& schema() const override { return schema_; }
  void Open(ExecContext* ctx) override;
  bool NextChunk(OpChunk* out) override;
  void Close() override;

  size_t result_rows() const { return result_rows_; }

 private:
  void Materialize();

  std::unique_ptr<Operator> left_;
  std::unique_ptr<Operator> right_;
  size_t left_table_;
  size_t right_table_;
  JoinEdgePhysical physical_;
  Schema schema_;
  ExecContext* ctx_ = nullptr;
  bool materialized_ = false;
  size_t result_rows_ = 0;
  size_t pos_ = 0;
  /// Materialized result: one oid vector per schema column, result order.
  std::vector<std::vector<oid_t>> result_cols_;
};

/// Root payload materialization: gathers each projected value column from
/// its base table through the chunk's oid columns into an arena, and wraps
/// varchar columns as (base, oid-span) views.
class ProjectOp final : public Operator {
 public:
  ProjectOp(std::unique_ptr<Operator> child, std::vector<ColumnRef> columns);

  const Schema& schema() const override { return schema_; }
  void Open(ExecContext* ctx) override;
  bool NextChunk(OpChunk* out) override;
  void Close() override;

 private:
  std::unique_ptr<Operator> child_;
  std::vector<ColumnRef> columns_;
  Schema schema_;
  ExecContext* ctx_ = nullptr;
  pipeline::ChunkArena arena_;
};

/// Blocking grouped aggregation (at most one group-by column). Drains the
/// child, gathers group keys and aggregate inputs through the oids, radix-
/// clusters (group value, row) pairs on the hash of the group value to give
/// every worker private clusters, accumulates per cluster in parallel, and
/// emits groups sorted by key within each cluster, clusters in order —
/// a deterministic output order at every thread count. Sums and counts
/// truncate to the low 32 bits of their 64-bit accumulator.
class GroupAggregateOp final : public Operator {
 public:
  GroupAggregateOp(std::unique_ptr<Operator> child,
                   std::vector<ColumnRef> group_by, std::vector<AggExpr> aggs);

  const Schema& schema() const override { return schema_; }
  void Open(ExecContext* ctx) override;
  bool NextChunk(OpChunk* out) override;
  void Close() override;

 private:
  void Materialize();

  std::unique_ptr<Operator> child_;
  std::vector<ColumnRef> group_by_;
  std::vector<AggExpr> aggs_;
  Schema schema_;
  ExecContext* ctx_ = nullptr;
  bool materialized_ = false;
  size_t pos_ = 0;
  /// Materialized result, column-major: [group key,] one column per agg.
  std::vector<std::vector<value_t>> result_cols_;
  size_t result_rows_ = 0;
};

}  // namespace radix::ops

#endif  // RADIX_OPS_OPERATOR_H_
