#include "costmodel/patterns.h"

#include <algorithm>
#include <cmath>

namespace radix::costmodel {

namespace {

struct LevelView {
  double capacity;  // effective bytes available to this pattern
  double block;     // line or page size
  double entries;   // lines/entries at this level
};

LevelView L1View(const PatternContext& ctx) {
  const auto& c = ctx.hw->l1();
  double cap = static_cast<double>(c.capacity_bytes) * ctx.capacity_share;
  return {cap, static_cast<double>(c.line_bytes),
          cap / static_cast<double>(c.line_bytes)};
}
LevelView L2View(const PatternContext& ctx) {
  const auto& c = ctx.hw->target_cache();
  double cap = static_cast<double>(c.capacity_bytes) * ctx.capacity_share;
  return {cap, static_cast<double>(c.line_bytes),
          cap / static_cast<double>(c.line_bytes)};
}
LevelView TlbView(const PatternContext& ctx) {
  const auto& t = ctx.hw->tlb;
  double cap = static_cast<double>(t.capacity_bytes()) * ctx.capacity_share;
  return {cap, static_cast<double>(t.page_bytes),
          cap / static_cast<double>(t.page_bytes)};
}

double SeqMisses(const LevelView& lv, const Region& r) {
  return r.bytes() / lv.block;
}

double RepeatSeqMisses(const LevelView& lv, double k, const Region& r) {
  if (r.bytes() <= lv.capacity) return SeqMisses(lv, r);
  return k * SeqMisses(lv, r);
}

/// Random traversal: |R| touches, bytes/block distinct blocks. Compulsory
/// misses = distinct blocks; re-touches of an already-seen block miss with
/// the eviction probability 1 - capacity/bytes (clamped).
double RandTravMisses(const LevelView& lv, const Region& r) {
  double blocks = SeqMisses(lv, r);
  double touches = r.tuples;
  double evict_p = std::clamp(1.0 - lv.capacity / std::max(r.bytes(), 1.0),
                              0.0, 1.0);
  double retouches = std::max(0.0, touches - blocks);
  return std::min(touches, blocks) + retouches * evict_p;
}

double RandAccMisses(const LevelView& lv, double k, const Region& r) {
  double blocks = SeqMisses(lv, r);
  double evict_p = std::clamp(1.0 - lv.capacity / std::max(r.bytes(), 1.0),
                              0.0, 1.0);
  double warm = std::min(k, blocks);
  return warm + std::max(0.0, k - warm) * evict_p;
}

/// m concurrent sequential cursors: while m fits the level's entries, pure
/// compulsory misses; beyond that, the surviving fraction of cursor lines
/// shrinks like entries/m and the rest of the touches miss.
double NestMisses(const LevelView& lv, double m, const Region& r) {
  double compulsory = SeqMisses(lv, r);
  if (m <= lv.entries) return compulsory;
  double touches = r.tuples;
  double survive = lv.entries / m;
  return compulsory + std::max(0.0, touches - compulsory) * (1.0 - survive);
}

}  // namespace

MissVector STrav(const PatternContext& ctx, const Region& r) {
  return {SeqMisses(L1View(ctx), r), SeqMisses(L2View(ctx), r),
          SeqMisses(TlbView(ctx), r)};
}

MissVector RsTrav(const PatternContext& ctx, double k, const Region& r) {
  return {RepeatSeqMisses(L1View(ctx), k, r),
          RepeatSeqMisses(L2View(ctx), k, r),
          RepeatSeqMisses(TlbView(ctx), k, r)};
}

MissVector RTrav(const PatternContext& ctx, const Region& r) {
  return {RandTravMisses(L1View(ctx), r), RandTravMisses(L2View(ctx), r),
          RandTravMisses(TlbView(ctx), r)};
}

MissVector RrTrav(const PatternContext& ctx, double k, const Region& r,
                  double stride) {
  // Each of the k traversals touches |R|/k slots with the given stride;
  // across all k traversals every slot is touched once. When the region
  // fits, only compulsory misses remain; otherwise, each traversal's
  // working set competes and the random-traversal estimate applies per
  // traversal's slice amplified by re-fetching the region k times.
  LevelView views[3] = {L1View(ctx), L2View(ctx), TlbView(ctx)};
  MissVector mv;
  double* out[3] = {&mv.l1, &mv.l2, &mv.tlb};
  for (int i = 0; i < 3; ++i) {
    const LevelView& lv = views[i];
    double compulsory = SeqMisses(lv, r);
    if (r.bytes() <= lv.capacity) {
      *out[i] = compulsory;
    } else {
      // Region larger than the level: each traversal strides through the
      // whole region touching |R|/k slots, re-fetching lines every time if
      // the stride exceeds the block size.
      double touches_per_trav = r.tuples / std::max(k, 1.0);
      double lines_per_trav = (stride >= lv.block)
                                  ? touches_per_trav
                                  : touches_per_trav * stride / lv.block;
      *out[i] = std::max(compulsory, k * lines_per_trav);
    }
  }
  return mv;
}

MissVector RAcc(const PatternContext& ctx, double k, const Region& r) {
  return {RandAccMisses(L1View(ctx), k, r), RandAccMisses(L2View(ctx), k, r),
          RandAccMisses(TlbView(ctx), k, r)};
}

MissVector NestSTrav(const PatternContext& ctx, double m, const Region& r) {
  return {NestMisses(L1View(ctx), m, r), NestMisses(L2View(ctx), m, r),
          NestMisses(TlbView(ctx), m, r)};
}

}  // namespace radix::costmodel
