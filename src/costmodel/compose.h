#ifndef RADIX_COSTMODEL_COMPOSE_H_
#define RADIX_COSTMODEL_COMPOSE_H_

#include <functional>
#include <vector>

#include "costmodel/patterns.h"

namespace radix::costmodel {

/// Composition operators of Appendix A: patterns executed one after the
/// other ("⊕", sequential) simply add their misses; patterns executed
/// concurrently ("⊙") share the cache, which the model captures by giving
/// each pattern an effective capacity proportional to its footprint
/// ([MBK02]'s capacity-division composition).
struct WeightedPattern {
  /// Evaluate the pattern under a given capacity share.
  std::function<MissVector(const PatternContext&)> eval;
  /// Footprint in bytes, used to split capacity among concurrent patterns.
  double footprint_bytes = 0;
};

/// Sequential execution: sum of the parts at full capacity.
MissVector Sequential(const hardware::MemoryHierarchy& hw,
                      const std::vector<WeightedPattern>& patterns);

/// Concurrent execution: each pattern sees capacity scaled by its share of
/// the total footprint.
MissVector Concurrent(const hardware::MemoryHierarchy& hw,
                      const std::vector<WeightedPattern>& patterns);

/// Convert predicted misses into seconds using the per-level miss
/// latencies, plus a CPU term: the model's time estimate
///   T = cpu_seconds + Σ_level misses_level · latency_level.
double MissesToSeconds(const hardware::MemoryHierarchy& hw,
                       const MissVector& misses, double cpu_seconds);

}  // namespace radix::costmodel

#endif  // RADIX_COSTMODEL_COMPOSE_H_
