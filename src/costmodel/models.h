#ifndef RADIX_COSTMODEL_MODELS_H_
#define RADIX_COSTMODEL_MODELS_H_

#include <cstddef>

#include "common/types.h"
#include "costmodel/compose.h"
#include "hardware/memory_hierarchy.h"

namespace radix::costmodel {

/// Per-algorithm cost functions built by composing the Appendix-A access
/// patterns; these draw the "modeled" lines of Figs. 7 and 9. Each returns
/// a CostEstimate: predicted misses plus predicted elapsed seconds.
struct CostEstimate {
  MissVector misses;
  double seconds = 0;
};

/// CPU constants (ns per tuple of pure in-cache work). Defaults are rough
/// figures for a modern OoO core; Tune() scales them from a micro-probe so
/// modeled totals land in the measured ballpark on any machine.
struct CpuCosts {
  double cluster_ns_per_tuple = 1.2;   ///< histogram+scatter, per pass
  double hash_build_ns_per_tuple = 2.5;
  double hash_probe_ns_per_tuple = 3.0;
  double pos_join_ns_per_tuple = 0.8;
  double decluster_ns_per_tuple = 1.5;
  double jive_sort_ns_per_tuple = 9.0;  ///< comparison sort within clusters

  static CpuCosts Default() { return {}; }
};

/// radix_cluster(B, P) over N tuples of `width` bytes: per pass,
/// s_trav(input) ⊙ nest(output clusters, 2^Bp).
CostEstimate RadixClusterCost(const hardware::MemoryHierarchy& hw,
                              const CpuCosts& cpu, size_t tuples,
                              size_t width, radix_bits_t total_bits,
                              uint32_t passes);

/// Partitioned Hash-Join of two clustered inputs (2^B cluster pairs),
/// inner cluster + hash table random-traversed, outer sequential. bits==0
/// models the naive unpartitioned join.
CostEstimate PartitionedHashJoinCost(const hardware::MemoryHierarchy& hw,
                                     const CpuCosts& cpu, size_t left_tuples,
                                     size_t right_tuples, size_t tuple_width,
                                     radix_bits_t bits);

/// Positional-Join of an index clustered on `bits` bits into a column of
/// `column_tuples` x `width`: per cluster, random access confined to a
/// column region of size bytes/2^B (bits==0: unclustered random access;
/// fully sorted: pass `sorted=true` for s_trav behaviour).
CostEstimate ClusteredPositionalJoinCost(const hardware::MemoryHierarchy& hw,
                                         const CpuCosts& cpu,
                                         size_t index_tuples,
                                         size_t column_tuples, size_t width,
                                         radix_bits_t bits, bool sorted);

/// Radix-Decluster of N tuples from 2^B clusters with an insertion window
/// of `window_elems` elements of `width` bytes (paper Appendix A):
///   #w windows x [ per-cluster sequential slices ⊙ window rr_trav ]
///   ⊕ rs_trav(#w, cluster borders).
CostEstimate RadixDeclusterCost(const hardware::MemoryHierarchy& hw,
                                const CpuCosts& cpu, size_t tuples,
                                size_t width, radix_bits_t bits,
                                size_t window_elems);

/// Three-phase varchar Radix-Decluster (paper §5 / Fig. 12), the cost of
/// declustering variable-size values that cannot be inserted by position
/// directly. Composes, sequentially (⊕):
///   1. a Radix-Decluster of the 4-byte *lengths* into a positionally
///      addressable array (the extra SIZE_VALUES pass);
///   2. a sequential prefix-sum pass over the lengths producing each
///      tuple's byte position (s_trav read ⊕ s_trav write);
///   3. a Radix-Decluster whose window holds avg_len-byte values — the
///      heap-byte traffic: the sequential source stream and the windowed
///      random writes both scale with avg_len, not sizeof(value_t).
/// This is the "paged-decluster" term the engine's Explain() reports per
/// varchar column of a decluster-side projection.
CostEstimate VarcharRadixDeclusterCost(const hardware::MemoryHierarchy& hw,
                                       const CpuCosts& cpu, size_t tuples,
                                       size_t avg_len, radix_bits_t bits,
                                       size_t window_elems);

/// Streamed (chunked) Radix-Decluster — the pipeline/ execution of the same
/// merge. The per-tuple traversals are unchanged (every value/id is still
/// read sequentially once, every result slot written once into a
/// cache-resident window), so the memory cost equals RadixDeclusterCost;
/// what chunking adds is charged per chunk: one sweep of the chunk's
/// cursor slice (the sparse merge's setup + min-tracking pass) and the
/// task hand-off through the executor ring. With chunk_rows >= N this is
/// RadixDeclusterCost plus a single task's overhead — one formula predicts
/// both variants, which is what lets the planner reason about streaming.
CostEstimate StreamingRadixDeclusterCost(const hardware::MemoryHierarchy& hw,
                                         const CpuCosts& cpu, size_t tuples,
                                         size_t width, radix_bits_t bits,
                                         size_t window_elems,
                                         size_t chunk_rows);

/// Left Jive-Join: merge of the (sorted) join index with the left input
/// (both s_trav) fanning out into 2^B clusters (nest) for both outputs.
CostEstimate LeftJiveJoinCost(const hardware::MemoryHierarchy& hw,
                              const CpuCosts& cpu, size_t index_tuples,
                              size_t left_tuples, size_t width,
                              radix_bits_t bits);

/// Right Jive-Join: per cluster, sort + fetch from a right-table region of
/// bytes/2^B (cacheable if B high enough) + random writes to the result.
CostEstimate RightJiveJoinCost(const hardware::MemoryHierarchy& hw,
                               const CpuCosts& cpu, size_t index_tuples,
                               size_t right_tuples, size_t width,
                               radix_bits_t bits);

}  // namespace radix::costmodel

#endif  // RADIX_COSTMODEL_MODELS_H_
