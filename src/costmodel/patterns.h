#ifndef RADIX_COSTMODEL_PATTERNS_H_
#define RADIX_COSTMODEL_PATTERNS_H_

#include "costmodel/region.h"
#include "hardware/memory_hierarchy.h"

namespace radix::costmodel {

/// The basic access patterns of Appendix A ([MBK02]); each returns the
/// predicted miss vector of executing the pattern once against a cold-to-
/// warm cache, parameterized by the hierarchy. Capacities can be scaled by
/// the concurrent-composition layer (compose.h), which models patterns
/// sharing the cache by shrinking each one's effective capacity.
struct PatternContext {
  const hardware::MemoryHierarchy* hw;
  /// Fraction of each cache level available to this pattern (set by ⊙).
  double capacity_share = 1.0;
};

/// s_trav(R): single sequential traversal — pure compulsory misses.
MissVector STrav(const PatternContext& ctx, const Region& r);

/// rs_trav(k, R): k repeated sequential traversals; levels that hold R pay
/// only the first traversal.
MissVector RsTrav(const PatternContext& ctx, double k, const Region& r);

/// r_trav(R): single random traversal — every tuple touched exactly once,
/// in random order. Compulsory misses plus capacity misses for the
/// re-touched fraction of lines that got evicted.
MissVector RTrav(const PatternContext& ctx, const Region& r);

/// rr_trav(k, R, stride): k interleaved random traversals with the given
/// average stride; the decluster insertion window's write pattern. Total
/// element touches = |R| (each slot once across all k traversals).
MissVector RrTrav(const PatternContext& ctx, double k, const Region& r,
                  double stride);

/// r_acc(k, R): k random accesses (with repetition) into R.
MissVector RAcc(const PatternContext& ctx, double k, const Region& r);

/// nest({Rj}, m, s_trav, ran): m concurrent sequential cursors appending
/// into m sub-regions of total size R, visited in random order — the output
/// side of a Radix-Cluster pass. Thrashes once m exceeds the level's line
/// (or TLB entry) count.
MissVector NestSTrav(const PatternContext& ctx, double m, const Region& r);

}  // namespace radix::costmodel

#endif  // RADIX_COSTMODEL_PATTERNS_H_
