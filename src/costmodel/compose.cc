#include "costmodel/compose.h"

#include <algorithm>

namespace radix::costmodel {

MissVector Sequential(const hardware::MemoryHierarchy& hw,
                      const std::vector<WeightedPattern>& patterns) {
  MissVector total;
  PatternContext ctx{&hw, 1.0};
  for (const auto& p : patterns) total += p.eval(ctx);
  return total;
}

MissVector Concurrent(const hardware::MemoryHierarchy& hw,
                      const std::vector<WeightedPattern>& patterns) {
  double total_footprint = 0;
  for (const auto& p : patterns) total_footprint += p.footprint_bytes;
  MissVector total;
  for (const auto& p : patterns) {
    double share = total_footprint > 0
                       ? std::max(0.05, p.footprint_bytes / total_footprint)
                       : 1.0;
    PatternContext ctx{&hw, share};
    total += p.eval(ctx);
  }
  return total;
}

double MissesToSeconds(const hardware::MemoryHierarchy& hw,
                       const MissVector& misses, double cpu_seconds) {
  double ns = misses.l1 * hw.l1().miss_latency_ns +
              misses.l2 * hw.target_cache().miss_latency_ns +
              misses.tlb * hw.tlb.miss_latency_ns;
  return cpu_seconds + ns * 1e-9;
}

}  // namespace radix::costmodel
