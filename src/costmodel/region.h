#ifndef RADIX_COSTMODEL_REGION_H_
#define RADIX_COSTMODEL_REGION_H_

#include <cstddef>

namespace radix::costmodel {

/// A data region in the sense of the paper's Appendix A / [MBK02]: |R|
/// tuples of width R-bar bytes, accessed by some pattern. All cost formulas
/// are expressed over regions, which keeps them hardware-independent.
struct Region {
  double tuples = 0;  ///< |R|
  double width = 0;   ///< R-bar, bytes per tuple

  double bytes() const { return tuples * width; }

  static Region Of(size_t tuples, size_t width) {
    return {static_cast<double>(tuples), static_cast<double>(width)};
  }
};

/// Predicted cache events, one entry per hierarchy level the model tracks
/// (L1, L2/target cache, TLB) — the quantities plotted in paper Fig. 7a.
struct MissVector {
  double l1 = 0;
  double l2 = 0;
  double tlb = 0;

  MissVector& operator+=(const MissVector& o) {
    l1 += o.l1;
    l2 += o.l2;
    tlb += o.tlb;
    return *this;
  }
  friend MissVector operator+(MissVector a, const MissVector& b) {
    a += b;
    return a;
  }
  MissVector& operator*=(double f) {
    l1 *= f;
    l2 *= f;
    tlb *= f;
    return *this;
  }
  friend MissVector operator*(MissVector a, double f) {
    a *= f;
    return a;
  }
};

}  // namespace radix::costmodel

#endif  // RADIX_COSTMODEL_REGION_H_
