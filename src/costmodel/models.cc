#include "costmodel/models.h"

#include <algorithm>
#include <cmath>

#include "cluster/radix_cluster.h"

namespace radix::costmodel {

namespace {

double Pow2(radix_bits_t b) { return std::ldexp(1.0, static_cast<int>(b)); }

CostEstimate Finish(const hardware::MemoryHierarchy& hw, MissVector mv,
                    double cpu_seconds) {
  CostEstimate est;
  est.misses = mv;
  est.seconds = MissesToSeconds(hw, mv, cpu_seconds);
  return est;
}

}  // namespace

CostEstimate RadixClusterCost(const hardware::MemoryHierarchy& hw,
                              const CpuCosts& cpu, size_t tuples,
                              size_t width, radix_bits_t total_bits,
                              uint32_t passes) {
  // Mirror the kernel's pass structure through ClusterSpec itself so the
  // model cannot drift from RadixClusterMultiPass's bit distribution.
  cluster::ClusterSpec spec{.total_bits = total_bits, .ignore_bits = 0,
                            .passes = std::max<uint32_t>(1, passes)};
  Region data = Region::Of(tuples, width);
  MissVector total;
  for (radix_bits_t bp : spec.PassBits()) {
    if (bp == 0) continue;  // the kernel skips zero-bit passes
    double fanout = Pow2(bp);
    // Per pass: histogram scan (s_trav input) ⊕ scatter
    // (s_trav input ⊙ nest over output clusters).
    std::vector<WeightedPattern> concurrent = {
        {[&](const PatternContext& ctx) { return STrav(ctx, data); },
         data.bytes()},
        {[&, fanout](const PatternContext& ctx) {
           return NestSTrav(ctx, fanout, data);
         },
         data.bytes()},
    };
    total += STrav({&hw, 1.0}, data);        // histogram pass
    total += Concurrent(hw, concurrent);     // scatter pass
  }
  if (spec.EffectivePasses() % 2 == 1) {
    // Odd number of executed passes leaves the result in the scratch
    // buffer; the kernel copies it back: s_trav(read) ⊕ s_trav(write).
    total += STrav({&hw, 1.0}, data);
    total += STrav({&hw, 1.0}, data);
  }
  double cpu_s = cpu.cluster_ns_per_tuple * 1e-9 *
                 static_cast<double>(tuples) * 2.0 * spec.EffectivePasses();
  return Finish(hw, total, cpu_s);
}

CostEstimate PartitionedHashJoinCost(const hardware::MemoryHierarchy& hw,
                                     const CpuCosts& cpu, size_t left_tuples,
                                     size_t right_tuples, size_t tuple_width,
                                     radix_bits_t bits) {
  double clusters = Pow2(bits);
  // Per cluster pair: build = s_trav(inner) ⊙ r_trav(hash table);
  // probe = s_trav(outer) ⊙ r_acc(|outer|, inner + table) ⊙ s_trav(out).
  Region inner = Region::Of(
      std::max<size_t>(1, static_cast<size_t>(right_tuples / clusters)),
      tuple_width);
  // Bucket heads + chain links roughly double the footprint.
  Region table = {inner.tuples, inner.width * 2};
  Region outer = Region::Of(
      std::max<size_t>(1, static_cast<size_t>(left_tuples / clusters)),
      tuple_width);
  Region out = {outer.tuples, sizeof(oid_t) * 2.0};

  std::vector<WeightedPattern> build = {
      {[&](const PatternContext& ctx) { return STrav(ctx, inner); },
       inner.bytes()},
      {[&](const PatternContext& ctx) { return RTrav(ctx, table); },
       table.bytes()},
  };
  Region probe_target = {inner.tuples + table.tuples,
                         (inner.bytes() + table.bytes()) /
                             std::max(1.0, inner.tuples + table.tuples)};
  std::vector<WeightedPattern> probe = {
      {[&](const PatternContext& ctx) { return STrav(ctx, outer); },
       outer.bytes()},
      {[&](const PatternContext& ctx) {
         return RAcc(ctx, outer.tuples, probe_target);
       },
       probe_target.bytes()},
      {[&](const PatternContext& ctx) { return STrav(ctx, out); },
       out.bytes()},
  };
  MissVector per_cluster = Concurrent(hw, build) + Concurrent(hw, probe);
  MissVector total = per_cluster * clusters;
  double cpu_s = 1e-9 * (cpu.hash_build_ns_per_tuple * right_tuples +
                         cpu.hash_probe_ns_per_tuple * left_tuples);
  return Finish(hw, total, cpu_s);
}

CostEstimate ClusteredPositionalJoinCost(const hardware::MemoryHierarchy& hw,
                                         const CpuCosts& cpu,
                                         size_t index_tuples,
                                         size_t column_tuples, size_t width,
                                         radix_bits_t bits, bool sorted) {
  Region ids = Region::Of(index_tuples, sizeof(oid_t));
  Region column = Region::Of(column_tuples, width);
  Region out = Region::Of(index_tuples, width);
  MissVector total;
  if (sorted) {
    std::vector<WeightedPattern> pats = {
        {[&](const PatternContext& ctx) { return STrav(ctx, ids); },
         ids.bytes()},
        {[&](const PatternContext& ctx) { return STrav(ctx, column); },
         column.bytes()},
        {[&](const PatternContext& ctx) { return STrav(ctx, out); },
         out.bytes()},
    };
    total = Concurrent(hw, pats);
  } else {
    double clusters = Pow2(bits);
    Region sub_column = {column.tuples / clusters, column.width};
    Region sub_ids = {ids.tuples / clusters, ids.width};
    Region sub_out = {ids.tuples / clusters, out.width};
    std::vector<WeightedPattern> pats = {
        {[&](const PatternContext& ctx) { return STrav(ctx, sub_ids); },
         sub_ids.bytes()},
        {[&](const PatternContext& ctx) {
           return RAcc(ctx, sub_ids.tuples, sub_column);
         },
         sub_column.bytes()},
        {[&](const PatternContext& ctx) { return STrav(ctx, sub_out); },
         sub_out.bytes()},
    };
    total = Concurrent(hw, pats) * clusters;
  }
  double cpu_s = cpu.pos_join_ns_per_tuple * 1e-9 * index_tuples;
  return Finish(hw, total, cpu_s);
}

CostEstimate RadixDeclusterCost(const hardware::MemoryHierarchy& hw,
                                const CpuCosts& cpu, size_t tuples,
                                size_t width, radix_bits_t bits,
                                size_t window_elems) {
  double clusters = Pow2(bits);
  double windows = std::max(
      1.0, static_cast<double>(tuples) / static_cast<double>(window_elems));
  // Per window: (1/#w)-th of CLUST_VALUES and CLUST_RESULT read
  // sequentially across all clusters ⊙ rr_trav over the window ⊕ one
  // sequential sweep over the cluster-border array.
  Region values_slice = {static_cast<double>(tuples) / windows,
                         static_cast<double>(width)};
  Region result_slice = {static_cast<double>(tuples) / windows,
                         static_cast<double>(sizeof(oid_t))};
  Region window = {static_cast<double>(window_elems),
                   static_cast<double>(width)};
  Region borders = {clusters, 2.0 * sizeof(uint64_t)};

  // The sequential value/result streams only keep a line or two per live
  // cluster resident, so the window effectively owns the cache: evaluate
  // the streams at full capacity and the window at a fixed large share
  // (the Fig. 6 default reserves half the cache for the window).
  PatternContext stream_ctx{&hw, 1.0};
  PatternContext window_ctx{&hw, 0.75};
  MissVector per_window = STrav(stream_ctx, values_slice) +
                          STrav(stream_ctx, result_slice) +
                          RrTrav(window_ctx, clusters, window,
                                 clusters * width);
  MissVector total = per_window * windows;
  total += RsTrav({&hw, 1.0}, windows, borders);
  // Per-cluster startup: each window sweep touches every live cluster's
  // read cursor at least once in both streams (the TLB term of Fig. 7a).
  total.tlb += 2.0 * clusters * windows *
               std::clamp(clusters / static_cast<double>(hw.tlb.entries == 0
                                                             ? 64
                                                             : hw.tlb.entries),
                          0.0, 1.0);
  double cpu_s = cpu.decluster_ns_per_tuple * 1e-9 * tuples +
                 1e-9 * 2.0 * clusters * windows;  // cursor sweep overhead
  return Finish(hw, total, cpu_s);
}

CostEstimate VarcharRadixDeclusterCost(const hardware::MemoryHierarchy& hw,
                                       const CpuCosts& cpu, size_t tuples,
                                       size_t avg_len, radix_bits_t bits,
                                       size_t window_elems) {
  avg_len = std::max<size_t>(1, avg_len);
  // Phase 1: decluster the lengths — a fixed-width decluster of uint32s.
  CostEstimate est = RadixDeclusterCost(hw, cpu, tuples, sizeof(uint32_t),
                                        bits, window_elems);
  // Phase 2: sequential prefix sum — read the length array, write the
  // byte-position array; pure bandwidth plus a cheap add per tuple.
  Region sizes = Region::Of(tuples, sizeof(uint32_t));
  Region positions = Region::Of(tuples, sizeof(uint64_t));
  MissVector prefix = STrav({&hw, 1.0}, sizes) + STrav({&hw, 1.0}, positions);
  est.misses += prefix;
  est.seconds += MissesToSeconds(
      hw, prefix, 0.25e-9 * static_cast<double>(tuples));
  // Phase 3: decluster the value bytes — same merge control flow, but the
  // streams and the insertion window carry avg_len bytes per tuple.
  CostEstimate bytes_pass =
      RadixDeclusterCost(hw, cpu, tuples, avg_len, bits, window_elems);
  est.misses += bytes_pass.misses;
  est.seconds += bytes_pass.seconds;
  return est;
}

CostEstimate StreamingRadixDeclusterCost(const hardware::MemoryHierarchy& hw,
                                         const CpuCosts& cpu, size_t tuples,
                                         size_t width, radix_bits_t bits,
                                         size_t window_elems,
                                         size_t chunk_rows) {
  // Scheduling cost of one chunk through the executor ring (task hand-off
  // and completion signalling); roughly the thread pool's per-task cost.
  constexpr double kChunkOverheadSeconds = 3e-6;
  CostEstimate est =
      RadixDeclusterCost(hw, cpu, tuples, width, bits, window_elems);
  if (chunk_rows == 0 || chunk_rows >= tuples) {
    est.seconds += kChunkOverheadSeconds;
    return est;
  }
  double clusters = Pow2(bits);
  double chunks = std::ceil(static_cast<double>(tuples) /
                            static_cast<double>(chunk_rows));
  double clusters_per_chunk = std::max(1.0, clusters / chunks);
  // Per-chunk traversals on top of the shared memory cost: every chunk
  // sweeps its (cache-resident) cursor slice once more for setup and
  // min-tracking, and pays one ring hand-off. This is what makes
  // chunk_rows = 1 visibly expensive in the model, exactly as it is in the
  // executor (one task per cluster).
  Region borders_slice = {clusters_per_chunk, 2.0 * sizeof(uint64_t)};
  MissVector extra = RsTrav({&hw, 1.0}, 1.0, borders_slice) * chunks;
  est.misses += extra;
  est.seconds += MissesToSeconds(hw, extra, /*cpu_seconds=*/0.0) +
                 kChunkOverheadSeconds * chunks +
                 1e-9 * clusters_per_chunk * chunks;  // cursor-slice setup
  return est;
}

CostEstimate LeftJiveJoinCost(const hardware::MemoryHierarchy& hw,
                              const CpuCosts& cpu, size_t index_tuples,
                              size_t left_tuples, size_t width,
                              radix_bits_t bits) {
  double clusters = Pow2(bits);
  Region index = Region::Of(index_tuples, sizeof(oid_t) * 2);
  Region left = Region::Of(left_tuples, width);
  Region out_left = Region::Of(index_tuples, width);
  Region out_entries = Region::Of(index_tuples, sizeof(oid_t) * 2);
  std::vector<WeightedPattern> pats = {
      {[&](const PatternContext& ctx) { return STrav(ctx, index); },
       index.bytes()},
      {[&](const PatternContext& ctx) { return STrav(ctx, left); },
       left.bytes()},
      {[&](const PatternContext& ctx) { return STrav(ctx, out_left); },
       out_left.bytes()},
      {[&, clusters](const PatternContext& ctx) {
         return NestSTrav(ctx, clusters, out_entries);
       },
       out_entries.bytes()},
  };
  MissVector total = Concurrent(hw, pats);
  double cpu_s = (cpu.pos_join_ns_per_tuple + cpu.cluster_ns_per_tuple) *
                 1e-9 * index_tuples;
  return Finish(hw, total, cpu_s);
}

CostEstimate RightJiveJoinCost(const hardware::MemoryHierarchy& hw,
                               const CpuCosts& cpu, size_t index_tuples,
                               size_t right_tuples, size_t width,
                               radix_bits_t bits) {
  double clusters = Pow2(bits);
  Region entries = Region::Of(index_tuples, sizeof(oid_t) * 2);
  Region right_slice = {static_cast<double>(right_tuples) / clusters,
                        static_cast<double>(width)};
  Region result = Region::Of(index_tuples, width);
  double per_cluster_tuples =
      static_cast<double>(index_tuples) / std::max(1.0, clusters);
  std::vector<WeightedPattern> per_cluster = {
      {[&](const PatternContext& ctx) {
         Region slice = {per_cluster_tuples, sizeof(oid_t) * 2.0};
         return STrav(ctx, slice);
       },
       per_cluster_tuples * sizeof(oid_t) * 2},
      {[&](const PatternContext& ctx) {
         return RAcc(ctx, per_cluster_tuples, right_slice);
       },
       right_slice.bytes()},
      {[&](const PatternContext& ctx) {
         // Writes land at result positions spread over the whole result
         // column: random traversal of the full region, one touch per
         // cluster entry.
         Region writes = {per_cluster_tuples,
                          result.bytes() / std::max(1.0, per_cluster_tuples)};
         return RTrav(ctx, writes);
       },
       result.bytes() / clusters},
  };
  MissVector total = Concurrent(hw, per_cluster) * clusters;
  // Entry sort within each cluster dominates CPU.
  double log_term = std::log2(std::max(2.0, per_cluster_tuples));
  double cpu_s = cpu.jive_sort_ns_per_tuple * 1e-9 * index_tuples *
                     log_term / 16.0 +
                 cpu.pos_join_ns_per_tuple * 1e-9 * index_tuples;
  MissVector borders_sweep = STrav({&hw, 1.0}, entries);
  total += borders_sweep;
  return Finish(hw, total, cpu_s);
}

}  // namespace radix::costmodel
