#ifndef RADIX_COMMON_CLOCK_H_
#define RADIX_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/macros.h"

namespace radix {

/// Injectable time source for schedulers and queue-wait accounting.
/// Production code uses Clock::Steady(); concurrency tests inject a
/// FakeClock so wait-time assertions are exact instead of sleep-based —
/// the deterministic half of the fake-clock scheduler harness.
///
/// Deliberately NOT used by Timer (kernel benchmarking stays on the raw
/// steady clock): Clock meters *scheduling* time — how long a query sat in
/// the admission queue — not kernel time.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual uint64_t NowNanos() const = 0;

  /// Process-wide wall source backed by std::chrono::steady_clock.
  static Clock* Steady();
};

/// Real time.
class SteadyClock final : public Clock {
 public:
  uint64_t NowNanos() const override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

inline Clock* Clock::Steady() {
  static SteadyClock instance;
  return &instance;
}

/// Manually-advanced time for deterministic scheduler tests: time moves
/// only when the test says so, so a recorded queue wait equals exactly the
/// nanoseconds the test advanced while the waiter was parked.
class FakeClock final : public Clock {
 public:
  FakeClock() = default;
  RADIX_DISALLOW_COPY_AND_ASSIGN(FakeClock);

  uint64_t NowNanos() const override {
    return now_nanos_.load(std::memory_order_seq_cst);
  }
  void AdvanceNanos(uint64_t delta) {
    now_nanos_.fetch_add(delta, std::memory_order_seq_cst);
  }
  void AdvanceMillis(uint64_t ms) { AdvanceNanos(ms * 1'000'000ull); }

 private:
  std::atomic<uint64_t> now_nanos_{0};
};

}  // namespace radix

#endif  // RADIX_COMMON_CLOCK_H_
