// AVX-512 (F/BW/DQ/VL/CD) variants of the hot-loop primitives. Compiled
// with -mavx512f -mavx512bw -mavx512dq -mavx512vl -mavx512cd (see
// src/CMakeLists.txt); only reached after cpu_dispatch verified the CPU
// executes all five families. Bit-identical to the scalar reference.

#include "common/simd_kernels.h"

#if defined(__x86_64__) && defined(__AVX512F__) && defined(__AVX512BW__) && \
    defined(__AVX512DQ__) && defined(__AVX512VL__) && defined(__AVX512CD__)

#include <immintrin.h>

#include "common/bits.h"

namespace radix::simd {
namespace {

constexpr size_t kBlock = 64;  // indices extracted per SIMD round

void Avx512RadixHistogram(const uint32_t* values, size_t n, uint32_t shift,
                          uint32_t bits, uint64_t* hist) {
  size_t i = 0;
  if (shift < 32 && n >= kBlock) {
    const uint32_t mask =
        bits >= 32 ? ~uint32_t{0} : ((uint32_t{1} << bits) - 1u);
    const __m512i vmask = _mm512_set1_epi32(static_cast<int>(mask));
    const __m128i vshift = _mm_cvtsi32_si128(static_cast<int>(shift));
    alignas(64) uint32_t idx[kBlock];
    for (; i + kBlock <= n; i += kBlock) {
      for (size_t j = 0; j < kBlock; j += 16) {
        __m512i v = _mm512_loadu_si512(values + i + j);
        v = _mm512_and_si512(_mm512_srl_epi32(v, vshift), vmask);
        _mm512_store_si512(idx + j, v);
      }
      for (size_t j = 0; j < kBlock; ++j) ++hist[idx[j]];
    }
  }
  for (; i < n; ++i) ++hist[RadixBits(values[i], shift, bits)];
}

// Shift v up by `kLanes` 64-bit lanes, filling with zeros from below.
template <int kLanes>
inline __m512i ShiftUpLanes(__m512i v) {
  return _mm512_alignr_epi64(v, _mm512_setzero_si512(), 8 - kLanes);
}

void Avx512PrefixSum(const uint64_t* counts, size_t buckets,
                     uint64_t* cursor) {
  uint64_t running = 0;
  size_t b = 0;
  for (; b + 8 <= buckets; b += 8) {
    __m512i x = _mm512_loadu_si512(counts + b);
    // 8-lane inclusive scan (Hillis-Steele over lane shifts).
    x = _mm512_add_epi64(x, ShiftUpLanes<1>(x));
    x = _mm512_add_epi64(x, ShiftUpLanes<2>(x));
    x = _mm512_add_epi64(x, ShiftUpLanes<4>(x));
    __m512i ex = _mm512_add_epi64(
        ShiftUpLanes<1>(x), _mm512_set1_epi64(static_cast<long long>(running)));
    _mm512_storeu_si512(cursor + b, ex);
    running += static_cast<uint64_t>(
        _mm256_extract_epi64(_mm512_extracti64x4_epi64(x, 1), 3));
  }
  for (; b < buckets; ++b) {
    cursor[b] = running;
    running += counts[b];
  }
  cursor[buckets] = running;
}

void Avx512GatherI32(const uint32_t* ids, size_t n, const int32_t* values,
                     int32_t* out) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512i idx = _mm512_loadu_si512(ids + i);
    __m512i v = _mm512_i32gather_epi32(idx, values, 4);
    _mm512_storeu_si512(out + i, v);
  }
  for (; i < n; ++i) out[i] = values[ids[i]];
}

// Narrow the low (or high) 32-bit halves of eight 64-bit pairs to a
// 256-bit index vector.
template <bool kHigh>
inline __m256i PairLanes8(const uint64_t* pairs) {
  __m512i p = _mm512_loadu_si512(pairs);
  if (kHigh) p = _mm512_srli_epi64(p, 32);
  return _mm512_cvtepi64_epi32(p);
}

template <bool kHigh>
void Avx512GatherPairsI32(const uint64_t* pairs, size_t n,
                          const int32_t* values, int32_t* out) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m256i lo = PairLanes8<kHigh>(pairs + i);
    __m256i hi = PairLanes8<kHigh>(pairs + i + 8);
    __m512i idx =
        _mm512_inserti64x4(_mm512_castsi256_si512(lo), hi, 1);
    __m512i v = _mm512_i32gather_epi32(idx, values, 4);
    _mm512_storeu_si512(out + i, v);
  }
  for (; i < n; ++i) {
    const uint32_t id =
        kHigh ? static_cast<uint32_t>(pairs[i] >> 32)
              : static_cast<uint32_t>(pairs[i]);
    out[i] = values[id];
  }
}

const KernelTable kAvx512Table = {
    /*isa=*/cpu::Isa::kAvx512,
    /*radix_histogram=*/&Avx512RadixHistogram,
    /*prefix_sum=*/&Avx512PrefixSum,
    /*gather_i32=*/&Avx512GatherI32,
    /*gather_pairs_lo_i32=*/&Avx512GatherPairsI32<false>,
    /*gather_pairs_hi_i32=*/&Avx512GatherPairsI32<true>,
    /*nt_scatter=*/true,
};

}  // namespace

namespace detail {
const KernelTable* Avx512Kernels() { return &kAvx512Table; }
}  // namespace detail

}  // namespace radix::simd

#else  // build lacks AVX-512 support

namespace radix::simd::detail {
const KernelTable* Avx512Kernels() { return nullptr; }
}  // namespace radix::simd::detail

#endif
