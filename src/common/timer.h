#ifndef RADIX_COMMON_TIMER_H_
#define RADIX_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace radix {

/// Monotonic wall-clock timer used by the benchmark harness.
class Timer {
 public:
  Timer() { Reset(); }

  void Reset() { start_ = Clock::now(); }

  /// Seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across multiple start/stop intervals; used to break a
/// strategy's total cost into phases (cluster / positional join / decluster)
/// as in paper Fig. 7b.
class PhaseTimer {
 public:
  void Start() { timer_.Reset(); }
  void Stop() { total_seconds_ += timer_.ElapsedSeconds(); }
  double TotalSeconds() const { return total_seconds_; }
  double TotalMillis() const { return total_seconds_ * 1e3; }
  void Clear() { total_seconds_ = 0; }

 private:
  Timer timer_;
  double total_seconds_ = 0;
};

}  // namespace radix

#endif  // RADIX_COMMON_TIMER_H_
