#ifndef RADIX_COMMON_RNG_H_
#define RADIX_COMMON_RNG_H_

#include <cstdint>

#include "common/overflow.h"

namespace radix {

/// Deterministic, fast PRNG (xoshiro256**). Workload generation must be
/// reproducible across runs so that modeled-vs-measured comparisons and
/// tests see identical data; std::mt19937 is avoided in hot paths.
class Rng {
 public:
  // no-sanitize reason: SplitMix64 seeding scrambles state via wrapping
  // add/multiply of large odd constants.
  RADIX_NO_SANITIZE_INTEGER explicit Rng(
      uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ULL;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  // no-sanitize reason: xoshiro256**'s scrambler multiplies state by 5 and
  // 9 mod 2^64; wrap is the algorithm.
  RADIX_NO_SANITIZE_INTEGER uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  uint64_t Below(uint64_t bound) {
    if (bound == 0) return 0;
    unsigned __int128 m = static_cast<unsigned __int128>(Next()) * bound;
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace radix

#endif  // RADIX_COMMON_RNG_H_
