#ifndef RADIX_COMMON_STATUS_H_
#define RADIX_COMMON_STATUS_H_

#include <string>
#include <utility>

#include "common/macros.h"

namespace radix {

/// Error handling in the RocksDB/Arrow style: no exceptions; fallible
/// operations return Status (or Result<T> below). Hot kernels never return
/// Status — argument validation happens at the API boundary.
///
/// The class itself is [[nodiscard]]: any function returning Status by
/// value makes silently dropping the result a compile error (under
/// -Werror), so a caller must either branch on it or explicitly
/// (void)-cast away a deliberate ignore.
class [[nodiscard]] Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kInvalidArgument = 1,
    kOutOfRange = 2,
    kFailedPrecondition = 3,
    kResourceExhausted = 4,
    kInternal = 5,
    kNotFound = 6,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "<CODE>: <message>" string; "OK" for success.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Either a value or an error Status. Accessing the value of an errored
/// Result is a fatal programmer error (RADIX_CHECK). [[nodiscard]] like
/// Status: a dropped Result hides both the error and the value.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}        // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    RADIX_CHECK(!status_.ok());
  }

  [[nodiscard]] bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() {
    RADIX_CHECK(ok());
    return value_;
  }
  const T& value() const {
    RADIX_CHECK(ok());
    return value_;
  }
  T take() {
    RADIX_CHECK(ok());
    return std::move(value_);
  }

 private:
  T value_{};
  Status status_;
};

}  // namespace radix

#endif  // RADIX_COMMON_STATUS_H_
