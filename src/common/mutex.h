#ifndef RADIX_COMMON_MUTEX_H_
#define RADIX_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/macros.h"
#include "common/thread_annotations.h"

namespace radix {

/// The repo's lockable capability: a std::mutex the Clang Thread Safety
/// Analysis can see. Every mutex in the tree is one of these (raw
/// std::mutex is banned outside common/ by scripts/radix_lint.py), so
/// RADIX_GUARDED_BY fields and RADIX_REQUIRES helpers are checked on every
/// Clang build with -DRADIX_THREAD_SAFETY=ON.
///
/// Prefer MutexLock (RAII) over manual Lock()/Unlock(): the analysis then
/// proves balance on every path, including early returns and exceptions.
class RADIX_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  RADIX_DISALLOW_COPY_AND_ASSIGN(Mutex);

  void Lock() RADIX_ACQUIRE() { mu_.lock(); }
  void Unlock() RADIX_RELEASE() { mu_.unlock(); }
  bool TryLock() RADIX_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// Scoped lock over a Mutex. Holds a std::unique_lock underneath so
/// CondVar::Wait can release/reacquire it; from the analysis' point of
/// view the mutex is held for the whole MutexLock scope (which is exactly
/// the guarantee wait() gives at every observable point: on entry and on
/// every return, including spurious wakeups).
class RADIX_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RADIX_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() RADIX_RELEASE() {}  // unique_lock unlocks
  RADIX_DISALLOW_COPY_AND_ASSIGN(MutexLock);

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with Mutex/MutexLock. Deliberately has no
/// predicate overload: waits are written as explicit
/// `while (!pred) cv.Wait(lock);` loops so the predicate's guarded reads
/// are visibly under the lock for the thread-safety analysis (a lambda
/// predicate would be analyzed as an unannotated separate function).
///
/// Discipline (enforced by scripts/radix_lint.py): Notify* is called while
/// holding the mutex that guards the predicate state. Notifying under the
/// lock costs one extra wake/block handoff but makes destruction safe: a
/// waiter that observes its predicate and destroys the CondVar's owner
/// cannot race a notifier that already unlocked but has not yet signalled
/// (the TSan-caught executor destroy race of PR 3).
class CondVar {
 public:
  CondVar() = default;
  RADIX_DISALLOW_COPY_AND_ASSIGN(CondVar);

  /// Atomically release `lock`'s mutex and sleep; reacquired on return.
  /// Spurious wakeups happen — always wait in a predicate loop. The caller
  /// must hold the lock (checked in debug builds).
  void Wait(MutexLock& lock) {
    RADIX_DCHECK(lock.lock_.owns_lock());
    cv_.wait(lock.lock_);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace radix

#endif  // RADIX_COMMON_MUTEX_H_
