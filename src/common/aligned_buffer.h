#ifndef RADIX_COMMON_ALIGNED_BUFFER_H_
#define RADIX_COMMON_ALIGNED_BUFFER_H_

#include <cstddef>
#include <cstdint>

#include "common/macros.h"

namespace radix {

/// Cache-line / page aligned raw memory. Columns and cluster buffers are
/// allocated through this so that (a) sequential kernels see aligned
/// streams and (b) the cache simulator's address arithmetic matches what
/// real hardware would see.
class AlignedBuffer {
 public:
  static constexpr size_t kDefaultAlignment = 64;  // common cache-line size

  AlignedBuffer() = default;
  AlignedBuffer(size_t bytes, size_t alignment = kDefaultAlignment);
  ~AlignedBuffer();

  AlignedBuffer(AlignedBuffer&& other) noexcept;
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept;
  RADIX_DISALLOW_COPY_AND_ASSIGN(AlignedBuffer);

  /// (Re)allocate to hold `bytes`; contents are not preserved.
  void Resize(size_t bytes, size_t alignment = kDefaultAlignment);

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

  template <typename T>
  T* As() {
    return reinterpret_cast<T*>(data_);
  }
  template <typename T>
  const T* As() const {
    return reinterpret_cast<const T*>(data_);
  }

 private:
  void Free();

  uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace radix

#endif  // RADIX_COMMON_ALIGNED_BUFFER_H_
