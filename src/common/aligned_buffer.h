#ifndef RADIX_COMMON_ALIGNED_BUFFER_H_
#define RADIX_COMMON_ALIGNED_BUFFER_H_

#include <cstddef>
#include <cstdint>

#include "common/macros.h"

namespace radix {

/// How large allocations get their virtual memory (RADIX_HUGE_PAGES env):
///   "off"      — plain aligned_alloc, always.
///   "auto"     — (default) buffers >= kHugePageBytes are mmap'd at 2 MiB
///                alignment and advised MADV_HUGEPAGE, so the kernel can
///                back the radix buffers with transparent huge pages. One
///                2 MiB page covers 512 base-page TLB entries — the §2.1
///                TLB wall moves out by that factor without touching the
///                partition plan.
///   "hugetlb"  — try explicitly-reserved MAP_HUGETLB pages first (needs
///                /proc/sys/vm/nr_hugepages), falling back to "auto"
///                behaviour, then to plain allocation.
enum class HugePagePolicy { kOff, kAuto, kHugetlb };

/// Parse a RADIX_HUGE_PAGES value. nullptr (unset) and unrecognized values
/// mean kAuto; "off"/"0" disable; "hugetlb" requests reserved pages.
/// Pure — exposed for tests.
HugePagePolicy ParseHugePagePolicy(const char* value);

/// The process-wide policy, latched from RADIX_HUGE_PAGES on first use.
HugePagePolicy ActiveHugePagePolicy();

/// Size (and alignment) of an x86-64 2 MiB huge page; buffers at least
/// this large are eligible for huge-page backing.
inline constexpr size_t kHugePageBytes = size_t{2} << 20;

/// Cache-line / page aligned raw memory. Columns and cluster buffers are
/// allocated through this so that (a) sequential kernels see aligned
/// streams and (b) the cache simulator's address arithmetic matches what
/// real hardware would see. Large buffers are huge-page backed per
/// ActiveHugePagePolicy().
class AlignedBuffer {
 public:
  static constexpr size_t kDefaultAlignment = 64;  // common cache-line size

  AlignedBuffer() = default;
  AlignedBuffer(size_t bytes, size_t alignment = kDefaultAlignment);
  ~AlignedBuffer();

  AlignedBuffer(AlignedBuffer&& other) noexcept;
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept;
  RADIX_DISALLOW_COPY_AND_ASSIGN(AlignedBuffer);

  /// (Re)allocate to hold `bytes`; contents are not preserved.
  void Resize(size_t bytes, size_t alignment = kDefaultAlignment);

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

  /// Whether this buffer's memory came from the huge-page (mmap) path.
  /// Observability + tests; kernels never branch on it.
  bool huge_backed() const { return map_len_ != 0; }

  template <typename T>
  T* As() {
    return reinterpret_cast<T*>(data_);
  }
  template <typename T>
  const T* As() const {
    return reinterpret_cast<const T*>(data_);
  }

 private:
  void Free();

  uint8_t* data_ = nullptr;
  size_t size_ = 0;
  size_t map_len_ = 0;  ///< mmap'd length; 0 = aligned_alloc backing
};

}  // namespace radix

#endif  // RADIX_COMMON_ALIGNED_BUFFER_H_
