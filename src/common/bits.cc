#include "common/bits.h"

// All of bits.h is inline; this translation unit exists so the header is
// compiled stand-alone at least once (self-containedness check).
