#ifndef RADIX_COMMON_THREAD_ANNOTATIONS_H_
#define RADIX_COMMON_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis annotations (no-ops on every other
/// compiler). Applied across all the repo's mutex-bearing classes so a
/// Clang build with -DRADIX_THREAD_SAFETY=ON (-Wthread-safety
/// -Werror=thread-safety) proves, at compile time and on every path —
/// including ones no test interleaving reaches — that:
///
///  * fields marked RADIX_GUARDED_BY(mu) are only touched with mu held,
///  * functions marked RADIX_REQUIRES(mu) are only called with mu held
///    (the `*Locked()` helper convention),
///  * acquire/release pairs balance on every control-flow path.
///
/// Use them through common::Mutex / MutexLock / CondVar (common/mutex.h),
/// never on raw std primitives: the analysis only sees annotated types,
/// and scripts/radix_lint.py bans raw std::mutex outside common/ for
/// exactly that reason.
///
/// Naming follows the Clang documentation's canonical macro set
/// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) with a RADIX_
/// prefix.

#if defined(__clang__) && !defined(SWIG)
#define RADIX_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define RADIX_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op off Clang
#endif

/// Marks a class as a lockable capability (e.g. common::Mutex).
#define RADIX_CAPABILITY(x) \
  RADIX_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability (e.g. common::MutexLock).
#define RADIX_SCOPED_CAPABILITY \
  RADIX_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Field/variable may only be accessed while holding the given capability.
#define RADIX_GUARDED_BY(x) \
  RADIX_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer field: the *pointee* may only be accessed while holding the
/// given capability (the pointer itself is unguarded).
#define RADIX_PT_GUARDED_BY(x) \
  RADIX_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Documents (and checks) lock acquisition order between two mutexes.
#define RADIX_ACQUIRED_BEFORE(...) \
  RADIX_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define RADIX_ACQUIRED_AFTER(...) \
  RADIX_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// The function may only be called while holding the given capabilities
/// (the repo's `*Locked()` helper convention).
#define RADIX_REQUIRES(...) \
  RADIX_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define RADIX_REQUIRES_SHARED(...) \
  RADIX_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define RADIX_ACQUIRE(...) \
  RADIX_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define RADIX_ACQUIRE_SHARED(...) \
  RADIX_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

/// The function releases the capability (held on entry).
#define RADIX_RELEASE(...) \
  RADIX_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define RADIX_RELEASE_SHARED(...) \
  RADIX_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns the given value.
#define RADIX_TRY_ACQUIRE(...) \
  RADIX_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// The function must NOT be called while holding the given capability
/// (deadlock prevention for self-locking entry points).
#define RADIX_EXCLUDES(...) \
  RADIX_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (tells the analysis so).
#define RADIX_ASSERT_CAPABILITY(x) \
  RADIX_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

/// The function returns a reference to the given capability.
#define RADIX_RETURN_CAPABILITY(x) \
  RADIX_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Policy: only
/// thread_pool.cc internals may use this, each use carrying a one-line
/// justification (enforced by scripts/radix_lint.py).
#define RADIX_NO_THREAD_SAFETY_ANALYSIS \
  RADIX_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // RADIX_COMMON_THREAD_ANNOTATIONS_H_
