#ifndef RADIX_COMMON_THREAD_POOL_H_
#define RADIX_COMMON_THREAD_POOL_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace radix {

/// Fixed-size worker pool with a two-level FIFO task queue, built for the
/// parallel radix kernels *and* for many concurrent queries sharing one
/// pool: the unit of work is a bounded grain (one cluster, one window range,
/// one streamed chunk stage), and threads pull grains off the shared queue
/// so skewed grain sizes self-balance and no query can monopolise a worker
/// for longer than one grain.
///
/// A pool of size 1 spawns no threads at all: every task and ParallelFor
/// body runs inline on the calling thread, in submission/index order. This
/// makes `num_threads == 1` exactly the serial code path (same instruction
/// stream, tracer-safe), which is what lets the property tests assert the
/// parallel kernels bit-identical against it.
///
/// Concurrency contract (the morsel scheduler underneath engine::Engine):
///  * Submit / ParallelFor / TryRunOneTask may be called from any number of
///    threads concurrently.
///  * ParallelFor is a per-call completion group: it returns when *its own*
///    n bodies finished, regardless of what other callers queued — under
///    concurrent queries the old pool-wide Wait() could block forever.
///  * Each queued ParallelFor grain runs exactly one body index and then
///    re-enqueues itself, yielding the FIFO queue between grains, so grains
///    of concurrent queries interleave instead of one 8M-row phase draining
///    to completion first.
///  * The calling thread always participates in its own ParallelFor by
///    claiming indices directly; a query therefore completes even when
///    every worker is busy with other queries (no starvation of admitted
///    work).
class ThreadPool {
 public:
  /// Scheduling class of a task. kHigh drains ahead of kNormal, so
  /// point-ish queries overtake the queued grains of heavy queries at every
  /// grain boundary (they never preempt a *running* grain — grains are
  /// bounded instead). Not strict: every kAgingPeriod-th dequeue serves the
  /// lowest non-empty class first, bounding starvation — a sustained kHigh
  /// stream still leaves kNormal grains >= 1/kAgingPeriod of the dequeue
  /// bandwidth (heavy queries additionally progress on their own calling
  /// thread regardless of queue pressure).
  enum class Priority : uint8_t { kHigh = 0, kNormal = 1 };
  static constexpr size_t kNumPriorities = 2;

  /// Spawns `num_threads - 1` workers (the calling thread is the remaining
  /// participant in ParallelFor). num_threads == 0 is clamped to 1.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  RADIX_DISALLOW_COPY_AND_ASSIGN(ThreadPool);

  size_t num_threads() const { return workers_.size() + 1; }

  /// Enqueue one task at the calling thread's ambient priority (see
  /// ScopedPriority). Tasks may run on any worker (or on the calling thread
  /// for a size-1 pool, in which case Submit runs it inline).
  void Submit(std::function<void()> task) RADIX_EXCLUDES(mu_);

  /// Enqueue one task at an explicit priority.
  void Submit(Priority priority, std::function<void()> task)
      RADIX_EXCLUDES(mu_);

  /// Block until every task submitted so far — by anyone — has finished.
  /// Pool-wide; prefer ParallelFor's built-in per-call completion under
  /// concurrent queries.
  void Wait() RADIX_EXCLUDES(mu_);

  /// Pop and run one queued task (highest priority first) on the calling
  /// thread, if any; returns whether a task ran. Lets a coordinator thread
  /// that is otherwise blocked waiting on Submit-driven work (e.g. the
  /// streaming executor's ring) contribute instead of idling, so all
  /// num_threads participate.
  bool TryRunOneTask() RADIX_EXCLUDES(mu_);

  /// Run body(i) for every i in [0, n). Work items are claimed dynamically
  /// off a shared counter (a work queue over indices), so uneven item costs
  /// — e.g. skewed cluster sizes — balance across threads. The calling
  /// thread participates. Blocks until all n items are done — and only
  /// this call's items: concurrent ParallelFor calls from other threads
  /// each track their own completion.
  ///
  /// Not reentrant: do not call ParallelFor (or Submit+Wait) from inside a
  /// body running on this pool.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body)
      RADIX_EXCLUDES(mu_);

  /// The ambient priority of the calling thread: what Submit(task) and
  /// ParallelFor enqueue at. Defaults to kNormal; set with ScopedPriority.
  /// Worker threads inherit the priority of the task they are running, so
  /// chained submissions (a gather task enqueueing its sink) stay in the
  /// query's class.
  static Priority CurrentPriority();

  /// RAII ambient-priority override for the calling thread. The engine
  /// wraps a query's execution in one of these; every grain the query's
  /// kernels enqueue then carries the query's class without threading a
  /// priority argument through every kernel signature.
  class ScopedPriority {
   public:
    explicit ScopedPriority(Priority priority);
    ~ScopedPriority();
    RADIX_DISALLOW_COPY_AND_ASSIGN(ScopedPriority);

   private:
    Priority previous_;
  };

  /// Default parallelism for callers that pass num_threads == 0: the
  /// hardware concurrency, or 1 when it cannot be determined.
  static size_t DefaultThreads();

  /// Process-wide count of ThreadPool objects ever constructed. Lets tests
  /// assert that a steady-state query path spawns no pools (the engine's
  /// zero-constructions-per-query contract); not a liveness count.
  static uint64_t TotalConstructed();

 private:
  struct Task {
    std::function<void()> fn;
    Priority priority = Priority::kNormal;
  };

  /// One dequeue in kAgingPeriod inverts the priority scan (see Priority).
  static constexpr uint64_t kAgingPeriod = 8;

  void WorkerLoop() RADIX_EXCLUDES(mu_);
  /// Run one task with the worker's ambient priority set to the task's.
  static void RunTask(Task& task);
  /// Pop the front task, highest priority first with aging.
  bool PopTaskLocked(Task* task) RADIX_REQUIRES(mu_);
  bool QueuesEmptyLocked() const RADIX_REQUIRES(mu_) {
    return queues_[0].empty() && queues_[1].empty();
  }

  /// Immutable after construction (the ctor spawns, the dtor joins);
  /// deliberately not guarded.
  std::vector<std::thread> workers_;

  /// mu_ guards every field below. It is a leaf lock: no thread ever
  /// acquires another radix mutex while holding it (see
  /// docs/CONCURRENCY.md), and per-call ParallelFor group mutexes are
  /// never held across Submit.
  Mutex mu_;
  CondVar work_cv_;  ///< signalled (under mu_) when tasks arrive / stop
  CondVar idle_cv_;  ///< signalled (under mu_) when a task completes
  std::array<std::deque<Task>, kNumPriorities> queues_ RADIX_GUARDED_BY(mu_);
  /// Dequeues so far, drives priority aging.
  uint64_t pop_ticks_ RADIX_GUARDED_BY(mu_) = 0;
  /// Queued + currently running tasks.
  size_t in_flight_ RADIX_GUARDED_BY(mu_) = 0;
  bool stop_ RADIX_GUARDED_BY(mu_) = false;
};

}  // namespace radix

#endif  // RADIX_COMMON_THREAD_POOL_H_
