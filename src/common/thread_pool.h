#ifndef RADIX_COMMON_THREAD_POOL_H_
#define RADIX_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/macros.h"

namespace radix {

/// Fixed-size worker pool with a FIFO task queue, built for the parallel
/// radix kernels: the unit of work is a cluster (or a window range of the
/// result), and threads pull work items off a shared queue so skewed
/// cluster sizes self-balance.
///
/// A pool of size 1 spawns no threads at all: every task and ParallelFor
/// body runs inline on the calling thread, in submission/index order. This
/// makes `num_threads == 1` exactly the serial code path (same instruction
/// stream, tracer-safe), which is what lets the property tests assert the
/// parallel kernels bit-identical against it.
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the calling thread is the remaining
  /// participant in ParallelFor). num_threads == 0 is clamped to 1.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  RADIX_DISALLOW_COPY_AND_ASSIGN(ThreadPool);

  size_t num_threads() const { return workers_.size() + 1; }

  /// Enqueue one task. Tasks may run on any worker (or on the calling
  /// thread for a size-1 pool, in which case Submit runs it inline).
  void Submit(std::function<void()> task);

  /// Block until every task submitted so far has finished.
  void Wait();

  /// Pop and run one queued task on the calling thread, if any; returns
  /// whether a task ran. Lets a coordinator thread that is otherwise
  /// blocked waiting on Submit-driven work (e.g. the streaming executor's
  /// ring) contribute instead of idling, so all num_threads participate.
  bool TryRunOneTask();

  /// Run body(i) for every i in [0, n). Work items are claimed dynamically
  /// off a shared counter (a work queue over indices), so uneven item costs
  /// — e.g. skewed cluster sizes — balance across threads. The calling
  /// thread participates. Blocks until all n items are done.
  ///
  /// Not reentrant: do not call ParallelFor (or Submit+Wait) from inside a
  /// body running on this pool.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// Default parallelism for callers that pass num_threads == 0: the
  /// hardware concurrency, or 1 when it cannot be determined.
  static size_t DefaultThreads();

  /// Process-wide count of ThreadPool objects ever constructed. Lets tests
  /// assert that a steady-state query path spawns no pools (the engine's
  /// zero-constructions-per-query contract); not a liveness count.
  static uint64_t TotalConstructed();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;   ///< signalled when tasks arrive / stop
  std::condition_variable idle_cv_;   ///< signalled when a task completes
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  ///< queued + currently running tasks
  bool stop_ = false;
};

}  // namespace radix

#endif  // RADIX_COMMON_THREAD_POOL_H_
