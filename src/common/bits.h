#ifndef RADIX_COMMON_BITS_H_
#define RADIX_COMMON_BITS_H_

#include <bit>
#include <cstdint>

namespace radix {

/// floor(log2(x)) for x > 0.
inline uint32_t Log2Floor(uint64_t x) {
  return 63u - static_cast<uint32_t>(std::countl_zero(x | 1));
}

/// ceil(log2(x)) for x > 0; Log2Ceil(1) == 0.
inline uint32_t Log2Ceil(uint64_t x) {
  if (x <= 1) return 0;
  return Log2Floor(x - 1) + 1;
}

/// True iff x is a power of two (x > 0).
inline bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Smallest power of two >= x (x >= 1).
inline uint64_t NextPowerOfTwo(uint64_t x) {
  return x <= 1 ? 1 : (uint64_t{1} << Log2Ceil(x));
}

/// Extract `bits` radix bits of `v` starting at bit `shift` (LSB = bit 0).
/// This is the clustering criterion of Radix-Cluster: pass p of a
/// radix_cluster(B, P) looks at bits [I + B - sum(B_1..B_p), ...) of the
/// hashed key, i.e., most-significant slice first.
inline uint32_t RadixBits(uint64_t v, uint32_t shift, uint32_t bits) {
  return static_cast<uint32_t>((v >> shift) & ((uint64_t{1} << bits) - 1));
}

/// Number of low bits needed to address n distinct dense oids [0, n).
inline uint32_t SignificantBits(uint64_t n) { return Log2Ceil(n); }

}  // namespace radix

#endif  // RADIX_COMMON_BITS_H_
