#include "common/simd_kernels.h"

#include "common/bits.h"

namespace radix::simd {
namespace {

// ---------------------------------------------------------------------------
// Scalar reference kernels. These ARE the semantics: every SIMD variant is
// required (and property-tested) to produce bit-identical output.
// ---------------------------------------------------------------------------

void ScalarRadixHistogram(const uint32_t* values, size_t n, uint32_t shift,
                          uint32_t bits, uint64_t* hist) {
  for (size_t i = 0; i < n; ++i) {
    ++hist[RadixBits(values[i], shift, bits)];
  }
}

void ScalarPrefixSum(const uint64_t* counts, size_t buckets,
                     uint64_t* cursor) {
  uint64_t running = 0;
  for (size_t b = 0; b < buckets; ++b) {
    cursor[b] = running;
    running += counts[b];
  }
  cursor[buckets] = running;
}

void ScalarGatherI32(const uint32_t* ids, size_t n, const int32_t* values,
                     int32_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = values[ids[i]];
  }
}

void ScalarGatherPairsLoI32(const uint64_t* pairs, size_t n,
                            const int32_t* values, int32_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = values[static_cast<uint32_t>(pairs[i])];
  }
}

void ScalarGatherPairsHiI32(const uint64_t* pairs, size_t n,
                            const int32_t* values, int32_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = values[static_cast<uint32_t>(pairs[i] >> 32)];
  }
}

const KernelTable kScalarTable = {
    /*isa=*/cpu::Isa::kScalar,
    /*radix_histogram=*/&ScalarRadixHistogram,
    /*prefix_sum=*/&ScalarPrefixSum,
    /*gather_i32=*/&ScalarGatherI32,
    /*gather_pairs_lo_i32=*/&ScalarGatherPairsLoI32,
    /*gather_pairs_hi_i32=*/&ScalarGatherPairsHiI32,
    /*nt_scatter=*/false,
};

}  // namespace

namespace detail {
const KernelTable* ScalarKernels() { return &kScalarTable; }
}  // namespace detail

const KernelTable& KernelsFor(cpu::Isa isa) {
  // Clamp to what the CPU can execute, then walk down through tiers the
  // *build* did not produce (non-x86 toolchains compile only scalar).
  isa = cpu::ResolveIsa(isa, cpu::DetectIsa());
  if (isa == cpu::Isa::kAvx512) {
    if (const KernelTable* t = detail::Avx512Kernels()) return *t;
    isa = cpu::Isa::kAvx2;
  }
  if (isa == cpu::Isa::kAvx2) {
    if (const KernelTable* t = detail::Avx2Kernels()) return *t;
  }
  return kScalarTable;
}

const KernelTable& Kernels() {
  static const KernelTable& active = KernelsFor(cpu::ActiveIsa());
  return active;
}

}  // namespace radix::simd
