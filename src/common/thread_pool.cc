#include "common/thread_pool.h"

namespace radix {

namespace {
std::atomic<uint64_t> g_pools_constructed{0};
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  g_pools_constructed.fetch_add(1, std::memory_order_relaxed);
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads - 1);
  for (size_t t = 0; t + 1 < num_threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
    idle_cv_.notify_all();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();  // size-1 pool: inline, in submission order
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

bool ThreadPool::TryRunOneTask() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
  }
  idle_cv_.notify_all();
  return true;
}

void ThreadPool::Wait() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // Shared index counter: each participant claims the next unclaimed item,
  // so expensive items (large clusters) do not serialize behind a static
  // partition.
  auto next = std::make_shared<std::atomic<size_t>>(0);
  auto drain = [next, n, &body] {
    for (;;) {
      size_t i = next->fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      body(i);
    }
  };
  size_t helpers = std::min(workers_.size(), n - 1);
  for (size_t t = 0; t < helpers; ++t) Submit(drain);
  drain();  // the calling thread participates
  Wait();
}

size_t ThreadPool::DefaultThreads() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<size_t>(hc);
}

uint64_t ThreadPool::TotalConstructed() {
  return g_pools_constructed.load(std::memory_order_relaxed);
}

}  // namespace radix
