#include "common/thread_pool.h"

#include <memory>
#include <utility>

namespace radix {

namespace {
std::atomic<uint64_t> g_pools_constructed{0};

/// Ambient scheduling class of this thread; tasks inherit it at Submit
/// time and workers adopt a task's class while running it, so chained
/// submissions stay in the originating query's class.
thread_local ThreadPool::Priority tl_priority = ThreadPool::Priority::kNormal;
}  // namespace

ThreadPool::Priority ThreadPool::CurrentPriority() { return tl_priority; }

ThreadPool::ScopedPriority::ScopedPriority(Priority priority)
    : previous_(tl_priority) {
  tl_priority = priority;
}

ThreadPool::ScopedPriority::~ScopedPriority() { tl_priority = previous_; }

ThreadPool::ThreadPool(size_t num_threads) {
  g_pools_constructed.fetch_add(1, std::memory_order_relaxed);
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads - 1);
  for (size_t t = 0; t + 1 < num_threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
    work_cv_.NotifyAll();
  }
  for (auto& w : workers_) w.join();
}

void ThreadPool::RunTask(Task& task) {
  Priority previous = tl_priority;
  tl_priority = task.priority;
  task.fn();
  tl_priority = previous;
}

bool ThreadPool::PopTaskLocked(Task* task) {
  // Mostly-strict priority with aging: every kAgingPeriod-th dequeue scans
  // lowest class first, so a sustained kHigh stream cannot starve queued
  // kNormal grains — they are guaranteed at least 1/kAgingPeriod of the
  // dequeue bandwidth under saturation.
  const bool aged = ++pop_ticks_ % kAgingPeriod == 0;
  for (size_t i = 0; i < queues_.size(); ++i) {
    auto& queue = queues_[aged ? queues_.size() - 1 - i : i];
    if (!queue.empty()) {
      *task = std::move(queue.front());
      queue.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      MutexLock lock(mu_);
      while (!stop_ && QueuesEmptyLocked()) work_cv_.Wait(lock);
      if (!PopTaskLocked(&task)) return;  // stop_ and drained
    }
    RunTask(task);
    {
      MutexLock lock(mu_);
      --in_flight_;
      idle_cv_.NotifyAll();
    }
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  Submit(tl_priority, std::move(task));
}

void ThreadPool::Submit(Priority priority, std::function<void()> task) {
  if (workers_.empty()) {
    Task t{std::move(task), priority};
    RunTask(t);  // size-1 pool: inline, in submission order
    return;
  }
  {
    MutexLock lock(mu_);
    queues_[static_cast<size_t>(priority)].push_back(
        Task{std::move(task), priority});
    ++in_flight_;
    work_cv_.NotifyOne();
  }
}

bool ThreadPool::TryRunOneTask() {
  Task task;
  {
    MutexLock lock(mu_);
    if (!PopTaskLocked(&task)) return false;
  }
  RunTask(task);
  {
    MutexLock lock(mu_);
    --in_flight_;
    idle_cv_.NotifyAll();
  }
  return true;
}

void ThreadPool::Wait() {
  if (workers_.empty()) return;
  MutexLock lock(mu_);
  while (in_flight_ != 0) idle_cv_.Wait(lock);
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Per-call completion group. Queued helpers are *grains*: each claims
  // exactly one index, runs it, re-enqueues itself if indices remain, and
  // yields the queue in between — so the FIFO interleaves grains of
  // concurrent ParallelFor calls and a long phase cannot occupy a worker
  // beyond one grain. The group outlives the call via shared_ptr: a
  // straggler grain that runs after completion claims an index >= total
  // and returns without touching `body` (which lives on the caller's
  // stack and is only dereferenced for indices < total, all of which
  // complete before the caller returns).
  struct Group {
    std::atomic<size_t> next{0};
    size_t total = 0;
    const std::function<void(size_t)>* body = nullptr;
    Mutex mu;
    CondVar cv;
    size_t done RADIX_GUARDED_BY(mu) = 0;
    /// Deliberately NOT guarded_by(mu): written once before any grain is
    /// queued (publication via Submit's internal lock), read by grains
    /// without mu, and cleared only after done == total — the mutex-order
    /// argument below proves no reader can still be live at that point.
    std::function<void()> grain;
  };
  auto group = std::make_shared<Group>();
  group->total = n;
  group->body = &body;
  const Priority priority = tl_priority;
  group->grain = [this, group, priority] {
    size_t i = group->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= group->total) return;
    (*group->body)(i);
    // Re-enqueue before counting the index done: the pool strictly
    // outlives the queries running on it, so a Submit racing the caller's
    // return is safe, and this order keeps a helper slot alive until the
    // index space is drained.
    if (group->next.load(std::memory_order_relaxed) < group->total) {
      Submit(priority, group->grain);
    }
    {
      MutexLock lock(group->mu);
      if (++group->done == group->total) group->cv.NotifyAll();
    }
  };

  const size_t helpers = std::min(workers_.size(), n - 1);
  for (size_t t = 0; t < helpers; ++t) Submit(priority, group->grain);

  // The calling thread claims indices directly (no queue round-trip): its
  // query makes progress — and completes — even when every worker is busy
  // with other queries' grains.
  for (;;) {
    size_t i = group->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= group->total) break;
    body(i);
    MutexLock lock(group->mu);
    if (++group->done == group->total) group->cv.NotifyAll();
  }
  MutexLock lock(group->mu);
  while (group->done != group->total) group->cv.Wait(lock);
  // Break the grain -> group -> grain shared_ptr cycle, or every call
  // would leak one Group once the queued copies drain. Safe here: a grain
  // re-enqueues *before* counting its index done, so done == total means
  // no Submit can still be reading `grain` (its read is mutex-ordered
  // before this clear via that grain's ++done), and straggler copies in
  // the queue own their own shared_ptr and return without touching it.
  group->grain = nullptr;
}

size_t ThreadPool::DefaultThreads() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<size_t>(hc);
}

uint64_t ThreadPool::TotalConstructed() {
  return g_pools_constructed.load(std::memory_order_relaxed);
}

}  // namespace radix
