#include "common/cpu_dispatch.h"

#include <cstdlib>

namespace radix::cpu {

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "scalar";
}

bool IsaSupported(Isa isa) {
  if (isa == Isa::kScalar) return true;
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  // __builtin_cpu_supports reads CPUID once and caches; it also checks the
  // OS saved-state (XGETBV) bits for the AVX families, so "supported" means
  // actually executable, not merely advertised.
  if (isa == Isa::kAvx2) return __builtin_cpu_supports("avx2") != 0;
  // The 512-bit kernels use F (lanes, gathers), BW/DQ (wide integer ops),
  // VL (256-bit forms in 512-bit TUs) and CD; every AVX-512 server core
  // since Skylake-X has all of them, but check each so a partial
  // implementation (or a hypervisor masking some) falls back to AVX2.
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512bw") != 0 &&
         __builtin_cpu_supports("avx512dq") != 0 &&
         __builtin_cpu_supports("avx512vl") != 0 &&
         __builtin_cpu_supports("avx512cd") != 0;
#else
  return false;
#endif
}

Isa DetectIsa() {
  if (IsaSupported(Isa::kAvx512)) return Isa::kAvx512;
  if (IsaSupported(Isa::kAvx2)) return Isa::kAvx2;
  return Isa::kScalar;
}

std::optional<Isa> ParseIsa(std::string_view name) {
  auto equals_ci = [](std::string_view a, std::string_view b) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      char ca = a[i], cb = b[i];
      if (ca >= 'A' && ca <= 'Z') ca = static_cast<char>(ca - 'A' + 'a');
      if (cb >= 'A' && cb <= 'Z') cb = static_cast<char>(cb - 'A' + 'a');
      if (ca != cb) return false;
    }
    return true;
  };
  if (equals_ci(name, "scalar")) return Isa::kScalar;
  if (equals_ci(name, "avx2")) return Isa::kAvx2;
  if (equals_ci(name, "avx512")) return Isa::kAvx512;
  return std::nullopt;
}

Isa ResolveIsa(std::optional<Isa> forced, Isa detected) {
  if (!forced.has_value()) return detected;
  return static_cast<int>(*forced) <= static_cast<int>(detected) ? *forced
                                                                 : detected;
}

Isa ActiveIsa() {
  static const Isa active = [] {
    const char* env = std::getenv("RADIX_FORCE_ISA");
    std::optional<Isa> forced =
        env != nullptr ? ParseIsa(env) : std::nullopt;
    return ResolveIsa(forced, DetectIsa());
  }();
  return active;
}

}  // namespace radix::cpu
