#ifndef RADIX_COMMON_HASH_H_
#define RADIX_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

#include "common/overflow.h"

namespace radix {

/// Finalizer-style integer hash (Murmur3 fmix64). Radix-Cluster hashes the
/// join attribute "to ensure that all bits of the join attribute play a role
/// in the lower B bits used for clustering" (paper §2.2) and to combat skew.
// no-sanitize reason: fmix64 mixes via wrapping multiplication by odd
// constants — 2^64-modular by construction.
RADIX_NO_SANITIZE_INTEGER inline uint64_t HashInt64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

inline uint64_t HashInt32(uint32_t k) { return HashInt64(k); }

/// Identity "hash" used for oids: oids stem from dense domains [0, N) and
/// are neither skewed nor in need of bit mixing, so Radix-Cluster on all
/// significant bits of an oid column is exactly Radix-Sort (paper §3.1).
struct OidIdentityHash {
  uint64_t operator()(uint32_t oid) const { return oid; }
};

/// FNV-1a over a byte range; digests variable-size (varchar) values so
/// string payloads can participate in the order-independent result
/// checksums next to the fixed-width HashInt64 terms.
// no-sanitize reason: FNV-1a's prime multiply wraps mod 2^64 by definition.
RADIX_NO_SANITIZE_INTEGER inline uint64_t HashBytes(const void* data,
                                                    size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = 14695981039346656037ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

/// Mixing hash for join keys.
struct KeyHash {
  uint64_t operator()(uint32_t key) const { return HashInt32(key); }
  uint64_t operator()(int32_t key) const {
    return HashInt32(static_cast<uint32_t>(key));
  }
};

}  // namespace radix

#endif  // RADIX_COMMON_HASH_H_
