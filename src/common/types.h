#ifndef RADIX_COMMON_TYPES_H_
#define RADIX_COMMON_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace radix {

/// Object identifier. MonetDB-style dense, zero-based position within a
/// column. 32 bits suffice for the cardinalities the paper evaluates
/// (up to 16M tuples) while keeping the join index at the paper's
/// 8-bytes-per-entry footprint, which matters for cache behaviour.
using oid_t = uint32_t;

/// Default column value type: the paper's experiments use 4-byte integers
/// for keys and all projection payloads.
using value_t = int32_t;

/// Sentinel for "no oid".
inline constexpr oid_t kInvalidOid = ~oid_t{0};

/// Number of radix bits / passes are small integers; use a narrow type in
/// interfaces so nonsense values are caught early.
using radix_bits_t = uint32_t;

}  // namespace radix

#endif  // RADIX_COMMON_TYPES_H_
