#ifndef RADIX_COMMON_SIMD_KERNELS_H_
#define RADIX_COMMON_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/cpu_dispatch.h"
#include "common/macros.h"
#include "common/types.h"

#if defined(__x86_64__) && defined(__SSE2__)
#include <immintrin.h>
#define RADIX_SIMD_SSE2_STREAM 1
#endif

namespace radix::simd {

/// The monomorphic hot-loop primitives the radix kernels dispatch over
/// (scalar / AVX2 / AVX-512 variants, selected once per process by
/// cpu::ActiveIsa()). Every variant is bit-identical to the scalar
/// reference — tests/simd_kernels_test.cc sweeps the equivalence across
/// ISAs x sizes x seeds, including empty inputs and non-multiple-of-
/// vector-width tails.
struct KernelTable {
  cpu::Isa isa = cpu::Isa::kScalar;

  /// hist[(values[i] >> shift) & mask(bits)] += 1 for i in [0, n).
  /// Adds into `hist` (callers zero it); hist must have 2^min(bits,32)
  /// slots reachable from 32-bit inputs. The radix_count histogram loop.
  void (*radix_histogram)(const uint32_t* values, size_t n, uint32_t shift,
                          uint32_t bits, uint64_t* hist);

  /// Exclusive prefix sum: cursor[0] = 0, cursor[b+1] = cursor[b] +
  /// counts[b] for b in [0, buckets). cursor has buckets + 1 slots — the
  /// histogram -> write-cursor step of every clustering pass.
  void (*prefix_sum)(const uint64_t* counts, size_t buckets,
                     uint64_t* cursor);

  /// out[i] = values[ids[i]]: the Positional-Join gather. Indices are
  /// interpreted as unsigned but must stay below 2^31 (hardware gathers
  /// sign-extend); callers guard on the source column size.
  void (*gather_i32)(const uint32_t* ids, size_t n, const int32_t* values,
                     int32_t* out);

  /// Positional-Join gather off one side of an 8-byte pair array
  /// (join-index entries): index = low / high 32 bits of pairs[i].
  void (*gather_pairs_lo_i32)(const uint64_t* pairs, size_t n,
                              const int32_t* values, int32_t* out);
  void (*gather_pairs_hi_i32)(const uint64_t* pairs, size_t n,
                              const int32_t* values, int32_t* out);

  /// Whether the radix scatter should run through the write-combining
  /// non-temporal path (WcScatter64 below). False at kScalar so forced-ISA
  /// CI legs exercise the plain store loop.
  bool nt_scatter = false;
};

/// The table for cpu::ActiveIsa() — what production code calls.
const KernelTable& Kernels();

/// The table for a specific tier, clamped to what the CPU supports
/// (requesting avx512 on an avx2 machine returns the avx2 table). For
/// tests and the bench_ablation scalar-vs-dispatched columns.
const KernelTable& KernelsFor(cpu::Isa isa);

/// Hot kernels indices stay below this so hardware 32-bit gathers (which
/// sign-extend their index lanes) agree with the scalar loops.
inline constexpr size_t kMaxGatherIndex = size_t{1} << 31;

/// Copy one 64-byte line with non-temporal stores (bypassing the cache):
/// dst must be 64-byte aligned; src may be unaligned. Falls back to memcpy
/// on non-x86 builds. The §3.1 argument: the radix scatter's output lines
/// are written exactly once and not re-read within the pass, so filling
/// them through the cache evicts a line of useful data per 64 output
/// bytes; streaming them sidesteps both that eviction and the
/// read-for-ownership traffic.
inline void StreamLine64(void* dst, const void* src) {
#if defined(RADIX_SIMD_SSE2_STREAM)
  const __m128i* s = static_cast<const __m128i*>(src);
  __m128i* d = static_cast<__m128i*>(dst);
  _mm_stream_si128(d + 0, _mm_loadu_si128(s + 0));
  _mm_stream_si128(d + 1, _mm_loadu_si128(s + 1));
  _mm_stream_si128(d + 2, _mm_loadu_si128(s + 2));
  _mm_stream_si128(d + 3, _mm_loadu_si128(s + 3));
#else
  std::memcpy(dst, src, 64);
#endif
}

/// Order non-temporal stores before subsequent loads/stores become visible;
/// required before handing scattered output to another thread (NT stores
/// are weakly ordered even on x86).
inline void StreamFence() {
#if defined(RADIX_SIMD_SSE2_STREAM)
  _mm_sfence();
#endif
}

/// Policy: run the radix scatter through WcScatter64? Small fan-outs keep
/// all append cursors' lines cache-resident, where plain stores win; very
/// large fan-outs would need more WC buffer than cache. The window where
/// streaming pays is exactly the paper's scatter wall: more cursors than
/// cache lines / TLB entries, bounded per pass by the partition plan.
inline bool UseNtScatter(size_t buckets, size_t n) {
  return Kernels().nt_scatter && buckets >= 64 && buckets <= (size_t{1} << 13) &&
         n >= 4096;
}

/// Software write-combining scatter for 8-byte tuples (KeyOid / OidPair —
/// every radix-clustered element in the engine): elements pushed per
/// bucket accumulate in a 64-byte buffer that is flushed to the
/// destination with one non-temporal line store once full and aligned.
/// Unaligned cluster heads and partial tails go through plain stores, so
/// the output bytes are identical to the scalar scatter loop — only the
/// path to memory differs. Each instance is single-threaded; parallel
/// scatters give every thread its own (their cursor runs are disjoint, and
/// a full buffered line is by construction wholly owned by its cursor).
class WcScatter64 {
 public:
  /// `cursors[b]` is bucket b's first destination index in `out`; the same
  /// values the scalar loop starts its insert cursors at.
  WcScatter64(uint64_t* out, size_t buckets, const uint64_t* cursors)
      : out_(out), slots_(buckets) {
    for (size_t b = 0; b < buckets; ++b) slots_[b].base = cursors[b];
    buf_.resize(buckets * kLine);
  }

  void Push(size_t bucket, uint64_t v) {
    Slot& s = slots_[bucket];
    if (s.fill == 0 &&
        (reinterpret_cast<uintptr_t>(out_ + s.base) & 63) != 0) {
      out_[s.base++] = v;  // head not line-aligned yet: plain store
      return;
    }
    buf_[bucket * kLine + s.fill++] = v;
    if (s.fill == kLine) {
      StreamLine64(out_ + s.base, buf_.data() + bucket * kLine);
      s.base += kLine;
      s.fill = 0;
    }
  }

  /// Drain every partial buffer with plain stores and fence the streamed
  /// lines. Must be called before the output is read (or published to
  /// another thread).
  void Flush() {
    for (size_t b = 0; b < slots_.size(); ++b) {
      Slot& s = slots_[b];
      for (uint32_t k = 0; k < s.fill; ++k) {
        out_[s.base++] = buf_[b * kLine + k];
      }
      s.fill = 0;
    }
    StreamFence();
  }

 private:
  static constexpr size_t kLine = 8;  // 8 x 8-byte tuples per cache line

  struct Slot {
    uint64_t base = 0;  ///< next unwritten destination index
    uint32_t fill = 0;  ///< elements buffered for this bucket
  };

  uint64_t* out_;
  std::vector<Slot> slots_;
  std::vector<uint64_t> buf_;
};

namespace detail {
/// Per-tier implementations, exported for the equivalence tests and the
/// bench_ablation scalar-vs-dispatched columns. The avx tables are null
/// when the build (not the CPU) lacks the target: non-x86 toolchains.
const KernelTable* ScalarKernels();
const KernelTable* Avx2Kernels();    // defined in simd_kernels_avx2.cc
const KernelTable* Avx512Kernels();  // defined in simd_kernels_avx512.cc
}  // namespace detail

}  // namespace radix::simd

#endif  // RADIX_COMMON_SIMD_KERNELS_H_
