#ifndef RADIX_COMMON_OVERFLOW_H_
#define RADIX_COMMON_OVERFLOW_H_

#include <cstdint>
#include <limits>

#include "common/macros.h"
#include "common/types.h"

/// Support for the `-fsanitize=integer` build flavor (RADIX_SANITIZE=integer,
/// Clang only): that sanitizer flags *every* unsigned wrap and implicit
/// value-changing conversion at runtime, which is exactly what we want on
/// offset/size arithmetic — but hash mixing, PRNG state updates and the
/// order-independent checksum sums wrap *by design*. Those few sites are
/// annotated with RADIX_NO_SANITIZE_INTEGER (each carrying a one-line
/// reason), so a clean integer-sanitizer run means every *unannotated* wrap
/// is a real bug.
///
/// Policy: never annotate a whole algorithm to silence one operation. For a
/// single intentionally-wrapping add/mul inside otherwise-checked code, use
/// WrapAdd/WrapMul below — the call site stays greppable and self-documents
/// the wrap.
#if defined(__clang__)
#define RADIX_NO_SANITIZE_INTEGER \
  __attribute__((no_sanitize("unsigned-integer-overflow", "implicit-conversion")))
#else
#define RADIX_NO_SANITIZE_INTEGER
#endif

namespace radix {

/// 2^64-modular add — the order-independent result checksums are *defined*
/// as sums mod 2^64 of per-row digests (commutative, so result order may
/// differ between strategies).
RADIX_NO_SANITIZE_INTEGER inline uint64_t WrapAdd(uint64_t a, uint64_t b) {
  return a + b;
}

/// 2^64-modular multiply — hash finalizers and PRNG state updates mix via
/// wrapping multiplication by odd constants.
RADIX_NO_SANITIZE_INTEGER inline uint64_t WrapMul(uint64_t a, uint64_t b) {
  return a * b;
}

/// Guard before a loop that casts indices [0, n) — or chain heads i+1 —
/// to 32-bit oids: beyond 2^32 rows the casts would silently alias
/// positions, producing wrong answers rather than crashes. One check per
/// loop, not per element.
inline void CheckOidCapacity(size_t n) {
  RADIX_CHECK(n <= size_t{std::numeric_limits<oid_t>::max()});
}

}  // namespace radix

#endif  // RADIX_COMMON_OVERFLOW_H_
