#ifndef RADIX_COMMON_CPU_DISPATCH_H_
#define RADIX_COMMON_CPU_DISPATCH_H_

#include <optional>
#include <string_view>

namespace radix::cpu {

/// Instruction-set tiers the hot kernels ship variants for. Ordered: a
/// higher tier implies every lower one, so clamping a request down is
/// always safe — the fallback order the dispatch relies on.
enum class Isa : int {
  kScalar = 0,  ///< portable C++ loops; the reference all variants match
  kAvx2 = 1,    ///< 256-bit integer SIMD + hardware gathers
  kAvx512 = 2,  ///< 512-bit (F/BW/DQ/VL/CD) lanes and gathers
};

inline constexpr int kNumIsaLevels = 3;

/// Display name: "scalar", "avx2", "avx512".
const char* IsaName(Isa isa);

/// True iff the running CPU can execute this tier (kScalar always can).
/// Uses compiler CPUID builtins; non-x86 builds support only kScalar.
bool IsaSupported(Isa isa);

/// Highest tier the running CPU supports.
Isa DetectIsa();

/// Parse a RADIX_FORCE_ISA value (case-insensitive "scalar" | "avx2" |
/// "avx512"); nullopt for anything else, including empty.
std::optional<Isa> ParseIsa(std::string_view name);

/// Resolve what should run: the forced tier when one was requested, clamped
/// to `detected` (forcing avx512 on an avx2 machine falls back to avx2, not
/// SIGILL); `detected` itself when nothing was forced.
Isa ResolveIsa(std::optional<Isa> forced, Isa detected);

/// The tier every dispatched kernel in this process runs at:
/// ResolveIsa(ParseIsa(getenv("RADIX_FORCE_ISA")), DetectIsa()), computed
/// once on first use. RADIX_FORCE_ISA exists so CI can pin every variant
/// path on whatever machine it happens to get.
Isa ActiveIsa();

}  // namespace radix::cpu

#endif  // RADIX_COMMON_CPU_DISPATCH_H_
