#include "common/timer.h"

// Header-only; compiled once for self-containedness.
