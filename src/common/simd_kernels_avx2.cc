// AVX2 variants of the hot-loop primitives. Compiled with -mavx2 (see
// src/CMakeLists.txt); only reached after cpu_dispatch verified the CPU
// executes AVX2, so no function-level target attributes are needed.
//
// Every kernel here is bit-identical to the scalar reference in
// simd_kernels.cc: histogram counts are commutative 64-bit sums, prefix
// sums are exact integer scans, gathers move the same 4-byte values.

#include "common/simd_kernels.h"

#if defined(__x86_64__) && defined(__AVX2__)

#include <immintrin.h>

#include "common/bits.h"

namespace radix::simd {
namespace {

constexpr size_t kBlock = 64;  // indices extracted per SIMD round

void Avx2RadixHistogram(const uint32_t* values, size_t n, uint32_t shift,
                        uint32_t bits, uint64_t* hist) {
  size_t i = 0;
  if (shift < 32 && n >= kBlock) {
    const uint32_t mask =
        bits >= 32 ? ~uint32_t{0} : ((uint32_t{1} << bits) - 1u);
    const __m256i vmask = _mm256_set1_epi32(static_cast<int>(mask));
    const __m128i vshift = _mm_cvtsi32_si128(static_cast<int>(shift));
    alignas(32) uint32_t idx[kBlock];
    for (; i + kBlock <= n; i += kBlock) {
      for (size_t j = 0; j < kBlock; j += 8) {
        __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(values + i + j));
        v = _mm256_and_si256(_mm256_srl_epi32(v, vshift), vmask);
        _mm256_store_si256(reinterpret_cast<__m256i*>(idx + j), v);
      }
      // The increments stay scalar (a vectorized scatter-add needs
      // conflict handling); the win is the vectorized shift+mask and the
      // unrolled, load-free increment loop.
      for (size_t j = 0; j < kBlock; ++j) ++hist[idx[j]];
    }
  }
  for (; i < n; ++i) ++hist[RadixBits(values[i], shift, bits)];
}

void Avx2PrefixSum(const uint64_t* counts, size_t buckets, uint64_t* cursor) {
  const __m256i zero = _mm256_setzero_si256();
  uint64_t running = 0;
  size_t b = 0;
  for (; b + 4 <= buckets; b += 4) {
    __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(counts + b));
    // 4-lane inclusive scan: intra-128 shift-add, then carry the low
    // half's total into both high lanes.
    x = _mm256_add_epi64(x, _mm256_slli_si256(x, 8));
    __m256i carry = _mm256_permute4x64_epi64(x, _MM_SHUFFLE(1, 1, 1, 1));
    carry = _mm256_blend_epi32(zero, carry, 0xF0);
    x = _mm256_add_epi64(x, carry);
    // Exclusive = inclusive shifted up one lane with 0 in lane 0.
    __m256i ex = _mm256_permute4x64_epi64(x, _MM_SHUFFLE(2, 1, 0, 0));
    ex = _mm256_blend_epi32(zero, ex, 0xFC);
    ex = _mm256_add_epi64(ex, _mm256_set1_epi64x(static_cast<long long>(running)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(cursor + b), ex);
    running += static_cast<uint64_t>(_mm256_extract_epi64(x, 3));
  }
  for (; b < buckets; ++b) {
    cursor[b] = running;
    running += counts[b];
  }
  cursor[buckets] = running;
}

void Avx2GatherI32(const uint32_t* ids, size_t n, const int32_t* values,
                   int32_t* out) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + i));
    __m256i v = _mm256_i32gather_epi32(values, idx, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
  }
  for (; i < n; ++i) out[i] = values[ids[i]];
}

// Pick the low (even) or high (odd) 32-bit halves of four 64-bit pairs
// into the low 128 bits.
inline __m128i PairLanes(const uint64_t* pairs, __m256i pick) {
  __m256i p = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pairs));
  return _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(p, pick));
}

template <bool kHigh>
void Avx2GatherPairsI32(const uint64_t* pairs, size_t n, const int32_t* values,
                        int32_t* out) {
  const __m256i pick = kHigh ? _mm256_setr_epi32(1, 3, 5, 7, 0, 0, 0, 0)
                             : _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m128i lo = PairLanes(pairs + i, pick);
    __m128i hi = PairLanes(pairs + i + 4, pick);
    __m256i idx =
        _mm256_inserti128_si256(_mm256_castsi128_si256(lo), hi, 1);
    __m256i v = _mm256_i32gather_epi32(values, idx, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
  }
  for (; i < n; ++i) {
    const uint32_t id =
        kHigh ? static_cast<uint32_t>(pairs[i] >> 32)
              : static_cast<uint32_t>(pairs[i]);
    out[i] = values[id];
  }
}

const KernelTable kAvx2Table = {
    /*isa=*/cpu::Isa::kAvx2,
    /*radix_histogram=*/&Avx2RadixHistogram,
    /*prefix_sum=*/&Avx2PrefixSum,
    /*gather_i32=*/&Avx2GatherI32,
    /*gather_pairs_lo_i32=*/&Avx2GatherPairsI32<false>,
    /*gather_pairs_hi_i32=*/&Avx2GatherPairsI32<true>,
    /*nt_scatter=*/true,
};

}  // namespace

namespace detail {
const KernelTable* Avx2Kernels() { return &kAvx2Table; }
}  // namespace detail

}  // namespace radix::simd

#else  // !(__x86_64__ && __AVX2__)

namespace radix::simd::detail {
const KernelTable* Avx2Kernels() { return nullptr; }
}  // namespace radix::simd::detail

#endif
