#ifndef RADIX_COMMON_MACROS_H_
#define RADIX_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// Abort with a message when an internal invariant is violated. Used for
/// programmer errors only; recoverable conditions return radix::Status.
#define RADIX_CHECK(cond)                                                \
  do {                                                                   \
    if (!(cond)) {                                                       \
      (void)std::fprintf(stderr, "RADIX_CHECK failed at %s:%d: %s\n",    \
                         __FILE__, __LINE__, #cond);                     \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

#ifndef NDEBUG
#define RADIX_DCHECK(cond) RADIX_CHECK(cond)
#else
#define RADIX_DCHECK(cond) \
  do {                     \
  } while (0)
#endif

/// Propagate a non-OK Status from an expression returning Status.
#define RADIX_RETURN_NOT_OK(expr)            \
  do {                                       \
    ::radix::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

#define RADIX_DISALLOW_COPY_AND_ASSIGN(T) \
  T(const T&) = delete;                   \
  T& operator=(const T&) = delete

#endif  // RADIX_COMMON_MACROS_H_
