#include "common/aligned_buffer.h"

#include <cstdlib>
#include <cstring>
#include <utility>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace radix {

HugePagePolicy ParseHugePagePolicy(const char* value) {
  if (value == nullptr) return HugePagePolicy::kAuto;
  if (std::strcmp(value, "off") == 0 || std::strcmp(value, "0") == 0) {
    return HugePagePolicy::kOff;
  }
  if (std::strcmp(value, "hugetlb") == 0) return HugePagePolicy::kHugetlb;
  return HugePagePolicy::kAuto;
}

HugePagePolicy ActiveHugePagePolicy() {
  static const HugePagePolicy policy =
      ParseHugePagePolicy(std::getenv("RADIX_HUGE_PAGES"));
  return policy;
}

namespace {

#if defined(__linux__)
/// mmap `len` (a multiple of kHugePageBytes) at 2 MiB alignment. THP only
/// assembles a huge page over a region that is huge-page aligned AND
/// advised, so we over-map by one huge page, trim to alignment, and
/// advise the rest. Returns nullptr on failure (caller falls back).
uint8_t* MapHugeAligned(size_t len, bool try_hugetlb) {
  if (try_hugetlb) {
    // Explicitly reserved pages: aligned by construction, no advice
    // needed. Typically fails with ENOMEM unless the admin reserved pool
    // space — that's fine, fall through to THP.
    void* p = mmap(nullptr, len, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_HUGETLB, -1, 0);
    if (p != MAP_FAILED) return static_cast<uint8_t*>(p);
  }
  const size_t over = len + kHugePageBytes;
  void* raw = mmap(nullptr, over, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (raw == MAP_FAILED) return nullptr;
  const uintptr_t raw_addr = reinterpret_cast<uintptr_t>(raw);
  const uintptr_t base =
      (raw_addr + kHugePageBytes - 1) & ~(kHugePageBytes - 1);
  if (base != raw_addr) {
    munmap(raw, base - raw_addr);
  }
  const uintptr_t tail = base + len;
  if (tail != raw_addr + over) {
    munmap(reinterpret_cast<void*>(tail), raw_addr + over - tail);
  }
  // Advisory only: if THP is disabled system-wide we still get a working
  // (base-page) mapping.
  madvise(reinterpret_cast<void*>(base), len, MADV_HUGEPAGE);
  return reinterpret_cast<uint8_t*>(base);
}
#endif  // __linux__

}  // namespace

AlignedBuffer::AlignedBuffer(size_t bytes, size_t alignment) {
  Resize(bytes, alignment);
}

AlignedBuffer::~AlignedBuffer() { Free(); }

AlignedBuffer::AlignedBuffer(AlignedBuffer&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      map_len_(std::exchange(other.map_len_, 0)) {}

AlignedBuffer& AlignedBuffer::operator=(AlignedBuffer&& other) noexcept {
  if (this != &other) {
    Free();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    map_len_ = std::exchange(other.map_len_, 0);
  }
  return *this;
}

void AlignedBuffer::Resize(size_t bytes, size_t alignment) {
  Free();
  if (bytes == 0) return;
#if defined(__linux__)
  const HugePagePolicy policy = ActiveHugePagePolicy();
  if (policy != HugePagePolicy::kOff && bytes >= kHugePageBytes &&
      alignment <= kHugePageBytes) {
    const size_t len =
        (bytes + kHugePageBytes - 1) / kHugePageBytes * kHugePageBytes;
    if (uint8_t* p =
            MapHugeAligned(len, policy == HugePagePolicy::kHugetlb)) {
      data_ = p;
      size_ = bytes;
      map_len_ = len;
      return;
    }
  }
#endif
  // aligned_alloc requires size to be a multiple of alignment.
  size_t padded = (bytes + alignment - 1) / alignment * alignment;
  data_ = static_cast<uint8_t*>(std::aligned_alloc(alignment, padded));
  RADIX_CHECK(data_ != nullptr);
  size_ = bytes;
}

void AlignedBuffer::Free() {
#if defined(__linux__)
  if (map_len_ != 0) {
    munmap(data_, map_len_);
    data_ = nullptr;
    size_ = 0;
    map_len_ = 0;
    return;
  }
#endif
  std::free(data_);
  data_ = nullptr;
  size_ = 0;
  map_len_ = 0;
}

}  // namespace radix
