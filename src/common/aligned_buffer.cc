#include "common/aligned_buffer.h"

#include <cstdlib>
#include <utility>

namespace radix {

AlignedBuffer::AlignedBuffer(size_t bytes, size_t alignment) {
  Resize(bytes, alignment);
}

AlignedBuffer::~AlignedBuffer() { Free(); }

AlignedBuffer::AlignedBuffer(AlignedBuffer&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

AlignedBuffer& AlignedBuffer::operator=(AlignedBuffer&& other) noexcept {
  if (this != &other) {
    Free();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

void AlignedBuffer::Resize(size_t bytes, size_t alignment) {
  Free();
  if (bytes == 0) return;
  // aligned_alloc requires size to be a multiple of alignment.
  size_t padded = (bytes + alignment - 1) / alignment * alignment;
  data_ = static_cast<uint8_t*>(std::aligned_alloc(alignment, padded));
  RADIX_CHECK(data_ != nullptr);
  size_ = bytes;
}

void AlignedBuffer::Free() {
  std::free(data_);
  data_ = nullptr;
  size_ = 0;
}

}  // namespace radix
