#ifndef RADIX_JOIN_HASH_JOIN_H_
#define RADIX_JOIN_HASH_JOIN_H_

#include <span>

#include "common/types.h"
#include "join/join_index.h"

namespace radix::join {

/// Naive (non-partitioned) Hash-Join producing a join index: build a hash
/// table over the whole `right_keys` ("smaller"), then scan `left_keys`
/// ("larger") sequentially probing it. The probe's random access spans the
/// entire inner relation plus hash table — the cache-hostile pattern that
/// Partitioned Hash-Join removes (paper §2.1). This is the "NSM-pre-hash" /
/// unclustered baseline of Figs. 9b and 10a.
///
/// `left_base` / `right_base` offset the emitted oids; the partitioned
/// variant joins clusters whose tuples carry their original oids instead.
JoinIndex HashJoin(std::span<const value_t> left_keys,
                   std::span<const value_t> right_keys);

/// Hash join over (key, oid) pairs, emitting original oids; the per-cluster
/// kernel of Partitioned Hash-Join.
void HashJoinKeyOid(std::span<const cluster::KeyOid> left,
                    std::span<const cluster::KeyOid> right, JoinIndex* out);

}  // namespace radix::join

#endif  // RADIX_JOIN_HASH_JOIN_H_
