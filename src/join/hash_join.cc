#include "join/hash_join.h"

#include "join/hash_table.h"
#include "common/overflow.h"

namespace radix::join {

JoinIndex HashJoin(std::span<const value_t> left_keys,
                   std::span<const value_t> right_keys) {
  HashTable table;
  table.Build(right_keys);
  JoinIndex out;
  out.Reserve(left_keys.size());
  CheckOidCapacity(left_keys.size());
  for (size_t i = 0; i < left_keys.size(); ++i) {
    table.Probe(left_keys[i], [&](oid_t right_pos) {
      out.Append(static_cast<oid_t>(i), right_pos);
    });
  }
  return out;
}

namespace {

/// Small open-coded bucket chain over KeyOid clusters; avoids materializing
/// a separate key array per cluster.
class KeyOidTable {
 public:
  explicit KeyOidTable(std::span<const cluster::KeyOid> build) : build_(build) {
    CheckOidCapacity(build.size());
    size_t buckets = NextPowerOfTwo(build.size() == 0 ? 1 : build.size());
    mask_ = buckets - 1;
    heads_.assign(buckets, 0);
    next_.assign(build.size(), 0);
    for (size_t i = 0; i < build.size(); ++i) {
      uint64_t h = HashTable::Bucket(build[i].key, mask_);
      next_[i] = heads_[h];
      heads_[h] = static_cast<uint32_t>(i + 1);
    }
  }

  template <typename EmitFn>
  void Probe(value_t key, EmitFn&& emit) const {
    // Upper hash bits: disjoint from the radix-cluster bits (see
    // HashTable::Bucket) so per-cluster tables stay uniformly filled.
    uint64_t h = HashTable::Bucket(key, mask_);
    for (uint32_t i = heads_[h]; i != 0; i = next_[i - 1]) {
      if (build_[i - 1].key == key) emit(build_[i - 1].oid);
    }
  }

 private:
  std::span<const cluster::KeyOid> build_;
  std::vector<uint32_t> heads_;
  std::vector<uint32_t> next_;
  uint64_t mask_;
};

}  // namespace

void HashJoinKeyOid(std::span<const cluster::KeyOid> left,
                    std::span<const cluster::KeyOid> right, JoinIndex* out) {
  KeyOidTable table(right);
  for (const cluster::KeyOid& probe : left) {
    table.Probe(probe.key,
                [&](oid_t right_oid) { out->Append(probe.oid, right_oid); });
  }
}

}  // namespace radix::join
