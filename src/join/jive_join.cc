#include "join/jive_join.h"
#include "common/overflow.h"

#include <algorithm>

#include "common/bits.h"
#include "common/macros.h"

namespace radix::join {

namespace {

/// Cluster geometry shared by both input flavours: cluster id is the top
/// `bits` of the right oid's significant bits.
struct JiveGeometry {
  radix_bits_t bits;
  radix_bits_t shift;
  size_t clusters;
};

JiveGeometry Geometry(oid_t right_cardinality, const JiveJoinOptions& options) {
  radix_bits_t sig = SignificantBits(right_cardinality == 0 ? 1 : right_cardinality);
  radix_bits_t bits = std::min<radix_bits_t>(options.cluster_bits, sig);
  return {bits, static_cast<radix_bits_t>(sig - bits), size_t{1} << bits};
}

/// Phase-1 scatter core: histogram + stable scatter of (result_pos,
/// right_oid), identical for DSM and NSM flavours.
JiveIntermediate ScatterIntermediate(std::span<const OidPair> index,
                                     oid_t right_cardinality,
                                     const JiveJoinOptions& options) {
  JiveGeometry geo = Geometry(right_cardinality, options);
  CheckOidCapacity(index.size());  // entries store result positions as oids
  JiveIntermediate inter;
  inter.right_cardinality = right_cardinality;
  inter.shift = geo.shift;
  inter.entries.resize(index.size());
  std::vector<uint64_t> histogram(geo.clusters, 0);
  for (const OidPair& p : index) ++histogram[p.right >> geo.shift];
  inter.cluster_offsets.assign(geo.clusters + 1, 0);
  for (size_t c = 0; c < geo.clusters; ++c) {
    inter.cluster_offsets[c + 1] = inter.cluster_offsets[c] + histogram[c];
  }
  std::vector<uint64_t> cursor(inter.cluster_offsets.begin(),
                               inter.cluster_offsets.end() - 1);
  for (size_t i = 0; i < index.size(); ++i) {
    size_t c = index[i].right >> geo.shift;
    inter.entries[cursor[c]++] = {static_cast<oid_t>(i), index[i].right};
  }
  return inter;
}

/// Sort one cluster's entries by right oid. Entries arrive in ascending
/// result-position order (phase 1 scans the index sequentially); we sort a
/// copy, keeping result positions attached.
void SortClusterByRightOid(JiveEntry* begin, JiveEntry* end) {
  std::sort(begin, end, [](const JiveEntry& a, const JiveEntry& b) {
    return a.right_oid < b.right_oid;
  });
}

}  // namespace

JiveIntermediate LeftJiveJoinDsm(
    std::span<const OidPair> index,
    const std::vector<std::span<const value_t>>& left_columns,
    const std::vector<std::span<value_t>>& left_out, oid_t right_cardinality,
    const JiveJoinOptions& options) {
  RADIX_CHECK(left_columns.size() == left_out.size());
  // Merge with the left relation: index sorted by left oid means these
  // positional fetches traverse each left column sequentially.
  for (size_t a = 0; a < left_columns.size(); ++a) {
    const value_t* src = left_columns[a].data();
    value_t* dst = left_out[a].data();
    for (size_t i = 0; i < index.size(); ++i) dst[i] = src[index[i].left];
  }
  return ScatterIntermediate(index, right_cardinality, options);
}

void RightJiveJoinDsm(
    JiveIntermediate& inter,
    const std::vector<std::span<const value_t>>& right_columns,
    const std::vector<std::span<value_t>>& right_out) {
  RADIX_CHECK(right_columns.size() == right_out.size());
  size_t clusters = inter.cluster_offsets.size() - 1;
  for (size_t c = 0; c < clusters; ++c) {
    JiveEntry* begin = inter.entries.data() + inter.cluster_offsets[c];
    JiveEntry* end = inter.entries.data() + inter.cluster_offsets[c + 1];
    if (begin == end) continue;
    SortClusterByRightOid(begin, end);
    // Fetch sequentially within the cluster's right-oid range; writes go to
    // the recorded result positions (random but ascending per cluster).
    for (size_t a = 0; a < right_columns.size(); ++a) {
      const value_t* src = right_columns[a].data();
      value_t* dst = right_out[a].data();
      for (JiveEntry* e = begin; e != end; ++e) {
        dst[e->result_pos] = src[e->right_oid];
      }
    }
  }
}

JiveIntermediate LeftJiveJoinNsm(std::span<const OidPair> index,
                                 const storage::NsmRelation& left,
                                 size_t pi_left, storage::NsmResult* result,
                                 oid_t right_cardinality,
                                 const JiveJoinOptions& options) {
  RADIX_CHECK(result->cardinality() == index.size());
  RADIX_CHECK(pi_left + 1 <= left.num_attrs());
  for (size_t i = 0; i < index.size(); ++i) {
    const value_t* rec = left.record(index[i].left);
    value_t* row = result->row(i);
    for (size_t a = 0; a < pi_left; ++a) row[a] = rec[1 + a];
  }
  return ScatterIntermediate(index, right_cardinality, options);
}

void RightJiveJoinNsm(JiveIntermediate& inter,
                      const storage::NsmRelation& right, size_t pi_right,
                      size_t out_offset, storage::NsmResult* result) {
  RADIX_CHECK(pi_right + 1 <= right.num_attrs());
  size_t clusters = inter.cluster_offsets.size() - 1;
  for (size_t c = 0; c < clusters; ++c) {
    JiveEntry* begin = inter.entries.data() + inter.cluster_offsets[c];
    JiveEntry* end = inter.entries.data() + inter.cluster_offsets[c + 1];
    if (begin == end) continue;
    SortClusterByRightOid(begin, end);
    for (JiveEntry* e = begin; e != end; ++e) {
      const value_t* rec = right.record(e->right_oid);
      value_t* row = result->row(e->result_pos);
      for (size_t a = 0; a < pi_right; ++a) row[out_offset + a] = rec[1 + a];
    }
  }
}

}  // namespace radix::join
