#ifndef RADIX_JOIN_JOIN_INDEX_H_
#define RADIX_JOIN_JOIN_INDEX_H_

#include <span>
#include <vector>

#include "cluster/radix_cluster.h"
#include "common/types.h"

namespace radix::join {

using cluster::OidPair;

/// A join index [Val87]: the matching (left-oid, right-oid) pairs produced
/// by the join phase of a post-projection strategy. Stored as an array of
/// 8-byte pairs, the same layout the paper's experiments use.
class JoinIndex {
 public:
  JoinIndex() = default;
  explicit JoinIndex(std::vector<OidPair> pairs) : pairs_(std::move(pairs)) {}

  size_t size() const { return pairs_.size(); }
  bool empty() const { return pairs_.empty(); }

  OidPair* data() { return pairs_.data(); }
  const OidPair* data() const { return pairs_.data(); }
  OidPair& operator[](size_t i) { return pairs_[i]; }
  const OidPair& operator[](size_t i) const { return pairs_[i]; }

  std::span<OidPair> span() { return pairs_; }
  std::span<const OidPair> span() const { return pairs_; }

  std::vector<OidPair>& pairs() { return pairs_; }
  const std::vector<OidPair>& pairs() const { return pairs_; }

  void Reserve(size_t n) { pairs_.reserve(n); }
  void Append(oid_t left, oid_t right) { pairs_.push_back({left, right}); }

  /// Copy out one side as a plain oid column.
  std::vector<oid_t> LeftOids() const;
  std::vector<oid_t> RightOids() const;

 private:
  std::vector<OidPair> pairs_;
};

}  // namespace radix::join

#endif  // RADIX_JOIN_JOIN_INDEX_H_
