#include "join/hash_table.h"

#include <algorithm>
#include "common/overflow.h"

namespace radix::join {

void HashTable::Build(std::span<const value_t> keys) {
  keys_ = keys;
  size_t n = keys.size();
  CheckOidCapacity(n);  // chain heads store i + 1 as uint32
  size_t buckets = NextPowerOfTwo(n == 0 ? 1 : n);
  buckets_.assign(buckets, 0);
  next_.assign(n, 0);
  mask_ = buckets - 1;
  for (size_t i = 0; i < n; ++i) {
    uint64_t h = Bucket(keys[i], mask_);
    next_[i] = buckets_[h];
    buckets_[h] = static_cast<uint32_t>(i + 1);
  }
}

size_t HashTable::MaxChainLength() const {
  size_t max_chain = 0;
  for (uint32_t head : buckets_) {
    size_t chain = 0;
    for (uint32_t i = head; i != 0; i = next_[i - 1]) ++chain;
    max_chain = std::max(max_chain, chain);
  }
  return max_chain;
}

}  // namespace radix::join
