#ifndef RADIX_JOIN_NSM_JOIN_H_
#define RADIX_JOIN_NSM_JOIN_H_

#include <cstdint>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/types.h"
#include "hardware/memory_hierarchy.h"
#include "join/join_index.h"
#include "storage/nsm.h"

namespace radix::join {

/// NSM pre-projection (the strategy of "almost all commercial database
/// systems", paper §1.1): the table scans extract key + π projected
/// attributes into tuple-at-a-time intermediates, and those projected
/// values travel as "extra luggage" through the whole join pipeline.
///
/// An intermediate tuple is [key, attr_1 .. attr_pi] (all 4-byte values);
/// the hash join emits result rows [left attrs..., right attrs...].
///
/// Because the projected attribute list is a run-time parameter, the inner
/// loops here have the "degree of freedom" the paper contrasts with
/// MonetDB's hard-coded column kernels — deliberately kept, since that CPU
/// overhead is part of what Fig. 10a measures.
class NsmPreProjection {
 public:
  /// Row-major intermediate: n rows of (1 + pi [+ 1]) values each. When a
  /// varchar projection rides along, the scan additionally carries the
  /// source row's oid as a trailing column — extra luggage through the
  /// whole join pipeline, the row-store analogue of dragging the string
  /// payloads themselves (§1.1) — so the join can emit result-order oids
  /// for the post-join varchar gathers.
  struct Intermediate {
    AlignedBuffer buffer;
    size_t rows = 0;
    size_t width = 0;  ///< values per row, = 1 + pi + (has_oid ? 1 : 0)
    bool has_oid = false;

    /// Projected payload values per row (excludes key and carried oid).
    size_t payload_width() const { return width - 1 - (has_oid ? 1 : 0); }

    value_t* row(size_t i) { return buffer.As<value_t>() + i * width; }
    const value_t* row(size_t i) const {
      return buffer.As<value_t>() + i * width;
    }
  };

  /// Scan `rel`, extracting the key and the first `pi` payload attributes
  /// (attrs 1..pi) of every record; `carry_oid` appends the row's oid as a
  /// trailing hidden column (see Intermediate).
  static Intermediate Scan(const storage::NsmRelation& rel, size_t pi,
                           bool carry_oid = false);

  /// Naive hash join of two intermediates ("NSM-pre-hash"): build on right,
  /// probe with left, copy both sides' payloads per match. When both
  /// intermediates carry oids and `result_oids` is non-null, the matching
  /// (left, right) oid pair of every result row is appended to it in
  /// result order.
  static storage::NsmResult HashJoinRows(
      const Intermediate& left, const Intermediate& right,
      std::vector<cluster::OidPair>* result_oids = nullptr);

  /// Partitioned hash join ("NSM-pre-phash"): radix-cluster both
  /// intermediates on hash(key) into 2^bits clusters (multi-pass per the
  /// TLB constraint), then hash-join matching clusters. `result_oids` as
  /// in HashJoinRows.
  static storage::NsmResult PartitionedHashJoinRows(
      Intermediate& left, Intermediate& right,
      const hardware::MemoryHierarchy& hw, radix_bits_t bits, uint32_t passes,
      std::vector<cluster::OidPair>* result_oids = nullptr);

  /// Cluster an intermediate in place on hash(key); returns 2^bits + 1
  /// offsets. Exposed for tests.
  static std::vector<uint64_t> ClusterRows(Intermediate& inter,
                                           radix_bits_t bits, uint32_t passes);
};

}  // namespace radix::join

#endif  // RADIX_JOIN_NSM_JOIN_H_
