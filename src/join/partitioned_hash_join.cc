#include "join/partitioned_hash_join.h"
#include "common/overflow.h"

#include <algorithm>

#include "cluster/partition_plan.h"
#include "common/hash.h"
#include "common/simd_kernels.h"
#include "join/hash_join.h"
#include "storage/column.h"

namespace radix::join {

using cluster::ClusterBorders;
using cluster::ClusterSpec;
using cluster::KeyOid;

cluster::ClusterBorders ClusterKeyOid(std::span<const value_t> keys,
                                      std::span<cluster::KeyOid> out,
                                      radix_bits_t total_bits, uint32_t passes,
                                      ThreadPool* pool) {
  RADIX_CHECK(out.size() == keys.size());
  CheckOidCapacity(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    out[i] = {keys[i], static_cast<oid_t>(i)};
  }
  ClusterSpec spec;
  spec.total_bits = total_bits;
  spec.ignore_bits = 0;
  spec.passes = std::max<uint32_t>(1, passes);
  storage::Column<KeyOid> scratch(out.size());
  auto radix = [](const KeyOid& t) -> uint64_t { return KeyHash{}(t.key); };
  if (pool != nullptr && pool->num_threads() > 1) {
    return cluster::RadixClusterMultiPassParallel(
        out.data(), scratch.data(), out.size(), radix, spec, *pool);
  }
  simcache::NoTracer tracer;
  return cluster::RadixClusterMultiPass(out.data(), scratch.data(), out.size(),
                                        radix, spec, tracer);
}

JoinIndex PartitionedHashJoin(std::span<const value_t> left_keys,
                              std::span<const value_t> right_keys,
                              const hardware::MemoryHierarchy& hw,
                              const PartitionedHashJoinOptions& options) {
  radix_bits_t bits = options.radix_bits;
  if (bits == PartitionedHashJoinOptions::kAutoBits) {
    bits = cluster::PartitionedJoinBits(right_keys.size(), sizeof(KeyOid), hw);
  }
  if (bits == 0) {
    return HashJoin(left_keys, right_keys);
  }
  radix_bits_t per_pass =
      options.max_pass_bits != 0 ? options.max_pass_bits : cluster::MaxPassBits(hw);
  uint32_t passes = (bits + per_pass - 1) / per_pass;

  ThreadPool* pool =
      options.pool != nullptr && options.pool->num_threads() > 1
          ? options.pool
          : nullptr;

  storage::Column<KeyOid> left(left_keys.size());
  storage::Column<KeyOid> right(right_keys.size());
  ClusterBorders lb = ClusterKeyOid(left_keys, left.span(), bits, passes, pool);
  ClusterBorders rb =
      ClusterKeyOid(right_keys, right.span(), bits, passes, pool);

  size_t clusters = lb.num_clusters();
  RADIX_CHECK(clusters == rb.num_clusters());

  if (pool == nullptr) {
    JoinIndex out;
    out.Reserve(std::max(left_keys.size(), right_keys.size()));
    for (size_t c = 0; c < clusters; ++c) {
      std::span<const KeyOid> lc{left.data() + lb.start(c),
                                 static_cast<size_t>(lb.size(c))};
      std::span<const KeyOid> rc{right.data() + rb.start(c),
                                 static_cast<size_t>(rb.size(c))};
      if (lc.empty() || rc.empty()) continue;
      HashJoinKeyOid(lc, rc, &out);
    }
    return out;
  }

  // Parallel join phase: clusters are disjoint, so each one joins into a
  // private shard; concatenating the shards in cluster order reproduces
  // the serial output byte-for-byte.
  std::vector<std::vector<OidPair>> shards(clusters);
  pool->ParallelFor(clusters, [&](size_t c) {
    std::span<const KeyOid> lc{left.data() + lb.start(c),
                               static_cast<size_t>(lb.size(c))};
    std::span<const KeyOid> rc{right.data() + rb.start(c),
                               static_cast<size_t>(rb.size(c))};
    if (lc.empty() || rc.empty()) return;
    JoinIndex local;
    HashJoinKeyOid(lc, rc, &local);
    shards[c] = std::move(local.pairs());
  });

  std::vector<uint64_t> sizes(clusters);
  for (size_t c = 0; c < clusters; ++c) sizes[c] = shards[c].size();
  std::vector<uint64_t> offsets(clusters + 1);
  simd::Kernels().prefix_sum(sizes.data(), clusters, offsets.data());

  JoinIndex out;
  out.pairs().resize(offsets[clusters]);
  pool->ParallelFor(clusters, [&](size_t c) {
    if (shards[c].empty()) return;
    std::copy(shards[c].begin(), shards[c].end(),
              out.pairs().begin() + static_cast<ptrdiff_t>(offsets[c]));
  });
  return out;
}

}  // namespace radix::join
