#ifndef RADIX_JOIN_PARTITIONED_HASH_JOIN_H_
#define RADIX_JOIN_PARTITIONED_HASH_JOIN_H_

#include <span>

#include "cluster/radix_cluster.h"
#include "common/thread_pool.h"
#include "common/types.h"
#include "hardware/memory_hierarchy.h"
#include "join/join_index.h"

namespace radix::join {

/// Options for Partitioned Hash-Join [SKN94] paired with Radix-Cluster
/// [BMK99] (paper §2): both inputs are radix-clustered on the same B bits
/// of hash(key), then matching clusters are hash-joined; each inner cluster
/// (plus hash table) fits the cache.
struct PartitionedHashJoinOptions {
  /// Total radix bits B; kAutoBits picks from cache geometry.
  static constexpr radix_bits_t kAutoBits = ~radix_bits_t{0};
  radix_bits_t radix_bits = kAutoBits;
  /// Per-pass fan-out cap (cursor/TLB constraint); 0 = from hardware.
  radix_bits_t max_pass_bits = 0;
  /// Worker pool: clustering runs the parallel multi-pass driver and the
  /// per-cluster hash joins fan out as independent work items (clusters
  /// are disjoint by construction — the same independence Radix-Decluster
  /// exploits). null or size-1 runs the byte-identical serial path.
  ThreadPool* pool = nullptr;
};

/// Join key columns, emitting the [left-oid, right-oid] join index. With
/// radix_bits == 0 this degenerates to naive HashJoin (the "0 = unclustered"
/// point of Figs. 9b).
JoinIndex PartitionedHashJoin(std::span<const value_t> left_keys,
                              std::span<const value_t> right_keys,
                              const hardware::MemoryHierarchy& hw,
                              const PartitionedHashJoinOptions& options = {});

/// The clustering phase in isolation: materialize (key, oid) pairs and
/// radix-cluster them on hash(key). Exposed for benchmarks (Fig. 9a) and
/// for strategies that interleave clustering with payload handling. A
/// non-null pool with >1 thread runs the parallel cluster driver
/// (byte-identical output).
cluster::ClusterBorders ClusterKeyOid(std::span<const value_t> keys,
                                      std::span<cluster::KeyOid> out,
                                      radix_bits_t total_bits, uint32_t passes,
                                      ThreadPool* pool = nullptr);

}  // namespace radix::join

#endif  // RADIX_JOIN_PARTITIONED_HASH_JOIN_H_
