#include "join/join_index.h"

namespace radix::join {

std::vector<oid_t> JoinIndex::LeftOids() const {
  std::vector<oid_t> out(pairs_.size());
  for (size_t i = 0; i < pairs_.size(); ++i) out[i] = pairs_[i].left;
  return out;
}

std::vector<oid_t> JoinIndex::RightOids() const {
  std::vector<oid_t> out(pairs_.size());
  for (size_t i = 0; i < pairs_.size(); ++i) out[i] = pairs_[i].right;
  return out;
}

}  // namespace radix::join
