#ifndef RADIX_JOIN_JIVE_JOIN_H_
#define RADIX_JOIN_JIVE_JOIN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "join/join_index.h"
#include "storage/nsm.h"

namespace radix::join {

/// Jive-Join [Li & Ross, VLDBJ 8(1), 1999], re-targeted from its original
/// I/O setting to the CPU-cache setting, as in paper §4.2 ("NSM-post-jive").
///
/// Precondition: the join index is sorted on the left oids. Phase 1 ("Left
/// Jive-Join") merges it sequentially with the left relation, emitting the
/// left half of the result in final result order, while scattering
/// (result-position, right-oid) entries into 2^B clusters by right-oid
/// range. Phase 2 ("Right Jive-Join") processes each cluster: sorts its
/// entries by right oid (for a sequential-ish fetch confined to that
/// cluster's oid range), fetches the right values, and writes them back at
/// the recorded result positions.
///
/// Tuning trade-off (Figs. 9e/9f): too many clusters and phase 1 thrashes
/// its output cursors like single-pass Radix-Cluster; too few and phase 2's
/// fetch region exceeds the cache like unpartitioned Hash-Join.
struct JiveJoinOptions {
  radix_bits_t cluster_bits = 6;  ///< B: number of phase-1 output clusters
};

/// One phase-1 cluster entry.
struct JiveEntry {
  oid_t result_pos;
  oid_t right_oid;
};

/// Intermediate state between the two phases; exposed so benchmarks can
/// time Left and Right Jive-Join separately (Figs. 9e and 9f).
struct JiveIntermediate {
  std::vector<JiveEntry> entries;      ///< clustered on right-oid range
  std::vector<uint64_t> cluster_offsets;  ///< size 2^B + 1
  oid_t right_cardinality = 0;
  radix_bits_t shift = 0;  ///< right_oid >> shift = cluster id
};

/// Phase 1 over DSM columns: left projection columns are filled in result
/// order; returns the clustered (result_pos, right_oid) intermediate.
/// `index` must be sorted by left oid.
JiveIntermediate LeftJiveJoinDsm(
    std::span<const OidPair> index,
    const std::vector<std::span<const value_t>>& left_columns,
    const std::vector<std::span<value_t>>& left_out, oid_t right_cardinality,
    const JiveJoinOptions& options);

/// Phase 2 over DSM columns: per cluster, sort by right oid, fetch each
/// right projection column, write to the recorded result positions.
void RightJiveJoinDsm(JiveIntermediate& inter,
                      const std::vector<std::span<const value_t>>& right_columns,
                      const std::vector<std::span<value_t>>& right_out);

/// Phase 1 over an NSM relation: copies pi_left attributes (attrs 1..pi)
/// of each left record into the row-major result.
JiveIntermediate LeftJiveJoinNsm(std::span<const OidPair> index,
                                 const storage::NsmRelation& left,
                                 size_t pi_left, storage::NsmResult* result,
                                 oid_t right_cardinality,
                                 const JiveJoinOptions& options);

/// Phase 2 over an NSM relation: fetches pi_right attributes of right
/// records, writing them at column offset `out_offset` of each result row.
void RightJiveJoinNsm(JiveIntermediate& inter,
                      const storage::NsmRelation& right, size_t pi_right,
                      size_t out_offset, storage::NsmResult* result);

}  // namespace radix::join

#endif  // RADIX_JOIN_JIVE_JOIN_H_
