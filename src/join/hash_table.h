#ifndef RADIX_JOIN_HASH_TABLE_H_
#define RADIX_JOIN_HASH_TABLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/bits.h"
#include "common/hash.h"
#include "common/types.h"

namespace radix::join {

/// Bucket-chained hash table over a (key, position) array, the classic
/// main-memory join hash table: `buckets_[h]` holds 1 + the index of the
/// first entry with that hash; `next_[i]` chains collisions. Positions are
/// the build side's tuple indices, so probing yields oids directly.
///
/// The build side's random writes and the probe's random reads over
/// buckets_/next_ are exactly the access pattern Partitioned Hash-Join
/// shrinks below cache size (paper §2.1: r_trav on build, r_acc on probe).
class HashTable {
 public:
  HashTable() = default;

  /// Build over `keys` (whole array), with positions offset by `base_oid`
  /// (used by the partitioned variant where keys is one cluster).
  void Build(std::span<const value_t> keys);

  /// Bucket index: the hash's UPPER 32 bits. Radix-Cluster consumes the
  /// lower B hash bits, so keys within one cluster share them; bucketing
  /// on disjoint bits keeps per-cluster tables uniformly filled instead of
  /// collapsing into 1/2^B of the buckets with ~cluster-long chains.
  static uint64_t Bucket(value_t key, uint64_t mask) {
    return (KeyHash{}(key) >> 32) & mask;
  }

  /// Probe with one key; invokes `emit(build_position)` per match.
  template <typename EmitFn>
  void Probe(value_t key, EmitFn&& emit) const {
    for (uint32_t i = buckets_[Bucket(key, mask_)]; i != 0;
         i = next_[i - 1]) {
      if (keys_[i - 1] == key) emit(static_cast<oid_t>(i - 1));
    }
  }

  size_t num_buckets() const { return buckets_.size(); }
  size_t size() const { return keys_.size(); }

  /// Longest collision chain; diagnostic for bucket dispersion. With a
  /// sound bucket function this stays O(1) for distinct keys even when the
  /// build side is one radix cluster (keys sharing their low hash bits).
  size_t MaxChainLength() const;

  /// Bytes of auxiliary state (buckets + chain); with the keys themselves
  /// this is what must fit in cache for a per-cluster join to behave.
  size_t footprint_bytes() const {
    return buckets_.size() * sizeof(uint32_t) + next_.size() * sizeof(uint32_t);
  }

 private:
  std::span<const value_t> keys_;
  std::vector<uint32_t> buckets_;  // 1-based entry index, 0 = empty
  std::vector<uint32_t> next_;     // chain, 1-based, 0 = end
  uint64_t mask_ = 0;
};

}  // namespace radix::join

#endif  // RADIX_JOIN_HASH_TABLE_H_
