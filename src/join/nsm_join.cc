#include "join/nsm_join.h"
#include "common/overflow.h"

#include <cstring>

#include "common/bits.h"
#include "common/hash.h"
#include "common/macros.h"

namespace radix::join {

NsmPreProjection::Intermediate NsmPreProjection::Scan(
    const storage::NsmRelation& rel, size_t pi, bool carry_oid) {
  RADIX_CHECK(pi + 1 <= rel.num_attrs());
  Intermediate inter;
  inter.rows = rel.cardinality();
  inter.has_oid = carry_oid;
  inter.width = 1 + pi + (carry_oid ? 1 : 0);
  inter.buffer.Resize(inter.rows * inter.width * sizeof(value_t));
  // Tuple-at-a-time extraction: per record, copy key + pi attributes. The
  // source scan is sequential but uses only (1+pi)/omega of each line —
  // NSM's bandwidth penalty at low projectivity (paper §4.2).
  for (size_t i = 0; i < inter.rows; ++i) {
    const value_t* rec = rel.record(i);
    value_t* out = inter.row(i);
    out[0] = rec[0];
    for (size_t a = 0; a < pi; ++a) out[1 + a] = rec[1 + a];
    if (carry_oid) out[1 + pi] = static_cast<value_t>(i);
  }
  return inter;
}

namespace {

/// Bucket-chained table over intermediate rows (key at offset 0).
class RowTable {
 public:
  RowTable(const NsmPreProjection::Intermediate& build, size_t begin,
           size_t end)
      : build_(build), begin_(begin) {
    size_t n = end - begin;
    CheckOidCapacity(n);  // chain heads store i + 1 as uint32
    size_t buckets = NextPowerOfTwo(n == 0 ? 1 : n);
    mask_ = buckets - 1;
    heads_.assign(buckets, 0);
    next_.assign(n, 0);
    for (size_t i = 0; i < n; ++i) {
      uint64_t h = Bucket(build.row(begin + i)[0]);
      next_[i] = heads_[h];
      heads_[h] = static_cast<uint32_t>(i + 1);
    }
  }

  template <typename EmitFn>
  void Probe(value_t key, EmitFn&& emit) const {
    for (uint32_t i = heads_[Bucket(key)]; i != 0; i = next_[i - 1]) {
      size_t row = begin_ + i - 1;
      if (build_.row(row)[0] == key) emit(row);
    }
  }

  /// Upper hash bits, disjoint from the radix-cluster bits, so that the
  /// per-cluster tables of the partitioned variant stay uniformly filled.
  uint64_t Bucket(value_t key) const {
    return (KeyHash{}(key) >> 32) & mask_;
  }

 private:
  const NsmPreProjection::Intermediate& build_;
  size_t begin_;
  std::vector<uint32_t> heads_;
  std::vector<uint32_t> next_;
  uint64_t mask_;
};

/// Join rows of left[lbegin, lend) with right[rbegin, rend), appending
/// result rows [left payload..., right payload...]; carried oids are
/// excluded from the payload copy and instead emitted as pairs into
/// `out_oids` (when requested) in the same result order.
void JoinRange(const NsmPreProjection::Intermediate& left, size_t lbegin,
               size_t lend, const NsmPreProjection::Intermediate& right,
               size_t rbegin, size_t rend, std::vector<value_t>* out_rows,
               std::vector<cluster::OidPair>* out_oids) {
  if (lbegin == lend || rbegin == rend) return;
  RowTable table(right, rbegin, rend);
  size_t lpi = left.payload_width();
  size_t rpi = right.payload_width();
  for (size_t i = lbegin; i < lend; ++i) {
    const value_t* lrow = left.row(i);
    table.Probe(lrow[0], [&](size_t rrow_idx) {
      const value_t* rrow = right.row(rrow_idx);
      size_t base = out_rows->size();
      out_rows->resize(base + lpi + rpi);
      value_t* dst = out_rows->data() + base;
      for (size_t a = 0; a < lpi; ++a) dst[a] = lrow[1 + a];
      for (size_t a = 0; a < rpi; ++a) dst[lpi + a] = rrow[1 + a];
      if (out_oids != nullptr) {
        out_oids->push_back(
            {static_cast<oid_t>(static_cast<uint32_t>(lrow[left.width - 1])),
             static_cast<oid_t>(
                 static_cast<uint32_t>(rrow[right.width - 1]))});
      }
    });
  }
}

storage::NsmResult RowsToResult(const std::vector<value_t>& rows,
                                size_t width) {
  storage::NsmResult result(width == 0 ? 0 : rows.size() / width, width);
  // Empty joins: data() of an empty vector may be null, and memcpy's
  // nonnull contract makes that UB even at size 0 (UBSan-caught).
  if (!rows.empty()) {
    std::memcpy(result.row(0), rows.data(), rows.size() * sizeof(value_t));
  }
  return result;
}

}  // namespace

storage::NsmResult NsmPreProjection::HashJoinRows(
    const Intermediate& left, const Intermediate& right,
    std::vector<cluster::OidPair>* result_oids) {
  RADIX_CHECK(result_oids == nullptr || (left.has_oid && right.has_oid));
  size_t width = left.payload_width() + right.payload_width();
  std::vector<value_t> rows;
  rows.reserve(left.rows * width);
  JoinRange(left, 0, left.rows, right, 0, right.rows, &rows, result_oids);
  return RowsToResult(rows, width);
}

std::vector<uint64_t> NsmPreProjection::ClusterRows(Intermediate& inter,
                                                    radix_bits_t bits,
                                                    uint32_t passes) {
  size_t width_bytes = inter.width * sizeof(value_t);
  size_t n = inter.rows;
  AlignedBuffer scratch(n * width_bytes);
  uint8_t* src = inter.buffer.data();
  uint8_t* dst = scratch.data();

  std::vector<uint64_t> offsets{0, n};
  if (bits == 0 || n == 0) return offsets;
  passes = std::max<uint32_t>(1, passes);
  radix_bits_t base_bits = bits / passes;
  radix_bits_t extra = bits % passes;
  uint32_t bits_done = 0;

  for (uint32_t p = 0; p < passes; ++p) {
    radix_bits_t bp = base_bits + (p < extra ? 1 : 0);
    if (bp == 0) continue;
    bits_done += bp;
    uint32_t shift = bits - bits_done;
    std::vector<uint64_t> new_offsets;
    new_offsets.reserve(((offsets.size() - 1) << bp) + 1);
    new_offsets.push_back(0);
    size_t buckets = size_t{1} << bp;
    std::vector<uint64_t> histogram(buckets);
    for (size_t c = 0; c + 1 < offsets.size(); ++c) {
      uint64_t begin = offsets[c], end = offsets[c + 1];
      std::fill(histogram.begin(), histogram.end(), 0);
      for (uint64_t i = begin; i < end; ++i) {
        value_t key = *reinterpret_cast<value_t*>(src + i * width_bytes);
        ++histogram[RadixBits(KeyHash{}(key), shift, bp)];
      }
      std::vector<uint64_t> cursor(buckets, begin);
      for (size_t b = 1; b < buckets; ++b) {
        cursor[b] = cursor[b - 1] + histogram[b - 1];
      }
      for (size_t b = 0; b < buckets; ++b) {
        new_offsets.push_back(cursor[b] + histogram[b]);
      }
      for (uint64_t i = begin; i < end; ++i) {
        value_t key = *reinterpret_cast<value_t*>(src + i * width_bytes);
        uint64_t& at = cursor[RadixBits(KeyHash{}(key), shift, bp)];
        std::memcpy(dst + at * width_bytes, src + i * width_bytes,
                    width_bytes);
        ++at;
      }
    }
    offsets = std::move(new_offsets);
    std::swap(src, dst);
  }
  if (src != inter.buffer.data()) {
    std::memcpy(inter.buffer.data(), src, n * width_bytes);
  }
  return offsets;
}

storage::NsmResult NsmPreProjection::PartitionedHashJoinRows(
    Intermediate& left, Intermediate& right,
    const hardware::MemoryHierarchy& /*hw*/, radix_bits_t bits,
    uint32_t passes, std::vector<cluster::OidPair>* result_oids) {
  RADIX_CHECK(result_oids == nullptr || (left.has_oid && right.has_oid));
  std::vector<uint64_t> lo = ClusterRows(left, bits, passes);
  std::vector<uint64_t> ro = ClusterRows(right, bits, passes);
  RADIX_CHECK(lo.size() == ro.size());
  size_t width = left.payload_width() + right.payload_width();
  std::vector<value_t> rows;
  rows.reserve(left.rows * width);
  for (size_t c = 0; c + 1 < lo.size(); ++c) {
    JoinRange(left, lo[c], lo[c + 1], right, ro[c], ro[c + 1], &rows,
              result_oids);
  }
  return RowsToResult(rows, width);
}

}  // namespace radix::join
