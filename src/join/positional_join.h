#ifndef RADIX_JOIN_POSITIONAL_JOIN_H_
#define RADIX_JOIN_POSITIONAL_JOIN_H_

#include <algorithm>
#include <bit>
#include <span>
#include <type_traits>
#include <vector>

#include "cluster/radix_cluster.h"
#include "common/simd_kernels.h"
#include "common/thread_pool.h"
#include "common/types.h"
#include "simcache/mem_tracer.h"
#include "storage/varchar.h"

namespace radix::join {

namespace detail {

/// Whether the untraced gather over `source_rows` values of T can run the
/// dispatched SIMD kernel: 4-byte values only, and the source must stay
/// addressable by the sign-extended 32-bit indices hardware gathers use.
/// (Little-endian is additionally required by the pair-sided variants,
/// which reinterpret OidPair as a 64-bit word and pick a 32-bit half.)
template <typename T>
inline bool CanDispatchGather(size_t source_rows) {
  return std::is_same_v<T, value_t> && source_rows <= simd::kMaxGatherIndex;
}

inline constexpr bool kLittleEndian =
    std::endian::native == std::endian::little;

}  // namespace detail

/// Positional-Join (pointer-based join, §3): result[i] = values[ids[i]].
/// In MonetDB a column is an array, so this is the whole projection kernel;
/// its *memory behaviour* depends entirely on the order of `ids`:
///   unsorted  -> r_acc over the source column,
///   sorted    -> s_trav (oids ascending),
///   clustered -> per-cluster random access confined to a cache-sized
///                region (the "partial-cluster" strategy of §3.1).
/// The code is the same; the names exist so benchmarks/tests say which
/// input order they exercise.
template <typename T, typename Tracer = simcache::NoTracer>
void PositionalJoin(std::span<const oid_t> ids, std::span<const T> values,
                    std::span<T> out, Tracer* tracer = nullptr) {
  const oid_t* id = ids.data();
  const T* v = values.data();
  T* o = out.data();
  size_t n = ids.size();
  if constexpr (!Tracer::kEnabled && std::is_same_v<T, value_t>) {
    if (detail::CanDispatchGather<T>(values.size())) {
      simd::Kernels().gather_i32(id, n, v, o);
      return;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if constexpr (Tracer::kEnabled) {
      tracer->Touch(&id[i], sizeof(oid_t));
      tracer->Touch(&v[id[i]], sizeof(T));
      tracer->Touch(&o[i], sizeof(T));
    }
    o[i] = v[id[i]];
  }
}

/// Positional-Join taking one side of a join index directly (avoids
/// materializing an oid column).
template <typename T, bool kLeft, typename Tracer = simcache::NoTracer>
void PositionalJoinPairs(std::span<const cluster::OidPair> index,
                         std::span<const T> values, std::span<T> out,
                         Tracer* tracer = nullptr) {
  const cluster::OidPair* p = index.data();
  const T* v = values.data();
  T* o = out.data();
  size_t n = index.size();
  if constexpr (!Tracer::kEnabled && std::is_same_v<T, value_t> &&
                detail::kLittleEndian) {
    if (detail::CanDispatchGather<T>(values.size())) {
      // OidPair is an 8-byte {left, right}; little-endian makes `left` the
      // low half of the 64-bit word.
      const auto* words = reinterpret_cast<const uint64_t*>(p);
      const simd::KernelTable& kernels = simd::Kernels();
      (kLeft ? kernels.gather_pairs_lo_i32 : kernels.gather_pairs_hi_i32)(
          words, n, v, o);
      return;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    oid_t id = kLeft ? p[i].left : p[i].right;
    if constexpr (Tracer::kEnabled) {
      tracer->Touch(&p[i], sizeof(cluster::OidPair));
      tracer->Touch(&v[id], sizeof(T));
      tracer->Touch(&o[i], sizeof(T));
    }
    o[i] = v[id];
  }
}

/// Range-restricted Positional-Join: out[i - begin] = values[ids[i]] for
/// i in [begin, end). `out` is the chunk-local base, so a streamed gather
/// can land in a chunk buffer; passing `full_out + begin` reproduces the
/// unrestricted kernel one slice at a time. The building block of both the
/// chunked pipeline gather and the parallel per-column gather below.
template <typename T>
void PositionalJoinRange(std::span<const oid_t> ids, size_t begin, size_t end,
                         std::span<const T> values, T* out) {
  RADIX_DCHECK(begin <= end && end <= ids.size());
  const oid_t* id = ids.data();
  const T* v = values.data();
  if constexpr (std::is_same_v<T, value_t>) {
    if (detail::CanDispatchGather<T>(values.size())) {
      simd::Kernels().gather_i32(id + begin, end - begin, v, out);
      return;
    }
  }
  for (size_t i = begin; i < end; ++i) {
    out[i - begin] = v[id[i]];
  }
}

/// Range-restricted PositionalJoinPairs (same out convention as
/// PositionalJoinRange).
template <typename T, bool kLeft>
void PositionalJoinPairsRange(std::span<const cluster::OidPair> index,
                              size_t begin, size_t end,
                              std::span<const T> values, T* out) {
  RADIX_DCHECK(begin <= end && end <= index.size());
  const cluster::OidPair* p = index.data();
  const T* v = values.data();
  if constexpr (std::is_same_v<T, value_t> && detail::kLittleEndian) {
    if (detail::CanDispatchGather<T>(values.size())) {
      const auto* words = reinterpret_cast<const uint64_t*>(p + begin);
      const simd::KernelTable& kernels = simd::Kernels();
      (kLeft ? kernels.gather_pairs_lo_i32 : kernels.gather_pairs_hi_i32)(
          words, end - begin, v, out);
      return;
    }
  }
  for (size_t i = begin; i < end; ++i) {
    out[i - begin] = v[kLeft ? p[i].left : p[i].right];
  }
}

/// Varchar Positional-Join off one side of a join index (the varchar
/// analogue of PositionalJoinPairs): gathers values[id] for the chosen
/// side's oids into a fresh offsets+heap column. Like
/// storage::PositionalJoinVarchar this is an offset-array lookup plus a
/// heap dereference per tuple — a second, correlated random stream whose
/// cache behaviour scales with the average string length.
storage::VarcharColumn PositionalJoinVarcharPairs(
    std::span<const cluster::OidPair> index, bool left_side,
    const storage::VarcharColumn& values);

namespace detail {

/// Slice count for the parallel gathers: ~2 items per thread per column,
/// but never slices producing less than ~4 KiB of output — tinier items
/// would be all scheduling overhead.
template <typename T>
size_t GatherSlices(size_t n, const ThreadPool& pool) {
  size_t min_rows = std::max<size_t>(1, 4096 / sizeof(T));
  return std::clamp<size_t>(n / min_rows, 1, pool.num_threads() * 2);
}

}  // namespace detail

/// The per-column positional-join gather loop, parallelized over
/// (column x row-slice) work items (the ROADMAP follow-up from the thread
/// pool PR). Byte-identical to the serial loop: items write disjoint output
/// ranges and read shared immutable inputs, so only the write order varies.
/// A null or size-1 pool runs the exact serial loop.
template <typename T>
void PositionalJoinColumns(std::span<const oid_t> ids,
                           const std::vector<std::span<const T>>& columns,
                           const std::vector<std::span<T>>& outs,
                           ThreadPool* pool) {
  RADIX_CHECK(columns.size() == outs.size());
  size_t n = ids.size();
  if (pool == nullptr || pool->num_threads() <= 1 || n == 0 ||
      columns.empty()) {
    for (size_t a = 0; a < columns.size(); ++a) {
      PositionalJoin<T>(ids, columns[a], outs[a]);
    }
    return;
  }
  size_t slices = detail::GatherSlices<T>(n, *pool);
  pool->ParallelFor(columns.size() * slices, [&](size_t item) {
    size_t a = item / slices;
    size_t s = item % slices;
    size_t begin = n * s / slices;
    size_t end = n * (s + 1) / slices;
    PositionalJoinRange<T>(ids, begin, end, columns[a],
                           outs[a].data() + begin);
  });
}

/// Parallel per-column gather off a join index side; see
/// PositionalJoinColumns for the contract.
template <typename T, bool kLeft>
void PositionalJoinPairsColumns(std::span<const cluster::OidPair> index,
                                const std::vector<std::span<const T>>& columns,
                                const std::vector<std::span<T>>& outs,
                                ThreadPool* pool) {
  RADIX_CHECK(columns.size() == outs.size());
  size_t n = index.size();
  if (pool == nullptr || pool->num_threads() <= 1 || n == 0 ||
      columns.empty()) {
    for (size_t a = 0; a < columns.size(); ++a) {
      PositionalJoinPairs<T, kLeft>(index, columns[a], outs[a]);
    }
    return;
  }
  size_t slices = detail::GatherSlices<T>(n, *pool);
  pool->ParallelFor(columns.size() * slices, [&](size_t item) {
    size_t a = item / slices;
    size_t s = item % slices;
    size_t begin = n * s / slices;
    size_t end = n * (s + 1) / slices;
    PositionalJoinPairsRange<T, kLeft>(index, begin, end, columns[a],
                                       outs[a].data() + begin);
  });
}

}  // namespace radix::join

#endif  // RADIX_JOIN_POSITIONAL_JOIN_H_
