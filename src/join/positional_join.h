#ifndef RADIX_JOIN_POSITIONAL_JOIN_H_
#define RADIX_JOIN_POSITIONAL_JOIN_H_

#include <span>

#include "cluster/radix_cluster.h"
#include "common/types.h"
#include "simcache/mem_tracer.h"

namespace radix::join {

/// Positional-Join (pointer-based join, §3): result[i] = values[ids[i]].
/// In MonetDB a column is an array, so this is the whole projection kernel;
/// its *memory behaviour* depends entirely on the order of `ids`:
///   unsorted  -> r_acc over the source column,
///   sorted    -> s_trav (oids ascending),
///   clustered -> per-cluster random access confined to a cache-sized
///                region (the "partial-cluster" strategy of §3.1).
/// The code is the same; the names exist so benchmarks/tests say which
/// input order they exercise.
template <typename T, typename Tracer = simcache::NoTracer>
void PositionalJoin(std::span<const oid_t> ids, std::span<const T> values,
                    std::span<T> out, Tracer* tracer = nullptr) {
  const oid_t* id = ids.data();
  const T* v = values.data();
  T* o = out.data();
  size_t n = ids.size();
  for (size_t i = 0; i < n; ++i) {
    if constexpr (Tracer::kEnabled) {
      tracer->Touch(&id[i], sizeof(oid_t));
      tracer->Touch(&v[id[i]], sizeof(T));
      tracer->Touch(&o[i], sizeof(T));
    }
    o[i] = v[id[i]];
  }
}

/// Positional-Join taking one side of a join index directly (avoids
/// materializing an oid column).
template <typename T, bool kLeft, typename Tracer = simcache::NoTracer>
void PositionalJoinPairs(std::span<const cluster::OidPair> index,
                         std::span<const T> values, std::span<T> out,
                         Tracer* tracer = nullptr) {
  const cluster::OidPair* p = index.data();
  const T* v = values.data();
  T* o = out.data();
  size_t n = index.size();
  for (size_t i = 0; i < n; ++i) {
    oid_t id = kLeft ? p[i].left : p[i].right;
    if constexpr (Tracer::kEnabled) {
      tracer->Touch(&p[i], sizeof(cluster::OidPair));
      tracer->Touch(&v[id], sizeof(T));
      tracer->Touch(&o[i], sizeof(T));
    }
    o[i] = v[id];
  }
}

}  // namespace radix::join

#endif  // RADIX_JOIN_POSITIONAL_JOIN_H_
