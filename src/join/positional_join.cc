#include "join/positional_join.h"

// Template instantiations for the common cases keep rebuilds fast.
namespace radix::join {
template void PositionalJoin<value_t, simcache::NoTracer>(
    std::span<const oid_t>, std::span<const value_t>, std::span<value_t>,
    simcache::NoTracer*);
template void PositionalJoin<value_t, simcache::MemTracer>(
    std::span<const oid_t>, std::span<const value_t>, std::span<value_t>,
    simcache::MemTracer*);
}  // namespace radix::join
