#include "join/positional_join.h"

namespace radix::join {

storage::VarcharColumn PositionalJoinVarcharPairs(
    std::span<const cluster::OidPair> index, bool left_side,
    const storage::VarcharColumn& values) {
  return storage::GatherVarchar(
      index.size(),
      [&](size_t i) { return left_side ? index[i].left : index[i].right; },
      values);
}

}  // namespace radix::join

// Template instantiations for the common cases keep rebuilds fast.
namespace radix::join {
template void PositionalJoin<value_t, simcache::NoTracer>(
    std::span<const oid_t>, std::span<const value_t>, std::span<value_t>,
    simcache::NoTracer*);
template void PositionalJoin<value_t, simcache::MemTracer>(
    std::span<const oid_t>, std::span<const value_t>, std::span<value_t>,
    simcache::MemTracer*);
}  // namespace radix::join
