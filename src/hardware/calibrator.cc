#include "hardware/calibrator.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <numeric>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/bits.h"
#include "common/macros.h"
#include "common/rng.h"
#include "common/simd_kernels.h"
#include "common/timer.h"

namespace radix::hardware {

double Calibrator::MeasureChaseLatency(size_t working_set_bytes) const {
  // Build a random cyclic permutation of cache-line-spaced slots, then
  // chase it. Line spacing (64B) ensures every access is a distinct line.
  constexpr size_t kStride = 64;
  size_t slots = std::max<size_t>(working_set_bytes / kStride, 16);
  AlignedBuffer buf(slots * kStride, 4096);
  auto* base = buf.data();

  // Slot indices live in uint32 (half the footprint of size_t during the
  // shuffle); a >256 GiB working set would wrap the iota below.
  RADIX_CHECK(slots <= std::numeric_limits<uint32_t>::max());
  std::vector<uint32_t> order(slots);
  std::iota(order.begin(), order.end(), 0u);
  Rng rng(working_set_bytes ^ 0xabcdefULL);
  for (size_t i = slots - 1; i > 0; --i) {
    size_t j = rng.Below(i + 1);
    std::swap(order[i], order[j]);
  }
  // next-pointer stored at the head of each slot.
  for (size_t i = 0; i < slots; ++i) {
    uint64_t* slot = reinterpret_cast<uint64_t*>(base + size_t{order[i]} * kStride);
    uint32_t next = order[(i + 1) % slots];
    *slot = reinterpret_cast<uint64_t>(base + size_t{next} * kStride);
  }

  size_t steps = options_.accesses_per_point;
  // Warm up one full cycle so the structure is resident where it fits.
  volatile uint64_t* p = reinterpret_cast<uint64_t*>(base + size_t{order[0]} * kStride);
  for (size_t i = 0; i < slots; ++i) p = reinterpret_cast<uint64_t*>(*p);

  Timer timer;
  for (size_t i = 0; i < steps; ++i) p = reinterpret_cast<uint64_t*>(*p);
  double seconds = timer.ElapsedSeconds();
  // Defeat dead-code elimination.
  if (reinterpret_cast<uint64_t>(p) == 1) (void)std::fprintf(stderr, "?");
  return seconds * 1e9 / static_cast<double>(steps);
}

std::vector<Calibrator::LatencyPoint> Calibrator::MeasureLatencyCurve() const {
  std::vector<LatencyPoint> curve;
  for (size_t ws = 4 * 1024; ws <= options_.max_working_set_bytes; ws *= 2) {
    curve.push_back({ws, MeasureChaseLatency(ws)});
    if (options_.verbose) {
      (void)std::fprintf(stderr, "calibrate: ws=%zuKB latency=%.2fns\n",
                         ws / 1024, curve.back().ns_per_access);
    }
  }
  return curve;
}

double Calibrator::MeasureSequentialBandwidthGbs() const {
  size_t bytes = std::min<size_t>(options_.max_working_set_bytes, 64u << 20);
  AlignedBuffer buf(bytes, 4096);
  auto* data = buf.As<uint64_t>();
  size_t words = bytes / sizeof(uint64_t);
  for (size_t i = 0; i < words; ++i) data[i] = i;

  uint64_t sink = 0;
  Timer timer;
  constexpr int kRounds = 4;
  for (int r = 0; r < kRounds; ++r) {
    for (size_t i = 0; i < words; ++i) sink += data[i];
  }
  double seconds = timer.ElapsedSeconds();
  if (sink == 0x12345) (void)std::fprintf(stderr, "?");
  return static_cast<double>(bytes) * kRounds / seconds / 1e9;
}

Calibrator::KernelSpeeds Calibrator::MeasureKernelSpeeds() const {
  // Cache-resident working set: large enough to amortize per-call
  // overhead, small enough (256 KiB of values) to stay in L2 on anything
  // modern, so the timings estimate the pure CPU (per-tuple instruction)
  // term of the cost model.
  constexpr size_t kTuples = 1u << 16;
  constexpr uint32_t kBits = 8;
  constexpr size_t kBuckets = size_t{1} << kBits;
  constexpr int kRounds = 16;
  const simd::KernelTable& kernels = simd::Kernels();

  Rng rng(0xca11b8ULL);
  std::vector<uint32_t> ids(kTuples);
  std::vector<int32_t> values(kTuples);
  std::vector<int32_t> gathered(kTuples);
  std::vector<uint64_t> tuples(kTuples);
  for (size_t i = 0; i < kTuples; ++i) {
    ids[i] = static_cast<uint32_t>(rng.Below(kTuples));
    values[i] = static_cast<int32_t>(rng.Next());
    tuples[i] = rng.Next();
  }

  KernelSpeeds speeds;
  {
    // Warm one round, then time the dispatched gather.
    kernels.gather_i32(ids.data(), kTuples, values.data(), gathered.data());
    Timer timer;
    for (int r = 0; r < kRounds; ++r) {
      kernels.gather_i32(ids.data(), kTuples, values.data(), gathered.data());
    }
    speeds.gather_ns_per_tuple =
        timer.ElapsedSeconds() * 1e9 / (kRounds * kTuples);
  }
  if (gathered[0] == 0x5ca1ab1e) (void)std::fprintf(stderr, "?");
  {
    // One full clustering pass over 8-byte tuples: dispatched histogram +
    // prefix sum, then the scatter through the same path production takes
    // (write-combining when the active tier streams).
    std::vector<uint64_t> hist(kBuckets);
    std::vector<uint64_t> cursor(kBuckets + 1);
    std::vector<uint64_t> out(kTuples);
    std::vector<uint32_t> keys(kTuples);
    for (size_t i = 0; i < kTuples; ++i) {
      keys[i] = static_cast<uint32_t>(tuples[i]);
    }
    Timer timer;
    for (int r = 0; r < kRounds; ++r) {
      std::fill(hist.begin(), hist.end(), 0);
      kernels.radix_histogram(keys.data(), kTuples, 0, kBits, hist.data());
      kernels.prefix_sum(hist.data(), kBuckets, cursor.data());
      if (simd::UseNtScatter(kBuckets, kTuples)) {
        simd::WcScatter64 wc(out.data(), kBuckets, cursor.data());
        for (size_t i = 0; i < kTuples; ++i) {
          wc.Push(RadixBits(keys[i], 0, kBits), tuples[i]);
        }
        wc.Flush();
      } else {
        for (size_t i = 0; i < kTuples; ++i) {
          out[cursor[RadixBits(keys[i], 0, kBits)]++] = tuples[i];
        }
      }
    }
    speeds.cluster_ns_per_tuple =
        timer.ElapsedSeconds() * 1e9 / (kRounds * kTuples);
    if (out[0] == 0x5ca1ab1e) (void)std::fprintf(stderr, "?");
  }
  return speeds;
}

MemoryHierarchy Calibrator::Calibrate(const MemoryHierarchy& base) const {
  MemoryHierarchy h = base;
  // Marginal latency of missing each level: chase latency at a working set
  // well beyond the level, minus latency when comfortably inside it.
  for (CacheLevel& level : h.caches) {
    size_t inside = std::max<size_t>(level.capacity_bytes / 2, 4 * 1024);
    size_t outside = level.capacity_bytes * 4;
    double lat_in = MeasureChaseLatency(inside);
    double lat_out = MeasureChaseLatency(outside);
    if (lat_out > lat_in) level.miss_latency_ns = lat_out - lat_in;
  }
  h.ram_seq_bandwidth_gbs = MeasureSequentialBandwidthGbs();
  return h;
}

}  // namespace radix::hardware
