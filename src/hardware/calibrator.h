#ifndef RADIX_HARDWARE_CALIBRATOR_H_
#define RADIX_HARDWARE_CALIBRATOR_H_

#include <cstddef>
#include <vector>

#include "hardware/memory_hierarchy.h"

namespace radix::hardware {

/// Runtime cache/latency measurement in the spirit of the MonetDB
/// Calibrator referenced by the paper (§1.1): pointer-chase loops over
/// growing working sets detect capacity cliffs and per-level latencies;
/// a streaming loop measures sequential bandwidth.
///
/// The calibrator refines an existing MemoryHierarchy (its geometry may
/// come from sysfs) with *measured* latencies and bandwidth, so that the
/// cost model predicts in the units of the machine it runs on.
class Calibrator {
 public:
  struct Options {
    size_t max_working_set_bytes = 64u << 20;  ///< largest chase footprint
    size_t accesses_per_point = 1u << 22;      ///< chase steps per sample
    bool verbose = false;
  };

  Calibrator() : options_() {}
  explicit Calibrator(Options options) : options_(options) {}

  /// One sample of the latency curve: working-set size -> ns per access.
  struct LatencyPoint {
    size_t working_set_bytes;
    double ns_per_access;
  };

  /// Random-order pointer chase over `working_set` bytes; returns average
  /// ns per dependent load. This is the classic latency measurement: each
  /// load's address depends on the previous load, so no overlap is possible.
  double MeasureChaseLatency(size_t working_set_bytes) const;

  /// Latency curve over power-of-two working sets up to the configured max.
  std::vector<LatencyPoint> MeasureLatencyCurve() const;

  /// STREAM-like sequential read bandwidth in GB/s.
  double MeasureSequentialBandwidthGbs() const;

  /// Measured per-tuple speeds of the *dispatched* hot kernels (whatever
  /// ISA tier cpu::ActiveIsa() resolved to), over cache-resident working
  /// sets so the numbers estimate pure CPU cost — the memory side is the
  /// cost model's job. The hardware layer cannot see costmodel::CpuCosts,
  /// so this returns a plain struct; the engine maps it onto the model.
  /// Keeping the calibrator on the dispatched kernels is what keeps the
  /// Fig. 9 drift gate honest when a SIMD variant changes the CPU term.
  struct KernelSpeeds {
    double gather_ns_per_tuple = 0.0;   ///< positional-join gather
    double cluster_ns_per_tuple = 0.0;  ///< histogram+prefix+scatter pass
  };
  KernelSpeeds MeasureKernelSpeeds() const;

  /// Refine `base` with measured latencies: for each cache level, the miss
  /// latency is the chase latency at 4x its capacity minus the latency at
  /// half its capacity (i.e., the marginal cost of falling out of it).
  MemoryHierarchy Calibrate(const MemoryHierarchy& base) const;

 private:
  Options options_;
};

}  // namespace radix::hardware

#endif  // RADIX_HARDWARE_CALIBRATOR_H_
