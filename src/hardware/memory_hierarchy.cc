#include "hardware/memory_hierarchy.h"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace radix::hardware {

std::string MemoryHierarchy::ToString() const {
  std::ostringstream os;
  for (const CacheLevel& c : caches) {
    os << c.name << ": " << c.capacity_bytes / 1024 << "KB, "
       << c.line_bytes << "B lines, " << c.miss_latency_ns << "ns miss\n";
  }
  os << "TLB: " << tlb.entries << " entries x " << tlb.page_bytes
     << "B pages, " << tlb.miss_latency_ns << "ns miss\n";
  os << "RAM seq bandwidth: " << ram_seq_bandwidth_gbs << " GB/s\n";
  return os.str();
}

MemoryHierarchy MemoryHierarchy::Pentium4() {
  MemoryHierarchy h;
  double ns_per_cycle = 1.0 / 2.2;  // 2.2 GHz
  h.cpu_ghz = 2.2;
  h.caches.push_back(
      {"L1", 16 * 1024, 32, 8, 28 * ns_per_cycle});
  h.caches.push_back({"L2", 512 * 1024, 128, 8, 178.0});
  h.tlb = {64, 4096, 0, 50 * ns_per_cycle};
  h.ram_seq_bandwidth_gbs = 3.2;  // STREAM number quoted in the paper
  return h;
}

MemoryHierarchy MemoryHierarchy::GenericModern() {
  MemoryHierarchy h;
  h.cpu_ghz = 3.0;
  h.caches.push_back({"L1", 32 * 1024, 64, 8, 4.0});
  h.caches.push_back({"L2", 1024 * 1024, 64, 16, 80.0});
  h.tlb = {64, 4096, 4, 20.0};
  h.ram_seq_bandwidth_gbs = 12.0;
  return h;
}

namespace {

// Read a sysfs cache attribute like "32K" or "1024"; returns 0 on failure.
size_t ReadSysfsSize(const std::string& path) {
  std::ifstream in(path);
  if (!in) return 0;
  std::string s;
  in >> s;
  if (s.empty()) return 0;
  size_t mult = 1;
  char suffix = s.back();
  if (suffix == 'K' || suffix == 'k') {
    mult = 1024;
    s.pop_back();
  } else if (suffix == 'M' || suffix == 'm') {
    mult = 1024 * 1024;
    s.pop_back();
  }
  return static_cast<size_t>(std::strtoull(s.c_str(), nullptr, 10)) * mult;
}

uint64_t ReadSysfsUint(const std::string& path) {
  std::ifstream in(path);
  uint64_t v = 0;
  in >> v;
  return v;
}

}  // namespace

MemoryHierarchy MemoryHierarchy::Detect() {
  MemoryHierarchy h = GenericModern();
  // Probe sysfs for cpu0's data/unified caches. Keep generic latencies: the
  // Calibrator measures those; sysfs only knows geometry.
  std::vector<CacheLevel> found;
  for (int index = 0; index < 8; ++index) {
    std::string base =
        "/sys/devices/system/cpu/cpu0/cache/index" + std::to_string(index);
    std::ifstream type_in(base + "/type");
    if (!type_in) break;
    std::string type;
    type_in >> type;
    if (type == "Instruction") continue;
    CacheLevel level;
    uint64_t level_no = ReadSysfsUint(base + "/level");
    // Build via a local + move: assigning char literals into the existing
    // string trips GCC 12's -Wrestrict false positive (GCC bug 105651).
    std::string name("L");
    name += std::to_string(level_no);
    level.name = std::move(name);
    level.capacity_bytes = ReadSysfsSize(base + "/size");
    level.line_bytes = ReadSysfsUint(base + "/coherency_line_size");
    level.associativity =
        static_cast<uint32_t>(ReadSysfsUint(base + "/ways_of_associativity"));
    if (level.capacity_bytes == 0 || level.line_bytes == 0) continue;
    // Latency heuristics by level (calibrator refines these).
    level.miss_latency_ns = level_no == 1 ? 4.0 : (level_no == 2 ? 30.0 : 90.0);
    found.push_back(level);
  }
  if (!found.empty()) {
    // Keep at most two levels (the model, like the paper, uses L1+"the
    // cache"); choose the first and last reported data caches.
    std::vector<CacheLevel> kept;
    kept.push_back(found.front());
    if (found.size() > 1) kept.push_back(found.back());
    h.caches = kept;
  }
  long page = sysconf(_SC_PAGESIZE);
  if (page > 0) h.tlb.page_bytes = static_cast<size_t>(page);
  return h;
}

}  // namespace radix::hardware
