#ifndef RADIX_HARDWARE_MEMORY_HIERARCHY_H_
#define RADIX_HARDWARE_MEMORY_HIERARCHY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace radix::hardware {

/// One level of the cache hierarchy. The access-pattern cost model
/// (Appendix A of the paper / [MBK02]) is parameterized exclusively by
/// these values, which is what makes it hardware-independent.
struct CacheLevel {
  std::string name;           ///< "L1", "L2", ...
  size_t capacity_bytes = 0;  ///< total capacity C
  size_t line_bytes = 0;      ///< cache line (block) size
  uint32_t associativity = 0; ///< ways; 0 means fully associative
  double miss_latency_ns = 0; ///< cost of a miss at this level

  size_t num_lines() const { return capacity_bytes / line_bytes; }
};

/// Translation look-aside buffer. Modeled as a cache whose "line" is a
/// memory page; the paper's P4 has 64 entries with a 50-cycle miss.
struct TlbLevel {
  uint32_t entries = 0;
  size_t page_bytes = 4096;
  uint32_t associativity = 0;  ///< 0 = fully associative
  double miss_latency_ns = 0;

  /// Memory span covered by the TLB ("capacity" in cost-model terms).
  size_t capacity_bytes() const { return size_t{entries} * page_bytes; }
};

/// A full description of the memory hierarchy, from registers down to RAM.
/// Obtained either from a preset (below) or from the runtime Calibrator.
struct MemoryHierarchy {
  std::vector<CacheLevel> caches;  ///< ordered L1 first
  TlbLevel tlb;
  double ram_seq_bandwidth_gbs = 0;  ///< sequential (STREAM-like) GB/s
  double cpu_ghz = 0;

  /// The cache level that the radix algorithms target ("the cache size C"
  /// in the paper): the innermost level large enough to be worth
  /// partitioning for. The paper uses L2 (512KB); we follow suit and use
  /// the last (largest) level.
  const CacheLevel& target_cache() const { return caches.back(); }
  const CacheLevel& l1() const { return caches.front(); }

  std::string ToString() const;

  /// The machine of the paper's evaluation (Section 4): 2.2GHz Pentium 4,
  /// 16KB L1 (32B lines, 28-cycle miss), 512KB L2 (128B lines, 350-cycle
  /// miss / 178ns RAM latency), 64-entry TLB (50-cycle miss), PC800 RDRAM.
  static MemoryHierarchy Pentium4();

  /// A generic contemporary x86 configuration (used as the default when the
  /// calibrator is not run): 32KB L1 / 1MB L2-slice with 64B lines, 64-entry
  /// L1 TLB, DDR latencies.
  static MemoryHierarchy GenericModern();

  /// Detect from the running machine via sysconf/sysfs, falling back to
  /// GenericModern() values for anything unavailable.
  static MemoryHierarchy Detect();
};

}  // namespace radix::hardware

#endif  // RADIX_HARDWARE_MEMORY_HIERARCHY_H_
