#ifndef RADIX_CLUSTER_RADIX_SORT_H_
#define RADIX_CLUSTER_RADIX_SORT_H_

#include <span>

#include "cluster/radix_cluster.h"
#include "common/types.h"

namespace radix::cluster {

/// Radix-Sort of a join index on one side's oids, implemented as
/// Radix-Cluster on all significant bits with no hashing (§3.1: "a
/// Radix-Cluster on all significant bits is equivalent to Radix-Sort",
/// because oids stem from the dense domain [0, N)).
///
/// `max_oid_exclusive` bounds the sorted side's oids; `by_left` selects
/// which pair member to sort on. Multi-pass is chosen automatically so no
/// pass exceeds `max_pass_bits` of fan-out.
void RadixSortJoinIndex(std::span<OidPair> index, oid_t max_oid_exclusive,
                        bool by_left, radix_bits_t max_pass_bits = 11);

/// Sort a plain oid column ascending (dense-domain radix sort).
void RadixSortOids(std::span<oid_t> oids, oid_t max_oid_exclusive,
                   radix_bits_t max_pass_bits = 11);

}  // namespace radix::cluster

#endif  // RADIX_CLUSTER_RADIX_SORT_H_
