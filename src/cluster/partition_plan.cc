#include "cluster/partition_plan.h"

#include <algorithm>

#include "common/bits.h"

namespace radix::cluster {

radix_bits_t PartialClusterBits(size_t column_tuples, size_t column_width,
                                const hardware::MemoryHierarchy& hw) {
  if (column_tuples == 0) return 0;
  size_t cache = hw.target_cache().capacity_bytes;
  size_t tuples_per_cache = std::max<size_t>(1, cache / column_width);
  // B = 1 + log2(|COLUMN|) - log2(C / width): one more bit than "number of
  // cache-sized chunks" so the mean cluster is strictly below cache size.
  int64_t b = 1 + static_cast<int64_t>(Log2Floor(column_tuples)) -
              static_cast<int64_t>(Log2Floor(tuples_per_cache));
  int64_t max_b = SignificantBits(column_tuples);
  b = std::clamp<int64_t>(b, 0, max_b);
  return static_cast<radix_bits_t>(b);
}

radix_bits_t IgnoreBits(size_t index_tuples, radix_bits_t total_bits) {
  if (index_tuples == 0) return 0;
  uint32_t sig = SignificantBits(index_tuples);
  return sig > total_bits ? sig - total_bits : 0;
}

radix_bits_t PartitionedJoinBits(size_t tuples, size_t tuple_bytes,
                                 const hardware::MemoryHierarchy& hw) {
  if (tuples == 0) return 0;
  // Inner cluster + bucket-chained hash table (~2x the cluster bytes of
  // overhead: next[] chain and bucket heads) must fit the target cache.
  size_t cache = hw.target_cache().capacity_bytes;
  size_t bytes_per_tuple = tuple_bytes * 3;
  size_t tuples_per_cluster = std::max<size_t>(1, cache / bytes_per_tuple);
  size_t clusters_needed =
      (tuples + tuples_per_cluster - 1) / tuples_per_cluster;
  radix_bits_t b = static_cast<radix_bits_t>(Log2Ceil(clusters_needed));
  return std::min<radix_bits_t>(b, SignificantBits(tuples));
}

radix_bits_t MaxPassBits(const hardware::MemoryHierarchy& hw) {
  // One output cursor per cluster; cursors thrash once they outnumber TLB
  // entries or cache lines, whichever is smaller.
  size_t tlb_entries = hw.tlb.entries == 0 ? 64 : hw.tlb.entries;
  size_t l1_lines = hw.l1().num_lines();
  size_t limit = std::min(tlb_entries, l1_lines);
  radix_bits_t b = static_cast<radix_bits_t>(Log2Floor(std::max<size_t>(2, limit)));
  return std::max<radix_bits_t>(1, b);
}

uint32_t PassesFor(radix_bits_t total_bits,
                   const hardware::MemoryHierarchy& hw) {
  radix_bits_t per_pass = MaxPassBits(hw);
  if (total_bits == 0) return 1;
  return (total_bits + per_pass - 1) / per_pass;
}

ClusterSpec PartialClusterSpec(size_t /*index_tuples*/, size_t column_tuples,
                               size_t column_width,
                               const hardware::MemoryHierarchy& hw) {
  ClusterSpec spec;
  spec.total_bits = PartialClusterBits(column_tuples, column_width, hw);
  spec.ignore_bits = IgnoreBits(column_tuples, spec.total_bits);
  spec.passes = PassesFor(spec.total_bits, hw);
  return spec;
}

}  // namespace radix::cluster
