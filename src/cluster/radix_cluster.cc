#include "cluster/radix_cluster.h"

#include <string>

// Kernels are templates (header); this TU pins common instantiations so
// most callers link against them instead of re-instantiating.
namespace radix::cluster {

Status ValidateClusterSpec(const ClusterSpec& spec, uint32_t value_bits) {
  if (spec.passes == 0) {
    return Status::InvalidArgument(
        "ClusterSpec.passes == 0: zero passes would return unclustered data "
        "labeled as clustered (B=" +
        std::to_string(spec.total_bits) + ")");
  }
  if (spec.total_bits >= 64) {
    // 2^B clusters must fit a size_t shift and the per-pass RadixBits mask
    // is (1 << Bp) - 1: either shift by >= 64 is undefined. A full-width
    // cluster is degenerate anyway — every value is its own cluster
    // (fuzz: cluster_spec seed full_width_single_pass).
    return Status::InvalidArgument(
        "ClusterSpec.total_bits = " + std::to_string(spec.total_bits) +
        " >= 64: cluster count 2^B and the per-pass radix mask both "
        "overflow a 64-bit shift");
  }
  if (spec.total_bits + spec.ignore_bits > value_bits) {
    return Status::InvalidArgument(
        "ClusterSpec clusters on bits [" + std::to_string(spec.ignore_bits) +
        ", " + std::to_string(spec.ignore_bits + spec.total_bits) +
        ") beyond the " + std::to_string(value_bits) +
        "-bit radix value width");
  }
  return Status::OK();
}

namespace {
struct IdentityRadix {
  uint64_t operator()(const OidPair& p) const { return p.left; }
};
}  // namespace

template ClusterBorders RadixClusterMultiPass<OidPair, IdentityRadix,
                                              simcache::NoTracer>(
    OidPair*, OidPair*, size_t, IdentityRadix, const ClusterSpec&,
    simcache::NoTracer&);

template ClusterBorders RadixClusterMultiPassParallel<OidPair, IdentityRadix>(
    OidPair*, OidPair*, size_t, IdentityRadix, const ClusterSpec&,
    ThreadPool&);

}  // namespace radix::cluster
