#include "cluster/radix_cluster.h"

// Kernels are templates (header); this TU pins common instantiations so
// most callers link against them instead of re-instantiating.
namespace radix::cluster {

namespace {
struct IdentityRadix {
  uint64_t operator()(const OidPair& p) const { return p.left; }
};
}  // namespace

template ClusterBorders RadixClusterMultiPass<OidPair, IdentityRadix,
                                              simcache::NoTracer>(
    OidPair*, OidPair*, size_t, IdentityRadix, const ClusterSpec&,
    simcache::NoTracer&);

}  // namespace radix::cluster
