#ifndef RADIX_CLUSTER_PARTITION_PLAN_H_
#define RADIX_CLUSTER_PARTITION_PLAN_H_

#include <cstddef>

#include "cluster/radix_cluster.h"
#include "common/types.h"
#include "hardware/memory_hierarchy.h"

namespace radix::cluster {

/// Planning helpers that turn cache geometry into Radix-Cluster parameters.
/// All thresholds are cache-relative, which is why the paper's curves keep
/// their shape on different hardware.

/// Number of radix bits for a *partial* cluster of a join index so that the
/// subsequent Positional-Joins into a column of `column_tuples` entries of
/// `column_width` bytes touch cache-resident regions (paper §3.1):
///   B = 1 + log2(|COLUMN|) - log2(C / width)
/// clamped to [0, significant bits of the column].
radix_bits_t PartialClusterBits(size_t column_tuples, size_t column_width,
                                const hardware::MemoryHierarchy& hw);

/// Ignore-bits I = log2(|JI|) - B for a join index of `index_tuples`
/// entries (paper §3.1); clamped at 0.
radix_bits_t IgnoreBits(size_t index_tuples, radix_bits_t total_bits);

/// Number of radix bits for Partitioned Hash-Join so each inner cluster
/// (plus its hash table) fits the target cache: clusters of
/// `tuple_bytes`-wide tuples from a relation of `tuples` rows.
radix_bits_t PartitionedJoinBits(size_t tuples, size_t tuple_bytes,
                                 const hardware::MemoryHierarchy& hw);

/// Maximum per-pass fan-out that keeps all output cursors cache/TLB
/// resident (§2.1: cursors must each sit in a cache line, and systems with
/// a slow TLB are limited by its 64 entries).
radix_bits_t MaxPassBits(const hardware::MemoryHierarchy& hw);

/// Number of passes needed to produce 2^total_bits clusters without any
/// pass exceeding MaxPassBits.
uint32_t PassesFor(radix_bits_t total_bits,
                   const hardware::MemoryHierarchy& hw);

/// Complete spec for a partial cluster of a join index ahead of projections
/// (the "c" strategy): B from the projection column, I from the index size,
/// P from the TLB constraint.
ClusterSpec PartialClusterSpec(size_t index_tuples, size_t column_tuples,
                               size_t column_width,
                               const hardware::MemoryHierarchy& hw);

}  // namespace radix::cluster

#endif  // RADIX_CLUSTER_PARTITION_PLAN_H_
