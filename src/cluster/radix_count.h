#ifndef RADIX_CLUSTER_RADIX_COUNT_H_
#define RADIX_CLUSTER_RADIX_COUNT_H_

#include <span>

#include "cluster/radix_cluster.h"
#include "common/types.h"

namespace radix::cluster {

/// radix_count(B, I) of the paper (Fig. 4): analyze an already (partially)
/// radix-clustered column and return the actual cluster borders — the
/// structure Radix-Decluster uses to initialize its cursors. A single
/// sequential pass counting bucket occupancies.
ClusterBorders RadixCount(std::span<const oid_t> clustered_oids,
                          radix_bits_t total_bits, radix_bits_t ignore_bits);

/// Verify that `data`'s bucket ids are non-decreasing under the given
/// clustering (i.e., the column really is clustered on those bits); used by
/// tests and debug assertions.
bool IsRadixClustered(std::span<const oid_t> data, radix_bits_t total_bits,
                      radix_bits_t ignore_bits);

}  // namespace radix::cluster

#endif  // RADIX_CLUSTER_RADIX_COUNT_H_
