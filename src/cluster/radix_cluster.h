#ifndef RADIX_CLUSTER_RADIX_CLUSTER_H_
#define RADIX_CLUSTER_RADIX_CLUSTER_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/bits.h"
#include "common/macros.h"
#include "common/simd_kernels.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/types.h"
#include "simcache/mem_tracer.h"
#include "storage/column.h"

namespace radix::cluster {

namespace detail {

/// The scatter half of a clustering pass: stable append of each input
/// tuple to its bucket's cursor. `insert` holds the starting cursor per
/// bucket and is consumed. For untraced 8-byte tuples inside the
/// write-combining window the stores stream past the cache
/// (simd::WcScatter64) — byte-identical output, but without the
/// read-for-ownership + eviction traffic of 2^Bp cursor lines (the §3.1
/// scatter wall). The traced path keeps the plain loop so MemTracer sees
/// the true per-tuple access stream.
template <typename T, typename RadixFn, typename Tracer>
void ScatterPass(const T* in, T* out, size_t n, RadixFn radix_of,
                 uint32_t shift, radix_bits_t pass_bits,
                 std::vector<uint64_t>& insert, Tracer& tracer) {
  const size_t buckets = size_t{1} << pass_bits;
  if constexpr (!Tracer::kEnabled && sizeof(T) == 8) {
    if (simd::UseNtScatter(buckets, n)) {
      simd::WcScatter64 wc(reinterpret_cast<uint64_t*>(out), buckets,
                           insert.data());
      for (size_t i = 0; i < n; ++i) {
        const size_t b = RadixBits(radix_of(in[i]), shift, pass_bits);
        uint64_t word;
        std::memcpy(&word, &in[i], sizeof(word));
        wc.Push(b, word);
      }
      wc.Flush();
      return;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if constexpr (Tracer::kEnabled) tracer.Touch(&in[i], sizeof(T));
    const size_t b = RadixBits(radix_of(in[i]), shift, pass_bits);
    if constexpr (Tracer::kEnabled) tracer.Touch(&out[insert[b]], sizeof(T));
    out[insert[b]++] = in[i];
  }
}

}  // namespace detail

/// Cluster boundaries after a (partial) Radix-Cluster: cluster k occupies
/// [offsets[k], offsets[k+1]) in the clustered array. offsets.size() == H+1.
struct ClusterBorders {
  std::vector<uint64_t> offsets;

  size_t num_clusters() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  uint64_t start(size_t k) const { return offsets[k]; }
  uint64_t end(size_t k) const { return offsets[k + 1]; }
  uint64_t size(size_t k) const { return offsets[k + 1] - offsets[k]; }
  uint64_t total() const { return offsets.empty() ? 0 : offsets.back(); }
};

/// Parameters of radix_cluster(B, P, I) as used throughout the paper:
/// cluster on bits [ignore_bits, ignore_bits + total_bits) of the tuples'
/// radix value, in `passes` sequential passes, most-significant slice
/// first. ignore_bits > 0 yields the *partial* Radix-Cluster of §3.1
/// ("stop early and ignore a certain number of lower Radix-Bits").
struct ClusterSpec {
  radix_bits_t total_bits = 0;   ///< B
  radix_bits_t ignore_bits = 0;  ///< I
  uint32_t passes = 1;           ///< P

  size_t num_clusters() const { return size_t{1} << total_bits; }

  /// Split B into `passes` per-pass bit counts Bp (sum == B), largest
  /// first, as evenly as possible.
  std::vector<radix_bits_t> PassBits() const {
    std::vector<radix_bits_t> bits(passes);
    radix_bits_t base = total_bits / passes;
    radix_bits_t extra = total_bits % passes;
    for (uint32_t p = 0; p < passes; ++p) {
      bits[p] = base + (p < extra ? 1 : 0);
    }
    return bits;
  }

  /// Number of passes that actually cluster (Bp > 0); the rest are no-ops.
  /// The final result lives in the scratch buffer (and must be copied back)
  /// exactly when this is odd — the cost the model charges as
  /// s_trav ⊕ s_trav in RadixClusterCost.
  uint32_t EffectivePasses() const {
    return passes == 0 ? 0 : (total_bits < passes ? total_bits : passes);
  }
};

/// Recoverable validation for a ClusterSpec against the radix value width
/// (radix functions return uint64_t, so the default width is 64). Rejects
/// the degenerate configurations the kernels would otherwise mislabel:
///   * passes == 0 with total_bits > 0 would return UNclustered data with
///     borders claiming 2^B clusters;
///   * total_bits + ignore_bits beyond the value width would cluster on
///     bits that do not exist (everything lands in cluster 0).
/// The kernels RADIX_CHECK this; API boundaries that want a Status instead
/// of an abort call it directly.
[[nodiscard]] Status ValidateClusterSpec(const ClusterSpec& spec,
                                         uint32_t value_bits = 64);

/// One histogram+scatter pass over [in, in+n) into `out`, clustering on
/// `pass_bits` bits of radix(v) starting at bit `shift`. `borders_out`, if
/// non-null, receives the 2^pass_bits cluster offsets *relative to out*.
///
/// This is the memory-access kernel the paper models as
///   s_trav(X) ⊙ nest({Xj}, 2^Bp, s_trav(Xj), ran):
/// a sequential read of the input concurrent with one append cursor per
/// output cluster. The cursors are what limits single-pass fan-out: beyond
/// the number of cache lines / TLB entries the pass starts thrashing (§2.1).
template <typename T, typename RadixFn, typename Tracer>
void RadixClusterPass(const T* in, T* out, size_t n, RadixFn radix_of,
                      uint32_t shift, radix_bits_t pass_bits,
                      std::vector<uint64_t>* borders_out, Tracer& tracer) {
  size_t buckets = size_t{1} << pass_bits;
  std::vector<uint64_t> histogram(buckets, 0);
  for (size_t i = 0; i < n; ++i) {
    if constexpr (Tracer::kEnabled) tracer.Touch(&in[i], sizeof(T));
    ++histogram[RadixBits(radix_of(in[i]), shift, pass_bits)];
  }
  // Exclusive prefix sum (dispatched; untraced in the original too — the
  // model charges the pass for the data streams, not the 2^Bp cursors).
  std::vector<uint64_t> cursor(buckets + 1, 0);
  simd::Kernels().prefix_sum(histogram.data(), buckets, cursor.data());
  if (borders_out != nullptr) *borders_out = cursor;
  // Scatter. Stable: append order within a cluster == scan order, the
  // property Radix-Decluster's window merge relies on.
  std::vector<uint64_t> insert(cursor.begin(), cursor.end() - 1);
  detail::ScatterPass(in, out, n, radix_of, shift, pass_bits, insert, tracer);
}

/// Multi-pass Radix-Cluster driver: clusters `data` (in place, using
/// `scratch` as the alternate buffer) per `spec`, returning the final
/// H = 2^B cluster borders. After return, the clustered data is in `data`.
///
/// Pass p refines every cluster produced by pass p-1 using the next
/// lower-significance slice of bits, exactly as in paper Fig. 2.
template <typename T, typename RadixFn, typename Tracer>
ClusterBorders RadixClusterMultiPass(T* data, T* scratch, size_t n,
                                     RadixFn radix_of, const ClusterSpec& spec,
                                     Tracer& tracer) {
  RADIX_CHECK(ValidateClusterSpec(spec).ok());
  ClusterBorders borders;
  borders.offsets = {0, n};
  if (spec.total_bits == 0) return borders;

  std::vector<radix_bits_t> pass_bits = spec.PassBits();
  uint32_t bits_done = 0;
  T* src = data;
  T* dst = scratch;

  for (uint32_t p = 0; p < spec.passes; ++p) {
    radix_bits_t bp = pass_bits[p];
    if (bp == 0) continue;
    bits_done += bp;
    uint32_t shift = spec.ignore_bits + spec.total_bits - bits_done;

    std::vector<uint64_t> new_offsets;
    new_offsets.reserve((borders.num_clusters() << bp) + 1);
    new_offsets.push_back(0);
    for (size_t c = 0; c < borders.num_clusters(); ++c) {
      uint64_t begin = borders.start(c);
      uint64_t len = borders.size(c);
      std::vector<uint64_t> sub;
      RadixClusterPass(src + begin, dst + begin, len, radix_of, shift, bp,
                       &sub, tracer);
      for (size_t b = 1; b < sub.size(); ++b) {
        new_offsets.push_back(begin + sub[b]);
      }
    }
    borders.offsets = std::move(new_offsets);
    std::swap(src, dst);
  }
  if (src != data) {
    // Odd number of effective passes: the result sits in `scratch`, copy it
    // back. Trace the read/write interleaved per element — touching whole
    // buffers after the fact would misattribute the misses (the write
    // stream evicting the read stream). RadixClusterCost charges this as
    // the s_trav ⊕ s_trav copy-back term.
    if constexpr (Tracer::kEnabled) {
      for (size_t i = 0; i < n; ++i) {
        tracer.Touch(&src[i], sizeof(T));
        tracer.Touch(&data[i], sizeof(T));
        data[i] = src[i];
      }
    } else {
      std::memcpy(data, src, n * sizeof(T));
    }
  }
  return borders;
}

/// Convenience wrapper allocating its own scratch space.
template <typename T, typename RadixFn>
ClusterBorders RadixCluster(std::span<T> data, RadixFn radix_of,
                            const ClusterSpec& spec) {
  storage::Column<T> scratch(data.size());
  simcache::NoTracer tracer;
  return RadixClusterMultiPass(data.data(), scratch.data(), data.size(),
                               radix_of, spec, tracer);
}

/// Parallel single pass: the classic per-thread-histogram scheme. Each
/// thread histograms a contiguous input slice, a bucket-major/thread-minor
/// prefix sum turns the histograms into disjoint write cursors, and each
/// thread scatters its own slice. Because slice order == scan order and
/// bucket b's region receives the thread slices in that same order, the
/// output (and the borders) are byte-identical to the serial stable pass.
///
/// Untraced by design: MemTracer is a single sequential access stream and
/// stays meaningful only on the serial path (pool size 1 falls back to it).
template <typename T, typename RadixFn>
void RadixClusterPassParallel(const T* in, T* out, size_t n, RadixFn radix_of,
                              uint32_t shift, radix_bits_t pass_bits,
                              std::vector<uint64_t>* borders_out,
                              ThreadPool& pool) {
  size_t nthreads = pool.num_threads();
  if (nthreads <= 1 || n < 4 * nthreads) {
    simcache::NoTracer tracer;
    RadixClusterPass(in, out, n, radix_of, shift, pass_bits, borders_out,
                     tracer);
    return;
  }
  const size_t buckets = size_t{1} << pass_bits;
  std::vector<size_t> slice(nthreads + 1);
  for (size_t t = 0; t <= nthreads; ++t) slice[t] = n * t / nthreads;

  std::vector<std::vector<uint64_t>> hist(nthreads);
  pool.ParallelFor(nthreads, [&](size_t t) {
    std::vector<uint64_t>& h = hist[t];
    h.assign(buckets, 0);
    for (size_t i = slice[t]; i < slice[t + 1]; ++i) {
      ++h[RadixBits(radix_of(in[i]), shift, pass_bits)];
    }
  });

  // Global prefix sum over (bucket, thread); hist[t][b] becomes thread t's
  // starting write cursor for bucket b.
  std::vector<uint64_t> cursor(buckets + 1, 0);
  uint64_t run = 0;
  for (size_t b = 0; b < buckets; ++b) {
    cursor[b] = run;
    for (size_t t = 0; t < nthreads; ++t) {
      uint64_t count = hist[t][b];
      hist[t][b] = run;
      run += count;
    }
  }
  cursor[buckets] = run;
  if (borders_out != nullptr) *borders_out = cursor;

  pool.ParallelFor(nthreads, [&](size_t t) {
    // Each thread owns disjoint cursor runs; its write-combining buffers
    // only ever stream lines wholly inside its own runs (partial head and
    // tail lines go through plain coherent stores), so per-thread
    // WcScatter64 instances need no synchronisation beyond the pool join.
    simcache::NoTracer tracer;
    detail::ScatterPass(in + slice[t], out, slice[t + 1] - slice[t], radix_of,
                        shift, pass_bits, hist[t], tracer);
  });
}

/// Parallel multi-pass driver, byte-identical to RadixClusterMultiPass run
/// with NoTracer. The first pass (one input cluster) uses the per-thread-
/// histogram pass over the whole array; every later pass fans the previous
/// pass's clusters out as independent work items on the pool's queue —
/// the partition plan bounds per-pass fan-out, so each item refines a
/// disjoint input range into a disjoint output slice and no further
/// synchronisation is needed.
template <typename T, typename RadixFn>
ClusterBorders RadixClusterMultiPassParallel(T* data, T* scratch, size_t n,
                                             RadixFn radix_of,
                                             const ClusterSpec& spec,
                                             ThreadPool& pool) {
  RADIX_CHECK(ValidateClusterSpec(spec).ok());
  if (pool.num_threads() <= 1) {
    simcache::NoTracer tracer;
    return RadixClusterMultiPass(data, scratch, n, radix_of, spec, tracer);
  }
  ClusterBorders borders;
  borders.offsets = {0, n};
  if (spec.total_bits == 0) return borders;

  std::vector<radix_bits_t> pass_bits = spec.PassBits();
  uint32_t bits_done = 0;
  T* src = data;
  T* dst = scratch;

  for (uint32_t p = 0; p < spec.passes; ++p) {
    radix_bits_t bp = pass_bits[p];
    if (bp == 0) continue;
    bits_done += bp;
    uint32_t shift = spec.ignore_bits + spec.total_bits - bits_done;

    size_t nclusters = borders.num_clusters();
    if (nclusters == 1) {
      std::vector<uint64_t> sub;
      RadixClusterPassParallel(src, dst, n, radix_of, shift, bp, &sub, pool);
      borders.offsets = std::move(sub);
    } else {
      ClusterBorders prev = std::move(borders);
      std::vector<std::vector<uint64_t>> subs(nclusters);
      pool.ParallelFor(nclusters, [&](size_t c) {
        simcache::NoTracer tracer;
        uint64_t begin = prev.start(c);
        RadixClusterPass(src + begin, dst + begin, prev.size(c), radix_of,
                         shift, bp, &subs[c], tracer);
      });
      std::vector<uint64_t> merged;
      merged.reserve((nclusters << bp) + 1);
      merged.push_back(0);
      for (size_t c = 0; c < nclusters; ++c) {
        for (size_t b = 1; b < subs[c].size(); ++b) {
          merged.push_back(prev.start(c) + subs[c][b]);
        }
      }
      borders.offsets = std::move(merged);
    }
    std::swap(src, dst);
  }
  if (src != data) {
    // Copy-back in disjoint slices (cf. the serial driver's memcpy).
    size_t nthreads = pool.num_threads();
    pool.ParallelFor(nthreads, [&](size_t t) {
      size_t begin = n * t / nthreads;
      size_t end = n * (t + 1) / nthreads;
      std::memcpy(data + begin, src + begin, (end - begin) * sizeof(T));
    });
  }
  return borders;
}

/// A [left-oid, right-oid] pair: one entry of a join index [Val87].
struct OidPair {
  oid_t left;
  oid_t right;
};
static_assert(sizeof(OidPair) == 8, "join index entries must stay 8 bytes");

/// A (key, oid) pair carried through clustering into Partitioned Hash-Join.
struct KeyOid {
  value_t key;
  oid_t oid;
};
static_assert(sizeof(KeyOid) == 8);

}  // namespace radix::cluster

#endif  // RADIX_CLUSTER_RADIX_CLUSTER_H_
