#include "cluster/radix_count.h"

#include "common/bits.h"
#include "common/simd_kernels.h"

namespace radix::cluster {

ClusterBorders RadixCount(std::span<const oid_t> clustered_oids,
                          radix_bits_t total_bits, radix_bits_t ignore_bits) {
  size_t buckets = size_t{1} << total_bits;
  std::vector<uint64_t> histogram(buckets, 0);
  const simd::KernelTable& kernels = simd::Kernels();
  kernels.radix_histogram(clustered_oids.data(), clustered_oids.size(),
                          ignore_bits, total_bits, histogram.data());
  ClusterBorders borders;
  borders.offsets.assign(buckets + 1, 0);
  kernels.prefix_sum(histogram.data(), buckets, borders.offsets.data());
  return borders;
}

bool IsRadixClustered(std::span<const oid_t> data, radix_bits_t total_bits,
                      radix_bits_t ignore_bits) {
  uint32_t prev = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    uint32_t b = RadixBits(data[i], ignore_bits, total_bits);
    if (i > 0 && b < prev) return false;
    prev = b;
  }
  return true;
}

}  // namespace radix::cluster
