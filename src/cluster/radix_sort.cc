#include "cluster/radix_sort.h"

#include "common/bits.h"
#include "storage/column.h"

namespace radix::cluster {

namespace {

ClusterSpec FullSortSpec(oid_t max_oid_exclusive, radix_bits_t max_pass_bits) {
  ClusterSpec spec;
  spec.total_bits = SignificantBits(max_oid_exclusive == 0 ? 1 : max_oid_exclusive);
  spec.ignore_bits = 0;
  spec.passes = (spec.total_bits + max_pass_bits - 1) / max_pass_bits;
  if (spec.passes == 0) spec.passes = 1;
  return spec;
}

}  // namespace

void RadixSortJoinIndex(std::span<OidPair> index, oid_t max_oid_exclusive,
                        bool by_left, radix_bits_t max_pass_bits) {
  ClusterSpec spec = FullSortSpec(max_oid_exclusive, max_pass_bits);
  storage::Column<OidPair> scratch(index.size());
  simcache::NoTracer tracer;
  if (by_left) {
    auto radix = [](const OidPair& p) -> uint64_t { return p.left; };
    RadixClusterMultiPass(index.data(), scratch.data(), index.size(), radix,
                          spec, tracer);
  } else {
    auto radix = [](const OidPair& p) -> uint64_t { return p.right; };
    RadixClusterMultiPass(index.data(), scratch.data(), index.size(), radix,
                          spec, tracer);
  }
}

void RadixSortOids(std::span<oid_t> oids, oid_t max_oid_exclusive,
                   radix_bits_t max_pass_bits) {
  ClusterSpec spec = FullSortSpec(max_oid_exclusive, max_pass_bits);
  storage::Column<oid_t> scratch(oids.size());
  simcache::NoTracer tracer;
  auto radix = [](oid_t v) -> uint64_t { return v; };
  RadixClusterMultiPass(oids.data(), scratch.data(), oids.size(), radix, spec,
                        tracer);
}

}  // namespace radix::cluster
