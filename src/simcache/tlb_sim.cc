#include "simcache/tlb_sim.h"

// Header-only; compiled once for self-containedness.
