#ifndef RADIX_SIMCACHE_CACHE_SIM_H_
#define RADIX_SIMCACHE_CACHE_SIM_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace radix::simcache {

/// Software model of one set-associative, LRU, write-allocate cache level.
///
/// The paper validates its cost model against hardware event counters
/// (L1/L2/TLB misses, Fig. 7a). We have no portable counters, so algorithms
/// replay their exact memory reference streams through this model instead;
/// the resulting miss counts are deterministic and hardware-independent.
class CacheSim {
 public:
  /// `associativity` 0 means fully associative.
  CacheSim(uint64_t capacity_bytes, uint32_t line_bytes,
           uint32_t associativity);

  /// Touch one address; returns true on miss. Caller is responsible for
  /// splitting multi-line accesses (MemTracer does this).
  bool Access(uint64_t address);

  void Reset();

  uint64_t accesses() const { return accesses_; }
  uint64_t misses() const { return misses_; }
  uint64_t capacity_bytes() const { return capacity_bytes_; }
  uint32_t line_bytes() const { return line_bytes_; }

 private:
  struct Way {
    uint64_t tag = ~uint64_t{0};
    uint64_t last_use = 0;  // LRU timestamp
    bool valid = false;
  };

  uint64_t capacity_bytes_;
  uint32_t line_bytes_;
  uint32_t line_shift_;
  uint32_t ways_;
  uint64_t num_sets_;
  uint64_t set_mask_;
  std::vector<Way> slots_;  // num_sets_ * ways_
  uint64_t tick_ = 0;
  uint64_t accesses_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace radix::simcache

#endif  // RADIX_SIMCACHE_CACHE_SIM_H_
