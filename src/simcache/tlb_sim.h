#ifndef RADIX_SIMCACHE_TLB_SIM_H_
#define RADIX_SIMCACHE_TLB_SIM_H_

#include <cstdint>

#include "simcache/cache_sim.h"

namespace radix::simcache {

/// TLB model: a cache whose lines are memory pages and whose capacity is
/// entries * page size. The paper's P4 TLB (64 entries, 50-cycle miss) is
/// the source of the partitioning fan-out limit that motivates multi-pass
/// Radix-Cluster, so modeling it matters for reproducing Figs. 7a and 9a.
class TlbSim {
 public:
  TlbSim(uint32_t entries, uint32_t page_bytes, uint32_t associativity)
      : cache_(uint64_t{entries} * page_bytes, page_bytes, associativity) {}

  /// Touch the page containing `address`; returns true on TLB miss.
  bool Access(uint64_t address) { return cache_.Access(address); }

  void Reset() { cache_.Reset(); }
  uint64_t accesses() const { return cache_.accesses(); }
  uint64_t misses() const { return cache_.misses(); }
  uint32_t page_bytes() const { return cache_.line_bytes(); }

 private:
  CacheSim cache_;
};

}  // namespace radix::simcache

#endif  // RADIX_SIMCACHE_TLB_SIM_H_
