#ifndef RADIX_SIMCACHE_MEM_TRACER_H_
#define RADIX_SIMCACHE_MEM_TRACER_H_

#include <cstdint>
#include <string>

#include "hardware/memory_hierarchy.h"
#include "simcache/cache_sim.h"
#include "simcache/tlb_sim.h"

namespace radix::simcache {

/// Miss counts observed by a tracer; what the paper reads from hardware
/// performance counters in Fig. 7a.
struct MemCounters {
  uint64_t accesses = 0;
  uint64_t l1_misses = 0;
  uint64_t l2_misses = 0;
  uint64_t tlb_misses = 0;

  std::string ToString() const;
};

/// Tracer policy used in production builds: all hooks compile to nothing,
/// so traced kernels instantiated with NoTracer are exactly the untraced
/// kernels.
struct NoTracer {
  void Touch(const void* /*addr*/, size_t /*bytes*/) {}
  static constexpr bool kEnabled = false;
};

/// Tracer that models an inclusive L1/L2/TLB hierarchy. Kernels call
/// Touch(addr, bytes) for every load/store; multi-line accesses are split
/// into per-line probes (hardware would fetch each line once).
class MemTracer {
 public:
  static constexpr bool kEnabled = true;

  explicit MemTracer(const hardware::MemoryHierarchy& hierarchy);

  void Touch(const void* addr, size_t bytes);

  MemCounters counters() const;
  void Reset();

 private:
  CacheSim l1_;
  CacheSim l2_;
  TlbSim tlb_;
};

}  // namespace radix::simcache

#endif  // RADIX_SIMCACHE_MEM_TRACER_H_
