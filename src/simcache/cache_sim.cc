#include "simcache/cache_sim.h"

#include "common/bits.h"

namespace radix::simcache {

CacheSim::CacheSim(uint64_t capacity_bytes, uint32_t line_bytes,
                   uint32_t associativity)
    : capacity_bytes_(capacity_bytes), line_bytes_(line_bytes) {
  RADIX_CHECK(IsPowerOfTwo(line_bytes));
  RADIX_CHECK(capacity_bytes % line_bytes == 0);
  line_shift_ = Log2Floor(line_bytes);
  uint64_t lines = capacity_bytes / line_bytes;
  ways_ = associativity == 0 ? static_cast<uint32_t>(lines) : associativity;
  if (ways_ > lines) ways_ = static_cast<uint32_t>(lines);
  num_sets_ = lines / ways_;
  RADIX_CHECK(IsPowerOfTwo(num_sets_));
  set_mask_ = num_sets_ - 1;
  slots_.assign(num_sets_ * ways_, Way{});
}

bool CacheSim::Access(uint64_t address) {
  ++accesses_;
  ++tick_;
  uint64_t line = address >> line_shift_;
  uint64_t set = line & set_mask_;
  uint64_t tag = line >> 0;  // full line number as tag (set bits redundant but harmless)
  Way* base = &slots_[set * ways_];

  Way* victim = base;
  for (uint32_t w = 0; w < ways_; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.last_use = tick_;
      return false;  // hit
    }
    if (!way.valid) {
      victim = &way;
    } else if (victim->valid && way.last_use < victim->last_use) {
      victim = &way;
    }
  }
  ++misses_;
  victim->valid = true;
  victim->tag = tag;
  victim->last_use = tick_;
  return true;
}

void CacheSim::Reset() {
  for (Way& w : slots_) w = Way{};
  tick_ = accesses_ = misses_ = 0;
}

}  // namespace radix::simcache
