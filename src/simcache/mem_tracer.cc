#include "simcache/mem_tracer.h"

#include <sstream>

#include "common/macros.h"

namespace radix::simcache {

std::string MemCounters::ToString() const {
  std::ostringstream os;
  os << "accesses=" << accesses << " L1=" << l1_misses << " L2=" << l2_misses
     << " TLB=" << tlb_misses;
  return os.str();
}

namespace {
const hardware::CacheLevel& LevelOrDie(const hardware::MemoryHierarchy& h,
                                       size_t i) {
  RADIX_CHECK(h.caches.size() >= 2);
  return h.caches[i];
}
}  // namespace

MemTracer::MemTracer(const hardware::MemoryHierarchy& hierarchy)
    : l1_(LevelOrDie(hierarchy, 0).capacity_bytes,
          static_cast<uint32_t>(LevelOrDie(hierarchy, 0).line_bytes),
          LevelOrDie(hierarchy, 0).associativity),
      l2_(hierarchy.caches.back().capacity_bytes,
          static_cast<uint32_t>(hierarchy.caches.back().line_bytes),
          hierarchy.caches.back().associativity),
      tlb_(hierarchy.tlb.entries,
           static_cast<uint32_t>(hierarchy.tlb.page_bytes),
           hierarchy.tlb.associativity) {}

void MemTracer::Touch(const void* addr, size_t bytes) {
  uint64_t a = reinterpret_cast<uint64_t>(addr);
  uint64_t end = a + (bytes == 0 ? 1 : bytes);
  uint32_t line = l1_.line_bytes();
  for (uint64_t p = a & ~uint64_t{line - 1}; p < end; p += line) {
    // Inclusive hierarchy: L2 is probed only on L1 miss, as on real
    // hardware with an inclusive L2.
    if (l1_.Access(p)) l2_.Access(p);
    tlb_.Access(p);
  }
}

MemCounters MemTracer::counters() const {
  MemCounters c;
  c.accesses = l1_.accesses();
  c.l1_misses = l1_.misses();
  c.l2_misses = l2_.misses();
  c.tlb_misses = tlb_.misses();
  return c;
}

void MemTracer::Reset() {
  l1_.Reset();
  l2_.Reset();
  tlb_.Reset();
}

}  // namespace radix::simcache
