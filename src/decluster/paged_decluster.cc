#include "decluster/paged_decluster.h"

#include <cstring>
#include <string>
#include <vector>

#include "common/macros.h"

namespace radix::decluster {

std::string_view PagedResult::Read(const bufferpool::BufferManager& bm,
                                   size_t i) const {
  RADIX_CHECK(i < directory.size());
  const PagedLocation& loc = directory[i];
  const bufferpool::Page& page = bm.page(loc.page);
  return {reinterpret_cast<const char*>(page.raw()) +
              sizeof(bufferpool::Page::Header) + loc.offset,
          loc.length};
}

Status ValidatePagedDecluster(size_t num_values, std::span<const oid_t> ids,
                              const cluster::ClusterBorders& borders,
                              size_t window_elems) {
  if (num_values != ids.size()) {
    std::string msg("paged decluster: ");
    msg += std::to_string(num_values);
    msg += " values but ";
    msg += std::to_string(ids.size());
    msg += " ids";
    return Status::InvalidArgument(std::move(msg));
  }
  if (window_elems == 0 && !ids.empty()) {
    return Status::InvalidArgument(
        "paged decluster: window_elems == 0 — the merge would sweep forever "
        "without retiring a tuple");
  }
  if (ids.empty() && borders.total() == 0) return Status::OK();
  if (borders.offsets.empty() || borders.offsets.front() != 0 ||
      borders.total() != ids.size()) {
    std::string msg("paged decluster: borders cover [0, ");
    msg += std::to_string(borders.total());
    msg += ") but the input has ";
    msg += std::to_string(ids.size());
    msg += " tuples";
    return Status::InvalidArgument(std::move(msg));
  }
  for (size_t k = 0; k + 1 < borders.offsets.size(); ++k) {
    if (borders.offsets[k] > borders.offsets[k + 1]) {
      std::string msg("paged decluster: non-monotone border at cluster ");
      msg += std::to_string(k);
      return Status::InvalidArgument(std::move(msg));
    }
  }
  return Status::OK();
}

namespace {

/// §3.2 preconditions of any decluster merge, NDEBUG-gated like the
/// fixed-width kernels' checks: `ids` must be a dense permutation of
/// [0, n) ascending within each cluster.
void DCheckDeclusterPreconditions(std::span<const oid_t> ids,
                                  const cluster::ClusterBorders& borders) {
#ifndef NDEBUG
  std::vector<bool> seen(ids.size(), false);
  for (size_t k = 0; k < borders.num_clusters(); ++k) {
    for (uint64_t i = borders.start(k); i < borders.end(k); ++i) {
      RADIX_DCHECK(ids[i] < ids.size());
      RADIX_DCHECK(!seen[ids[i]]);
      seen[ids[i]] = true;
      RADIX_DCHECK(i == borders.start(k) || ids[i - 1] < ids[i]);
    }
  }
#else
  (void)ids;
  (void)borders;
#endif
}

/// The phase-1/phase-3 merge loop, factored out: identical window/cursor
/// control flow as RadixDecluster, but per-tuple work is a callback.
template <typename PutFn>
void DeclusterLoop(std::span<const oid_t> ids,
                   std::vector<ClusterCursor> clusters, size_t window_elems,
                   PutFn&& put) {
  size_t nclusters = clusters.size();
  ClusterCursor* cl = clusters.data();
  const oid_t* id = ids.data();
  for (uint64_t limit = window_elems; nclusters > 0; limit += window_elems) {
    for (size_t i = 0; i < nclusters; ++i) {
      while (true) {
        uint64_t pos = cl[i].start;
        if (id[pos] >= limit) break;
        put(pos, id[pos]);
        if (++cl[i].start >= cl[i].end) {
          cl[i] = cl[--nclusters];
          if (i >= nclusters) break;
        }
      }
      if (i >= nclusters) break;
    }
  }
}

}  // namespace

PagedResult PagedDeclusterVar(const VarValues& values,
                              std::span<const oid_t> ids,
                              const cluster::ClusterBorders& borders,
                              size_t window_elems,
                              bufferpool::BufferManager* bm) {
  size_t n = ids.size();
  RADIX_CHECK(
      ValidatePagedDecluster(values.size(), ids, borders, window_elems).ok());
  DCheckDeclusterPreconditions(ids, borders);
  if (n == 0) return {};

  // Phase 1: decluster only the lengths into a positionally addressable
  // integer array (SIZE_VALUES in Fig. 12).
  std::vector<uint32_t> sizes(n);
  DeclusterLoop(ids, MakeCursors(borders), window_elems,
                [&](uint64_t pos, oid_t result_pos) {
                  sizes[result_pos] = static_cast<uint32_t>(
                      values.offsets[pos + 1] - values.offsets[pos]);
                });

  // Phase 2: sequential pass over the (positionally addressable) lengths,
  // computing each tuple's page and offset. As in the paper's Fig. 12, a
  // record's budget includes one slot-directory entry ("+sizeof(short)"),
  // and records never span pages.
  size_t payload = bm->payload_capacity();
  std::vector<uint32_t> rec_page(n);
  std::vector<uint32_t> rec_off(n);
  {
    size_t page = 0, front = 0, slots = 0;
    for (size_t i = 0; i < n; ++i) {
      size_t need = sizes[i];
      RADIX_CHECK(need + bufferpool::Page::kSlotBytes <= payload);
      if (front + need + (slots + 1) * bufferpool::Page::kSlotBytes >
          payload) {
        ++page;
        front = 0;
        slots = 0;
      }
      rec_page[i] = static_cast<uint32_t>(page);
      rec_off[i] = static_cast<uint32_t>(front);
      front += need;
      ++slots;
    }
  }
  size_t num_pages = static_cast<size_t>(rec_page[n - 1]) + 1;
  bufferpool::page_id_t first = bm->Allocate(num_pages);

  PagedResult result;
  result.first_page = first;
  result.num_pages = num_pages;
  result.directory.resize(n);

  // Phase 3: re-execute the decluster, copying each value to its page and
  // offset; the random access is again confined to the insertion window.
  // One PageRange snapshot (one directory lock) serves the whole phase —
  // the hot loop must not pay a BufferManager lock per record.
  std::vector<bufferpool::Page*> pages = bm->PageRange(first, num_pages);
  DeclusterLoop(ids, MakeCursors(borders), window_elems,
                [&](uint64_t pos, oid_t result_pos) {
                  uint32_t page_index = rec_page[result_pos];
                  uint32_t off = rec_off[result_pos];
                  uint32_t len = sizes[result_pos];
                  // Zero-length records still get a slot but copy nothing
                  // (an all-empty column's heap pointer may be null).
                  if (len != 0) {
                    pages[page_index]->WriteAt(
                        off, values.bytes.data() + values.offsets[pos], len);
                  }
                  result.directory[result_pos] = {first + page_index, off,
                                                  len};
                });
  // Record the slot directory per page (record offsets at end of page).
  std::vector<uint32_t> slot_counter(num_pages, 0);
  for (size_t i = 0; i < n; ++i) {
    const PagedLocation& loc = result.directory[i];
    size_t page_index = loc.page - first;
    pages[page_index]->SetSlot(slot_counter[page_index]++,
                               static_cast<uint16_t>(
                                   sizeof(bufferpool::Page::Header) + loc.offset),
                               static_cast<uint16_t>(loc.length));
  }
  return result;
}

storage::VarcharColumn RadixDeclusterVarchar(
    const storage::VarcharColumn& values, std::span<const oid_t> ids,
    const cluster::ClusterBorders& borders, size_t window_elems) {
  size_t n = ids.size();
  RADIX_CHECK(
      ValidatePagedDecluster(values.size(), ids, borders, window_elems).ok());
  DCheckDeclusterPreconditions(ids, borders);
  if (n == 0) return {};

  // Phase 1: decluster the lengths into result order.
  std::vector<uint32_t> sizes(n);
  DeclusterLoop(ids, MakeCursors(borders), window_elems,
                [&](uint64_t pos, oid_t result_pos) {
                  sizes[result_pos] = values.length(pos);
                });

  // Phase 2: prefix sum -> each result value's heap start.
  std::vector<uint64_t> start(n + 1, 0);
  for (size_t i = 0; i < n; ++i) start[i + 1] = start[i] + sizes[i];

  // Phase 3: decluster the bytes to their final heap positions. Build the
  // column storage directly so no per-value append bookkeeping runs in the
  // hot loop.
  std::vector<uint8_t> heap(start[n]);
  std::span<const uint8_t> src_heap = values.heap();
  std::span<const uint64_t> src_offsets = values.offsets();
  DeclusterLoop(ids, MakeCursors(borders), window_elems,
                [&](uint64_t pos, oid_t result_pos) {
                  if (sizes[result_pos] != 0) {
                    std::memcpy(heap.data() + start[result_pos],
                                src_heap.data() + src_offsets[pos],
                                sizes[result_pos]);
                  }
                });
  storage::VarcharColumn out;
  out.Reserve(n, heap.size());
  for (size_t i = 0; i < n; ++i) {
    out.Append({reinterpret_cast<const char*>(heap.data()) + start[i],
                sizes[i]});
  }
  return out;
}

PagedResult PagedDeclusterFixed(std::span<const value_t> values,
                                std::span<const oid_t> ids,
                                const cluster::ClusterBorders& borders,
                                size_t window_elems,
                                bufferpool::BufferManager* bm) {
  size_t n = ids.size();
  RADIX_CHECK(
      ValidatePagedDecluster(values.size(), ids, borders, window_elems).ok());
  DCheckDeclusterPreconditions(ids, borders);
  if (n == 0) return {};
  size_t payload = bm->payload_capacity();
  size_t per_page = payload / sizeof(value_t);
  size_t num_pages = (n + per_page - 1) / per_page;
  bufferpool::page_id_t first = bm->Allocate(num_pages);

  PagedResult result;
  result.first_page = first;
  result.num_pages = num_pages;
  result.directory.resize(n);

  // Fixed width: page and offset derive from the result oid directly; one
  // decluster pass suffices (paper §5, final remark). Snapshot the page
  // range once so the hot loop never touches the directory lock.
  std::vector<bufferpool::Page*> pages = bm->PageRange(first, num_pages);
  DeclusterLoop(ids, MakeCursors(borders), window_elems,
                [&](uint64_t pos, oid_t result_pos) {
                  size_t page_index = result_pos / per_page;
                  uint32_t off = static_cast<uint32_t>(
                      (result_pos % per_page) * sizeof(value_t));
                  value_t v = values[pos];
                  pages[page_index]->WriteAt(
                      off, reinterpret_cast<const uint8_t*>(&v),
                      sizeof(value_t));
                  result.directory[result_pos] = {
                      first + static_cast<bufferpool::page_id_t>(page_index),
                      off, static_cast<uint32_t>(sizeof(value_t))};
                });
  return result;
}

}  // namespace radix::decluster
