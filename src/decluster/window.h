#ifndef RADIX_DECLUSTER_WINDOW_H_
#define RADIX_DECLUSTER_WINDOW_H_

#include <cstddef>

#include "common/types.h"
#include "hardware/memory_hierarchy.h"

namespace radix::decluster {

/// Insertion-window sizing for Radix-Decluster (paper §3.2 / Fig. 7a).
/// Two constraints bound the window:
///   * ||W|| must fit the target cache (it is filled in random order);
///     beyond C, L2 misses spike — the cliff in Fig. 7a;
///   * the average tuples-per-cluster-per-iteration w = |W| / 2^B should be
///     at least ~32 so the sequential scans of CLUST_VALUES / CLUST_RESULT
///     amortize per-cluster (TLB) startup costs.
/// From these, relations up to |R| = C^2 / (32 * width^2) can be handled
/// efficiently — the scalability bound quoted in the paper's conclusion.
struct WindowPolicy {
  /// Minimum average tuples read per cluster per window sweep.
  static constexpr size_t kMinTuplesPerClusterSweep = 32;

  /// Paper Fig. 6 uses CACHESIZE / (2 * sizeof(T)): half the cache for the
  /// window (in elements), the other half left to the sequential streams.
  static size_t DefaultWindowElems(const hardware::MemoryHierarchy& hw,
                                   size_t elem_bytes);

  /// Window size honoring both constraints for a given cluster count; never
  /// exceeds the cache, and grows to give each cluster >= kMin... tuples
  /// per sweep when possible within the cache bound.
  static size_t ChooseWindowElems(const hardware::MemoryHierarchy& hw,
                                  size_t elem_bytes, size_t num_clusters,
                                  size_t cardinality);

  /// Largest relation (in tuples) Radix-Decluster handles without cache or
  /// TLB trouble: C^2 / (kMin * width^2), paper §4.1.
  static size_t MaxEfficientCardinality(const hardware::MemoryHierarchy& hw,
                                        size_t elem_bytes);
};

}  // namespace radix::decluster

#endif  // RADIX_DECLUSTER_WINDOW_H_
