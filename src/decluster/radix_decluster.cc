#include "decluster/radix_decluster.h"

namespace radix::decluster {

std::vector<ClusterCursor> MakeCursors(
    const cluster::ClusterBorders& borders) {
  std::vector<ClusterCursor> cursors;
  cursors.reserve(borders.num_clusters());
  for (size_t k = 0; k < borders.num_clusters(); ++k) {
    if (borders.size(k) == 0) continue;  // empty clusters never participate
    cursors.push_back({borders.start(k), borders.end(k)});
  }
  return cursors;
}

std::vector<ClusterCursor> MakeCursorsForRange(
    const cluster::ClusterBorders& borders, size_t cluster_begin,
    size_t cluster_end) {
  RADIX_CHECK(cluster_begin <= cluster_end);
  RADIX_CHECK(cluster_end <= borders.num_clusters());
  std::vector<ClusterCursor> cursors;
  cursors.reserve(cluster_end - cluster_begin);
  for (size_t k = cluster_begin; k < cluster_end; ++k) {
    if (borders.size(k) == 0) continue;
    cursors.push_back({borders.start(k), borders.end(k)});
  }
  return cursors;
}

void AssertDeclusterPreconditions(std::span<const oid_t> ids,
                                  const std::vector<ClusterCursor>& clusters,
                                  size_t result_size) {
  std::vector<bool> seen(result_size, false);
  size_t covered = 0;
  for (const ClusterCursor& c : clusters) {
    RADIX_CHECK(c.start < c.end);         // empty cursors must be dropped
    RADIX_CHECK(c.end <= ids.size());     // cursor range inside the array
    oid_t prev = 0;
    for (uint64_t pos = c.start; pos < c.end; ++pos) {
      oid_t id = ids[pos];
      RADIX_CHECK(id < result_size);          // id addresses the result
      RADIX_CHECK(pos == c.start || id > prev);  // ascending within cluster
      RADIX_CHECK(!seen[id]);                 // no duplicate result position
      seen[id] = true;
      prev = id;
      ++covered;
    }
  }
  // Dense: the cursors cover every id exactly once and every result slot
  // receives a value.
  RADIX_CHECK(covered == result_size);
}

// Pin the hot instantiations.
template void RadixDecluster<value_t, simcache::NoTracer>(
    std::span<const value_t>, std::span<const oid_t>,
    std::vector<ClusterCursor>, size_t, std::span<value_t>,
    simcache::NoTracer*);
template void RadixDecluster<value_t, simcache::MemTracer>(
    std::span<const value_t>, std::span<const oid_t>,
    std::vector<ClusterCursor>, size_t, std::span<value_t>,
    simcache::MemTracer*);
template void RadixDeclusterParallel<value_t>(
    std::span<const value_t>, std::span<const oid_t>,
    const std::vector<ClusterCursor>&, size_t, std::span<value_t>,
    ThreadPool&);

}  // namespace radix::decluster
