#include "decluster/radix_decluster.h"

namespace radix::decluster {

std::vector<ClusterCursor> MakeCursors(
    const cluster::ClusterBorders& borders) {
  std::vector<ClusterCursor> cursors;
  cursors.reserve(borders.num_clusters());
  for (size_t k = 0; k < borders.num_clusters(); ++k) {
    if (borders.size(k) == 0) continue;  // empty clusters never participate
    cursors.push_back({borders.start(k), borders.end(k)});
  }
  return cursors;
}

// Pin the hot instantiations.
template void RadixDecluster<value_t, simcache::NoTracer>(
    std::span<const value_t>, std::span<const oid_t>,
    std::vector<ClusterCursor>, size_t, std::span<value_t>,
    simcache::NoTracer*);
template void RadixDecluster<value_t, simcache::MemTracer>(
    std::span<const value_t>, std::span<const oid_t>,
    std::vector<ClusterCursor>, size_t, std::span<value_t>,
    simcache::MemTracer*);

}  // namespace radix::decluster
