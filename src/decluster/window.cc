#include "decluster/window.h"

#include <algorithm>

namespace radix::decluster {

size_t WindowPolicy::DefaultWindowElems(const hardware::MemoryHierarchy& hw,
                                        size_t elem_bytes) {
  size_t cache = hw.target_cache().capacity_bytes;
  return std::max<size_t>(1, cache / (2 * elem_bytes));
}

size_t WindowPolicy::ChooseWindowElems(const hardware::MemoryHierarchy& hw,
                                       size_t elem_bytes, size_t num_clusters,
                                       size_t cardinality) {
  size_t cache_bound = DefaultWindowElems(hw, elem_bytes);
  size_t want = num_clusters * kMinTuplesPerClusterSweep;
  size_t window = std::min(cache_bound, std::max<size_t>(want, 1024));
  return std::min(window, std::max<size_t>(cardinality, 1));
}

size_t WindowPolicy::MaxEfficientCardinality(
    const hardware::MemoryHierarchy& hw, size_t elem_bytes) {
  size_t c = hw.target_cache().capacity_bytes;
  return c / elem_bytes * c / (kMinTuplesPerClusterSweep * elem_bytes);
}

}  // namespace radix::decluster
