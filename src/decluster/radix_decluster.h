#ifndef RADIX_DECLUSTER_RADIX_DECLUSTER_H_
#define RADIX_DECLUSTER_RADIX_DECLUSTER_H_

#include <cstring>
#include <span>
#include <vector>

#include "cluster/radix_cluster.h"
#include "common/macros.h"
#include "common/types.h"
#include "simcache/mem_tracer.h"

namespace radix::decluster {

/// Mutable per-cluster cursor state for the window merge; initialized from
/// radix_count borders (paper Fig. 4/6).
struct ClusterCursor {
  uint64_t start;  ///< next unread element of this cluster
  uint64_t end;    ///< one past the cluster's last element
};

/// Build the cursor array from cluster borders (dropping empty clusters,
/// which the merge loop would otherwise delete on first touch).
std::vector<ClusterCursor> MakeCursors(const cluster::ClusterBorders& borders);

/// Radix-Decluster (paper §3.2, pseudo-code in Fig. 6) — the paper's main
/// contribution.
///
/// Inputs: `values[i]` must end up at `result[ids[i]]`, where `ids` is a
/// permutation of [0, n) that has been radix-CLUSTERED on its upper bits
/// (so within each cluster ids are ascending, and across the whole array
/// they form a dense sequence — properties (1) and (2) of §3.2).
///
/// The merge restricts the random insertion pattern to a window of
/// `window_elems` result slots: each sweep visits every live cluster and
/// consumes its prefix of ids below the window limit (sequential reads of
/// values/ids), scattering into the window (cacheable random writes);
/// exhausted clusters are deleted by swapping in the last cluster. After a
/// sweep the window is full (density), so the limit advances.
///
/// CPU cost O(n + #windows * #clusters); memory cost sequential except for
/// the in-cache window — the best of merge-sort and direct insertion.
template <typename T, typename Tracer = simcache::NoTracer>
void RadixDecluster(std::span<const T> values, std::span<const oid_t> ids,
                    std::vector<ClusterCursor> clusters, size_t window_elems,
                    std::span<T> result, Tracer* tracer = nullptr) {
  RADIX_CHECK(values.size() == ids.size());
  RADIX_CHECK(result.size() == ids.size());
  RADIX_CHECK(window_elems > 0);

  const T* v = values.data();
  const oid_t* id = ids.data();
  T* out = result.data();
  size_t nclusters = clusters.size();
  ClusterCursor* cl = clusters.data();

  for (uint64_t window_limit = window_elems; nclusters > 0;
       window_limit += window_elems) {
    for (size_t i = 0; i < nclusters; ++i) {
      // Repeated sequential scan over the (small, cacheable) cursor array.
      if constexpr (Tracer::kEnabled) tracer->Touch(&cl[i], sizeof(ClusterCursor));
      while (true) {
        uint64_t pos = cl[i].start;
        if constexpr (Tracer::kEnabled) tracer->Touch(&id[pos], sizeof(oid_t));
        if (id[pos] >= window_limit) break;  // rest of cluster outside window
        if constexpr (Tracer::kEnabled) {
          tracer->Touch(&v[pos], sizeof(T));
          tracer->Touch(&out[id[pos]], sizeof(T));
        }
        out[id[pos]] = v[pos];
        if (++cl[i].start >= cl[i].end) {
          // Delete the exhausted cluster and keep draining the one swapped
          // into slot i (exactly as in paper Fig. 6).
          cl[i] = cl[--nclusters];
          if (i >= nclusters) break;
        }
      }
      if (i >= nclusters) break;
    }
  }
}

/// Convenience overload: cursors from borders, result allocated by caller.
template <typename T, typename Tracer = simcache::NoTracer>
void RadixDecluster(std::span<const T> values, std::span<const oid_t> ids,
                    const cluster::ClusterBorders& borders,
                    size_t window_elems, std::span<T> result,
                    Tracer* tracer = nullptr) {
  RadixDecluster(values, ids, MakeCursors(borders), window_elems, result,
                 tracer);
}

/// Byte-oriented Radix-Decluster for fixed-width rows of `row_bytes` each
/// (the NSM post-projection path, where one "value" is a π-attribute
/// record). Scalability degrades with row width as O(C^2 / T^2) — the
/// effect the paper uses to explain why Radix-Decluster favours DSM.
template <typename Tracer = simcache::NoTracer>
void RadixDeclusterRows(const uint8_t* values, size_t row_bytes,
                        std::span<const oid_t> ids,
                        std::vector<ClusterCursor> clusters,
                        size_t window_elems, uint8_t* result,
                        Tracer* tracer = nullptr) {
  RADIX_CHECK(window_elems > 0);
  const oid_t* id = ids.data();
  size_t nclusters = clusters.size();
  ClusterCursor* cl = clusters.data();

  for (uint64_t window_limit = window_elems; nclusters > 0;
       window_limit += window_elems) {
    for (size_t i = 0; i < nclusters; ++i) {
      if constexpr (Tracer::kEnabled) tracer->Touch(&cl[i], sizeof(ClusterCursor));
      while (true) {
        uint64_t pos = cl[i].start;
        if constexpr (Tracer::kEnabled) tracer->Touch(&id[pos], sizeof(oid_t));
        if (id[pos] >= window_limit) break;
        if constexpr (Tracer::kEnabled) {
          tracer->Touch(values + pos * row_bytes, row_bytes);
          tracer->Touch(result + size_t{id[pos]} * row_bytes, row_bytes);
        }
        std::memcpy(result + size_t{id[pos]} * row_bytes,
                    values + pos * row_bytes, row_bytes);
        if (++cl[i].start >= cl[i].end) {
          cl[i] = cl[--nclusters];
          if (i >= nclusters) break;
        }
      }
      if (i >= nclusters) break;
    }
  }
}

}  // namespace radix::decluster

#endif  // RADIX_DECLUSTER_RADIX_DECLUSTER_H_
