#ifndef RADIX_DECLUSTER_RADIX_DECLUSTER_H_
#define RADIX_DECLUSTER_RADIX_DECLUSTER_H_

#include <algorithm>
#include <cstring>
#include <span>
#include <vector>

#include "cluster/radix_cluster.h"
#include "common/macros.h"
#include "common/thread_pool.h"
#include "common/types.h"
#include "simcache/mem_tracer.h"

namespace radix::decluster {

/// Mutable per-cluster cursor state for the window merge; initialized from
/// radix_count borders (paper Fig. 4/6).
struct ClusterCursor {
  uint64_t start;  ///< next unread element of this cluster
  uint64_t end;    ///< one past the cluster's last element
};

/// Build the cursor array from cluster borders (dropping empty clusters,
/// which the merge loop would otherwise delete on first touch).
std::vector<ClusterCursor> MakeCursors(const cluster::ClusterBorders& borders);

/// Cursors for clusters [cluster_begin, cluster_end) only — one chunk of a
/// streamed decluster (pipeline/). Empty clusters are dropped as in
/// MakeCursors.
std::vector<ClusterCursor> MakeCursorsForRange(
    const cluster::ClusterBorders& borders, size_t cluster_begin,
    size_t cluster_end);

/// Debug-build verification of the §3.2 preconditions the window merge
/// relies on: within every cluster the ids ascend strictly, and across all
/// clusters they form a dense permutation of [0, result_size). A miswired
/// caller (ids not actually radix-clustered, cursors not covering the
/// array, duplicate result positions) would otherwise produce silently
/// wrong results; this turns it into a RADIX_CHECK failure. O(n), so it is
/// compiled out of NDEBUG builds.
void AssertDeclusterPreconditions(std::span<const oid_t> ids,
                                  const std::vector<ClusterCursor>& clusters,
                                  size_t result_size);

namespace detail {

/// The window-merge core (paper Fig. 6), shared by the serial kernel and by
/// each range of the parallel kernel: drain `clusters` (all of whose ids
/// must be < the last window limit reached) into `out`, advancing the
/// window from `first_limit` in steps of `window_elems`. Exhausted clusters
/// are deleted by swapping in the last cluster.
template <typename T, typename Tracer>
void DeclusterMergeRange(const T* v, const oid_t* id, ClusterCursor* cl,
                         size_t nclusters, size_t window_elems,
                         uint64_t first_limit, T* out, Tracer* tracer) {
  for (uint64_t window_limit = first_limit; nclusters > 0;
       window_limit += window_elems) {
    for (size_t i = 0; i < nclusters; ++i) {
      // Repeated sequential scan over the (small, cacheable) cursor array.
      if constexpr (Tracer::kEnabled) tracer->Touch(&cl[i], sizeof(ClusterCursor));
      while (true) {
        uint64_t pos = cl[i].start;
        if constexpr (Tracer::kEnabled) tracer->Touch(&id[pos], sizeof(oid_t));
        if (id[pos] >= window_limit) break;  // rest of cluster outside window
        if constexpr (Tracer::kEnabled) {
          tracer->Touch(&v[pos], sizeof(T));
          tracer->Touch(&out[id[pos]], sizeof(T));
        }
        out[id[pos]] = v[pos];
        if (++cl[i].start >= cl[i].end) {
          // Delete the exhausted cluster and keep draining the one swapped
          // into slot i (exactly as in paper Fig. 6).
          cl[i] = cl[--nclusters];
          if (i >= nclusters) break;
        }
      }
      if (i >= nclusters) break;
    }
  }
}

/// Window merge over a *subset* of the clusters — one chunk of a streamed
/// decluster. Unlike DeclusterMergeRange, the chunk's ids are not dense in
/// the result (each window typically holds only a 1/#chunks fraction of
/// this chunk's tuples), so a fixed-step window advance would sweep the
/// cursor array once per window even when the window has nothing to drain.
/// Instead, after each sweep the limit jumps straight to the window holding
/// the smallest id still unconsumed, keeping the merge O(tuples +
/// touched_windows * chunk_clusters). Values are chunk-local:
/// v[pos - v_off] is the payload of global clustered position pos.
template <typename T>
void DeclusterMergeSparse(const T* v, uint64_t v_off, const oid_t* id,
                          ClusterCursor* cl, size_t nclusters,
                          size_t window_elems, T* out) {
  if (nclusters == 0) return;
  uint64_t min_id = id[cl[0].start];
  for (size_t i = 1; i < nclusters; ++i) {
    min_id = std::min<uint64_t>(min_id, id[cl[i].start]);
  }
  uint64_t window_limit = (min_id / window_elems + 1) * window_elems;
  while (nclusters > 0) {
    uint64_t min_next = ~uint64_t{0};
    for (size_t i = 0; i < nclusters; ++i) {
      while (true) {
        uint64_t pos = cl[i].start;
        if (id[pos] >= window_limit) {
          min_next = std::min<uint64_t>(min_next, id[pos]);
          break;
        }
        out[id[pos]] = v[pos - v_off];
        if (++cl[i].start >= cl[i].end) {
          // Swap-delete exactly as in Fig. 6; keep draining the cluster
          // swapped into slot i (its already-recorded min_next stays valid).
          cl[i] = cl[--nclusters];
          if (i >= nclusters) break;
        }
      }
      if (i >= nclusters) break;
    }
    if (nclusters == 0) break;
    window_limit = (min_next / window_elems + 1) * window_elems;
  }
}

}  // namespace detail

/// Radix-Decluster (paper §3.2, pseudo-code in Fig. 6) — the paper's main
/// contribution.
///
/// Inputs: `values[i]` must end up at `result[ids[i]]`, where `ids` is a
/// permutation of [0, n) that has been radix-CLUSTERED on its upper bits
/// (so within each cluster ids are ascending, and across the whole array
/// they form a dense sequence — properties (1) and (2) of §3.2). Debug
/// builds verify both properties (AssertDeclusterPreconditions).
///
/// The merge restricts the random insertion pattern to a window of
/// `window_elems` result slots: each sweep visits every live cluster and
/// consumes its prefix of ids below the window limit (sequential reads of
/// values/ids), scattering into the window (cacheable random writes);
/// exhausted clusters are deleted by swapping in the last cluster. After a
/// sweep the window is full (density), so the limit advances.
///
/// CPU cost O(n + #windows * #clusters); memory cost sequential except for
/// the in-cache window — the best of merge-sort and direct insertion.
template <typename T, typename Tracer = simcache::NoTracer>
void RadixDecluster(std::span<const T> values, std::span<const oid_t> ids,
                    std::vector<ClusterCursor> clusters, size_t window_elems,
                    std::span<T> result, Tracer* tracer = nullptr) {
  RADIX_CHECK(values.size() == ids.size());
  RADIX_CHECK(result.size() == ids.size());
  RADIX_CHECK(window_elems > 0);
#ifndef NDEBUG
  AssertDeclusterPreconditions(ids, clusters, result.size());
#endif
  detail::DeclusterMergeRange(values.data(), ids.data(), clusters.data(),
                              clusters.size(), window_elems,
                              /*first_limit=*/window_elems, result.data(),
                              tracer);
}

/// Convenience overload: cursors from borders, result allocated by caller.
template <typename T, typename Tracer = simcache::NoTracer>
void RadixDecluster(std::span<const T> values, std::span<const oid_t> ids,
                    const cluster::ClusterBorders& borders,
                    size_t window_elems, std::span<T> result,
                    Tracer* tracer = nullptr) {
  RadixDecluster(values, ids, MakeCursors(borders), window_elems, result,
                 tracer);
}

/// Parallel Radix-Decluster: partitions the *result* into disjoint ranges
/// of whole insertion windows and runs the Fig. 6 merge independently per
/// range. Each work item owns private ClusterCursor copies pre-seeked to
/// its range (a binary search per cluster — ids ascend within a cluster,
/// §3.2 property (2)), so threads read shared values/ids but write disjoint
/// result slices. Every result slot is written exactly once with the same
/// value as serially, so the output is byte-identical to RadixDecluster;
/// a size-1 pool takes the serial path outright.
template <typename T>
void RadixDeclusterParallel(std::span<const T> values,
                            std::span<const oid_t> ids,
                            const std::vector<ClusterCursor>& clusters,
                            size_t window_elems, std::span<T> result,
                            ThreadPool& pool) {
  RADIX_CHECK(values.size() == ids.size());
  RADIX_CHECK(result.size() == ids.size());
  RADIX_CHECK(window_elems > 0);
  size_t n = result.size();
  size_t windows = (n + window_elems - 1) / window_elems;
  if (pool.num_threads() <= 1 || windows <= 1) {
    RadixDecluster<T>(values, ids, clusters, window_elems, result);
    return;
  }
#ifndef NDEBUG
  AssertDeclusterPreconditions(ids, clusters, n);
#endif
  // More ranges than threads lets the work queue smooth out skew in how
  // many tuples land in each range's windows.
  size_t num_ranges = std::min(windows, pool.num_threads() * 4);
  const oid_t* id = ids.data();
  pool.ParallelFor(num_ranges, [&](size_t r) {
    uint64_t range_begin = (windows * r / num_ranges) * window_elems;
    uint64_t range_end =
        std::min<uint64_t>(n, (windows * (r + 1) / num_ranges) * window_elems);
    // Private cursors clipped to [range_begin, range_end): within each
    // cluster the ids ascend, so the clip points are binary searches.
    std::vector<ClusterCursor> local;
    local.reserve(clusters.size());
    for (const ClusterCursor& c : clusters) {
      const oid_t* lo = id + c.start;
      const oid_t* hi = id + c.end;
      const oid_t* first =
          range_begin == 0 ? lo
                           : std::lower_bound(lo, hi,
                                              static_cast<oid_t>(range_begin));
      const oid_t* last =
          range_end >= n ? hi
                         : std::lower_bound(first, hi,
                                            static_cast<oid_t>(range_end));
      if (first != last) {
        local.push_back({static_cast<uint64_t>(first - id),
                         static_cast<uint64_t>(last - id)});
      }
    }
    simcache::NoTracer* tracer = nullptr;
    detail::DeclusterMergeRange(values.data(), id, local.data(), local.size(),
                                window_elems,
                                /*first_limit=*/range_begin + window_elems,
                                result.data(), tracer);
  });
}

/// Radix-Decluster one chunk of a streamed projection (the sink stage of
/// pipeline/): `chunk_values` holds the payloads for global clustered
/// positions [value_offset, value_offset + chunk rows); `ids` is the full
/// clustered result-position column; `clusters` are the cursors of this
/// chunk's cluster range only (MakeCursorsForRange). Writes exactly the
/// result slots this chunk's ids name — cluster-aligned chunks partition
/// the clustered array, so concurrent calls on distinct chunks touch
/// disjoint slots of `result`, and the union over all chunks is
/// byte-identical to one full RadixDecluster.
/// `validate` lets a caller that merges the same chunk once per projected
/// column run the (debug-build) precondition sweep only on the first merge
/// instead of pi times.
template <typename T>
void RadixDeclusterChunk(const T* chunk_values, uint64_t value_offset,
                         std::span<const oid_t> ids,
                         std::vector<ClusterCursor> clusters,
                         size_t window_elems, std::span<T> result,
                         bool validate = true) {
  RADIX_CHECK(window_elems > 0);
#ifndef NDEBUG
  // Chunk-scoped §3.2 preconditions: strict ascent within each cluster and
  // ids addressing the result. (Density and cross-chunk disjointness are
  // whole-pipeline properties; the streaming-vs-materializing equality
  // tests cover them.)
  if (validate) {
    for (const ClusterCursor& c : clusters) {
      RADIX_CHECK(c.start < c.end);
      RADIX_CHECK(c.start >= value_offset && c.end <= ids.size());
      for (uint64_t p = c.start; p < c.end; ++p) {
        RADIX_CHECK(ids[p] < result.size());
        RADIX_CHECK(p + 1 == c.end || ids[p] < ids[p + 1]);
      }
    }
  }
#else
  (void)validate;
#endif
  detail::DeclusterMergeSparse(chunk_values, value_offset, ids.data(),
                               clusters.data(), clusters.size(), window_elems,
                               result.data());
}

/// Byte-oriented Radix-Decluster for fixed-width rows of `row_bytes` each
/// (the NSM post-projection path, where one "value" is a π-attribute
/// record). Scalability degrades with row width as O(C^2 / T^2) — the
/// effect the paper uses to explain why Radix-Decluster favours DSM.
template <typename Tracer = simcache::NoTracer>
void RadixDeclusterRows(const uint8_t* values, size_t row_bytes,
                        std::span<const oid_t> ids,
                        std::vector<ClusterCursor> clusters,
                        size_t window_elems, uint8_t* result,
                        Tracer* tracer = nullptr) {
  RADIX_CHECK(window_elems > 0);
#ifndef NDEBUG
  AssertDeclusterPreconditions(ids, clusters, ids.size());
#endif
  const oid_t* id = ids.data();
  size_t nclusters = clusters.size();
  ClusterCursor* cl = clusters.data();

  for (uint64_t window_limit = window_elems; nclusters > 0;
       window_limit += window_elems) {
    for (size_t i = 0; i < nclusters; ++i) {
      if constexpr (Tracer::kEnabled) tracer->Touch(&cl[i], sizeof(ClusterCursor));
      while (true) {
        uint64_t pos = cl[i].start;
        if constexpr (Tracer::kEnabled) tracer->Touch(&id[pos], sizeof(oid_t));
        if (id[pos] >= window_limit) break;
        if constexpr (Tracer::kEnabled) {
          tracer->Touch(values + pos * row_bytes, row_bytes);
          tracer->Touch(result + size_t{id[pos]} * row_bytes, row_bytes);
        }
        std::memcpy(result + size_t{id[pos]} * row_bytes,
                    values + pos * row_bytes, row_bytes);
        if (++cl[i].start >= cl[i].end) {
          cl[i] = cl[--nclusters];
          if (i >= nclusters) break;
        }
      }
      if (i >= nclusters) break;
    }
  }
}

}  // namespace radix::decluster

#endif  // RADIX_DECLUSTER_RADIX_DECLUSTER_H_
