#ifndef RADIX_DECLUSTER_PAGED_DECLUSTER_H_
#define RADIX_DECLUSTER_PAGED_DECLUSTER_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bufferpool/buffer_manager.h"
#include "cluster/radix_cluster.h"
#include "common/status.h"
#include "common/types.h"
#include "decluster/radix_decluster.h"
#include "storage/varchar.h"

namespace radix::decluster {

/// A variable-size (string) column in clustered order: concatenated bytes
/// plus per-entry offsets, the clustered CLUST_VALUES of paper Fig. 12.
struct VarValues {
  std::vector<uint8_t> bytes;
  std::vector<uint64_t> offsets;  ///< size n+1

  size_t size() const { return offsets.empty() ? 0 : offsets.size() - 1; }
  std::string_view at(size_t i) const {
    return {reinterpret_cast<const char*>(bytes.data()) + offsets[i],
            static_cast<size_t>(offsets[i + 1] - offsets[i])};
  }
  void Append(std::string_view s) {
    if (offsets.empty()) offsets.push_back(0);
    bytes.insert(bytes.end(), s.begin(), s.end());
    offsets.push_back(bytes.size());
  }
};

/// Where each result tuple landed: page id + payload offset + length; the
/// record offsets stored "at end of page" in Fig. 12 are set accordingly.
struct PagedLocation {
  bufferpool::page_id_t page;
  uint32_t offset;
  uint32_t length;
};

/// Result of a paged decluster: the pages live in the buffer manager; the
/// directory maps result position -> location for verification/reads.
/// An empty input declusters to num_pages == 0 with no allocation.
struct PagedResult {
  bufferpool::page_id_t first_page = 0;
  size_t num_pages = 0;
  std::vector<PagedLocation> directory;

  /// Bounds-checked (RADIX_CHECK) directory lookup.
  std::string_view Read(const bufferpool::BufferManager& bm, size_t i) const;
};

/// Validate a paged/varchar decluster input (the recoverable-Status twin
/// of the RADIX_CHECKs the kernels apply, matching ValidateClusterSpec's
/// contract style): `num_values` values and `ids` must agree in size, the
/// borders must be a monotone partition of exactly that range starting at
/// 0, and the insertion window must be non-empty (a zero window would make
/// the merge loop spin forever without retiring a tuple).
[[nodiscard]] Status ValidatePagedDecluster(
    size_t num_values, std::span<const oid_t> ids,
    const cluster::ClusterBorders& borders, size_t window_elems);

/// Section 5 of the paper: Radix-Decluster into buffer-manager pages for
/// variable-sized values, where "insert by position" cannot address a page
/// directly. Three phases, exactly as Fig. 12:
///   1. run Radix-Decluster but only scatter each value's *length* into a
///      positionally addressable integer array (SIZE_VALUES);
///   2. sequential prefix-sum over the lengths, yielding each tuple's byte
///      position B, hence page# = B / P and offset = B % P;
///   3. re-run Radix-Decluster, copying each value to its page and offset.
/// For fixed-size values the extra passes are unnecessary (page/offset
/// follow from the oid), which PagedDeclusterFixed exploits.
PagedResult PagedDeclusterVar(const VarValues& values,
                              std::span<const oid_t> ids,
                              const cluster::ClusterBorders& borders,
                              size_t window_elems,
                              bufferpool::BufferManager* bm);

/// Fixed-size fast path (paper §5 note): page and offset are computed
/// directly from the result oid; a single decluster pass writes into pages.
PagedResult PagedDeclusterFixed(std::span<const value_t> values,
                                std::span<const oid_t> ids,
                                const cluster::ClusterBorders& borders,
                                size_t window_elems,
                                bufferpool::BufferManager* bm);

/// Flat (in-memory column) variant of the three-phase scheme: decluster a
/// varchar column into result order, producing offsets + one contiguous
/// heap. Phases mirror Fig. 12 minus the page arithmetic: (1) decluster
/// lengths, (2) prefix-sum into heap positions, (3) decluster copies.
storage::VarcharColumn RadixDeclusterVarchar(
    const storage::VarcharColumn& values, std::span<const oid_t> ids,
    const cluster::ClusterBorders& borders, size_t window_elems);

}  // namespace radix::decluster

#endif  // RADIX_DECLUSTER_PAGED_DECLUSTER_H_
