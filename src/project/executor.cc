#include "project/executor.h"

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/hash.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "join/partitioned_hash_join.h"
#include "project/dsm_post.h"
#include "project/dsm_pre.h"
#include "project/nsm_post.h"
#include "project/nsm_pre.h"
#include "project/planner.h"

namespace radix::project {

// QueryOptions re-declares the auto sentinel so its header stays light;
// the two must never drift apart (JoinAndPlanDsmPost copies the bits
// fields verbatim into DsmPostOptions, where SpecFor compares to kAuto).
static_assert(QueryOptions::kAutoBits == DsmPostOptions::kAuto);

namespace {

/// Order-independent digest: sum of per-value hashes. Result order differs
/// legitimately across strategies (post-projection reorders the index), so
/// the checksum must not depend on it. Row contents must stay associated,
/// which we capture by hashing each row's values with their column index
/// and summing per-row digests.
uint64_t ChecksumRows(const storage::NsmResult& r) {
  uint64_t sum = 0;
  for (size_t i = 0; i < r.cardinality(); ++i) {
    const value_t* row = r.row(i);
    uint64_t row_digest = 0x9e3779b97f4a7c15ULL;
    for (size_t a = 0; a < r.width(); ++a) {
      row_digest = HashInt64(row_digest ^
                             (static_cast<uint64_t>(static_cast<uint32_t>(row[a])) +
                              (static_cast<uint64_t>(a) << 32)));
    }
    sum += row_digest;
  }
  return sum;
}

uint64_t ChecksumColumns(const storage::DsmResult& r) {
  uint64_t sum = 0;
  size_t width = r.left_columns.size() + r.right_columns.size();
  for (size_t i = 0; i < r.cardinality; ++i) {
    uint64_t row_digest = 0x9e3779b97f4a7c15ULL;
    size_t a = 0;
    for (const auto& col : r.left_columns) {
      row_digest = HashInt64(row_digest ^
                             (static_cast<uint64_t>(static_cast<uint32_t>(col[i])) +
                              (static_cast<uint64_t>(a) << 32)));
      ++a;
    }
    for (const auto& col : r.right_columns) {
      row_digest = HashInt64(row_digest ^
                             (static_cast<uint64_t>(static_cast<uint32_t>(col[i])) +
                              (static_cast<uint64_t>(a) << 32)));
      ++a;
    }
    sum += row_digest;
  }
  (void)width;
  return sum;
}

/// NSM post-projection strategies must first extract the key attribute from
/// the wide records (part of their join-phase cost).
std::vector<value_t> ExtractNsmKeys(const storage::NsmRelation& rel) {
  std::vector<value_t> keys(rel.cardinality());
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = rel.key(i);
  return keys;
}

/// Resolve the kernel pool for one query: an injected options.pool wins
/// (size-1 pools map to nullptr, the exact serial kernels); otherwise the
/// process-wide shared cache serves a pool of the requested size.
ThreadPool* ResolveQueryPool(const QueryOptions& options) {
  if (options.pool != nullptr) {
    return options.pool->num_threads() > 1 ? options.pool : nullptr;
  }
  return detail::SharedPoolFor(options.num_threads);
}

/// Shared prologue of the materializing and streaming kDsmPostDecluster
/// paths: run the join phase and resolve the per-side plan. Kept in one
/// place so the two entry points can never plan differently.
join::JoinIndex JoinAndPlanDsmPost(const workload::JoinWorkload& w,
                                   const QueryOptions& options,
                                   const hardware::MemoryHierarchy& hw,
                                   ThreadPool* pool, QueryRun* run,
                                   DsmPostOptions* popts) {
  Timer join_timer;
  join::JoinIndex index = join::PartitionedHashJoin(
      w.dsm_left.key().span(), w.dsm_right.key().span(), hw);
  run->phases.join_seconds = join_timer.ElapsedSeconds();

  if (options.plan_sides) {
    Plan plan = PlanDsmPost(w.dsm_left.cardinality(),
                            w.dsm_right.cardinality(), index.size(),
                            options.pi_left, options.pi_right, hw,
                            options.num_threads);
    *popts = plan.options;
    run->detail = plan.code;
  } else {
    popts->left = options.left;
    popts->right = options.right;
    popts->num_threads = options.num_threads;
    run->detail = std::string(SideStrategyCode(popts->left)) + "/" +
                  SideStrategyCode(popts->right);
  }
  popts->left_bits = options.left_bits;
  popts->right_bits = options.right_bits;
  popts->window_elems = options.window_elems;
  popts->pool = pool;
  // An injected pool owns the thread count outright: pin num_threads to its
  // size so a size-1 injected pool (pool == nullptr after resolution) can
  // never fall back to MakePool(num_threads) downstream and silently run
  // parallel kernels on a per-call pool.
  if (options.pool != nullptr) {
    popts->num_threads = options.pool->num_threads();
  }
  run->threads_used = pool != nullptr ? pool->num_threads() : 1;
  return index;
}

}  // namespace

namespace detail {

ThreadPool* SharedPoolFor(size_t num_threads) {
  if (num_threads == 0) num_threads = ThreadPool::DefaultThreads();
  if (num_threads <= 1) return nullptr;
  static std::mutex mu;
  static std::map<size_t, std::unique_ptr<ThreadPool>> pools;
  std::lock_guard<std::mutex> lock(mu);
  std::unique_ptr<ThreadPool>& pool = pools[num_threads];
  if (pool == nullptr) pool = std::make_unique<ThreadPool>(num_threads);
  return pool.get();
}

}  // namespace detail

QueryRun RunQuery(const workload::JoinWorkload& w, JoinStrategy strategy,
                  const QueryOptions& options,
                  const hardware::MemoryHierarchy& hw) {
  QueryRun run;
  run.strategy = strategy;
  Timer total;

  switch (strategy) {
    case JoinStrategy::kDsmPostDecluster: {
      DsmPostOptions popts;
      join::JoinIndex index = JoinAndPlanDsmPost(
          w, options, hw, ResolveQueryPool(options), &run, &popts);
      storage::DsmResult result =
          DsmPostProject(index, w.dsm_left, w.dsm_right, options.pi_left,
                         options.pi_right, hw, popts, &run.phases);
      run.seconds = total.ElapsedSeconds();
      run.result_cardinality = result.cardinality;
      run.checksum = ChecksumColumns(result);
      return run;
    }
    case JoinStrategy::kDsmPrePhash: {
      storage::NsmResult result =
          DsmPreProject(w.dsm_left, w.dsm_right, options.pi_left,
                        options.pi_right, hw, ~radix_bits_t{0}, &run.phases);
      run.seconds = total.ElapsedSeconds();
      run.result_cardinality = result.cardinality();
      run.checksum = ChecksumRows(result);
      return run;
    }
    case JoinStrategy::kNsmPreHash: {
      storage::NsmResult result = NsmPreProjectHash(
          w.nsm_left, w.nsm_right, options.pi_left, options.pi_right,
          &run.phases);
      run.seconds = total.ElapsedSeconds();
      run.result_cardinality = result.cardinality();
      run.checksum = ChecksumRows(result);
      return run;
    }
    case JoinStrategy::kNsmPrePhash: {
      storage::NsmResult result = NsmPreProjectPartitionedHash(
          w.nsm_left, w.nsm_right, options.pi_left, options.pi_right, hw,
          ~radix_bits_t{0}, &run.phases);
      run.seconds = total.ElapsedSeconds();
      run.result_cardinality = result.cardinality();
      run.checksum = ChecksumRows(result);
      return run;
    }
    case JoinStrategy::kNsmPostDecluster: {
      Timer join_timer;
      std::vector<value_t> lkeys = ExtractNsmKeys(w.nsm_left);
      std::vector<value_t> rkeys = ExtractNsmKeys(w.nsm_right);
      join::JoinIndex index = join::PartitionedHashJoin(lkeys, rkeys, hw);
      run.phases.join_seconds = join_timer.ElapsedSeconds();
      storage::NsmResult result = NsmPostProjectDecluster(
          index, w.nsm_left, w.nsm_right, options.pi_left, options.pi_right,
          hw, &run.phases);
      run.seconds = total.ElapsedSeconds();
      run.result_cardinality = result.cardinality();
      run.checksum = ChecksumRows(result);
      return run;
    }
    case JoinStrategy::kNsmPostJive: {
      Timer join_timer;
      std::vector<value_t> lkeys = ExtractNsmKeys(w.nsm_left);
      std::vector<value_t> rkeys = ExtractNsmKeys(w.nsm_right);
      join::JoinIndex index = join::PartitionedHashJoin(lkeys, rkeys, hw);
      run.phases.join_seconds = join_timer.ElapsedSeconds();
      storage::NsmResult result =
          NsmPostProjectJive(index, w.nsm_left, w.nsm_right, options.pi_left,
                             options.pi_right, /*cluster_bits=*/6,
                             &run.phases);
      run.seconds = total.ElapsedSeconds();
      run.result_cardinality = result.cardinality();
      run.checksum = ChecksumRows(result);
      return run;
    }
  }
  RADIX_CHECK(false);
  return run;
}

QueryRun RunQueryStreaming(const workload::JoinWorkload& w,
                           JoinStrategy strategy, const QueryOptions& options,
                           const hardware::MemoryHierarchy& hw) {
  if (strategy != JoinStrategy::kDsmPostDecluster) {
    return RunQuery(w, strategy, options, hw);
  }
  QueryRun run;
  run.strategy = strategy;
  Timer total;
  DsmPostOptions popts;
  join::JoinIndex index = JoinAndPlanDsmPost(
      w, options, hw, ResolveQueryPool(options), &run, &popts);
  storage::DsmResult result = DsmPostProjectStreaming(
      index, w.dsm_left, w.dsm_right, options.pi_left, options.pi_right, hw,
      popts, options.chunk_rows, &run.phases);
  run.seconds = total.ElapsedSeconds();
  run.result_cardinality = result.cardinality;
  run.checksum = ChecksumColumns(result);
  return run;
}

}  // namespace radix::project
