#include "project/executor.h"

#include <map>
#include <memory>
#include <vector>

#include "common/hash.h"
#include "common/mutex.h"
#include "common/overflow.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "join/partitioned_hash_join.h"
#include "join/positional_join.h"
#include "project/checksum.h"
#include "project/dsm_post.h"
#include "project/dsm_pre.h"
#include "project/nsm_post.h"
#include "project/nsm_pre.h"
#include "project/planner.h"
#include "storage/varchar.h"

namespace radix::project {

// QueryOptions re-declares the auto sentinel so its header stays light;
// the two must never drift apart (JoinAndPlanDsmPost copies the bits
// fields verbatim into DsmPostOptions, where SpecFor compares to kAuto).
static_assert(QueryOptions::kAutoBits == DsmPostOptions::kAuto);

namespace {

/// Result-order varchar columns gathered for the strategies whose primary
/// result type has no varchar slots (the NSM row results).
struct VarcharResult {
  std::vector<storage::VarcharColumn> left;
  std::vector<storage::VarcharColumn> right;

  bool empty() const { return left.empty() && right.empty(); }
  size_t rows() const {
    return !left.empty() ? left.front().size()
                         : (!right.empty() ? right.front().size() : 0);
  }
};

/// Order-independent digest: sum of per-row digests (see RowDigest for the
/// canonical column order). Result order differs legitimately across
/// strategies (post-projection reorders the index), so the checksum must
/// not depend on it; row contents — fixed and varchar alike — must stay
/// associated, which the per-row digest captures.
uint64_t ChecksumRows(const storage::NsmResult& r,
                      const VarcharResult* vars = nullptr) {
  uint64_t sum = 0;
  size_t n = r.cardinality();
  if (vars != nullptr && !vars->empty()) {
    // Row-major results of width 0 collapse to cardinality 0; the gathered
    // varchar columns still know the true row count.
    n = std::max(n, vars->rows());
  }
  for (size_t i = 0; i < n; ++i) {
    RowDigest digest;
    if (i < r.cardinality()) {
      const value_t* row = r.row(i);
      for (size_t a = 0; a < r.width(); ++a) digest.AddValue(row[a]);
    }
    if (vars != nullptr) {
      for (const auto& col : vars->left) digest.AddString(col.at(i));
      for (const auto& col : vars->right) digest.AddString(col.at(i));
    }
    sum = WrapAdd(sum, digest.digest());
  }
  return sum;
}

uint64_t ChecksumColumns(const storage::DsmResult& r) {
  uint64_t sum = 0;
  for (size_t i = 0; i < r.cardinality; ++i) {
    RowDigest digest;
    for (const auto& col : r.left_columns) digest.AddValue(col[i]);
    for (const auto& col : r.right_columns) digest.AddValue(col[i]);
    for (const auto& col : r.left_varchars) digest.AddString(col.at(i));
    for (const auto& col : r.right_varchars) digest.AddString(col.at(i));
    sum = WrapAdd(sum, digest.digest());
  }
  return sum;
}

/// Do the query options ask for any varchar projection?
bool WantsVarchar(const QueryOptions& options) {
  return options.pi_varchar_left + options.pi_varchar_right > 0;
}

/// The base varchar columns the options select, as a DsmPostProject spec.
VarcharProjection SelectVarchars(const workload::JoinWorkload& w,
                                 const QueryOptions& options) {
  RADIX_CHECK(options.pi_varchar_left <= w.left_varchars.size());
  RADIX_CHECK(options.pi_varchar_right <= w.right_varchars.size());
  VarcharProjection var;
  for (size_t c = 0; c < options.pi_varchar_left; ++c) {
    var.left.push_back(&w.left_varchars[c]);
  }
  for (size_t c = 0; c < options.pi_varchar_right; ++c) {
    var.right.push_back(&w.right_varchars[c]);
  }
  return var;
}

/// Post-join varchar gather for the non-DSM-post strategies: `pairs` holds
/// each result row's (left, right) source oids in result order — either
/// the projection-reordered join index, or the oid pairs a pre-projection
/// join carried through. Timing lands in phases.projection_seconds (it is
/// part of the strategy's projection work).
VarcharResult GatherVarchars(std::span<const cluster::OidPair> pairs,
                             const workload::JoinWorkload& w,
                             const QueryOptions& options,
                             PhaseBreakdown* phases) {
  VarcharResult vars;
  if (!WantsVarchar(options)) return vars;
  RADIX_CHECK(options.pi_varchar_left <= w.left_varchars.size());
  RADIX_CHECK(options.pi_varchar_right <= w.right_varchars.size());
  Timer timer;
  for (size_t c = 0; c < options.pi_varchar_left; ++c) {
    vars.left.push_back(join::PositionalJoinVarcharPairs(
        pairs, /*left_side=*/true, w.left_varchars[c]));
  }
  for (size_t c = 0; c < options.pi_varchar_right; ++c) {
    vars.right.push_back(join::PositionalJoinVarcharPairs(
        pairs, /*left_side=*/false, w.right_varchars[c]));
  }
  phases->projection_seconds += timer.ElapsedSeconds();
  return vars;
}

/// NSM post-projection strategies must first extract the key attribute from
/// the wide records (part of their join-phase cost).
std::vector<value_t> ExtractNsmKeys(const storage::NsmRelation& rel) {
  std::vector<value_t> keys(rel.cardinality());
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = rel.key(i);
  return keys;
}

/// Resolve the kernel pool for one query: an injected options.pool wins
/// (size-1 pools map to nullptr, the exact serial kernels); otherwise the
/// process-wide shared cache serves a pool of the requested size.
ThreadPool* ResolveQueryPool(const QueryOptions& options) {
  if (options.pool != nullptr) {
    return options.pool->num_threads() > 1 ? options.pool : nullptr;
  }
  return detail::SharedPoolFor(options.num_threads);
}

/// Shared prologue of the materializing and streaming kDsmPostDecluster
/// paths: run the join phase and resolve the per-side plan. Kept in one
/// place so the two entry points can never plan differently.
join::JoinIndex JoinAndPlanDsmPost(const workload::JoinWorkload& w,
                                   const QueryOptions& options,
                                   const hardware::MemoryHierarchy& hw,
                                   ThreadPool* pool, QueryRun* run,
                                   DsmPostOptions* popts) {
  Timer join_timer;
  join::PartitionedHashJoinOptions jopts;
  jopts.pool = pool;
  join::JoinIndex index = join::PartitionedHashJoin(
      w.dsm_left.key().span(), w.dsm_right.key().span(), hw, jopts);
  run->phases.join_seconds = join_timer.ElapsedSeconds();

  if (options.plan_sides) {
    size_t avg_left = workload::AverageVarcharBytes(
        w.left_varchars, options.pi_varchar_left);
    size_t avg_right = workload::AverageVarcharBytes(
        w.right_varchars, options.pi_varchar_right);
    Plan plan = PlanDsmPost(w.dsm_left.cardinality(),
                            w.dsm_right.cardinality(), index.size(),
                            options.pi_left, options.pi_right, hw,
                            options.num_threads, options.pi_varchar_left,
                            options.pi_varchar_right, avg_left, avg_right);
    *popts = plan.options;
    run->detail = plan.code;
  } else {
    popts->left = options.left;
    popts->right = options.right;
    popts->num_threads = options.num_threads;
    run->detail = std::string(SideStrategyCode(popts->left)) + "/" +
                  SideStrategyCode(popts->right);
  }
  popts->left_bits = options.left_bits;
  popts->right_bits = options.right_bits;
  popts->window_elems = options.window_elems;
  popts->pool = pool;
  popts->gauge = options.gauge;
  // An injected pool owns the thread count outright: pin num_threads to its
  // size so a size-1 injected pool (pool == nullptr after resolution) can
  // never fall back to MakePool(num_threads) downstream and silently run
  // parallel kernels on a per-call pool.
  if (options.pool != nullptr) {
    popts->num_threads = options.pool->num_threads();
  }
  run->threads_used = pool != nullptr ? pool->num_threads() : 1;
  return index;
}

}  // namespace

namespace detail {

ThreadPool* SharedPoolFor(size_t num_threads) {
  if (num_threads == 0) num_threads = ThreadPool::DefaultThreads();
  if (num_threads <= 1) return nullptr;
  // The pool registry mutex is a leaf lock; ThreadPool construction under
  // it spawns workers but never blocks on them.
  static Mutex mu;
  static std::map<size_t, std::unique_ptr<ThreadPool>> pools;
  MutexLock lock(mu);
  std::unique_ptr<ThreadPool>& pool = pools[num_threads];
  if (pool == nullptr) pool = std::make_unique<ThreadPool>(num_threads);
  return pool.get();
}

}  // namespace detail

QueryRun RunQuery(const workload::JoinWorkload& w, JoinStrategy strategy,
                  const QueryOptions& options,
                  const hardware::MemoryHierarchy& hw) {
  QueryRun run;
  run.strategy = strategy;
  Timer total;

  switch (strategy) {
    case JoinStrategy::kDsmPostDecluster: {
      DsmPostOptions popts;
      join::JoinIndex index = JoinAndPlanDsmPost(
          w, options, hw, ResolveQueryPool(options), &run, &popts);
      VarcharProjection var = SelectVarchars(w, options);
      storage::DsmResult result =
          DsmPostProject(index, w.dsm_left, w.dsm_right, options.pi_left,
                         options.pi_right, hw, popts, &run.phases,
                         WantsVarchar(options) ? &var : nullptr);
      run.seconds = total.ElapsedSeconds();
      run.result_cardinality = result.cardinality;
      run.checksum = ChecksumColumns(result);
      return run;
    }
    case JoinStrategy::kDsmPrePhash: {
      std::vector<join::OidPair> oids;
      storage::NsmResult result =
          DsmPreProject(w.dsm_left, w.dsm_right, options.pi_left,
                        options.pi_right, hw, ~radix_bits_t{0}, &run.phases,
                        WantsVarchar(options) ? &oids : nullptr);
      VarcharResult vars = GatherVarchars(oids, w, options, &run.phases);
      run.seconds = total.ElapsedSeconds();
      // Zero-width row results collapse to cardinality 0; for varchar-only
      // projection lists the gathered columns know the true row count.
      run.result_cardinality = std::max(result.cardinality(), vars.rows());
      run.checksum = ChecksumRows(result, &vars);
      return run;
    }
    case JoinStrategy::kNsmPreHash: {
      std::vector<join::OidPair> oids;
      storage::NsmResult result = NsmPreProjectHash(
          w.nsm_left, w.nsm_right, options.pi_left, options.pi_right,
          &run.phases, WantsVarchar(options) ? &oids : nullptr);
      VarcharResult vars = GatherVarchars(oids, w, options, &run.phases);
      run.seconds = total.ElapsedSeconds();
      run.result_cardinality = std::max(result.cardinality(), vars.rows());
      run.checksum = ChecksumRows(result, &vars);
      return run;
    }
    case JoinStrategy::kNsmPrePhash: {
      std::vector<join::OidPair> oids;
      storage::NsmResult result = NsmPreProjectPartitionedHash(
          w.nsm_left, w.nsm_right, options.pi_left, options.pi_right, hw,
          ~radix_bits_t{0}, &run.phases,
          WantsVarchar(options) ? &oids : nullptr);
      VarcharResult vars = GatherVarchars(oids, w, options, &run.phases);
      run.seconds = total.ElapsedSeconds();
      run.result_cardinality = std::max(result.cardinality(), vars.rows());
      run.checksum = ChecksumRows(result, &vars);
      return run;
    }
    case JoinStrategy::kNsmPostDecluster: {
      Timer join_timer;
      std::vector<value_t> lkeys = ExtractNsmKeys(w.nsm_left);
      std::vector<value_t> rkeys = ExtractNsmKeys(w.nsm_right);
      join::PartitionedHashJoinOptions jopts;
      jopts.pool = ResolveQueryPool(options);
      join::JoinIndex index =
          join::PartitionedHashJoin(lkeys, rkeys, hw, jopts);
      run.phases.join_seconds = join_timer.ElapsedSeconds();
      storage::NsmResult result = NsmPostProjectDecluster(
          index, w.nsm_left, w.nsm_right, options.pi_left, options.pi_right,
          hw, &run.phases);
      // The projector reordered the index in place; it now lists each
      // result row's oid pair in result order — the varchar gather input.
      VarcharResult vars =
          GatherVarchars(index.span(), w, options, &run.phases);
      run.seconds = total.ElapsedSeconds();
      run.result_cardinality = result.cardinality();
      run.checksum = ChecksumRows(result, &vars);
      return run;
    }
    case JoinStrategy::kNsmPostJive: {
      Timer join_timer;
      std::vector<value_t> lkeys = ExtractNsmKeys(w.nsm_left);
      std::vector<value_t> rkeys = ExtractNsmKeys(w.nsm_right);
      join::PartitionedHashJoinOptions jopts;
      jopts.pool = ResolveQueryPool(options);
      join::JoinIndex index =
          join::PartitionedHashJoin(lkeys, rkeys, hw, jopts);
      run.phases.join_seconds = join_timer.ElapsedSeconds();
      storage::NsmResult result =
          NsmPostProjectJive(index, w.nsm_left, w.nsm_right, options.pi_left,
                             options.pi_right, /*cluster_bits=*/6,
                             &run.phases);
      // Jive sorts the index by left oid; result row i <-> index[i].
      VarcharResult vars =
          GatherVarchars(index.span(), w, options, &run.phases);
      run.seconds = total.ElapsedSeconds();
      run.result_cardinality = result.cardinality();
      run.checksum = ChecksumRows(result, &vars);
      return run;
    }
  }
  RADIX_CHECK(false);
  return run;
}

QueryRun RunQueryStreaming(const workload::JoinWorkload& w,
                           JoinStrategy strategy, const QueryOptions& options,
                           const hardware::MemoryHierarchy& hw) {
  if (strategy != JoinStrategy::kDsmPostDecluster || WantsVarchar(options)) {
    // No streaming path for varchar projections yet (the chunk buffers are
    // fixed-width); the engine's planner mirrors this fallback, so Explain
    // never claims a varchar query streams.
    return RunQuery(w, strategy, options, hw);
  }
  QueryRun run;
  run.strategy = strategy;
  Timer total;
  DsmPostOptions popts;
  join::JoinIndex index = JoinAndPlanDsmPost(
      w, options, hw, ResolveQueryPool(options), &run, &popts);
  storage::DsmResult result = DsmPostProjectStreaming(
      index, w.dsm_left, w.dsm_right, options.pi_left, options.pi_right, hw,
      popts, options.chunk_rows, &run.phases);
  run.seconds = total.ElapsedSeconds();
  run.result_cardinality = result.cardinality;
  run.checksum = ChecksumColumns(result);
  return run;
}

}  // namespace radix::project
