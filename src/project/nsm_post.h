#ifndef RADIX_PROJECT_NSM_POST_H_
#define RADIX_PROJECT_NSM_POST_H_

#include <cstddef>

#include "common/types.h"
#include "hardware/memory_hierarchy.h"
#include "join/join_index.h"
#include "project/strategy.h"
#include "storage/nsm.h"

namespace radix::project {

/// NSM post-projection variants of paper §4.2: first compute the join
/// index from the key attributes only, then fetch the projected attributes
/// from the wide NSM base tables.
///
/// "NSM-post-decluster": cluster the index by left oid, copy left records'
/// attributes (record-wide fetch), re-cluster by right oid, copy right
/// attributes into a clustered intermediate, Radix-Decluster the row slices
/// back to result order. Scalability degrades as O(C^2/T^2) with the
/// result-row width T — the reason Radix-Decluster favours DSM.
storage::NsmResult NsmPostProjectDecluster(
    join::JoinIndex& index, const storage::NsmRelation& left,
    const storage::NsmRelation& right, size_t pi_left, size_t pi_right,
    const hardware::MemoryHierarchy& hw, PhaseBreakdown* phases = nullptr);

/// "NSM-post-jive": Jive-Join over the NSM base tables (index sorted by
/// left oid inside).
storage::NsmResult NsmPostProjectJive(join::JoinIndex& index,
                                      const storage::NsmRelation& left,
                                      const storage::NsmRelation& right,
                                      size_t pi_left, size_t pi_right,
                                      radix_bits_t cluster_bits = 6,
                                      PhaseBreakdown* phases = nullptr);

}  // namespace radix::project

#endif  // RADIX_PROJECT_NSM_POST_H_
