#ifndef RADIX_PROJECT_DSM_PRE_H_
#define RADIX_PROJECT_DSM_PRE_H_

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "hardware/memory_hierarchy.h"
#include "join/join_index.h"
#include "project/strategy.h"
#include "storage/dsm.h"
#include "storage/nsm.h"

namespace radix::project {

/// DSM pre-projection ("DSM-pre-phash" in Fig. 10): the projection columns
/// are gathered from the DSM columns *before* the join and travel through
/// Radix-Cluster and Partitioned Hash-Join as extra luggage. The gathered
/// tuples are wide (1 + pi values), so fewer fit per cluster and the
/// column list is a run-time parameter — both disadvantages the paper
/// attributes to pre-projection strategies.
///
/// `result_oids`, when non-null, receives each result row's matching
/// (left, right) source oids in result order: the oids are carried as an
/// extra hidden intermediate column through cluster + join (more luggage,
/// charged to this strategy's measured time), which is what lets varchar
/// projections be gathered after the join.
storage::NsmResult DsmPreProject(
    const storage::DsmRelation& left, const storage::DsmRelation& right,
    size_t pi_left, size_t pi_right, const hardware::MemoryHierarchy& hw,
    radix_bits_t bits, PhaseBreakdown* phases = nullptr,
    std::vector<join::OidPair>* result_oids = nullptr);

}  // namespace radix::project

#endif  // RADIX_PROJECT_DSM_PRE_H_
