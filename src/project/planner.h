#ifndef RADIX_PROJECT_PLANNER_H_
#define RADIX_PROJECT_PLANNER_H_

#include <cstddef>
#include <string>

#include "common/types.h"
#include "hardware/memory_hierarchy.h"
#include "project/dsm_post.h"
#include "project/strategy.h"

namespace radix::project {

/// Cost-model-driven choice of the DSM post-projection per-side strategies
/// and radix parameters, encoding the decision rules the paper derives:
///  * "easy" joins (the smaller relation's columns fit the cache) use
///    unsorted positional joins, u/u (paper §3);
///  * "hard" joins reorder the left side — partial cluster (c) for low π,
///    full sort (s) once π grows past ~16 (Fig. 8);
///  * the right side uses d (Radix-Decluster) once its column exceeds the
///    cache, else u (Fig. 10c's progression u/u → c/u → c/d → s/d).
struct Plan {
  DsmPostOptions options;
  bool easy = false;  ///< smaller column fits the cache
  std::string code;   ///< e.g. "c/d", the Fig. 10c point label
};

/// `num_threads` is carried into the planned DsmPostOptions verbatim (the
/// strategy choice itself is thread-count independent: parallelism scales
/// every candidate's memory phases alike). 1 = serial kernels.
///
/// Per-column-type planning (paper §5): `pi_varchar_left`/`pi_varchar_right`
/// count the variable-size columns projected per side and
/// `avg_varchar_{left,right}_len` their mean value length in bytes.
/// Varchar columns weigh in twice: they count toward the left side's
/// many-columns sort threshold (each is at least as expensive as a fixed
/// gather), and a side with varchar projections is only "easy" if its
/// offsets *and* heap working set fit the cache too
/// (VarcharColumnFitsCache) — otherwise the right side gets the
/// three-phase varchar decluster (d).
Plan PlanDsmPost(size_t left_cardinality, size_t right_cardinality,
                 size_t index_cardinality, size_t pi_left, size_t pi_right,
                 const hardware::MemoryHierarchy& hw, size_t num_threads = 1,
                 size_t pi_varchar_left = 0, size_t pi_varchar_right = 0,
                 size_t avg_varchar_left_len = 0,
                 size_t avg_varchar_right_len = 0);

/// The paper's "easy vs hard" boundary: a column of `tuples` 4-byte values
/// fits the target cache.
bool ColumnFitsCache(size_t tuples, const hardware::MemoryHierarchy& hw);

/// Varchar analogue of ColumnFitsCache: the random working set of a varchar
/// positional join is the 8-byte offset array plus the value heap
/// (tuples * avg_len bytes); "easy" only if both fit the target cache.
bool VarcharColumnFitsCache(size_t tuples, size_t avg_len,
                            const hardware::MemoryHierarchy& hw);

/// Cost-model-driven choice of the partial-cluster radix bits for a
/// decluster-side projection: minimizes
///   cluster(B) + pi * (positional_join(B) + decluster(B))
/// over B. Encodes the Fig. 7b discussion: the geometric formula's B is
/// usually optimal, but with very few projection columns the one-off
/// Radix-Cluster dominates and fewer bits win ("It sometimes is better to
/// use even fewer Radix-Bits", §4.1).
radix_bits_t ChooseDeclusterBitsByModel(size_t index_cardinality,
                                        size_t column_cardinality, size_t pi,
                                        const hardware::MemoryHierarchy& hw);

}  // namespace radix::project

#endif  // RADIX_PROJECT_PLANNER_H_
