#ifndef RADIX_PROJECT_PLANNER_H_
#define RADIX_PROJECT_PLANNER_H_

#include <cstddef>
#include <string>

#include "common/types.h"
#include "hardware/memory_hierarchy.h"
#include "project/dsm_post.h"
#include "project/strategy.h"

namespace radix::project {

/// Cost-model-driven choice of the DSM post-projection per-side strategies
/// and radix parameters, encoding the decision rules the paper derives:
///  * "easy" joins (the smaller relation's columns fit the cache) use
///    unsorted positional joins, u/u (paper §3);
///  * "hard" joins reorder the left side — partial cluster (c) for low π,
///    full sort (s) once π grows past ~16 (Fig. 8);
///  * the right side uses d (Radix-Decluster) once its column exceeds the
///    cache, else u (Fig. 10c's progression u/u → c/u → c/d → s/d).
struct Plan {
  DsmPostOptions options;
  bool easy = false;  ///< smaller column fits the cache
  std::string code;   ///< e.g. "c/d", the Fig. 10c point label
};

/// `num_threads` is carried into the planned DsmPostOptions verbatim (the
/// strategy choice itself is thread-count independent: parallelism scales
/// every candidate's memory phases alike). 1 = serial kernels.
Plan PlanDsmPost(size_t left_cardinality, size_t right_cardinality,
                 size_t index_cardinality, size_t pi_left, size_t pi_right,
                 const hardware::MemoryHierarchy& hw, size_t num_threads = 1);

/// The paper's "easy vs hard" boundary: a column of `tuples` 4-byte values
/// fits the target cache.
bool ColumnFitsCache(size_t tuples, const hardware::MemoryHierarchy& hw);

/// Cost-model-driven choice of the partial-cluster radix bits for a
/// decluster-side projection: minimizes
///   cluster(B) + pi * (positional_join(B) + decluster(B))
/// over B. Encodes the Fig. 7b discussion: the geometric formula's B is
/// usually optimal, but with very few projection columns the one-off
/// Radix-Cluster dominates and fewer bits win ("It sometimes is better to
/// use even fewer Radix-Bits", §4.1).
radix_bits_t ChooseDeclusterBitsByModel(size_t index_cardinality,
                                        size_t column_cardinality, size_t pi,
                                        const hardware::MemoryHierarchy& hw);

}  // namespace radix::project

#endif  // RADIX_PROJECT_PLANNER_H_
