#include "project/nsm_post.h"
#include "common/overflow.h"

#include <cstring>

#include "cluster/partition_plan.h"
#include "cluster/radix_sort.h"
#include "common/timer.h"
#include "decluster/radix_decluster.h"
#include "decluster/window.h"
#include "join/jive_join.h"
#include "storage/column.h"

namespace radix::project {

storage::NsmResult NsmPostProjectDecluster(
    join::JoinIndex& index, const storage::NsmRelation& left,
    const storage::NsmRelation& right, size_t pi_left, size_t pi_right,
    const hardware::MemoryHierarchy& hw, PhaseBreakdown* phases) {
  RADIX_CHECK(pi_left + 1 <= left.num_attrs());
  RADIX_CHECK(pi_right + 1 <= right.num_attrs());
  PhaseBreakdown local;
  PhaseBreakdown* ph = phases != nullptr ? phases : &local;
  Timer timer;
  size_t n = index.size();
  size_t width = pi_left + pi_right;
  storage::NsmResult result(n, width);
  if (n == 0) return result;

  // Cluster the join index on left oids so the record-wide left fetches
  // stay within cache-sized regions of the wide NSM table.
  timer.Reset();
  cluster::ClusterSpec lspec = cluster::PartialClusterSpec(
      n, left.cardinality(), left.record_bytes(), hw);
  {
    storage::Column<cluster::OidPair> scratch(n);
    simcache::NoTracer tracer;
    auto radix = [](const cluster::OidPair& p) -> uint64_t { return p.left; };
    cluster::RadixClusterMultiPass(index.data(), scratch.data(), n, radix,
                                   lspec, tracer);
  }
  ph->cluster_seconds += timer.ElapsedSeconds();

  // Left projections: NSM record extraction at (clustered) left oids.
  timer.Reset();
  for (size_t i = 0; i < n; ++i) {
    const value_t* rec = left.record(index[i].left);
    value_t* row = result.row(i);
    for (size_t a = 0; a < pi_left; ++a) row[a] = rec[1 + a];
  }
  ph->projection_seconds += timer.ElapsedSeconds();

  // Right side: cluster (right oid, result position) on right oid.
  timer.Reset();
  struct IdPos {
    oid_t id;
    oid_t pos;
  };
  std::vector<IdPos> pairs(n);
  CheckOidCapacity(n);
  for (size_t i = 0; i < n; ++i) {
    pairs[i] = {index[i].right, static_cast<oid_t>(i)};
  }
  size_t row_bytes = pi_right * sizeof(value_t);
  cluster::ClusterSpec rspec = cluster::PartialClusterSpec(
      n, right.cardinality(), right.record_bytes(), hw);
  std::vector<IdPos> scratch(n);
  simcache::NoTracer tracer;
  auto radix = [](const IdPos& p) -> uint64_t { return p.id; };
  cluster::ClusterBorders borders = cluster::RadixClusterMultiPass(
      pairs.data(), scratch.data(), n, radix, rspec, tracer);
  ph->cluster_seconds += timer.ElapsedSeconds();

  // Fetch right attributes in clustered order into a row intermediate.
  timer.Reset();
  AlignedBuffer clust_rows(std::max<size_t>(1, n * row_bytes));
  std::vector<oid_t> result_pos(n);
  for (size_t i = 0; i < n; ++i) {
    const value_t* rec = right.record(pairs[i].id);
    value_t* dst = clust_rows.As<value_t>() + i * pi_right;
    for (size_t a = 0; a < pi_right; ++a) dst[a] = rec[1 + a];
    result_pos[i] = pairs[i].pos;
  }
  ph->projection_seconds += timer.ElapsedSeconds();

  // Radix-Decluster the row slices into their final result rows. The
  // result rows are `width` values wide; the right slice starts at column
  // pi_left. Decluster into a dense temp then scatter? No: decluster rows
  // directly into a dense pi_right-wide buffer in result order, then one
  // sequential interleave pass into the result rows.
  timer.Reset();
  if (pi_right > 0) {
    AlignedBuffer dense(std::max<size_t>(1, n * row_bytes));
    size_t window = decluster::WindowPolicy::ChooseWindowElems(
        hw, row_bytes, borders.num_clusters(), n);
    decluster::RadixDeclusterRows(clust_rows.data(), row_bytes, result_pos,
                                  decluster::MakeCursors(borders), window,
                                  dense.data());
    for (size_t i = 0; i < n; ++i) {
      std::memcpy(result.row(i) + pi_left,
                  dense.As<value_t>() + i * pi_right, row_bytes);
    }
  }
  ph->decluster_seconds += timer.ElapsedSeconds();
  return result;
}

storage::NsmResult NsmPostProjectJive(join::JoinIndex& index,
                                      const storage::NsmRelation& left,
                                      const storage::NsmRelation& right,
                                      size_t pi_left, size_t pi_right,
                                      radix_bits_t cluster_bits,
                                      PhaseBreakdown* phases) {
  PhaseBreakdown local;
  PhaseBreakdown* ph = phases != nullptr ? phases : &local;
  Timer timer;
  size_t n = index.size();
  storage::NsmResult result(n, pi_left + pi_right);
  if (n == 0) return result;

  // Jive-Join requires the index sorted on left oid (it was designed for
  // precomputed, sorted join indices).
  CheckOidCapacity(left.cardinality());
  CheckOidCapacity(right.cardinality());
  timer.Reset();
  cluster::RadixSortJoinIndex(index.span(),
                              static_cast<oid_t>(left.cardinality()),
                              /*by_left=*/true);
  ph->cluster_seconds += timer.ElapsedSeconds();

  join::JiveJoinOptions options;
  options.cluster_bits = cluster_bits;
  timer.Reset();
  join::JiveIntermediate inter = join::LeftJiveJoinNsm(
      index.span(), left, pi_left, &result,
      static_cast<oid_t>(right.cardinality()), options);
  ph->projection_seconds += timer.ElapsedSeconds();
  timer.Reset();
  join::RightJiveJoinNsm(inter, right, pi_right, pi_left, &result);
  ph->decluster_seconds += timer.ElapsedSeconds();
  return result;
}

}  // namespace radix::project
