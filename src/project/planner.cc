#include "project/planner.h"

#include "cluster/partition_plan.h"
#include "costmodel/models.h"
#include "decluster/window.h"

namespace radix::project {

bool ColumnFitsCache(size_t tuples, const hardware::MemoryHierarchy& hw) {
  return tuples * sizeof(value_t) <= hw.target_cache().capacity_bytes;
}

bool VarcharColumnFitsCache(size_t tuples, size_t avg_len,
                            const hardware::MemoryHierarchy& hw) {
  return tuples * (sizeof(uint64_t) + avg_len) <=
         hw.target_cache().capacity_bytes;
}

Plan PlanDsmPost(size_t left_cardinality, size_t right_cardinality,
                 size_t /*index_cardinality*/, size_t pi_left,
                 size_t /*pi_right*/, const hardware::MemoryHierarchy& hw,
                 size_t num_threads, size_t pi_varchar_left,
                 size_t pi_varchar_right, size_t avg_varchar_left_len,
                 size_t avg_varchar_right_len) {
  Plan plan;
  plan.options.num_threads = num_threads;
  bool left_fits = ColumnFitsCache(left_cardinality, hw);
  bool right_fits = ColumnFitsCache(right_cardinality, hw);
  // Per-column types: a side projecting varchar columns is only cache-easy
  // if the offsets + heap working set fits too.
  if (pi_varchar_left > 0) {
    left_fits = left_fits && VarcharColumnFitsCache(
                                 left_cardinality, avg_varchar_left_len, hw);
  }
  if (pi_varchar_right > 0) {
    right_fits = right_fits && VarcharColumnFitsCache(
                                   right_cardinality, avg_varchar_right_len,
                                   hw);
  }
  plan.easy = left_fits && right_fits;

  if (left_fits) {
    plan.options.left = SideStrategy::kUnsorted;
  } else if (pi_left + pi_varchar_left > 16) {
    // Fig. 8: with many projection columns the one-off full sort amortizes
    // over the per-column positional joins and beats partial clustering.
    // Varchar columns count: each costs at least a fixed column's gather.
    plan.options.left = SideStrategy::kSorted;
  } else {
    plan.options.left = SideStrategy::kClustered;
  }
  plan.options.right =
      right_fits ? SideStrategy::kUnsorted : SideStrategy::kDecluster;

  plan.code = std::string(SideStrategyCode(plan.options.left)) + "/" +
              SideStrategyCode(plan.options.right);
  return plan;
}

radix_bits_t ChooseDeclusterBitsByModel(size_t index_cardinality,
                                        size_t column_cardinality, size_t pi,
                                        const hardware::MemoryHierarchy& hw) {
  costmodel::CpuCosts cpu = costmodel::CpuCosts::Default();
  radix_bits_t max_bits = SignificantBits(
      column_cardinality == 0 ? 1 : column_cardinality);
  radix_bits_t best_bits = 0;
  double best_cost = -1;
  double columns = static_cast<double>(pi == 0 ? 1 : pi);
  for (radix_bits_t b = 0; b <= max_bits; ++b) {
    uint32_t passes = cluster::PassesFor(b, hw);
    double cluster_s =
        b == 0 ? 0.0
               : costmodel::RadixClusterCost(hw, cpu, index_cardinality, 8, b,
                                             passes)
                     .seconds;
    double posjoin_s = costmodel::ClusteredPositionalJoinCost(
                           hw, cpu, index_cardinality, column_cardinality,
                           sizeof(value_t), b, false)
                           .seconds;
    size_t window = decluster::WindowPolicy::ChooseWindowElems(
        hw, sizeof(value_t), size_t{1} << b, index_cardinality);
    double decluster_s =
        b == 0 ? 0.0  // unsorted: no decluster needed, but posjoin is random
               : costmodel::RadixDeclusterCost(hw, cpu, index_cardinality,
                                               sizeof(value_t), b, window)
                     .seconds;
    double total = cluster_s + columns * (posjoin_s + decluster_s);
    if (best_cost < 0 || total < best_cost) {
      best_cost = total;
      best_bits = b;
    }
  }
  return best_bits;
}

}  // namespace radix::project
