#ifndef RADIX_PROJECT_NSM_PRE_H_
#define RADIX_PROJECT_NSM_PRE_H_

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "hardware/memory_hierarchy.h"
#include "join/join_index.h"
#include "project/strategy.h"
#include "storage/nsm.h"

namespace radix::project {

/// NSM pre-projection, the commonly applied RDBMS strategy (paper Fig. 1
/// left): table scans extract key + projected attributes, the projected
/// values travel through the join pipeline. Two join flavours, matching
/// Fig. 10a's "NSM-pre-hash" and "NSM-pre-phash" curves.
///
/// `result_oids`, when non-null, receives each result row's (left, right)
/// source oids in result order, carried through the join as an extra
/// hidden intermediate column (see DsmPreProject) for post-join varchar
/// gathers.
storage::NsmResult NsmPreProjectHash(
    const storage::NsmRelation& left, const storage::NsmRelation& right,
    size_t pi_left, size_t pi_right, PhaseBreakdown* phases = nullptr,
    std::vector<join::OidPair>* result_oids = nullptr);

storage::NsmResult NsmPreProjectPartitionedHash(
    const storage::NsmRelation& left, const storage::NsmRelation& right,
    size_t pi_left, size_t pi_right, const hardware::MemoryHierarchy& hw,
    radix_bits_t bits = ~radix_bits_t{0}, PhaseBreakdown* phases = nullptr,
    std::vector<join::OidPair>* result_oids = nullptr);

}  // namespace radix::project

#endif  // RADIX_PROJECT_NSM_PRE_H_
