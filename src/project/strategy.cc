#include "project/strategy.h"

namespace radix::project {

const char* SideStrategyCode(SideStrategy s) {
  switch (s) {
    case SideStrategy::kUnsorted:
      return "u";
    case SideStrategy::kSorted:
      return "s";
    case SideStrategy::kClustered:
      return "c";
    case SideStrategy::kDecluster:
      return "d";
  }
  return "?";
}

const char* JoinStrategyName(JoinStrategy s) {
  switch (s) {
    case JoinStrategy::kDsmPostDecluster:
      return "DSM-post-decluster";
    case JoinStrategy::kDsmPrePhash:
      return "DSM-pre-phash";
    case JoinStrategy::kNsmPreHash:
      return "NSM-pre-hash";
    case JoinStrategy::kNsmPrePhash:
      return "NSM-pre-phash";
    case JoinStrategy::kNsmPostDecluster:
      return "NSM-post-decluster";
    case JoinStrategy::kNsmPostJive:
      return "NSM-post-jive";
  }
  return "?";
}

}  // namespace radix::project
