#include "project/dsm_post.h"
#include "common/overflow.h"

#include <algorithm>
#include <memory>

#include "common/thread_pool.h"

#include "cluster/partition_plan.h"
#include "cluster/radix_count.h"
#include "cluster/radix_sort.h"
#include "common/timer.h"
#include "decluster/paged_decluster.h"
#include "decluster/radix_decluster.h"
#include "decluster/window.h"
#include "join/positional_join.h"
#include "storage/column.h"

namespace radix::project {

namespace detail {

using cluster::ClusterBorders;
using cluster::ClusterSpec;

ClusterBorders ClusterIds(std::vector<oid_t>& ids, std::vector<oid_t>& perm,
                          const ClusterSpec& spec, ThreadPool* pool) {
  struct IdPos {
    oid_t id;
    oid_t pos;
  };
  if (perm.empty()) {
    storage::Column<oid_t> scratch(ids.size());
    auto radix = [](oid_t v) -> uint64_t { return v; };
    if (pool != nullptr) {
      return cluster::RadixClusterMultiPassParallel(
          ids.data(), scratch.data(), ids.size(), radix, spec, *pool);
    }
    simcache::NoTracer tracer;
    return cluster::RadixClusterMultiPass(ids.data(), scratch.data(),
                                          ids.size(), radix, spec, tracer);
  }
  std::vector<IdPos> pairs(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    pairs[i] = {ids[i], perm[i]};
  }
  std::vector<IdPos> scratch(ids.size());
  auto radix = [](const IdPos& p) -> uint64_t { return p.id; };
  ClusterBorders borders;
  if (pool != nullptr) {
    borders = cluster::RadixClusterMultiPassParallel(
        pairs.data(), scratch.data(), pairs.size(), radix, spec, *pool);
  } else {
    simcache::NoTracer tracer;
    borders = cluster::RadixClusterMultiPass(pairs.data(), scratch.data(),
                                             pairs.size(), radix, spec,
                                             tracer);
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = pairs[i].id;
    perm[i] = pairs[i].pos;
  }
  return borders;
}

std::unique_ptr<ThreadPool> MakePool(size_t num_threads) {
  if (num_threads == 0) num_threads = ThreadPool::DefaultThreads();
  if (num_threads <= 1) return nullptr;
  return std::make_unique<ThreadPool>(num_threads);
}

ThreadPool* ResolveKernelPool(const DsmPostOptions& options,
                              std::unique_ptr<ThreadPool>* owned) {
  if (options.pool != nullptr) {
    return options.pool->num_threads() > 1 ? options.pool : nullptr;
  }
  *owned = MakePool(options.num_threads);
  return owned->get();
}

ClusterSpec SpecFor(SideStrategy strategy, size_t index_tuples,
                    size_t column_cardinality,
                    const hardware::MemoryHierarchy& hw, radix_bits_t bits) {
  ClusterSpec spec;
  if (strategy == SideStrategy::kSorted) {
    spec.total_bits = SignificantBits(column_cardinality ? column_cardinality : 1);
    spec.ignore_bits = 0;
  } else {
    if (bits == DsmPostOptions::kAuto) {
      spec = cluster::PartialClusterSpec(index_tuples, column_cardinality,
                                         sizeof(value_t), hw);
      return spec;
    }
    spec.total_bits = bits;
    radix_bits_t sig = SignificantBits(column_cardinality ? column_cardinality : 1);
    spec.ignore_bits = sig > bits ? sig - bits : 0;
  }
  spec.passes = cluster::PassesFor(spec.total_bits, hw);
  return spec;
}

void ReorderIndexLeft(join::JoinIndex& index, size_t left_cardinality,
                      const hardware::MemoryHierarchy& hw, SideStrategy left,
                      radix_bits_t left_bits, ThreadPool* pool) {
  size_t n = index.size();
  CheckOidCapacity(left_cardinality);
  if (left == SideStrategy::kSorted) {
    cluster::RadixSortJoinIndex(index.span(),
                                static_cast<oid_t>(left_cardinality),
                                /*by_left=*/true);
  } else if (left == SideStrategy::kClustered ||
             left == SideStrategy::kDecluster) {
    cluster::ClusterSpec spec =
        SpecFor(SideStrategy::kClustered, n, left_cardinality, hw, left_bits);
    storage::Column<cluster::OidPair> scratch(n);
    auto radix = [](const cluster::OidPair& p) -> uint64_t { return p.left; };
    if (pool != nullptr) {
      cluster::RadixClusterMultiPassParallel(index.data(), scratch.data(), n,
                                             radix, spec, *pool);
    } else {
      simcache::NoTracer tracer;
      cluster::RadixClusterMultiPass(index.data(), scratch.data(), n, radix,
                                     spec, tracer);
    }
  }
}

}  // namespace detail

size_t DefaultChunkRows(const hardware::MemoryHierarchy& hw) {
  return std::max<size_t>(1,
                          hw.target_cache().capacity_bytes / sizeof(value_t));
}

namespace {

using cluster::ClusterBorders;
using cluster::ClusterSpec;
using detail::ClusterIds;
using detail::MakePool;
using detail::SpecFor;

/// Positional-join the varchar columns at (re)ordered `ids`, appending one
/// gathered column per input to `var_out`. Serial — the varchar gather
/// builds a heap incrementally, so it has no slice-parallel form yet.
void GatherVarchars(std::span<const oid_t> ids,
                    const std::vector<const storage::VarcharColumn*>& cols,
                    std::vector<storage::VarcharColumn>* var_out,
                    PhaseBreakdown* ph, Timer* timer) {
  if (cols.empty()) return;
  timer->Reset();
  for (const storage::VarcharColumn* col : cols) {
    var_out->push_back(storage::PositionalJoinVarchar(ids, *col));
  }
  ph->projection_seconds += timer->ElapsedSeconds();
}

}  // namespace

namespace detail {

void ProjectSideWithPool(std::vector<oid_t>& ids, SideStrategy strategy,
                         const std::vector<std::span<const value_t>>& columns,
                         const std::vector<std::span<value_t>>& out,
                         size_t column_cardinality,
                         const hardware::MemoryHierarchy& hw,
                         radix_bits_t bits, size_t window_elems,
                         PhaseBreakdown* phases, ThreadPool* pool,
                         const std::vector<const storage::VarcharColumn*>&
                             var_columns,
                         std::vector<storage::VarcharColumn>* var_out) {
  RADIX_CHECK(columns.size() == out.size());
  RADIX_CHECK(var_columns.empty() || var_out != nullptr);
  PhaseBreakdown local;
  PhaseBreakdown* ph = phases != nullptr ? phases : &local;
  Timer timer;

  switch (strategy) {
    case SideStrategy::kUnsorted: {
      timer.Reset();
      join::PositionalJoinColumns<value_t>(ids, columns, out, pool);
      ph->projection_seconds += timer.ElapsedSeconds();
      GatherVarchars(ids, var_columns, var_out, ph, &timer);
      return;
    }
    case SideStrategy::kSorted:
    case SideStrategy::kClustered: {
      // Reorder the ids (full sort or partial cluster), then positional
      // joins see sequential / cache-confined access (paper §3.1).
      ClusterSpec spec =
          SpecFor(strategy, ids.size(), column_cardinality, hw, bits);
      timer.Reset();
      std::vector<oid_t> no_perm;
      ClusterIds(ids, no_perm, spec, pool);
      ph->cluster_seconds += timer.ElapsedSeconds();
      timer.Reset();
      join::PositionalJoinColumns<value_t>(ids, columns, out, pool);
      ph->projection_seconds += timer.ElapsedSeconds();
      GatherVarchars(ids, var_columns, var_out, ph, &timer);
      return;
    }
    case SideStrategy::kDecluster: {
      // Paper Fig. 4: cluster (ids, result positions) on the id values;
      // positional-join fetches values in clustered order (cache-friendly);
      // Radix-Decluster puts each projected column back in result order.
      ClusterSpec spec = SpecFor(SideStrategy::kClustered, ids.size(),
                                 column_cardinality, hw, bits);
      timer.Reset();
      std::vector<oid_t> result_pos(ids.size());
      CheckOidCapacity(ids.size());
      for (size_t i = 0; i < ids.size(); ++i) {
        result_pos[i] = static_cast<oid_t>(i);
      }
      ClusterBorders borders = ClusterIds(ids, result_pos, spec, pool);
      ph->cluster_seconds += timer.ElapsedSeconds();

      size_t window = window_elems;
      if (window == 0) {
        window = decluster::WindowPolicy::ChooseWindowElems(
            hw, sizeof(value_t), borders.num_clusters(), ids.size());
      }
      storage::Column<value_t> clust_values(ids.size());
      for (size_t a = 0; a < columns.size(); ++a) {
        timer.Reset();
        join::PositionalJoinColumns<value_t>(ids, {columns[a]},
                                             {clust_values.span()}, pool);
        ph->projection_seconds += timer.ElapsedSeconds();
        timer.Reset();
        std::vector<decluster::ClusterCursor> cursors =
            decluster::MakeCursors(borders);
        if (pool != nullptr) {
          decluster::RadixDeclusterParallel<value_t>(
              clust_values.span(), result_pos, cursors, window, out[a],
              *pool);
        } else {
          decluster::RadixDecluster<value_t>(clust_values.span(), result_pos,
                                             std::move(cursors), window,
                                             out[a]);
        }
        ph->decluster_seconds += timer.ElapsedSeconds();
      }
      // Varchar columns run the three-phase scheme of paper Fig. 12: fetch
      // in clustered order, then decluster lengths -> prefix-sum -> bytes.
      for (const storage::VarcharColumn* vc : var_columns) {
        timer.Reset();
        storage::VarcharColumn clustered =
            storage::PositionalJoinVarchar(ids, *vc);
        ph->projection_seconds += timer.ElapsedSeconds();
        timer.Reset();
        size_t vwindow = window_elems;
        if (vwindow == 0) {
          // Size the insertion window for the *byte* traffic of phase 3:
          // the window holds avg_len-byte values, not 4-byte ints.
          size_t avg = clustered.size() == 0
                           ? 1
                           : std::max<size_t>(
                                 1, clustered.heap_bytes() / clustered.size());
          vwindow = decluster::WindowPolicy::ChooseWindowElems(
              hw, std::max(sizeof(uint32_t), avg), borders.num_clusters(),
              ids.size());
        }
        var_out->push_back(decluster::RadixDeclusterVarchar(
            clustered, result_pos, borders, vwindow));
        ph->decluster_seconds += timer.ElapsedSeconds();
      }
      return;
    }
  }
}

}  // namespace detail

void ProjectSide(std::vector<oid_t>& ids, SideStrategy strategy,
                 const std::vector<std::span<const value_t>>& columns,
                 const std::vector<std::span<value_t>>& out,
                 size_t column_cardinality,
                 const hardware::MemoryHierarchy& hw, radix_bits_t bits,
                 size_t window_elems, PhaseBreakdown* phases,
                 size_t num_threads) {
  // Every strategy now has a parallel path (kUnsorted parallelizes its
  // gather loop), so the pool is created whenever threads were requested.
  std::unique_ptr<ThreadPool> pool = MakePool(num_threads);
  detail::ProjectSideWithPool(ids, strategy, columns, out, column_cardinality,
                              hw, bits, window_elems, phases, pool.get());
}

storage::DsmResult DsmPostProject(join::JoinIndex& index,
                                  const storage::DsmRelation& left,
                                  const storage::DsmRelation& right,
                                  size_t pi_left, size_t pi_right,
                                  const hardware::MemoryHierarchy& hw,
                                  const DsmPostOptions& options,
                                  PhaseBreakdown* phases,
                                  const VarcharProjection* varchar) {
  RADIX_CHECK(pi_left + 1 <= left.num_attrs());
  RADIX_CHECK(pi_right + 1 <= right.num_attrs());
  size_t n = index.size();
  static const VarcharProjection kNoVarchar;
  const VarcharProjection& var = varchar != nullptr ? *varchar : kNoVarchar;

  storage::DsmResult result;
  result.cardinality = n;
  result.left_columns.resize(pi_left);
  result.right_columns.resize(pi_right);
  for (auto& c : result.left_columns) c.Resize(n);
  for (auto& c : result.right_columns) c.Resize(n);
  result.left_varchars.reserve(var.left.size());
  result.right_varchars.reserve(var.right.size());

  // Reordering the join index on the left side must carry the right oids
  // along: cluster/sort the [l,r] pairs, then split into two id columns.
  PhaseBreakdown local;
  PhaseBreakdown* ph = phases != nullptr ? phases : &local;
  std::unique_ptr<ThreadPool> owned;
  ThreadPool* pool = detail::ResolveKernelPool(options, &owned);
  Timer timer;
  timer.Reset();
  detail::ReorderIndexLeft(index, left.cardinality(), hw, options.left,
                           options.left_bits, pool);
  ph->cluster_seconds += timer.ElapsedSeconds();

  // Left projections: ids now (partially) ordered; plain positional joins.
  timer.Reset();
  std::vector<std::span<const value_t>> left_cols(pi_left);
  std::vector<std::span<value_t>> left_out(pi_left);
  for (size_t a = 0; a < pi_left; ++a) {
    left_cols[a] = left.attr(1 + a).span();
    left_out[a] = result.left_columns[a].span();
  }
  join::PositionalJoinPairsColumns<value_t, /*kLeft=*/true>(
      index.span(), left_cols, left_out, pool);
  ph->projection_seconds += timer.ElapsedSeconds();
  if (!var.left.empty()) {
    // Left varchars gather off the reordered index — result order is index
    // order for every left strategy, so no decluster pass is needed.
    timer.Reset();
    for (const storage::VarcharColumn* col : var.left) {
      result.left_varchars.push_back(join::PositionalJoinVarcharPairs(
          index.span(), /*left_side=*/true, *col));
    }
    ph->projection_seconds += timer.ElapsedSeconds();
  }

  // Right projections in the (possibly re-ordered) result order.
  std::vector<oid_t> right_ids = index.RightOids();
  std::vector<std::span<const value_t>> right_cols(pi_right);
  std::vector<std::span<value_t>> right_out(pi_right);
  for (size_t a = 0; a < pi_right; ++a) {
    right_cols[a] = right.attr(1 + a).span();
    right_out[a] = result.right_columns[a].span();
  }
  SideStrategy right_strategy = options.right;
  if (right_strategy == SideStrategy::kSorted ||
      right_strategy == SideStrategy::kClustered) {
    // Reordering the right ids alone would desynchronize the sides; only
    // u and d preserve result order, as the paper notes (§4.1: sorting or
    // partial-cluster "is only applicable to the first projection table").
    right_strategy = SideStrategy::kDecluster;
  }
  // Reuse this function's pool for the right side rather than spawning a
  // second one.
  detail::ProjectSideWithPool(right_ids, right_strategy, right_cols, right_out,
                              right.cardinality(), hw, options.right_bits,
                              options.window_elems, ph, pool, var.right,
                              &result.right_varchars);
  return result;
}

}  // namespace radix::project
