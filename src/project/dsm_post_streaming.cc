// Streamed DSM post-projection: the query-specific wiring of the generic
// pipeline/ subsystem. The blocking phases (index reorder, right-side
// cluster) run exactly as in the materializing projector; everything
// downstream — per-column positional gather and Radix-Decluster window
// merge — flows through StreamingExecutor in cluster-aligned chunks, so
// the two stages overlap and intermediates stay chunk-sized.

#include <algorithm>
#include <memory>
#include <numeric>

#include "common/timer.h"
#include "decluster/window.h"
#include "pipeline/executor.h"
#include "pipeline/operators.h"
#include "project/dsm_post.h"

namespace radix::project {

storage::DsmResult DsmPostProjectStreaming(
    join::JoinIndex& index, const storage::DsmRelation& left,
    const storage::DsmRelation& right, size_t pi_left, size_t pi_right,
    const hardware::MemoryHierarchy& hw, const DsmPostOptions& options,
    size_t chunk_rows, PhaseBreakdown* phases) {
  RADIX_CHECK(pi_left + 1 <= left.num_attrs());
  RADIX_CHECK(pi_right + 1 <= right.num_attrs());
  size_t n = index.size();
  if (chunk_rows == 0) chunk_rows = DefaultChunkRows(hw);

  storage::DsmResult result;
  result.cardinality = n;
  result.left_columns.resize(pi_left);
  result.right_columns.resize(pi_right);
  for (auto& c : result.left_columns) c.Resize(n);
  for (auto& c : result.right_columns) c.Resize(n);

  PhaseBreakdown local;
  PhaseBreakdown* ph = phases != nullptr ? phases : &local;
  std::unique_ptr<ThreadPool> owned;
  ThreadPool* pool = detail::ResolveKernelPool(options, &owned);
  Timer timer;

  // Blocking prefix, identical to DsmPostProject: byte-identical inputs to
  // the streamed stages guarantee byte-identical output columns.
  timer.Reset();
  detail::ReorderIndexLeft(index, left.cardinality(), hw, options.left,
                           options.left_bits, pool);
  ph->cluster_seconds += timer.ElapsedSeconds();

  pipeline::ExecutorOptions xopts;
  xopts.pool = pool;
  xopts.gauge = options.gauge;

  // Left projections preserve the (reordered) index order, so each chunk
  // gathers straight into its row range of the result — no intermediates.
  {
    std::vector<std::span<const value_t>> cols(pi_left);
    std::vector<std::span<value_t>> outs(pi_left);
    for (size_t a = 0; a < pi_left; ++a) {
      cols[a] = left.attr(1 + a).span();
      outs[a] = result.left_columns[a].span();
    }
    pipeline::ChunkPlan plan = pipeline::MakeRowChunks(n, chunk_rows);
    pipeline::PairsGatherStage gather(index.span(), std::move(cols),
                                      std::move(outs));
    pipeline::StreamingExecutor exec(xopts);
    pipeline::PipelineStats stats;
    ph->pipeline_wall_seconds += exec.Run(plan, gather, nullptr, &stats);
    ph->projection_seconds += stats.gather_busy_seconds;
  }

  std::vector<oid_t> right_ids = index.RightOids();
  std::vector<std::span<const value_t>> cols(pi_right);
  std::vector<std::span<value_t>> outs(pi_right);
  for (size_t a = 0; a < pi_right; ++a) {
    cols[a] = right.attr(1 + a).span();
    outs[a] = result.right_columns[a].span();
  }
  SideStrategy right_strategy = options.right;
  if (right_strategy == SideStrategy::kSorted ||
      right_strategy == SideStrategy::kClustered) {
    // Same §4.1 rule as the materializing projector: only u and d preserve
    // the result order the left side fixed.
    right_strategy = SideStrategy::kDecluster;
  }

  if (right_strategy == SideStrategy::kUnsorted) {
    pipeline::ChunkPlan plan = pipeline::MakeRowChunks(n, chunk_rows);
    pipeline::DirectGatherStage gather(right_ids, std::move(cols),
                                       std::move(outs));
    pipeline::StreamingExecutor exec(xopts);
    pipeline::PipelineStats stats;
    ph->pipeline_wall_seconds += exec.Run(plan, gather, nullptr, &stats);
    ph->projection_seconds += stats.gather_busy_seconds;
    return result;
  }

  // Decluster side. Blocking: cluster (right id, result position) pairs on
  // the id values. Streamed: gather chunk k+1's values while chunk k's
  // window merge scatters into the result.
  timer.Reset();
  std::vector<oid_t> result_pos(n);
  std::iota(result_pos.begin(), result_pos.end(), oid_t{0});
  cluster::ClusterSpec spec = detail::SpecFor(
      SideStrategy::kClustered, n, right.cardinality(), hw,
      options.right_bits);
  cluster::ClusterBorders borders =
      detail::ClusterIds(right_ids, result_pos, spec, pool);
  ph->cluster_seconds += timer.ElapsedSeconds();

  size_t window = options.window_elems;
  if (window == 0) {
    window = decluster::WindowPolicy::ChooseWindowElems(
        hw, sizeof(value_t), borders.num_clusters(), n);
  }
  pipeline::ChunkPlan plan =
      pipeline::MakeClusterAlignedChunks(borders, chunk_rows);
  xopts.buffer_columns = pi_right;
  xopts.buffer_rows = plan.max_rows;
  pipeline::ClusteredGatherStage gather(right_ids, std::move(cols));
  pipeline::DeclusterMergeSink sink(result_pos, &borders, window,
                                    std::move(outs));
  pipeline::StreamingExecutor exec(xopts);
  pipeline::PipelineStats stats;
  ph->pipeline_wall_seconds += exec.Run(plan, gather, &sink, &stats);
  ph->projection_seconds += stats.gather_busy_seconds;
  ph->decluster_seconds += stats.sink_busy_seconds;
  return result;
}

}  // namespace radix::project
