#include "project/nsm_pre.h"

#include "cluster/partition_plan.h"
#include "common/timer.h"
#include "join/nsm_join.h"

namespace radix::project {

storage::NsmResult NsmPreProjectHash(const storage::NsmRelation& left,
                                     const storage::NsmRelation& right,
                                     size_t pi_left, size_t pi_right,
                                     PhaseBreakdown* phases,
                                     std::vector<join::OidPair>* result_oids) {
  PhaseBreakdown local;
  PhaseBreakdown* ph = phases != nullptr ? phases : &local;
  Timer timer;
  const bool carry_oid = result_oids != nullptr;
  timer.Reset();
  auto li = join::NsmPreProjection::Scan(left, pi_left, carry_oid);
  auto ri = join::NsmPreProjection::Scan(right, pi_right, carry_oid);
  ph->projection_seconds += timer.ElapsedSeconds();
  timer.Reset();
  storage::NsmResult result =
      join::NsmPreProjection::HashJoinRows(li, ri, result_oids);
  ph->join_seconds += timer.ElapsedSeconds();
  return result;
}

storage::NsmResult NsmPreProjectPartitionedHash(
    const storage::NsmRelation& left, const storage::NsmRelation& right,
    size_t pi_left, size_t pi_right, const hardware::MemoryHierarchy& hw,
    radix_bits_t bits, PhaseBreakdown* phases,
    std::vector<join::OidPair>* result_oids) {
  PhaseBreakdown local;
  PhaseBreakdown* ph = phases != nullptr ? phases : &local;
  Timer timer;
  const bool carry_oid = result_oids != nullptr;
  timer.Reset();
  auto li = join::NsmPreProjection::Scan(left, pi_left, carry_oid);
  auto ri = join::NsmPreProjection::Scan(right, pi_right, carry_oid);
  ph->projection_seconds += timer.ElapsedSeconds();

  size_t tuple_bytes = (1 + std::max(pi_left, pi_right)) * sizeof(value_t);
  if (bits == ~radix_bits_t{0}) {
    bits = cluster::PartitionedJoinBits(right.cardinality(), tuple_bytes, hw);
  }
  uint32_t passes = cluster::PassesFor(bits, hw);
  timer.Reset();
  storage::NsmResult result = join::NsmPreProjection::PartitionedHashJoinRows(
      li, ri, hw, bits, passes, result_oids);
  ph->join_seconds += timer.ElapsedSeconds();
  return result;
}

}  // namespace radix::project
