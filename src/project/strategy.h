#ifndef RADIX_PROJECT_STRATEGY_H_
#define RADIX_PROJECT_STRATEGY_H_

#include <cstdint>
#include <string>

namespace radix::project {

/// DSM post-projection strategy codes, one per side, as defined in paper
/// §4.1 and reported in Fig. 10c's point labels (u/u, c/u, c/d, s/d).
enum class SideStrategy : uint8_t {
  kUnsorted,   ///< u: positional joins straight off the join index
  kSorted,     ///< s: radix-sort the join index on this side first
  kClustered,  ///< c: partial radix-cluster (left/"larger" side only)
  kDecluster,  ///< d: cluster + positional join + radix-decluster (right side)
};

const char* SideStrategyCode(SideStrategy s);

/// Overall join+projection strategies compared in Fig. 10.
enum class JoinStrategy : uint8_t {
  kDsmPostDecluster,  ///< DSM post-projection (the paper's winner)
  kDsmPrePhash,       ///< DSM pre-projection, partitioned hash join
  kNsmPreHash,        ///< NSM pre-projection, naive hash join
  kNsmPrePhash,       ///< NSM pre-projection, partitioned hash join
  kNsmPostDecluster,  ///< NSM post-projection via Radix-Decluster
  kNsmPostJive,       ///< NSM post-projection via Jive-Join
};

const char* JoinStrategyName(JoinStrategy s);

/// Phase timings every strategy reports; the breakdowns behind Figs. 7b
/// and the >90%-in-projection observation of §1.
///
/// The four per-phase fields are *busy* time. For materializing runs the
/// phases execute back-to-back on one thread, so busy == wall and they sum
/// to the run's elapsed time. A streamed run (RunQueryStreaming) overlaps
/// the gather and decluster stages across pool threads: the per-phase
/// fields then accumulate thread-seconds across all chunk tasks and may
/// legitimately exceed the wall clock; the wall time of the overlapped
/// sections is recorded separately in pipeline_wall_seconds.
struct PhaseBreakdown {
  double join_seconds = 0;        ///< creating the join index / join phase
  double cluster_seconds = 0;     ///< radix-cluster / sort of the index
  double projection_seconds = 0;  ///< positional joins / record copies
  double decluster_seconds = 0;   ///< radix-decluster passes
  /// Wall seconds of the streamed (overlapped) pipeline sections; 0 for
  /// materializing runs.
  double pipeline_wall_seconds = 0;

  bool overlapped() const { return pipeline_wall_seconds > 0; }

  /// Total busy time (thread-seconds once overlapped).
  double busy_total() const {
    return join_seconds + cluster_seconds + projection_seconds +
           decluster_seconds;
  }

  /// Wall-clock attributable time: the overlapped projection + decluster
  /// sections count by their pipeline wall time, not their busy sums, so
  /// total() never exceeds QueryRun::seconds (up to scheduling noise).
  double total() const {
    return overlapped()
               ? join_seconds + cluster_seconds + pipeline_wall_seconds
               : busy_total();
  }
};

}  // namespace radix::project

#endif  // RADIX_PROJECT_STRATEGY_H_
