#ifndef RADIX_PROJECT_DSM_POST_H_
#define RADIX_PROJECT_DSM_POST_H_

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "common/types.h"
#include "hardware/memory_hierarchy.h"
#include "join/join_index.h"
#include "project/strategy.h"
#include "storage/dsm.h"
#include "storage/varchar.h"

namespace radix::pipeline {
class MemoryGauge;
}  // namespace radix::pipeline

namespace radix::project {

/// DSM post-projection (paper §3): given a join index, materialize the
/// result columns with per-side strategies u/s/c/d. The left ("larger")
/// side may be reordered (s or c), which changes the result order; the
/// right side then projects in that same order, either unsorted (u) or via
/// cluster + positional join + Radix-Decluster (d).
struct DsmPostOptions {
  SideStrategy left = SideStrategy::kClustered;
  SideStrategy right = SideStrategy::kDecluster;
  /// Radix bits for partial clustering; kAuto derives from cache geometry
  /// per §3.1's formula.
  static constexpr radix_bits_t kAuto = ~radix_bits_t{0};
  radix_bits_t left_bits = kAuto;
  radix_bits_t right_bits = kAuto;
  /// Insertion window in elements; 0 = WindowPolicy default.
  size_t window_elems = 0;
  /// Worker threads for the Radix-Cluster / Radix-Decluster kernels.
  /// 1 (default) runs the exact serial kernels — required for MemTracer
  /// runs; > 1 uses the parallel kernels (byte-identical output); 0 means
  /// ThreadPool::DefaultThreads(). Ignored when `pool` is set.
  size_t num_threads = 1;
  /// Caller-owned pool to run the parallel kernels on (the engine's
  /// session pool). When set it wins over num_threads and no pool is
  /// constructed inside the projector; a size-1 pool selects the exact
  /// serial kernels. nullptr (default) = derive a pool from num_threads.
  ThreadPool* pool = nullptr;
  /// Gauge the streaming projector's ring arenas register with; nullptr =
  /// the process-wide pipeline::MemoryGauge::Instance(). The materializing
  /// projector ignores it.
  pipeline::MemoryGauge* gauge = nullptr;
};

/// Variable-size columns riding along a DSM post-projection (paper §5):
/// pointers into the caller's base varchar columns, one entry per
/// projected varchar column per side.
struct VarcharProjection {
  std::vector<const storage::VarcharColumn*> left;
  std::vector<const storage::VarcharColumn*> right;

  bool empty() const { return left.empty() && right.empty(); }
};

/// Execute the projection phase. `index` is consumed (may be reordered in
/// place; after the call it holds each result row's oid pair in result
/// order). Projects attributes 1..pi of each relation. Returns the result
/// columns plus phase timings.
///
/// `varchar`, when non-null, projects the listed variable-size columns
/// alongside the fixed ones into DsmResult::{left,right}_varchars, in the
/// same result order: left varchars gather off the reordered index; right
/// varchars follow the right side's strategy — a positional gather for u,
/// or the paper's Fig. 12 three-phase scheme for d (decluster the lengths,
/// prefix-sum into heap positions, decluster the bytes), reusing the
/// fixed columns' cluster pass. The varchar kernels are serial; only the
/// fixed-width kernels use `options.pool`.
storage::DsmResult DsmPostProject(join::JoinIndex& index,
                                  const storage::DsmRelation& left,
                                  const storage::DsmRelation& right,
                                  size_t pi_left, size_t pi_right,
                                  const hardware::MemoryHierarchy& hw,
                                  const DsmPostOptions& options,
                                  PhaseBreakdown* phases = nullptr,
                                  const VarcharProjection* varchar = nullptr);

/// Project one side only, with an explicit strategy; building block used by
/// the full projector and benchmarked in isolation in Fig. 8.
/// For kDecluster the ids are re-clustered internally; `out[a]` receives
/// column `columns[a]` fetched at `ids` in result order.
void ProjectSide(std::vector<oid_t>& ids, SideStrategy strategy,
                 const std::vector<std::span<const value_t>>& columns,
                 const std::vector<std::span<value_t>>& out,
                 size_t column_cardinality,
                 const hardware::MemoryHierarchy& hw, radix_bits_t bits,
                 size_t window_elems, PhaseBreakdown* phases,
                 size_t num_threads = 1);

/// Streamed DSM post-projection (the pipeline/ subsystem): identical
/// contract and byte-identical result columns to DsmPostProject, but the
/// per-column gather and the Radix-Decluster window merge exchange
/// cluster-aligned chunks of `chunk_rows` rows through a bounded ring on
/// the thread pool, so the gather of chunk k+1 overlaps the decluster of
/// chunk k and peak intermediate memory is O(ring * chunk_rows * columns)
/// instead of O(N). chunk_rows == 0 picks a cache-sized chunk
/// (DefaultChunkRows). Phase fields of `phases` accumulate busy time; the
/// streamed sections' wall time lands in phases->pipeline_wall_seconds.
storage::DsmResult DsmPostProjectStreaming(
    join::JoinIndex& index, const storage::DsmRelation& left,
    const storage::DsmRelation& right, size_t pi_left, size_t pi_right,
    const hardware::MemoryHierarchy& hw, const DsmPostOptions& options,
    size_t chunk_rows, PhaseBreakdown* phases = nullptr);

/// Auto chunk size: one in-flight chunk column spans about the target
/// cache, so a gathered chunk is still resident when its merge starts.
size_t DefaultChunkRows(const hardware::MemoryHierarchy& hw);

namespace detail {

/// Shared plumbing between the materializing and streaming projectors —
/// both must reorder the index identically so their outputs stay
/// byte-identical.

/// Lazily-created pool for a num_threads knob: nullptr (serial kernels)
/// unless the caller asked for > 1 thread; 0 = all hardware threads.
std::unique_ptr<ThreadPool> MakePool(size_t num_threads);

/// Resolve the kernel pool for one projection: an injected options.pool
/// wins (size-1 injected pools map to nullptr, i.e. the exact serial
/// kernels); otherwise a per-call pool is materialized into `owned` from
/// options.num_threads. Returns the pool the kernels should use.
ThreadPool* ResolveKernelPool(const DsmPostOptions& options,
                              std::unique_ptr<ThreadPool>* owned);

cluster::ClusterSpec SpecFor(SideStrategy strategy, size_t index_tuples,
                             size_t column_cardinality,
                             const hardware::MemoryHierarchy& hw,
                             radix_bits_t bits);

/// Reorder `ids` by a (partial or full) radix cluster on the oid values,
/// returning the borders. Keeps a parallel permutation `perm` in sync so
/// callers can track where each result row went (needed by the decluster
/// side). `perm` may be empty to skip that bookkeeping. A non-null `pool`
/// runs the parallel multi-pass kernel (byte-identical output).
cluster::ClusterBorders ClusterIds(std::vector<oid_t>& ids,
                                   std::vector<oid_t>& perm,
                                   const cluster::ClusterSpec& spec,
                                   ThreadPool* pool);

/// The left-side index reorder of DsmPostProject (sort, or cluster on the
/// left oids carrying the right oids along); no-op for kUnsorted.
void ReorderIndexLeft(join::JoinIndex& index, size_t left_cardinality,
                      const hardware::MemoryHierarchy& hw, SideStrategy left,
                      radix_bits_t left_bits, ThreadPool* pool);

/// ProjectSide against a caller-owned pool (nullptr = serial kernels), so
/// one pool serves both sides of a projection — and, in the ops/ layer,
/// one session pool serves every join edge of a plan. `var_columns` /
/// `var_out` carry the variable-size projections of the same side (paper
/// §5): gathered with the fixed columns for u/s/c, or run through the
/// three-phase varchar Radix-Decluster for d.
void ProjectSideWithPool(
    std::vector<oid_t>& ids, SideStrategy strategy,
    const std::vector<std::span<const value_t>>& columns,
    const std::vector<std::span<value_t>>& out, size_t column_cardinality,
    const hardware::MemoryHierarchy& hw, radix_bits_t bits,
    size_t window_elems, PhaseBreakdown* phases, ThreadPool* pool,
    const std::vector<const storage::VarcharColumn*>& var_columns = {},
    std::vector<storage::VarcharColumn>* var_out = nullptr);

}  // namespace detail

}  // namespace radix::project

#endif  // RADIX_PROJECT_DSM_POST_H_
