#ifndef RADIX_PROJECT_DSM_POST_H_
#define RADIX_PROJECT_DSM_POST_H_

#include <vector>

#include "common/types.h"
#include "hardware/memory_hierarchy.h"
#include "join/join_index.h"
#include "project/strategy.h"
#include "storage/dsm.h"

namespace radix::project {

/// DSM post-projection (paper §3): given a join index, materialize the
/// result columns with per-side strategies u/s/c/d. The left ("larger")
/// side may be reordered (s or c), which changes the result order; the
/// right side then projects in that same order, either unsorted (u) or via
/// cluster + positional join + Radix-Decluster (d).
struct DsmPostOptions {
  SideStrategy left = SideStrategy::kClustered;
  SideStrategy right = SideStrategy::kDecluster;
  /// Radix bits for partial clustering; kAuto derives from cache geometry
  /// per §3.1's formula.
  static constexpr radix_bits_t kAuto = ~radix_bits_t{0};
  radix_bits_t left_bits = kAuto;
  radix_bits_t right_bits = kAuto;
  /// Insertion window in elements; 0 = WindowPolicy default.
  size_t window_elems = 0;
  /// Worker threads for the Radix-Cluster / Radix-Decluster kernels.
  /// 1 (default) runs the exact serial kernels — required for MemTracer
  /// runs; > 1 uses the parallel kernels (byte-identical output); 0 means
  /// ThreadPool::DefaultThreads().
  size_t num_threads = 1;
};

/// Execute the projection phase. `index` is consumed (may be reordered in
/// place). Projects attributes 1..pi of each relation. Returns the result
/// columns plus phase timings.
storage::DsmResult DsmPostProject(join::JoinIndex& index,
                                  const storage::DsmRelation& left,
                                  const storage::DsmRelation& right,
                                  size_t pi_left, size_t pi_right,
                                  const hardware::MemoryHierarchy& hw,
                                  const DsmPostOptions& options,
                                  PhaseBreakdown* phases = nullptr);

/// Project one side only, with an explicit strategy; building block used by
/// the full projector and benchmarked in isolation in Fig. 8.
/// For kDecluster the ids are re-clustered internally; `out[a]` receives
/// column `columns[a]` fetched at `ids` in result order.
void ProjectSide(std::vector<oid_t>& ids, SideStrategy strategy,
                 const std::vector<std::span<const value_t>>& columns,
                 const std::vector<std::span<value_t>>& out,
                 size_t column_cardinality,
                 const hardware::MemoryHierarchy& hw, radix_bits_t bits,
                 size_t window_elems, PhaseBreakdown* phases,
                 size_t num_threads = 1);

}  // namespace radix::project

#endif  // RADIX_PROJECT_DSM_POST_H_
