#ifndef RADIX_PROJECT_EXECUTOR_H_
#define RADIX_PROJECT_EXECUTOR_H_

#include <cstdint>
#include <string>

#include "common/types.h"
#include "hardware/memory_hierarchy.h"
#include "project/strategy.h"
#include "workload/generator.h"

namespace radix {
class ThreadPool;
}  // namespace radix

namespace radix::pipeline {
class MemoryGauge;
}  // namespace radix::pipeline

namespace radix::project {

/// End-to-end run of the paper's project-join query under one overall
/// strategy; the unit of comparison in Fig. 10. The checksum is an
/// order-independent digest of all result values, used to assert that every
/// strategy computed the same relation (result *order* legitimately
/// differs between strategies).
struct QueryRun {
  JoinStrategy strategy;
  size_t result_cardinality = 0;
  double seconds = 0;
  PhaseBreakdown phases;
  uint64_t checksum = 0;
  std::string detail;  ///< e.g. the DSM-post plan code "c/d"
  /// Worker threads that actually executed the projection kernels. Only
  /// kDsmPostDecluster has parallel kernels so far: it reports the pool
  /// size; every other strategy runs serial and honestly reports 1, no
  /// matter what QueryOptions::num_threads asked for — so benchmark tables
  /// cannot mislabel serial runs as parallel.
  size_t threads_used = 1;
};

struct QueryOptions {
  size_t pi_left = 1;
  size_t pi_right = 1;
  /// Varchar projection columns per side, taken from the workload's
  /// {left,right}_varchars (must be <= their size). String bytes are folded
  /// into QueryRun::checksum with the same per-row digest every strategy
  /// (and the scalar references) uses, so a checksum match asserts the
  /// strategies produced byte-identical string results. DSM post-projection
  /// declusters right-side varchars with the Fig. 12 three-phase scheme;
  /// every other strategy gathers them via PositionalJoinVarchar from
  /// result-order oids (pre-projection strategies carry those oids through
  /// the join as extra intermediate luggage — charged to their time).
  size_t pi_varchar_left = 0;
  size_t pi_varchar_right = 0;
  /// Use the planner for DSM-post side strategies (default); otherwise
  /// explicit codes.
  bool plan_sides = true;
  SideStrategy left = SideStrategy::kClustered;
  SideStrategy right = SideStrategy::kDecluster;
  /// Radix-bits / insertion-window overrides forwarded to DsmPostOptions
  /// (how an engine-prepared plan pins its parameters); the defaults mean
  /// "derive from cache geometry", exactly as before.
  static constexpr radix_bits_t kAutoBits = ~radix_bits_t{0};
  radix_bits_t left_bits = kAutoBits;
  radix_bits_t right_bits = kAutoBits;
  size_t window_elems = 0;
  /// Worker threads for the Radix-Cluster / Radix-Decluster kernels of the
  /// DSM post-projection strategy (kDsmPostDecluster) — the only strategy
  /// with parallel kernels so far; the NSM and pre-projection strategies
  /// run serial regardless and report QueryRun::threads_used == 1.
  /// 1 (default) = the exact serial kernels (required for MemTracer runs);
  /// > 1 = parallel kernels with byte-identical output; 0 = all hardware
  /// threads. Ignored when `pool` is set.
  size_t num_threads = 1;
  /// Caller-owned pool for the parallel kernels — how radix::engine::Engine
  /// injects its session pool so queries spawn no threads. When set it wins
  /// over num_threads; a size-1 pool selects the exact serial kernels.
  /// nullptr (default): the executor resolves a process-wide shared pool
  /// from num_threads (see detail::SharedPoolFor).
  ThreadPool* pool = nullptr;
  /// Chunk size (rows) for RunQueryStreaming's pipeline; 0 = auto, a
  /// cache-sized chunk per column (DefaultChunkRows). RunQuery ignores it.
  size_t chunk_rows = 0;
  /// Gauge the streaming pipeline's ring buffers register their bytes
  /// with; nullptr = the process-wide pipeline::MemoryGauge::Instance().
  /// The engine's admission controller injects its own gauge here so the
  /// memory it meters is the memory it admitted against.
  pipeline::MemoryGauge* gauge = nullptr;
};

/// DEPRECATED — prefer radix::engine::Engine (Prepare/Explain/Execute),
/// which owns the thread pool, the calibrated hardware profile, and the
/// cost-model-driven plan. RunQuery survives as a thin compatibility
/// wrapper: it executes exactly as before, but resolves its worker pool
/// from the process-wide shared cache (one pool per distinct size, reused
/// across calls) instead of spawning threads per query.
///
/// Execute the query on a generated workload with the given strategy.
QueryRun RunQuery(const workload::JoinWorkload& w, JoinStrategy strategy,
                  const QueryOptions& options,
                  const hardware::MemoryHierarchy& hw);

/// DEPRECATED — prefer radix::engine::Engine with ChunkingPolicy::kStream
/// (or a streaming budget), which picks materializing vs streaming from
/// the cost model instead of by entry point. Wrapper semantics match
/// RunQuery's.
///
/// Streamed execution (the pipeline/ subsystem): for the DSM
/// post-projection strategy the gather and Radix-Decluster phases exchange
/// cluster-aligned chunks of options.chunk_rows rows through a bounded ring
/// on the thread pool, overlapping the phases and bounding intermediates to
/// O(chunk_rows * columns) instead of O(N). Checksum, cardinality and the
/// result columns themselves are identical to RunQuery for every
/// strategy/seed. Strategies without a streaming path yet (the NSM and
/// pre-projection families, whose intermediates are row-major records) fall
/// back to RunQuery.
QueryRun RunQueryStreaming(const workload::JoinWorkload& w,
                           JoinStrategy strategy, const QueryOptions& options,
                           const hardware::MemoryHierarchy& hw);

namespace detail {

/// Process-wide shared kernel pools for the legacy free-function entry
/// points: one lazily-constructed pool per distinct size, reused for the
/// life of the process, so repeated RunQuery calls stop paying thread
/// spawn/teardown. Returns nullptr for num_threads <= 1 (exact serial
/// kernels); num_threads == 0 resolves to ThreadPool::DefaultThreads().
/// Thread-safe: the cache itself is mutex-guarded, and the returned pool
/// may be shared by concurrent legacy callers — ThreadPool::ParallelFor
/// tracks completion per call (the pool-wide Wait() the old scheduler
/// used could block a query behind every other query's tasks), so
/// concurrent RunQuery calls interleave at grain granularity instead of
/// corrupting or starving each other.
ThreadPool* SharedPoolFor(size_t num_threads);

}  // namespace detail

}  // namespace radix::project

#endif  // RADIX_PROJECT_EXECUTOR_H_
