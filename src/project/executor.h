#ifndef RADIX_PROJECT_EXECUTOR_H_
#define RADIX_PROJECT_EXECUTOR_H_

#include <cstdint>
#include <string>

#include "common/types.h"
#include "hardware/memory_hierarchy.h"
#include "project/strategy.h"
#include "workload/generator.h"

namespace radix::project {

/// End-to-end run of the paper's project-join query under one overall
/// strategy; the unit of comparison in Fig. 10. The checksum is an
/// order-independent digest of all result values, used to assert that every
/// strategy computed the same relation (result *order* legitimately
/// differs between strategies).
struct QueryRun {
  JoinStrategy strategy;
  size_t result_cardinality = 0;
  double seconds = 0;
  PhaseBreakdown phases;
  uint64_t checksum = 0;
  std::string detail;  ///< e.g. the DSM-post plan code "c/d"
};

struct QueryOptions {
  size_t pi_left = 1;
  size_t pi_right = 1;
  /// Use the planner for DSM-post side strategies (default); otherwise
  /// explicit codes.
  bool plan_sides = true;
  SideStrategy left = SideStrategy::kClustered;
  SideStrategy right = SideStrategy::kDecluster;
  /// Worker threads for the Radix-Cluster / Radix-Decluster kernels of the
  /// DSM post-projection strategy (kDsmPostDecluster) — the only strategy
  /// with parallel kernels so far; the NSM and pre-projection strategies
  /// ignore this and run serial. 1 (default) = the exact serial kernels;
  /// > 1 = parallel kernels with byte-identical output; 0 = all hardware
  /// threads.
  size_t num_threads = 1;
  /// Chunk size (rows) for RunQueryStreaming's pipeline; 0 = auto, a
  /// cache-sized chunk per column (DefaultChunkRows). RunQuery ignores it.
  size_t chunk_rows = 0;
};

/// Execute the query on a generated workload with the given strategy.
QueryRun RunQuery(const workload::JoinWorkload& w, JoinStrategy strategy,
                  const QueryOptions& options,
                  const hardware::MemoryHierarchy& hw);

/// Streamed execution (the pipeline/ subsystem): for the DSM
/// post-projection strategy the gather and Radix-Decluster phases exchange
/// cluster-aligned chunks of options.chunk_rows rows through a bounded ring
/// on the thread pool, overlapping the phases and bounding intermediates to
/// O(chunk_rows * columns) instead of O(N). Checksum, cardinality and the
/// result columns themselves are identical to RunQuery for every
/// strategy/seed. Strategies without a streaming path yet (the NSM and
/// pre-projection families, whose intermediates are row-major records) fall
/// back to RunQuery.
QueryRun RunQueryStreaming(const workload::JoinWorkload& w,
                           JoinStrategy strategy, const QueryOptions& options,
                           const hardware::MemoryHierarchy& hw);

}  // namespace radix::project

#endif  // RADIX_PROJECT_EXECUTOR_H_
