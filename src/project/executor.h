#ifndef RADIX_PROJECT_EXECUTOR_H_
#define RADIX_PROJECT_EXECUTOR_H_

#include <cstdint>
#include <string>

#include "common/types.h"
#include "hardware/memory_hierarchy.h"
#include "project/strategy.h"
#include "workload/generator.h"

namespace radix::project {

/// End-to-end run of the paper's project-join query under one overall
/// strategy; the unit of comparison in Fig. 10. The checksum is an
/// order-independent digest of all result values, used to assert that every
/// strategy computed the same relation (result *order* legitimately
/// differs between strategies).
struct QueryRun {
  JoinStrategy strategy;
  size_t result_cardinality = 0;
  double seconds = 0;
  PhaseBreakdown phases;
  uint64_t checksum = 0;
  std::string detail;  ///< e.g. the DSM-post plan code "c/d"
};

struct QueryOptions {
  size_t pi_left = 1;
  size_t pi_right = 1;
  /// Use the planner for DSM-post side strategies (default); otherwise
  /// explicit codes.
  bool plan_sides = true;
  SideStrategy left = SideStrategy::kClustered;
  SideStrategy right = SideStrategy::kDecluster;
  /// Worker threads for the Radix-Cluster / Radix-Decluster kernels of the
  /// DSM post-projection strategy (kDsmPostDecluster) — the only strategy
  /// with parallel kernels so far; the NSM and pre-projection strategies
  /// ignore this and run serial. 1 (default) = the exact serial kernels;
  /// > 1 = parallel kernels with byte-identical output; 0 = all hardware
  /// threads.
  size_t num_threads = 1;
};

/// Execute the query on a generated workload with the given strategy.
QueryRun RunQuery(const workload::JoinWorkload& w, JoinStrategy strategy,
                  const QueryOptions& options,
                  const hardware::MemoryHierarchy& hw);

}  // namespace radix::project

#endif  // RADIX_PROJECT_EXECUTOR_H_
