#ifndef RADIX_PROJECT_CHECKSUM_H_
#define RADIX_PROJECT_CHECKSUM_H_

#include <cstdint>
#include <string_view>

#include "common/hash.h"
#include "common/overflow.h"
#include "common/types.h"

namespace radix::project {

/// The per-row digest behind every strategy's order-independent result
/// checksum: each row folds its values — fixed-width and varchar alike —
/// into one digest, tagged with a running column index so row contents
/// stay associated, and the query checksum is the *sum* of row digests
/// (commutative, because result order legitimately differs between
/// strategies).
///
/// The canonical column order every producer and every reference verifier
/// must follow is: left fixed columns, right fixed columns, left varchar
/// columns, right varchar columns. Fixed values hash exactly as the
/// pre-varchar executor did, so fixed-only checksums are unchanged.
class RowDigest {
 public:
  // no-sanitize reason (both methods): the column-tag add folds a 64-bit
  // hash term with the shifted column index mod 2^64; wrap is harmless
  // because the sum only feeds the next HashInt64 mix.
  RADIX_NO_SANITIZE_INTEGER void AddValue(value_t v) {
    d_ = HashInt64(d_ ^ (static_cast<uint64_t>(static_cast<uint32_t>(v)) +
                         (col_++ << 32)));
  }

  RADIX_NO_SANITIZE_INTEGER void AddString(std::string_view s) {
    d_ = HashInt64(d_ ^ (HashBytes(s.data(), s.size()) + (col_++ << 32)));
  }

  uint64_t digest() const { return d_; }

 private:
  uint64_t d_ = 0x9e3779b97f4a7c15ULL;
  uint64_t col_ = 0;
};

}  // namespace radix::project

#endif  // RADIX_PROJECT_CHECKSUM_H_
