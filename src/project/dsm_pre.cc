#include "project/dsm_pre.h"

#include "cluster/partition_plan.h"
#include "common/timer.h"
#include "join/nsm_join.h"

namespace radix::project {

namespace {

/// Gather key + pi payload columns from DSM into a row-major intermediate:
/// the pre-projection "scan" in DSM. Column-at-a-time gathering keeps some
/// of DSM's sequential-bandwidth advantage over the NSM scan. `carry_oid`
/// appends the source position as a trailing hidden column (see
/// NsmPreProjection::Intermediate).
join::NsmPreProjection::Intermediate GatherDsm(
    const storage::DsmRelation& rel, size_t pi, bool carry_oid) {
  join::NsmPreProjection::Intermediate inter;
  inter.rows = rel.cardinality();
  inter.has_oid = carry_oid;
  inter.width = 1 + pi + (carry_oid ? 1 : 0);
  inter.buffer.Resize(inter.rows * inter.width * sizeof(value_t));
  const value_t* key = rel.key().data();
  for (size_t i = 0; i < inter.rows; ++i) inter.row(i)[0] = key[i];
  for (size_t a = 0; a < pi; ++a) {
    const value_t* col = rel.attr(1 + a).data();
    for (size_t i = 0; i < inter.rows; ++i) inter.row(i)[1 + a] = col[i];
  }
  if (carry_oid) {
    for (size_t i = 0; i < inter.rows; ++i) {
      inter.row(i)[1 + pi] = static_cast<value_t>(i);
    }
  }
  return inter;
}

}  // namespace

storage::NsmResult DsmPreProject(const storage::DsmRelation& left,
                                 const storage::DsmRelation& right,
                                 size_t pi_left, size_t pi_right,
                                 const hardware::MemoryHierarchy& hw,
                                 radix_bits_t bits, PhaseBreakdown* phases,
                                 std::vector<join::OidPair>* result_oids) {
  PhaseBreakdown local;
  PhaseBreakdown* ph = phases != nullptr ? phases : &local;
  Timer timer;
  const bool carry_oid = result_oids != nullptr;

  timer.Reset();
  auto li = GatherDsm(left, pi_left, carry_oid);
  auto ri = GatherDsm(right, pi_right, carry_oid);
  ph->projection_seconds += timer.ElapsedSeconds();

  size_t tuple_bytes = (1 + std::max(pi_left, pi_right)) * sizeof(value_t);
  if (bits == ~radix_bits_t{0}) {
    bits = cluster::PartitionedJoinBits(right.cardinality(), tuple_bytes, hw);
  }
  uint32_t passes = cluster::PassesFor(bits, hw);
  timer.Reset();
  storage::NsmResult result = join::NsmPreProjection::PartitionedHashJoinRows(
      li, ri, hw, bits, passes, result_oids);
  ph->join_seconds += timer.ElapsedSeconds();
  return result;
}

}  // namespace radix::project
