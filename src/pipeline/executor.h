#ifndef RADIX_PIPELINE_EXECUTOR_H_
#define RADIX_PIPELINE_EXECUTOR_H_

#include <cstddef>

#include "common/thread_pool.h"
#include "pipeline/chunk.h"

namespace radix::pipeline {

/// One stage of a streamed pipeline. Stages are invoked concurrently for
/// *distinct* chunks, so an implementation must only read shared immutable
/// inputs and write chunk-private state: the chunk's arena buffers, or the
/// disjoint output range the chunk owns (a row range for order-preserving
/// gathers, a set of result slots for the decluster merge).
class ChunkStage {
 public:
  virtual ~ChunkStage() = default;
  virtual void Run(WorkChunk& chunk) = 0;
};

/// Per-stage busy time summed across all chunk tasks (i.e. thread-seconds);
/// once stages overlap on a pool, busy sums legitimately exceed the wall
/// time StreamingExecutor::Run returns.
struct PipelineStats {
  double gather_busy_seconds = 0;
  double sink_busy_seconds = 0;
  size_t chunks = 0;
  size_t ring_slots = 0;
};

struct ExecutorOptions {
  /// Bound on in-flight chunks. 0 = auto: pool threads + 2 when threaded
  /// (every worker can stay busy while the coordinator refills), 1 when
  /// serial. Peak intermediate memory is ring_slots * buffer bytes.
  size_t ring_slots = 0;
  /// Arena shape per ring slot: `buffer_columns` buffers of `buffer_rows`
  /// values. 0 columns for stages that write straight into the output.
  size_t buffer_columns = 0;
  size_t buffer_rows = 0;
  /// nullptr (or a size-1 pool) runs every stage inline on the calling
  /// thread, in chunk order — the exact reference pipeline.
  ThreadPool* pool = nullptr;
  /// Gauge the ring arenas register their bytes with; nullptr = the
  /// process-wide MemoryGauge::Instance(). An engine serving concurrent
  /// queries injects its admission gauge here so the budget it gates
  /// Execute() on is the same instrument the buffers report to.
  MemoryGauge* gauge = nullptr;
};

/// The pull-based chunked executor at the heart of src/pipeline/: pulls
/// chunk descriptors off a ChunkPlan, parks each in a free slot of a
/// bounded ring, and schedules its stages on the thread pool. The gather
/// task of a chunk chains its sink task onto the pool queue, so the sink
/// (Radix-Decluster window merge) of chunk k runs while the gather of
/// chunk k+1 proceeds — phases overlap instead of running back-to-back,
/// and at most ring_slots chunks of intermediates exist at any moment.
///
/// Output is byte-identical regardless of pool size or scheduling: chunks
/// own disjoint output ranges, so write order between chunks is free.
class StreamingExecutor {
 public:
  explicit StreamingExecutor(const ExecutorOptions& options)
      : options_(options) {}

  /// Drive every chunk of `plan` through `gather`, then `sink` (optional).
  /// Blocks until all chunks completed; returns the wall seconds of the
  /// streamed section.
  double Run(const ChunkPlan& plan, ChunkStage& gather, ChunkStage* sink,
             PipelineStats* stats = nullptr);

 private:
  ExecutorOptions options_;
};

}  // namespace radix::pipeline

#endif  // RADIX_PIPELINE_EXECUTOR_H_
