#ifndef RADIX_PIPELINE_CHUNK_H_
#define RADIX_PIPELINE_CHUNK_H_

#include <cstddef>
#include <vector>

#include "cluster/radix_cluster.h"
#include "common/macros.h"
#include "common/types.h"
#include "storage/column.h"

namespace radix::pipeline {

class MemoryGauge;

/// One unit of streamed work: a contiguous range of the (clustered) input
/// arrays. For cluster-aligned plans, rows [row_begin, row_end) are exactly
/// clusters [cluster_begin, cluster_end) of the borders the plan was built
/// from; row-chunk plans (order-preserving gathers, no clustering) leave
/// the cluster range empty.
struct ChunkDesc {
  size_t index = 0;
  size_t row_begin = 0;
  size_t row_end = 0;
  size_t cluster_begin = 0;
  size_t cluster_end = 0;

  size_t rows() const { return row_end - row_begin; }
};

/// The full chunk schedule of one streamed operator pipeline.
struct ChunkPlan {
  std::vector<ChunkDesc> chunks;
  size_t max_rows = 0;  ///< widest chunk; sizes the executor's ring buffers
  size_t total_rows = 0;
};

/// Split a clustered array into chunks of *whole* clusters: every chunk
/// holds at least one non-empty cluster and at most ~target_rows rows —
/// exceeded only when a single cluster alone overflows the target (a
/// cluster cannot be split without breaking the window merge's cursor
/// contract). Empty clusters are absorbed into the running chunk so the
/// cluster ranges partition [0, num_clusters). target_rows == 0 yields one
/// chunk (the materializing execution, as a degenerate plan).
ChunkPlan MakeClusterAlignedChunks(const cluster::ClusterBorders& borders,
                                   size_t target_rows);

/// Split a plain row range [0, n) into fixed-size chunks; the plan for
/// order-preserving streams (left projections, the right side's "u"
/// strategy) where no clustering is involved.
ChunkPlan MakeRowChunks(size_t n, size_t target_rows);

/// The per-slot intermediate storage of the executor ring, and the only
/// allocation the streaming pipeline makes per in-flight chunk: `columns`
/// value buffers of `capacity_rows` each, in one gauge-tracked block.
/// Column a of the current chunk occupies [column(a), column(a) + rows).
class ChunkArena {
 public:
  ChunkArena() = default;
  ~ChunkArena();
  RADIX_DISALLOW_COPY_AND_ASSIGN(ChunkArena);

  /// (Re)allocate; registers the byte delta with `gauge`, or with the
  /// process-wide MemoryGauge::Instance() when gauge is nullptr. The arena
  /// remembers the gauge so the destructor unregisters against the same
  /// one — which is how an engine's private admission gauge sees exactly
  /// its own queries' ring buffers.
  void Reset(size_t columns, size_t capacity_rows,
             MemoryGauge* gauge = nullptr);

  value_t* column(size_t a) {
    RADIX_DCHECK(a < columns_);
    return data_.data() + a * capacity_rows_;
  }
  const value_t* column(size_t a) const {
    RADIX_DCHECK(a < columns_);
    return data_.data() + a * capacity_rows_;
  }

  size_t columns() const { return columns_; }
  size_t capacity_rows() const { return capacity_rows_; }

 private:
  storage::Column<value_t> data_;
  size_t columns_ = 0;
  size_t capacity_rows_ = 0;
  MemoryGauge* gauge_ = nullptr;  ///< resolved at Reset; Instance() default
};

/// What a stage receives: the chunk descriptor plus the slot's arena.
struct WorkChunk {
  ChunkDesc desc;
  ChunkArena arena;

  value_t* column(size_t a) { return arena.column(a); }
  const value_t* column(size_t a) const { return arena.column(a); }
};

}  // namespace radix::pipeline

#endif  // RADIX_PIPELINE_CHUNK_H_
