#include "pipeline/executor.h"

#include <algorithm>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/timer.h"

namespace radix::pipeline {

double StreamingExecutor::Run(const ChunkPlan& plan, ChunkStage& gather,
                              ChunkStage* sink, PipelineStats* stats) {
  Timer wall;
  PipelineStats local;
  if (plan.chunks.empty()) {
    if (stats != nullptr) *stats = local;
    return wall.ElapsedSeconds();
  }

  ThreadPool* pool = options_.pool;
  bool threaded = pool != nullptr && pool->num_threads() > 1;
  size_t slots = options_.ring_slots;
  if (slots == 0) slots = threaded ? pool->num_threads() + 2 : 1;
  slots = std::clamp<size_t>(slots, 1, plan.chunks.size());
  local.ring_slots = slots;
  local.chunks = plan.chunks.size();

  std::vector<WorkChunk> ring(slots);
  for (WorkChunk& c : ring) {
    c.arena.Reset(options_.buffer_columns, options_.buffer_rows,
                  options_.gauge);
  }

  if (!threaded) {
    // Serial reference pipeline: one slot, stages inline, chunk order.
    // Still memory-bounded — that is a property of chunking, not threads.
    for (const ChunkDesc& d : plan.chunks) {
      WorkChunk& c = ring[0];
      c.desc = d;
      Timer t;
      gather.Run(c);
      local.gather_busy_seconds += t.ElapsedSeconds();
      if (sink != nullptr) {
        t.Reset();
        sink->Run(c);
        local.sink_busy_seconds += t.ElapsedSeconds();
      }
    }
    if (stats != nullptr) *stats = local;
    return wall.ElapsedSeconds();
  }

  // Threaded: the calling thread is the coordinator. It parks each chunk in
  // a free ring slot and submits its gather task; the gather task chains
  // the sink task onto the pool queue; the last task of a chunk returns the
  // slot. The ring bound doubles as backpressure: when no slot is free the
  // coordinator blocks here instead of queueing unbounded work.
  struct Ctx {
    /// mu guards every field below; cv is notified under it. Leaf lock:
    /// stage tasks lock it only in finish_chunk, never while holding (or
    /// acquiring) the pool's queue mutex.
    Mutex mu;
    CondVar cv;
    std::vector<size_t> free_slots RADIX_GUARDED_BY(mu);
    size_t in_flight RADIX_GUARDED_BY(mu) = 0;
    double gather_busy RADIX_GUARDED_BY(mu) = 0;
    double sink_busy RADIX_GUARDED_BY(mu) = 0;
  } ctx;
  {
    MutexLock lock(ctx.mu);
    ctx.free_slots.reserve(slots);
    for (size_t s = 0; s < slots; ++s) ctx.free_slots.push_back(s);
  }

  auto finish_chunk = [&ctx](size_t slot, double gather_s, double sink_s) {
    // Notify under the lock: once in_flight hits 0 the coordinator may
    // return and destroy ctx, so the cv must not be touched after unlock.
    MutexLock lock(ctx.mu);
    ctx.gather_busy += gather_s;
    ctx.sink_busy += sink_s;
    ctx.free_slots.push_back(slot);
    --ctx.in_flight;
    ctx.cv.NotifyAll();
  };

  // While the ring is full (or during the final drain) the coordinator
  // runs queued stage tasks itself instead of idling, so all num_threads
  // participate — matching ParallelFor's calling-thread-included contract.
  auto acquire_slot = [&ctx, pool]() {
    for (;;) {
      {
        MutexLock lock(ctx.mu);
        if (!ctx.free_slots.empty()) {
          size_t slot = ctx.free_slots.back();
          ctx.free_slots.pop_back();
          ++ctx.in_flight;
          return slot;
        }
      }
      if (!pool->TryRunOneTask()) {
        MutexLock lock(ctx.mu);
        while (ctx.free_slots.empty()) ctx.cv.Wait(lock);
      }
    }
  };

  for (const ChunkDesc& d : plan.chunks) {
    size_t slot = acquire_slot();
    ring[slot].desc = d;
    pool->Submit([&, slot] {
      WorkChunk& c = ring[slot];
      Timer t;
      gather.Run(c);
      double gather_s = t.ElapsedSeconds();
      if (sink == nullptr) {
        finish_chunk(slot, gather_s, 0);
        return;
      }
      pool->Submit([&, slot, gather_s] {
        WorkChunk& c2 = ring[slot];
        Timer t2;
        sink->Run(c2);
        finish_chunk(slot, gather_s, t2.ElapsedSeconds());
      });
    });
  }
  for (;;) {
    {
      MutexLock lock(ctx.mu);
      if (ctx.in_flight == 0) {
        local.gather_busy_seconds = ctx.gather_busy;
        local.sink_busy_seconds = ctx.sink_busy;
        break;
      }
    }
    if (!pool->TryRunOneTask()) {
      MutexLock lock(ctx.mu);
      // A woken coordinator re-checks the queue first; in_flight only ever
      // falls, so waiting on any completion is enough for progress.
      if (ctx.in_flight != 0) ctx.cv.Wait(lock);
    }
  }
  if (stats != nullptr) *stats = local;
  return wall.ElapsedSeconds();
}

}  // namespace radix::pipeline
