#include "pipeline/memory_gauge.h"

namespace radix::pipeline {

MemoryGauge& MemoryGauge::Instance() {
  static MemoryGauge gauge;
  return gauge;
}

void MemoryGauge::Add(size_t bytes) {
  size_t now = current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  size_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
}

void MemoryGauge::Sub(size_t bytes) {
  current_.fetch_sub(bytes, std::memory_order_relaxed);
}

void MemoryGauge::ResetPeak() {
  peak_.store(current_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
}

}  // namespace radix::pipeline
