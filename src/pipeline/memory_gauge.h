#ifndef RADIX_PIPELINE_MEMORY_GAUGE_H_
#define RADIX_PIPELINE_MEMORY_GAUGE_H_

#include <atomic>
#include <cstddef>

#include "common/macros.h"

namespace radix::pipeline {

/// Process-wide instrumentation of the streaming pipeline's intermediate
/// buffers. Every chunk buffer the executor ring allocates registers its
/// bytes here, so tests and bench counters can assert the subsystem's
/// headline invariant: peak in-flight intermediate bytes are
/// O(ring_slots * chunk_rows * columns), independent of the relation
/// cardinality N — unlike the materializing projector, whose intermediates
/// grow with N.
class MemoryGauge {
 public:
  static MemoryGauge& Instance();

  MemoryGauge() = default;
  RADIX_DISALLOW_COPY_AND_ASSIGN(MemoryGauge);

  void Add(size_t bytes);
  void Sub(size_t bytes);

  /// Start a fresh measurement window: peak := current. Buffers registered
  /// before the reset stay accounted in current_bytes().
  void ResetPeak();

  size_t current_bytes() const {
    return current_.load(std::memory_order_relaxed);
  }
  size_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }

 private:
  std::atomic<size_t> current_{0};
  std::atomic<size_t> peak_{0};
};

}  // namespace radix::pipeline

#endif  // RADIX_PIPELINE_MEMORY_GAUGE_H_
