#include "pipeline/operators.h"

#include "decluster/radix_decluster.h"
#include "join/positional_join.h"

namespace radix::pipeline {

void ClusteredGatherStage::Run(WorkChunk& chunk) {
  const ChunkDesc& d = chunk.desc;
  RADIX_DCHECK(columns_.size() <= chunk.arena.columns());
  RADIX_DCHECK(d.rows() <= chunk.arena.capacity_rows());
  for (size_t a = 0; a < columns_.size(); ++a) {
    join::PositionalJoinRange<value_t>(ids_, d.row_begin, d.row_end,
                                       columns_[a], chunk.column(a));
  }
}

void DeclusterMergeSink::Run(WorkChunk& chunk) {
  const ChunkDesc& d = chunk.desc;
  std::vector<decluster::ClusterCursor> base = decluster::MakeCursorsForRange(
      *borders_, d.cluster_begin, d.cluster_end);
  if (base.empty()) return;
  for (size_t a = 0; a < outs_.size(); ++a) {
    // The merge consumes its cursors; each column restarts from a copy.
    // The ids/cursors are identical across columns, so the debug-build
    // precondition sweep runs only for the first.
    decluster::RadixDeclusterChunk<value_t>(chunk.column(a), d.row_begin,
                                            result_pos_, base, window_elems_,
                                            outs_[a], /*validate=*/a == 0);
  }
}

void DirectGatherStage::Run(WorkChunk& chunk) {
  const ChunkDesc& d = chunk.desc;
  for (size_t a = 0; a < columns_.size(); ++a) {
    join::PositionalJoinRange<value_t>(ids_, d.row_begin, d.row_end,
                                       columns_[a],
                                       outs_[a].data() + d.row_begin);
  }
}

void PairsGatherStage::Run(WorkChunk& chunk) {
  const ChunkDesc& d = chunk.desc;
  for (size_t a = 0; a < columns_.size(); ++a) {
    join::PositionalJoinPairsRange<value_t, /*kLeft=*/true>(
        index_, d.row_begin, d.row_end, columns_[a],
        outs_[a].data() + d.row_begin);
  }
}

}  // namespace radix::pipeline
