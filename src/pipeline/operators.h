#ifndef RADIX_PIPELINE_OPERATORS_H_
#define RADIX_PIPELINE_OPERATORS_H_

#include <span>
#include <vector>

#include "cluster/radix_cluster.h"
#include "common/types.h"
#include "pipeline/executor.h"

namespace radix::pipeline {

/// Gather stage of a streamed decluster side: for each projected column,
/// fetch the values at the chunk's range of the clustered id column into
/// the chunk's arena buffers (join::PositionalJoinRange). The per-chunk
/// footprint — columns x chunk rows — is the O(chunk_rows * columns)
/// intermediate the subsystem exists to bound.
class ClusteredGatherStage : public ChunkStage {
 public:
  ClusteredGatherStage(std::span<const oid_t> ids,
                       std::vector<std::span<const value_t>> columns)
      : ids_(ids), columns_(std::move(columns)) {}

  void Run(WorkChunk& chunk) override;

 private:
  std::span<const oid_t> ids_;
  std::vector<std::span<const value_t>> columns_;
};

/// Sink stage of a streamed decluster side: per column, window-merge the
/// chunk's clusters into the final result (decluster::RadixDeclusterChunk).
/// Distinct chunks write disjoint result slots, so chunks decluster
/// concurrently while later chunks still gather.
class DeclusterMergeSink : public ChunkStage {
 public:
  DeclusterMergeSink(std::span<const oid_t> result_pos,
                     const cluster::ClusterBorders* borders,
                     size_t window_elems,
                     std::vector<std::span<value_t>> outs)
      : result_pos_(result_pos),
        borders_(borders),
        window_elems_(window_elems),
        outs_(std::move(outs)) {}

  void Run(WorkChunk& chunk) override;

 private:
  std::span<const oid_t> result_pos_;
  const cluster::ClusterBorders* borders_;
  size_t window_elems_;
  std::vector<std::span<value_t>> outs_;
};

/// Order-preserving gather (the right side's "u" strategy): result order ==
/// id order, so each chunk gathers straight into its row range of the final
/// columns — no intermediate at all, and no sink stage.
class DirectGatherStage : public ChunkStage {
 public:
  DirectGatherStage(std::span<const oid_t> ids,
                    std::vector<std::span<const value_t>> columns,
                    std::vector<std::span<value_t>> outs)
      : ids_(ids), columns_(std::move(columns)), outs_(std::move(outs)) {}

  void Run(WorkChunk& chunk) override;

 private:
  std::span<const oid_t> ids_;
  std::vector<std::span<const value_t>> columns_;
  std::vector<std::span<value_t>> outs_;
};

/// Order-preserving gather off the left side of a join index (the left
/// projections after the index has been reordered); like DirectGatherStage
/// but reading oids from the index pairs, avoiding an oid-column copy.
class PairsGatherStage : public ChunkStage {
 public:
  PairsGatherStage(std::span<const cluster::OidPair> index,
                   std::vector<std::span<const value_t>> columns,
                   std::vector<std::span<value_t>> outs)
      : index_(index), columns_(std::move(columns)), outs_(std::move(outs)) {}

  void Run(WorkChunk& chunk) override;

 private:
  std::span<const cluster::OidPair> index_;
  std::vector<std::span<const value_t>> columns_;
  std::vector<std::span<value_t>> outs_;
};

}  // namespace radix::pipeline

#endif  // RADIX_PIPELINE_OPERATORS_H_
