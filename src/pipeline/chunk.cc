#include "pipeline/chunk.h"

#include <algorithm>

#include "pipeline/memory_gauge.h"

namespace radix::pipeline {

ChunkPlan MakeClusterAlignedChunks(const cluster::ClusterBorders& borders,
                                   size_t target_rows) {
  ChunkPlan plan;
  size_t num = borders.num_clusters();
  size_t n = borders.total();
  plan.total_rows = n;
  if (num == 0 || n == 0) return plan;
  if (target_rows == 0) target_rows = n;

  size_t c = 0;
  while (c < num) {
    ChunkDesc d;
    d.cluster_begin = c;
    d.row_begin = borders.start(c);
    size_t rows = 0;
    // Take clusters until the target is reached. The first non-empty
    // cluster is taken unconditionally (rows == 0), and empty clusters are
    // absorbed for free, so the ranges partition the cluster space.
    do {
      rows += borders.size(c);
      ++c;
    } while (c < num && (rows == 0 || borders.size(c) == 0 ||
                         rows + borders.size(c) <= target_rows));
    d.cluster_end = c;
    d.row_end = borders.end(c - 1);
    if (rows == 0) continue;  // all-empty tail: nothing to stream
    d.index = plan.chunks.size();
    plan.max_rows = std::max(plan.max_rows, rows);
    plan.chunks.push_back(d);
  }
  return plan;
}

ChunkPlan MakeRowChunks(size_t n, size_t target_rows) {
  ChunkPlan plan;
  plan.total_rows = n;
  if (n == 0) return plan;
  if (target_rows == 0) target_rows = n;
  for (size_t begin = 0; begin < n; begin += target_rows) {
    ChunkDesc d;
    d.index = plan.chunks.size();
    d.row_begin = begin;
    d.row_end = std::min(n, begin + target_rows);
    plan.max_rows = std::max(plan.max_rows, d.rows());
    plan.chunks.push_back(d);
  }
  return plan;
}

ChunkArena::~ChunkArena() {
  if (gauge_ != nullptr) gauge_->Sub(data_.size_bytes());
}

void ChunkArena::Reset(size_t columns, size_t capacity_rows,
                       MemoryGauge* gauge) {
  if (gauge == nullptr) gauge = &MemoryGauge::Instance();
  // A re-Reset against a different gauge moves the existing bytes over.
  if (gauge_ != nullptr) gauge_->Sub(data_.size_bytes());
  gauge_ = gauge;
  columns_ = columns;
  capacity_rows_ = capacity_rows;
  data_.Resize(columns * capacity_rows);
  gauge_->Add(data_.size_bytes());
}

}  // namespace radix::pipeline
