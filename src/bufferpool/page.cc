#include "bufferpool/page.h"

#include <vector>

namespace radix::bufferpool {

Page::Page(size_t page_bytes) : bytes_(page_bytes, 0) {
  RADIX_CHECK(page_bytes >= sizeof(Header) + sizeof(Slot));
  // Strictly below 2^16, not <=: free_offset is uint16_t and must be able
  // to hold page_bytes itself (a positionally-filled 65536-byte page would
  // wrap free_offset to 0 in WriteAt and corrupt the fill-level metadata).
  RADIX_CHECK(page_bytes < 65536);  // 16-bit offsets
  // The slot directory grows down from bytes_[page_bytes], so an odd size
  // would put every Slot at an odd address (misaligned uint16 stores,
  // UBSan-caught via the decluster fuzz harness's odd page sizes).
  RADIX_CHECK(page_bytes % alignof(Slot) == 0);
  header() = Header{};
}

size_t Page::free_bytes() const {
  size_t used_tail = num_records() * sizeof(Slot);
  size_t front = header().free_offset;
  size_t avail = bytes_.size() - used_tail;
  if (front + sizeof(Slot) > avail) return 0;
  return avail - front - sizeof(Slot);
}

int Page::Append(const uint8_t* data, size_t len) {
  if (len > free_bytes()) return -1;
  Header& h = header();
  uint16_t off = h.free_offset;
  std::memcpy(bytes_.data() + off, data, len);
  Slot* slots = slot_array();
  slots[-static_cast<ptrdiff_t>(h.num_records)] = {
      off, static_cast<uint16_t>(len)};
  h.free_offset = static_cast<uint16_t>(off + len);
  return h.num_records++;
}

void Page::WriteAt(size_t payload_offset, const uint8_t* data, size_t len) {
  size_t off = sizeof(Header) + payload_offset;
  RADIX_DCHECK(off + len <= bytes_.size());
  std::memcpy(bytes_.data() + off, data, len);
  Header& h = header();
  if (off + len > h.free_offset) h.free_offset = static_cast<uint16_t>(off + len);
}

std::span<const uint8_t> Page::Record(size_t slot) const {
  RADIX_DCHECK(slot < num_records());
  const Slot& s = slot_array()[-static_cast<ptrdiff_t>(slot)];
  return {bytes_.data() + s.offset, s.length};
}

void Page::SetSlot(size_t slot, uint16_t offset, uint16_t len) {
  Header& h = header();
  slot_array()[-static_cast<ptrdiff_t>(slot)] = {offset, len};
  if (slot >= h.num_records) h.num_records = static_cast<uint16_t>(slot + 1);
}

}  // namespace radix::bufferpool
