#ifndef RADIX_BUFFERPOOL_PAGE_H_
#define RADIX_BUFFERPOOL_PAGE_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/macros.h"

namespace radix::bufferpool {

/// A slotted page for variable-size values, matching the layout the paper
/// sketches in Fig. 12: a small header, record bytes growing from the
/// front, and 2-byte record offsets growing from the end. The usable
/// payload per page is P = page_size - (header + one offset slot per
/// record), which is exactly the divisor in the paper's page/offset
/// computation.
class Page {
 public:
  static constexpr size_t kDefaultPageBytes = 8192;
  /// Bytes one slot-directory entry occupies at the page tail; positional
  /// writers must budget `record length + kSlotBytes` per record.
  static constexpr size_t kSlotBytes = 4;

  struct Header {
    uint16_t num_records = 0;
    uint16_t free_offset = sizeof(Header);  ///< first free payload byte
  };

  explicit Page(size_t page_bytes = kDefaultPageBytes);

  size_t page_bytes() const { return bytes_.size(); }
  size_t num_records() const { return header().num_records; }

  /// Bytes still available for one more record (payload + its slot).
  size_t free_bytes() const;

  /// Append a record; returns its slot number, or -1 if it does not fit.
  int Append(const uint8_t* data, size_t len);

  /// Write `len` bytes at a fixed payload offset (positional insert used by
  /// the paged decluster, which precomputes offsets); grows num_records
  /// metadata lazily via SetSlot.
  void WriteAt(size_t payload_offset, const uint8_t* data, size_t len);

  /// Record `slot`'s bytes.
  std::span<const uint8_t> Record(size_t slot) const;

  /// Directly set a slot's offset/length entry (positional construction).
  void SetSlot(size_t slot, uint16_t offset, uint16_t len);

  uint8_t* raw() { return bytes_.data(); }
  const uint8_t* raw() const { return bytes_.data(); }

  /// Max payload bytes per page for positional math: page minus header.
  static size_t PayloadCapacity(size_t page_bytes) {
    return page_bytes - sizeof(Header);
  }

 private:
  struct Slot {
    uint16_t offset;
    uint16_t length;
  };

  Header& header() { return *reinterpret_cast<Header*>(bytes_.data()); }
  const Header& header() const {
    return *reinterpret_cast<const Header*>(bytes_.data());
  }
  Slot* slot_array() {
    return reinterpret_cast<Slot*>(bytes_.data() + bytes_.size()) - 1;
  }
  const Slot* slot_array() const {
    return reinterpret_cast<const Slot*>(bytes_.data() + bytes_.size()) - 1;
  }

  std::vector<uint8_t> bytes_;
};

}  // namespace radix::bufferpool

#endif  // RADIX_BUFFERPOOL_PAGE_H_
