#ifndef RADIX_BUFFERPOOL_BUFFER_MANAGER_H_
#define RADIX_BUFFERPOOL_BUFFER_MANAGER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "bufferpool/page.h"
#include "common/status.h"
#include "common/types.h"

namespace radix::bufferpool {

using page_id_t = uint32_t;

/// A deliberately small frame-based buffer manager: pages are allocated in
/// memory and addressed by page id through an index array of start
/// addresses — the indirection that breaks Radix-Decluster's contiguous
/// "insert by position" and motivates the three-phase scheme of paper §5.
/// (No eviction: the paper's scenario keeps the output pages resident and
/// relies on sequential bulk I/O underneath; we model the addressing
/// problem, not the disk.)
class BufferManager {
 public:
  explicit BufferManager(size_t page_bytes = Page::kDefaultPageBytes)
      : page_bytes_(page_bytes) {}

  size_t page_bytes() const { return page_bytes_; }
  size_t num_pages() const { return pages_.size(); }

  /// Allocate `n` fresh pages, returning the first new page id; the ids are
  /// consecutive (the "index array of start addresses" of Fig. 12).
  page_id_t Allocate(size_t n);

  Page& page(page_id_t id) { return *pages_[id]; }
  const Page& page(page_id_t id) const { return *pages_[id]; }

  /// Payload capacity per page, the P of the paper's
  /// page# = B / P, offset = B % P computation.
  size_t payload_capacity() const {
    return Page::PayloadCapacity(page_bytes_);
  }

 private:
  size_t page_bytes_;
  std::vector<std::unique_ptr<Page>> pages_;
};

}  // namespace radix::bufferpool

#endif  // RADIX_BUFFERPOOL_BUFFER_MANAGER_H_
