#ifndef RADIX_BUFFERPOOL_BUFFER_MANAGER_H_
#define RADIX_BUFFERPOOL_BUFFER_MANAGER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "bufferpool/page.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"

namespace radix::bufferpool {

using page_id_t = uint32_t;

/// A deliberately small frame-based buffer manager: pages are allocated in
/// memory and addressed by page id through an index array of start
/// addresses — the indirection that breaks Radix-Decluster's contiguous
/// "insert by position" and motivates the three-phase scheme of paper §5.
/// (No eviction: the paper's scenario keeps the output pages resident and
/// relies on sequential bulk I/O underneath; we model the addressing
/// problem, not the disk.)
///
/// Concurrency: the page *directory* is guarded by mu_, so concurrent
/// queries may Allocate() from one shared manager safely; Page objects
/// themselves never move once allocated (unique_ptr stability), and each
/// allocation's pages belong to exactly one caller, so page *contents*
/// need no lock. Hot kernels take a PageRange() snapshot — one lock per
/// phase — instead of paying a directory lock per record (see
/// docs/CONCURRENCY.md).
class BufferManager {
 public:
  explicit BufferManager(size_t page_bytes = Page::kDefaultPageBytes)
      : page_bytes_(page_bytes) {}
  RADIX_DISALLOW_COPY_AND_ASSIGN(BufferManager);

  size_t page_bytes() const { return page_bytes_; }
  size_t num_pages() const RADIX_EXCLUDES(mu_);

  /// Allocate `n` fresh pages, returning the first new page id; the ids are
  /// consecutive (the "index array of start addresses" of Fig. 12).
  page_id_t Allocate(size_t n) RADIX_EXCLUDES(mu_);

  /// Directory lookup (one lock per call). The returned reference stays
  /// valid for the manager's lifetime — pages are never moved or evicted —
  /// but writing through it is only safe for the allocation's owner.
  Page& page(page_id_t id) RADIX_EXCLUDES(mu_);
  const Page& page(page_id_t id) const RADIX_EXCLUDES(mu_);

  /// Stable pointers to pages [first, first + n): the per-phase snapshot
  /// the paged-decluster kernels index in their hot loops, costing one
  /// directory lock per phase instead of one per record.
  std::vector<Page*> PageRange(page_id_t first, size_t n)
      RADIX_EXCLUDES(mu_);

  /// Payload capacity per page, the P of the paper's
  /// page# = B / P, offset = B % P computation.
  size_t payload_capacity() const {
    return Page::PayloadCapacity(page_bytes_);
  }

 private:
  const size_t page_bytes_;
  /// mu_ guards the directory vector only (growth reallocates it); leaf
  /// lock, never held while calling into Page.
  mutable Mutex mu_;
  std::vector<std::unique_ptr<Page>> pages_ RADIX_GUARDED_BY(mu_);
};

}  // namespace radix::bufferpool

#endif  // RADIX_BUFFERPOOL_BUFFER_MANAGER_H_
