#include "bufferpool/buffer_manager.h"

#include <limits>

#include "common/macros.h"

namespace radix::bufferpool {

size_t BufferManager::num_pages() const {
  MutexLock lock(mu_);
  return pages_.size();
}

page_id_t BufferManager::Allocate(size_t n) {
  MutexLock lock(mu_);
  // page_id_t is 32-bit; past 2^32 pages the cast below would silently
  // alias new pages onto old ids. At the 8 KiB default that is a 32 TiB
  // pool — unreachable in practice, so a hard check, not an error path.
  RADIX_CHECK(pages_.size() + n <= std::numeric_limits<page_id_t>::max());
  page_id_t first = static_cast<page_id_t>(pages_.size());
  for (size_t i = 0; i < n; ++i) {
    pages_.push_back(std::make_unique<Page>(page_bytes_));
  }
  return first;
}

Page& BufferManager::page(page_id_t id) {
  MutexLock lock(mu_);
  RADIX_DCHECK(id < pages_.size());
  return *pages_[id];
}

const Page& BufferManager::page(page_id_t id) const {
  MutexLock lock(mu_);
  RADIX_DCHECK(id < pages_.size());
  return *pages_[id];
}

std::vector<Page*> BufferManager::PageRange(page_id_t first, size_t n) {
  MutexLock lock(mu_);
  RADIX_DCHECK(first + n <= pages_.size());
  std::vector<Page*> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(pages_[first + i].get());
  }
  return out;
}

}  // namespace radix::bufferpool
