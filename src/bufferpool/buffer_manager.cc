#include "bufferpool/buffer_manager.h"

namespace radix::bufferpool {

page_id_t BufferManager::Allocate(size_t n) {
  page_id_t first = static_cast<page_id_t>(pages_.size());
  for (size_t i = 0; i < n; ++i) {
    pages_.push_back(std::make_unique<Page>(page_bytes_));
  }
  return first;
}

}  // namespace radix::bufferpool
