#ifndef RADIX_STORAGE_VARCHAR_H_
#define RADIX_STORAGE_VARCHAR_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/macros.h"
#include "common/types.h"

namespace radix::storage {

/// A variable-size (string) DSM column, laid out the MonetDB way the paper
/// describes (§3, footnote): the positional array holds integer offsets
/// into a separate heap buffer, so a Positional-Join on a varchar column
/// is still an array lookup plus one heap dereference.
///
/// Offsets have n+1 entries; value i occupies heap [offsets[i],
/// offsets[i+1]).
class VarcharColumn {
 public:
  VarcharColumn() { offsets_.push_back(0); }

  size_t size() const { return offsets_.size() - 1; }
  size_t heap_bytes() const { return heap_.size(); }

  void Reserve(size_t values, size_t heap_bytes) {
    offsets_.reserve(values + 1);
    heap_.reserve(heap_bytes);
  }

  void Append(std::string_view value) {
    heap_.insert(heap_.end(), value.begin(), value.end());
    offsets_.push_back(static_cast<uint64_t>(heap_.size()));
  }

  std::string_view at(size_t i) const {
    RADIX_DCHECK(i < size());
    return {reinterpret_cast<const char*>(heap_.data()) + offsets_[i],
            static_cast<size_t>(offsets_[i + 1] - offsets_[i])};
  }

  uint32_t length(size_t i) const {
    return static_cast<uint32_t>(offsets_[i + 1] - offsets_[i]);
  }

  std::span<const uint64_t> offsets() const { return offsets_; }
  std::span<const uint8_t> heap() const { return heap_; }

 private:
  std::vector<uint64_t> offsets_;
  std::vector<uint8_t> heap_;
};

/// The varchar gather kernel shared by every positional-join flavour:
/// two passes (sum the lengths, reserve once, append) over `n` ids
/// produced by `id_at(i)`. Kept in one place so the oid-span and
/// join-index-side gathers cannot drift apart.
template <typename GetId>
VarcharColumn GatherVarchar(size_t n, GetId&& id_at,
                            const VarcharColumn& values) {
  VarcharColumn out;
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) total += values.length(id_at(i));
  out.Reserve(n, total);
  for (size_t i = 0; i < n; ++i) out.Append(values.at(id_at(i)));
  return out;
}

/// Positional-Join for varchar columns: out gathers values[ids[i]] into a
/// fresh column. The offset-array access pattern is the same as a
/// fixed-width positional join; the heap adds a second, correlated stream.
VarcharColumn PositionalJoinVarchar(std::span<const oid_t> ids,
                                    const VarcharColumn& values);

}  // namespace radix::storage

#endif  // RADIX_STORAGE_VARCHAR_H_
