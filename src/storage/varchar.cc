#include "storage/varchar.h"

namespace radix::storage {

VarcharColumn PositionalJoinVarchar(std::span<const oid_t> ids,
                                    const VarcharColumn& values) {
  return GatherVarchar(ids.size(), [&](size_t i) { return ids[i]; }, values);
}

}  // namespace radix::storage
