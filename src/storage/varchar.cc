#include "storage/varchar.h"

namespace radix::storage {

VarcharColumn PositionalJoinVarchar(std::span<const oid_t> ids,
                                    const VarcharColumn& values) {
  VarcharColumn out;
  // First pass: total heap size so the output heap allocates once.
  size_t total = 0;
  for (oid_t id : ids) total += values.length(id);
  out.Reserve(ids.size(), total);
  for (oid_t id : ids) out.Append(values.at(id));
  return out;
}

}  // namespace radix::storage
