#ifndef RADIX_STORAGE_COLUMN_H_
#define RADIX_STORAGE_COLUMN_H_

#include <cstring>
#include <span>

#include "common/aligned_buffer.h"
#include "common/macros.h"
#include "common/types.h"

namespace radix::storage {

/// A typed, dense, cache-line-aligned array: the physical representation of
/// one DSM column ("most DSM systems do away with the extra storage for the
/// oids, such that the DSM data layout boils down to a single array for each
/// column", paper §1.1). An oid is simply the position; Positional-Join is
/// array lookup.
template <typename T>
class Column {
 public:
  Column() = default;
  explicit Column(size_t n) { Resize(n); }

  Column(Column&&) noexcept = default;
  Column& operator=(Column&&) noexcept = default;
  RADIX_DISALLOW_COPY_AND_ASSIGN(Column);

  /// (Re)allocate to n elements; contents are not preserved.
  void Resize(size_t n) {
    buffer_.Resize(n * sizeof(T));
    size_ = n;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t size_bytes() const { return size_ * sizeof(T); }

  T* data() { return buffer_.As<T>(); }
  const T* data() const { return buffer_.As<T>(); }

  T& operator[](size_t i) {
    RADIX_DCHECK(i < size_);
    return data()[i];
  }
  const T& operator[](size_t i) const {
    RADIX_DCHECK(i < size_);
    return data()[i];
  }

  std::span<T> span() { return {data(), size_}; }
  std::span<const T> span() const { return {data(), size_}; }

  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  /// Deep copy (explicit, since implicit copies of large columns are a bug).
  Column Clone() const {
    Column c(size_);
    std::memcpy(c.data(), data(), size_bytes());
    return c;
  }

 private:
  AlignedBuffer buffer_;
  size_t size_ = 0;
};

/// Width in bytes of one column entry ("R-bar" in the cost model).
template <typename T>
inline constexpr size_t kWidth = sizeof(T);

}  // namespace radix::storage

#endif  // RADIX_STORAGE_COLUMN_H_
