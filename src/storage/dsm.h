#ifndef RADIX_STORAGE_DSM_H_
#define RADIX_STORAGE_DSM_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/column.h"
#include "storage/varchar.h"

namespace radix::storage {

/// A vertically fragmented (DSM, [CK85]) relation: one dense array per
/// attribute, addressed by position (implicit / "void" oid). Attribute 0 by
/// convention is the join key for the paper's query
///   SELECT larger.a1..aY, smaller.b1..bZ
///   FROM larger, smaller WHERE larger.key = smaller.key.
class DsmRelation {
 public:
  DsmRelation() = default;
  DsmRelation(std::string name, size_t cardinality, size_t num_attrs);

  DsmRelation(DsmRelation&&) noexcept = default;
  DsmRelation& operator=(DsmRelation&&) noexcept = default;
  RADIX_DISALLOW_COPY_AND_ASSIGN(DsmRelation);

  const std::string& name() const { return name_; }
  size_t cardinality() const { return cardinality_; }
  size_t num_attrs() const { return columns_.size(); }

  Column<value_t>& attr(size_t i) { return columns_[i]; }
  const Column<value_t>& attr(size_t i) const { return columns_[i]; }
  Column<value_t>& key() { return columns_[0]; }
  const Column<value_t>& key() const { return columns_[0]; }

  /// Bytes touched by a π-column projection (key excluded): in DSM, unused
  /// columns stay untouched — the cache-friendliness argument of §1.1.
  size_t projection_bytes(size_t pi) const {
    return pi * cardinality_ * sizeof(value_t);
  }

 private:
  std::string name_;
  size_t cardinality_ = 0;
  std::vector<Column<value_t>> columns_;
};

/// Result of a DSM post-projection query: columns in join-result order.
/// Fixed-width and varchar projections coexist — row i of the result is
/// ({left,right}_columns[*][i], {left,right}_varchars[*].at(i)).
struct DsmResult {
  std::vector<Column<value_t>> left_columns;
  std::vector<Column<value_t>> right_columns;
  /// Variable-size projection outputs (paper §5): offsets-into-heap
  /// columns in the same result order as the fixed columns.
  std::vector<VarcharColumn> left_varchars;
  std::vector<VarcharColumn> right_varchars;
  size_t cardinality = 0;
};

}  // namespace radix::storage

#endif  // RADIX_STORAGE_DSM_H_
