#ifndef RADIX_STORAGE_NSM_H_
#define RADIX_STORAGE_NSM_H_

#include <cstring>
#include <string>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/macros.h"
#include "common/types.h"

namespace radix::storage {

/// An N-ary (row-major) relation: each tuple's ω 4-byte attributes are
/// stored contiguously. This mirrors how the paper "simulates" NSM inside
/// MonetDB with atomic record types of 1/4/16/64/256 integers that are
/// copied/projected by iterating over the record (§4). Attribute 0 is the
/// join key.
class NsmRelation {
 public:
  NsmRelation() = default;
  NsmRelation(std::string name, size_t cardinality, size_t num_attrs);

  NsmRelation(NsmRelation&&) noexcept = default;
  NsmRelation& operator=(NsmRelation&&) noexcept = default;
  RADIX_DISALLOW_COPY_AND_ASSIGN(NsmRelation);

  const std::string& name() const { return name_; }
  size_t cardinality() const { return cardinality_; }
  size_t num_attrs() const { return num_attrs_; }
  size_t record_bytes() const { return num_attrs_ * sizeof(value_t); }

  value_t* record(size_t row) {
    RADIX_DCHECK(row < cardinality_);
    return buffer_.As<value_t>() + row * num_attrs_;
  }
  const value_t* record(size_t row) const {
    RADIX_DCHECK(row < cardinality_);
    return buffer_.As<value_t>() + row * num_attrs_;
  }

  value_t key(size_t row) const { return record(row)[0]; }
  value_t attr(size_t row, size_t a) const {
    RADIX_DCHECK(a < num_attrs_);
    return record(row)[a];
  }
  void set_attr(size_t row, size_t a, value_t v) { record(row)[a] = v; }

  value_t* raw() { return buffer_.As<value_t>(); }
  const value_t* raw() const { return buffer_.As<value_t>(); }

  /// The NSM projection routine of §4: copy `pi` selected attributes of
  /// `row` into `out`. The attribute list is a run-time parameter — the
  /// "degree of freedom" whose interpretation overhead the paper contrasts
  /// with MonetDB's zero-degree-of-freedom column kernels.
  void ProjectRecord(size_t row, const uint16_t* attrs, size_t pi,
                     value_t* out) const {
    const value_t* rec = record(row);
    for (size_t i = 0; i < pi; ++i) out[i] = rec[attrs[i]];
  }

 private:
  std::string name_;
  size_t cardinality_ = 0;
  size_t num_attrs_ = 0;
  AlignedBuffer buffer_;
};

/// Row-major query result for NSM strategies: `width` values per row
/// (π_left + π_right projected attributes).
class NsmResult {
 public:
  NsmResult() = default;
  NsmResult(size_t cardinality, size_t width) { Resize(cardinality, width); }

  void Resize(size_t cardinality, size_t width) {
    cardinality_ = cardinality;
    width_ = width;
    buffer_.Resize(cardinality * width * sizeof(value_t));
  }

  size_t cardinality() const { return cardinality_; }
  size_t width() const { return width_; }

  value_t* row(size_t i) { return buffer_.As<value_t>() + i * width_; }
  const value_t* row(size_t i) const {
    return buffer_.As<value_t>() + i * width_;
  }

 private:
  size_t cardinality_ = 0;
  size_t width_ = 0;
  AlignedBuffer buffer_;
};

}  // namespace radix::storage

#endif  // RADIX_STORAGE_NSM_H_
