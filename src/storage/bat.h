#ifndef RADIX_STORAGE_BAT_H_
#define RADIX_STORAGE_BAT_H_

#include <cstdint>

#include "common/types.h"
#include "storage/column.h"

namespace radix::storage {

/// A MonetDB-style Binary Association Table: [head, tail] where the head is
/// either a *void* column (a virtual, zero-storage, densely ascending oid
/// sequence starting at `seqbase`) or a materialized oid column. All tables
/// in the DSM engine are BATs; `mark()` (below) re-heads a BAT with a fresh
/// void sequence, which is how the paper builds the JOIN_LARGER /
/// JOIN_SMALLER / CLUST_RESULT views (Figs. 3 and 4).
template <typename T>
class Bat {
 public:
  Bat() = default;

  /// BAT with a void head [seqbase, seqbase+n) and an empty tail of size n.
  static Bat MakeVoid(size_t n, oid_t seqbase = 0) {
    Bat b;
    b.tail_.Resize(n);
    b.void_head_ = true;
    b.seqbase_ = seqbase;
    return b;
  }

  /// BAT with a materialized head.
  static Bat MakeMaterialized(size_t n) {
    Bat b;
    b.head_.Resize(n);
    b.tail_.Resize(n);
    b.void_head_ = false;
    return b;
  }

  size_t size() const { return tail_.size(); }
  bool void_head() const { return void_head_; }
  oid_t seqbase() const { return seqbase_; }

  /// Head oid of row i (computed for void heads).
  oid_t head(size_t i) const {
    return void_head_ ? seqbase_ + static_cast<oid_t>(i) : head_[i];
  }

  Column<oid_t>& head_column() { return head_; }
  const Column<oid_t>& head_column() const { return head_; }
  Column<T>& tail() { return tail_; }
  const Column<T>& tail() const { return tail_; }

  /// MonetDB's mark() operator: returns a view of this BAT's tail re-headed
  /// with a fresh densely ascending void column starting at `seqbase`.
  /// We materialize the view by moving/aliasing the tail: the tail storage
  /// is shared conceptually; here we transfer ownership since the engine
  /// uses mark() only on freshly produced intermediates.
  Bat Mark(oid_t seqbase = 0) && {
    Bat b;
    b.tail_ = std::move(tail_);
    b.void_head_ = true;
    b.seqbase_ = seqbase;
    return b;
  }

 private:
  Column<oid_t> head_;  // empty when void_head_
  Column<T> tail_;
  bool void_head_ = true;
  oid_t seqbase_ = 0;
};

}  // namespace radix::storage

#endif  // RADIX_STORAGE_BAT_H_
