#include "storage/nsm.h"

namespace radix::storage {

NsmRelation::NsmRelation(std::string name, size_t cardinality,
                         size_t num_attrs)
    : name_(std::move(name)),
      cardinality_(cardinality),
      num_attrs_(num_attrs) {
  RADIX_CHECK(num_attrs >= 1);
  buffer_.Resize(cardinality * num_attrs * sizeof(value_t));
}

}  // namespace radix::storage
