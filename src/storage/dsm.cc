#include "storage/dsm.h"

namespace radix::storage {

DsmRelation::DsmRelation(std::string name, size_t cardinality,
                         size_t num_attrs)
    : name_(std::move(name)), cardinality_(cardinality) {
  RADIX_CHECK(num_attrs >= 1);
  columns_.resize(num_attrs);
  for (auto& col : columns_) col.Resize(cardinality);
}

}  // namespace radix::storage
