#include "storage/bat.h"

// Bat<T> is header-only; this TU checks the header is self-contained.
namespace radix::storage {
template class Bat<value_t>;
template class Bat<oid_t>;
}  // namespace radix::storage
