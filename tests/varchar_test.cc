// Tests for variable-size (varchar) columns: the offsets-into-heap layout,
// positional joins, and the three-phase flat varchar decluster.

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "cluster/radix_cluster.h"
#include "common/rng.h"
#include "decluster/paged_decluster.h"
#include "storage/varchar.h"
#include "workload/distributions.h"

namespace radix::storage {
namespace {

TEST(VarcharColumnTest, AppendAndRead) {
  VarcharColumn col;
  col.Append("alpha");
  col.Append("");
  col.Append("omega!");
  ASSERT_EQ(col.size(), 3u);
  EXPECT_EQ(col.at(0), "alpha");
  EXPECT_EQ(col.at(1), "");
  EXPECT_EQ(col.at(2), "omega!");
  EXPECT_EQ(col.length(1), 0u);
  EXPECT_EQ(col.heap_bytes(), 11u);
}

TEST(VarcharColumnTest, OffsetsAreMonotone) {
  VarcharColumn col;
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    col.Append(std::string(rng.Below(20), 'x'));
  }
  auto offsets = col.offsets();
  ASSERT_EQ(offsets.size(), 101u);
  for (size_t i = 1; i < offsets.size(); ++i) {
    EXPECT_LE(offsets[i - 1], offsets[i]);
  }
  EXPECT_EQ(offsets.back(), col.heap_bytes());
}

TEST(VarcharPositionalJoinTest, GathersByOid) {
  VarcharColumn values;
  // Construct + append (not `"v" + std::to_string(...)`): the rvalue
  // operator+ trips GCC 12's -Wrestrict false positive (GCC bug 105651).
  for (int i = 0; i < 50; ++i) {
    std::string s("v");
    s += std::to_string(i);
    values.Append(s);
  }
  std::vector<oid_t> ids = {49, 0, 7, 7, 23};
  VarcharColumn out = PositionalJoinVarchar(ids, values);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out.at(0), "v49");
  EXPECT_EQ(out.at(1), "v0");
  EXPECT_EQ(out.at(2), "v7");
  EXPECT_EQ(out.at(3), "v7");
  EXPECT_EQ(out.at(4), "v23");
}

TEST(VarcharPositionalJoinTest, EmptyIds) {
  VarcharColumn values;
  values.Append("x");
  VarcharColumn out = PositionalJoinVarchar({}, values);
  EXPECT_EQ(out.size(), 0u);
}

/// Clustered (result positions, clustered varchar values) fixture, as the
/// DSM post-projection pipeline produces after fetching a varchar column
/// in clustered order.
struct Fixture {
  std::vector<oid_t> ids;
  VarcharColumn clustered_values;
  cluster::ClusterBorders borders;
  std::vector<std::string> expected;  // result order
};

Fixture MakeFixture(size_t n, radix_bits_t bits, uint64_t seed) {
  struct KeyPos {
    oid_t key, pos;
  };
  Rng rng(seed);
  std::vector<KeyPos> pairs(n);
  for (size_t i = 0; i < n; ++i) {
    pairs[i] = {static_cast<oid_t>(rng.Below(n)), static_cast<oid_t>(i)};
  }
  radix_bits_t sig = SignificantBits(n);
  radix_bits_t b = std::min(bits, sig);
  cluster::ClusterSpec spec{.total_bits = b,
                            .ignore_bits = static_cast<radix_bits_t>(sig - b),
                            .passes = 1};
  std::vector<KeyPos> scratch(n);
  simcache::NoTracer nt;
  auto radix_of = [](const KeyPos& p) -> uint64_t { return p.key; };
  Fixture f;
  f.borders = cluster::RadixClusterMultiPass(pairs.data(), scratch.data(), n,
                                             radix_of, spec, nt);
  f.ids.resize(n);
  f.expected.resize(n);
  for (size_t i = 0; i < n; ++i) {
    f.ids[i] = pairs[i].pos;
    std::string s("s");  // see -Wrestrict note above
    s += std::to_string(pairs[i].pos);
    s.append(pairs[i].pos % 13, '#');
    f.clustered_values.Append(s);
    f.expected[pairs[i].pos] = s;
  }
  return f;
}

class VarcharDeclusterSweep
    : public ::testing::TestWithParam<std::tuple<size_t, radix_bits_t, size_t>> {};

TEST_P(VarcharDeclusterSweep, RestoresResultOrder) {
  auto [n, bits, window] = GetParam();
  Fixture f = MakeFixture(n, bits, n + bits);
  VarcharColumn out = decluster::RadixDeclusterVarchar(
      f.clustered_values, f.ids, f.borders, window);
  ASSERT_EQ(out.size(), n);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out.at(i), f.expected[i]) << "result position " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VarcharDeclusterSweep,
    ::testing::Values(std::tuple<size_t, radix_bits_t, size_t>{100, 2, 16},
                      std::tuple<size_t, radix_bits_t, size_t>{1000, 4, 64},
                      std::tuple<size_t, radix_bits_t, size_t>{5000, 6, 512},
                      std::tuple<size_t, radix_bits_t, size_t>{5000, 6, 1u << 20},
                      std::tuple<size_t, radix_bits_t, size_t>{65536, 8, 4096}));

TEST(VarcharDeclusterTest, AllEmptyStrings) {
  Fixture f = MakeFixture(64, 3, 9);
  VarcharColumn empties;
  for (size_t i = 0; i < 64; ++i) empties.Append("");
  VarcharColumn out =
      decluster::RadixDeclusterVarchar(empties, f.ids, f.borders, 16);
  ASSERT_EQ(out.size(), 64u);
  for (size_t i = 0; i < 64; ++i) EXPECT_EQ(out.at(i), "");
}

// ---- paged decluster contract & edge cases (PR 2 hardening style) ------

TEST(PagedDeclusterContractTest, ValidateRejectsBadInputs) {
  Fixture f = MakeFixture(64, 3, 13);
  // Well-formed input validates.
  EXPECT_TRUE(decluster::ValidatePagedDecluster(64, f.ids, f.borders, 16)
                  .ok());
  // Size mismatch between values and ids.
  EXPECT_FALSE(decluster::ValidatePagedDecluster(63, f.ids, f.borders, 16)
                   .ok());
  // A zero insertion window would sweep forever without retiring a tuple.
  EXPECT_FALSE(decluster::ValidatePagedDecluster(64, f.ids, f.borders, 0)
                   .ok());
  // Borders that do not cover the input.
  cluster::ClusterBorders bad = f.borders;
  bad.offsets.back() = 63;
  EXPECT_FALSE(decluster::ValidatePagedDecluster(64, f.ids, bad, 16).ok());
  // Non-monotone borders.
  cluster::ClusterBorders nonmono = f.borders;
  if (nonmono.offsets.size() >= 3) {
    std::swap(nonmono.offsets[0], nonmono.offsets[1]);
    EXPECT_FALSE(
        decluster::ValidatePagedDecluster(64, f.ids, nonmono, 16).ok());
  }
  // Empty input with empty borders is fine (declusters to nothing).
  EXPECT_TRUE(decluster::ValidatePagedDecluster(0, {}, {}, 0).ok());
}

TEST(PagedDeclusterEdgeTest, EmptyInputAllocatesNoPages) {
  bufferpool::BufferManager bm(512);
  decluster::VarValues values;
  decluster::PagedResult var = decluster::PagedDeclusterVar(
      values, {}, cluster::ClusterBorders{}, 16, &bm);
  EXPECT_EQ(var.num_pages, 0u);
  EXPECT_TRUE(var.directory.empty());
  decluster::PagedResult fixed = decluster::PagedDeclusterFixed(
      {}, {}, cluster::ClusterBorders{}, 16, &bm);
  EXPECT_EQ(fixed.num_pages, 0u);
  EXPECT_EQ(bm.num_pages(), 0u);

  VarcharColumn col;
  VarcharColumn out = decluster::RadixDeclusterVarchar(
      col, {}, cluster::ClusterBorders{}, 16);
  EXPECT_EQ(out.size(), 0u);
}

TEST(PagedDeclusterEdgeTest, AllEmptyStringsPaged) {
  // Zero-length records still claim slots; every Read must return "".
  Fixture f = MakeFixture(128, 3, 17);
  decluster::VarValues values;
  for (size_t i = 0; i < 128; ++i) values.Append("");
  bufferpool::BufferManager bm(512);
  decluster::PagedResult result =
      decluster::PagedDeclusterVar(values, f.ids, f.borders, 16, &bm);
  ASSERT_EQ(result.directory.size(), 128u);
  EXPECT_GE(result.num_pages, 1u);
  for (size_t i = 0; i < 128; ++i) {
    EXPECT_EQ(result.Read(bm, i), "") << "result position " << i;
  }
}

TEST(PagedDeclusterEdgeTest, SinglePageHoldsEverything) {
  // Input small enough that one page suffices; the directory must agree.
  Fixture f = MakeFixture(16, 2, 19);
  decluster::VarValues values;
  for (size_t i = 0; i < 16; ++i) values.Append(f.clustered_values.at(i));
  bufferpool::BufferManager bm(8192);
  decluster::PagedResult result =
      decluster::PagedDeclusterVar(values, f.ids, f.borders, 8, &bm);
  EXPECT_EQ(result.num_pages, 1u);
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(result.Read(bm, i), f.expected[i]) << "result position " << i;
  }
}

}  // namespace
}  // namespace radix::storage
