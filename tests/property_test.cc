// Cross-module property tests: randomized invariants that tie cluster,
// sort, decluster and projections together.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <numeric>
#include <vector>

#include "cluster/radix_cluster.h"
#include "cluster/radix_count.h"
#include "cluster/radix_sort.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "decluster/radix_decluster.h"
#include "hardware/memory_hierarchy.h"
#include "join/positional_join.h"
#include "project/dsm_post.h"
#include "project/executor.h"
#include "workload/distributions.h"
#include "workload/generator.h"

namespace radix {
namespace {

using cluster::ClusterBorders;
using cluster::ClusterSpec;

TEST(ClusterProperty, PartialClusterPlusInClusterSortEqualsFullSort) {
  // Partial cluster on the top B bits, then sorting each cluster
  // independently, must equal a full sort — this is exactly why "stopping
  // early" (ignore bits) is sound (§3.1).
  Rng rng(1);
  for (int round = 0; round < 10; ++round) {
    size_t n = 1000 + rng.Below(20000);
    std::vector<oid_t> data(n);
    std::iota(data.begin(), data.end(), 0u);
    workload::Shuffle(data.data(), n, rng);
    std::vector<oid_t> expected = data;
    std::sort(expected.begin(), expected.end());

    radix_bits_t sig = SignificantBits(n);
    radix_bits_t bits = 1 + static_cast<radix_bits_t>(rng.Below(sig));
    ClusterSpec spec{.total_bits = bits,
                     .ignore_bits = static_cast<radix_bits_t>(sig - bits),
                     .passes = 1 + static_cast<uint32_t>(rng.Below(3))};
    ClusterBorders borders = cluster::RadixCluster(
        std::span<oid_t>(data), [](oid_t v) { return uint64_t{v}; }, spec);
    for (size_t k = 0; k < borders.num_clusters(); ++k) {
      std::sort(data.begin() + borders.start(k), data.begin() + borders.end(k));
    }
    ASSERT_EQ(data, expected) << "round " << round << " bits " << bits;
  }
}

TEST(ClusterProperty, BordersFromCountMatchBordersFromCluster) {
  Rng rng(2);
  for (int round = 0; round < 10; ++round) {
    size_t n = 500 + rng.Below(5000);
    std::vector<oid_t> data(n);
    for (auto& v : data) v = static_cast<oid_t>(rng.Below(n));
    radix_bits_t sig = SignificantBits(n);
    radix_bits_t bits = 1 + static_cast<radix_bits_t>(rng.Below(6));
    if (bits > sig) bits = sig;
    ClusterSpec spec{.total_bits = bits,
                     .ignore_bits = static_cast<radix_bits_t>(sig - bits),
                     .passes = 1};
    ClusterBorders from_cluster = cluster::RadixCluster(
        std::span<oid_t>(data), [](oid_t v) { return uint64_t{v}; }, spec);
    ClusterBorders from_count =
        cluster::RadixCount(data, spec.total_bits, spec.ignore_bits);
    ASSERT_EQ(from_cluster.offsets, from_count.offsets);
  }
}

TEST(DeclusterProperty, ClusterThenDeclusterIsIdentityOnAnyPayload) {
  // For arbitrary payload columns (not just f(position)): fetching via the
  // clustered ids then declustering equals a plain gather by original ids.
  Rng rng(3);
  for (int round = 0; round < 8; ++round) {
    size_t n = 1000 + rng.Below(30000);
    size_t column_n = n + rng.Below(n);
    // Random ids into the column (duplicates allowed, like a join index).
    std::vector<oid_t> ids(n);
    for (auto& id : ids) id = static_cast<oid_t>(rng.Below(column_n));
    std::vector<value_t> column(column_n);
    for (auto& v : column) v = static_cast<value_t>(rng.Next());

    // Expected: direct gather.
    std::vector<value_t> expected(n);
    join::PositionalJoin<value_t>(ids, column, std::span<value_t>(expected));

    // Cluster (id, position) on id, gather clustered, decluster back.
    struct IdPos {
      oid_t id, pos;
    };
    std::vector<IdPos> pairs(n);
    for (size_t i = 0; i < n; ++i) pairs[i] = {ids[i], static_cast<oid_t>(i)};
    radix_bits_t sig = SignificantBits(column_n);
    radix_bits_t bits = 1 + static_cast<radix_bits_t>(rng.Below(8));
    if (bits > sig) bits = sig;
    ClusterSpec spec{.total_bits = bits,
                     .ignore_bits = static_cast<radix_bits_t>(sig - bits),
                     .passes = 1};
    std::vector<IdPos> scratch(n);
    simcache::NoTracer nt;
    auto radix_of = [](const IdPos& p) -> uint64_t { return p.id; };
    ClusterBorders borders = cluster::RadixClusterMultiPass(
        pairs.data(), scratch.data(), n, radix_of, spec, nt);

    std::vector<value_t> clustered_vals(n);
    std::vector<oid_t> result_pos(n);
    for (size_t i = 0; i < n; ++i) {
      clustered_vals[i] = column[pairs[i].id];
      result_pos[i] = pairs[i].pos;
    }
    std::vector<value_t> result(n);
    size_t window = 1 + rng.Below(8192);
    decluster::RadixDecluster<value_t>(clustered_vals, result_pos,
                                       decluster::MakeCursors(borders), window,
                                       std::span<value_t>(result));
    ASSERT_EQ(result, expected) << "round " << round;
  }
}

TEST(ProjectSideProperty, AllStrategiesProduceSameMultiset) {
  // u, s, c reorder rows; d preserves order. All must produce the same
  // multiset of fetched values for the same ids.
  Rng rng(4);
  size_t n = 20000;
  size_t column_n = 30000;
  std::vector<oid_t> base_ids(n);
  for (auto& id : base_ids) id = static_cast<oid_t>(rng.Below(column_n));
  std::vector<value_t> column(column_n);
  for (auto& v : column) v = static_cast<value_t>(rng.Next());

  auto hw = hardware::MemoryHierarchy::Pentium4();
  auto run = [&](project::SideStrategy strategy) {
    std::vector<oid_t> ids = base_ids;
    std::vector<value_t> out(n);
    project::PhaseBreakdown phases;
    project::ProjectSide(ids, strategy, {std::span<const value_t>(column)},
                         {std::span<value_t>(out)}, column_n, hw,
                         project::DsmPostOptions::kAuto, 0, &phases);
    std::sort(out.begin(), out.end());
    return out;
  };
  auto u = run(project::SideStrategy::kUnsorted);
  EXPECT_EQ(run(project::SideStrategy::kSorted), u);
  EXPECT_EQ(run(project::SideStrategy::kClustered), u);
  EXPECT_EQ(run(project::SideStrategy::kDecluster), u);
}

TEST(ParallelProperty, ClusterAndDeclusterBitIdenticalToSerial) {
  // The parallel kernels' whole contract: for every spec shape the paper
  // exercises — B = 0 no-op, single-pass, multi-pass, Zipf-skewed keys,
  // sparse inputs where most clusters are empty — and every thread count,
  // the parallel Radix-Cluster produces byte-identical data + borders, and
  // the parallel Radix-Decluster over the clustered positions produces a
  // byte-identical result column.
  struct Shape {
    const char* name;
    size_t n;
    radix_bits_t bits;
    uint32_t passes;
    bool zipf;
  };
  const Shape shapes[] = {
      {"B=0 no-op", 10'000, 0, 1, false},
      {"single-pass", 20'000, 6, 1, false},
      {"multi-pass", 30'000, 11, 3, false},
      {"Zipf-skewed", 30'000, 8, 2, true},
      {"empty clusters", 300, 10, 2, false},
  };
  struct KeyPos {
    oid_t key;  // join attribute the index is clustered on
    oid_t pos;  // result position carried through (ascending per cluster)
  };
  auto radix_of = [](const KeyPos& p) -> uint64_t { return KeyHash{}(p.key); };

  for (uint64_t seed : {1u, 42u, 12345u}) {
    for (const Shape& s : shapes) {
      Rng rng(seed);
      workload::ZipfGenerator zipf(1 << 16, 0.9);
      std::vector<KeyPos> base(s.n);
      for (size_t i = 0; i < s.n; ++i) {
        oid_t key = s.zipf ? static_cast<oid_t>(zipf.Next(rng))
                           : static_cast<oid_t>(rng.Below(s.n));
        base[i] = {key, static_cast<oid_t>(i)};
      }
      ClusterSpec spec{.total_bits = s.bits, .ignore_bits = 0,
                       .passes = s.passes};

      // Serial reference: cluster, then decluster a payload column.
      std::vector<KeyPos> serial = base;
      std::vector<KeyPos> scratch(s.n);
      simcache::NoTracer nt;
      ClusterBorders serial_borders = cluster::RadixClusterMultiPass(
          serial.data(), scratch.data(), s.n, radix_of, spec, nt);

      std::vector<value_t> values(s.n);
      std::vector<oid_t> positions(s.n);
      for (size_t i = 0; i < s.n; ++i) {
        values[i] = static_cast<value_t>(serial[i].pos * 13 + 1);
        positions[i] = serial[i].pos;
      }
      size_t window = 64 + seed % 1000;  // deliberately non-round
      std::vector<value_t> serial_result(s.n, -1);
      decluster::RadixDecluster<value_t>(
          values, positions, decluster::MakeCursors(serial_borders), window,
          std::span<value_t>(serial_result));

      for (size_t threads : {1u, 2u, 4u, 8u}) {
        ThreadPool pool(threads);
        std::vector<KeyPos> parallel = base;
        ClusterBorders par_borders = cluster::RadixClusterMultiPassParallel(
            parallel.data(), scratch.data(), s.n, radix_of, spec, pool);
        ASSERT_EQ(par_borders.offsets, serial_borders.offsets)
            << s.name << " seed=" << seed << " threads=" << threads;
        ASSERT_EQ(std::memcmp(parallel.data(), serial.data(),
                              s.n * sizeof(KeyPos)),
                  0)
            << s.name << " seed=" << seed << " threads=" << threads;

        std::vector<value_t> par_result(s.n, -2);
        decluster::RadixDeclusterParallel<value_t>(
            values, positions, decluster::MakeCursors(par_borders), window,
            std::span<value_t>(par_result), pool);
        ASSERT_EQ(par_result, serial_result)
            << s.name << " seed=" << seed << " threads=" << threads;
      }
    }
  }
}

TEST(ParallelProperty, PerColumnGatherBitIdenticalToSerial) {
  // The parallelized positional-join gather loops (column x row-slice work
  // items) must be byte-identical to the serial per-column loops, for both
  // the oid-column and the join-index flavours.
  Rng rng(6);
  for (size_t n : {0u, 100u, 30000u}) {
    size_t column_n = n + 1 + rng.Below(n + 1);
    size_t pi = 3;
    std::vector<oid_t> ids(n);
    std::vector<cluster::OidPair> index(n);
    for (size_t i = 0; i < n; ++i) {
      ids[i] = static_cast<oid_t>(rng.Below(column_n));
      index[i] = {static_cast<oid_t>(rng.Below(column_n)),
                  static_cast<oid_t>(rng.Below(column_n))};
    }
    std::vector<std::vector<value_t>> columns(pi);
    std::vector<std::span<const value_t>> col_spans(pi);
    for (size_t a = 0; a < pi; ++a) {
      columns[a].resize(column_n);
      for (auto& v : columns[a]) v = static_cast<value_t>(rng.Next());
      col_spans[a] = columns[a];
    }
    auto run_ids = [&](ThreadPool* pool) {
      std::vector<std::vector<value_t>> out(pi,
                                            std::vector<value_t>(n, -1));
      std::vector<std::span<value_t>> out_spans(out.begin(), out.end());
      join::PositionalJoinColumns<value_t>(ids, col_spans, out_spans, pool);
      return out;
    };
    auto run_pairs = [&](ThreadPool* pool) {
      std::vector<std::vector<value_t>> out(pi,
                                            std::vector<value_t>(n, -1));
      std::vector<std::span<value_t>> out_spans(out.begin(), out.end());
      join::PositionalJoinPairsColumns<value_t, /*kLeft=*/true>(
          index, col_spans, out_spans, pool);
      return out;
    };
    auto serial_ids = run_ids(nullptr);
    auto serial_pairs = run_pairs(nullptr);
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      ThreadPool pool(threads);
      ASSERT_EQ(run_ids(&pool), serial_ids) << "n=" << n << " threads=" << threads;
      ASSERT_EQ(run_pairs(&pool), serial_pairs)
          << "n=" << n << " threads=" << threads;
    }
  }
}

TEST(StreamingProperty, StreamingMatchesMaterializingAcrossStrategies) {
  // RunQueryStreaming's whole contract: identical checksum and cardinality
  // to RunQuery for every DSM-post side-strategy combination (Fig. 10c's
  // u/u, c/u, c/d, s/d), across seeds x threads x chunk sizes including
  // chunk_rows >= N.
  auto hw = hardware::MemoryHierarchy::Pentium4();
  struct Combo {
    project::SideStrategy left, right;
  };
  const Combo combos[] = {
      {project::SideStrategy::kUnsorted, project::SideStrategy::kUnsorted},
      {project::SideStrategy::kClustered, project::SideStrategy::kUnsorted},
      {project::SideStrategy::kClustered, project::SideStrategy::kDecluster},
      {project::SideStrategy::kSorted, project::SideStrategy::kDecluster},
  };
  for (uint64_t seed : {7u, 99u}) {
    workload::JoinWorkloadSpec spec;
    spec.cardinality = 15000 + 1000 * seed;
    spec.num_attrs = 3;
    spec.hit_rate = 1.0;
    spec.seed = seed;
    spec.build_nsm = false;
    workload::JoinWorkload w = workload::MakeJoinWorkload(spec);
    for (const Combo& combo : combos) {
      project::QueryOptions opts;
      opts.pi_left = 2;
      opts.pi_right = 2;
      opts.plan_sides = false;
      opts.left = combo.left;
      opts.right = combo.right;
      project::QueryRun ref = project::RunQuery(
          w, project::JoinStrategy::kDsmPostDecluster, opts, hw);
      for (size_t threads : {1u, 2u, 4u}) {
        for (size_t chunk_rows :
             {size_t{977}, size_t{8192}, spec.cardinality * 2}) {
          opts.num_threads = threads;
          opts.chunk_rows = chunk_rows;
          project::QueryRun streamed = project::RunQueryStreaming(
              w, project::JoinStrategy::kDsmPostDecluster, opts, hw);
          ASSERT_EQ(streamed.checksum, ref.checksum)
              << "seed=" << seed << " combo=" << ref.detail
              << " threads=" << threads << " chunk_rows=" << chunk_rows;
          ASSERT_EQ(streamed.result_cardinality, ref.result_cardinality);
          ASSERT_EQ(streamed.detail, ref.detail);
        }
      }
    }
  }
}

TEST(StreamingProperty, ChunkRowsOneEdgeCase) {
  // chunk_rows = 1 degenerates to one chunk per non-empty cluster (and one
  // row per chunk on the order-preserving streams) — the smallest legal
  // chunking must still agree with the materializing run.
  auto hw = hardware::MemoryHierarchy::Pentium4();
  workload::JoinWorkloadSpec spec;
  spec.cardinality = 4000;
  spec.num_attrs = 3;
  spec.seed = 3;
  spec.build_nsm = false;
  workload::JoinWorkload w = workload::MakeJoinWorkload(spec);
  for (auto right : {project::SideStrategy::kUnsorted,
                     project::SideStrategy::kDecluster}) {
    project::QueryOptions opts;
    opts.pi_left = 2;
    opts.pi_right = 2;
    opts.plan_sides = false;
    opts.left = project::SideStrategy::kClustered;
    opts.right = right;
    project::QueryRun ref = project::RunQuery(
        w, project::JoinStrategy::kDsmPostDecluster, opts, hw);
    for (size_t threads : {1u, 4u}) {
      opts.num_threads = threads;
      opts.chunk_rows = 1;
      project::QueryRun streamed = project::RunQueryStreaming(
          w, project::JoinStrategy::kDsmPostDecluster, opts, hw);
      ASSERT_EQ(streamed.checksum, ref.checksum)
          << ref.detail << " threads=" << threads;
      ASSERT_EQ(streamed.result_cardinality, ref.result_cardinality);
    }
  }
}

TEST(SortProperty, RadixSortMatchesStdSortOnPairs) {
  Rng rng(5);
  for (int round = 0; round < 6; ++round) {
    size_t n = 100 + rng.Below(50000);
    oid_t domain = static_cast<oid_t>(1 + rng.Below(1u << 20));
    std::vector<cluster::OidPair> pairs(n);
    for (auto& p : pairs) {
      p = {static_cast<oid_t>(rng.Below(domain)),
           static_cast<oid_t>(rng.Below(domain))};
    }
    auto expected = pairs;
    std::stable_sort(expected.begin(), expected.end(),
                     [](const cluster::OidPair& a, const cluster::OidPair& b) {
                       return a.left < b.left;
                     });
    cluster::RadixSortJoinIndex(std::span<cluster::OidPair>(pairs), domain,
                                /*by_left=*/true);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(pairs[i].left, expected[i].left);
      // Stability: right oids in the same order for equal left keys.
      ASSERT_EQ(pairs[i].right, expected[i].right);
    }
  }
}

}  // namespace
}  // namespace radix
