// Tests for the cost-model-driven radix-bits chooser, checking the
// decision rules the paper derives in §3.1/§4.1.

#include <gtest/gtest.h>

#include "cluster/partition_plan.h"
#include "hardware/memory_hierarchy.h"
#include "project/planner.h"

namespace radix::project {
namespace {

hardware::MemoryHierarchy P4() {
  return hardware::MemoryHierarchy::Pentium4();
}

TEST(ChooseBitsTest, SmallColumnsNeedNoClustering) {
  // Columns that fit the cache: unsorted (B = 0) must win for any pi.
  auto hw = P4();
  for (size_t pi : {1u, 4u, 64u}) {
    EXPECT_EQ(ChooseDeclusterBitsByModel(1 << 14, 1 << 14, pi, hw), 0u)
        << "pi=" << pi;
  }
}

TEST(ChooseBitsTest, LargeColumnsGetClustered) {
  // 8M-tuple columns (32MB >> 512KB): clustering must be chosen, with
  // enough bits that the mean fetch region fits the cache.
  auto hw = P4();
  radix_bits_t b = ChooseDeclusterBitsByModel(8 << 20, 8 << 20, 4, hw);
  EXPECT_GT(b, 0u);
  double region_bytes = (8.0 * (1 << 20)) * sizeof(value_t) / (1u << b);
  EXPECT_LE(region_bytes, 2.0 * hw.target_cache().capacity_bytes);
}

TEST(ChooseBitsTest, MoreProjectionColumnsJustifyMoreBits) {
  // §4.1: the one-off Radix-Cluster amortizes over pi positional joins, so
  // the chosen B must not shrink as pi grows.
  auto hw = P4();
  radix_bits_t prev = 0;
  for (size_t pi : {1u, 2u, 4u, 16u, 64u}) {
    radix_bits_t b = ChooseDeclusterBitsByModel(8 << 20, 8 << 20, pi, hw);
    EXPECT_GE(b, prev) << "pi=" << pi;
    prev = b;
  }
}

TEST(ChooseBitsTest, NearGeometricFormulaAtModeratePi) {
  // At pi = 4 the model's choice should be within a couple of bits of the
  // geometric formula from §3.1 — they express the same constraint.
  auto hw = P4();
  size_t n = 8 << 20;
  radix_bits_t formula = cluster::PartialClusterBits(n, sizeof(value_t), hw);
  radix_bits_t model = ChooseDeclusterBitsByModel(n, n, 4, hw);
  EXPECT_NEAR(static_cast<double>(model), static_cast<double>(formula), 3.0);
}

TEST(ChooseBitsTest, BoundedBySignificantBits) {
  auto hw = P4();
  radix_bits_t b = ChooseDeclusterBitsByModel(1000, 1000, 64, hw);
  EXPECT_LE(b, SignificantBits(1000));
}

}  // namespace
}  // namespace radix::project
