// End-to-end varchar workload properties: every Fig. 10 strategy must
// produce byte-identical string results for mixed fixed+varchar projection
// lists — asserted two ways:
//  * the order-independent checksum (string bytes folded into each row's
//    digest) must equal a scalar nested-loop reference that shares no code
//    with the radix kernels (the quickstart independent-ground-truth
//    pattern), across strategies x seeds x threads x length distributions;
//  * the DSM post-projection's returned varchar columns are compared
//    byte-for-byte against the reordered join index's oids per result row.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "engine/engine.h"
#include "join/partitioned_hash_join.h"
#include "project/checksum.h"
#include "project/dsm_post.h"
#include "project/executor.h"
#include "project/planner.h"
#include "workload/generator.h"

namespace radix {
namespace {

using project::JoinStrategy;
using project::SideStrategy;
using workload::JoinWorkload;
using workload::JoinWorkloadSpec;
using workload::VarcharColumnSpec;

constexpr JoinStrategy kAllStrategies[] = {
    JoinStrategy::kDsmPostDecluster, JoinStrategy::kDsmPrePhash,
    JoinStrategy::kNsmPreHash,       JoinStrategy::kNsmPrePhash,
    JoinStrategy::kNsmPostDecluster, JoinStrategy::kNsmPostJive};

/// Length distributions under test: uniform, Zipf-skewed with empties
/// mixed in, and the all-empty edge case.
VarcharColumnSpec DistSpec(int dist, size_t num_cols) {
  VarcharColumnSpec vs;
  vs.num_cols = num_cols;
  switch (dist) {
    case 0:  // uniform [4, 20]
      break;
    case 1:  // Zipf lengths incl. empty strings
      vs.min_len = 0;
      vs.max_len = 64;
      vs.zipf_skew = 1.2;
      vs.empty_fraction = 0.1;
      break;
    default:  // all-empty
      vs.empty_fraction = 1.0;
      break;
  }
  return vs;
}

/// Scalar nested-loop reference: literally O(n^2), no hash tables, no
/// radix kernels — only the deterministic payload functions and the shared
/// per-row digest. Any strategy must land on exactly this checksum.
uint64_t ReferenceChecksum(const JoinWorkload& w, const JoinWorkloadSpec& ws,
                           const project::QueryOptions& opt,
                           size_t* cardinality = nullptr) {
  uint64_t sum = 0;
  size_t rows = 0;
  size_t n = w.dsm_left.cardinality();
  for (size_t i = 0; i < n; ++i) {
    value_t lk = w.dsm_left.key()[i];
    for (size_t j = 0; j < w.dsm_right.cardinality(); ++j) {
      if (w.dsm_right.key()[j] != lk) continue;
      value_t rk = lk;
      project::RowDigest d;
      for (size_t c = 0; c < opt.pi_left; ++c) {
        d.AddValue(workload::PayloadValue(lk, 1 + c));
      }
      for (size_t c = 0; c < opt.pi_right; ++c) {
        d.AddValue(workload::PayloadValue(rk, 1 + c + 1000));
      }
      for (size_t c = 0; c < opt.pi_varchar_left; ++c) {
        d.AddString(workload::PayloadString(lk, c, ws.varchar));
      }
      for (size_t c = 0; c < opt.pi_varchar_right; ++c) {
        d.AddString(workload::PayloadString(
            rk, workload::kRightVarcharAttrOffset + c, ws.varchar));
      }
      sum += d.digest();
      ++rows;
    }
  }
  if (cardinality != nullptr) *cardinality = rows;
  return sum;
}

class VarcharStrategySweep
    : public ::testing::TestWithParam<std::tuple<int, uint64_t, double>> {};

TEST_P(VarcharStrategySweep, AllStrategiesMatchScalarReference) {
  auto [dist, seed, hit_rate] = GetParam();
  JoinWorkloadSpec ws;
  ws.cardinality = 1500;
  ws.num_attrs = 3;
  ws.hit_rate = hit_rate;
  ws.seed = seed;
  ws.varchar = DistSpec(dist, 2);
  JoinWorkload w = workload::MakeJoinWorkload(ws);
  auto hw = hardware::MemoryHierarchy::Pentium4();

  project::QueryOptions opt;
  opt.pi_left = 2;
  opt.pi_right = 2;
  opt.pi_varchar_left = 1;
  opt.pi_varchar_right = 2;
  size_t expected_rows = 0;
  uint64_t expected = ReferenceChecksum(w, ws, opt, &expected_rows);

  for (JoinStrategy s : kAllStrategies) {
    project::QueryRun run = project::RunQuery(w, s, opt, hw);
    EXPECT_EQ(run.checksum, expected)
        << project::JoinStrategyName(s) << " dist=" << dist
        << " seed=" << seed;
    EXPECT_EQ(run.result_cardinality, expected_rows)
        << project::JoinStrategyName(s);
  }

  // The DSM-post strategy additionally sweeps worker threads (its kernels
  // have parallel variants; varchar gathers stay serial but must compose
  // with the parallel fixed kernels) and the streaming entry point (which
  // must fall back to materializing for varchar and still agree).
  for (size_t threads : {2u, 4u}) {
    project::QueryOptions topt = opt;
    topt.num_threads = threads;
    project::QueryRun run =
        project::RunQuery(w, JoinStrategy::kDsmPostDecluster, topt, hw);
    EXPECT_EQ(run.checksum, expected) << "threads=" << threads;
  }
  project::QueryRun streamed = project::RunQueryStreaming(
      w, JoinStrategy::kDsmPostDecluster, opt, hw);
  EXPECT_EQ(streamed.checksum, expected) << "streaming fallback";
  EXPECT_EQ(streamed.phases.pipeline_wall_seconds, 0.0)
      << "varchar queries must not stream yet";

  // Forced side codes: every Fig. 10c plan shape over varchar payloads.
  for (auto [l, r] : {std::pair{SideStrategy::kUnsorted,
                                SideStrategy::kUnsorted},
                      std::pair{SideStrategy::kClustered,
                                SideStrategy::kDecluster},
                      std::pair{SideStrategy::kSorted,
                                SideStrategy::kDecluster}}) {
    project::QueryOptions fopt = opt;
    fopt.plan_sides = false;
    fopt.left = l;
    fopt.right = r;
    project::QueryRun run =
        project::RunQuery(w, JoinStrategy::kDsmPostDecluster, fopt, hw);
    EXPECT_EQ(run.checksum, expected)
        << project::SideStrategyCode(l) << "/" << project::SideStrategyCode(r);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VarcharStrategySweep,
    ::testing::Values(std::tuple<int, uint64_t, double>{0, 7, 1.0},
                      std::tuple<int, uint64_t, double>{0, 21, 0.3},
                      std::tuple<int, uint64_t, double>{1, 7, 1.0},
                      std::tuple<int, uint64_t, double>{1, 21, 1.0},
                      std::tuple<int, uint64_t, double>{2, 7, 1.0}));

TEST(VarcharDsmPostTest, ResultColumnsAreByteIdenticalToIndexGather) {
  // DsmPostProject returns actual varchar columns; after the call the
  // reordered index lists each result row's oid pair, so every string can
  // be checked byte-for-byte against its base column — for each plan shape
  // including the three-phase declustered right side.
  JoinWorkloadSpec ws;
  ws.cardinality = 4000;
  ws.num_attrs = 3;
  ws.seed = 11;
  ws.varchar = DistSpec(1, 2);
  JoinWorkload w = workload::MakeJoinWorkload(ws);
  auto hw = hardware::MemoryHierarchy::Pentium4();

  for (auto [l, r] :
       {std::pair{SideStrategy::kUnsorted, SideStrategy::kUnsorted},
        std::pair{SideStrategy::kClustered, SideStrategy::kDecluster},
        std::pair{SideStrategy::kSorted, SideStrategy::kDecluster}}) {
    join::JoinIndex index = join::PartitionedHashJoin(
        w.dsm_left.key().span(), w.dsm_right.key().span(), hw);
    project::DsmPostOptions popts;
    popts.left = l;
    popts.right = r;
    project::VarcharProjection var;
    var.left = {&w.left_varchars[0], &w.left_varchars[1]};
    var.right = {&w.right_varchars[0], &w.right_varchars[1]};
    storage::DsmResult result = project::DsmPostProject(
        index, w.dsm_left, w.dsm_right, /*pi_left=*/1, /*pi_right=*/1, hw,
        popts, nullptr, &var);
    ASSERT_EQ(result.cardinality, index.size());
    ASSERT_EQ(result.left_varchars.size(), 2u);
    ASSERT_EQ(result.right_varchars.size(), 2u);
    for (size_t i = 0; i < result.cardinality; ++i) {
      for (size_t c = 0; c < 2; ++c) {
        ASSERT_EQ(result.left_varchars[c].at(i),
                  w.left_varchars[c].at(index[i].left))
            << "row " << i << " left col " << c;
        ASSERT_EQ(result.right_varchars[c].at(i),
                  w.right_varchars[c].at(index[i].right))
            << "row " << i << " right col " << c;
      }
    }
  }
}

TEST(VarcharQueryTest, VarcharOnlyProjectionList) {
  // pi fixed = 0 with varchar columns only: every strategy must still
  // report the true cardinality (zero-width row results collapse to 0
  // rows; the gathered varchar columns carry the count) and the
  // reference checksum.
  JoinWorkloadSpec ws;
  ws.cardinality = 1000;
  ws.num_attrs = 2;
  ws.seed = 3;
  ws.varchar = DistSpec(0, 1);
  JoinWorkload w = workload::MakeJoinWorkload(ws);
  auto hw = hardware::MemoryHierarchy::Pentium4();

  project::QueryOptions opt;
  opt.pi_left = 0;
  opt.pi_right = 0;
  opt.pi_varchar_left = 1;
  opt.pi_varchar_right = 1;
  uint64_t expected = ReferenceChecksum(w, ws, opt);
  for (JoinStrategy s : kAllStrategies) {
    project::QueryRun run = project::RunQuery(w, s, opt, hw);
    EXPECT_EQ(run.result_cardinality, 1000u) << project::JoinStrategyName(s);
    EXPECT_EQ(run.checksum, expected) << project::JoinStrategyName(s);
  }
}

TEST(VarcharQueryTest, EmptyJoinResult) {
  // A join with (almost) no matches: varchar projections over an empty or
  // near-empty result must not trip the decluster edge cases.
  JoinWorkloadSpec ws;
  ws.cardinality = 500;
  ws.num_attrs = 3;
  ws.hit_rate = 0.002;  // ~1 match
  ws.seed = 9;
  ws.varchar = DistSpec(0, 1);
  JoinWorkload w = workload::MakeJoinWorkload(ws);
  auto hw = hardware::MemoryHierarchy::Pentium4();

  project::QueryOptions opt;
  opt.pi_left = 1;
  opt.pi_right = 1;
  opt.pi_varchar_left = 1;
  opt.pi_varchar_right = 1;
  size_t expected_rows = 0;
  uint64_t expected = ReferenceChecksum(w, ws, opt, &expected_rows);
  for (JoinStrategy s : kAllStrategies) {
    project::QueryRun run = project::RunQuery(w, s, opt, hw);
    EXPECT_EQ(run.checksum, expected) << project::JoinStrategyName(s);
    EXPECT_EQ(run.result_cardinality, expected_rows);
  }
}

TEST(VarcharWorkloadTest, PayloadStringIsDeterministicAndDistRespecting) {
  VarcharColumnSpec uniform;  // defaults: [4, 20]
  for (value_t key : {0, 1, 12345, 0x7fffffff}) {
    std::string a = workload::PayloadString(key, 2, uniform);
    std::string b = workload::PayloadString(key, 2, uniform);
    EXPECT_EQ(a, b);
    EXPECT_GE(a.size(), uniform.min_len);
    EXPECT_LE(a.size(), uniform.max_len);
    // Distinct attrs should (virtually always) give distinct strings.
    EXPECT_NE(a, workload::PayloadString(key, 3, uniform));
  }
  VarcharColumnSpec empties;
  empties.empty_fraction = 1.0;
  EXPECT_TRUE(workload::PayloadString(42, 0, empties).empty());

  VarcharColumnSpec zipf = DistSpec(1, 1);
  size_t total = 0;
  for (value_t key = 0; key < 2000; ++key) {
    total += workload::PayloadString(key, 0, zipf).size();
  }
  // Skewed toward min: the mean must sit well below the uniform midpoint.
  EXPECT_LT(total / 2000, (zipf.min_len + zipf.max_len) / 2);
}

TEST(VarcharWorkloadTest, GeneratedColumnsMatchPayloadString) {
  JoinWorkloadSpec ws;
  ws.cardinality = 300;
  ws.num_attrs = 2;
  ws.seed = 5;
  ws.varchar = DistSpec(1, 2);
  JoinWorkload w = workload::MakeJoinWorkload(ws);
  ASSERT_EQ(w.left_varchars.size(), 2u);
  ASSERT_EQ(w.right_varchars.size(), 2u);
  for (size_t c = 0; c < 2; ++c) {
    ASSERT_EQ(w.left_varchars[c].size(), 300u);
    for (size_t i = 0; i < 300; ++i) {
      EXPECT_EQ(w.left_varchars[c].at(i),
                workload::PayloadString(w.dsm_left.key()[i], c, ws.varchar));
      EXPECT_EQ(w.right_varchars[c].at(i),
                workload::PayloadString(
                    w.dsm_right.key()[i],
                    workload::kRightVarcharAttrOffset + c, ws.varchar));
    }
  }
}

}  // namespace
}  // namespace radix
