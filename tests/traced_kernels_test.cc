// Tests that replay kernels through the cache simulator and assert the
// *memory-behaviour* claims the paper makes — the Fig. 7a cliff, the
// partial-cluster benefit for positional joins, and the cursor-thrash of
// over-wide single-pass clustering. These tie simcache + the algorithms
// together: the invariants here are about miss counts, not results.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "cluster/radix_cluster.h"
#include "common/rng.h"
#include "decluster/radix_decluster.h"
#include "hardware/memory_hierarchy.h"
#include "join/positional_join.h"
#include "simcache/mem_tracer.h"
#include "workload/distributions.h"

namespace radix {
namespace {

using simcache::MemCounters;
using simcache::MemTracer;

hardware::MemoryHierarchy P4() {
  return hardware::MemoryHierarchy::Pentium4();
}

/// Paper-distribution decluster input (positions spread over the whole
/// result; see Fig. 4): cluster (random key, position) pairs by key.
struct Input {
  std::vector<value_t> values;
  std::vector<oid_t> ids;
  cluster::ClusterBorders borders;
};

Input MakeInput(size_t n, radix_bits_t bits, uint64_t seed) {
  struct KeyPos {
    oid_t key, pos;
  };
  Rng rng(seed);
  std::vector<KeyPos> pairs(n);
  for (size_t i = 0; i < n; ++i) {
    pairs[i] = {static_cast<oid_t>(rng.Below(n)), static_cast<oid_t>(i)};
  }
  radix_bits_t sig = SignificantBits(n);
  radix_bits_t b = std::min(bits, sig);
  cluster::ClusterSpec spec{.total_bits = b,
                            .ignore_bits = static_cast<radix_bits_t>(sig - b),
                            .passes = 1};
  std::vector<KeyPos> scratch(n);
  simcache::NoTracer nt;
  auto radix_of = [](const KeyPos& p) -> uint64_t { return p.key; };
  Input in;
  in.borders = cluster::RadixClusterMultiPass(pairs.data(), scratch.data(), n,
                                              radix_of, spec, nt);
  in.ids.resize(n);
  in.values.resize(n);
  for (size_t i = 0; i < n; ++i) {
    in.ids[i] = pairs[i].pos;
    in.values[i] = static_cast<value_t>(pairs[i].pos);
  }
  return in;
}

MemCounters DeclusterMisses(const Input& in, size_t window_elems) {
  MemTracer tracer(P4());
  std::vector<value_t> result(in.ids.size());
  decluster::RadixDecluster<value_t>(in.values, in.ids,
                                     decluster::MakeCursors(in.borders),
                                     window_elems,
                                     std::span<value_t>(result), &tracer);
  // Result correctness, while we're here.
  for (size_t i = 0; i < result.size(); ++i) {
    EXPECT_EQ(result[i], static_cast<value_t>(i));
  }
  return tracer.counters();
}

TEST(TracedDeclusterTest, WindowBeyondCacheSpikesL2Misses) {
  // The central claim of Fig. 7a: ||W|| <= C keeps L2 misses near the
  // sequential minimum; ||W|| >> C multiplies them.
  size_t n = 1 << 19;  // 2MB values, 4x the P4's 512KB L2
  Input in = MakeInput(n, 6, 1);
  uint64_t small_window = DeclusterMisses(in, (256 * 1024) / 4).l2_misses;
  uint64_t huge_window = DeclusterMisses(in, n).l2_misses;
  EXPECT_GT(huge_window, small_window * 3)
      << "no L2 cliff: small=" << small_window << " huge=" << huge_window;
}

TEST(TracedDeclusterTest, TinyWindowSpikesTlbMisses) {
  // Tiny windows re-visit every cluster's pages once per sweep: with more
  // clusters than TLB entries, TLB misses explode (the left edge of
  // Fig. 7a).
  size_t n = 1 << 18;
  Input in = MakeInput(n, 8, 2);  // 256 clusters > 64 TLB entries
  uint64_t tiny = DeclusterMisses(in, 256).tlb_misses;
  uint64_t good = DeclusterMisses(in, (256 * 1024) / 4).tlb_misses;
  EXPECT_GT(tiny, good * 4)
      << "no TLB penalty for tiny windows: tiny=" << tiny << " good=" << good;
}

TEST(TracedPositionalJoinTest, ClusteringConfinesMisses) {
  // Fig. 9c's claim: positional joins through a clustered index miss far
  // less than through an unclustered one, because each cluster's fetch
  // region fits the cache.
  size_t n = 1 << 19;  // column 2MB >> 512KB
  std::vector<oid_t> unclustered(n);
  std::iota(unclustered.begin(), unclustered.end(), 0u);
  Rng rng(3);
  workload::Shuffle(unclustered.data(), n, rng);

  std::vector<oid_t> clustered = unclustered;
  radix_bits_t sig = SignificantBits(n);
  radix_bits_t bits = 5;  // 32 regions of 64KB each << 512KB
  cluster::ClusterSpec spec{.total_bits = bits,
                            .ignore_bits = static_cast<radix_bits_t>(sig - bits),
                            .passes = 1};
  cluster::RadixCluster(std::span<oid_t>(clustered),
                        [](oid_t v) { return uint64_t{v}; }, spec);

  std::vector<value_t> column(n);
  for (size_t i = 0; i < n; ++i) column[i] = static_cast<value_t>(i);
  std::vector<value_t> out(n);

  MemTracer t_unclustered(P4());
  join::PositionalJoin<value_t, MemTracer>(unclustered, column,
                                           std::span<value_t>(out),
                                           &t_unclustered);
  MemTracer t_clustered(P4());
  join::PositionalJoin<value_t, MemTracer>(clustered, column,
                                           std::span<value_t>(out),
                                           &t_clustered);
  EXPECT_GT(t_unclustered.counters().l2_misses,
            t_clustered.counters().l2_misses * 3);
}

TEST(TracedClusterTest, OverwideSinglePassThrashesTlb) {
  // §2.1: single-pass partitioning with more output cursors than TLB
  // entries thrashes; two passes with the same total fan-out do not.
  size_t n = 1 << 18;
  std::vector<cluster::KeyOid> data(n);
  Rng rng(4);
  for (size_t i = 0; i < n; ++i) {
    data[i] = {static_cast<value_t>(rng.Below(n)), static_cast<oid_t>(i)};
  }
  auto radix_of = [](const cluster::KeyOid& t) {
    return static_cast<uint64_t>(static_cast<uint32_t>(t.key));
  };
  auto run = [&](uint32_t passes) {
    std::vector<cluster::KeyOid> work = data;
    std::vector<cluster::KeyOid> scratch(n);
    MemTracer tracer(P4());
    cluster::ClusterSpec spec{.total_bits = 12, .ignore_bits = 0,
                              .passes = passes};
    cluster::RadixClusterMultiPass(work.data(), scratch.data(), n, radix_of,
                                   spec, tracer);
    return tracer.counters();
  };
  MemCounters one_pass = run(1);   // 4096 cursors >> 64 TLB entries
  MemCounters two_pass = run(2);   // 64 cursors per pass
  EXPECT_GT(one_pass.tlb_misses, two_pass.tlb_misses * 2)
      << "one=" << one_pass.tlb_misses << " two=" << two_pass.tlb_misses;
}

TEST(TracedDeclusterTest, SequentialStreamsDominateAccesses) {
  // Sanity: the traced decluster touches ids/values/result once per tuple
  // plus cursor overhead — accesses should be ~3x n, not quadratic.
  size_t n = 1 << 16;
  Input in = MakeInput(n, 4, 5);
  MemCounters c = DeclusterMisses(in, 16 * 1024);
  EXPECT_LT(c.accesses, 6 * n);
  EXPECT_GE(c.accesses, 3 * n);
}

}  // namespace
}  // namespace radix
