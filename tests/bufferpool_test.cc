// Tests for the slotted page, buffer manager, and the Section-5 paged
// Radix-Decluster (fixed and variable-size values).

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "bufferpool/buffer_manager.h"
#include "bufferpool/page.h"
#include "common/rng.h"
#include "decluster/paged_decluster.h"
#include "workload/distributions.h"

namespace radix {
namespace {

using bufferpool::BufferManager;
using bufferpool::Page;

TEST(PageTest, AppendAndRead) {
  Page page(256);
  std::string a = "hello";
  std::string b = "world!";
  int sa = page.Append(reinterpret_cast<const uint8_t*>(a.data()), a.size());
  int sb = page.Append(reinterpret_cast<const uint8_t*>(b.data()), b.size());
  ASSERT_EQ(sa, 0);
  ASSERT_EQ(sb, 1);
  auto ra = page.Record(0);
  auto rb = page.Record(1);
  EXPECT_EQ(std::string(ra.begin(), ra.end()), a);
  EXPECT_EQ(std::string(rb.begin(), rb.end()), b);
}

TEST(PageTest, RejectsWhenFull) {
  Page page(64);  // tiny page
  std::vector<uint8_t> big(200, 1);
  EXPECT_EQ(page.Append(big.data(), big.size()), -1);
  std::vector<uint8_t> small(8, 2);
  int appended = 0;
  while (page.Append(small.data(), small.size()) >= 0) ++appended;
  EXPECT_GT(appended, 0);
  // Slots and payload must not have collided: all records readable.
  for (int s = 0; s < appended; ++s) {
    EXPECT_EQ(page.Record(s).size(), 8u);
  }
}

TEST(BufferManagerTest, AllocatesConsecutiveIds) {
  BufferManager bm(4096);
  auto first = bm.Allocate(3);
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(bm.Allocate(2), 3u);
  EXPECT_EQ(bm.num_pages(), 5u);
  EXPECT_EQ(bm.payload_capacity(), 4096 - sizeof(Page::Header));
}

/// Shared fixture: clustered result positions as the projection pipeline
/// really produces them — (foreign key, result position) pairs stably
/// clustered on the key, so positions ascend within each cluster (the
/// §3.2 precondition the decluster kernels check in debug builds) while
/// spreading over the whole result range.
struct ClusteredIds {
  std::vector<oid_t> ids;
  cluster::ClusterBorders borders;
};

ClusteredIds MakeIds(size_t n, radix_bits_t bits, uint64_t seed) {
  struct KeyPos {
    oid_t key, pos;
  };
  Rng rng(seed);
  std::vector<KeyPos> pairs(n);
  for (size_t i = 0; i < n; ++i) {
    pairs[i] = {static_cast<oid_t>(rng.Below(n)), static_cast<oid_t>(i)};
  }
  radix_bits_t sig = SignificantBits(n);
  radix_bits_t b = std::min(bits, sig);
  cluster::ClusterSpec spec{
      .total_bits = b,
      .ignore_bits = static_cast<radix_bits_t>(sig - b),
      .passes = 1};
  std::vector<KeyPos> scratch(n);
  simcache::NoTracer tracer;
  auto radix_of = [](const KeyPos& p) -> uint64_t { return p.key; };
  ClusteredIds c;
  c.borders = cluster::RadixClusterMultiPass(pairs.data(), scratch.data(), n,
                                             radix_of, spec, tracer);
  c.ids.resize(n);
  for (size_t i = 0; i < n; ++i) c.ids[i] = pairs[i].pos;
  return c;
}

TEST(PagedDeclusterTest, FixedSizeValuesLandAtComputedPositions) {
  size_t n = 10000;
  ClusteredIds c = MakeIds(n, 4, 1);
  std::vector<value_t> values(n);
  for (size_t i = 0; i < n; ++i) {
    values[i] = static_cast<value_t>(c.ids[i] * 2 + 1);
  }
  BufferManager bm(4096);
  auto result = decluster::PagedDeclusterFixed(values, c.ids, c.borders,
                                               /*window=*/512, &bm);
  ASSERT_EQ(result.directory.size(), n);
  for (size_t i = 0; i < n; ++i) {
    auto sv = result.Read(bm, i);
    ASSERT_EQ(sv.size(), sizeof(value_t));
    value_t v;
    std::memcpy(&v, sv.data(), sizeof(v));
    ASSERT_EQ(v, static_cast<value_t>(i * 2 + 1)) << "result position " << i;
  }
}

TEST(PagedDeclusterTest, VariableSizeValuesThreePhase) {
  // Strings of varying length (the paper's Fig. 12 scenario: "fast",
  // "hashing", ... at computed page offsets).
  size_t n = 5000;
  ClusteredIds c = MakeIds(n, 5, 2);
  decluster::VarValues values;
  std::vector<std::string> expected(n);
  for (size_t i = 0; i < n; ++i) {
    oid_t target = c.ids[i];
    // Construct + append (not `"v" + std::to_string(...)`): the rvalue
    // operator+ trips GCC 12's -Wrestrict false positive (GCC bug 105651).
    std::string s("v");
    s += std::to_string(target);
    s.append(target % 23, 'x');  // lengths vary 0..22 extra chars
    values.Append(s);
    expected[target] = s;
  }
  BufferManager bm(1024);
  auto result =
      decluster::PagedDeclusterVar(values, c.ids, c.borders, 256, &bm);
  ASSERT_EQ(result.directory.size(), n);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(result.Read(bm, i), expected[i]) << "result position " << i;
  }
  EXPECT_GT(result.num_pages, 1u);
}

TEST(PagedDeclusterTest, RecordsNeverSpanPages) {
  size_t n = 2000;
  ClusteredIds c = MakeIds(n, 3, 3);
  decluster::VarValues values;
  Rng rng(4);
  for (size_t i = 0; i < n; ++i) {
    values.Append(std::string(1 + rng.Below(60), 'a' + (c.ids[i] % 26)));
  }
  BufferManager bm(512);
  auto result = decluster::PagedDeclusterVar(values, c.ids, c.borders, 128, &bm);
  size_t payload = bm.payload_capacity();
  for (const auto& loc : result.directory) {
    EXPECT_LE(loc.offset + loc.length, payload)
        << "record crosses page boundary";
  }
}

TEST(PagedDeclusterTest, DirectoryMatchesPageSlots) {
  size_t n = 300;
  ClusteredIds c = MakeIds(n, 2, 5);
  decluster::VarValues values;
  for (size_t i = 0; i < n; ++i) {
    std::string s("s");  // see -Wrestrict note above
    s += std::to_string(c.ids[i]);
    values.Append(s);
  }
  BufferManager bm(512);
  auto result = decluster::PagedDeclusterVar(values, c.ids, c.borders, 64, &bm);
  // Every page's slot count sums to n.
  size_t total_slots = 0;
  for (size_t p = 0; p < result.num_pages; ++p) {
    total_slots += bm.page(result.first_page + static_cast<uint32_t>(p))
                       .num_records();
  }
  EXPECT_EQ(total_slots, n);
}

}  // namespace
}  // namespace radix
