// Tests for the CPU feature-detection / dispatch-resolution layer: the
// RADIX_FORCE_ISA override, the fallback (clamping) order, and the
// consistency contract between DetectIsa and IsaSupported. These run in
// the CI dispatch matrix under each forced ISA, so the ActiveIsa test
// exercises every override value on every PR.

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/cpu_dispatch.h"
#include "common/simd_kernels.h"

namespace radix {
namespace {

using cpu::Isa;

TEST(CpuDispatchTest, IsaNames) {
  EXPECT_STREQ(cpu::IsaName(Isa::kScalar), "scalar");
  EXPECT_STREQ(cpu::IsaName(Isa::kAvx2), "avx2");
  EXPECT_STREQ(cpu::IsaName(Isa::kAvx512), "avx512");
}

TEST(CpuDispatchTest, ParseIsaRoundTripsNames) {
  for (int level = 0; level < cpu::kNumIsaLevels; ++level) {
    const Isa isa = static_cast<Isa>(level);
    const auto parsed = cpu::ParseIsa(cpu::IsaName(isa));
    ASSERT_TRUE(parsed.has_value()) << cpu::IsaName(isa);
    EXPECT_EQ(*parsed, isa);
  }
}

TEST(CpuDispatchTest, ParseIsaIsCaseInsensitive) {
  EXPECT_EQ(cpu::ParseIsa("SCALAR"), Isa::kScalar);
  EXPECT_EQ(cpu::ParseIsa("Avx2"), Isa::kAvx2);
  EXPECT_EQ(cpu::ParseIsa("AVX512"), Isa::kAvx512);
}

TEST(CpuDispatchTest, ParseIsaRejectsGarbage) {
  EXPECT_FALSE(cpu::ParseIsa("").has_value());
  EXPECT_FALSE(cpu::ParseIsa("avx").has_value());
  EXPECT_FALSE(cpu::ParseIsa("avx1024").has_value());
  EXPECT_FALSE(cpu::ParseIsa("scalar ").has_value());
  EXPECT_FALSE(cpu::ParseIsa("sse2").has_value());
}

TEST(CpuDispatchTest, ScalarIsAlwaysSupported) {
  EXPECT_TRUE(cpu::IsaSupported(Isa::kScalar));
}

TEST(CpuDispatchTest, SupportIsMonotonicAcrossTiers) {
  // A higher tier implies every lower one; DetectIsa relies on walking
  // down, so a hole in the middle would break the fallback order.
  if (cpu::IsaSupported(Isa::kAvx512)) {
    EXPECT_TRUE(cpu::IsaSupported(Isa::kAvx2));
  }
}

TEST(CpuDispatchTest, DetectIsaIsSupportedAndMaximal) {
  const Isa detected = cpu::DetectIsa();
  EXPECT_TRUE(cpu::IsaSupported(detected));
  for (int level = static_cast<int>(detected) + 1;
       level < cpu::kNumIsaLevels; ++level) {
    EXPECT_FALSE(cpu::IsaSupported(static_cast<Isa>(level)))
        << "DetectIsa skipped a supported tier";
  }
}

TEST(CpuDispatchTest, ResolveIsaClampsForcedToDetected) {
  for (int forced = 0; forced < cpu::kNumIsaLevels; ++forced) {
    for (int detected = 0; detected < cpu::kNumIsaLevels; ++detected) {
      const Isa resolved = cpu::ResolveIsa(static_cast<Isa>(forced),
                                           static_cast<Isa>(detected));
      // Never above the machine; never above the request.
      EXPECT_LE(static_cast<int>(resolved), detected);
      EXPECT_LE(static_cast<int>(resolved), forced);
      // Exactly the min: a weaker request is honored verbatim.
      EXPECT_EQ(static_cast<int>(resolved), std::min(forced, detected));
    }
  }
}

TEST(CpuDispatchTest, ResolveIsaWithoutOverrideIsDetected) {
  for (int detected = 0; detected < cpu::kNumIsaLevels; ++detected) {
    EXPECT_EQ(cpu::ResolveIsa(std::nullopt, static_cast<Isa>(detected)),
              static_cast<Isa>(detected));
  }
}

TEST(CpuDispatchTest, ActiveIsaHonorsEnvironment) {
  // ActiveIsa is latched on first use, so we can't flip the env here; we
  // can verify the latched value equals the resolution rule applied to
  // the env this process actually started with. Under the CI matrix
  // (RADIX_FORCE_ISA=scalar|avx2|avx512) this checks each override.
  const char* env = std::getenv("RADIX_FORCE_ISA");
  const auto forced =
      env != nullptr ? cpu::ParseIsa(env) : std::optional<Isa>{};
  EXPECT_EQ(cpu::ActiveIsa(), cpu::ResolveIsa(forced, cpu::DetectIsa()));
}

TEST(CpuDispatchTest, KernelTableMatchesRequestOrFallsBack) {
  for (int level = 0; level < cpu::kNumIsaLevels; ++level) {
    const Isa want = static_cast<Isa>(level);
    const simd::KernelTable& table = simd::KernelsFor(want);
    // Never a higher tier than requested, and never one the CPU can't run.
    EXPECT_LE(static_cast<int>(table.isa), static_cast<int>(want));
    EXPECT_TRUE(cpu::IsaSupported(table.isa));
    ASSERT_NE(table.radix_histogram, nullptr);
    ASSERT_NE(table.prefix_sum, nullptr);
    ASSERT_NE(table.gather_i32, nullptr);
    ASSERT_NE(table.gather_pairs_lo_i32, nullptr);
    ASSERT_NE(table.gather_pairs_hi_i32, nullptr);
  }
  EXPECT_EQ(simd::KernelsFor(Isa::kScalar).isa, Isa::kScalar);
  EXPECT_EQ(simd::Kernels().isa, simd::KernelsFor(cpu::ActiveIsa()).isa);
}

TEST(CpuDispatchTest, ScalarTableNeverStreams) {
  // The forced-scalar CI leg must exercise the plain store path.
  EXPECT_FALSE(simd::KernelsFor(Isa::kScalar).nt_scatter);
}

}  // namespace
}  // namespace radix
