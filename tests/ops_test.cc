// Operator-layer tests: the chunk-at-a-time plan executor checksum-verified
// against the scalar tuple-at-a-time reference interpreter across a sweep
// of plan shapes (select x join-chain x aggregate, value and varchar
// predicates) x seeds x thread counts x chunk sizes; the engine's
// plan-tree Prepare/Explain/Execute path end to end; the TwoSidedPlan
// compatibility bridge against the legacy two-sided executors; and the
// kInvalidArgument contract for malformed or unsupported trees.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/engine.h"
#include "hardware/memory_hierarchy.h"
#include "ops/executor.h"
#include "ops/optimizer.h"
#include "ops/plan.h"
#include "ops/reference.h"
#include "ops/table.h"
#include "project/executor.h"
#include "project/strategy.h"
#include "workload/chain.h"
#include "workload/generator.h"

namespace radix::ops {
namespace {

const hardware::MemoryHierarchy& P4() {
  static const hardware::MemoryHierarchy hw =
      hardware::MemoryHierarchy::Pentium4();
  return hw;
}

workload::ChainWorkloadSpec SmallChainSpec(uint64_t seed) {
  workload::ChainWorkloadSpec spec;
  spec.cardinalities = {6000, 4000, 5000};  // result = min = 4000 rows
  spec.num_attrs = 3;
  spec.seed = seed;
  spec.varchar.num_cols = 1;
  spec.varchar.min_len = 2;
  spec.varchar.max_len = 24;
  spec.varchar.empty_fraction = 0.05;
  return spec;
}

/// A left-deep 3-chain Scan(0) |X| Scan(1) |X| Scan(2), optionally with a
/// selective value filter on table 0's first payload.
std::unique_ptr<PlanNode> Chain3(bool with_select) {
  std::unique_ptr<PlanNode> left = Scan(0);
  if (with_select) {
    Predicate pred;
    pred.col = {0, 1, false};
    pred.op = CmpOp::kLt;
    pred.value = 0;  // PayloadValue is signed; < 0 keeps roughly half
    left = Select(std::move(left), pred);
  }
  auto j01 = Join(std::move(left), Scan(1), 0, 1);
  return Join(std::move(j01), Scan(2), 1, 2);
}

/// Every plan shape the sweep covers, by index.
LogicalPlan MakeSweepPlan(size_t shape) {
  switch (shape) {
    case 0: {  // plain 3-chain projection, payloads from every table
      LogicalPlan plan;
      plan.root = Project(Chain3(false),
                          {{0, 1, false}, {1, 1, false}, {2, 2, false}});
      return plan;
    }
    case 1: {  // selective filter + projection with a varchar output column
      LogicalPlan plan;
      plan.root = Project(Chain3(true),
                          {{0, 1, false}, {2, 1, false}, {1, 0, true}});
      return plan;
    }
    case 2: {  // varchar prefix predicate over a 2-join
      Predicate pred;
      pred.col = {1, 0, true};
      pred.op = CmpOp::kEq;
      pred.str_value = "a";
      pred.str_prefix = true;
      LogicalPlan plan;
      plan.root = Project(
          Join(Scan(0), Select(Scan(1), pred), 0, 1),
          {{0, 1, false}, {1, 1, false}});
      return plan;
    }
    case 3: {  // grouped aggregate over the filtered 3-chain
      LogicalPlan plan;
      plan.root = Aggregate(
          Chain3(true), {{2, 1, false}},
          {{AggFn::kSum, {0, 1, false}},
           {AggFn::kCount, {}},
           {AggFn::kMin, {1, 1, false}},
           {AggFn::kMax, {1, 2, false}}});
      return plan;
    }
    case 4: {  // ungrouped (global) aggregate over a join
      LogicalPlan plan;
      plan.root = Aggregate(
          Join(Scan(0), Scan(1), 0, 1), {},
          {{AggFn::kCount, {}}, {AggFn::kSum, {1, 1, false}}});
      return plan;
    }
    case 5: {  // varchar inequality select feeding a grouped count
      Predicate pred;
      pred.col = {0, 0, true};
      pred.op = CmpOp::kNe;
      pred.str_value = "";
      LogicalPlan plan;
      plan.root = Aggregate(
          Join(Select(Scan(0), pred), Scan(1), 0, 1), {{1, 1, false}},
          {{AggFn::kCount, {}}});
      return plan;
    }
    default:
      RADIX_CHECK(false);
      return {};
  }
}

constexpr size_t kNumSweepShapes = 6;

TEST(OpsProperty, ExecutorMatchesScalarReferenceAcrossShapesSeedsThreads) {
  // The tentpole invariant: for every plan shape, the chunked radix
  // executor's (rows, checksum) equals the scalar reference interpreter's,
  // at every thread count and chunk size — byte-identical kernels make the
  // sweep deterministic, so a single mismatch is a real bug, not noise.
  for (uint64_t seed : {1u, 7u}) {
    workload::ChainWorkload w =
        workload::MakeChainWorkload(SmallChainSpec(seed));
    Catalog catalog = CatalogFromChainWorkload(w);
    for (size_t shape = 0; shape < kNumSweepShapes; ++shape) {
      LogicalPlan plan = MakeSweepPlan(shape);
      PlanRun expect;
      ASSERT_TRUE(ReferenceExecute(catalog, plan, &expect).ok())
          << "shape " << shape;
      PhysicalPlan physical;
      ASSERT_TRUE(Optimize(catalog, plan, P4(),
                           costmodel::CpuCosts::Default(), 1, &physical)
                      .ok())
          << "shape " << shape;
      for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
        std::unique_ptr<ThreadPool> pool;
        if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
        for (size_t chunk_rows : {size_t{257}, size_t{0}}) {
          ExecOptions options;
          options.hw = &P4();
          options.pool = pool.get();
          options.chunk_rows = chunk_rows;
          PlanRun run;
          ASSERT_TRUE(
              ExecutePlan(catalog, plan, physical, options, &run).ok());
          EXPECT_EQ(run.result_rows, expect.result_rows)
              << "seed=" << seed << " shape=" << shape
              << " threads=" << threads << " chunk_rows=" << chunk_rows;
          EXPECT_EQ(run.checksum, expect.checksum)
              << "seed=" << seed << " shape=" << shape
              << " threads=" << threads << " chunk_rows=" << chunk_rows;
        }
      }
    }
  }
}

TEST(OpsProperty, SelectThatEliminatesEverythingStillAgrees) {
  workload::ChainWorkload w = workload::MakeChainWorkload(SmallChainSpec(3));
  Catalog catalog = CatalogFromChainWorkload(w);

  Predicate none;
  none.col = {0, 1, false};
  none.op = CmpOp::kEq;
  none.value = 0x7fffffff;  // PayloadValue never produces this
  LogicalPlan project;
  project.root =
      Project(Join(Select(Scan(0), none), Scan(1), 0, 1), {{1, 1, false}});
  LogicalPlan aggregate;
  aggregate.root = Aggregate(
      Join(Select(Scan(0), none), Scan(1), 0, 1), {},
      {{AggFn::kCount, {}}, {AggFn::kMin, {1, 1, false}}});

  for (const LogicalPlan* plan : {&project, &aggregate}) {
    PlanRun expect;
    ASSERT_TRUE(ReferenceExecute(catalog, *plan, &expect).ok());
    PhysicalPlan physical;
    ASSERT_TRUE(Optimize(catalog, *plan, P4(),
                         costmodel::CpuCosts::Default(), 1, &physical)
                    .ok());
    ExecOptions options;
    options.hw = &P4();
    PlanRun run;
    ASSERT_TRUE(ExecutePlan(catalog, *plan, physical, options, &run).ok());
    EXPECT_EQ(run.result_rows, expect.result_rows);
    EXPECT_EQ(run.checksum, expect.checksum);
  }
  // The empty ungrouped aggregate is still one row (count = 0).
  PlanRun agg;
  ASSERT_TRUE(ReferenceExecute(catalog, aggregate, &agg).ok());
  EXPECT_EQ(agg.result_rows, 1u);
}

TEST(OpsEngine, ThreeTableChainEndToEndThroughPrepareExplainExecute) {
  // The acceptance query: a 3-table join chain with a selective filter and
  // a grouped aggregate, planned and run entirely through the engine, with
  // Explain() reporting the per-join-edge Fig. 10 strategy the cost model
  // chose — and the result checksum-identical to the scalar reference at
  // every engine thread count.
  workload::ChainWorkload w = workload::MakeChainWorkload(SmallChainSpec(5));
  Catalog catalog = CatalogFromChainWorkload(w);
  LogicalPlan plan = MakeSweepPlan(3);

  PlanRun expect;
  ASSERT_TRUE(ReferenceExecute(catalog, plan, &expect).ok());

  for (size_t threads : {size_t{1}, size_t{4}}) {
    engine::EngineConfig cfg;
    cfg.hierarchy = P4();
    cfg.num_threads = threads;
    engine::Engine eng(cfg);

    engine::PreparedPlan prepared;
    ASSERT_TRUE(eng.Prepare(catalog, plan, &prepared).ok());

    const engine::Explanation& ex = prepared.Explain();
    EXPECT_TRUE(ex.plan_tree);
    ASSERT_EQ(ex.edge_codes.size(), 2u);  // two join edges in the chain
    for (const std::string& code : ex.edge_codes) {
      ASSERT_EQ(code.size(), 3u) << code;
      EXPECT_TRUE(code[0] == 'u' || code[0] == 's' || code[0] == 'c' ||
                  code[0] == 'd')
          << code;
      // §4.1: a composed right side never reorders — only u or d.
      EXPECT_TRUE(code[2] == 'u' || code[2] == 'd') << code;
    }
    EXPECT_NE(ex.plan_summary.find("t0*t1"), std::string::npos)
        << ex.plan_summary;
    EXPECT_NE(ex.plan_summary.find("t1*t2"), std::string::npos)
        << ex.plan_summary;
    EXPECT_FALSE(ex.mode_reason.empty());
    EXPECT_NE(ex.ToString().find(ex.plan_summary), std::string::npos);
    EXPECT_GT(ex.modeled_seconds, 0.0);
    EXPECT_GT(ex.modeled_intermediate_bytes, 0u);
    EXPECT_EQ(ex.threads, threads);

    PlanRun run;
    ASSERT_TRUE(prepared.Execute(&run).ok());
    EXPECT_EQ(run.result_rows, expect.result_rows) << "threads=" << threads;
    EXPECT_EQ(run.checksum, expect.checksum) << "threads=" << threads;

    // Prepare again: the plan cache serves the same physical plan.
    engine::PreparedPlan again;
    ASSERT_TRUE(eng.Prepare(catalog, plan, &again).ok());
    EXPECT_GE(eng.Stats().plan_cache_hits, 1u);
    EXPECT_EQ(again.Explain().ToString(), ex.ToString());
    PlanRun rerun;
    ASSERT_TRUE(again.Execute(&rerun).ok());
    EXPECT_EQ(rerun.checksum, expect.checksum);
  }
}

TEST(OpsEngine, TwoSidedPlanMatchesLegacyQuerySpecBitForBit) {
  // The compatibility contract: the legacy two-sided QuerySpec query and
  // its TwoSidedPlan plan-tree formulation produce byte-identical results
  // (equal order-independent checksums over identical rows) and the same
  // per-side strategy choice.
  workload::JoinWorkloadSpec ws;
  ws.cardinality = 1 << 12;
  ws.num_attrs = 4;
  ws.seed = 9;
  ws.varchar.num_cols = 1;
  ws.build_nsm = false;
  workload::JoinWorkload w = workload::MakeJoinWorkload(ws);
  Catalog catalog = CatalogFromJoinWorkload(w);

  engine::EngineConfig cfg;
  cfg.hierarchy = P4();
  engine::Engine eng(cfg);

  struct Case {
    size_t pi_l, pi_r, pi_vl, pi_vr;
  };
  for (const Case& c : {Case{1, 1, 0, 0}, Case{2, 2, 0, 1}, Case{1, 2, 1, 1}}) {
    engine::QuerySpec spec;
    spec.pi_left = c.pi_l;
    spec.pi_right = c.pi_r;
    spec.pi_varchar_left = c.pi_vl;
    spec.pi_varchar_right = c.pi_vr;
    engine::PreparedQuery legacy = eng.Prepare(w, spec);
    project::QueryRun legacy_run = legacy.Execute();

    LogicalPlan plan = TwoSidedPlan(c.pi_l, c.pi_r, c.pi_vl, c.pi_vr);
    engine::PreparedPlan prepared;
    ASSERT_TRUE(eng.Prepare(catalog, plan, &prepared).ok());
    ASSERT_EQ(prepared.Explain().edge_codes.size(), 1u);
    // Same Fig. 10 strategy choice as the legacy planner for this edge.
    EXPECT_EQ(prepared.Explain().edge_codes[0],
              legacy.Explain().plan_code)
        << "pi=" << c.pi_l << "/" << c.pi_r;
    PlanRun run;
    ASSERT_TRUE(prepared.Execute(&run).ok());
    EXPECT_EQ(run.result_rows, legacy_run.result_cardinality);
    EXPECT_EQ(run.checksum, legacy_run.checksum)
        << "pi=" << c.pi_l << "/" << c.pi_r << " vl=" << c.pi_vl
        << " vr=" << c.pi_vr;
  }
}

/// The malformed trees every validating entry point must reject. Shared
/// between the engine-Prepare test and the ReferenceExecute parity test:
/// the reference is the differential-fuzz oracle, so it must return
/// kInvalidArgument for exactly the trees the optimized path rejects —
/// otherwise an error-path divergence reads as a found bug.
std::vector<std::pair<LogicalPlan, const char*>> MalformedTrees() {
  std::vector<std::pair<LogicalPlan, const char*>> out;
  {  // ordered comparison on a varchar predicate
    Predicate pred;
    pred.col = {0, 0, true};
    pred.op = CmpOp::kLt;
    pred.str_value = "m";
    LogicalPlan plan;
    plan.root =
        Project(Select(Scan(0), pred), {{0, 1, false}});
    out.emplace_back(std::move(plan), "varchar kLt predicate");
  }
  {  // self-join: the same table scanned on both sides
    LogicalPlan plan;
    plan.root = Project(Join(Scan(0), Scan(0), 0, 0), {{0, 1, false}});
    out.emplace_back(std::move(plan), "self-join");
  }
  {  // varchar group-by column
    LogicalPlan plan;
    plan.root =
        Aggregate(Scan(0), {{0, 0, true}}, {{AggFn::kCount, {}}});
    out.emplace_back(std::move(plan), "varchar group-by");
  }
  {  // varchar aggregate input
    LogicalPlan plan;
    plan.root = Aggregate(Scan(0), {}, {{AggFn::kSum, {0, 0, true}}});
    out.emplace_back(std::move(plan), "varchar aggregate input");
  }
  {  // project below the root
    LogicalPlan plan;
    plan.root = Project(Project(Scan(0), {{0, 1, false}}), {{0, 1, false}});
    out.emplace_back(std::move(plan), "project below root");
  }
  {  // root that is neither project nor aggregate
    LogicalPlan plan;
    plan.root = Scan(0);
    out.emplace_back(std::move(plan), "bare scan root");
  }
  {  // column reference past the table's attribute count
    LogicalPlan plan;
    plan.root = Project(Scan(0), {{0, 99, false}});
    out.emplace_back(std::move(plan), "attr out of range");
  }
  {  // scan of a table the catalog does not have, referenced by a column
    LogicalPlan plan;
    plan.root = Project(Scan(99), {{99, 0, false}});
    out.emplace_back(std::move(plan), "scan out of range");
  }
  return out;
}

TEST(OpsValidate, MalformedTreesAreInvalidArgumentNotCrashes) {
  workload::ChainWorkload w = workload::MakeChainWorkload(SmallChainSpec(2));
  Catalog catalog = CatalogFromChainWorkload(w);
  engine::EngineConfig cfg;
  cfg.hierarchy = P4();
  engine::Engine eng(cfg);

  for (auto& [plan, what] : MalformedTrees()) {
    engine::PreparedPlan prepared;
    Status status = eng.Prepare(catalog, plan, &prepared);
    EXPECT_EQ(status.code(), Status::Code::kInvalidArgument) << what;
    EXPECT_FALSE(status.message().empty()) << what;
  }

  {  // varchar reference on a table with no varchar columns
    workload::ChainWorkloadSpec no_var = SmallChainSpec(2);
    no_var.varchar.num_cols = 0;
    workload::ChainWorkload w2 = workload::MakeChainWorkload(no_var);
    Catalog cat2 = CatalogFromChainWorkload(w2);
    LogicalPlan plan;
    plan.root = Project(Scan(0), {{0, 0, true}});
    engine::PreparedPlan prepared;
    Status status = eng.Prepare(cat2, plan, &prepared);
    EXPECT_EQ(status.code(), Status::Code::kInvalidArgument);
  }
}

TEST(OpsValidate, ReferenceExecuteRejectsTheSameMalformedTrees) {
  workload::ChainWorkload w = workload::MakeChainWorkload(SmallChainSpec(2));
  Catalog catalog = CatalogFromChainWorkload(w);

  for (auto& [plan, what] : MalformedTrees()) {
    PlanRun run;
    Status status = ReferenceExecute(catalog, plan, &run);
    EXPECT_EQ(status.code(), Status::Code::kInvalidArgument) << what;
    EXPECT_FALSE(status.message().empty()) << what;
  }
}

TEST(OpsValidate, ChainWorkloadTablesZeroOneMatchTwoSidedWorkload) {
  // ChainPayloadAttr's contract: chain tables 0 and 1 reproduce the
  // two-sided workload's left/right payload streams, which is what makes
  // TwoSidedPlan checksums comparable across the two generators.
  EXPECT_EQ(workload::ChainPayloadAttr(0, 1), 1u);
  EXPECT_EQ(workload::ChainPayloadAttr(1, 1), 1001u);
  workload::ChainWorkloadSpec spec;
  spec.cardinalities = {512, 512};
  spec.num_attrs = 3;
  spec.seed = 11;
  workload::ChainWorkload w = workload::MakeChainWorkload(spec);
  for (size_t t = 0; t < 2; ++t) {
    const auto& key = w.tables[t].key();
    const auto& a1 = w.tables[t].attr(1);
    for (size_t i = 0; i < 512; i += 97) {
      EXPECT_EQ(a1[i], workload::PayloadValue(
                           key[i], workload::ChainPayloadAttr(t, 1)));
    }
  }
}

}  // namespace
}  // namespace radix::ops
