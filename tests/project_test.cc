// Tests for the projection strategies: every strategy must compute the
// same relation (order-independent), the DSM-post side codes must behave
// per the paper, and the planner must encode the easy/hard rules.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "hardware/memory_hierarchy.h"
#include "join/partitioned_hash_join.h"
#include "project/dsm_post.h"
#include "project/dsm_pre.h"
#include "project/executor.h"
#include "project/nsm_post.h"
#include "project/nsm_pre.h"
#include "project/planner.h"
#include "workload/generator.h"

namespace radix::project {
namespace {

hardware::MemoryHierarchy P4() {
  return hardware::MemoryHierarchy::Pentium4();
}

workload::JoinWorkload SmallWorkload(size_t n = 1 << 13, size_t omega = 4,
                                     double h = 1.0, uint64_t seed = 5) {
  workload::JoinWorkloadSpec spec;
  spec.cardinality = n;
  spec.num_attrs = omega;
  spec.hit_rate = h;
  spec.seed = seed;
  return workload::MakeJoinWorkload(spec);
}

/// Verify a DSM result against the payload function: every row's projected
/// values must be consistent with *some* matching tuple pair; with h==1
/// payloads are unique per key so we can check exact multisets.
void ExpectResultMatchesJoin(const storage::DsmResult& result,
                             const workload::JoinWorkload& w, size_t pi_left,
                             size_t pi_right) {
  ASSERT_EQ(result.left_columns.size(), pi_left);
  ASSERT_EQ(result.right_columns.size(), pi_right);
  // Build multiset of left attr-1 values expected in the result (h=1:
  // every left tuple appears exactly once).
  if (pi_left > 0) {
    std::multiset<value_t> expected, got;
    for (size_t i = 0; i < w.dsm_left.cardinality(); ++i) {
      expected.insert(w.dsm_left.attr(1)[i]);
    }
    for (size_t i = 0; i < result.cardinality; ++i) {
      got.insert(result.left_columns[0][i]);
    }
    EXPECT_EQ(expected, got);
  }
  // Row consistency: left and right columns must stem from tuples with the
  // same key. PayloadValue(key, a) is invertible enough: regenerate from
  // the key embedded via attr 1.
}

struct SideCombo {
  SideStrategy left;
  SideStrategy right;
};

class DsmPostStrategySweep : public ::testing::TestWithParam<SideCombo> {};

TEST_P(DsmPostStrategySweep, AllSideCombosComputeSameRelation) {
  auto hw = P4();
  auto w = SmallWorkload(1 << 13, 4, 1.0);
  QueryOptions qopts;
  qopts.pi_left = 2;
  qopts.pi_right = 2;
  qopts.plan_sides = false;
  qopts.left = GetParam().left;
  qopts.right = GetParam().right;
  QueryRun run = RunQuery(w, JoinStrategy::kDsmPostDecluster, qopts, hw);

  QueryOptions ref_opts = qopts;
  ref_opts.left = SideStrategy::kUnsorted;
  ref_opts.right = SideStrategy::kUnsorted;
  QueryRun ref = RunQuery(w, JoinStrategy::kDsmPostDecluster, ref_opts, hw);

  EXPECT_EQ(run.result_cardinality, w.expected_result_size);
  EXPECT_EQ(run.checksum, ref.checksum)
      << "strategy " << run.detail << " computed a different relation";
}

INSTANTIATE_TEST_SUITE_P(
    PaperCodes, DsmPostStrategySweep,
    ::testing::Values(SideCombo{SideStrategy::kUnsorted, SideStrategy::kUnsorted},
                      SideCombo{SideStrategy::kClustered, SideStrategy::kUnsorted},
                      SideCombo{SideStrategy::kClustered, SideStrategy::kDecluster},
                      SideCombo{SideStrategy::kSorted, SideStrategy::kDecluster},
                      SideCombo{SideStrategy::kSorted, SideStrategy::kUnsorted},
                      SideCombo{SideStrategy::kUnsorted, SideStrategy::kDecluster}));

TEST(ExecutorThreadsTest, NumThreadsProducesIdenticalQueryResults) {
  // The num_threads knob must not change what is computed: the parallel
  // cluster/decluster kernels are byte-identical to serial, so cardinality,
  // checksum and the planned strategy code all match the serial run.
  auto hw = P4();
  auto w = SmallWorkload(1 << 14, 4, 1.0);
  for (bool plan : {true, false}) {
    QueryOptions serial;
    serial.pi_left = 2;
    serial.pi_right = 2;
    serial.plan_sides = plan;
    QueryRun ref = RunQuery(w, JoinStrategy::kDsmPostDecluster, serial, hw);
    for (size_t threads : {2u, 4u, 8u}) {
      QueryOptions par = serial;
      par.num_threads = threads;
      QueryRun run = RunQuery(w, JoinStrategy::kDsmPostDecluster, par, hw);
      EXPECT_EQ(run.result_cardinality, ref.result_cardinality);
      EXPECT_EQ(run.checksum, ref.checksum)
          << "plan_sides=" << plan << " threads=" << threads;
      EXPECT_EQ(run.detail, ref.detail);
    }
  }
}

TEST(DsmPostTest, ProjectionValuesAreCorrectRowByRow) {
  auto hw = P4();
  auto w = SmallWorkload(1 << 12, 4, 1.0);
  join::JoinIndex index = join::PartitionedHashJoin(
      w.dsm_left.key().span(), w.dsm_right.key().span(), hw);
  DsmPostOptions opts;
  opts.left = SideStrategy::kClustered;
  opts.right = SideStrategy::kDecluster;
  storage::DsmResult result =
      DsmPostProject(index, w.dsm_left, w.dsm_right, 2, 2, hw, opts);
  // After projection, `index` reflects the final result order; check rows.
  for (size_t i = 0; i < result.cardinality; ++i) {
    oid_t l = index[i].left;
    oid_t r = index[i].right;
    ASSERT_EQ(result.left_columns[0][i], w.dsm_left.attr(1)[l]);
    ASSERT_EQ(result.left_columns[1][i], w.dsm_left.attr(2)[l]);
    ASSERT_EQ(result.right_columns[0][i], w.dsm_right.attr(1)[r]);
    ASSERT_EQ(result.right_columns[1][i], w.dsm_right.attr(2)[r]);
  }
  ExpectResultMatchesJoin(result, w, 2, 2);
}

TEST(DsmPostTest, ZeroProjectionColumns) {
  auto hw = P4();
  auto w = SmallWorkload(1 << 10);
  join::JoinIndex index = join::PartitionedHashJoin(
      w.dsm_left.key().span(), w.dsm_right.key().span(), hw);
  DsmPostOptions opts;
  storage::DsmResult result =
      DsmPostProject(index, w.dsm_left, w.dsm_right, 0, 0, hw, opts);
  EXPECT_EQ(result.cardinality, w.expected_result_size);
  EXPECT_TRUE(result.left_columns.empty());
}

TEST(ProjectSideTest, DeclusterPreservesResultOrderSemantics) {
  // ProjectSide with kDecluster must produce out[i] == column[ids[i]] for
  // the ORIGINAL ids order, even though it re-clusters internally.
  auto hw = P4();
  size_t n = 1 << 14;
  Rng rng(9);
  std::vector<oid_t> ids(n);
  for (auto& id : ids) id = static_cast<oid_t>(rng.Below(n));
  std::vector<oid_t> original = ids;
  auto column = workload::MakeBaseColumn(n, 1);
  std::vector<value_t> out(n);
  PhaseBreakdown phases;
  ProjectSide(ids, SideStrategy::kDecluster,
              {column.span()}, {std::span<value_t>(out)}, n, hw,
              DsmPostOptions::kAuto, 0, &phases);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], column[original[i]]) << "row " << i;
  }
  EXPECT_GT(phases.decluster_seconds, 0.0);
}

TEST(ExecutorTest, AllSixStrategiesAgreeOnChecksum) {
  auto hw = P4();
  auto w = SmallWorkload(1 << 12, 4, 1.0);
  QueryOptions qopts;
  qopts.pi_left = 2;
  qopts.pi_right = 2;
  std::map<JoinStrategy, QueryRun> runs;
  for (JoinStrategy s :
       {JoinStrategy::kDsmPostDecluster, JoinStrategy::kDsmPrePhash,
        JoinStrategy::kNsmPreHash, JoinStrategy::kNsmPrePhash,
        JoinStrategy::kNsmPostDecluster, JoinStrategy::kNsmPostJive}) {
    runs[s] = RunQuery(w, s, qopts, hw);
  }
  const QueryRun& ref = runs[JoinStrategy::kNsmPreHash];
  EXPECT_EQ(ref.result_cardinality, w.expected_result_size);
  for (const auto& [s, run] : runs) {
    EXPECT_EQ(run.result_cardinality, ref.result_cardinality)
        << JoinStrategyName(s);
    EXPECT_EQ(run.checksum, ref.checksum) << JoinStrategyName(s);
  }
}

TEST(ExecutorTest, StrategiesAgreeUnderHitRateVariations) {
  auto hw = P4();
  for (double h : {0.3, 3.0}) {
    auto w = SmallWorkload(1 << 12, 4, h, /*seed=*/17);
    QueryOptions qopts;
    qopts.pi_left = 1;
    qopts.pi_right = 1;
    QueryRun a = RunQuery(w, JoinStrategy::kDsmPostDecluster, qopts, hw);
    QueryRun b = RunQuery(w, JoinStrategy::kNsmPrePhash, qopts, hw);
    EXPECT_EQ(a.checksum, b.checksum) << "h=" << h;
    EXPECT_EQ(a.result_cardinality, b.result_cardinality);
  }
}

TEST(ExecutorTest, AsymmetricProjectivity) {
  auto hw = P4();
  auto w = SmallWorkload(1 << 11, 8, 1.0);
  QueryOptions qopts;
  qopts.pi_left = 5;
  qopts.pi_right = 1;
  QueryRun a = RunQuery(w, JoinStrategy::kDsmPostDecluster, qopts, hw);
  QueryRun b = RunQuery(w, JoinStrategy::kNsmPreHash, qopts, hw);
  EXPECT_EQ(a.checksum, b.checksum);
}

TEST(PlannerTest, EasyJoinUsesUnsorted) {
  auto hw = P4();
  // 64K tuples of 4B = 256KB < 512KB cache: easy.
  Plan plan = PlanDsmPost(1 << 16, 1 << 16, 1 << 16, 4, 4, hw);
  EXPECT_TRUE(plan.easy);
  EXPECT_EQ(plan.code, "u/u");
}

TEST(PlannerTest, HardJoinLowPiUsesClusterDecluster) {
  auto hw = P4();
  Plan plan = PlanDsmPost(8 << 20, 8 << 20, 8 << 20, 4, 4, hw);
  EXPECT_FALSE(plan.easy);
  EXPECT_EQ(plan.code, "c/d");
}

TEST(PlannerTest, HighPiSwitchesToSort) {
  auto hw = P4();
  Plan plan = PlanDsmPost(8 << 20, 8 << 20, 8 << 20, 64, 64, hw);
  EXPECT_EQ(plan.code, "s/d");
}

TEST(PlannerTest, MixedCardinalities) {
  auto hw = P4();
  // Left huge, right tiny: reorder left, unsorted right.
  Plan plan = PlanDsmPost(8 << 20, 1 << 14, 1 << 14, 4, 4, hw);
  EXPECT_EQ(plan.code, "c/u");
}

TEST(StrategyNamesTest, CodesAndNames) {
  EXPECT_STREQ(SideStrategyCode(SideStrategy::kUnsorted), "u");
  EXPECT_STREQ(SideStrategyCode(SideStrategy::kSorted), "s");
  EXPECT_STREQ(SideStrategyCode(SideStrategy::kClustered), "c");
  EXPECT_STREQ(SideStrategyCode(SideStrategy::kDecluster), "d");
  EXPECT_STREQ(JoinStrategyName(JoinStrategy::kDsmPostDecluster),
               "DSM-post-decluster");
}

}  // namespace
}  // namespace radix::project
