// Tests for the common substrate: bits, hash, rng, status, buffers, timer.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/bits.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/timer.h"

namespace radix {
namespace {

TEST(BitsTest, Log2Floor) {
  EXPECT_EQ(Log2Floor(1), 0u);
  EXPECT_EQ(Log2Floor(2), 1u);
  EXPECT_EQ(Log2Floor(3), 1u);
  EXPECT_EQ(Log2Floor(4), 2u);
  EXPECT_EQ(Log2Floor(1023), 9u);
  EXPECT_EQ(Log2Floor(1024), 10u);
  EXPECT_EQ(Log2Floor(uint64_t{1} << 63), 63u);
}

TEST(BitsTest, Log2Ceil) {
  EXPECT_EQ(Log2Ceil(1), 0u);
  EXPECT_EQ(Log2Ceil(2), 1u);
  EXPECT_EQ(Log2Ceil(3), 2u);
  EXPECT_EQ(Log2Ceil(4), 2u);
  EXPECT_EQ(Log2Ceil(5), 3u);
  EXPECT_EQ(Log2Ceil(1u << 20), 20u);
  EXPECT_EQ(Log2Ceil((1u << 20) + 1), 21u);
}

TEST(BitsTest, PowersOfTwo) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(48));
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(4), 4u);
  EXPECT_EQ(NextPowerOfTwo(1000), 1024u);
}

TEST(BitsTest, RadixBitsExtractsRequestedSlice) {
  // 0b1011'0110, bits [2,5) = 0b101 = 5.
  EXPECT_EQ(RadixBits(0b10110110, 2, 3), 0b101u);
  EXPECT_EQ(RadixBits(0b10110110, 0, 4), 0b0110u);
  EXPECT_EQ(RadixBits(0xffffffffULL, 0, 8), 0xffu);
  EXPECT_EQ(RadixBits(0x12345678ULL, 32, 8), 0u);
}

TEST(BitsTest, SignificantBitsCoversDenseDomain) {
  // log2-ceil semantics: n distinct oids [0, n) need ceil(log2(n)) bits.
  EXPECT_EQ(SignificantBits(1), 0u);
  EXPECT_EQ(SignificantBits(2), 1u);
  EXPECT_EQ(SignificantBits(10'000'000), 24u);  // paper §3.1 example
}

TEST(HashTest, FinalizerIsDeterministicAndMixes) {
  EXPECT_EQ(HashInt64(42), HashInt64(42));
  EXPECT_NE(HashInt64(42), HashInt64(43));
  // Low bits must differ for adjacent keys (the whole point for radix use).
  std::set<uint64_t> low_bits;
  for (uint32_t k = 0; k < 64; ++k) low_bits.insert(HashInt32(k) & 0xff);
  EXPECT_GT(low_bits.size(), 48u);
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, BelowIsInRange) {
  Rng rng(123);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
  EXPECT_EQ(rng.Below(1), 0u);
  EXPECT_EQ(rng.Below(0), 0u);
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(99);
  std::vector<int> counts(8, 0);
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.Below(8)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / 8 * 0.9);
    EXPECT_LT(c, kDraws / 8 * 1.1);
  }
}

TEST(StatusTest, OkAndErrors) {
  Status ok = Status::OK();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");
  Status err = Status::InvalidArgument("bad bits");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(err.ToString(), "InvalidArgument: bad bits");
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> v(42);
  EXPECT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  Result<int> e(Status::NotFound("nope"));
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), Status::Code::kNotFound);
}

TEST(AlignedBufferTest, AlignmentAndSize) {
  AlignedBuffer buf(100);
  EXPECT_EQ(buf.size(), 100u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % 64, 0u);
  buf.Resize(4096, 4096);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % 4096, 0u);
}

TEST(AlignedBufferTest, MoveTransfersOwnership) {
  AlignedBuffer a(64);
  uint8_t* p = a.data();
  AlignedBuffer b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_EQ(a.size(), 0u);
}

TEST(AlignedBufferTest, ParseHugePagePolicy) {
  EXPECT_EQ(ParseHugePagePolicy(nullptr), HugePagePolicy::kAuto);
  EXPECT_EQ(ParseHugePagePolicy("auto"), HugePagePolicy::kAuto);
  EXPECT_EQ(ParseHugePagePolicy("off"), HugePagePolicy::kOff);
  EXPECT_EQ(ParseHugePagePolicy("0"), HugePagePolicy::kOff);
  EXPECT_EQ(ParseHugePagePolicy("hugetlb"), HugePagePolicy::kHugetlb);
  // Unrecognized values keep the safe default rather than erroring.
  EXPECT_EQ(ParseHugePagePolicy("banana"), HugePagePolicy::kAuto);
}

TEST(AlignedBufferTest, HugeBackingFollowsPolicyAndThreshold) {
  // Small buffers never take the mmap path.
  AlignedBuffer small(4096);
  EXPECT_FALSE(small.huge_backed());
  // Large buffers take it exactly when the latched policy allows; either
  // way the buffer must be writable, aligned, and survive a resize cycle.
  AlignedBuffer big(kHugePageBytes + 100);
  EXPECT_EQ(big.size(), kHugePageBytes + 100);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(big.data()) % 64, 0u);
  if (big.huge_backed()) {
    EXPECT_NE(ActiveHugePagePolicy(), HugePagePolicy::kOff);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(big.data()) % kHugePageBytes, 0u);
  }
  big.data()[0] = 1;
  big.data()[big.size() - 1] = 2;
  big.Resize(64);
  EXPECT_FALSE(big.huge_backed());
  big.data()[0] = 3;
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  volatile uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedNanos(), 0u);
}

TEST(PhaseTimerTest, Accumulates) {
  PhaseTimer pt;
  pt.Start();
  pt.Stop();
  pt.Start();
  pt.Stop();
  EXPECT_GE(pt.TotalSeconds(), 0.0);
  pt.Clear();
  EXPECT_EQ(pt.TotalSeconds(), 0.0);
}

}  // namespace
}  // namespace radix
