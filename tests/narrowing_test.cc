// Offset-arithmetic and 32/16-bit-capacity contracts, probed at their
// boundaries without giant allocations: the Page's uint16 addressing, the
// ClusterSpec 64-bit-shift rejection, the oid-capacity guard helper, and
// the plan validator's ordering (children before column refs, so an
// out-of-range scan can never drive an out-of-range catalog lookup).
// Each boundary here is also a fuzz regression seed (fuzz/corpus/).

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "bufferpool/buffer_manager.h"
#include "bufferpool/page.h"
#include "cluster/radix_cluster.h"
#include "common/overflow.h"
#include "common/status.h"
#include "ops/plan.h"
#include "ops/table.h"
#include "storage/dsm.h"

namespace radix {
namespace {

using bufferpool::Page;

TEST(PageNarrowing, RejectsPageBytesThatOverflowUint16Offsets) {
  // free_offset must be able to hold page_bytes itself after a positional
  // fill; 65536 would wrap it to 0.
  EXPECT_DEATH(Page page(65536), "");
  EXPECT_DEATH(Page page(1 << 20), "");
}

TEST(PageNarrowing, RejectsOddPageBytes) {
  // The slot directory grows down from bytes_[page_bytes]: an odd size
  // would misalign every uint16 Slot store (UBSan-caught).
  EXPECT_DEATH(Page page(65535), "");
  EXPECT_DEATH(Page page(4097), "");
}

TEST(PageNarrowing, MaxPageFillsToTheTopWithoutWrapping) {
  constexpr size_t kPageBytes = 65534;  // largest valid (even, < 2^16)
  Page page(kPageBytes);
  // One record filling the whole payload except its slot: offsets and the
  // fill level stay exact at the top of the uint16 range.
  const size_t payload =
      kPageBytes - sizeof(Page::Header) - Page::kSlotBytes;
  std::vector<uint8_t> data(payload, 0xAB);
  int slot = page.Append(data.data(), data.size());
  ASSERT_EQ(slot, 0);
  EXPECT_EQ(page.num_records(), 1u);
  EXPECT_EQ(page.Record(0).size(), payload);
  EXPECT_EQ(page.Record(0)[payload - 1], 0xAB);
  EXPECT_EQ(page.free_bytes(), 0u);
  // No second record fits, and the refusal is a clean -1, not a wrap.
  uint8_t byte = 0;
  EXPECT_EQ(page.Append(&byte, 1), -1);
}

TEST(PageNarrowing, PositionalWriteAtTopOfPageKeepsFillLevel) {
  constexpr size_t kPageBytes = 65534;
  Page page(kPageBytes);
  const size_t payload_cap = Page::PayloadCapacity(kPageBytes);
  std::vector<uint8_t> data(16, 0x5A);
  // Write the last 16 payload bytes positionally (paged decluster writes
  // at precomputed offsets): free_offset lands on 65534, the maximum
  // representable fill, without wrapping.
  page.WriteAt(payload_cap - data.size(), data.data(), data.size());
  page.SetSlot(0, static_cast<uint16_t>(kPageBytes - data.size()),
               static_cast<uint16_t>(data.size()));
  EXPECT_EQ(page.Record(0).size(), data.size());
  EXPECT_EQ(page.Record(0)[0], 0x5A);
  EXPECT_EQ(page.free_bytes(), 0u);
}

TEST(BufferManagerNarrowing, SequentialIdsStayDense) {
  bufferpool::BufferManager bm(4096);
  EXPECT_EQ(bm.Allocate(3), 0u);
  EXPECT_EQ(bm.Allocate(2), 3u);
  EXPECT_EQ(bm.num_pages(), 5u);
}

TEST(ClusterSpecNarrowing, RejectsFullWidthTotalBits) {
  // total_bits = 64 would shift a 64-bit value by 64 in both
  // num_clusters() and the per-pass RadixBits mask — undefined, and
  // previously accepted by the validator (fuzz regression
  // full_width_single_pass).
  cluster::ClusterSpec spec;
  spec.total_bits = 64;
  spec.ignore_bits = 0;
  spec.passes = 1;
  Status st = cluster::ValidateClusterSpec(spec);
  EXPECT_EQ(st.code(), Status::Code::kInvalidArgument);
  // More passes do not rescue it: num_clusters() still overflows.
  spec.passes = 2;
  EXPECT_EQ(cluster::ValidateClusterSpec(spec).code(),
            Status::Code::kInvalidArgument);
}

TEST(ClusterSpecNarrowing, AcceptsWidestValidSpecs) {
  cluster::ClusterSpec spec;
  spec.total_bits = 32;
  spec.ignore_bits = 32;
  spec.passes = 4;
  EXPECT_TRUE(cluster::ValidateClusterSpec(spec).ok());
  spec.total_bits = 63;
  spec.ignore_bits = 1;
  spec.passes = 8;
  EXPECT_TRUE(cluster::ValidateClusterSpec(spec).ok());
  spec.ignore_bits = 2;  // bits [2, 65) exceed the value width
  EXPECT_EQ(cluster::ValidateClusterSpec(spec).code(),
            Status::Code::kInvalidArgument);
}

TEST(OidCapacity, GuardsThe32BitBoundary) {
  CheckOidCapacity(0);
  CheckOidCapacity(size_t{std::numeric_limits<oid_t>::max()});
  EXPECT_DEATH(CheckOidCapacity(size_t{1} << 32), "");
}

/// Catalog of one tiny real table, so out-of-range ids are easy to name.
class PlanValidationOrder : public ::testing::Test {
 protected:
  PlanValidationOrder() : relation_("t0", 4, 2) {
    table_.name = "t0";
    table_.relation = &relation_;
    catalog_.tables.push_back(table_);
  }

  storage::DsmRelation relation_;
  ops::Table table_;
  ops::Catalog catalog_;
};

TEST_F(PlanValidationOrder, OutOfRangeScanUnderProjectIsRejectedCleanly) {
  // The column ref names the same (out-of-range) table the scan claims to
  // provide, so the subtree-visibility check passes; only validating the
  // child Scan first keeps CheckColumnRef from indexing catalog.table(99)
  // out of bounds (fuzz regression oob_scan_under_project).
  ops::LogicalPlan plan;
  plan.root = ops::Project(ops::Scan(99), {{99, 0, false}});
  Status st = ops::ValidatePlan(catalog_, plan);
  EXPECT_EQ(st.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(st.message().find("out of range"), std::string::npos);
}

TEST_F(PlanValidationOrder, OutOfRangeScanUnderAggregateIsRejectedCleanly) {
  ops::AggExpr agg;
  agg.fn = ops::AggFn::kSum;
  agg.col = {7, 1, false};
  ops::LogicalPlan plan;
  plan.root = ops::Aggregate(ops::Scan(7), {{7, 1, false}}, {agg});
  Status st = ops::ValidatePlan(catalog_, plan);
  EXPECT_EQ(st.code(), Status::Code::kInvalidArgument);
}

TEST_F(PlanValidationOrder, ValidPlansStillPass) {
  ops::LogicalPlan plan;
  plan.root = ops::Project(ops::Scan(0), {{0, 1, false}});
  EXPECT_TRUE(ops::ValidatePlan(catalog_, plan).ok());
}

}  // namespace
}  // namespace radix
