// Tests for workload generation: hit rates, selectivity, payload
// determinism, and distributions.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/rng.h"
#include "workload/distributions.h"
#include "workload/generator.h"

namespace radix::workload {
namespace {

size_t CountMatches(const storage::DsmRelation& left,
                    const storage::DsmRelation& right) {
  std::map<value_t, size_t> right_counts;
  for (size_t i = 0; i < right.cardinality(); ++i) {
    ++right_counts[right.key()[i]];
  }
  size_t matches = 0;
  for (size_t i = 0; i < left.cardinality(); ++i) {
    auto it = right_counts.find(left.key()[i]);
    if (it != right_counts.end()) matches += it->second;
  }
  return matches;
}

class HitRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(HitRateSweep, ResultCardinalityTracksHitRate) {
  double h = GetParam();
  JoinWorkloadSpec spec;
  spec.cardinality = 1 << 14;
  spec.hit_rate = h;
  auto w = MakeJoinWorkload(spec);
  size_t matches = CountMatches(w.dsm_left, w.dsm_right);
  double achieved =
      static_cast<double>(matches) / static_cast<double>(spec.cardinality);
  EXPECT_NEAR(achieved, h, h * 0.1) << "hit rate off target";
  EXPECT_EQ(matches, w.expected_result_size);
}

INSTANTIATE_TEST_SUITE_P(PaperRates, HitRateSweep,
                         ::testing::Values(0.3, 1.0, 3.0));

TEST(GeneratorTest, DsmAndNsmHoldSameTuples) {
  JoinWorkloadSpec spec;
  spec.cardinality = 2000;
  spec.num_attrs = 4;
  auto w = MakeJoinWorkload(spec);
  for (size_t i = 0; i < spec.cardinality; ++i) {
    for (size_t a = 0; a < spec.num_attrs; ++a) {
      ASSERT_EQ(w.dsm_left.attr(a)[i], w.nsm_left.attr(i, a));
      ASSERT_EQ(w.dsm_right.attr(a)[i], w.nsm_right.attr(i, a));
    }
  }
}

TEST(GeneratorTest, PayloadsAreFunctionsOfKey) {
  JoinWorkloadSpec spec;
  spec.cardinality = 1000;
  spec.num_attrs = 3;
  auto w = MakeJoinWorkload(spec);
  for (size_t i = 0; i < spec.cardinality; ++i) {
    value_t key = w.dsm_left.key()[i];
    EXPECT_EQ(w.dsm_left.attr(1)[i], PayloadValue(key, 1));
    EXPECT_EQ(w.dsm_left.attr(2)[i], PayloadValue(key, 2));
  }
}

TEST(GeneratorTest, DeterministicAcrossCalls) {
  JoinWorkloadSpec spec;
  spec.cardinality = 500;
  spec.seed = 7;
  auto a = MakeJoinWorkload(spec);
  auto b = MakeJoinWorkload(spec);
  for (size_t i = 0; i < spec.cardinality; ++i) {
    ASSERT_EQ(a.dsm_left.key()[i], b.dsm_left.key()[i]);
  }
}

TEST(GeneratorTest, HitRateOneIsPermutation) {
  JoinWorkloadSpec spec;
  spec.cardinality = 4096;
  spec.hit_rate = 1.0;
  auto w = MakeJoinWorkload(spec);
  std::set<value_t> left_keys, right_keys;
  for (size_t i = 0; i < spec.cardinality; ++i) {
    left_keys.insert(w.dsm_left.key()[i]);
    right_keys.insert(w.dsm_right.key()[i]);
  }
  EXPECT_EQ(left_keys.size(), spec.cardinality);
  EXPECT_EQ(left_keys, right_keys);
}

TEST(SparseOidsTest, FullSelectivityIsPermutation) {
  Rng rng(1);
  auto oids = MakeSparseOids(1000, 1.0, rng);
  std::set<oid_t> distinct(oids.begin(), oids.end());
  EXPECT_EQ(distinct.size(), 1000u);
  EXPECT_EQ(*distinct.rbegin(), 999u);
}

class SelectivitySweep : public ::testing::TestWithParam<double> {};

TEST_P(SelectivitySweep, OidsSpreadOverBaseTable) {
  double s = GetParam();
  Rng rng(2);
  size_t n = 10000;
  auto oids = MakeSparseOids(n, s, rng);
  size_t base = static_cast<size_t>(n / s);
  std::set<oid_t> distinct(oids.begin(), oids.end());
  EXPECT_EQ(distinct.size(), n) << "selection oids must be distinct";
  oid_t max = *std::max_element(oids.begin(), oids.end());
  EXPECT_LT(max, base);
  EXPECT_GT(max, base * 9 / 10) << "oids should span the base table";
}

INSTANTIATE_TEST_SUITE_P(PaperSelectivities, SelectivitySweep,
                         ::testing::Values(1.0, 0.1, 0.01));

TEST(BaseColumnTest, ValuesMatchPayloadFunction) {
  auto col = MakeBaseColumn(100, 1);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(col[i], PayloadValue(static_cast<value_t>(i), 1));
  }
}

TEST(DistributionsTest, PermutationIsComplete) {
  Rng rng(3);
  auto perm = RandomPermutation(257, rng);
  std::set<uint32_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 257u);
  EXPECT_EQ(*seen.rbegin(), 256u);
}

TEST(ZipfTest, StaysInRangeAndSkews) {
  Rng rng(4);
  ZipfGenerator zipf(1000, 1.0);
  std::vector<size_t> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) {
    uint64_t v = zipf.Next(rng);
    ASSERT_LT(v, 1000u);
    ++counts[v];
  }
  // Rank-0 must dominate; ratio rank0/rank99 ~ 100 for s=1.
  EXPECT_GT(counts[0], counts[99] * 10);
  // Monotone-ish head.
  EXPECT_GT(counts[0], counts[1]);
}

TEST(ZipfTest, UniformWhenSIsZero) {
  Rng rng(5);
  ZipfGenerator zipf(100, 0.0);
  std::vector<size_t> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Next(rng)];
  auto [lo, hi] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_LT(static_cast<double>(*hi) / static_cast<double>(*lo + 1), 1.6);
}

}  // namespace
}  // namespace radix::workload
