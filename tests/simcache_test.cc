// Tests for the cache/TLB simulator: LRU behaviour, associativity,
// sequential vs random miss counts, and the tracer plumbing.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "hardware/memory_hierarchy.h"
#include "simcache/cache_sim.h"
#include "simcache/mem_tracer.h"
#include "simcache/tlb_sim.h"

namespace radix::simcache {
namespace {

TEST(CacheSimTest, ColdMissThenHit) {
  CacheSim cache(1024, 64, 0);
  EXPECT_TRUE(cache.Access(0));    // cold
  EXPECT_FALSE(cache.Access(0));   // hit
  EXPECT_FALSE(cache.Access(63));  // same line
  EXPECT_TRUE(cache.Access(64));   // next line
  EXPECT_EQ(cache.accesses(), 4u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(CacheSimTest, FullyAssociativeLruEvictsOldest) {
  // 4 lines of 64B, fully associative.
  CacheSim cache(256, 64, 0);
  for (uint64_t a = 0; a < 4; ++a) EXPECT_TRUE(cache.Access(a * 64));
  // Touch line 0 to make line 1 the LRU victim.
  EXPECT_FALSE(cache.Access(0));
  EXPECT_TRUE(cache.Access(4 * 64));   // evicts line 1
  EXPECT_FALSE(cache.Access(0));       // still resident
  EXPECT_TRUE(cache.Access(1 * 64));   // line 1 was evicted
}

TEST(CacheSimTest, DirectMappedConflicts) {
  // 4 sets, 1 way: addresses 0 and 4*64 map to the same set and thrash.
  CacheSim cache(256, 64, 1);
  EXPECT_TRUE(cache.Access(0));
  EXPECT_TRUE(cache.Access(4 * 64));
  EXPECT_TRUE(cache.Access(0));
  EXPECT_TRUE(cache.Access(4 * 64));
  EXPECT_EQ(cache.misses(), 4u);
}

TEST(CacheSimTest, SequentialScanMissesOncePerLine) {
  CacheSim cache(512 * 1024, 64, 8);
  size_t bytes = 1 << 20;
  for (uint64_t a = 0; a < bytes; a += 4) cache.Access(a);
  EXPECT_EQ(cache.misses(), bytes / 64);
}

TEST(CacheSimTest, WorkingSetWithinCapacityStaysResident) {
  CacheSim cache(64 * 1024, 64, 8);
  // 32KB working set scanned 10 times: only compulsory misses.
  for (int round = 0; round < 10; ++round) {
    for (uint64_t a = 0; a < 32 * 1024; a += 64) cache.Access(a);
  }
  EXPECT_EQ(cache.misses(), 32u * 1024 / 64);
}

TEST(CacheSimTest, WorkingSetBeyondCapacityThrashes) {
  CacheSim cache(64 * 1024, 64, 8);
  // 256KB scanned repeatedly with LRU ⇒ every access misses after warmup.
  size_t lines = 256 * 1024 / 64;
  for (int round = 0; round < 4; ++round) {
    for (uint64_t a = 0; a < 256 * 1024; a += 64) cache.Access(a);
  }
  EXPECT_EQ(cache.misses(), 4 * lines);
}

TEST(CacheSimTest, ResetClearsState) {
  CacheSim cache(1024, 64, 2);
  cache.Access(0);
  cache.Reset();
  EXPECT_EQ(cache.accesses(), 0u);
  EXPECT_TRUE(cache.Access(0));
}

TEST(TlbSimTest, PageGranularity) {
  TlbSim tlb(4, 4096, 0);
  EXPECT_TRUE(tlb.Access(0));
  EXPECT_FALSE(tlb.Access(4095));   // same page
  EXPECT_TRUE(tlb.Access(4096));    // next page
  EXPECT_EQ(tlb.misses(), 2u);
}

TEST(TlbSimTest, CapacityInPages) {
  TlbSim tlb(4, 4096, 0);
  for (uint64_t p = 0; p < 4; ++p) tlb.Access(p * 4096);
  EXPECT_FALSE(tlb.Access(0));      // resident
  tlb.Access(4 * 4096);             // evicts LRU (page 1)
  EXPECT_TRUE(tlb.Access(1 * 4096));
}

TEST(MemTracerTest, CountsHierarchically) {
  hardware::MemoryHierarchy hw = hardware::MemoryHierarchy::Pentium4();
  MemTracer tracer(hw);
  // Sequential 1MB scan: L1 misses every 32B, L2 misses every 128B (P4
  // line sizes), TLB every 4KB. The heap buffer may straddle one extra
  // line/page at each granularity: allow +1.
  std::vector<uint8_t> buf(1 << 20);
  for (size_t i = 0; i < buf.size(); i += 4) {
    tracer.Touch(buf.data() + i, 4);
  }
  MemCounters c = tracer.counters();
  EXPECT_NEAR(static_cast<double>(c.l1_misses),
              static_cast<double>(buf.size() / 32), 1.0);
  EXPECT_NEAR(static_cast<double>(c.l2_misses),
              static_cast<double>(buf.size() / 128), 1.0);
  EXPECT_NEAR(static_cast<double>(c.tlb_misses),
              static_cast<double>(buf.size() / 4096), 1.0);
}

TEST(MemTracerTest, MultiByteTouchSplitsLines) {
  hardware::MemoryHierarchy hw = hardware::MemoryHierarchy::Pentium4();
  MemTracer tracer(hw);
  alignas(64) uint8_t buf[256];
  tracer.Touch(buf, 256);  // 8 L1 lines of 32B
  EXPECT_EQ(tracer.counters().l1_misses, 8u);
}

TEST(MemTracerTest, RandomAccessBeyondL2Thrashes) {
  hardware::MemoryHierarchy hw = hardware::MemoryHierarchy::Pentium4();
  MemTracer tracer(hw);
  size_t bytes = 8 << 20;  // 16x the 512KB L2
  std::vector<uint8_t> buf(bytes);
  Rng rng(1);
  size_t accesses = 100000;
  for (size_t i = 0; i < accesses; ++i) {
    tracer.Touch(buf.data() + rng.Below(bytes), 1);
  }
  MemCounters c = tracer.counters();
  // Nearly every random access to a region >> C must miss L2.
  EXPECT_GT(c.l2_misses, accesses * 8 / 10);
}

TEST(MemTracerTest, NoTracerCompilesToNoop) {
  NoTracer t;
  t.Touch(nullptr, 0);  // must be callable and do nothing
  static_assert(!NoTracer::kEnabled);
  static_assert(MemTracer::kEnabled);
}

}  // namespace
}  // namespace radix::simcache
