// Tests for the session-scoped engine API: Prepare/Explain/Execute must
// agree with the planner and cost-model layers, produce byte-identical
// results to the legacy free-function executors, and run queries on the
// session pool without constructing threads per query.

#include <gtest/gtest.h>

#include <vector>

#include "cluster/partition_plan.h"
#include "common/thread_pool.h"
#include "costmodel/models.h"
#include "decluster/window.h"
#include "engine/engine.h"
#include "hardware/memory_hierarchy.h"
#include "project/dsm_post.h"
#include "project/executor.h"
#include "project/planner.h"
#include "workload/generator.h"

namespace radix::engine {
namespace {

using project::JoinStrategy;
using project::SideStrategy;

hardware::MemoryHierarchy P4() {
  return hardware::MemoryHierarchy::Pentium4();
}

EngineConfig P4Config(size_t threads = 1) {
  EngineConfig cfg;
  cfg.hierarchy = P4();
  cfg.num_threads = threads;
  return cfg;
}

workload::JoinWorkload MakeW(size_t n, uint64_t seed, size_t omega = 4) {
  workload::JoinWorkloadSpec spec;
  spec.cardinality = n;
  spec.num_attrs = omega;
  spec.hit_rate = 1.0;
  spec.seed = seed;
  return workload::MakeJoinWorkload(spec);
}

TEST(EngineTest, ReusedEngineMatchesLegacyAcrossConsecutiveQueries) {
  // One engine, >= 3 consecutive queries per strategy x seed: checksums and
  // cardinalities must be byte-identical to the legacy RunQuery on the same
  // hardware profile, and must not drift between consecutive runs.
  Engine eng(P4Config(/*threads=*/2));
  auto hw = P4();
  for (uint64_t seed : {5u, 17u, 23u}) {
    workload::JoinWorkload w = MakeW(1 << 12, seed);
    for (JoinStrategy s :
         {JoinStrategy::kDsmPostDecluster, JoinStrategy::kDsmPrePhash,
          JoinStrategy::kNsmPreHash, JoinStrategy::kNsmPrePhash,
          JoinStrategy::kNsmPostDecluster, JoinStrategy::kNsmPostJive}) {
      QuerySpec spec;
      spec.strategy = s;
      spec.pi_left = 2;
      spec.pi_right = 2;
      project::QueryOptions legacy;
      legacy.pi_left = 2;
      legacy.pi_right = 2;
      project::QueryRun ref = project::RunQuery(w, s, legacy, hw);
      for (int round = 0; round < 3; ++round) {
        project::QueryRun run = eng.Execute(w, spec);
        ASSERT_EQ(run.checksum, ref.checksum)
            << project::JoinStrategyName(s) << " seed=" << seed
            << " round=" << round;
        ASSERT_EQ(run.result_cardinality, ref.result_cardinality);
        ASSERT_EQ(run.detail, ref.detail);
      }
    }
  }
}

TEST(EngineTest, PreparedPlanAgreesWithPlanner) {
  // 2^18 tuples x 4B = 1MB > the P4's 512KB L2: the planner must pick the
  // hard-join machinery, and Explain() must report exactly its choice.
  Engine eng(P4Config());
  workload::JoinWorkload w = MakeW(1 << 18, 7);
  QuerySpec spec;
  spec.pi_left = 2;
  spec.pi_right = 2;
  PreparedQuery q = eng.Prepare(w, spec);
  const Explanation& ex = q.Explain();

  project::Plan plan = project::PlanDsmPost(
      w.dsm_left.cardinality(), w.dsm_right.cardinality(),
      w.expected_result_size, spec.pi_left, spec.pi_right, eng.hierarchy());
  EXPECT_EQ(ex.plan_code, plan.code);
  EXPECT_EQ(ex.plan_code, "c/d");
  EXPECT_FALSE(ex.easy);
  EXPECT_EQ(ex.side_options.left, plan.options.left);
  EXPECT_EQ(ex.side_options.right, plan.options.right);

  // The executed run must carry the explained plan code verbatim.
  project::QueryRun run = q.Execute();
  EXPECT_EQ(run.detail, ex.plan_code);
  EXPECT_EQ(run.strategy, JoinStrategy::kDsmPostDecluster);
}

TEST(EngineTest, ExplainModeledCostMatchesCostModelDirectCalls) {
  // Explain() is a view over costmodel/: recomputing each phase with
  // direct cost-model calls (same hierarchy, same CPU constants, same
  // resolved radix plan) must give exactly the same seconds.
  Engine eng(P4Config());
  const auto& hw = eng.hierarchy();
  const auto& cpu = eng.cpu_costs();
  workload::JoinWorkload w = MakeW(1 << 18, 11);
  size_t n = w.dsm_left.cardinality();
  size_t n_index = w.expected_result_size;
  QuerySpec spec;
  spec.pi_left = 2;
  spec.pi_right = 2;
  const Explanation& ex = eng.Prepare(w, spec).Explain();

  // Right-side radix plan: bits/passes/window must match the projector's
  // own resolution.
  cluster::ClusterSpec right_spec = project::detail::SpecFor(
      SideStrategy::kClustered, n_index, n, hw,
      project::DsmPostOptions::kAuto);
  EXPECT_EQ(ex.decluster_bits, right_spec.total_bits);
  EXPECT_EQ(ex.decluster_passes, right_spec.passes);
  size_t window = decluster::WindowPolicy::ChooseWindowElems(
      hw, sizeof(value_t), size_t{1} << right_spec.total_bits, n_index);
  EXPECT_EQ(ex.window_elems, window);

  // Phase costs: join, per-column decluster, and the total as their sum.
  double join_s = costmodel::PartitionedHashJoinCost(
                      hw, cpu, n, n, sizeof(cluster::KeyOid),
                      cluster::PartitionedJoinBits(n, sizeof(cluster::KeyOid),
                                                   hw))
                      .seconds;
  EXPECT_DOUBLE_EQ(ex.join_cost.seconds, join_s);
  double decluster_s =
      2.0 * costmodel::RadixDeclusterCost(hw, cpu, n_index, sizeof(value_t),
                                          ex.decluster_bits, ex.window_elems)
                .seconds;
  EXPECT_DOUBLE_EQ(ex.decluster_cost.seconds, decluster_s);
  EXPECT_DOUBLE_EQ(ex.modeled_seconds,
                   ex.join_cost.seconds + ex.cluster_cost.seconds +
                       ex.projection_cost.seconds + ex.decluster_cost.seconds);
  EXPECT_GT(ex.modeled_seconds, 0.0);
  EXPECT_FALSE(ex.ToString().empty());
}

TEST(EngineTest, ZeroThreadPoolConstructionsPerQueryAfterStartup) {
  // The engine's whole point: the pool spawns once at startup, and no
  // query — materializing or streaming, any strategy — constructs another.
  Engine eng(P4Config(/*threads=*/4));
  workload::JoinWorkload w = MakeW(1 << 12, 3);
  QuerySpec dsm;
  dsm.pi_left = 2;
  dsm.pi_right = 2;
  QuerySpec streamed = dsm;
  streamed.chunking = ChunkingPolicy::kStream;
  QuerySpec nsm;
  nsm.strategy = JoinStrategy::kNsmPreHash;

  uint64_t before = ThreadPool::TotalConstructed();
  for (int round = 0; round < 3; ++round) {
    eng.Execute(w, dsm);
    eng.Execute(w, streamed);
    eng.Execute(w, nsm);
  }
  EXPECT_EQ(ThreadPool::TotalConstructed(), before);
}

TEST(EngineTest, LegacyWrappersReuseProcessWidePool) {
  // The deprecated free functions resolve their pool from the shared
  // cache: after a warm-up call per size, repeated queries construct none.
  auto hw = P4();
  workload::JoinWorkload w = MakeW(1 << 12, 9);
  project::QueryOptions opts;
  opts.pi_left = 1;
  opts.pi_right = 1;
  opts.num_threads = 3;
  project::RunQuery(w, JoinStrategy::kDsmPostDecluster, opts, hw);  // warm
  uint64_t before = ThreadPool::TotalConstructed();
  for (int round = 0; round < 3; ++round) {
    project::RunQuery(w, JoinStrategy::kDsmPostDecluster, opts, hw);
    project::RunQueryStreaming(w, JoinStrategy::kDsmPostDecluster, opts, hw);
  }
  EXPECT_EQ(ThreadPool::TotalConstructed(), before);
}

TEST(EngineTest, ThreadsUsedIsHonest) {
  auto hw = P4();
  workload::JoinWorkload w = MakeW(1 << 12, 13);
  project::QueryOptions opts;
  opts.pi_left = 1;
  opts.pi_right = 1;
  opts.num_threads = 4;
  // Only the DSM post-projection strategy has parallel kernels; everything
  // else must report threads_used == 1 no matter what was requested.
  project::QueryRun par =
      project::RunQuery(w, JoinStrategy::kDsmPostDecluster, opts, hw);
  EXPECT_EQ(par.threads_used, 4u);
  project::QueryRun serial =
      project::RunQuery(w, JoinStrategy::kNsmPreHash, opts, hw);
  EXPECT_EQ(serial.threads_used, 1u);
  project::QueryRun jive =
      project::RunQuery(w, JoinStrategy::kNsmPostJive, opts, hw);
  EXPECT_EQ(jive.threads_used, 1u);

  Engine eng(P4Config(/*threads=*/2));
  QuerySpec spec;
  EXPECT_EQ(eng.Execute(w, spec).threads_used, 2u);
  QuerySpec nsm;
  nsm.strategy = JoinStrategy::kNsmPrePhash;
  EXPECT_EQ(eng.Execute(w, nsm).threads_used, 1u);
}

TEST(EngineTest, InjectedSizeOnePoolPinsSerialExecution) {
  // An injected pool owns the thread count outright: a size-1 pool with a
  // conflicting num_threads must run the exact serial kernels, report
  // threads_used == 1, and never fall back to constructing a per-call
  // pool from num_threads.
  auto hw = P4();
  workload::JoinWorkload w = MakeW(1 << 12, 27);
  ThreadPool serial_pool(1);
  project::QueryOptions opts;
  opts.pi_left = 2;
  opts.pi_right = 2;
  opts.pool = &serial_pool;
  opts.num_threads = 4;  // must be ignored: the injected pool wins
  uint64_t before = ThreadPool::TotalConstructed();
  project::QueryRun run =
      project::RunQuery(w, JoinStrategy::kDsmPostDecluster, opts, hw);
  project::QueryRun streamed = project::RunQueryStreaming(
      w, JoinStrategy::kDsmPostDecluster, opts, hw);
  EXPECT_EQ(ThreadPool::TotalConstructed(), before);
  EXPECT_EQ(run.threads_used, 1u);
  EXPECT_EQ(streamed.threads_used, 1u);

  project::QueryOptions plain;
  plain.pi_left = 2;
  plain.pi_right = 2;
  project::QueryRun ref =
      project::RunQuery(w, JoinStrategy::kDsmPostDecluster, plain, hw);
  EXPECT_EQ(run.checksum, ref.checksum);
  EXPECT_EQ(streamed.checksum, ref.checksum);
}

TEST(EngineTest, CalibratedEngineMatchesPresetEngineResults) {
  // Calibration refines latencies/bandwidth only — geometry, and therefore
  // every planner choice and every byte of the result, must be unchanged.
  Engine preset(P4Config());

  EngineConfig cal_cfg = P4Config();
  cal_cfg.calibrate_on_startup = true;
  cal_cfg.calibrator_options.max_working_set_bytes = 1u << 20;
  cal_cfg.calibrator_options.accesses_per_point = 1u << 12;
  Engine calibrated(cal_cfg);

  workload::JoinWorkload w = MakeW(1 << 13, 21);
  for (JoinStrategy s :
       {JoinStrategy::kDsmPostDecluster, JoinStrategy::kNsmPostJive}) {
    QuerySpec spec;
    spec.strategy = s;
    spec.pi_left = 2;
    spec.pi_right = 2;
    PreparedQuery a = preset.Prepare(w, spec);
    PreparedQuery b = calibrated.Prepare(w, spec);
    EXPECT_EQ(a.Explain().plan_code, b.Explain().plan_code);
    project::QueryRun ra = a.Execute();
    project::QueryRun rb = b.Execute();
    EXPECT_EQ(ra.checksum, rb.checksum) << project::JoinStrategyName(s);
    EXPECT_EQ(ra.result_cardinality, rb.result_cardinality);
  }
}

TEST(EngineTest, ChunkingPolicyControlsExecutionMode) {
  workload::JoinWorkload w = MakeW(20000, 31, /*omega=*/3);
  QuerySpec spec;
  spec.pi_left = 2;
  spec.pi_right = 2;
  spec.plan_sides = false;
  spec.left = SideStrategy::kClustered;
  spec.right = SideStrategy::kDecluster;

  // Default engine policy (kAuto, no budget): materialize, like RunQuery.
  Engine mat(P4Config());
  EXPECT_FALSE(mat.Prepare(w, spec).Explain().streaming);

  // A tiny intermediate budget forces streaming, with a planner-chosen
  // chunk small enough for the budget unless the cost model vetoes it.
  EngineConfig budget_cfg = P4Config();
  budget_cfg.streaming_budget_bytes = 16 * 1024;
  Engine budget(budget_cfg);
  const Explanation& ex = budget.Prepare(w, spec).Explain();
  EXPECT_TRUE(ex.streaming);
  EXPECT_GT(ex.chunk_rows, 0u);
  EXPECT_LT(ex.modeled_intermediate_bytes,
            w.expected_result_size * sizeof(value_t));

  // Explicit per-query overrides beat the engine policy.
  QuerySpec forced = spec;
  forced.chunking = ChunkingPolicy::kStream;
  EXPECT_TRUE(mat.Prepare(w, forced).Explain().streaming);
  forced.chunking = ChunkingPolicy::kMaterialize;
  EXPECT_FALSE(budget.Prepare(w, forced).Explain().streaming);

  // All modes compute the same relation as the legacy entry points.
  project::QueryOptions legacy;
  legacy.pi_left = 2;
  legacy.pi_right = 2;
  legacy.plan_sides = false;
  legacy.left = SideStrategy::kClustered;
  legacy.right = SideStrategy::kDecluster;
  project::QueryRun ref = project::RunQuery(
      w, JoinStrategy::kDsmPostDecluster, legacy, P4());
  EXPECT_EQ(budget.Execute(w, spec).checksum, ref.checksum);
  forced.chunking = ChunkingPolicy::kStream;
  EXPECT_EQ(mat.Execute(w, forced).checksum, ref.checksum);
}

TEST(EngineTest, ExplainStreamingCostUsesStreamingModel) {
  // When the plan streams, the modeled decluster phase must be the
  // streamed prediction for the chosen chunk — not the materializing one.
  Engine eng(P4Config());
  workload::JoinWorkload w = MakeW(1 << 16, 41, /*omega=*/3);
  QuerySpec spec;
  spec.pi_left = 1;
  spec.pi_right = 1;
  spec.plan_sides = false;
  spec.left = SideStrategy::kClustered;
  spec.right = SideStrategy::kDecluster;
  spec.chunking = ChunkingPolicy::kStream;
  spec.chunk_rows = 4096;
  const Explanation& ex = eng.Prepare(w, spec).Explain();
  ASSERT_TRUE(ex.streaming);
  EXPECT_EQ(ex.chunk_rows, 4096u);
  double expected = costmodel::StreamingRadixDeclusterCost(
                        eng.hierarchy(), eng.cpu_costs(),
                        w.expected_result_size, sizeof(value_t),
                        ex.decluster_bits, ex.window_elems, ex.chunk_rows)
                        .seconds;
  EXPECT_DOUBLE_EQ(ex.decluster_cost.seconds, expected);
  double materializing = costmodel::RadixDeclusterCost(
                             eng.hierarchy(), eng.cpu_costs(),
                             w.expected_result_size, sizeof(value_t),
                             ex.decluster_bits, ex.window_elems)
                             .seconds;
  EXPECT_GE(ex.decluster_cost.seconds, materializing);
}

workload::JoinWorkload MakeVarcharW(size_t n, uint64_t seed,
                                    size_t num_cols = 2) {
  workload::JoinWorkloadSpec spec;
  spec.cardinality = n;
  spec.num_attrs = 3;
  spec.hit_rate = 1.0;
  spec.seed = seed;
  spec.varchar.num_cols = num_cols;
  return workload::MakeJoinWorkload(spec);
}

TEST(EngineTest, VarcharExplainReportsPagedDeclusterTerm) {
  // 2^18 tuples outgrow the P4's 512 KB L2, so the planner runs the right
  // side as d; a varchar projection must then surface the Fig. 12
  // three-phase paged-decluster cost term in Explain, before anything runs.
  Engine eng(P4Config());
  workload::JoinWorkload w = MakeVarcharW(1 << 18, 13);
  QuerySpec spec;
  spec.pi_left = 1;
  spec.pi_right = 1;
  spec.pi_varchar_left = 1;
  spec.pi_varchar_right = 1;
  const Explanation& ex = eng.Prepare(w, spec).Explain();
  EXPECT_EQ(ex.side_options.right, SideStrategy::kDecluster);
  EXPECT_EQ(ex.varchar_cols, 2u);
  EXPECT_GT(ex.avg_varchar_len, 0u);
  EXPECT_GT(ex.varchar_decluster_cost.seconds, 0.0);
  // The term participates in the total.
  EXPECT_GE(ex.modeled_seconds,
            ex.join_cost.seconds + ex.cluster_cost.seconds +
                ex.projection_cost.seconds + ex.decluster_cost.seconds +
                ex.varchar_decluster_cost.seconds - 1e-12);
  // And it is reported in the rendered plan.
  EXPECT_NE(ex.ToString().find("paged-decluster"), std::string::npos);

  // Without varchar columns the term is zero.
  QuerySpec fixed_only = spec;
  fixed_only.pi_varchar_left = 0;
  fixed_only.pi_varchar_right = 0;
  const Explanation& fx = eng.Prepare(w, fixed_only).Explain();
  EXPECT_EQ(fx.varchar_cols, 0u);
  EXPECT_EQ(fx.varchar_decluster_cost.seconds, 0.0);
}

TEST(EngineTest, VarcharQueriesNeverStream) {
  // The pipeline has no variable-size chunk path yet: even an explicit
  // kStream policy must plan (and execute) a varchar query materializing,
  // mirroring the executor's fallback — Explain may not claim otherwise.
  Engine eng(P4Config());
  workload::JoinWorkload w = MakeVarcharW(1 << 16, 29);
  QuerySpec spec;
  spec.pi_left = 1;
  spec.pi_right = 1;
  spec.pi_varchar_right = 1;
  spec.plan_sides = false;
  spec.left = SideStrategy::kClustered;
  spec.right = SideStrategy::kDecluster;
  spec.chunking = ChunkingPolicy::kStream;
  const Explanation& ex = eng.Prepare(w, spec).Explain();
  EXPECT_FALSE(ex.streaming);
  EXPECT_EQ(ex.chunk_rows, 0u);

  QuerySpec no_var = spec;
  no_var.pi_varchar_right = 0;
  EXPECT_TRUE(eng.Prepare(w, no_var).Explain().streaming);

  // Same honesty on the *unsorted* right side (where no-varchar kStream
  // legitimately streams the gathers): a varchar query must not claim it.
  QuerySpec u_right = spec;
  u_right.right = SideStrategy::kUnsorted;
  EXPECT_FALSE(eng.Prepare(w, u_right).Explain().streaming);
  QuerySpec u_right_no_var = u_right;
  u_right_no_var.pi_varchar_right = 0;
  EXPECT_TRUE(eng.Prepare(w, u_right_no_var).Explain().streaming);
}

TEST(EngineTest, ModeReasonExplainsWhyStreamingWasRejected) {
  // Satellite contract: Explain() must *say why* the mode was chosen, not
  // just which one — especially when streaming was rejected.
  workload::JoinWorkload w = MakeW(20000, 31, /*omega=*/3);
  QuerySpec spec;
  spec.pi_left = 1;
  spec.pi_right = 1;
  spec.plan_sides = false;
  spec.left = SideStrategy::kClustered;
  spec.right = SideStrategy::kDecluster;

  // kAuto without a budget: materializing because nothing asked to stream.
  Engine auto_eng(P4Config());
  {
    const Explanation& ex = auto_eng.Prepare(w, spec).Explain();
    EXPECT_EQ(ex.mode_reason, "auto: no streaming budget configured");
    EXPECT_NE(ex.ToString().find(ex.mode_reason), std::string::npos);
  }

  // kAuto with a roomy budget: the intermediate fits, so materialize.
  EngineConfig roomy = P4Config();
  roomy.streaming_budget_bytes = size_t{1} << 30;
  Engine roomy_eng(roomy);
  EXPECT_EQ(roomy_eng.Prepare(w, spec).Explain().mode_reason,
            "auto: intermediate fits streaming budget");

  // kAuto with a tiny budget: streaming, because the intermediate exceeds.
  EngineConfig tiny = P4Config();
  tiny.streaming_budget_bytes = 16 * 1024;
  Engine tiny_eng(tiny);
  EXPECT_EQ(tiny_eng.Prepare(w, spec).Explain().mode_reason,
            "auto: intermediate exceeds streaming budget");

  // Explicit policies name themselves.
  QuerySpec forced = spec;
  forced.chunking = ChunkingPolicy::kMaterialize;
  EXPECT_EQ(tiny_eng.Prepare(w, forced).Explain().mode_reason,
            "chunking policy: always materialize");
  forced.chunking = ChunkingPolicy::kStream;
  EXPECT_EQ(auto_eng.Prepare(w, forced).Explain().mode_reason,
            "policy: stream");

  // The headline case: varchar columns force materializing even under an
  // explicit kStream policy, and the reason says so — on the d right side
  // and on the u right side alike.
  workload::JoinWorkload vw = MakeVarcharW(1 << 14, 29);
  QuerySpec var_spec = forced;  // kStream
  var_spec.pi_varchar_right = 1;
  {
    const Explanation& ex = auto_eng.Prepare(vw, var_spec).Explain();
    ASSERT_FALSE(ex.streaming);
    EXPECT_NE(ex.mode_reason.find("varchar columns force materializing"),
              std::string::npos)
        << ex.mode_reason;
    EXPECT_NE(ex.ToString().find("mode reason: "), std::string::npos);
  }
  QuerySpec var_u = var_spec;
  var_u.right = SideStrategy::kUnsorted;
  {
    const Explanation& ex = auto_eng.Prepare(vw, var_u).Explain();
    ASSERT_FALSE(ex.streaming);
    EXPECT_NE(ex.mode_reason.find("varchar columns force materializing"),
              std::string::npos)
        << ex.mode_reason;
  }

  // Comparison strategies have no streaming mode at all.
  QuerySpec cmp;
  cmp.strategy = JoinStrategy::kDsmPrePhash;
  EXPECT_EQ(auto_eng.Prepare(w, cmp).Explain().mode_reason,
            "comparison strategy: materializing only");
}

TEST(EngineTest, VarcharExecuteMatchesLegacyAndIsThreadInvariant) {
  // Engine Execute with varchar columns must agree with the legacy entry
  // point, and a threaded session must produce the identical checksum.
  auto hw = P4();
  workload::JoinWorkload w = MakeVarcharW(1 << 13, 37);
  QuerySpec spec;
  spec.pi_left = 2;
  spec.pi_right = 1;
  spec.pi_varchar_left = 1;
  spec.pi_varchar_right = 2;
  project::QueryOptions legacy;
  legacy.pi_left = 2;
  legacy.pi_right = 1;
  legacy.pi_varchar_left = 1;
  legacy.pi_varchar_right = 2;

  for (JoinStrategy s :
       {JoinStrategy::kDsmPostDecluster, JoinStrategy::kDsmPrePhash,
        JoinStrategy::kNsmPreHash, JoinStrategy::kNsmPrePhash,
        JoinStrategy::kNsmPostDecluster, JoinStrategy::kNsmPostJive}) {
    QuerySpec qs = spec;
    qs.strategy = s;
    project::QueryRun ref = project::RunQuery(w, s, legacy, hw);
    Engine serial(P4Config());
    project::QueryRun run = serial.Execute(w, qs);
    ASSERT_EQ(run.checksum, ref.checksum) << project::JoinStrategyName(s);
    ASSERT_EQ(run.result_cardinality, ref.result_cardinality);
  }

  Engine threaded(P4Config(/*threads=*/4));
  project::QueryRun threaded_run = threaded.Execute(w, spec);
  project::QueryRun serial_ref = project::RunQuery(
      w, JoinStrategy::kDsmPostDecluster, legacy, hw);
  EXPECT_EQ(threaded_run.checksum, serial_ref.checksum);
}

TEST(EngineTest, DefaultEngineIsUsableAndSerial) {
  Engine& eng = Engine::Default();
  EXPECT_EQ(eng.num_threads(), 1u);
  EXPECT_EQ(eng.pool(), nullptr);
  workload::JoinWorkload w = MakeW(2048, 1, /*omega=*/3);
  QuerySpec spec;
  project::QueryRun run = eng.Execute(w, spec);
  EXPECT_EQ(run.result_cardinality, w.expected_result_size);
}

}  // namespace
}  // namespace radix::engine
