// Forced-ISA equivalence sweep: every SIMD kernel variant must be
// bit-for-bit identical to the scalar reference, across seeds x sizes
// (including empty inputs and non-multiple-of-vector-width tails) x every
// ISA tier the machine can execute. This is the contract that lets the
// dispatch layer swap variants freely under the engine.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/bits.h"
#include "common/cpu_dispatch.h"
#include "common/rng.h"
#include "common/simd_kernels.h"

namespace radix {
namespace {

using cpu::Isa;
using simd::KernelTable;

// Sizes chosen to straddle every vector width in play: empty, sub-lane,
// exactly one AVX2 lane (8), one AVX-512 lane (16), one extraction block
// (64), and ragged tails around each.
constexpr size_t kSizes[] = {0, 1, 3, 7, 8, 9, 15, 16, 17,
                             63, 64, 65, 127, 1000, 4096, 4111};

constexpr uint64_t kSeeds[] = {1, 42, 0xdecaf};

// The distinct tiers actually runnable on this machine (build + CPU).
std::vector<const KernelTable*> RunnableTables() {
  std::vector<const KernelTable*> tables = {simd::detail::ScalarKernels()};
  if (cpu::IsaSupported(Isa::kAvx2)) {
    if (const KernelTable* t = simd::detail::Avx2Kernels()) tables.push_back(t);
  }
  if (cpu::IsaSupported(Isa::kAvx512)) {
    if (const KernelTable* t = simd::detail::Avx512Kernels())
      tables.push_back(t);
  }
  return tables;
}

std::vector<uint32_t> RandomValues(size_t n, Rng& rng) {
  std::vector<uint32_t> v(n);
  for (auto& x : v) x = static_cast<uint32_t>(rng.Next());
  return v;
}

TEST(SimdKernelsTest, HistogramMatchesScalarEverywhere) {
  // (shift, bits, value_limit) combos: degenerate 0-bit fields, sub-byte
  // and typical pass widths, a shift past the top of the word, and the
  // full-word bits=32 mask path (with values kept small so the histogram
  // stays allocatable).
  const struct {
    uint32_t shift, bits;
    uint32_t value_limit;  // 0 = full 32-bit range
  } kCombos[] = {{0, 0, 0},   {0, 1, 0},   {0, 6, 0},
                 {5, 7, 0},   {13, 11, 0}, {24, 8, 0},
                 {28, 4, 0},  {31, 1, 0},  {32, 4, 0},
                 {0, 32, 1u << 16}};
  for (const KernelTable* table : RunnableTables()) {
    for (uint64_t seed : kSeeds) {
      Rng rng(seed);
      for (size_t n : kSizes) {
        for (const auto& c : kCombos) {
          std::vector<uint32_t> values = RandomValues(n, rng);
          if (c.value_limit != 0) {
            for (auto& v : values) v %= c.value_limit;
          }
          const uint64_t mask =
              c.bits >= 32 ? 0xFFFFFFFFull : ((uint64_t{1} << c.bits) - 1);
          const uint64_t limit =
              c.value_limit != 0 ? c.value_limit - 1 : 0xFFFFFFFFull;
          const size_t buckets =
              static_cast<size_t>(std::min(mask, limit >> c.shift)) + 1;
          // Pre-fill to verify the kernels ADD rather than overwrite.
          std::vector<uint64_t> expect(buckets, 7);
          std::vector<uint64_t> got(buckets, 7);
          for (size_t i = 0; i < n; ++i) {
            ++expect[RadixBits(values[i], c.shift, c.bits)];
          }
          table->radix_histogram(values.data(), n, c.shift, c.bits,
                                 got.data());
          ASSERT_EQ(0, std::memcmp(expect.data(), got.data(),
                                   expect.size() * sizeof(uint64_t)))
              << cpu::IsaName(table->isa) << " n=" << n
              << " shift=" << c.shift << " bits=" << c.bits
              << " seed=" << seed;
        }
      }
    }
  }
}

TEST(SimdKernelsTest, PrefixSumMatchesScalarEverywhere) {
  for (const KernelTable* table : RunnableTables()) {
    for (uint64_t seed : kSeeds) {
      Rng rng(seed);
      for (size_t buckets : kSizes) {
        std::vector<uint64_t> counts(buckets);
        for (auto& c : counts) c = rng.Below(1u << 20);
        std::vector<uint64_t> expect(buckets + 1);
        uint64_t running = 0;
        for (size_t b = 0; b < buckets; ++b) {
          expect[b] = running;
          running += counts[b];
        }
        expect[buckets] = running;
        std::vector<uint64_t> got(buckets + 1, ~uint64_t{0});
        table->prefix_sum(counts.data(), buckets, got.data());
        ASSERT_EQ(expect, got)
            << cpu::IsaName(table->isa) << " buckets=" << buckets
            << " seed=" << seed;
      }
    }
  }
}

TEST(SimdKernelsTest, GatherMatchesScalarEverywhere) {
  constexpr size_t kSource = 3001;
  for (const KernelTable* table : RunnableTables()) {
    for (uint64_t seed : kSeeds) {
      Rng rng(seed);
      std::vector<int32_t> values(kSource);
      for (auto& v : values) v = static_cast<int32_t>(rng.Next());
      for (size_t n : kSizes) {
        std::vector<uint32_t> ids(n);
        for (auto& id : ids) id = static_cast<uint32_t>(rng.Below(kSource));
        std::vector<int32_t> expect(n), got(n, -1);
        for (size_t i = 0; i < n; ++i) expect[i] = values[ids[i]];
        table->gather_i32(ids.data(), n, values.data(), got.data());
        ASSERT_EQ(expect, got) << cpu::IsaName(table->isa) << " n=" << n
                               << " seed=" << seed;
      }
    }
  }
}

TEST(SimdKernelsTest, PairGathersMatchScalarEverywhere) {
  constexpr size_t kSource = 2017;
  for (const KernelTable* table : RunnableTables()) {
    for (uint64_t seed : kSeeds) {
      Rng rng(seed);
      std::vector<int32_t> values(kSource);
      for (auto& v : values) v = static_cast<int32_t>(rng.Next());
      for (size_t n : kSizes) {
        std::vector<uint64_t> pairs(n);
        for (auto& p : pairs) {
          p = rng.Below(kSource) | (rng.Below(kSource) << 32);
        }
        std::vector<int32_t> elo(n), ehi(n), glo(n, -1), ghi(n, -1);
        for (size_t i = 0; i < n; ++i) {
          elo[i] = values[static_cast<uint32_t>(pairs[i])];
          ehi[i] = values[static_cast<uint32_t>(pairs[i] >> 32)];
        }
        table->gather_pairs_lo_i32(pairs.data(), n, values.data(), glo.data());
        table->gather_pairs_hi_i32(pairs.data(), n, values.data(), ghi.data());
        ASSERT_EQ(elo, glo) << cpu::IsaName(table->isa) << " lo n=" << n;
        ASSERT_EQ(ehi, ghi) << cpu::IsaName(table->isa) << " hi n=" << n;
      }
    }
  }
}

TEST(SimdKernelsTest, WcScatterIsByteIdenticalToPlainScatter) {
  for (uint64_t seed : kSeeds) {
    Rng rng(seed);
    for (size_t n : kSizes) {
      for (size_t buckets : {size_t{1}, size_t{5}, size_t{64}, size_t{257}}) {
        std::vector<uint64_t> vals(n);
        std::vector<uint32_t> dest(n);
        for (size_t i = 0; i < n; ++i) {
          vals[i] = rng.Next();
          dest[i] = static_cast<uint32_t>(rng.Below(buckets));
        }
        std::vector<uint64_t> counts(buckets, 0);
        for (uint32_t d : dest) ++counts[d];
        std::vector<uint64_t> cursor(buckets + 1);
        uint64_t running = 0;
        for (size_t b = 0; b < buckets; ++b) {
          cursor[b] = running;
          running += counts[b];
        }
        cursor[buckets] = running;

        // Scalar reference scatter.
        std::vector<uint64_t> expect(n, ~uint64_t{0});
        {
          std::vector<uint64_t> insert(cursor.begin(), cursor.end() - 1);
          for (size_t i = 0; i < n; ++i) expect[insert[dest[i]]++] = vals[i];
        }
        // Write-combining scatter into a deliberately line-misaligned
        // destination (offset 1 element inside an aligned vector) so the
        // per-bucket unaligned-head path runs too.
        std::vector<uint64_t> backing(n + 1, ~uint64_t{0});
        simd::WcScatter64 wc(backing.data() + 1, buckets, cursor.data());
        for (size_t i = 0; i < n; ++i) wc.Push(dest[i], vals[i]);
        wc.Flush();
        ASSERT_EQ(0, std::memcmp(expect.data(), backing.data() + 1,
                                 n * sizeof(uint64_t)))
            << "n=" << n << " buckets=" << buckets << " seed=" << seed;
      }
    }
  }
}

TEST(SimdKernelsTest, NtScatterPolicyFollowsTable) {
  const bool streaming = simd::Kernels().nt_scatter;
  // Inside the window the policy follows the active table; outside it the
  // answer is no regardless of tier.
  EXPECT_EQ(simd::UseNtScatter(256, 1 << 20), streaming);
  EXPECT_FALSE(simd::UseNtScatter(8, 1 << 20));     // fan-out too small
  EXPECT_FALSE(simd::UseNtScatter(1 << 20, 1 << 21));  // fan-out too large
  EXPECT_FALSE(simd::UseNtScatter(256, 100));       // input too small
}

}  // namespace
}  // namespace radix
