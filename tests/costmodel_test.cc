// Tests for the Appendix-A cost model: pattern formulas at their limit
// cases, composition, and the qualitative shapes the paper's figures rely
// on (optima, cliffs, crossovers).

#include <gtest/gtest.h>

#include "costmodel/models.h"
#include "costmodel/patterns.h"

namespace radix::costmodel {
namespace {

hardware::MemoryHierarchy P4() {
  return hardware::MemoryHierarchy::Pentium4();
}

TEST(PatternsTest, STravIsCompulsoryOnly) {
  auto hw = P4();
  PatternContext ctx{&hw, 1.0};
  Region r = Region::Of(1 << 20, 4);  // 4MB
  MissVector mv = STrav(ctx, r);
  EXPECT_DOUBLE_EQ(mv.l1, r.bytes() / 32);
  EXPECT_DOUBLE_EQ(mv.l2, r.bytes() / 128);
  EXPECT_DOUBLE_EQ(mv.tlb, r.bytes() / 4096);
}

TEST(PatternsTest, RsTravCachedRegionPaysOnce) {
  auto hw = P4();
  PatternContext ctx{&hw, 1.0};
  Region small = Region::Of(1024, 4);  // 4KB << 512KB L2
  MissVector once = STrav(ctx, small);
  MissVector many = RsTrav(ctx, 100, small);
  EXPECT_DOUBLE_EQ(many.l2, once.l2);
  // But L1 (16KB) holds it too, so also once there.
  EXPECT_DOUBLE_EQ(many.l1, once.l1);
  Region big = Region::Of(1 << 20, 4);  // 4MB >> caches
  MissVector rep = RsTrav(ctx, 10, big);
  EXPECT_DOUBLE_EQ(rep.l2, 10 * STrav(ctx, big).l2);
}

TEST(PatternsTest, RTravInCacheEqualsSequentialMisses) {
  auto hw = P4();
  PatternContext ctx{&hw, 1.0};
  Region r = Region::Of(4096, 4);  // 16KB <= L2
  MissVector mv = RTrav(ctx, r);
  EXPECT_DOUBLE_EQ(mv.l2, r.bytes() / 128);
}

TEST(PatternsTest, RTravBeyondCacheApproachesPerTupleMisses) {
  auto hw = P4();
  PatternContext ctx{&hw, 1.0};
  Region r = Region::Of(1 << 22, 4);  // 16MB >> 512KB
  MissVector mv = RTrav(ctx, r);
  // Nearly every touch should miss L2: > 90% of tuples.
  EXPECT_GT(mv.l2, r.tuples * 0.9);
  EXPECT_LE(mv.l2, r.tuples);
}

TEST(PatternsTest, RAccMonotoneInRegionSize) {
  auto hw = P4();
  PatternContext ctx{&hw, 1.0};
  double k = 1e6;
  double prev = 0;
  for (size_t tuples : {1u << 12, 1u << 16, 1u << 20, 1u << 24}) {
    MissVector mv = RAcc(ctx, k, Region::Of(tuples, 4));
    EXPECT_GE(mv.l2, prev);
    prev = mv.l2;
  }
}

TEST(PatternsTest, NestThrashesBeyondEntryCount) {
  auto hw = P4();
  PatternContext ctx{&hw, 1.0};
  Region r = Region::Of(1 << 20, 8);
  // Few cursors: compulsory only. Beyond TLB entries (64): way more.
  MissVector few = NestSTrav(ctx, 16, r);
  MissVector many = NestSTrav(ctx, 4096, r);
  EXPECT_DOUBLE_EQ(few.tlb, r.bytes() / 4096);
  EXPECT_GT(many.tlb, few.tlb * 10);
}

TEST(ComposeTest, SequentialAddsAndConcurrentShrinksCapacity) {
  auto hw = P4();
  Region r = Region::Of(1 << 17, 4);  // 512KB == L2 capacity
  auto rt = [&r](const PatternContext& ctx) { return RTrav(ctx, r); };
  MissVector alone = Sequential(hw, {{rt, r.bytes()}});
  MissVector together = Concurrent(hw, {{rt, r.bytes()}, {rt, r.bytes()}});
  // Two concurrent random traversals of a region that exactly fits: each
  // sees only half the cache, so combined misses exceed 2x the solo run.
  EXPECT_GT(together.l2, 2 * alone.l2);
}

TEST(ComposeTest, MissesToSecondsUsesLatencies) {
  auto hw = P4();
  MissVector mv;
  mv.l2 = 1e6;
  double s = MissesToSeconds(hw, mv, 0.0);
  EXPECT_NEAR(s, 1e6 * 178e-9, 1e-6);
  EXPECT_GT(MissesToSeconds(hw, mv, 1.0), 1.0);
}

TEST(ModelsTest, RadixClusterSinglePassDegradesWithBits) {
  // Fig. 9a's shape: single-pass clustering cost explodes once 2^B cursors
  // exceed cache/TLB capacity.
  auto hw = P4();
  CpuCosts cpu;
  double at_4 = RadixClusterCost(hw, cpu, 8'000'000, 8, 4, 1).seconds;
  double at_16 = RadixClusterCost(hw, cpu, 8'000'000, 8, 16, 1).seconds;
  EXPECT_GT(at_16, at_4 * 2);
  // Two passes tame the 16-bit clustering.
  double at_16_2p = RadixClusterCost(hw, cpu, 8'000'000, 8, 16, 2).seconds;
  EXPECT_LT(at_16_2p, at_16);
}

TEST(ModelsTest, PartitionedHashJoinHasInteriorOptimum) {
  // Fig. 9b: unclustered join is slow; too many bits do not help further
  // once clusters fit the cache (cost flattens / CPU-bound).
  auto hw = P4();
  CpuCosts cpu;
  double unclustered =
      PartitionedHashJoinCost(hw, cpu, 4'000'000, 4'000'000, 8, 0).seconds;
  double at_10 =
      PartitionedHashJoinCost(hw, cpu, 4'000'000, 4'000'000, 8, 10).seconds;
  EXPECT_GT(unclustered, at_10 * 2);
}

TEST(ModelsTest, PositionalJoinImprovesThenFlattens) {
  // Fig. 9c: clustering the index reduces positional-join cost until the
  // per-cluster column region fits the cache.
  auto hw = P4();
  CpuCosts cpu;
  double at_0 =
      ClusteredPositionalJoinCost(hw, cpu, 4'000'000, 4'000'000, 4, 0, false)
          .seconds;
  double at_8 =
      ClusteredPositionalJoinCost(hw, cpu, 4'000'000, 4'000'000, 4, 8, false)
          .seconds;
  EXPECT_GT(at_0, at_8 * 2);
  double sorted =
      ClusteredPositionalJoinCost(hw, cpu, 4'000'000, 4'000'000, 4, 0, true)
          .seconds;
  EXPECT_LE(sorted, at_8 * 1.5);
}

TEST(ModelsTest, DeclusterWindowCliffAtCacheSize) {
  // Fig. 7a: decluster cost jumps once the window exceeds the cache.
  auto hw = P4();
  CpuCosts cpu;
  size_t n = 8'000'000;
  double inside =
      RadixDeclusterCost(hw, cpu, n, 4, 8, (256 * 1024) / 4).seconds;
  double outside =
      RadixDeclusterCost(hw, cpu, n, 4, 8, (8 * 1024 * 1024) / 4).seconds;
  EXPECT_GT(outside, inside * 1.5);
}

TEST(ModelsTest, DeclusterDegradesWithTinyWindows) {
  // Small windows mean many sweeps over the cluster cursors.
  auto hw = P4();
  CpuCosts cpu;
  size_t n = 8'000'000;
  double tiny = RadixDeclusterCost(hw, cpu, n, 4, 12, 1024).seconds;
  double good = RadixDeclusterCost(hw, cpu, n, 4, 12, (256 * 1024) / 4).seconds;
  EXPECT_GT(tiny, good);
}

TEST(ModelsTest, StreamingDeclusterConvergesToMaterializing) {
  // chunk_rows >= N is the materializing execution as a degenerate plan;
  // the streamed model must predict (essentially) the same cost there.
  auto hw = P4();
  CpuCosts cpu;
  size_t n = 8'000'000;
  size_t window = (256 * 1024) / 4;
  double mat = RadixDeclusterCost(hw, cpu, n, 4, 10, window).seconds;
  double one_chunk =
      StreamingRadixDeclusterCost(hw, cpu, n, 4, 10, window, n).seconds;
  EXPECT_NEAR(one_chunk, mat, mat * 0.01);
}

TEST(ModelsTest, StreamingDeclusterChargesPerChunkTraversals) {
  // Smaller chunks mean more per-chunk window sweeps and task hand-offs:
  // the model's overhead must grow monotonically as chunks shrink, and
  // every streamed prediction stays at or above the materializing one.
  auto hw = P4();
  CpuCosts cpu;
  size_t n = 8'000'000;
  size_t window = (256 * 1024) / 4;
  double mat = RadixDeclusterCost(hw, cpu, n, 4, 10, window).seconds;
  double prev = mat;
  for (size_t chunk : {n, n / 4, n / 16, n / 64, n / 256}) {
    double streamed =
        StreamingRadixDeclusterCost(hw, cpu, n, 4, 10, window, chunk).seconds;
    EXPECT_GE(streamed, mat * 0.999) << "chunk=" << chunk;
    EXPECT_GE(streamed, prev * 0.999) << "chunk=" << chunk;
    prev = streamed;
  }
  // But the overhead stays moderate at the default (cache-sized) chunk:
  // streaming is modeled as a memory-bound win, not a cost cliff.
  size_t cache_chunk = hw.target_cache().capacity_bytes / 4;
  double cache_sized =
      StreamingRadixDeclusterCost(hw, cpu, n, 4, 10, window, cache_chunk)
          .seconds;
  EXPECT_LT(cache_sized, mat * 2.0);
}

TEST(ModelsTest, JiveJoinsHaveOpposingBitPreferences) {
  // Figs. 9e/9f: Left Jive degrades with more clusters (cursor thrash),
  // Right Jive degrades with fewer (fetch region exceeds cache).
  auto hw = P4();
  CpuCosts cpu;
  size_t n = 4'000'000;
  double left_few = LeftJiveJoinCost(hw, cpu, n, n, 4, 4).seconds;
  double left_many = LeftJiveJoinCost(hw, cpu, n, n, 4, 16).seconds;
  EXPECT_GT(left_many, left_few);
  double right_few = RightJiveJoinCost(hw, cpu, n, n, 4, 2).seconds;
  double right_many = RightJiveJoinCost(hw, cpu, n, n, 4, 10).seconds;
  EXPECT_GT(right_few, right_many);
}

}  // namespace
}  // namespace radix::costmodel
