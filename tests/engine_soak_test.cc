// Wall-clock soak of the concurrent serving path: several clients run a
// seeded random mix of query shapes against one shared engine (admission
// budget + plan cache + priorities all on) for a configurable duration,
// verifying every single result against precomputed serial checksums.
//
// Carries the `soak` CTest label (excluded from the default run alongside
// its `threaded` label, which routes it into the TSan CI job). Duration
// scales with RADIX_SOAK_MS — the default keeps `ctest -L soak` quick for
// local runs; the nightly CI job raises it to minutes.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "hardware/memory_hierarchy.h"
#include "project/executor.h"
#include "workload/generator.h"

namespace radix::engine {
namespace {

using project::JoinStrategy;

size_t SoakMillis() {
  if (const char* env = std::getenv("RADIX_SOAK_MS")) {
    const long ms = std::atol(env);
    if (ms > 0) return static_cast<size_t>(ms);
  }
  return 1500;  // default: long enough to interleave, short enough for ctest
}

workload::JoinWorkload MakeW(size_t n, uint64_t seed) {
  workload::JoinWorkloadSpec spec;
  spec.cardinality = n;
  spec.num_attrs = 4;
  spec.hit_rate = 1.0;
  spec.seed = seed;
  spec.varchar.num_cols = 1;
  return workload::MakeJoinWorkload(spec);
}

struct SoakQuery {
  const workload::JoinWorkload* workload;
  QuerySpec spec;
  uint64_t checksum;
  size_t cardinality;
};

TEST(EngineSoakTest, MixedShapesUnderLoadStayCorrect) {
  // The mix: mostly point-ish queries with a heavy and a varchar shape
  // sprinkled in, the distribution each client samples from with its own
  // seeded RNG (deterministic schedule per client, racy interleaving
  // between clients — which is the point).
  workload::JoinWorkload small = MakeW(1 << 11, /*seed=*/7);
  workload::JoinWorkload medium = MakeW(1 << 13, /*seed=*/19);
  workload::JoinWorkload heavy = MakeW(1 << 15, /*seed=*/31);

  std::vector<SoakQuery> mix;
  {
    SoakQuery q{&small, QuerySpec{}, 0, 0};  // point query
    mix.push_back(q);
  }
  {
    SoakQuery q{&medium, QuerySpec{}, 0, 0};  // mid-size, 2 columns/side
    q.spec.pi_left = 2;
    q.spec.pi_right = 2;
    mix.push_back(q);
  }
  {
    SoakQuery q{&medium, QuerySpec{}, 0, 0};  // comparison strategy
    q.spec.strategy = JoinStrategy::kDsmPrePhash;
    mix.push_back(q);
  }
  {
    SoakQuery q{&small, QuerySpec{}, 0, 0};  // varchar projection
    q.spec.pi_varchar_right = 1;
    mix.push_back(q);
  }
  {
    SoakQuery q{&heavy, QuerySpec{}, 0, 0};  // the heavy normal-priority one
    q.spec.pi_left = 2;
    q.spec.pi_right = 2;
    mix.push_back(q);
  }
  // Sampling weights: index into `mix` — point-heavy like a real serving
  // mix, so high-priority grains constantly overtake the heavy query.
  const std::vector<size_t> weights = {0, 0, 0, 0, 1, 1, 2, 3, 3, 4};

  EngineConfig serial_cfg;
  serial_cfg.hierarchy = hardware::MemoryHierarchy::Pentium4();
  Engine serial(serial_cfg);
  for (SoakQuery& q : mix) {
    project::QueryRun run = serial.Execute(*q.workload, q.spec);
    q.checksum = run.checksum;
    q.cardinality = run.result_cardinality;
  }

  EngineConfig cfg = serial_cfg;
  cfg.num_threads = 2;
  cfg.point_query_rows_threshold = 1 << 13;  // heavy shape runs 'normal'
  // Budget sized so the heavy materializing queries take turns but nothing
  // is ever rejected: the largest reservation is the heavy shape's
  // materialized intermediates, well under 8 MiB at 1<<15 rows.
  cfg.admission_budget_bytes = size_t{8} << 20;
  cfg.plan_cache_capacity = 8;
  Engine eng(cfg);
  for (const SoakQuery& q : mix) {
    ASSERT_LE(eng.Prepare(*q.workload, q.spec).Explain()
                  .modeled_intermediate_bytes,
              cfg.admission_budget_bytes);
  }

  const size_t duration_ms = SoakMillis();
  constexpr size_t kClients = 4;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> executed{0};
  std::atomic<uint64_t> wrong{0};
  std::atomic<uint64_t> errored{0};

  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937_64 rng(0x50AC + c);
      while (!stop.load(std::memory_order_relaxed)) {
        const SoakQuery& q = mix[weights[rng() % weights.size()]];
        project::QueryRun run;
        Status status = eng.Prepare(*q.workload, q.spec).Execute(&run);
        if (!status.ok()) {
          errored.fetch_add(1);
          continue;
        }
        executed.fetch_add(1);
        if (run.checksum != q.checksum ||
            run.result_cardinality != q.cardinality) {
          wrong.fetch_add(1);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true);
  for (auto& t : clients) t.join();

  EXPECT_EQ(errored.load(), 0u);
  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_GT(executed.load(), 0u);

  EngineStats stats = eng.Stats();
  EXPECT_EQ(stats.queries_executed, executed.load());
  EXPECT_EQ(stats.admission.reserved_bytes, 0u);
  EXPECT_EQ(stats.admission.waiting, 0u);
  EXPECT_LE(stats.admission.peak_reserved_bytes, cfg.admission_budget_bytes);
  EXPECT_EQ(stats.admission.rejected, 0u);
  // Five shapes, hammered for the whole soak: the cache must be serving.
  EXPECT_GT(stats.plan_cache_hits, 0u);
}

}  // namespace
}  // namespace radix::engine
