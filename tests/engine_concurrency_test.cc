// Multi-client stress tests for the concurrent serving path: N client
// threads share one Engine (one pool, one admission gate, one plan cache)
// and every result is checksum-verified against the single-threaded serial
// execution of the same (shape, seed). The suite carries the `threaded`
// CTest label, so the TSan CI job races it by construction.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "engine/engine.h"
#include "hardware/memory_hierarchy.h"
#include "project/executor.h"
#include "workload/generator.h"

namespace radix::engine {
namespace {

using project::JoinStrategy;

hardware::MemoryHierarchy P4() {
  return hardware::MemoryHierarchy::Pentium4();
}

EngineConfig P4Config(size_t threads) {
  EngineConfig cfg;
  cfg.hierarchy = P4();
  cfg.num_threads = threads;
  return cfg;
}

workload::JoinWorkload MakeW(size_t n, uint64_t seed) {
  workload::JoinWorkloadSpec spec;
  spec.cardinality = n;
  spec.num_attrs = 4;
  spec.hit_rate = 1.0;
  spec.seed = seed;
  spec.varchar.num_cols = 1;  // shape 2 projects a varchar column
  return workload::MakeJoinWorkload(spec);
}

/// The three query shapes of the stress mix: the paper's DSM
/// post-projection query, a pre-projection comparison strategy (serial
/// kernels, exercises admission + cache without the pool), and a varchar
/// projection (Fig. 12 paged decluster, string bytes in the checksum).
std::vector<QuerySpec> StressShapes() {
  std::vector<QuerySpec> shapes(3);
  shapes[0].strategy = JoinStrategy::kDsmPostDecluster;
  shapes[0].pi_left = 2;
  shapes[0].pi_right = 2;
  shapes[1].strategy = JoinStrategy::kDsmPrePhash;
  shapes[1].pi_left = 1;
  shapes[1].pi_right = 1;
  shapes[2].strategy = JoinStrategy::kDsmPostDecluster;
  shapes[2].pi_left = 1;
  shapes[2].pi_right = 1;
  shapes[2].pi_varchar_right = 1;
  return shapes;
}

constexpr uint64_t kSeeds[] = {7, 19, 31};
constexpr size_t kStressN = 1 << 12;

struct Expected {
  uint64_t checksum;
  size_t cardinality;
};

/// Serial ground truth, computed once per process on a single-threaded
/// engine: expected[shape][seed-index].
const std::vector<std::vector<Expected>>& SerialExpectations(
    const std::vector<workload::JoinWorkload>& workloads) {
  static std::vector<std::vector<Expected>> expected = [&] {
    Engine serial(P4Config(/*threads=*/1));
    std::vector<QuerySpec> shapes = StressShapes();
    std::vector<std::vector<Expected>> out(shapes.size());
    for (size_t s = 0; s < shapes.size(); ++s) {
      for (const workload::JoinWorkload& w : workloads) {
        project::QueryRun run = serial.Execute(w, shapes[s]);
        out[s].push_back(Expected{run.checksum, run.result_cardinality});
      }
    }
    return out;
  }();
  return expected;
}

const std::vector<workload::JoinWorkload>& StressWorkloads() {
  static std::vector<workload::JoinWorkload> workloads = [] {
    std::vector<workload::JoinWorkload> out;
    for (uint64_t seed : kSeeds) out.push_back(MakeW(kStressN, seed));
    return out;
  }();
  return workloads;
}

/// The core stress loop: `clients` threads hammer one shared engine with a
/// deterministic interleaving of shape x seed, each result cross-checked
/// against the serial expectation.
void RunStress(Engine& eng, size_t clients, size_t queries_per_client) {
  const std::vector<workload::JoinWorkload>& workloads = StressWorkloads();
  const std::vector<std::vector<Expected>>& expected =
      SerialExpectations(workloads);
  std::vector<QuerySpec> shapes = StressShapes();

  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (size_t q = 0; q < queries_per_client; ++q) {
        // Deterministic per-client schedule that still differs between
        // clients, so shapes and seeds collide across threads.
        size_t shape = (c + q) % shapes.size();
        size_t seed = (c + 2 * q) % std::size(kSeeds);
        project::QueryRun run;
        Status status =
            eng.Prepare(workloads[seed], shapes[shape]).Execute(&run);
        if (!status.ok()) {
          failures.fetch_add(1);
          continue;
        }
        const Expected& want = expected[shape][seed];
        if (run.checksum != want.checksum ||
            run.result_cardinality != want.cardinality) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  EngineStats stats = eng.Stats();
  EXPECT_EQ(stats.queries_executed, clients * queries_per_client);
  EXPECT_EQ(stats.admission.reserved_bytes, 0u);  // everything released
}

TEST(EngineConcurrencyTest, TwoClientsMatchSerialChecksums) {
  Engine eng(P4Config(/*threads=*/2));
  RunStress(eng, /*clients=*/2, /*queries_per_client=*/6);
}

TEST(EngineConcurrencyTest, FourClientsMatchSerialChecksums) {
  Engine eng(P4Config(/*threads=*/2));
  RunStress(eng, /*clients=*/4, /*queries_per_client=*/4);
}

TEST(EngineConcurrencyTest, EightClientsMatchSerialChecksums) {
  Engine eng(P4Config(/*threads=*/2));
  RunStress(eng, /*clients=*/8, /*queries_per_client=*/3);
}

TEST(EngineConcurrencyTest, EightClientsOnSerialEngineMatchSerialChecksums) {
  // No pool at all: concurrency comes purely from the client threads, so
  // this isolates the engine bookkeeping (cache, admission, stats) from
  // the shared-pool scheduling.
  Engine eng(P4Config(/*threads=*/1));
  RunStress(eng, /*clients=*/8, /*queries_per_client=*/3);
}

TEST(EngineConcurrencyTest, PointQueriesCompleteWhileHeavyQueryRuns) {
  // A heavy (normal-priority) query must not starve point-ish
  // (high-priority) queries sharing the pool — and, the other way, the
  // point queries' grains must not starve the heavy query: everyone
  // completes with correct results.
  EngineConfig cfg = P4Config(/*threads=*/2);
  cfg.point_query_rows_threshold = 1 << 10;  // heavy below is 'normal'
  Engine eng(cfg);

  workload::JoinWorkload heavy_w = MakeW(1 << 15, /*seed=*/3);
  workload::JoinWorkload point_w = MakeW(1 << 10, /*seed=*/5);
  QuerySpec heavy_spec;
  heavy_spec.pi_left = 2;
  heavy_spec.pi_right = 2;
  QuerySpec point_spec;

  PreparedQuery heavy = eng.Prepare(heavy_w, heavy_spec);
  PreparedQuery point = eng.Prepare(point_w, point_spec);
  EXPECT_FALSE(heavy.Explain().high_priority);
  EXPECT_TRUE(point.Explain().high_priority);

  Engine serial(P4Config(/*threads=*/1));
  const uint64_t heavy_sum = serial.Execute(heavy_w, heavy_spec).checksum;
  const uint64_t point_sum = serial.Execute(point_w, point_spec).checksum;

  std::atomic<size_t> bad{0};
  std::thread heavy_client([&] {
    for (int i = 0; i < 3; ++i) {
      if (heavy.Execute().checksum != heavy_sum) bad.fetch_add(1);
    }
  });
  std::vector<std::thread> point_clients;
  for (int c = 0; c < 4; ++c) {
    point_clients.emplace_back([&] {
      for (int i = 0; i < 8; ++i) {
        if (point.Execute().checksum != point_sum) bad.fetch_add(1);
      }
    });
  }
  heavy_client.join();
  for (auto& t : point_clients) t.join();
  EXPECT_EQ(bad.load(), 0u);
}

// ---------------------------------------------------------------------------
// Regression: detail::SharedPoolFor's process-wide pool cache is reachable
// from any number of legacy RunQuery callers at once. Concurrent calls must
// (a) not race (TSan gates this suite), (b) share the cached pools instead
// of constructing new ones, and (c) still compute serial-identical results
// even though their ParallelFor grains interleave on the SAME pool — the
// old pool-wide Wait() could block one query behind every other query's
// tasks.
// ---------------------------------------------------------------------------

TEST(SharedPoolConcurrencyTest, ConcurrentLegacyCallsShareCachedPools) {
  const hardware::MemoryHierarchy hw = P4();
  const workload::JoinWorkload& w = StressWorkloads()[0];

  project::QueryOptions serial_opts;
  serial_opts.pi_left = 2;
  serial_opts.pi_right = 2;
  const project::QueryRun serial = project::RunQuery(
      w, JoinStrategy::kDsmPostDecluster, serial_opts, hw);

  project::QueryOptions par_opts = serial_opts;
  par_opts.num_threads = 2;
  // Warm the cache so the steady state is measurable.
  ASSERT_EQ(project::RunQuery(w, JoinStrategy::kDsmPostDecluster, par_opts,
                              hw)
                .checksum,
            serial.checksum);

  const uint64_t pools_before = ThreadPool::TotalConstructed();
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&] {
      for (int i = 0; i < 3; ++i) {
        project::QueryRun run = project::RunQuery(
            w, JoinStrategy::kDsmPostDecluster, par_opts, hw);
        if (run.checksum != serial.checksum ||
            run.result_cardinality != serial.result_cardinality) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
  // Zero pool constructions under concurrent legacy load: the cache serves
  // every call.
  EXPECT_EQ(ThreadPool::TotalConstructed(), pools_before);
}

}  // namespace
}  // namespace radix::engine
