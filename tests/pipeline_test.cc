// Tests for the pipeline/ streaming chunked execution subsystem: chunk
// planning, the memory gauge, the bounded-ring executor, the incremental
// (chunked) decluster merge, and the end-to-end streamed projection —
// including the headline invariant that peak intermediate bytes are
// O(chunk_rows * columns), independent of N.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <vector>

#include "cluster/radix_cluster.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "decluster/radix_decluster.h"
#include "hardware/memory_hierarchy.h"
#include "join/partitioned_hash_join.h"
#include "pipeline/chunk.h"
#include "pipeline/executor.h"
#include "pipeline/memory_gauge.h"
#include "project/dsm_post.h"
#include "project/executor.h"
#include "workload/generator.h"

namespace radix {
namespace {

using cluster::ClusterBorders;
using pipeline::ChunkDesc;
using pipeline::ChunkPlan;

ClusterBorders BordersFromSizes(const std::vector<uint64_t>& sizes) {
  ClusterBorders b;
  b.offsets.push_back(0);
  for (uint64_t s : sizes) b.offsets.push_back(b.offsets.back() + s);
  return b;
}

TEST(PipelineChunkPlan, ClusterAlignedChunksPartitionTheClusters) {
  Rng rng(11);
  for (int round = 0; round < 20; ++round) {
    size_t num_clusters = 1 + rng.Below(200);
    std::vector<uint64_t> sizes(num_clusters);
    for (auto& s : sizes) s = rng.Below(50);  // empties included
    ClusterBorders borders = BordersFromSizes(sizes);
    size_t target = 1 + rng.Below(300);
    ChunkPlan plan = pipeline::MakeClusterAlignedChunks(borders, target);

    EXPECT_EQ(plan.total_rows, borders.total());
    size_t rows_seen = 0;
    size_t next_cluster = SIZE_MAX;
    size_t max_rows = 0;
    for (size_t i = 0; i < plan.chunks.size(); ++i) {
      const ChunkDesc& d = plan.chunks[i];
      EXPECT_EQ(d.index, i);
      // Cluster-aligned: chunk boundaries sit exactly on cluster borders.
      EXPECT_EQ(d.row_begin, borders.start(d.cluster_begin));
      EXPECT_EQ(d.row_end, borders.end(d.cluster_end - 1));
      EXPECT_GT(d.rows(), 0u);
      // Chunks only exceed the target when a single cluster does.
      if (d.rows() > target) {
        uint64_t biggest = 0;
        for (size_t c = d.cluster_begin; c < d.cluster_end; ++c) {
          biggest = std::max(biggest, borders.size(c));
        }
        EXPECT_GT(biggest, target);
      }
      if (i > 0) {
        EXPECT_EQ(d.cluster_begin, next_cluster);
      }
      next_cluster = d.cluster_end;
      rows_seen += d.rows();
      max_rows = std::max(max_rows, d.rows());
    }
    EXPECT_EQ(rows_seen, borders.total());
    EXPECT_EQ(plan.max_rows, max_rows);
  }
}

TEST(PipelineChunkPlan, EdgeCases) {
  // chunk_rows >= N: one chunk (the materializing execution as a plan).
  ClusterBorders b = BordersFromSizes({3, 0, 5, 2});
  ChunkPlan one = pipeline::MakeClusterAlignedChunks(b, 100);
  ASSERT_EQ(one.chunks.size(), 1u);
  EXPECT_EQ(one.chunks[0].rows(), 10u);
  EXPECT_EQ(one.chunks[0].cluster_end, 4u);
  // Same for target 0 (auto: single chunk).
  EXPECT_EQ(pipeline::MakeClusterAlignedChunks(b, 0).chunks.size(), 1u);

  // chunk_rows = 1: one chunk per non-empty cluster.
  ChunkPlan fine = pipeline::MakeClusterAlignedChunks(b, 1);
  ASSERT_EQ(fine.chunks.size(), 3u);
  EXPECT_EQ(fine.max_rows, 5u);

  // Empty borders / all-empty clusters.
  EXPECT_TRUE(
      pipeline::MakeClusterAlignedChunks(ClusterBorders{}, 8).chunks.empty());
  EXPECT_TRUE(pipeline::MakeClusterAlignedChunks(BordersFromSizes({0, 0}), 8)
                  .chunks.empty());

  // Row chunks: exact cover, last chunk short.
  ChunkPlan rows = pipeline::MakeRowChunks(10, 4);
  ASSERT_EQ(rows.chunks.size(), 3u);
  EXPECT_EQ(rows.chunks[2].row_begin, 8u);
  EXPECT_EQ(rows.chunks[2].row_end, 10u);
  EXPECT_EQ(rows.max_rows, 4u);
  EXPECT_TRUE(pipeline::MakeRowChunks(0, 4).chunks.empty());
  EXPECT_EQ(pipeline::MakeRowChunks(10, 0).chunks.size(), 1u);
}

TEST(PipelineMemory, GaugeTracksCurrentAndPeak) {
  pipeline::MemoryGauge& g = pipeline::MemoryGauge::Instance();
  size_t base = g.current_bytes();
  g.ResetPeak();
  {
    pipeline::ChunkArena a;
    a.Reset(3, 100);
    EXPECT_EQ(g.current_bytes(), base + 3 * 100 * sizeof(value_t));
    a.Reset(2, 10);  // shrink: current drops, peak stays
    EXPECT_EQ(g.current_bytes(), base + 2 * 10 * sizeof(value_t));
    EXPECT_GE(g.peak_bytes(), base + 3 * 100 * sizeof(value_t));
  }
  EXPECT_EQ(g.current_bytes(), base);  // destructor released
}

TEST(PipelineDecluster, ChunkedMergeMatchesFullMerge) {
  // Splitting the clusters into arbitrary chunk ranges and merging each
  // chunk with chunk-local values must reproduce the full RadixDecluster.
  Rng rng(13);
  for (int round = 0; round < 10; ++round) {
    size_t n = 2000 + rng.Below(20000);
    struct KeyPos {
      oid_t key, pos;
    };
    std::vector<KeyPos> pairs(n);
    for (size_t i = 0; i < n; ++i) {
      pairs[i] = {static_cast<oid_t>(rng.Below(n)), static_cast<oid_t>(i)};
    }
    radix_bits_t sig = SignificantBits(n);
    radix_bits_t bits = 1 + static_cast<radix_bits_t>(rng.Below(8));
    if (bits > sig) bits = sig;
    cluster::ClusterSpec spec{.total_bits = bits,
                              .ignore_bits =
                                  static_cast<radix_bits_t>(sig - bits),
                              .passes = 1};
    std::vector<KeyPos> scratch(n);
    simcache::NoTracer nt;
    auto radix_of = [](const KeyPos& p) -> uint64_t { return p.key; };
    ClusterBorders borders = cluster::RadixClusterMultiPass(
        pairs.data(), scratch.data(), n, radix_of, spec, nt);

    std::vector<value_t> values(n);
    std::vector<oid_t> positions(n);
    for (size_t i = 0; i < n; ++i) {
      values[i] = static_cast<value_t>(pairs[i].pos * 31 + 7);
      positions[i] = pairs[i].pos;
    }
    size_t window = 1 + rng.Below(4096);
    std::vector<value_t> expected(n, -1);
    decluster::RadixDecluster<value_t>(values, positions,
                                       decluster::MakeCursors(borders), window,
                                       std::span<value_t>(expected));

    size_t target = 1 + rng.Below(n);
    ChunkPlan plan = pipeline::MakeClusterAlignedChunks(borders, target);
    std::vector<value_t> result(n, -2);
    for (const ChunkDesc& d : plan.chunks) {
      // Chunk-local copy of the values, as the gather stage would produce.
      std::vector<value_t> chunk_vals(values.begin() + d.row_begin,
                                      values.begin() + d.row_end);
      decluster::RadixDeclusterChunk<value_t>(
          chunk_vals.data(), d.row_begin, positions,
          decluster::MakeCursorsForRange(borders, d.cluster_begin,
                                         d.cluster_end),
          window, std::span<value_t>(result));
    }
    ASSERT_EQ(result, expected) << "round " << round << " target " << target;
  }
}

// A stage that records which chunks it saw; used to test the executor's
// scheduling contract rather than any query semantics.
class CountingStage : public pipeline::ChunkStage {
 public:
  explicit CountingStage(std::vector<std::atomic<int>>* counts)
      : counts_(counts) {}
  void Run(pipeline::WorkChunk& chunk) override {
    (*counts_)[chunk.desc.index].fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::vector<std::atomic<int>>* counts_;
};

TEST(PipelineExecutor, RunsEveryChunkExactlyOnceAcrossConfigs) {
  ChunkPlan plan = pipeline::MakeRowChunks(9973, 100);
  for (size_t threads : {1u, 2u, 4u}) {
    for (size_t ring : {0u, 1u, 2u, 8u}) {
      ThreadPool pool(threads);
      pipeline::ExecutorOptions opts;
      opts.pool = &pool;
      opts.ring_slots = ring;
      std::vector<std::atomic<int>> gathered(plan.chunks.size());
      std::vector<std::atomic<int>> sunk(plan.chunks.size());
      CountingStage gather(&gathered);
      CountingStage sink(&sunk);
      pipeline::StreamingExecutor exec(opts);
      pipeline::PipelineStats stats;
      exec.Run(plan, gather, &sink, &stats);
      EXPECT_EQ(stats.chunks, plan.chunks.size());
      EXPECT_GE(stats.ring_slots, 1u);
      if (ring != 0) {
        EXPECT_LE(stats.ring_slots, ring);
      }
      for (size_t i = 0; i < plan.chunks.size(); ++i) {
        ASSERT_EQ(gathered[i].load(), 1) << "threads=" << threads;
        ASSERT_EQ(sunk[i].load(), 1) << "threads=" << threads;
      }
    }
  }
}

TEST(PipelineExecutor, EmptyPlanIsANoOp) {
  pipeline::ExecutorOptions opts;
  pipeline::StreamingExecutor exec(opts);
  std::vector<std::atomic<int>> counts;
  CountingStage gather(&counts);
  pipeline::PipelineStats stats;
  exec.Run(ChunkPlan{}, gather, nullptr, &stats);
  EXPECT_EQ(stats.chunks, 0u);
}

workload::JoinWorkload SmallWorkload(size_t n, size_t attrs, uint64_t seed) {
  workload::JoinWorkloadSpec spec;
  spec.cardinality = n;
  spec.num_attrs = attrs;
  spec.hit_rate = 1.0;
  spec.seed = seed;
  spec.build_nsm = false;
  return workload::MakeJoinWorkload(spec);
}

TEST(PipelineStreaming, ResultColumnsByteIdenticalToMaterializing) {
  auto hw = hardware::MemoryHierarchy::Pentium4();
  workload::JoinWorkload w = SmallWorkload(30000, 4, 5);
  join::JoinIndex index_a = join::PartitionedHashJoin(
      w.dsm_left.key().span(), w.dsm_right.key().span(), hw);
  join::JoinIndex index_b(index_a.pairs());

  project::DsmPostOptions popts;
  popts.left = project::SideStrategy::kClustered;
  popts.right = project::SideStrategy::kDecluster;
  storage::DsmResult mat = project::DsmPostProject(
      index_a, w.dsm_left, w.dsm_right, 3, 3, hw, popts);
  storage::DsmResult streamed = project::DsmPostProjectStreaming(
      index_b, w.dsm_left, w.dsm_right, 3, 3, hw, popts,
      /*chunk_rows=*/4096);

  ASSERT_EQ(streamed.cardinality, mat.cardinality);
  for (size_t a = 0; a < 3; ++a) {
    ASSERT_EQ(0, std::memcmp(streamed.left_columns[a].data(),
                             mat.left_columns[a].data(),
                             mat.left_columns[a].size_bytes()))
        << "left column " << a;
    ASSERT_EQ(0, std::memcmp(streamed.right_columns[a].data(),
                             mat.right_columns[a].data(),
                             mat.right_columns[a].size_bytes()))
        << "right column " << a;
  }
}

// The acceptance-criteria test: peak intermediate bytes of the streamed
// projection are bounded by ring_slots * chunk_rows * columns — and stay
// flat when N quadruples — where the materializing projector's clustered
// value buffer alone is N * sizeof(value_t). Radix bits are pinned so
// cluster (and therefore chunk) granularity is deterministic; with auto
// bits the partial-cluster spec keeps clusters around half the cache, so
// the bound holds with chunk_rows ~ cache instead.
TEST(PipelineStreaming, PeakIntermediateBytesBoundedByChunkNotByN) {
  auto hw = hardware::MemoryHierarchy::Pentium4();
  constexpr size_t kChunkRows = 4096;
  constexpr size_t kPi = 3;
  constexpr radix_bits_t kRightBits = 9;  // ~N/512 rows per cluster
  pipeline::MemoryGauge& gauge = pipeline::MemoryGauge::Instance();

  auto peak_for = [&](size_t n, size_t threads) {
    workload::JoinWorkload w = SmallWorkload(n, kPi + 1, 17);
    join::JoinIndex index = join::PartitionedHashJoin(
        w.dsm_left.key().span(), w.dsm_right.key().span(), hw);
    join::JoinIndex index_ref(index.pairs());
    project::DsmPostOptions popts;
    popts.left = project::SideStrategy::kClustered;
    popts.right = project::SideStrategy::kDecluster;
    popts.right_bits = kRightBits;
    popts.num_threads = threads;
    gauge.ResetPeak();
    size_t before = gauge.current_bytes();
    storage::DsmResult streamed = project::DsmPostProjectStreaming(
        index, w.dsm_left, w.dsm_right, kPi, kPi, hw, popts, kChunkRows);
    size_t peak = gauge.peak_bytes() - before;
    // While here: the streamed result matches the materializing reference.
    storage::DsmResult ref = project::DsmPostProject(
        index_ref, w.dsm_left, w.dsm_right, kPi, kPi, hw, popts);
    EXPECT_EQ(streamed.cardinality, ref.cardinality);
    EXPECT_EQ(0, std::memcmp(streamed.right_columns[0].data(),
                             ref.right_columns[0].data(),
                             ref.right_columns[0].size_bytes()));
    return peak;
  };

  for (size_t threads : {1u, 4u}) {
    size_t small_n = 1u << 16;
    size_t large_n = 1u << 18;
    size_t peak_small = peak_for(small_n, threads);
    size_t peak_large = peak_for(large_n, threads);

    // Ring bound: auto ring is threads + 2 (threaded) or 1 (serial); a
    // chunk overshoots kChunkRows by at most one cluster (N / 2^bits rows).
    size_t ring = threads > 1 ? threads + 2 : 1;
    size_t max_chunk = kChunkRows + (large_n >> kRightBits);
    size_t bound = ring * kPi * max_chunk * sizeof(value_t);
    EXPECT_GT(peak_small, 0u) << "threads=" << threads;
    EXPECT_LE(peak_small, bound) << "threads=" << threads;
    EXPECT_LE(peak_large, bound) << "threads=" << threads;
    // Independent of N: quadrupling the relation leaves the peak exactly
    // flat (the permutation keys cluster evenly, so chunk shapes are
    // identical), where a materializing O(N * columns) intermediate would
    // have quadrupled.
    EXPECT_EQ(peak_small, peak_large) << "threads=" << threads;
    EXPECT_LT(peak_large, kPi * large_n * sizeof(value_t) / 4)
        << "threads=" << threads;
  }
}

TEST(PipelineStreaming, OverlapAwarePhasesStayWithinWallClock) {
  auto hw = hardware::MemoryHierarchy::Pentium4();
  workload::JoinWorkload w = SmallWorkload(60000, 4, 23);
  project::QueryOptions opts;
  opts.pi_left = 3;
  opts.pi_right = 3;
  opts.num_threads = 4;
  opts.chunk_rows = 2048;

  project::QueryRun streamed = project::RunQueryStreaming(
      w, project::JoinStrategy::kDsmPostDecluster, opts, hw);
  EXPECT_GT(streamed.phases.pipeline_wall_seconds, 0.0);
  EXPECT_TRUE(streamed.phases.overlapped());
  // The overlapped sections count by wall time in total(), so phases no
  // longer sum past the run (generous slack: timer granularity and
  // scheduling noise on loaded CI machines).
  EXPECT_LE(streamed.phases.total(), streamed.seconds * 1.25 + 0.05);

  project::QueryRun mat = project::RunQuery(
      w, project::JoinStrategy::kDsmPostDecluster, opts, hw);
  EXPECT_EQ(mat.phases.pipeline_wall_seconds, 0.0);
  EXPECT_FALSE(mat.phases.overlapped());
  EXPECT_DOUBLE_EQ(mat.phases.total(), mat.phases.busy_total());
}

TEST(PipelineStreaming, FallsBackForStrategiesWithoutAStreamingPath) {
  auto hw = hardware::MemoryHierarchy::Pentium4();
  workload::JoinWorkloadSpec spec;
  spec.cardinality = 8000;
  spec.num_attrs = 3;
  spec.seed = 9;
  workload::JoinWorkload w = workload::MakeJoinWorkload(spec);
  project::QueryOptions opts;
  opts.pi_left = 2;
  opts.pi_right = 2;
  for (auto strategy : {project::JoinStrategy::kDsmPrePhash,
                        project::JoinStrategy::kNsmPostDecluster}) {
    project::QueryRun s = project::RunQueryStreaming(w, strategy, opts, hw);
    project::QueryRun m = project::RunQuery(w, strategy, opts, hw);
    EXPECT_EQ(s.checksum, m.checksum);
    EXPECT_EQ(s.result_cardinality, m.result_cardinality);
  }
}

}  // namespace
}  // namespace radix
