// Tests for the NSM pre-projection pipeline: scan extraction, row-wise
// radix clustering, and both hash-join flavours over row intermediates.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/bits.h"
#include "common/hash.h"
#include "common/rng.h"
#include "hardware/memory_hierarchy.h"
#include "join/nsm_join.h"
#include "workload/generator.h"

namespace radix::join {
namespace {

storage::NsmRelation MakeRelation(size_t n, size_t omega, uint64_t seed) {
  storage::NsmRelation rel("t", n, omega);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    value_t key = static_cast<value_t>(rng.Below(n));
    rel.record(i)[0] = key;
    for (size_t a = 1; a < omega; ++a) {
      rel.record(i)[a] = workload::PayloadValue(key, a + seed);
    }
  }
  return rel;
}

TEST(NsmScanTest, ExtractsKeyAndLeadingAttrs) {
  auto rel = MakeRelation(500, 8, 1);
  auto inter = NsmPreProjection::Scan(rel, 3);
  ASSERT_EQ(inter.rows, 500u);
  ASSERT_EQ(inter.width, 4u);
  for (size_t i = 0; i < inter.rows; ++i) {
    const value_t* row = inter.row(i);
    EXPECT_EQ(row[0], rel.key(i));
    for (size_t a = 0; a < 3; ++a) {
      EXPECT_EQ(row[1 + a], rel.attr(i, 1 + a));
    }
  }
}

TEST(NsmScanTest, PiZeroKeepsOnlyKeys) {
  auto rel = MakeRelation(100, 4, 2);
  auto inter = NsmPreProjection::Scan(rel, 0);
  EXPECT_EQ(inter.width, 1u);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(inter.row(i)[0], rel.key(i));
  }
}

class ClusterRowsSweep
    : public ::testing::TestWithParam<std::tuple<size_t, radix_bits_t, uint32_t>> {};

TEST_P(ClusterRowsSweep, RowsLandInHashBuckets) {
  auto [pi, bits, passes] = GetParam();
  auto rel = MakeRelation(4000, 8, 3);
  auto inter = NsmPreProjection::Scan(rel, pi);
  // Keep a reference multiset of rows to verify permutation-ness.
  std::multiset<std::vector<value_t>> before;
  for (size_t i = 0; i < inter.rows; ++i) {
    before.emplace(inter.row(i), inter.row(i) + inter.width);
  }
  auto offsets = NsmPreProjection::ClusterRows(inter, bits, passes);
  ASSERT_EQ(offsets.size(), (size_t{1} << bits) + 1);
  EXPECT_EQ(offsets.back(), inter.rows);
  std::multiset<std::vector<value_t>> after;
  for (size_t c = 0; c + 1 < offsets.size(); ++c) {
    for (uint64_t i = offsets[c]; i < offsets[c + 1]; ++i) {
      const value_t* row = inter.row(i);
      // Bucket of hash(key)'s top `bits` of the low `bits` window.
      uint64_t h = KeyHash{}(row[0]);
      EXPECT_EQ(RadixBits(h, 0, bits), c) << "row " << i;
      after.emplace(row, row + inter.width);
    }
  }
  EXPECT_EQ(before, after) << "clustering must permute, not alter, rows";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClusterRowsSweep,
    ::testing::Values(std::tuple<size_t, radix_bits_t, uint32_t>{0, 4, 1},
                      std::tuple<size_t, radix_bits_t, uint32_t>{1, 4, 2},
                      std::tuple<size_t, radix_bits_t, uint32_t>{3, 6, 1},
                      std::tuple<size_t, radix_bits_t, uint32_t>{3, 6, 3},
                      std::tuple<size_t, radix_bits_t, uint32_t>{7, 2, 1}));

TEST(NsmJoinTest, HashAndPartitionedAgree) {
  auto hw = hardware::MemoryHierarchy::Pentium4();
  workload::JoinWorkloadSpec spec;
  spec.cardinality = 5000;
  spec.num_attrs = 4;
  auto w = workload::MakeJoinWorkload(spec);

  auto li1 = NsmPreProjection::Scan(w.nsm_left, 2);
  auto ri1 = NsmPreProjection::Scan(w.nsm_right, 2);
  auto naive = NsmPreProjection::HashJoinRows(li1, ri1);

  auto li2 = NsmPreProjection::Scan(w.nsm_left, 2);
  auto ri2 = NsmPreProjection::Scan(w.nsm_right, 2);
  auto part =
      NsmPreProjection::PartitionedHashJoinRows(li2, ri2, hw, 6, 2);

  ASSERT_EQ(naive.cardinality(), part.cardinality());
  ASSERT_EQ(naive.width(), part.width());
  // Same multiset of result rows (order differs).
  std::multiset<std::vector<value_t>> a, b;
  for (size_t i = 0; i < naive.cardinality(); ++i) {
    a.emplace(naive.row(i), naive.row(i) + naive.width());
    b.emplace(part.row(i), part.row(i) + part.width());
  }
  EXPECT_EQ(a, b);
}

TEST(NsmJoinTest, ResultRowsPairMatchingTuples) {
  auto hw = hardware::MemoryHierarchy::Pentium4();
  workload::JoinWorkloadSpec spec;
  spec.cardinality = 2000;
  spec.num_attrs = 3;
  spec.hit_rate = 1.0;
  auto w = workload::MakeJoinWorkload(spec);
  auto li = NsmPreProjection::Scan(w.nsm_left, 2);
  auto ri = NsmPreProjection::Scan(w.nsm_right, 2);
  auto result = NsmPreProjection::PartitionedHashJoinRows(li, ri, hw, 4, 1);
  ASSERT_EQ(result.cardinality(), w.expected_result_size);
  // h=1: payloads determined by the shared key. Left attr a carries
  // PayloadValue(key, a); right attr a carries PayloadValue(key, a+1000).
  // Build key -> left-attr-1 map to invert.
  std::map<value_t, value_t> key_by_left1;
  for (size_t i = 0; i < spec.cardinality; ++i) {
    key_by_left1[w.nsm_left.attr(i, 1)] = w.nsm_left.key(i);
  }
  for (size_t i = 0; i < result.cardinality(); ++i) {
    const value_t* row = result.row(i);
    auto it = key_by_left1.find(row[0]);
    ASSERT_NE(it, key_by_left1.end());
    value_t key = it->second;
    EXPECT_EQ(row[1], workload::PayloadValue(key, 2));
    EXPECT_EQ(row[2], workload::PayloadValue(key, 1 + 1000));
    EXPECT_EQ(row[3], workload::PayloadValue(key, 2 + 1000));
  }
}

TEST(NsmJoinTest, EmptyInputs) {
  storage::NsmRelation empty("e", 0, 3);
  auto inter = NsmPreProjection::Scan(empty, 2);
  EXPECT_EQ(inter.rows, 0u);
  auto offsets = NsmPreProjection::ClusterRows(inter, 4, 1);
  EXPECT_EQ(offsets.back(), 0u);
  auto result = NsmPreProjection::HashJoinRows(inter, inter);
  EXPECT_EQ(result.cardinality(), 0u);
}

}  // namespace
}  // namespace radix::join
