// Parameterized sweeps over memory-hierarchy configurations: the planning
// formulas must produce sane, cache-respecting parameters on any machine
// description, not just the paper's Pentium 4 — that hardware-independence
// is the point of the cost-model approach.

#include <gtest/gtest.h>

#include "cluster/partition_plan.h"
#include "decluster/window.h"
#include "hardware/memory_hierarchy.h"
#include "project/planner.h"

namespace radix {
namespace {

using hardware::MemoryHierarchy;

struct HwCase {
  const char* name;
  size_t l1_kb;
  size_t target_kb;
  uint32_t tlb_entries;
};

MemoryHierarchy MakeHw(const HwCase& c) {
  MemoryHierarchy hw;
  hw.cpu_ghz = 2.0;
  hw.caches.push_back({"L1", c.l1_kb * 1024, 64, 8, 5.0});
  hw.caches.push_back({"LL", c.target_kb * 1024, 64, 16, 100.0});
  hw.tlb = {c.tlb_entries, 4096, 0, 25.0};
  hw.ram_seq_bandwidth_gbs = 10.0;
  return hw;
}

class HierarchySweep : public ::testing::TestWithParam<HwCase> {};

TEST_P(HierarchySweep, PartialClusterRegionsFitTargetCache) {
  MemoryHierarchy hw = MakeHw(GetParam());
  for (size_t n : {100'000ul, 1'000'000ul, 16'000'000ul, 256'000'000ul}) {
    radix_bits_t b = cluster::PartialClusterBits(n, sizeof(value_t), hw);
    double region = static_cast<double>(n) * sizeof(value_t) / (1u << b);
    EXPECT_LE(region, hw.target_cache().capacity_bytes)
        << GetParam().name << " n=" << n;
    EXPECT_LE(b, SignificantBits(n));
  }
}

TEST_P(HierarchySweep, PassFanOutRespectsTlbAndL1) {
  MemoryHierarchy hw = MakeHw(GetParam());
  radix_bits_t per_pass = cluster::MaxPassBits(hw);
  EXPECT_LE(size_t{1} << per_pass,
            std::min<size_t>(hw.tlb.entries, hw.l1().num_lines()));
  EXPECT_GE(per_pass, 1u);
}

TEST_P(HierarchySweep, WindowsNeverExceedTargetCache) {
  MemoryHierarchy hw = MakeHw(GetParam());
  for (size_t clusters : {1ul, 256ul, 65536ul}) {
    for (size_t width : {4ul, 16ul, 64ul}) {
      size_t w = decluster::WindowPolicy::ChooseWindowElems(hw, width,
                                                            clusters, 1u << 24);
      EXPECT_LE(w * width, hw.target_cache().capacity_bytes)
          << GetParam().name << " clusters=" << clusters << " width=" << width;
      EXPECT_GE(w, 1u);
    }
  }
}

TEST_P(HierarchySweep, EasyHardBoundaryTracksCacheSize) {
  MemoryHierarchy hw = MakeHw(GetParam());
  size_t fits = hw.target_cache().capacity_bytes / sizeof(value_t);
  EXPECT_TRUE(project::ColumnFitsCache(fits, hw));
  EXPECT_FALSE(project::ColumnFitsCache(fits * 2, hw));
  // Planner: easy joins never engage the radix machinery.
  project::Plan easy = project::PlanDsmPost(fits / 2, fits / 2, fits / 2,
                                            4, 4, hw);
  EXPECT_EQ(easy.code, "u/u");
  project::Plan hard =
      project::PlanDsmPost(fits * 8, fits * 8, fits * 8, 4, 4, hw);
  EXPECT_EQ(hard.code, "c/d");
}

TEST_P(HierarchySweep, ScalabilityBoundGrowsQuadraticallyWithCache) {
  // §6: the decluster bound scales with C^2; doubling the cache must
  // quadruple the max efficient cardinality.
  HwCase base = GetParam();
  HwCase doubled = base;
  doubled.target_kb *= 2;
  size_t small = decluster::WindowPolicy::MaxEfficientCardinality(
      MakeHw(base), sizeof(value_t));
  size_t large = decluster::WindowPolicy::MaxEfficientCardinality(
      MakeHw(doubled), sizeof(value_t));
  EXPECT_EQ(large, small * 4);
}

INSTANTIATE_TEST_SUITE_P(
    Machines, HierarchySweep,
    ::testing::Values(HwCase{"paper_p4", 16, 512, 64},
                      HwCase{"small_embedded", 8, 128, 32},
                      HwCase{"laptop", 32, 1024, 64},
                      HwCase{"server_l2", 48, 2048, 128},
                      HwCase{"big_llc", 64, 32768, 1536},
                      HwCase{"itanium2_like", 16, 6144, 128}),
    [](const ::testing::TestParamInfo<HwCase>& info) {
      return info.param.name;
    });

TEST(HierarchySweepExtra, PaperItaniumClaim) {
  // §6: "the 6MB Itanium2 cache allows for 72 billion tuples". Our exact
  // C^2/(32*width^2) with binary megabytes gives (6MiB/4)^2/32 = 77.3e9 —
  // same order as the paper's (rounded) 72e9 claim.
  MemoryHierarchy hw = MakeHw({"it2", 16, 6144, 128});
  size_t bound = decluster::WindowPolicy::MaxEfficientCardinality(hw, 4);
  EXPECT_NEAR(static_cast<double>(bound), 77.3e9, 0.2e9);
  EXPECT_GT(static_cast<double>(bound), 70e9);  // the paper's claim holds
}

}  // namespace
}  // namespace radix
