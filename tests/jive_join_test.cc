// Tests for Left/Right Jive-Join on both storage models.

#include <gtest/gtest.h>

#include <vector>

#include "cluster/radix_sort.h"
#include "common/rng.h"
#include "join/jive_join.h"
#include "workload/generator.h"

namespace radix::join {
namespace {

/// Build a sorted-by-left join index with random right oids, plus base
/// columns whose projected value is a function of the oid.
struct JiveFixture {
  std::vector<OidPair> index;
  std::vector<value_t> left_col;
  std::vector<value_t> right_col;
  size_t n_left;
  size_t n_right;

  JiveFixture(size_t n_index, size_t n_left_in, size_t n_right_in,
              uint64_t seed)
      : n_left(n_left_in), n_right(n_right_in) {
    Rng rng(seed);
    index.resize(n_index);
    for (size_t i = 0; i < n_index; ++i) {
      index[i] = {static_cast<oid_t>(rng.Below(n_left)),
                  static_cast<oid_t>(rng.Below(n_right))};
    }
    cluster::RadixSortJoinIndex(std::span<OidPair>(index),
                                static_cast<oid_t>(n_left), true);
    left_col.resize(n_left);
    right_col.resize(n_right);
    for (size_t i = 0; i < n_left; ++i) {
      left_col[i] = static_cast<value_t>(i * 3 + 1);
    }
    for (size_t i = 0; i < n_right; ++i) {
      right_col[i] = static_cast<value_t>(i * 5 + 2);
    }
  }
};

class JiveJoinSweep
    : public ::testing::TestWithParam<std::tuple<size_t, radix_bits_t>> {};

TEST_P(JiveJoinSweep, DsmBothSidesLandInResultOrder) {
  auto [n, bits] = GetParam();
  JiveFixture f(n, n, n * 2 / 3 + 1, n + bits);
  std::vector<value_t> left_out(n), right_out(n);
  JiveJoinOptions options;
  options.cluster_bits = bits;
  JiveIntermediate inter = LeftJiveJoinDsm(
      f.index, {std::span<const value_t>(f.left_col)},
      {std::span<value_t>(left_out)}, static_cast<oid_t>(f.n_right), options);
  RightJiveJoinDsm(inter, {std::span<const value_t>(f.right_col)},
                   {std::span<value_t>(right_out)});
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(left_out[i], f.left_col[f.index[i].left]) << "row " << i;
    ASSERT_EQ(right_out[i], f.right_col[f.index[i].right]) << "row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JiveJoinSweep,
    ::testing::Combine(::testing::Values(10, 1000, 50'000),
                       ::testing::Values(0, 2, 6, 10)));

TEST(JiveJoinTest, MultipleProjectionColumns) {
  size_t n = 5000;
  JiveFixture f(n, n, n, 42);
  std::vector<value_t> left2(f.n_left), right2(f.n_right);
  for (size_t i = 0; i < f.n_left; ++i) left2[i] = static_cast<value_t>(i);
  for (size_t i = 0; i < f.n_right; ++i) right2[i] = static_cast<value_t>(~i);
  std::vector<value_t> lo1(n), lo2(n), ro1(n), ro2(n);
  JiveJoinOptions options;
  JiveIntermediate inter = LeftJiveJoinDsm(
      f.index, {f.left_col, left2}, {std::span<value_t>(lo1), std::span<value_t>(lo2)},
      static_cast<oid_t>(f.n_right), options);
  RightJiveJoinDsm(inter, {f.right_col, right2},
                   {std::span<value_t>(ro1), std::span<value_t>(ro2)});
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(lo1[i], f.left_col[f.index[i].left]);
    ASSERT_EQ(lo2[i], left2[f.index[i].left]);
    ASSERT_EQ(ro1[i], f.right_col[f.index[i].right]);
    ASSERT_EQ(ro2[i], right2[f.index[i].right]);
  }
}

TEST(JiveJoinTest, EntriesWithinClustersKeepResultOrder) {
  // Phase 1's scatter is stable: entries within a cluster must arrive in
  // ascending result position (the "order of the oids before re-sorting"
  // that phase 2 restores).
  size_t n = 20000;
  JiveFixture f(n, n, n, 7);
  std::vector<value_t> left_out(n);
  JiveJoinOptions options;
  options.cluster_bits = 4;
  JiveIntermediate inter =
      LeftJiveJoinDsm(f.index, {std::span<const value_t>(f.left_col)},
                      {std::span<value_t>(left_out)},
                      static_cast<oid_t>(f.n_right), options);
  for (size_t c = 0; c + 1 < inter.cluster_offsets.size(); ++c) {
    for (uint64_t i = inter.cluster_offsets[c] + 1;
         i < inter.cluster_offsets[c + 1]; ++i) {
      ASSERT_LT(inter.entries[i - 1].result_pos, inter.entries[i].result_pos);
    }
  }
  // And each cluster holds a disjoint right-oid range.
  for (size_t c = 0; c + 1 < inter.cluster_offsets.size(); ++c) {
    for (uint64_t i = inter.cluster_offsets[c];
         i < inter.cluster_offsets[c + 1]; ++i) {
      ASSERT_EQ(inter.entries[i].right_oid >> inter.shift, c);
    }
  }
}

TEST(JiveJoinTest, NsmVariantFillsResultRows) {
  size_t n = 1 << 12;
  workload::JoinWorkloadSpec spec;
  spec.cardinality = n;
  spec.num_attrs = 4;
  auto w = workload::MakeJoinWorkload(spec);
  // Join index: i-th left row matched with a random right row.
  Rng rng(3);
  std::vector<OidPair> index(n);
  for (size_t i = 0; i < n; ++i) {
    index[i] = {static_cast<oid_t>(i), static_cast<oid_t>(rng.Below(n))};
  }
  cluster::RadixSortJoinIndex(std::span<OidPair>(index),
                              static_cast<oid_t>(n), true);
  size_t pi = 2;
  storage::NsmResult result(n, 2 * pi);
  JiveJoinOptions options;
  options.cluster_bits = 5;
  JiveIntermediate inter = LeftJiveJoinNsm(index, w.nsm_left, pi, &result,
                                           static_cast<oid_t>(n), options);
  RightJiveJoinNsm(inter, w.nsm_right, pi, pi, &result);
  for (size_t i = 0; i < n; ++i) {
    const value_t* row = result.row(i);
    for (size_t a = 0; a < pi; ++a) {
      ASSERT_EQ(row[a], w.nsm_left.attr(index[i].left, 1 + a));
      ASSERT_EQ(row[pi + a], w.nsm_right.attr(index[i].right, 1 + a));
    }
  }
}

TEST(JiveJoinTest, EmptyIndex) {
  std::vector<OidPair> index;
  std::vector<value_t> col(10, 1);
  JiveJoinOptions options;
  JiveIntermediate inter =
      LeftJiveJoinDsm(index, {std::span<const value_t>(col)},
                      {std::span<value_t>()}, 10, options);
  EXPECT_TRUE(inter.entries.empty());
  RightJiveJoinDsm(inter, {std::span<const value_t>(col)},
                   {std::span<value_t>()});
}

}  // namespace
}  // namespace radix::join
