// Plan-cache tests: hit/miss accounting through Engine::Stats(), the
// contract that a cached Explain() is indistinguishable from a fresh
// Prepare(), and a property test that the cache key covers every
// plan-affecting input — perturbing any QuerySpec field or planner-visible
// workload quantity must change the key.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "engine/plan_cache.h"
#include "hardware/memory_hierarchy.h"
#include "ops/plan.h"
#include "ops/table.h"
#include "project/dsm_post.h"
#include "project/strategy.h"
#include "workload/chain.h"
#include "workload/generator.h"

namespace radix::engine {
namespace {

using project::JoinStrategy;
using project::SideStrategy;

EngineConfig P4Config() {
  EngineConfig cfg;
  cfg.hierarchy = hardware::MemoryHierarchy::Pentium4();
  return cfg;
}

workload::JoinWorkloadSpec BaseSpec() {
  workload::JoinWorkloadSpec spec;
  spec.cardinality = 1 << 12;
  spec.num_attrs = 4;
  spec.hit_rate = 1.0;
  spec.seed = 42;
  spec.varchar.num_cols = 1;
  return spec;
}

TEST(PlanCacheTest, RepeatedPrepareHitsTheCache) {
  Engine eng(P4Config());
  workload::JoinWorkload w = workload::MakeJoinWorkload(BaseSpec());
  QuerySpec spec;

  (void)eng.Prepare(w, spec);
  EngineStats s1 = eng.Stats();
  EXPECT_EQ(s1.plan_cache_misses, 1u);
  EXPECT_EQ(s1.plan_cache_hits, 0u);
  EXPECT_EQ(s1.plan_cache_entries, 1u);

  (void)eng.Prepare(w, spec);
  EngineStats s2 = eng.Stats();
  EXPECT_EQ(s2.plan_cache_misses, 1u);
  EXPECT_EQ(s2.plan_cache_hits, 1u);
  EXPECT_EQ(s2.plan_cache_entries, 1u);
}

TEST(PlanCacheTest, CachedExplainEqualsFreshPrepare) {
  // The cache must be invisible: the Explanation served from it on the
  // second Prepare() equals what a never-cached engine would plan for the
  // same inputs, field for field.
  workload::JoinWorkload w = workload::MakeJoinWorkload(BaseSpec());
  QuerySpec spec;
  spec.pi_left = 2;
  spec.pi_right = 2;
  spec.pi_varchar_right = 1;

  Engine cached_eng(P4Config());
  (void)cached_eng.Prepare(w, spec);                     // populates
  Explanation cached = cached_eng.Prepare(w, spec).Explain();  // serves hit
  ASSERT_EQ(cached_eng.Stats().plan_cache_hits, 1u);

  Engine fresh_eng(P4Config());
  Explanation fresh = fresh_eng.Prepare(w, spec).Explain();

  EXPECT_EQ(cached.ToString(), fresh.ToString());
  EXPECT_EQ(cached.strategy, fresh.strategy);
  EXPECT_EQ(cached.plan_code, fresh.plan_code);
  EXPECT_EQ(cached.easy, fresh.easy);
  EXPECT_EQ(cached.decluster_bits, fresh.decluster_bits);
  EXPECT_EQ(cached.decluster_passes, fresh.decluster_passes);
  EXPECT_EQ(cached.window_elems, fresh.window_elems);
  EXPECT_EQ(cached.streaming, fresh.streaming);
  EXPECT_EQ(cached.chunk_rows, fresh.chunk_rows);
  EXPECT_EQ(cached.threads, fresh.threads);
  EXPECT_EQ(cached.estimated_result_rows, fresh.estimated_result_rows);
  EXPECT_EQ(cached.high_priority, fresh.high_priority);
  EXPECT_EQ(cached.modeled_intermediate_bytes,
            fresh.modeled_intermediate_bytes);
  EXPECT_EQ(cached.varchar_cols, fresh.varchar_cols);
  EXPECT_EQ(cached.avg_varchar_len, fresh.avg_varchar_len);
  EXPECT_DOUBLE_EQ(cached.modeled_seconds, fresh.modeled_seconds);
}

TEST(PlanCacheTest, KeyCoversEveryPlanAffectingField) {
  // Property: every single-field perturbation of (workload, spec) yields a
  // key distinct from the base AND from every other perturbation. A field
  // missing from the key shows up as a duplicate here — exactly the bug
  // class (stale plan served for a different query) the key must prevent.
  workload::JoinWorkload base_w = workload::MakeJoinWorkload(BaseSpec());
  QuerySpec base;
  // Project one varchar column in the base shape so the average-length
  // key component is live (AverageVarcharBytes folds only the *requested*
  // columns) and the string-length workload perturbation below is
  // observable.
  base.pi_varchar_right = 1;

  std::vector<std::pair<std::string, std::string>> keys;
  keys.emplace_back("base", PlanCacheKey(base_w, base));

  auto add_spec = [&](const char* name, QuerySpec s) {
    keys.emplace_back(name, PlanCacheKey(base_w, s));
  };
  {
    QuerySpec s = base;
    s.strategy = JoinStrategy::kDsmPrePhash;
    add_spec("strategy", s);
  }
  {
    QuerySpec s = base;
    s.pi_left = 2;
    add_spec("pi_left", s);
  }
  {
    QuerySpec s = base;
    s.pi_right = 2;
    add_spec("pi_right", s);
  }
  {
    QuerySpec s = base;
    s.pi_varchar_left = 1;
    add_spec("pi_varchar_left", s);
  }
  {
    QuerySpec s = base;
    s.pi_varchar_right = 0;
    add_spec("pi_varchar_right", s);
  }
  {
    QuerySpec s = base;
    s.plan_sides = false;
    add_spec("plan_sides", s);
  }
  {
    QuerySpec s = base;
    s.left = SideStrategy::kDecluster;
    add_spec("left", s);
  }
  {
    QuerySpec s = base;
    s.right = SideStrategy::kClustered;
    add_spec("right", s);
  }
  {
    QuerySpec s = base;
    s.left_bits = 5;
    add_spec("left_bits", s);
  }
  {
    QuerySpec s = base;
    s.right_bits = 5;
    add_spec("right_bits", s);
  }
  {
    QuerySpec s = base;
    s.window_elems = 4096;
    add_spec("window_elems", s);
  }
  {
    QuerySpec s = base;
    s.chunking = ChunkingPolicy::kStream;
    add_spec("chunking", s);
  }
  {
    QuerySpec s = base;
    s.chunk_rows = 2048;
    add_spec("chunk_rows", s);
  }

  auto add_workload = [&](const char* name,
                          const workload::JoinWorkloadSpec& ws) {
    workload::JoinWorkload w = workload::MakeJoinWorkload(ws);
    keys.emplace_back(name, PlanCacheKey(w, base));
  };
  {
    workload::JoinWorkloadSpec ws = BaseSpec();
    ws.cardinality = 1 << 13;
    add_workload("cardinality", ws);
  }
  {
    workload::JoinWorkloadSpec ws = BaseSpec();
    ws.num_attrs = 6;
    add_workload("num_attrs", ws);
  }
  {
    workload::JoinWorkloadSpec ws = BaseSpec();
    ws.hit_rate = 0.5;  // halves the expected result size
    add_workload("hit_rate", ws);
  }
  {
    workload::JoinWorkloadSpec ws = BaseSpec();
    ws.varchar.num_cols = 0;  // no varchar columns at all
    add_workload("varchar_cols", ws);
  }
  {
    workload::JoinWorkloadSpec ws = BaseSpec();
    ws.varchar.min_len = 16;  // longer strings: the mean length moves,
    ws.varchar.max_len = 64;  // which the paged-decluster cost terms read
    add_workload("varchar_avg_len", ws);
  }

  std::set<std::string> distinct;
  for (const auto& [name, key] : keys) {
    EXPECT_TRUE(distinct.insert(key).second)
        << "perturbation '" << name << "' collides with an earlier key: "
        << key;
  }
}

TEST(PlanCacheTreeTest, KeyCoversTheFullPlanTreeShape) {
  // The plan-tree analogue of KeyCoversEveryPlanAffectingField: perturbing
  // any dimension of the tree — operator kinds and arrangement, predicate
  // column/op/constant, projection list, group-by, aggregate list, or the
  // catalog's cardinalities — must change the key. A collision here is a
  // stale PhysicalPlan served for a different query.
  workload::ChainWorkloadSpec cs;
  cs.cardinalities = {2048, 1024, 4096};
  cs.num_attrs = 3;
  cs.varchar.num_cols = 1;
  workload::ChainWorkload w = workload::MakeChainWorkload(cs);
  ops::Catalog catalog = ops::CatalogFromChainWorkload(w);

  auto chain = [](ops::Predicate pred, bool with_select) {
    std::unique_ptr<ops::PlanNode> left = ops::Scan(0);
    if (with_select) left = ops::Select(std::move(left), pred);
    return ops::Join(ops::Join(std::move(left), ops::Scan(1), 0, 1),
                     ops::Scan(2), 1, 2);
  };
  ops::Predicate base_pred;
  base_pred.col = {0, 1, false};
  base_pred.op = ops::CmpOp::kLt;
  base_pred.value = 100;

  std::vector<std::pair<std::string, std::string>> keys;
  auto add = [&](const char* name, const ops::LogicalPlan& plan) {
    keys.emplace_back(name, PlanCacheKey(catalog, plan));
  };

  {
    ops::LogicalPlan p;
    p.root = ops::Project(chain(base_pred, true), {{2, 1, false}});
    add("base", p);
  }
  {  // drop the select: different operator arrangement
    ops::LogicalPlan p;
    p.root = ops::Project(chain(base_pred, false), {{2, 1, false}});
    add("no_select", p);
  }
  {  // same shape, different predicate constant
    ops::Predicate pred = base_pred;
    pred.value = 101;
    ops::LogicalPlan p;
    p.root = ops::Project(chain(pred, true), {{2, 1, false}});
    add("pred_value", p);
  }
  {  // same shape, different comparison op
    ops::Predicate pred = base_pred;
    pred.op = ops::CmpOp::kGe;
    ops::LogicalPlan p;
    p.root = ops::Project(chain(pred, true), {{2, 1, false}});
    add("pred_op", p);
  }
  {  // same shape, predicate on a different column
    ops::Predicate pred = base_pred;
    pred.col = {0, 2, false};
    ops::LogicalPlan p;
    p.root = ops::Project(chain(pred, true), {{2, 1, false}});
    add("pred_col", p);
  }
  {  // varchar predicate vs value predicate
    ops::Predicate pred;
    pred.col = {0, 0, true};
    pred.op = ops::CmpOp::kEq;
    pred.str_value = "d";
    pred.str_prefix = true;
    ops::LogicalPlan p;
    p.root = ops::Project(chain(pred, true), {{2, 1, false}});
    add("varchar_pred", p);
  }
  {  // same varchar predicate, prefix flag flipped
    ops::Predicate pred;
    pred.col = {0, 0, true};
    pred.op = ops::CmpOp::kEq;
    pred.str_value = "d";
    pred.str_prefix = false;
    ops::LogicalPlan p;
    p.root = ops::Project(chain(pred, true), {{2, 1, false}});
    add("varchar_prefix_flag", p);
  }
  {  // different projection list
    ops::LogicalPlan p;
    p.root = ops::Project(chain(base_pred, true),
                          {{2, 1, false}, {0, 1, false}});
    add("projection_list", p);
  }
  {  // aggregate root instead of project
    ops::LogicalPlan p;
    p.root = ops::Aggregate(chain(base_pred, true), {},
                            {{ops::AggFn::kCount, {}}});
    add("aggregate_root", p);
  }
  {  // different aggregate function over the same column set
    ops::LogicalPlan p;
    p.root = ops::Aggregate(chain(base_pred, true), {},
                            {{ops::AggFn::kSum, {2, 1, false}}});
    add("agg_fn", p);
  }
  {  // grouped vs ungrouped
    ops::LogicalPlan p;
    p.root = ops::Aggregate(chain(base_pred, true), {{1, 1, false}},
                            {{ops::AggFn::kCount, {}}});
    add("group_by", p);
  }
  {  // shorter chain: one join edge instead of two
    ops::LogicalPlan p;
    p.root = ops::Project(
        ops::Join(ops::Select(ops::Scan(0), base_pred), ops::Scan(1), 0, 1),
        {{1, 1, false}});
    add("two_table_chain", p);
  }
  {  // identical tree over a different-cardinality catalog
    workload::ChainWorkloadSpec cs2 = cs;
    cs2.cardinalities = {2048, 1024, 8192};
    workload::ChainWorkload w2 = workload::MakeChainWorkload(cs2);
    ops::Catalog catalog2 = ops::CatalogFromChainWorkload(w2);
    ops::LogicalPlan p;
    p.root = ops::Project(chain(base_pred, true), {{2, 1, false}});
    keys.emplace_back("catalog_cardinality", PlanCacheKey(catalog2, p));
  }

  std::set<std::string> distinct;
  for (const auto& [name, key] : keys) {
    EXPECT_TRUE(distinct.insert(key).second)
        << "plan-tree perturbation '" << name
        << "' collides with an earlier key: " << key;
  }

  // Plan-tree keys live in a disjoint namespace from two-sided keys.
  for (const auto& [name, key] : keys) {
    EXPECT_EQ(key.rfind("tree|", 0), 0u) << name;
  }
  workload::JoinWorkload jw = workload::MakeJoinWorkload(BaseSpec());
  EXPECT_EQ(PlanCacheKey(jw, QuerySpec{}).rfind("nl=", 0), 0u);
}

TEST(PlanCacheTreeTest, IdenticalTreesShareAKey) {
  // Two structurally identical trees built independently must hit the same
  // entry — that is the whole point of the cache.
  workload::ChainWorkloadSpec cs;
  cs.cardinalities = {1024, 1024};
  cs.num_attrs = 3;
  workload::ChainWorkload w = workload::MakeChainWorkload(cs);
  ops::Catalog catalog = ops::CatalogFromChainWorkload(w);

  auto make = [] {
    ops::LogicalPlan p;
    p.root = ops::Project(ops::Join(ops::Scan(0), ops::Scan(1), 0, 1),
                          {{0, 1, false}, {1, 1, false}});
    return p;
  };
  ops::LogicalPlan a = make();
  ops::LogicalPlan b = make();
  EXPECT_EQ(PlanCacheKey(catalog, a), PlanCacheKey(catalog, b));
}

TEST(PlanCacheTreeTest, TreeAndLegacyEntriesCoexist) {
  // LookupTree must not serve a legacy entry and vice versa, even under
  // the same key string (defense in depth below the disjoint prefixes).
  PlanCache cache(/*capacity=*/4);
  Explanation ex;
  ex.plan_code = "legacy";
  cache.Insert("k", ex);

  Explanation out;
  ops::PhysicalPlan physical;
  EXPECT_FALSE(cache.LookupTree("k", &out, &physical));

  ops::PhysicalPlan stored;
  stored.est_result_rows = 7;
  Explanation tex;
  tex.plan_tree = true;
  cache.InsertTree("k2", tex, stored);
  ASSERT_TRUE(cache.LookupTree("k2", &out, &physical));
  EXPECT_TRUE(out.plan_tree);
  EXPECT_EQ(physical.est_result_rows, 7u);
  // The legacy Lookup still serves the tree entry's Explanation view.
  EXPECT_TRUE(cache.Lookup("k2", &out));
}

TEST(PlanCacheTest, SeedDoesNotChangeTheKey) {
  // The seed changes the data, not the plan: cardinalities, widths and the
  // result estimate are identical, so the plan (and the key) must be too.
  workload::JoinWorkloadSpec ws = BaseSpec();
  workload::JoinWorkload w1 = workload::MakeJoinWorkload(ws);
  ws.seed = 43;
  workload::JoinWorkload w2 = workload::MakeJoinWorkload(ws);
  QuerySpec spec;
  EXPECT_EQ(PlanCacheKey(w1, spec), PlanCacheKey(w2, spec));
}

TEST(PlanCacheTest, CapacityZeroDisablesCaching) {
  EngineConfig cfg = P4Config();
  cfg.plan_cache_capacity = 0;
  Engine eng(cfg);
  workload::JoinWorkload w = workload::MakeJoinWorkload(BaseSpec());
  QuerySpec spec;
  (void)eng.Prepare(w, spec);
  (void)eng.Prepare(w, spec);
  EngineStats s = eng.Stats();
  EXPECT_EQ(s.plan_cache_hits, 0u);
  EXPECT_EQ(s.plan_cache_misses, 2u);
  EXPECT_EQ(s.plan_cache_entries, 0u);
}

TEST(PlanCacheTest, LruEvictsLeastRecentlyUsed) {
  PlanCache cache(/*capacity=*/2);
  Explanation ex;
  Explanation out;

  cache.Insert("a", ex);
  cache.Insert("b", ex);
  ASSERT_TRUE(cache.Lookup("a", &out));  // refresh a: LRU order is b, a
  cache.Insert("c", ex);                 // evicts b

  EXPECT_TRUE(cache.Lookup("a", &out));
  EXPECT_FALSE(cache.Lookup("b", &out));
  EXPECT_TRUE(cache.Lookup("c", &out));
  PlanCacheStats s = cache.Stats();
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.hits, 3u);
  EXPECT_EQ(s.misses, 1u);
}

TEST(PlanCacheTest, EngineEvictionKeepsServingCorrectPlans) {
  EngineConfig cfg = P4Config();
  cfg.plan_cache_capacity = 2;
  Engine eng(cfg);
  workload::JoinWorkload w = workload::MakeJoinWorkload(BaseSpec());

  QuerySpec a;  // three distinct shapes
  QuerySpec b;
  b.pi_left = 2;
  QuerySpec c;
  c.pi_right = 2;

  Explanation fresh_a = eng.Prepare(w, a).Explain();
  (void)eng.Prepare(w, b);
  (void)eng.Prepare(w, c);  // evicts a (capacity 2)

  EngineStats s1 = eng.Stats();
  EXPECT_EQ(s1.plan_cache_misses, 3u);
  EXPECT_EQ(s1.plan_cache_entries, 2u);

  // a was evicted: re-preparing it is a miss but plans identically.
  Explanation replanned_a = eng.Prepare(w, a).Explain();
  EngineStats s2 = eng.Stats();
  EXPECT_EQ(s2.plan_cache_misses, 4u);
  EXPECT_EQ(replanned_a.ToString(), fresh_a.ToString());
}

}  // namespace
}  // namespace radix::engine
