// End-to-end integration tests: the full pipeline (generate -> join ->
// project) across storage models, strategies, hit rates, projectivities
// and cardinalities, cross-validated against a scalar reference executor.
// Queries run through the public engine API (one session Engine reused by
// the whole suite); the legacy free functions are covered by the project
// and engine suites.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/hash.h"
#include "engine/engine.h"
#include "hardware/memory_hierarchy.h"
#include "join/partitioned_hash_join.h"
#include "project/dsm_post.h"
#include "project/executor.h"
#include "workload/generator.h"

namespace radix {
namespace {

using project::JoinStrategy;
using project::QueryRun;

hardware::MemoryHierarchy P4() {
  return hardware::MemoryHierarchy::Pentium4();
}

engine::EngineConfig P4Config() {
  engine::EngineConfig cfg;
  cfg.hierarchy = P4();
  return cfg;
}

/// One session engine for the whole suite — consecutive tests double as
/// engine-reuse coverage.
engine::Engine& P4Engine() {
  static engine::Engine eng{P4Config()};
  return eng;
}

/// Scalar reference: nested-loop join + projection, producing the same
/// order-independent checksum the executor computes.
uint64_t ReferenceChecksum(const workload::JoinWorkload& w, size_t pi_left,
                           size_t pi_right) {
  std::multimap<value_t, oid_t> right_index;
  for (size_t i = 0; i < w.dsm_right.cardinality(); ++i) {
    right_index.emplace(w.dsm_right.key()[i], static_cast<oid_t>(i));
  }
  uint64_t sum = 0;
  for (size_t i = 0; i < w.dsm_left.cardinality(); ++i) {
    auto [lo, hi] = right_index.equal_range(w.dsm_left.key()[i]);
    for (auto it = lo; it != hi; ++it) {
      uint64_t row_digest = 0x9e3779b97f4a7c15ULL;
      size_t a = 0;
      for (size_t c = 0; c < pi_left; ++c, ++a) {
        uint64_t v = static_cast<uint32_t>(w.dsm_left.attr(1 + c)[i]);
        row_digest = HashInt64(row_digest ^ (v + (static_cast<uint64_t>(a) << 32)));
      }
      for (size_t c = 0; c < pi_right; ++c, ++a) {
        uint64_t v = static_cast<uint32_t>(w.dsm_right.attr(1 + c)[it->second]);
        row_digest = HashInt64(row_digest ^ (v + (static_cast<uint64_t>(a) << 32)));
      }
      sum += row_digest;
    }
  }
  return sum;
}

struct IntegrationParam {
  size_t n;
  size_t omega;
  size_t pi;
  double h;
};

class PipelineSweep : public ::testing::TestWithParam<IntegrationParam> {};

TEST_P(PipelineSweep, AllStrategiesMatchScalarReference) {
  const auto& p = GetParam();
  workload::JoinWorkloadSpec spec;
  spec.cardinality = p.n;
  spec.num_attrs = p.omega;
  spec.hit_rate = p.h;
  spec.seed = 100 + p.n + p.omega;
  auto w = workload::MakeJoinWorkload(spec);
  uint64_t expected = ReferenceChecksum(w, p.pi, p.pi);

  engine::QuerySpec qspec;
  qspec.pi_left = p.pi;
  qspec.pi_right = p.pi;
  for (JoinStrategy s :
       {JoinStrategy::kDsmPostDecluster, JoinStrategy::kDsmPrePhash,
        JoinStrategy::kNsmPreHash, JoinStrategy::kNsmPrePhash,
        JoinStrategy::kNsmPostDecluster, JoinStrategy::kNsmPostJive}) {
    qspec.strategy = s;
    QueryRun run = P4Engine().Execute(w, qspec);
    EXPECT_EQ(run.checksum, expected) << project::JoinStrategyName(s);
    EXPECT_EQ(run.result_cardinality, w.expected_result_size)
        << project::JoinStrategyName(s);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineSweep,
    ::testing::Values(IntegrationParam{1000, 2, 1, 1.0},
                      IntegrationParam{4096, 4, 2, 1.0},
                      IntegrationParam{5000, 4, 3, 0.3},
                      IntegrationParam{5000, 4, 1, 3.0},
                      IntegrationParam{1 << 15, 8, 4, 1.0},
                      IntegrationParam{777, 8, 7, 1.0},
                      IntegrationParam{1 << 16, 2, 1, 1.0}));

TEST(PipelineTest, HardCaseUsesRadixMachineryAndStaysCorrect) {
  // Big enough that the P4 planner classifies the join as "hard"
  // (columns 1MB > 512KB L2): the planned run must use c/d and match the
  // unsorted reference.
  workload::JoinWorkloadSpec spec;
  spec.cardinality = 1 << 18;
  spec.num_attrs = 4;
  auto w = workload::MakeJoinWorkload(spec);
  engine::QuerySpec planned;
  planned.pi_left = 2;
  planned.pi_right = 2;
  // Prepare/Explain/Execute: the plan is visible before the run, and the
  // run must carry it verbatim.
  engine::PreparedQuery q = P4Engine().Prepare(w, planned);
  EXPECT_EQ(q.Explain().plan_code, "c/d");
  QueryRun run = q.Execute();
  EXPECT_EQ(run.detail, "c/d");

  engine::QuerySpec unsorted = planned;
  unsorted.plan_sides = false;
  unsorted.left = project::SideStrategy::kUnsorted;
  unsorted.right = project::SideStrategy::kUnsorted;
  QueryRun ref = P4Engine().Execute(w, unsorted);
  EXPECT_EQ(run.checksum, ref.checksum);
}

TEST(PipelineTest, SparseSelectionProjectionsStayCorrect) {
  // One join side is a 10% selection of a base table (paper §4 "Sparse
  // Projections"): oids point sparsely into base columns. Compose the
  // join index with a selection vector and project through ProjectSide.
  size_t n = 1 << 15;
  double sel = 0.1;
  size_t base_n = static_cast<size_t>(n / sel);
  Rng rng(42);
  std::vector<oid_t> selection = workload::MakeSparseOids(n, sel, rng);
  auto base = workload::MakeBaseColumn(base_n, 1);

  // Join index side oids (positions into the selection), random order.
  std::vector<oid_t> index_side(n);
  for (auto& o : index_side) o = static_cast<oid_t>(rng.Below(n));

  // Compose: base oid of row i = selection[index_side[i]].
  std::vector<oid_t> base_ids(n);
  for (size_t i = 0; i < n; ++i) base_ids[i] = selection[index_side[i]];
  std::vector<oid_t> original = base_ids;

  std::vector<value_t> out(n);
  project::PhaseBreakdown phases;
  project::ProjectSide(base_ids, project::SideStrategy::kDecluster,
                       {base.span()}, {std::span<value_t>(out)}, base_n,
                       P4(), project::DsmPostOptions::kAuto, 0, &phases);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], base[original[i]]);
  }
}

TEST(PipelineTest, ProjectionDominatesAtHighProjectivity) {
  // The paper's §1 observation: queries may spend >90% of their time in
  // projection. At pi = 32 the projection phase must dominate the join
  // phase for DSM post-projection.
  workload::JoinWorkloadSpec spec;
  spec.cardinality = 1 << 17;
  spec.num_attrs = 33;
  spec.build_nsm = false;
  auto w = workload::MakeJoinWorkload(spec);
  engine::QuerySpec qspec;
  qspec.pi_left = 32;
  qspec.pi_right = 32;
  QueryRun run = P4Engine().Execute(w, qspec);
  double projection = run.phases.cluster_seconds +
                      run.phases.projection_seconds +
                      run.phases.decluster_seconds;
  EXPECT_GT(projection, run.phases.join_seconds);
}

TEST(PipelineTest, ZeroMatchesProduceEmptyResultEverywhere) {
  workload::JoinWorkloadSpec spec;
  spec.cardinality = 2048;
  spec.num_attrs = 3;
  auto w = workload::MakeJoinWorkload(spec);
  // Destroy all matches.
  for (size_t i = 0; i < spec.cardinality; ++i) {
    w.dsm_left.key()[i] = static_cast<value_t>(i);
    w.dsm_right.key()[i] = static_cast<value_t>(i + 1'000'000);
    w.nsm_left.record(i)[0] = w.dsm_left.key()[i];
    w.nsm_right.record(i)[0] = w.dsm_right.key()[i];
  }
  engine::QuerySpec qspec;
  qspec.pi_left = 1;
  qspec.pi_right = 1;
  for (JoinStrategy s :
       {JoinStrategy::kDsmPostDecluster, JoinStrategy::kNsmPreHash,
        JoinStrategy::kNsmPostJive}) {
    qspec.strategy = s;
    QueryRun run = P4Engine().Execute(w, qspec);
    EXPECT_EQ(run.result_cardinality, 0u) << project::JoinStrategyName(s);
  }
}

}  // namespace
}  // namespace radix
