// Tests for the annotated synchronization wrappers (common/mutex.h) and
// the thread-annotation macros (common/thread_annotations.h).
//
// Two jobs:
//  1. Runtime semantics: Mutex/MutexLock/CondVar must behave exactly like
//     the std primitives they wrap — mutual exclusion, scoped release,
//     TryLock, wait/notify — under real contention. This suite carries the
//     `threaded` label, so the TSan CI job runs it under
//     -fsanitize=thread: a wrapper that silently dropped the underlying
//     lock would surface as a data race here.
//  2. Macro surface: off Clang, every RADIX_* annotation macro must expand
//     to nothing a compiler objects to — this file compiling under GCC
//     with -Werror IS that test (AnnotatedEverywhere below uses every
//     macro in a class definition).

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace radix {
namespace {

// Every annotation macro in one class: if any expands to something
// ill-formed off Clang (or on it), this translation unit fails to build.
class RADIX_CAPABILITY("mutex") AnnotatedMutexSurface {
 public:
  void Lock() RADIX_ACQUIRE() {}
  void Unlock() RADIX_RELEASE() {}
  bool TryLock() RADIX_TRY_ACQUIRE(true) { return true; }
};

class AnnotatedEverywhere {
 public:
  void Guarded() RADIX_EXCLUDES(mu_) {}
  void Locked() RADIX_REQUIRES(mu_) {}
  void SharedLocked() RADIX_REQUIRES_SHARED(mu_) {}
  void Acquire() RADIX_ACQUIRE(mu_) {}
  void Release() RADIX_RELEASE(mu_) {}
  void Assert() RADIX_ASSERT_CAPABILITY(mu_) {}
  Mutex* GetMu() RADIX_RETURN_CAPABILITY(mu_) { return &mu_; }
  void Escape() RADIX_NO_THREAD_SAFETY_ANALYSIS {}

 private:
  Mutex mu_ RADIX_ACQUIRED_BEFORE(other_mu_);
  Mutex other_mu_ RADIX_ACQUIRED_AFTER(mu_);
  int guarded_ RADIX_GUARDED_BY(mu_) = 0;
  int* pt_guarded_ RADIX_PT_GUARDED_BY(mu_) = nullptr;
};

TEST(ThreadAnnotationsTest, MacrosCompileToValidCode) {
  AnnotatedMutexSurface surface;
  surface.Lock();
  surface.Unlock();
  // Stored-bool branching is the TSA-recognized try-acquire shape.
  bool acquired = surface.TryLock();
  if (acquired) surface.Unlock();
  EXPECT_TRUE(acquired);
  AnnotatedEverywhere everywhere;
  everywhere.Guarded();
  EXPECT_NE(everywhere.GetMu(), nullptr);
}

TEST(MutexTest, GuardedCounterIsExactUnderContention) {
  constexpr size_t kThreads = 8;
  constexpr size_t kIncrements = 20'000;
  Mutex mu;
  size_t counter = 0;  // guarded by mu (by convention in this test)
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (size_t i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(MutexTest, TryLockFailsWhileHeldAndSucceedsAfter) {
  Mutex mu;
  mu.Lock();
  std::atomic<int> observed{-1};
  // TryLock from another thread: contended try_lock must fail (same-thread
  // try_lock on a held std::mutex is UB, so probe cross-thread).
  std::thread probe([&] {
    bool acquired = mu.TryLock();
    if (acquired) mu.Unlock();
    observed = acquired ? 1 : 0;
  });
  probe.join();
  EXPECT_EQ(observed, 0);
  mu.Unlock();
  bool reacquired = mu.TryLock();
  EXPECT_TRUE(reacquired);
  if (reacquired) mu.Unlock();
}

TEST(MutexTest, MutexLockReleasesOnScopeExit) {
  Mutex mu;
  { MutexLock lock(mu); }
  // If the scoped lock leaked, this TryLock would fail.
  bool acquired = mu.TryLock();
  EXPECT_TRUE(acquired);
  if (acquired) mu.Unlock();
}

TEST(CondVarTest, ProducerConsumerHandshake) {
  // The repo's canonical wait shape: explicit while-loop predicates, all
  // notifies under the lock (docs/CONCURRENCY.md).
  constexpr int kItems = 1'000;
  Mutex mu;
  CondVar cv;
  int ready = 0;     // guarded by mu
  int consumed = 0;  // guarded by mu
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      MutexLock lock(mu);
      ++ready;
      cv.NotifyAll();
    }
  });
  std::thread consumer([&] {
    MutexLock lock(mu);
    while (consumed < kItems) {
      while (ready == consumed) cv.Wait(lock);
      ++consumed;
    }
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(consumed, kItems);
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  constexpr size_t kWaiters = 6;
  Mutex mu;
  CondVar cv;
  bool go = false;       // guarded by mu
  size_t parked = 0;     // guarded by mu
  std::atomic<size_t> woke{0};
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (size_t i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      ++parked;
      cv.NotifyAll();  // tell the releaser we are in the wait loop
      while (!go) cv.Wait(lock);
      ++woke;
    });
  }
  {
    MutexLock lock(mu);
    while (parked != kWaiters) cv.Wait(lock);
    go = true;
    cv.NotifyAll();
  }
  for (auto& th : waiters) th.join();
  EXPECT_EQ(woke, kWaiters);
}

}  // namespace
}  // namespace radix
