// Tests for hash tables, naive and partitioned hash joins, positional
// joins, and the join index.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.h"
#include "hardware/memory_hierarchy.h"
#include "join/hash_join.h"
#include "join/hash_table.h"
#include "join/join_index.h"
#include "join/partitioned_hash_join.h"
#include "join/positional_join.h"
#include "workload/distributions.h"
#include "workload/generator.h"

namespace radix::join {
namespace {

/// Reference nested-loop join for cross-validation on small inputs.
std::multiset<std::pair<oid_t, oid_t>> ReferenceJoin(
    const std::vector<value_t>& left, const std::vector<value_t>& right) {
  std::multiset<std::pair<oid_t, oid_t>> out;
  std::multimap<value_t, oid_t> right_map;
  for (size_t i = 0; i < right.size(); ++i) {
    right_map.emplace(right[i], static_cast<oid_t>(i));
  }
  for (size_t i = 0; i < left.size(); ++i) {
    auto [lo, hi] = right_map.equal_range(left[i]);
    for (auto it = lo; it != hi; ++it) {
      out.emplace(static_cast<oid_t>(i), it->second);
    }
  }
  return out;
}

std::multiset<std::pair<oid_t, oid_t>> AsSet(const JoinIndex& ji) {
  std::multiset<std::pair<oid_t, oid_t>> out;
  for (size_t i = 0; i < ji.size(); ++i) {
    out.emplace(ji[i].left, ji[i].right);
  }
  return out;
}

TEST(HashTableTest, FindsAllDuplicates) {
  std::vector<value_t> keys = {5, 3, 5, 7, 5, 3};
  HashTable table;
  table.Build(keys);
  std::vector<oid_t> matches;
  table.Probe(5, [&](oid_t pos) { matches.push_back(pos); });
  std::sort(matches.begin(), matches.end());
  EXPECT_EQ(matches, (std::vector<oid_t>{0, 2, 4}));
  matches.clear();
  table.Probe(42, [&](oid_t pos) { matches.push_back(pos); });
  EXPECT_TRUE(matches.empty());
}

TEST(HashTableTest, BucketsDisperseWithinOneRadixCluster) {
  // Regression test: keys inside one radix cluster share the low B bits of
  // their hash (that IS the cluster criterion). A table bucketing on those
  // same low bits collapses into 1/2^B of its buckets with cluster-long
  // chains — the per-cluster joins of Partitioned Hash-Join then run in
  // O(cluster^2). The bucket function must use disjoint (upper) hash bits.
  constexpr radix_bits_t kClusterBits = 8;
  std::vector<value_t> cluster_keys;
  for (value_t k = 0; cluster_keys.size() < 4096 && k < 10'000'000; ++k) {
    if ((KeyHash{}(k) & ((1u << kClusterBits) - 1)) == 3) {
      cluster_keys.push_back(k);  // all land in radix cluster #3
    }
  }
  ASSERT_EQ(cluster_keys.size(), 4096u);
  HashTable table;
  table.Build(cluster_keys);
  // 4096 distinct keys in 4096 buckets: expected max chain is ~O(log n /
  // log log n) ≈ 8; the broken low-bit bucketing gives 4096/2^8 = 16
  // buckets with ~256-long chains.
  EXPECT_LE(table.MaxChainLength(), 16u);
}

TEST(HashTableTest, EmptyBuild) {
  HashTable table;
  table.Build({});
  int hits = 0;
  table.Probe(1, [&](oid_t) { ++hits; });
  EXPECT_EQ(hits, 0);
}

TEST(HashJoinTest, MatchesReferenceOnRandomInput) {
  Rng rng(1);
  std::vector<value_t> left(2000), right(1500);
  for (auto& k : left) k = static_cast<value_t>(rng.Below(800));
  for (auto& k : right) k = static_cast<value_t>(rng.Below(800));
  JoinIndex ji = HashJoin(left, right);
  EXPECT_EQ(AsSet(ji), ReferenceJoin(left, right));
}

TEST(HashJoinTest, NoMatches) {
  std::vector<value_t> left = {1, 2, 3};
  std::vector<value_t> right = {4, 5, 6};
  EXPECT_TRUE(HashJoin(left, right).empty());
}

class PartitionedHashJoinSweep
    : public ::testing::TestWithParam<std::tuple<size_t, radix_bits_t>> {};

TEST_P(PartitionedHashJoinSweep, MatchesNaiveJoinAcrossBits) {
  auto [n, bits] = GetParam();
  Rng rng(n + bits);
  std::vector<value_t> left(n), right(n);
  for (auto& k : left) k = static_cast<value_t>(rng.Below(n));
  for (auto& k : right) k = static_cast<value_t>(rng.Below(n));
  hardware::MemoryHierarchy hw = hardware::MemoryHierarchy::Pentium4();
  PartitionedHashJoinOptions options;
  options.radix_bits = bits;
  JoinIndex partitioned = PartitionedHashJoin(left, right, hw, options);
  JoinIndex naive = HashJoin(left, right);
  EXPECT_EQ(AsSet(partitioned), AsSet(naive));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionedHashJoinSweep,
    ::testing::Combine(::testing::Values(100, 5000, 100'000),
                       ::testing::Values(0, 1, 4, 8, 12)));

TEST(PartitionedHashJoinTest, ParallelJoinIsByteIdenticalToSerial) {
  hardware::MemoryHierarchy hw = hardware::MemoryHierarchy::Pentium4();
  ThreadPool pool(4);
  for (size_t n : {size_t{0}, size_t{100}, size_t{50'000}}) {
    Rng rng(n + 1);
    std::vector<value_t> left(n), right(n);
    for (auto& k : left) k = static_cast<value_t>(rng.Below(n | 1));
    for (auto& k : right) k = static_cast<value_t>(rng.Below(n | 1));
    for (radix_bits_t bits : {radix_bits_t{2}, radix_bits_t{8},
                              PartitionedHashJoinOptions::kAutoBits}) {
      PartitionedHashJoinOptions serial_opts;
      serial_opts.radix_bits = bits;
      PartitionedHashJoinOptions par_opts = serial_opts;
      par_opts.pool = &pool;
      JoinIndex serial = PartitionedHashJoin(left, right, hw, serial_opts);
      JoinIndex parallel = PartitionedHashJoin(left, right, hw, par_opts);
      // Not just the same set: the same pairs in the same order.
      ASSERT_EQ(serial.size(), parallel.size()) << "n=" << n;
      for (size_t i = 0; i < serial.size(); ++i) {
        ASSERT_EQ(serial[i].left, parallel[i].left) << "n=" << n << " i=" << i;
        ASSERT_EQ(serial[i].right, parallel[i].right)
            << "n=" << n << " i=" << i;
      }
    }
  }
}

TEST(PartitionedHashJoinTest, AutoBitsProducesCorrectJoin) {
  hardware::MemoryHierarchy hw = hardware::MemoryHierarchy::Pentium4();
  workload::JoinWorkloadSpec spec;
  spec.cardinality = 1 << 17;
  spec.hit_rate = 1.0;
  auto w = workload::MakeJoinWorkload(spec);
  JoinIndex ji = PartitionedHashJoin(w.dsm_left.key().span(),
                                     w.dsm_right.key().span(), hw);
  EXPECT_EQ(ji.size(), w.expected_result_size);
  // Every pair must actually match on key.
  for (size_t i = 0; i < ji.size(); ++i) {
    ASSERT_EQ(w.dsm_left.key()[ji[i].left], w.dsm_right.key()[ji[i].right]);
  }
}

TEST(PartitionedHashJoinTest, HitRateAboveOneMultipliesResult) {
  hardware::MemoryHierarchy hw = hardware::MemoryHierarchy::Pentium4();
  workload::JoinWorkloadSpec spec;
  spec.cardinality = 1 << 14;
  spec.hit_rate = 3.0;
  auto w = workload::MakeJoinWorkload(spec);
  JoinIndex ji = PartitionedHashJoin(w.dsm_left.key().span(),
                                     w.dsm_right.key().span(), hw);
  double ratio =
      static_cast<double>(ji.size()) / static_cast<double>(spec.cardinality);
  EXPECT_NEAR(ratio, 3.0, 0.2);
}

TEST(PartitionedHashJoinTest, HitRateBelowOneShrinksResult) {
  hardware::MemoryHierarchy hw = hardware::MemoryHierarchy::Pentium4();
  workload::JoinWorkloadSpec spec;
  spec.cardinality = 1 << 14;
  spec.hit_rate = 0.3;
  auto w = workload::MakeJoinWorkload(spec);
  JoinIndex ji = PartitionedHashJoin(w.dsm_left.key().span(),
                                     w.dsm_right.key().span(), hw);
  EXPECT_EQ(ji.size(), w.expected_result_size);
  double ratio =
      static_cast<double>(ji.size()) / static_cast<double>(spec.cardinality);
  EXPECT_NEAR(ratio, 0.3, 0.05);
}

TEST(ClusterKeyOidTest, CarriesOriginalOids) {
  Rng rng(7);
  std::vector<value_t> keys(4096);
  for (auto& k : keys) k = static_cast<value_t>(rng.Below(1 << 20));
  std::vector<cluster::KeyOid> out(keys.size());
  ClusterKeyOid(keys, out, /*total_bits=*/5, /*passes=*/2);
  // Every (key, oid) pair must be consistent with the input.
  for (const auto& t : out) {
    ASSERT_EQ(t.key, keys[t.oid]);
  }
}

TEST(PositionalJoinTest, FetchesByPosition) {
  std::vector<value_t> values = {10, 20, 30, 40, 50};
  std::vector<oid_t> ids = {4, 0, 2, 2, 1};
  std::vector<value_t> out(ids.size());
  PositionalJoin<value_t>(ids, values, out);
  EXPECT_EQ(out, (std::vector<value_t>{50, 10, 30, 30, 20}));
}

TEST(PositionalJoinTest, PairsVariantSelectsSide) {
  std::vector<cluster::OidPair> index = {{0, 2}, {1, 0}, {2, 1}};
  std::vector<value_t> values = {100, 200, 300};
  std::vector<value_t> out(3);
  PositionalJoinPairs<value_t, true>(index, values, out);
  EXPECT_EQ(out, (std::vector<value_t>{100, 200, 300}));
  PositionalJoinPairs<value_t, false>(index, values, out);
  EXPECT_EQ(out, (std::vector<value_t>{300, 100, 200}));
}

TEST(JoinIndexTest, SideExtraction) {
  JoinIndex ji;
  ji.Append(1, 9);
  ji.Append(2, 8);
  EXPECT_EQ(ji.LeftOids(), (std::vector<oid_t>{1, 2}));
  EXPECT_EQ(ji.RightOids(), (std::vector<oid_t>{9, 8}));
}

}  // namespace
}  // namespace radix::join
