// Admission-control tests: the AdmissionController directly (FIFO order,
// fail-fast, fake-clock wait accounting) and through the Engine with an
// injected tiny budget and a private MemoryGauge, asserting the headline
// invariant — measured in-flight intermediate bytes never exceed the
// admission budget, and queries queue instead of over-allocating.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "engine/admission.h"
#include "engine/engine.h"
#include "hardware/memory_hierarchy.h"
#include "pipeline/memory_gauge.h"
#include "project/executor.h"
#include "workload/generator.h"

namespace radix::engine {
namespace {

EngineConfig P4Config(size_t threads) {
  EngineConfig cfg;
  cfg.hierarchy = hardware::MemoryHierarchy::Pentium4();
  cfg.num_threads = threads;
  return cfg;
}

workload::JoinWorkload MakeW(size_t n, uint64_t seed = 42) {
  workload::JoinWorkloadSpec spec;
  spec.cardinality = n;
  spec.num_attrs = 4;
  spec.hit_rate = 1.0;
  spec.seed = seed;
  return workload::MakeJoinWorkload(spec);
}

/// A spec with the right side pinned to decluster: the plan that carries a
/// value intermediate (modeled_intermediate_bytes > 0), which is the
/// currency admission reserves in. At these test sizes the planner would
/// otherwise classify the columns cache-resident and pick the
/// intermediate-free clustered plan.
QuerySpec DeclusterSpec() {
  QuerySpec spec;
  spec.plan_sides = false;
  spec.left = project::SideStrategy::kClustered;
  spec.right = project::SideStrategy::kDecluster;
  return spec;
}

/// Spin until `pred` holds, with a generous deadline so a logic bug fails
/// the test instead of hanging the suite.
template <typename Pred>
bool WaitFor(Pred pred) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

TEST(AdmissionControllerTest, ZeroBudgetAdmitsEverythingButKeepsBooks) {
  AdmissionController ctl(/*budget_bytes=*/0);
  EXPECT_TRUE(ctl.Admit(1 << 30).ok());
  EXPECT_TRUE(ctl.Admit(1 << 30).ok());
  AdmissionStats s = ctl.Stats();
  EXPECT_EQ(s.admitted, 2u);
  EXPECT_EQ(s.rejected, 0u);
  EXPECT_EQ(s.reserved_bytes, size_t{2} << 30);
  EXPECT_EQ(s.peak_reserved_bytes, size_t{2} << 30);
  ctl.Release(1 << 30);
  ctl.Release(1 << 30);
  EXPECT_EQ(ctl.Stats().reserved_bytes, 0u);
}

TEST(AdmissionControllerTest, OversizedReservationFailsFast) {
  AdmissionController ctl(/*budget_bytes=*/100);
  Status status = ctl.Admit(101);
  EXPECT_EQ(status.code(), Status::Code::kResourceExhausted);
  AdmissionStats s = ctl.Stats();
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.admitted, 0u);
  EXPECT_EQ(s.reserved_bytes, 0u);
  // An exact-budget reservation is admissible.
  EXPECT_TRUE(ctl.Admit(100).ok());
  ctl.Release(100);
}

TEST(AdmissionControllerTest, WaitersAdmitFifoOnRelease) {
  AdmissionController ctl(/*budget_bytes=*/100);
  ASSERT_TRUE(ctl.Admit(60).ok());  // A holds 60

  std::atomic<bool> b_admitted{false};
  std::atomic<bool> c_admitted{false};
  std::thread b([&] {
    ASSERT_TRUE(ctl.Admit(50).ok());  // 60+50 > 100: must wait for A
    b_admitted.store(true);
  });
  ASSERT_TRUE(WaitFor([&] { return ctl.Stats().waiting == 1; }));

  std::thread c([&] {
    ASSERT_TRUE(ctl.Admit(60).ok());  // queued behind B
    c_admitted.store(true);
  });
  ASSERT_TRUE(WaitFor([&] { return ctl.Stats().waiting == 2; }));
  EXPECT_FALSE(b_admitted.load());
  EXPECT_FALSE(c_admitted.load());

  ctl.Release(60);  // A done: B (50) fits, C (60) must keep waiting
  ASSERT_TRUE(WaitFor([&] { return b_admitted.load(); }));
  EXPECT_TRUE(WaitFor([&] { return ctl.Stats().waiting == 1; }));
  EXPECT_FALSE(c_admitted.load());

  ctl.Release(50);  // B done: C fits
  ASSERT_TRUE(WaitFor([&] { return c_admitted.load(); }));
  ctl.Release(60);

  b.join();
  c.join();
  AdmissionStats s = ctl.Stats();
  EXPECT_EQ(s.admitted, 3u);
  EXPECT_EQ(s.queued, 2u);
  EXPECT_EQ(s.waiting, 0u);
  EXPECT_EQ(s.reserved_bytes, 0u);
  // A released before B could fit, so reservations never overlapped.
  EXPECT_EQ(s.peak_reserved_bytes, 60u);
}

TEST(AdmissionControllerTest, StrictFifoSmallQueryWaitsBehindLargeOne) {
  // C's 10 bytes would fit immediately, but B arrived first and is still
  // parked — strict FIFO means C waits its turn, which is what keeps a
  // large query from being overtaken forever.
  AdmissionController ctl(/*budget_bytes=*/100);
  ASSERT_TRUE(ctl.Admit(60).ok());  // A

  std::atomic<bool> b_admitted{false};
  std::atomic<bool> c_admitted{false};
  std::thread b([&] {
    ASSERT_TRUE(ctl.Admit(50).ok());
    b_admitted.store(true);
  });
  ASSERT_TRUE(WaitFor([&] { return ctl.Stats().waiting == 1; }));

  std::thread c([&] {
    ASSERT_TRUE(ctl.Admit(10).ok());  // fits, but B is ahead
    c_admitted.store(true);
  });
  ASSERT_TRUE(WaitFor([&] { return ctl.Stats().waiting == 2; }));
  // Bounded negative check: C stays parked while B is parked.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(c_admitted.load());

  ctl.Release(60);  // B admits, then C right behind it (50+10 <= 100)
  ASSERT_TRUE(WaitFor([&] { return b_admitted.load(); }));
  ASSERT_TRUE(WaitFor([&] { return c_admitted.load(); }));
  ctl.Release(50);
  ctl.Release(10);
  b.join();
  c.join();
  EXPECT_EQ(ctl.Stats().reserved_bytes, 0u);
}

TEST(AdmissionControllerTest, FakeClockMetersQueueWaitExactly) {
  FakeClock clock;
  AdmissionController ctl(/*budget_bytes=*/100, &clock);
  ASSERT_TRUE(ctl.Admit(80).ok());

  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    ASSERT_TRUE(ctl.Admit(40).ok());
    admitted.store(true);
  });
  // The waiter records its park timestamp in the same critical section
  // that increments `waiting`, so once we observe waiting == 1 the park
  // time is fixed at the current fake now — advancing afterwards meters
  // exactly the advanced nanos, no sleeps involved.
  ASSERT_TRUE(WaitFor([&] { return ctl.Stats().waiting == 1; }));
  clock.AdvanceMillis(7);
  ctl.Release(80);
  waiter.join();
  ASSERT_TRUE(admitted.load());

  AdmissionStats s = ctl.Stats();
  EXPECT_EQ(s.total_queue_wait_nanos, 7u * 1'000'000u);
  EXPECT_EQ(s.queued, 1u);
  ctl.Release(40);
}

// ---------------------------------------------------------------------------
// Engine-level admission.
// ---------------------------------------------------------------------------

TEST(AdmissionControllerTest, ReleaseDoesNotRaceControllerDestruction) {
  // Regression test for a latent destroy race found by the thread-safety
  // annotation pass: Release() used to notify cv_ *after* unlocking mu_,
  // so a waiter could admit, finish, and let the controller be destroyed
  // while the releasing thread still had a cv_.notify_all() in flight —
  // a use-after-free on the condition variable. With notify-under-lock
  // the waiter cannot observe the release before the signal is issued.
  // Timing-dependent: the old code trips TSan/ASan here (this suite runs
  // under both in CI) and can crash outright under enough iterations.
  for (int round = 0; round < 200; ++round) {
    auto ctl = std::make_unique<AdmissionController>(/*budget_bytes=*/100);
    ASSERT_TRUE(ctl->Admit(100).ok());  // fill the budget
    // Releaser thread returns A's reservation while this thread waits.
    std::thread releaser([&] { ctl->Release(100); });
    ASSERT_TRUE(ctl->Admit(100).ok());  // parks until the release
    ctl->Release(100);
    // Destroy while the releaser may still be inside Release(): with the
    // old code its pending notify lands on a freed condition variable.
    ctl.reset();
    releaser.join();
  }
}

TEST(EngineAdmissionTest, OversizedQueryFailsFastWithClearStatus) {
  EngineConfig cfg = P4Config(/*threads=*/1);
  cfg.admission_budget_bytes = 1 << 12;  // 4 KiB: any real join exceeds it
  Engine eng(cfg);

  workload::JoinWorkload w = MakeW(1 << 14);
  QuerySpec spec = DeclusterSpec();  // materializing: intermediate ~ N
  spec.chunking = ChunkingPolicy::kMaterialize;
  PreparedQuery q = eng.Prepare(w, spec);
  ASSERT_GT(q.Explain().modeled_intermediate_bytes, cfg.admission_budget_bytes);

  project::QueryRun run;
  Status status = q.Execute(&run);
  EXPECT_EQ(status.code(), Status::Code::kResourceExhausted);
  // The message should tell the operator what to do about it.
  EXPECT_NE(status.message().find("admission budget"), std::string::npos);
  EngineStats stats = eng.Stats();
  EXPECT_EQ(stats.admission.rejected, 1u);
  EXPECT_EQ(stats.queries_executed, 0u);
}

TEST(EngineAdmissionTest, GaugePeakNeverExceedsBudgetUnderConcurrency) {
  // Instrumented-allocator check of the whole chain: a private MemoryGauge
  // measures the streaming rings' actual bytes while 4 clients push
  // streamed queries through a budget sized for ~2 queries. The measured
  // peak must stay under the budget; with more clients than budget slots,
  // at least one query must have queued.
  pipeline::MemoryGauge gauge;

  EngineConfig cfg = P4Config(/*threads=*/2);
  cfg.gauge = &gauge;
  Engine probe(cfg);

  workload::JoinWorkload w = MakeW(1 << 14);
  QuerySpec spec = DeclusterSpec();
  spec.chunking = ChunkingPolicy::kStream;
  spec.chunk_rows = 1024;
  spec.right_bits = 6;  // ~256 rows/cluster << chunk_rows: no overflow chunks
  const size_t per_query =
      probe.Prepare(w, spec).Explain().modeled_intermediate_bytes;
  ASSERT_GT(per_query, 0u);

  cfg.admission_budget_bytes = 2 * per_query + per_query / 8;  // ~2 slots
  Engine eng(cfg);
  const uint64_t expect_sum = probe.Execute(w, spec).checksum;

  std::atomic<size_t> bad{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < 2; ++i) {
        project::QueryRun run;
        Status status = eng.Prepare(w, spec).Execute(&run);
        if (!status.ok() || run.checksum != expect_sum) bad.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(bad.load(), 0u);

  EngineStats stats = eng.Stats();
  EXPECT_EQ(stats.queries_executed, 8u);
  EXPECT_EQ(stats.admission.reserved_bytes, 0u);
  EXPECT_LE(stats.admission.peak_reserved_bytes, cfg.admission_budget_bytes);
  // The instrumented allocator agrees with the model: measured ring bytes
  // never exceeded what admission allowed in flight.
  EXPECT_LE(gauge.peak_bytes(), cfg.admission_budget_bytes);
  EXPECT_GT(gauge.peak_bytes(), 0u);
  EXPECT_EQ(gauge.current_bytes(), 0u);  // every ring buffer was returned
}

TEST(EngineAdmissionTest, QueriesQueueInsteadOfFailingWhenBudgetIsTight) {
  // Budget for exactly one in-flight query: 4 concurrent clients must all
  // succeed by taking turns, never by erroring out.
  EngineConfig cfg = P4Config(/*threads=*/1);
  Engine probe(cfg);

  workload::JoinWorkload w = MakeW(1 << 13);
  QuerySpec spec = DeclusterSpec();
  spec.chunking = ChunkingPolicy::kStream;
  spec.chunk_rows = 512;
  const size_t per_query =
      probe.Prepare(w, spec).Explain().modeled_intermediate_bytes;
  ASSERT_GT(per_query, 0u);

  cfg.admission_budget_bytes = per_query;  // one slot
  Engine eng(cfg);
  const uint64_t expect_sum = probe.Execute(w, spec).checksum;

  // Each client runs a burst of queries so the single admission slot is
  // contended over a long window: whenever the scheduler parks a client
  // mid-query (reservation held), the others pile up in the FIFO queue.
  constexpr size_t kPerClient = 25;
  std::atomic<size_t> bad{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      for (size_t i = 0; i < kPerClient; ++i) {
        project::QueryRun run;
        Status status = eng.Prepare(w, spec).Execute(&run);
        if (!status.ok() || run.checksum != expect_sum) bad.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(bad.load(), 0u);

  EngineStats stats = eng.Stats();
  EXPECT_EQ(stats.queries_executed, 4 * kPerClient);
  EXPECT_GE(stats.admission.queued, 1u);  // one slot: somebody waited
  EXPECT_EQ(stats.admission.rejected, 0u);
  // The one-slot budget really bounded concurrency: reservations never
  // stacked past a single query's bytes.
  EXPECT_LE(stats.admission.peak_reserved_bytes, cfg.admission_budget_bytes);
}

}  // namespace
}  // namespace radix::engine
