// Tests for Radix-Cluster, radix_count, Radix-Sort and partition planning.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "cluster/partition_plan.h"
#include "cluster/radix_cluster.h"
#include "cluster/radix_count.h"
#include "cluster/radix_sort.h"
#include "common/hash.h"
#include "common/rng.h"
#include "workload/distributions.h"

namespace radix::cluster {
namespace {

std::vector<oid_t> ShuffledOids(size_t n, uint64_t seed) {
  std::vector<oid_t> v(n);
  std::iota(v.begin(), v.end(), 0u);
  Rng rng(seed);
  workload::Shuffle(v.data(), n, rng);
  return v;
}

/// Check that `data` is correctly clustered under `spec`: borders index the
/// array, each element's bucket matches its cluster, and the multiset of
/// values is preserved.
template <typename T, typename RadixFn>
void ExpectClustered(const std::vector<T>& original,
                     const std::vector<T>& clustered,
                     const ClusterBorders& borders, RadixFn radix_of,
                     const ClusterSpec& spec) {
  ASSERT_EQ(borders.num_clusters(), spec.num_clusters());
  ASSERT_EQ(borders.total(), clustered.size());
  for (size_t k = 0; k < borders.num_clusters(); ++k) {
    for (uint64_t i = borders.start(k); i < borders.end(k); ++i) {
      EXPECT_EQ(RadixBits(radix_of(clustered[i]), spec.ignore_bits,
                          spec.total_bits),
                k)
          << "element " << i << " in wrong cluster";
    }
  }
  auto a = original;
  auto b = clustered;
  auto key = [&](const T& x) { return radix_of(x); };
  std::sort(a.begin(), a.end(),
            [&](const T& x, const T& y) { return key(x) < key(y); });
  std::sort(b.begin(), b.end(),
            [&](const T& x, const T& y) { return key(x) < key(y); });
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(key(a[i]), key(b[i]));
  }
}

TEST(RadixClusterTest, SinglePassClustersOids) {
  auto data = ShuffledOids(4096, 1);
  auto original = data;
  ClusterSpec spec{.total_bits = 4, .ignore_bits = 0, .passes = 1};
  ClusterBorders borders =
      RadixCluster(std::span<oid_t>(data), [](oid_t v) { return uint64_t{v}; },
                   spec);
  ExpectClustered(original, data, borders,
                  [](oid_t v) { return uint64_t{v}; }, spec);
}

TEST(RadixClusterTest, MultiPassEqualsSinglePass) {
  auto single = ShuffledOids(10000, 2);
  auto multi = single;
  ClusterSpec one{.total_bits = 6, .ignore_bits = 0, .passes = 1};
  ClusterSpec three{.total_bits = 6, .ignore_bits = 0, .passes = 3};
  auto radix = [](oid_t v) { return uint64_t{v}; };
  ClusterBorders b1 = RadixCluster(std::span<oid_t>(single), radix, one);
  ClusterBorders b3 = RadixCluster(std::span<oid_t>(multi), radix, three);
  EXPECT_EQ(b1.offsets, b3.offsets);
  // Stability makes multi-pass output identical, not just equivalent.
  EXPECT_EQ(single, multi);
}

TEST(RadixClusterTest, IgnoreBitsClusterOnUpperSlice) {
  auto data = ShuffledOids(1 << 12, 3);
  auto original = data;
  // Cluster on bits [8, 12): 16 clusters of 256 consecutive oids each.
  ClusterSpec spec{.total_bits = 4, .ignore_bits = 8, .passes = 1};
  auto radix = [](oid_t v) { return uint64_t{v}; };
  ClusterBorders borders = RadixCluster(std::span<oid_t>(data), radix, spec);
  ExpectClustered(original, data, borders, radix, spec);
  // Every cluster contains exactly the oid range [k*256, (k+1)*256).
  for (size_t k = 0; k < borders.num_clusters(); ++k) {
    EXPECT_EQ(borders.size(k), 256u);
    for (uint64_t i = borders.start(k); i < borders.end(k); ++i) {
      EXPECT_EQ(data[i] >> 8, k);
    }
  }
}

TEST(RadixClusterTest, StableWithinClusters) {
  // Within a cluster, input order must be preserved (the property
  // Radix-Decluster relies on: paper §3.2 property (2)).
  std::vector<KeyOid> data;
  Rng rng(4);
  for (oid_t i = 0; i < 5000; ++i) {
    data.push_back({static_cast<value_t>(rng.Below(64)), i});
  }
  ClusterSpec spec{.total_bits = 3, .ignore_bits = 0, .passes = 2};
  auto radix = [](const KeyOid& t) { return static_cast<uint64_t>(t.key); };
  ClusterBorders borders = RadixCluster(std::span<KeyOid>(data), radix, spec);
  for (size_t k = 0; k < borders.num_clusters(); ++k) {
    for (uint64_t i = borders.start(k) + 1; i < borders.end(k); ++i) {
      EXPECT_LT(data[i - 1].oid, data[i].oid)
          << "cluster " << k << " not stable";
    }
  }
}

TEST(RadixClusterTest, ZeroBitsIsNoOp) {
  auto data = ShuffledOids(100, 5);
  auto original = data;
  ClusterSpec spec{.total_bits = 0, .ignore_bits = 0, .passes = 1};
  ClusterBorders borders = RadixCluster(
      std::span<oid_t>(data), [](oid_t v) { return uint64_t{v}; }, spec);
  EXPECT_EQ(data, original);
  EXPECT_EQ(borders.num_clusters(), 1u);
  EXPECT_EQ(borders.size(0), 100u);
}

TEST(RadixClusterTest, HashedKeysBalanceSkewedInput) {
  // Zipf-skewed keys: hashing must keep clusters within a small factor of
  // the mean (paper §2.2's reason for hashing even integer keys).
  Rng rng(6);
  workload::ZipfGenerator zipf(1 << 16, 0.9);
  std::vector<KeyOid> data(1 << 15);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = {static_cast<value_t>(zipf.Next(rng)), static_cast<oid_t>(i)};
  }
  ClusterSpec spec{.total_bits = 4, .ignore_bits = 0, .passes = 1};
  auto radix = [](const KeyOid& t) { return KeyHash{}(t.key); };
  ClusterBorders borders = RadixCluster(std::span<KeyOid>(data), radix, spec);
  // Duplicates of the hottest key necessarily share a cluster, so allow 2x
  // the mean; without hashing the hottest clusters are ~10x the mean.
  double mean = static_cast<double>(data.size()) / borders.num_clusters();
  for (size_t k = 0; k < borders.num_clusters(); ++k) {
    EXPECT_LT(static_cast<double>(borders.size(k)), mean * 2.0)
        << "cluster " << k << " overloaded despite hashing";
  }
}

struct MultiPassParam {
  size_t n;
  radix_bits_t bits;
  uint32_t passes;
};

class RadixClusterSweep : public ::testing::TestWithParam<MultiPassParam> {};

TEST_P(RadixClusterSweep, ClustersCorrectlyAcrossConfigurations) {
  const auto& p = GetParam();
  auto data = ShuffledOids(p.n, 17 + p.n);
  auto original = data;
  ClusterSpec spec{.total_bits = p.bits, .ignore_bits = 0, .passes = p.passes};
  auto radix = [](oid_t v) { return uint64_t{v}; };
  ClusterBorders borders = RadixCluster(std::span<oid_t>(data), radix, spec);
  ExpectClustered(original, data, borders, radix, spec);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RadixClusterSweep,
    ::testing::Values(MultiPassParam{1, 1, 1}, MultiPassParam{2, 1, 1},
                      MultiPassParam{1000, 1, 1}, MultiPassParam{1000, 5, 1},
                      MultiPassParam{1000, 5, 2}, MultiPassParam{1000, 5, 5},
                      MultiPassParam{1 << 14, 8, 2},
                      MultiPassParam{1 << 14, 10, 3},
                      MultiPassParam{12345, 7, 2},
                      MultiPassParam{1 << 16, 12, 2}));

TEST(RadixCountTest, RecoversBordersOfClusteredColumn) {
  auto data = ShuffledOids(1 << 12, 8);
  ClusterSpec spec{.total_bits = 5, .ignore_bits = 7, .passes = 1};
  auto radix = [](oid_t v) { return uint64_t{v}; };
  ClusterBorders expected = RadixCluster(std::span<oid_t>(data), radix, spec);
  ClusterBorders counted = RadixCount(data, spec.total_bits, spec.ignore_bits);
  EXPECT_EQ(expected.offsets, counted.offsets);
}

TEST(RadixCountTest, DetectsClusteredColumns) {
  auto data = ShuffledOids(4096, 9);
  EXPECT_FALSE(IsRadixClustered(data, 4, 8));
  ClusterSpec spec{.total_bits = 4, .ignore_bits = 8, .passes = 1};
  RadixCluster(std::span<oid_t>(data), [](oid_t v) { return uint64_t{v}; },
               spec);
  EXPECT_TRUE(IsRadixClustered(data, 4, 8));
  // Clustered on 4 upper bits does not imply clustered on more bits.
  EXPECT_FALSE(IsRadixClustered(data, 12, 0));
}

TEST(RadixSortTest, SortsOidsAscending) {
  auto data = ShuffledOids(100000, 10);
  RadixSortOids(std::span<oid_t>(data), 100000);
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
  for (size_t i = 0; i < data.size(); ++i) EXPECT_EQ(data[i], i);
}

TEST(RadixSortTest, SortsJoinIndexByEitherSide) {
  Rng rng(11);
  std::vector<OidPair> index(50000);
  for (size_t i = 0; i < index.size(); ++i) {
    index[i] = {static_cast<oid_t>(rng.Below(1 << 20)),
                static_cast<oid_t>(rng.Below(1 << 20))};
  }
  auto by_left = index;
  RadixSortJoinIndex(std::span<OidPair>(by_left), 1u << 20, /*by_left=*/true);
  EXPECT_TRUE(std::is_sorted(
      by_left.begin(), by_left.end(),
      [](const OidPair& a, const OidPair& b) { return a.left < b.left; }));
  auto by_right = index;
  RadixSortJoinIndex(std::span<OidPair>(by_right), 1u << 20,
                     /*by_left=*/false);
  EXPECT_TRUE(std::is_sorted(
      by_right.begin(), by_right.end(),
      [](const OidPair& a, const OidPair& b) { return a.right < b.right; }));
}

TEST(PartitionPlanTest, PartialClusterBitsMatchesPaperExample) {
  // Paper §3.1: 64KB cache, 4-byte values, 10M-tuple source table
  // -> 2^10 = 1024 clusters (mean cluster 10'000 < 16'384 tuples).
  hardware::MemoryHierarchy hw = hardware::MemoryHierarchy::Pentium4();
  hw.caches.back().capacity_bytes = 64 * 1024;
  radix_bits_t b = PartialClusterBits(10'000'000, 4, hw);
  EXPECT_EQ(b, 10u);
  // And the partial sort may ignore the lowermost log2(10M) - 10 = 14 bits.
  EXPECT_EQ(IgnoreBits(10'000'000, b), 14u);
}

TEST(PartitionPlanTest, ClusterFitsCacheAfterPlanning) {
  hardware::MemoryHierarchy hw = hardware::MemoryHierarchy::Pentium4();
  for (size_t n : {100'000ul, 1'000'000ul, 16'000'000ul}) {
    radix_bits_t b = PartialClusterBits(n, sizeof(value_t), hw);
    double mean_cluster_bytes =
        static_cast<double>(n) * sizeof(value_t) / (1u << b);
    EXPECT_LE(mean_cluster_bytes, hw.target_cache().capacity_bytes)
        << "n=" << n;
  }
}

TEST(PartitionPlanTest, MaxPassBitsRespectsTlb) {
  hardware::MemoryHierarchy hw = hardware::MemoryHierarchy::Pentium4();
  // 64-entry TLB: fan-out per pass must stay at/below 2^6.
  EXPECT_LE(MaxPassBits(hw), 6u);
  EXPECT_GE(MaxPassBits(hw), 4u);
}

TEST(PartitionPlanTest, PassesCoverTotalBits) {
  hardware::MemoryHierarchy hw = hardware::MemoryHierarchy::Pentium4();
  for (radix_bits_t bits = 0; bits <= 24; ++bits) {
    uint32_t passes = PassesFor(bits, hw);
    EXPECT_GE(passes * MaxPassBits(hw), bits);
    EXPECT_GE(passes, 1u);
  }
}

TEST(PartitionPlanTest, PartitionedJoinClustersFitCache) {
  hardware::MemoryHierarchy hw = hardware::MemoryHierarchy::Pentium4();
  radix_bits_t b = PartitionedJoinBits(8'000'000, 8, hw);
  double cluster_bytes = 8'000'000.0 * 8 / (1u << b);
  EXPECT_LE(cluster_bytes * 3, hw.target_cache().capacity_bytes * 1.01);
}

TEST(ClusterSpecTest, ValidateRejectsDegenerateSpecs) {
  // Regression: passes == 0 with total_bits > 0 used to silently return
  // unclustered data labeled as clustered.
  ClusterSpec zero_passes{.total_bits = 4, .ignore_bits = 0, .passes = 0};
  Status st = ValidateClusterSpec(zero_passes);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kInvalidArgument);

  // Bits beyond the 64-bit radix value width: everything would land in
  // cluster 0.
  ClusterSpec too_wide{.total_bits = 16, .ignore_bits = 56, .passes = 1};
  EXPECT_FALSE(ValidateClusterSpec(too_wide).ok());
  // The same spec is fine against a hypothetical wider value.
  EXPECT_TRUE(ValidateClusterSpec(too_wide, /*value_bits=*/72).ok());

  ClusterSpec ok{.total_bits = 12, .ignore_bits = 52, .passes = 3};
  EXPECT_TRUE(ValidateClusterSpec(ok).ok());
  // passes == 0 is invalid even when total_bits == 0 (a no-op spec still
  // must be well-formed).
  ClusterSpec zero_zero{.total_bits = 0, .ignore_bits = 0, .passes = 0};
  EXPECT_FALSE(ValidateClusterSpec(zero_zero).ok());
}

TEST(ClusterSpecDeathTest, KernelChecksSpec) {
  auto data = ShuffledOids(64, 21);
  std::vector<oid_t> scratch(64);
  simcache::NoTracer tracer;
  auto radix = [](oid_t v) { return uint64_t{v}; };
  ClusterSpec zero_passes{.total_bits = 4, .ignore_bits = 0, .passes = 0};
  EXPECT_DEATH(RadixClusterMultiPass(data.data(), scratch.data(), data.size(),
                                     radix, zero_passes, tracer),
               "RADIX_CHECK failed");
  ClusterSpec too_wide{.total_bits = 33, .ignore_bits = 32, .passes = 1};
  EXPECT_DEATH(RadixClusterMultiPass(data.data(), scratch.data(), data.size(),
                                     radix, too_wide, tracer),
               "RADIX_CHECK failed");
}

TEST(ClusterSpecTest, EffectivePassesCountsNonZeroBitPasses) {
  EXPECT_EQ((ClusterSpec{.total_bits = 0, .ignore_bits = 0, .passes = 3})
                .EffectivePasses(),
            0u);
  EXPECT_EQ((ClusterSpec{.total_bits = 6, .ignore_bits = 0, .passes = 1})
                .EffectivePasses(),
            1u);
  // B < P: only B passes get a bit each.
  EXPECT_EQ((ClusterSpec{.total_bits = 2, .ignore_bits = 0, .passes = 5})
                .EffectivePasses(),
            2u);
  EXPECT_EQ((ClusterSpec{.total_bits = 12, .ignore_bits = 0, .passes = 3})
                .EffectivePasses(),
            3u);
}

TEST(ClusterSpecTest, PassBitsSumToTotal) {
  for (uint32_t passes = 1; passes <= 5; ++passes) {
    for (radix_bits_t bits = 0; bits <= 24; ++bits) {
      ClusterSpec spec{.total_bits = bits, .ignore_bits = 0, .passes = passes};
      auto pass_bits = spec.PassBits();
      EXPECT_EQ(pass_bits.size(), passes);
      radix_bits_t sum = 0;
      for (radix_bits_t pb : pass_bits) sum += pb;
      EXPECT_EQ(sum, bits);
    }
  }
}

}  // namespace
}  // namespace radix::cluster
