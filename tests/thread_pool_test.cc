// Tests for the common/thread_pool substrate the parallel radix kernels
// run on: task-queue semantics, ParallelFor coverage, and the size-1
// inline (exact-serial) guarantee.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace radix {
namespace {

TEST(ThreadPoolTest, SizeOnePoolSpawnsNoThreadsAndRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::thread::id caller = std::this_thread::get_id();
  std::vector<size_t> order;
  pool.Submit([&] { order.push_back(1); });
  pool.Submit([&] {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(2);
  });
  pool.Wait();
  EXPECT_EQ(order, (std::vector<size_t>{1, 2}));  // submission order

  std::vector<size_t> visited;
  pool.ParallelFor(5, [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    visited.push_back(i);
  });
  EXPECT_EQ(visited, (std::vector<size_t>{0, 1, 2, 3, 4}));  // index order
}

TEST(ThreadPoolTest, ZeroIsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, SubmitAndWaitRunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
  // The pool is reusable after Wait.
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 101);
}

TEST(ThreadPoolTest, ParallelForVisitsEachIndexExactlyOnce) {
  for (size_t threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    for (size_t n : {0u, 1u, 7u, 1000u}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h.store(0);
      pool.ParallelFor(n, [&](size_t i) { hits[i].fetch_add(1); });
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelForBalancesSkewedItems) {
  // One huge item plus many small ones: the work queue must let other
  // threads drain the small items while one thread owns the huge one
  // (this is the per-cluster skew case of the parallel kernels). We only
  // assert completion + exactly-once, not timing.
  ThreadPool pool(4);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(64, [&](size_t i) {
    uint64_t local = 0;
    size_t spin = (i == 0) ? 200'000 : 100;
    for (size_t k = 0; k < spin; ++k) local += k ^ i;
    sum.fetch_add(local + i);
  });
  uint64_t indices = 64 * 63 / 2;
  EXPECT_GE(sum.load(), indices);
}

TEST(ThreadPoolTest, DestructorJoinsWithQueuedWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.Wait();
  }  // destructor must join cleanly
  EXPECT_EQ(count.load(), 50);
}

}  // namespace
}  // namespace radix
