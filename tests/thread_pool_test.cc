// Tests for the common/thread_pool substrate the parallel radix kernels
// run on: task-queue semantics, ParallelFor coverage, and the size-1
// inline (exact-serial) guarantee.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace radix {
namespace {

TEST(ThreadPoolTest, SizeOnePoolSpawnsNoThreadsAndRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::thread::id caller = std::this_thread::get_id();
  std::vector<size_t> order;
  pool.Submit([&] { order.push_back(1); });
  pool.Submit([&] {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(2);
  });
  pool.Wait();
  EXPECT_EQ(order, (std::vector<size_t>{1, 2}));  // submission order

  std::vector<size_t> visited;
  pool.ParallelFor(5, [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    visited.push_back(i);
  });
  EXPECT_EQ(visited, (std::vector<size_t>{0, 1, 2, 3, 4}));  // index order
}

TEST(ThreadPoolTest, ZeroIsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, SubmitAndWaitRunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
  // The pool is reusable after Wait.
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 101);
}

TEST(ThreadPoolTest, ParallelForVisitsEachIndexExactlyOnce) {
  for (size_t threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    for (size_t n : {0u, 1u, 7u, 1000u}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h.store(0);
      pool.ParallelFor(n, [&](size_t i) { hits[i].fetch_add(1); });
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelForBalancesSkewedItems) {
  // One huge item plus many small ones: the work queue must let other
  // threads drain the small items while one thread owns the huge one
  // (this is the per-cluster skew case of the parallel kernels). We only
  // assert completion + exactly-once, not timing.
  ThreadPool pool(4);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(64, [&](size_t i) {
    uint64_t local = 0;
    size_t spin = (i == 0) ? 200'000 : 100;
    for (size_t k = 0; k < spin; ++k) local += k ^ i;
    sum.fetch_add(local + i);
  });
  uint64_t indices = 64 * 63 / 2;
  EXPECT_GE(sum.load(), indices);
}

TEST(ThreadPoolTest, DestructorJoinsWithQueuedWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.Wait();
  }  // destructor must join cleanly
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, HighPriorityTasksDrainBeforeNormal) {
  // Block the single worker of a 2-pool behind a latch task, queue normal
  // tasks then high ones, release: the high tasks must run first even
  // though they were submitted last.
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  pool.Submit(ThreadPool::Priority::kNormal, [&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });

  std::mutex order_mu;
  std::vector<int> order;
  auto record = [&](int tag) {
    std::lock_guard<std::mutex> lock(order_mu);
    order.push_back(tag);
  };
  pool.Submit(ThreadPool::Priority::kNormal, [&] { record(1); });
  pool.Submit(ThreadPool::Priority::kNormal, [&] { record(2); });
  pool.Submit(ThreadPool::Priority::kHigh, [&] { record(-1); });
  pool.Submit(ThreadPool::Priority::kHigh, [&] { record(-2); });
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.Wait();
  EXPECT_EQ(order, (std::vector<int>{-1, -2, 1, 2}));
}

TEST(ThreadPoolTest, AgingPreventsNormalPriorityStarvation) {
  // Block the single worker of a 2-pool, queue one normal task behind a
  // deep backlog of high tasks, release: strict priority would run the
  // normal task dead last, but the aging pop must serve it somewhere in
  // the middle of the high stream.
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  pool.Submit(ThreadPool::Priority::kNormal, [&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });

  std::mutex order_mu;
  std::vector<int> order;
  auto record = [&](int tag) {
    std::lock_guard<std::mutex> lock(order_mu);
    order.push_back(tag);
  };
  constexpr int kHighTasks = 24;
  pool.Submit(ThreadPool::Priority::kNormal, [&] { record(0); });
  for (int i = 1; i <= kHighTasks; ++i) {
    pool.Submit(ThreadPool::Priority::kHigh, [&, i] { record(i); });
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.Wait();
  ASSERT_EQ(order.size(), static_cast<size_t>(kHighTasks) + 1);
  const auto normal_pos = static_cast<size_t>(
      std::find(order.begin(), order.end(), 0) - order.begin());
  // Not starved to the back of the queue: some high tasks still run after
  // the normal one.
  EXPECT_LT(normal_pos, static_cast<size_t>(kHighTasks));
  // But high priority still dominates: the normal task does not run first.
  EXPECT_GT(normal_pos, 0u);
}

TEST(ThreadPoolTest, ScopedPrioritySetsAmbientPriorityForSubmit) {
  EXPECT_EQ(ThreadPool::CurrentPriority(), ThreadPool::Priority::kNormal);
  {
    ThreadPool::ScopedPriority high(ThreadPool::Priority::kHigh);
    EXPECT_EQ(ThreadPool::CurrentPriority(), ThreadPool::Priority::kHigh);
    {
      ThreadPool::ScopedPriority normal(ThreadPool::Priority::kNormal);
      EXPECT_EQ(ThreadPool::CurrentPriority(),
                ThreadPool::Priority::kNormal);
    }
    EXPECT_EQ(ThreadPool::CurrentPriority(), ThreadPool::Priority::kHigh);
  }
  EXPECT_EQ(ThreadPool::CurrentPriority(), ThreadPool::Priority::kNormal);
}

TEST(ThreadPoolTest, WorkersInheritTaskPriorityForChainedSubmits) {
  // A task submitted at kHigh that itself Submits must stay in the high
  // class — the streaming executor chains gather -> sink submissions and
  // the whole chain has to keep the query's priority.
  ThreadPool pool(2);
  std::atomic<int> observed{-1};
  {
    ThreadPool::ScopedPriority high(ThreadPool::Priority::kHigh);
    pool.Submit([&] {
      // Running on a worker now; ambient priority must be the task's.
      observed.store(
          static_cast<int>(ThreadPool::CurrentPriority()));
    });
  }
  pool.Wait();
  EXPECT_EQ(observed.load(),
            static_cast<int>(ThreadPool::Priority::kHigh));
}

TEST(ThreadPoolTest, ConcurrentParallelForCallsCompleteIndependently) {
  // The per-call completion-group contract under engine-style sharing:
  // several client threads run their own ParallelFor on ONE pool at once;
  // each call must return exactly when its own indices are done, with the
  // right per-call sum — the old pool-wide Wait() would deadlock or
  // over-wait here.
  ThreadPool pool(3);
  constexpr size_t kCallers = 6;
  constexpr size_t kN = 257;  // odd, larger than any worker count
  std::vector<uint64_t> sums(kCallers, 0);
  std::vector<std::thread> callers;
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      std::atomic<uint64_t> sum{0};
      pool.ParallelFor(kN, [&](size_t i) {
        sum.fetch_add(i + 1, std::memory_order_relaxed);
      });
      sums[c] = sum.load();
    });
  }
  for (auto& t : callers) t.join();
  for (size_t c = 0; c < kCallers; ++c) {
    EXPECT_EQ(sums[c], uint64_t{kN} * (kN + 1) / 2) << "caller " << c;
  }
}

TEST(ThreadPoolTest, MixedPriorityParallelForCallsAllComplete) {
  // A heavy normal-priority loop and repeated high-priority loops race on
  // one pool: everything completes with correct sums (no class starves the
  // other — high drains first but normal grains still run on the heavy
  // caller's own thread).
  ThreadPool pool(2);
  std::atomic<uint64_t> heavy_sum{0};
  std::thread heavy([&] {
    ThreadPool::ScopedPriority normal(ThreadPool::Priority::kNormal);
    pool.ParallelFor(2000, [&](size_t i) {
      heavy_sum.fetch_add(i, std::memory_order_relaxed);
    });
  });
  std::atomic<uint64_t> point_sum{0};
  std::thread point([&] {
    ThreadPool::ScopedPriority high(ThreadPool::Priority::kHigh);
    for (int rep = 0; rep < 20; ++rep) {
      pool.ParallelFor(50, [&](size_t i) {
        point_sum.fetch_add(i, std::memory_order_relaxed);
      });
    }
  });
  heavy.join();
  point.join();
  EXPECT_EQ(heavy_sum.load(), uint64_t{2000} * 1999 / 2);
  EXPECT_EQ(point_sum.load(), uint64_t{20} * (50 * 49 / 2));
}

TEST(ThreadPoolTest, TotalConstructedCountsEveryPool) {
  const uint64_t before = ThreadPool::TotalConstructed();
  {
    ThreadPool a(1);
    ThreadPool b(2);
  }
  EXPECT_EQ(ThreadPool::TotalConstructed(), before + 2);
}

}  // namespace
}  // namespace radix
