// Tests for Radix-Decluster: the window merge, cursor handling, row
// variant, and the window policy. The key invariant (paper §3.2): given
// values[] and a radix-clustered permutation ids[], after decluster
// result[ids[i]] == values[i] for all i — i.e., the algorithm is an exact
// cache-friendly scatter.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "cluster/radix_count.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "decluster/radix_decluster.h"
#include "decluster/window.h"
#include "hardware/memory_hierarchy.h"
#include "workload/distributions.h"

namespace radix::decluster {
namespace {

using cluster::ClusterBorders;
using cluster::ClusterSpec;

/// Build a clustered (values, ids) pair of size n with the given bits, in
/// the paper's Fig. 4 distribution: a join index is radix-clustered on the
/// *other* side's oids (a shuffled permutation here) carrying the result
/// positions along. The positions — what Radix-Decluster consumes as ids —
/// are spread over the whole result range but ascend within each cluster
/// and form a dense permutation (§3.2 properties (1)+(2), which debug
/// builds now verify). values[i] = f(ids[i]) so the expected result is
/// value-by-position.
struct ClusteredInput {
  std::vector<value_t> values;
  std::vector<oid_t> ids;
  ClusterBorders borders;
};

ClusteredInput MakeInput(size_t n, radix_bits_t bits, uint64_t seed) {
  struct KeyPos {
    oid_t key, pos;
  };
  std::vector<oid_t> keys(n);
  std::iota(keys.begin(), keys.end(), 0u);
  Rng rng(seed);
  workload::Shuffle(keys.data(), n, rng);
  std::vector<KeyPos> pairs(n);
  for (size_t i = 0; i < n; ++i) {
    pairs[i] = {keys[i], static_cast<oid_t>(i)};
  }

  radix_bits_t sig = SignificantBits(n == 0 ? 1 : n);
  radix_bits_t b = std::min<radix_bits_t>(bits, sig);
  ClusterSpec spec{.total_bits = b,
                   .ignore_bits = static_cast<radix_bits_t>(sig - b),
                   .passes = 1};
  std::vector<KeyPos> scratch(n);
  simcache::NoTracer nt;
  auto radix_of = [](const KeyPos& p) -> uint64_t { return p.key; };
  ClusteredInput in;
  in.borders = cluster::RadixClusterMultiPass(pairs.data(), scratch.data(), n,
                                              radix_of, spec, nt);
  in.ids.resize(n);
  in.values.resize(n);
  for (size_t i = 0; i < n; ++i) {
    in.ids[i] = pairs[i].pos;
    in.values[i] = static_cast<value_t>(pairs[i].pos * 7 + 3);
  }
  return in;
}

void ExpectDeclustered(const ClusteredInput& /*in*/,
                       const std::vector<value_t>& result) {
  for (size_t i = 0; i < result.size(); ++i) {
    ASSERT_EQ(result[i], static_cast<value_t>(i * 7 + 3))
        << "position " << i << " wrong";
  }
}

TEST(RadixDeclusterTest, ScattersExactlyOnePerPosition) {
  ClusteredInput in = MakeInput(1 << 14, 4, 1);
  std::vector<value_t> result(in.ids.size(), -1);
  RadixDecluster<value_t>(in.values, in.ids, in.borders, /*window=*/1024,
                          std::span<value_t>(result));
  ExpectDeclustered(in, result);
}

TEST(RadixDeclusterTest, SingleCluster) {
  // One cluster == ids fully sorted (§3.2 property (2) applied to a single
  // cluster); any window size must work.
  ClusteredInput in = MakeInput(5000, 0, 2);
  std::vector<value_t> result(in.ids.size(), -1);
  RadixDecluster<value_t>(in.values, in.ids, in.borders, 64,
                          std::span<value_t>(result));
  ExpectDeclustered(in, result);
}

TEST(RadixDeclusterTest, WindowLargerThanInput) {
  ClusteredInput in = MakeInput(1000, 3, 3);
  std::vector<value_t> result(in.ids.size(), -1);
  RadixDecluster<value_t>(in.values, in.ids, in.borders, 1u << 20,
                          std::span<value_t>(result));
  ExpectDeclustered(in, result);
}

TEST(RadixDeclusterTest, WindowOfOne) {
  // Degenerate window: every sweep fills exactly one position; still exact.
  ClusteredInput in = MakeInput(512, 4, 4);
  std::vector<value_t> result(in.ids.size(), -1);
  RadixDecluster<value_t>(in.values, in.ids, in.borders, 1,
                          std::span<value_t>(result));
  ExpectDeclustered(in, result);
}

TEST(RadixDeclusterTest, EmptyClustersAreSkipped) {
  // Cluster count far exceeding n leaves most clusters empty; MakeCursors
  // must drop them and the merge must still terminate.
  ClusteredInput in = MakeInput(100, 10, 5);
  EXPECT_GT(in.borders.num_clusters(), 100u);
  std::vector<value_t> result(in.ids.size(), -1);
  RadixDecluster<value_t>(in.values, in.ids, in.borders, 32,
                          std::span<value_t>(result));
  ExpectDeclustered(in, result);
}

TEST(RadixDeclusterTest, SizeOne) {
  ClusteredInput in = MakeInput(1, 1, 6);
  std::vector<value_t> result(1, -1);
  RadixDecluster<value_t>(in.values, in.ids, in.borders, 16,
                          std::span<value_t>(result));
  ExpectDeclustered(in, result);
}

struct DeclusterParam {
  size_t n;
  radix_bits_t bits;
  size_t window;
};

class RadixDeclusterSweep : public ::testing::TestWithParam<DeclusterParam> {};

TEST_P(RadixDeclusterSweep, ExactAcrossGeometries) {
  const auto& p = GetParam();
  ClusteredInput in = MakeInput(p.n, p.bits, 1000 + p.n + p.bits);
  std::vector<value_t> result(in.ids.size(), -1);
  RadixDecluster<value_t>(in.values, in.ids, in.borders, p.window,
                          std::span<value_t>(result));
  ExpectDeclustered(in, result);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RadixDeclusterSweep,
    ::testing::Values(DeclusterParam{1 << 10, 2, 32},
                      DeclusterParam{1 << 10, 5, 128},
                      DeclusterParam{1 << 12, 6, 100},   // non-power-of-two
                      DeclusterParam{1 << 16, 8, 4096},
                      DeclusterParam{100'000, 7, 2048},  // non-power-of-two n
                      DeclusterParam{1 << 18, 10, 1 << 14},
                      DeclusterParam{1 << 18, 3, 1 << 15},
                      DeclusterParam{99, 2, 7}));

TEST_P(RadixDeclusterSweep, ParallelMatchesSerialExactly) {
  const auto& p = GetParam();
  ClusteredInput in = MakeInput(p.n, p.bits, 2000 + p.n + p.bits);
  std::vector<value_t> serial(in.ids.size(), -1);
  RadixDecluster<value_t>(in.values, in.ids, in.borders, p.window,
                          std::span<value_t>(serial));
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    std::vector<value_t> parallel(in.ids.size(), -2);
    RadixDeclusterParallel<value_t>(in.values, in.ids,
                                    MakeCursors(in.borders), p.window,
                                    std::span<value_t>(parallel), pool);
    ASSERT_EQ(parallel, serial) << "threads=" << threads;
  }
}

#ifndef NDEBUG
// Debug builds verify the §3.2 preconditions; a miswired caller must die
// with a check failure instead of producing silently wrong results.
TEST(DeclusterPreconditionDeathTest, CatchesNonAscendingIdsWithinCluster) {
  std::vector<value_t> values = {10, 20, 30, 40};
  std::vector<oid_t> ids = {0, 2, 1, 3};  // 2 > 1: not ascending
  cluster::ClusterBorders borders;
  borders.offsets = {0, 4};
  std::vector<value_t> result(4, -1);
  EXPECT_DEATH(RadixDecluster<value_t>(values, ids, borders, 2,
                                       std::span<value_t>(result)),
               "RADIX_CHECK failed");
}

TEST(DeclusterPreconditionDeathTest, CatchesDuplicateResultPositions) {
  std::vector<value_t> values = {10, 20, 30, 40};
  // Ascending per cluster but id 1 appears in both clusters: not a
  // permutation, result slot 3 would never be written.
  std::vector<oid_t> ids = {0, 1, 1, 2};
  cluster::ClusterBorders borders;
  borders.offsets = {0, 2, 4};
  std::vector<value_t> result(4, -1);
  EXPECT_DEATH(RadixDecluster<value_t>(values, ids, borders, 2,
                                       std::span<value_t>(result)),
               "RADIX_CHECK failed");
}

TEST(DeclusterPreconditionDeathTest, CatchesIdsBeyondResult) {
  std::vector<value_t> values = {10, 20};
  std::vector<oid_t> ids = {0, 7};  // 7 outside [0, 2)
  cluster::ClusterBorders borders;
  borders.offsets = {0, 2};
  std::vector<value_t> result(2, -1);
  EXPECT_DEATH(RadixDecluster<value_t>(values, ids, borders, 2,
                                       std::span<value_t>(result)),
               "RADIX_CHECK failed");
}

TEST(DeclusterPreconditionDeathTest, CatchesCursorsNotCoveringIds) {
  std::vector<value_t> values = {10, 20, 30, 40};
  std::vector<oid_t> ids = {0, 1, 2, 3};
  // Cursors cover only the first half: slots 2 and 3 would stay stale.
  std::vector<ClusterCursor> cursors = {{0, 2}};
  std::vector<value_t> result(4, -1);
  EXPECT_DEATH(RadixDecluster<value_t>(values, ids, std::move(cursors), 2,
                                       std::span<value_t>(result)),
               "RADIX_CHECK failed");
}
#endif  // NDEBUG

TEST(RadixDeclusterRowsTest, DeclustersFixedWidthRows) {
  constexpr size_t kRowValues = 5;
  size_t n = 1 << 12;
  ClusteredInput in = MakeInput(n, 5, 7);
  std::vector<value_t> rows(n * kRowValues);
  for (size_t i = 0; i < n; ++i) {
    for (size_t a = 0; a < kRowValues; ++a) {
      rows[i * kRowValues + a] = static_cast<value_t>(in.ids[i] * 10 + a);
    }
  }
  std::vector<value_t> result(n * kRowValues, -1);
  RadixDeclusterRows(reinterpret_cast<const uint8_t*>(rows.data()),
                     kRowValues * sizeof(value_t), in.ids,
                     MakeCursors(in.borders), 512,
                     reinterpret_cast<uint8_t*>(result.data()));
  for (size_t i = 0; i < n; ++i) {
    for (size_t a = 0; a < kRowValues; ++a) {
      ASSERT_EQ(result[i * kRowValues + a], static_cast<value_t>(i * 10 + a));
    }
  }
}

TEST(MakeCursorsTest, DropsEmptyClusters) {
  ClusterBorders borders;
  borders.offsets = {0, 0, 5, 5, 9, 9};
  auto cursors = MakeCursors(borders);
  ASSERT_EQ(cursors.size(), 2u);
  EXPECT_EQ(cursors[0].start, 0u);
  EXPECT_EQ(cursors[0].end, 5u);
  EXPECT_EQ(cursors[1].start, 5u);
  EXPECT_EQ(cursors[1].end, 9u);
}

TEST(WindowPolicyTest, DefaultWindowIsHalfCache) {
  hardware::MemoryHierarchy hw = hardware::MemoryHierarchy::Pentium4();
  // Paper Fig. 6: windowSize = CACHESIZE / (2 * sizeof(T)).
  EXPECT_EQ(WindowPolicy::DefaultWindowElems(hw, 4), 512u * 1024 / 8);
}

TEST(WindowPolicyTest, WindowNeverExceedsCache) {
  hardware::MemoryHierarchy hw = hardware::MemoryHierarchy::Pentium4();
  for (size_t clusters : {1ul, 64ul, 1024ul, 65536ul}) {
    size_t w = WindowPolicy::ChooseWindowElems(hw, 4, clusters, 10'000'000);
    EXPECT_LE(w * 4, hw.target_cache().capacity_bytes);
  }
}

TEST(WindowPolicyTest, MaxCardinalityMatchesPaperFormula) {
  // Paper §4.1: |R| <= C^2 / (32 * width^2); for the P4's 512KB L2 and
  // 4-byte values that is 512K*512K/(32*16) = 2^38 / 2^9 = 2^29 ≈ 0.5G
  // tuples ("the 512KB cache of a Pentium4 allows to project relations of
  // up to half a billion tuples", §6).
  hardware::MemoryHierarchy hw = hardware::MemoryHierarchy::Pentium4();
  size_t max_n = WindowPolicy::MaxEfficientCardinality(hw, 4);
  EXPECT_EQ(max_n, size_t{1} << 29);
}

TEST(PagedLikeDeclusterProperty, DeclusterIsInverseOfCluster) {
  // Property: for any permutation ids, cluster-then-decluster is identity
  // on the payload column. Uses random bits/window per round.
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    size_t n = 500 + rng.Below(5000);
    radix_bits_t bits = 1 + static_cast<radix_bits_t>(rng.Below(8));
    size_t window = 1 + rng.Below(2048);
    ClusteredInput in = MakeInput(n, bits, 7000 + round);
    std::vector<value_t> result(n, -1);
    RadixDecluster<value_t>(in.values, in.ids, in.borders, window,
                            std::span<value_t>(result));
    ExpectDeclustered(in, result);
  }
}

}  // namespace
}  // namespace radix::decluster
