// Tests for memory-hierarchy descriptors and the runtime calibrator.

#include <gtest/gtest.h>

#include "hardware/calibrator.h"
#include "hardware/memory_hierarchy.h"

namespace radix::hardware {
namespace {

TEST(MemoryHierarchyTest, Pentium4MatchesPaperSection4) {
  MemoryHierarchy hw = MemoryHierarchy::Pentium4();
  ASSERT_EQ(hw.caches.size(), 2u);
  EXPECT_EQ(hw.l1().capacity_bytes, 16u * 1024);
  EXPECT_EQ(hw.l1().line_bytes, 32u);
  EXPECT_EQ(hw.target_cache().capacity_bytes, 512u * 1024);
  EXPECT_EQ(hw.target_cache().line_bytes, 128u);
  EXPECT_DOUBLE_EQ(hw.target_cache().miss_latency_ns, 178.0);  // quoted RAM latency
  EXPECT_EQ(hw.tlb.entries, 64u);
  EXPECT_DOUBLE_EQ(hw.ram_seq_bandwidth_gbs, 3.2);  // STREAM figure in §1.1
}

TEST(MemoryHierarchyTest, SequentialVsRandomGapIsLarge) {
  // §1.1: sequential access ~10x faster than "optimal" random access
  // (3.2GB/s vs 360MB/s). Check the descriptor reproduces that ratio.
  MemoryHierarchy hw = MemoryHierarchy::Pentium4();
  double random_mbs = hw.target_cache().line_bytes /
                      (hw.target_cache().miss_latency_ns * 1e-9) / 1e6;
  EXPECT_NEAR(random_mbs, 719.0, 1.0);  // 128B / 178ns
  // With the paper's 64B-per-line accounting: 64/178ns = 360MB/s.
  EXPECT_NEAR(64 / (178e-9) / 1e6, 360, 1.0);
  EXPECT_GT(hw.ram_seq_bandwidth_gbs * 1000 / 360, 8.0);
}

TEST(MemoryHierarchyTest, DetectReturnsUsableGeometry) {
  MemoryHierarchy hw = MemoryHierarchy::Detect();
  ASSERT_GE(hw.caches.size(), 2u);
  EXPECT_GT(hw.l1().capacity_bytes, 0u);
  EXPECT_GT(hw.l1().line_bytes, 0u);
  EXPECT_GT(hw.target_cache().capacity_bytes, hw.l1().capacity_bytes / 2);
  EXPECT_GT(hw.tlb.page_bytes, 0u);
  EXPECT_FALSE(hw.ToString().empty());
}

TEST(CalibratorTest, ChaseLatencyGrowsWithWorkingSet) {
  Calibrator::Options opts;
  opts.accesses_per_point = 1 << 18;  // keep the test fast
  opts.max_working_set_bytes = 16 << 20;
  Calibrator cal(opts);
  double small = cal.MeasureChaseLatency(8 * 1024);
  double large = cal.MeasureChaseLatency(16 << 20);
  // Out-of-cache chases must be substantially slower than in-L1 chases.
  EXPECT_GT(large, small * 3) << "small=" << small << " large=" << large;
}

TEST(CalibratorTest, SequentialBandwidthIsPositive) {
  Calibrator::Options opts;
  opts.max_working_set_bytes = 8 << 20;
  Calibrator cal(opts);
  double gbs = cal.MeasureSequentialBandwidthGbs();
  EXPECT_GT(gbs, 0.5);
  EXPECT_LT(gbs, 1000.0);
}

TEST(CalibratorTest, KernelSpeedsAreSane) {
  Calibrator cal;
  Calibrator::KernelSpeeds speeds = cal.MeasureKernelSpeeds();
  // Cache-resident per-tuple costs: positive, and nowhere near DRAM
  // latency (a value that large would mean the measurement escaped cache
  // or the dispatched kernel is broken).
  EXPECT_GT(speeds.gather_ns_per_tuple, 0.0);
  EXPECT_LT(speeds.gather_ns_per_tuple, 100.0);
  EXPECT_GT(speeds.cluster_ns_per_tuple, 0.0);
  EXPECT_LT(speeds.cluster_ns_per_tuple, 100.0);
}

}  // namespace
}  // namespace radix::hardware
