// Tests for the storage layer: columns, BATs (void heads, mark), DSM and
// NSM relations.

#include <gtest/gtest.h>

#include "storage/bat.h"
#include "storage/column.h"
#include "storage/dsm.h"
#include "storage/nsm.h"

namespace radix::storage {
namespace {

TEST(ColumnTest, ResizeAndAccess) {
  Column<value_t> col(10);
  EXPECT_EQ(col.size(), 10u);
  EXPECT_EQ(col.size_bytes(), 40u);
  for (size_t i = 0; i < 10; ++i) col[i] = static_cast<value_t>(i * i);
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(col[i], static_cast<value_t>(i * i));
}

TEST(ColumnTest, DataIsCacheLineAligned) {
  Column<value_t> col(1000);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(col.data()) % 64, 0u);
}

TEST(ColumnTest, CloneIsDeep) {
  Column<value_t> col(4);
  for (size_t i = 0; i < 4; ++i) col[i] = static_cast<value_t>(i);
  Column<value_t> copy = col.Clone();
  copy[0] = 99;
  EXPECT_EQ(col[0], 0);
  EXPECT_EQ(copy[0], 99);
}

TEST(ColumnTest, SpanAndIteration) {
  Column<value_t> col(5);
  for (size_t i = 0; i < 5; ++i) col[i] = 1;
  value_t sum = 0;
  for (value_t v : col) sum += v;
  EXPECT_EQ(sum, 5);
  EXPECT_EQ(col.span().size(), 5u);
}

TEST(BatTest, VoidHeadIsImplicitSequence) {
  // Void columns represent densely ascending oids with zero storage
  // (paper §1.1 "virtual-oids").
  auto bat = Bat<value_t>::MakeVoid(5, /*seqbase=*/100);
  EXPECT_TRUE(bat.void_head());
  EXPECT_EQ(bat.head(0), 100u);
  EXPECT_EQ(bat.head(4), 104u);
  EXPECT_EQ(bat.head_column().size(), 0u);  // no physical storage
}

TEST(BatTest, MaterializedHead) {
  auto bat = Bat<value_t>::MakeMaterialized(3);
  bat.head_column()[0] = 7;
  bat.head_column()[1] = 3;
  bat.head_column()[2] = 9;
  EXPECT_FALSE(bat.void_head());
  EXPECT_EQ(bat.head(1), 3u);
}

TEST(BatTest, MarkReheadsWithFreshVoid) {
  auto bat = Bat<value_t>::MakeMaterialized(3);
  bat.tail()[0] = 11;
  bat.tail()[1] = 22;
  bat.tail()[2] = 33;
  auto marked = std::move(bat).Mark(0);
  EXPECT_TRUE(marked.void_head());
  EXPECT_EQ(marked.head(2), 2u);
  EXPECT_EQ(marked.tail()[2], 33);
}

TEST(DsmRelationTest, ColumnsAreIndependentArrays) {
  DsmRelation rel("t", 100, 3);
  EXPECT_EQ(rel.cardinality(), 100u);
  EXPECT_EQ(rel.num_attrs(), 3u);
  rel.key()[0] = 42;
  rel.attr(1)[0] = 1;
  rel.attr(2)[0] = 2;
  EXPECT_EQ(rel.attr(0)[0], 42);
  EXPECT_NE(rel.attr(1).data(), rel.attr(2).data());
}

TEST(DsmRelationTest, ProjectionBytesIgnoresUnusedColumns) {
  DsmRelation rel("t", 1000, 64);
  // DSM touches only the projected columns (paper §1.1).
  EXPECT_EQ(rel.projection_bytes(4), 4 * 1000 * sizeof(value_t));
}

TEST(NsmRelationTest, RecordsAreContiguous) {
  NsmRelation rel("t", 10, 4);
  EXPECT_EQ(rel.record_bytes(), 16u);
  for (size_t i = 0; i < 10; ++i) {
    for (size_t a = 0; a < 4; ++a) {
      rel.set_attr(i, a, static_cast<value_t>(i * 10 + a));
    }
  }
  EXPECT_EQ(rel.key(3), 30);
  EXPECT_EQ(rel.attr(3, 2), 32);
  // Contiguity: record(i+1) starts right after record(i).
  EXPECT_EQ(rel.record(1), rel.record(0) + 4);
}

TEST(NsmRelationTest, ProjectRecordExtractsSelectedAttrs) {
  NsmRelation rel("t", 2, 8);
  for (size_t a = 0; a < 8; ++a) rel.set_attr(1, a, static_cast<value_t>(a));
  uint16_t attrs[3] = {1, 4, 7};
  value_t out[3];
  rel.ProjectRecord(1, attrs, 3, out);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 4);
  EXPECT_EQ(out[2], 7);
}

TEST(NsmResultTest, RowMajorLayout) {
  NsmResult r(3, 2);
  r.row(1)[0] = 5;
  r.row(1)[1] = 6;
  EXPECT_EQ(r.cardinality(), 3u);
  EXPECT_EQ(r.width(), 2u);
  EXPECT_EQ(r.row(1)[1], 6);
  EXPECT_EQ(r.row(0) + 2, r.row(1));
}

}  // namespace
}  // namespace radix::storage
