// Ablations for the design choices DESIGN.md calls out:
//  1. the w >= 32 tuples-per-cluster-per-sweep rule (sweep w directly);
//  2. multi-pass vs single-pass Radix-Cluster at high fan-out;
//  3. hashed vs identity clustering under Zipf key skew;
//  4. paged (Section 5, three-phase) vs flat Radix-Decluster overhead;
//  5. serial vs parallel Radix-Cluster / Radix-Decluster (the threads=1
//     row IS the serial kernel; output is byte-identical by contract);
//  6. materializing vs streaming (pipeline/) post-projection at the
//     paper's 8M-tuple scale: same checksum, chunk-bounded intermediates,
//     overlapped gather/decluster phases;
//  7. scalar vs runtime-dispatched SIMD variants of the hot kernels
//     (radix_count histogram+prefix, positional gather, clustering
//     scatter), with byte-identity checksums CI can compare.

#include <benchmark/benchmark.h>

#include <numeric>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bufferpool/buffer_manager.h"
#include "cluster/partition_plan.h"
#include "cluster/radix_cluster.h"
#include "common/bits.h"
#include "common/cpu_dispatch.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/simd_kernels.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "decluster/paged_decluster.h"
#include "decluster/radix_decluster.h"
#include "decluster/window.h"
#include "engine/engine.h"
#include "pipeline/memory_gauge.h"
#include "project/executor.h"
#include "workload/distributions.h"
#include "workload/generator.h"

namespace {

using namespace radix;  // NOLINT

using ClusteredIds = radix::bench::DeclusterInput;

ClusteredIds MakeClustered(size_t n, radix_bits_t bits, uint64_t seed) {
  return radix::bench::MakeDeclusterInput(n, bits, seed);
}

// ----------------------------------------------------- 1. the w = 32 rule
void BM_TuplesPerClusterSweep(benchmark::State& state) {
  size_t n = radix::bench::ScaledN(4'000'000, 1'000'000);
  constexpr radix_bits_t kBits = 10;
  static ClusteredIds c = MakeClustered(n, kBits, 1);
  size_t w = static_cast<size_t>(state.range(0));  // tuples/cluster/sweep
  size_t window = w << kBits;
  std::vector<value_t> result(n);
  for (auto _ : state) {
    decluster::RadixDecluster<value_t>(c.values, c.ids,
                                       decluster::MakeCursors(c.borders),
                                       window, std::span<value_t>(result));
    benchmark::DoNotOptimize(result.data());
  }
  state.counters["w"] = static_cast<double>(w);
  state.counters["window_KB"] =
      static_cast<double>(window * sizeof(value_t)) / 1024;
}
BENCHMARK(BM_TuplesPerClusterSweep)
    ->RangeMultiplier(2)
    ->Range(1, 256)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// ------------------------------------ 2. multi-pass vs single-pass cluster
void BM_ClusterPasses(benchmark::State& state) {
  size_t n = radix::bench::ScaledN(4'000'000, 1'000'000);
  radix_bits_t bits = 14;  // far beyond one pass's healthy fan-out
  uint32_t passes = static_cast<uint32_t>(state.range(0));
  std::vector<cluster::KeyOid> data(n);
  Rng rng(2);
  for (size_t i = 0; i < n; ++i) {
    data[i] = {static_cast<value_t>(rng.Below(n)), static_cast<oid_t>(i)};
  }
  std::vector<cluster::KeyOid> scratch(n);
  auto radix_of = [](const cluster::KeyOid& t) { return KeyHash{}(t.key); };
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<cluster::KeyOid> work = data;
    state.ResumeTiming();
    cluster::ClusterSpec spec{.total_bits = bits, .ignore_bits = 0,
                              .passes = passes};
    simcache::NoTracer tracer;
    auto borders = cluster::RadixClusterMultiPass(work.data(), scratch.data(),
                                                  n, radix_of, spec, tracer);
    benchmark::DoNotOptimize(borders.offsets.data());
  }
  state.counters["passes"] = passes;
  state.counters["B"] = bits;
}
BENCHMARK(BM_ClusterPasses)
    ->DenseRange(1, 4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// ------------------------------------------- 3. hashing vs skewed inputs
// Keys are distinct but pathological for low-bit clustering (multiples of
// 4096, as surrogate keys from sequence generators often are): clustering
// on the raw low bits collapses everything into one cluster, while hashing
// "ensures that all bits of the join attribute play a role" (paper §2.2).
void BM_ClusterSkew(benchmark::State& state) {
  size_t n = radix::bench::ScaledN(2'000'000, 500'000);
  bool hashed = state.range(0) != 0;
  std::vector<cluster::KeyOid> data(n);
  for (size_t i = 0; i < n; ++i) {
    data[i] = {static_cast<value_t>(i * 4096), static_cast<oid_t>(i)};
  }
  std::vector<cluster::KeyOid> scratch(n);
  double max_over_mean = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<cluster::KeyOid> work = data;
    state.ResumeTiming();
    cluster::ClusterSpec spec{.total_bits = 8, .ignore_bits = 0, .passes = 2};
    simcache::NoTracer tracer;
    cluster::ClusterBorders borders;
    if (hashed) {
      auto radix_of = [](const cluster::KeyOid& t) { return KeyHash{}(t.key); };
      borders = cluster::RadixClusterMultiPass(work.data(), scratch.data(), n,
                                               radix_of, spec, tracer);
    } else {
      auto radix_of = [](const cluster::KeyOid& t) {
        return static_cast<uint64_t>(static_cast<uint32_t>(t.key));
      };
      borders = cluster::RadixClusterMultiPass(work.data(), scratch.data(), n,
                                               radix_of, spec, tracer);
    }
    uint64_t max_size = 0;
    for (size_t k = 0; k < borders.num_clusters(); ++k) {
      max_size = std::max(max_size, borders.size(k));
    }
    max_over_mean = static_cast<double>(max_size) * borders.num_clusters() /
                    static_cast<double>(n);
    benchmark::DoNotOptimize(borders.offsets.data());
  }
  state.counters["hashed"] = hashed ? 1 : 0;
  state.counters["max_cluster_over_mean"] = max_over_mean;
}
BENCHMARK(BM_ClusterSkew)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// ----------------------------------------- 4. paged vs flat decluster
void BM_FlatDecluster(benchmark::State& state) {
  size_t n = radix::bench::ScaledN(2'000'000, 500'000);
  static ClusteredIds c = MakeClustered(n, 8, 4);
  std::vector<value_t> result(n);
  for (auto _ : state) {
    decluster::RadixDecluster<value_t>(c.values, c.ids,
                                       decluster::MakeCursors(c.borders),
                                       64 * 1024, std::span<value_t>(result));
    benchmark::DoNotOptimize(result.data());
  }
  state.counters["variant"] = 0;
}
BENCHMARK(BM_FlatDecluster)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_PagedDeclusterFixedValues(benchmark::State& state) {
  size_t n = radix::bench::ScaledN(2'000'000, 500'000);
  static ClusteredIds c = MakeClustered(n, 8, 4);
  for (auto _ : state) {
    bufferpool::BufferManager bm(8192);
    auto result = decluster::PagedDeclusterFixed(c.values, c.ids, c.borders,
                                                 64 * 1024, &bm);
    benchmark::DoNotOptimize(result.directory.data());
  }
  state.counters["variant"] = 1;
}
BENCHMARK(BM_PagedDeclusterFixedValues)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_PagedDeclusterVarStrings(benchmark::State& state) {
  size_t n = radix::bench::ScaledN(500'000, 200'000);
  static ClusteredIds c = MakeClustered(n, 8, 5);
  static decluster::VarValues values = [] {
    decluster::VarValues v;
    for (oid_t id : c.ids) {
      v.Append("value-" + std::to_string(id));
    }
    return v;
  }();
  for (auto _ : state) {
    bufferpool::BufferManager bm(8192);
    auto result =
        decluster::PagedDeclusterVar(values, c.ids, c.borders, 64 * 1024, &bm);
    benchmark::DoNotOptimize(result.directory.data());
  }
  state.counters["variant"] = 2;
}
BENCHMARK(BM_PagedDeclusterVarStrings)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// --------------------------------------- 5. serial vs parallel kernels
// Paper-scale cardinality (8M tuples, the Fig. 7–9 setting). The serial
// column is Arg(0)=1: a size-1 pool runs the exact serial code path, so
// speedup_vs_serial reads directly off this table.
void BM_ParallelCluster(benchmark::State& state) {
  size_t n = radix::bench::ScaledN(8'000'000, 1'000'000);
  size_t threads = static_cast<size_t>(state.range(0));
  radix_bits_t bits = 14;
  uint32_t passes = cluster::PassesFor(bits, radix::bench::BenchHw());
  std::vector<cluster::KeyOid> data(n);
  Rng rng(7);
  for (size_t i = 0; i < n; ++i) {
    data[i] = {static_cast<value_t>(rng.Below(n)), static_cast<oid_t>(i)};
  }
  std::vector<cluster::KeyOid> scratch(n);
  ThreadPool pool(threads);
  auto radix_of = [](const cluster::KeyOid& t) { return KeyHash{}(t.key); };
  cluster::ClusterSpec spec{.total_bits = bits, .ignore_bits = 0,
                            .passes = passes};
  double seconds = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<cluster::KeyOid> work = data;
    state.ResumeTiming();
    Timer timer;
    auto borders = cluster::RadixClusterMultiPassParallel(
        work.data(), scratch.data(), n, radix_of, spec, pool);
    seconds += timer.ElapsedSeconds();
    benchmark::DoNotOptimize(borders.offsets.data());
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["N"] = static_cast<double>(n);
  state.counters["B"] = bits;
  state.counters["passes"] = passes;
  state.counters["cluster_ms"] =
      seconds * 1e3 / static_cast<double>(state.iterations());
}
BENCHMARK(BM_ParallelCluster)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_ParallelDecluster(benchmark::State& state) {
  size_t n = radix::bench::ScaledN(8'000'000, 1'000'000);
  size_t threads = static_cast<size_t>(state.range(0));
  constexpr radix_bits_t kBits = 10;
  static ClusteredIds c = MakeClustered(n, kBits, 11);
  size_t window = decluster::WindowPolicy::ChooseWindowElems(
      radix::bench::BenchHw(), sizeof(value_t), c.borders.num_clusters(), n);
  ThreadPool pool(threads);
  std::vector<value_t> result(n);
  auto cursors = decluster::MakeCursors(c.borders);
  for (auto _ : state) {
    decluster::RadixDeclusterParallel<value_t>(c.values, c.ids, cursors,
                                               window,
                                               std::span<value_t>(result),
                                               pool);
    benchmark::DoNotOptimize(result.data());
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["N"] = static_cast<double>(n);
  state.counters["B"] = kBits;
  state.counters["window_KB"] =
      static_cast<double>(window * sizeof(value_t)) / 1024;
}
BENCHMARK(BM_ParallelDecluster)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// ----------------------------- 6. materializing vs streaming projection
// The Fig. 10/11 DSM post-projection query at paper scale (8M tuples),
// executed materializing (RunQuery) vs streamed (RunQueryStreaming with a
// cache-sized chunk). Checksums must agree; the streaming row additionally
// reports peak intermediate bytes (MemoryGauge) and the overlapped
// pipeline's wall share.
const workload::JoinWorkload& AblationQueryWorkload() {
  static const workload::JoinWorkload w = [] {
    workload::JoinWorkloadSpec spec;
    spec.cardinality = radix::bench::ScaledN(8'000'000, 1'000'000);
    spec.num_attrs = 4;
    spec.hit_rate = 1.0;
    spec.seed = 29;
    spec.build_nsm = false;  // DSM-only ablation; halve the footprint
    return workload::MakeJoinWorkload(spec);
  }();
  return w;
}

engine::QuerySpec AblationQuerySpec(engine::ChunkingPolicy chunking) {
  engine::QuerySpec spec;
  spec.pi_left = 3;
  spec.pi_right = 3;
  spec.plan_sides = false;  // pin c/d so both variants take the full path
  spec.left = project::SideStrategy::kClustered;
  spec.right = project::SideStrategy::kDecluster;
  spec.chunking = chunking;
  return spec;
}

void BM_QueryMaterializing(benchmark::State& state) {
  const workload::JoinWorkload& w = AblationQueryWorkload();
  size_t threads = static_cast<size_t>(state.range(0));
  engine::QuerySpec spec =
      AblationQuerySpec(engine::ChunkingPolicy::kMaterialize);
  uint64_t checksum = 0;
  size_t threads_used = 1;
  project::PhaseBreakdown phases;
  for (auto _ : state) {
    project::QueryRun run =
        radix::bench::BenchEngine(threads).Execute(w, spec);
    checksum = run.checksum;
    phases = run.phases;
    threads_used = run.threads_used;
    benchmark::DoNotOptimize(checksum);
  }
  state.counters["threads"] = static_cast<double>(threads_used);
  state.counters["N"] = static_cast<double>(w.dsm_left.cardinality());
  state.counters["checksum_lo32"] =
      static_cast<double>(checksum & 0xffffffffu);
  state.counters["busy_total_ms"] = phases.busy_total() * 1e3;
}
BENCHMARK(BM_QueryMaterializing)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_QueryStreaming(benchmark::State& state) {
  const workload::JoinWorkload& w = AblationQueryWorkload();
  size_t threads = static_cast<size_t>(state.range(0));
  engine::QuerySpec spec = AblationQuerySpec(engine::ChunkingPolicy::kStream);
  spec.chunk_rows = 0;  // auto: cache-sized chunks
  pipeline::MemoryGauge& gauge = pipeline::MemoryGauge::Instance();
  uint64_t checksum = 0;
  size_t threads_used = 1;
  project::PhaseBreakdown phases;
  size_t peak = 0;
  for (auto _ : state) {
    gauge.ResetPeak();
    size_t before = gauge.current_bytes();
    project::QueryRun run =
        radix::bench::BenchEngine(threads).Execute(w, spec);
    peak = gauge.peak_bytes() - before;
    checksum = run.checksum;
    phases = run.phases;
    threads_used = run.threads_used;
    benchmark::DoNotOptimize(checksum);
  }
  state.counters["threads"] = static_cast<double>(threads_used);
  state.counters["N"] = static_cast<double>(w.dsm_left.cardinality());
  state.counters["checksum_lo32"] =
      static_cast<double>(checksum & 0xffffffffu);
  state.counters["peak_intermediate_KB"] = static_cast<double>(peak) / 1024;
  state.counters["pipeline_wall_ms"] = phases.pipeline_wall_seconds * 1e3;
  state.counters["busy_total_ms"] = phases.busy_total() * 1e3;
}
BENCHMARK(BM_QueryStreaming)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// ------------------------------- 7. scalar vs dispatched SIMD kernels
// Arg(0) selects the variant: 0 = the scalar reference table, 1 = the
// dispatched table (whatever cpu::ActiveIsa() resolved to — the `isa`
// counter says which, and the row label names it). Each pair of rows
// carries an identical-input checksum; CI asserts both rows exist and the
// checksums match (byte-identical contract), while the speedup itself is
// only recorded — 1-CPU shared runners make a gated ratio meaningless.

// FNV-1a over a byte range: order-sensitive, so any scatter/gather
// reordering or value difference moves it.
uint64_t Fnv1a(const void* data, size_t bytes) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < bytes; ++i) {
    h = (h ^ p[i]) * 1099511628211ull;
  }
  return h;
}

const simd::KernelTable& DispatchTable(benchmark::State& state) {
  const bool dispatched = state.range(0) != 0;
  const simd::KernelTable& table =
      dispatched ? simd::Kernels() : *simd::detail::ScalarKernels();
  state.SetLabel(table.isa == cpu::Isa::kScalar && dispatched
                     ? "dispatched:scalar"
                     : (dispatched ? std::string("dispatched:") +
                                         cpu::IsaName(table.isa)
                                   : "scalar"));
  state.counters["isa"] = static_cast<double>(table.isa);
  return table;
}

void BM_DispatchRadixCount(benchmark::State& state) {
  size_t n = radix::bench::ScaledN(8'000'000, 1'000'000);
  constexpr radix_bits_t kBits = 10;
  static std::vector<uint32_t> values = [&] {
    std::vector<uint32_t> v(n);
    Rng rng(41);
    for (auto& x : v) x = static_cast<uint32_t>(rng.Next());
    return v;
  }();
  const simd::KernelTable& table = DispatchTable(state);
  std::vector<uint64_t> hist(size_t{1} << kBits);
  std::vector<uint64_t> offsets((size_t{1} << kBits) + 1);
  for (auto _ : state) {
    std::fill(hist.begin(), hist.end(), 0);
    table.radix_histogram(values.data(), n, 0, kBits, hist.data());
    table.prefix_sum(hist.data(), hist.size(), offsets.data());
    benchmark::DoNotOptimize(offsets.data());
  }
  state.counters["N"] = static_cast<double>(n);
  state.counters["B"] = kBits;
  state.counters["checksum_lo32"] = static_cast<double>(
      Fnv1a(offsets.data(), offsets.size() * sizeof(uint64_t)) & 0xffffffffu);
}
BENCHMARK(BM_DispatchRadixCount)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_DispatchGather(benchmark::State& state) {
  size_t n = radix::bench::ScaledN(8'000'000, 1'000'000);
  static std::pair<std::vector<uint32_t>, std::vector<value_t>> input = [&] {
    std::vector<uint32_t> ids(n);
    std::vector<value_t> values(n);
    Rng rng(43);
    for (size_t i = 0; i < n; ++i) {
      ids[i] = static_cast<uint32_t>(rng.Below(n));
      values[i] = static_cast<value_t>(rng.Next());
    }
    return std::pair{std::move(ids), std::move(values)};
  }();
  const simd::KernelTable& table = DispatchTable(state);
  std::vector<value_t> out(n);
  for (auto _ : state) {
    table.gather_i32(input.first.data(), n, input.second.data(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["N"] = static_cast<double>(n);
  state.counters["checksum_lo32"] = static_cast<double>(
      Fnv1a(out.data(), out.size() * sizeof(value_t)) & 0xffffffffu);
}
BENCHMARK(BM_DispatchGather)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_DispatchScatter(benchmark::State& state) {
  size_t n = radix::bench::ScaledN(8'000'000, 1'000'000);
  constexpr radix_bits_t kBits = 10;
  constexpr size_t kBuckets = size_t{1} << kBits;
  static std::vector<uint64_t> tuples = [&] {
    std::vector<uint64_t> v(n);
    Rng rng(47);
    for (auto& x : v) x = rng.Next();
    return v;
  }();
  const simd::KernelTable& table = DispatchTable(state);
  // Radix of a tuple = its low bits; one full clustering scatter per
  // iteration, through WcScatter64 exactly when the selected table
  // streams (the production policy).
  std::vector<uint64_t> hist(kBuckets);
  std::vector<uint64_t> cursor(kBuckets + 1);
  std::vector<uint64_t> out(n);
  std::vector<uint32_t> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = static_cast<uint32_t>(tuples[i]);
  for (auto _ : state) {
    std::fill(hist.begin(), hist.end(), 0);
    table.radix_histogram(keys.data(), n, 0, kBits, hist.data());
    table.prefix_sum(hist.data(), kBuckets, cursor.data());
    if (table.nt_scatter) {
      simd::WcScatter64 wc(out.data(), kBuckets, cursor.data());
      for (size_t i = 0; i < n; ++i) {
        wc.Push(RadixBits(keys[i], 0, kBits), tuples[i]);
      }
      wc.Flush();
    } else {
      for (size_t i = 0; i < n; ++i) {
        out[cursor[RadixBits(keys[i], 0, kBits)]++] = tuples[i];
      }
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["N"] = static_cast<double>(n);
  state.counters["B"] = kBits;
  state.counters["nt_scatter"] = table.nt_scatter ? 1 : 0;
  state.counters["checksum_lo32"] = static_cast<double>(
      Fnv1a(out.data(), out.size() * sizeof(uint64_t)) & 0xffffffffu);
}
BENCHMARK(BM_DispatchScatter)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
