// Operator-layer pipeline benchmark: a select -> join -> group-aggregate
// query run through the composable chunk-at-a-time operators (with the
// optimizer's per-edge Fig. 10 strategies) versus a hand-fused
// tuple-at-a-time baseline of the same query. The gap is the price of
// composability; the `modeled_ms` counter carries the optimizer's
// prediction next to the measured time, extending the paper's
// modeled-vs-measured methodology to whole plan trees.

#include <benchmark/benchmark.h>

#include <memory>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "common/thread_pool.h"
#include "ops/executor.h"
#include "ops/optimizer.h"
#include "ops/plan.h"
#include "ops/table.h"
#include "workload/chain.h"

namespace {

using namespace radix;  // NOLINT

// PayloadValue is uniform over [0, 2^31); the midpoint keeps ~half the rows.
constexpr value_t kSelectBound = value_t{1} << 30;

const workload::ChainWorkload& Chain() {
  static const workload::ChainWorkload w = [] {
    workload::ChainWorkloadSpec spec;
    const size_t n = radix::bench::ScaledN(1u << 20, 1u << 17);
    spec.cardinalities = {n, n / 2, n};
    spec.num_attrs = 4;
    return workload::MakeChainWorkload(spec);
  }();
  return w;
}

const ops::Catalog& ChainCatalog() {
  static const ops::Catalog catalog =
      ops::CatalogFromChainWorkload(Chain());
  return catalog;
}

/// σ(t0.a1 < bound) |X| t1 |X| t2, grouped by t2.a1: sum(t0.a1), count.
ops::LogicalPlan PipelinePlan() {
  ops::Predicate pred;
  pred.col = {0, 1, false};
  pred.op = ops::CmpOp::kLt;
  pred.value = kSelectBound;
  ops::LogicalPlan plan;
  plan.root = ops::Aggregate(
      ops::Join(ops::Join(ops::Select(ops::Scan(0), pred), ops::Scan(1), 0, 1),
                ops::Scan(2), 1, 2),
      {{2, 1, false}},
      {{ops::AggFn::kSum, {0, 1, false}}, {ops::AggFn::kCount, {}}});
  return plan;
}

void BM_OpsPipeline(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  const ops::Catalog& catalog = ChainCatalog();
  ops::LogicalPlan plan = PipelinePlan();

  ops::PhysicalPlan physical;
  Status opt = ops::Optimize(catalog, plan, radix::bench::BenchHw(),
                             costmodel::CpuCosts::Default(), threads,
                             &physical);
  RADIX_CHECK(opt.ok());
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

  size_t rows = 0;
  uint64_t checksum = 0;
  for (auto _ : state) {
    ops::ExecOptions options;
    options.hw = &radix::bench::BenchHw();
    options.pool = pool.get();
    ops::PlanRun run;
    Status status = ops::ExecutePlan(catalog, plan, physical, options, &run);
    RADIX_CHECK(status.ok());
    rows = run.result_rows;
    checksum = run.checksum;
    benchmark::DoNotOptimize(checksum);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["groups"] = static_cast<double>(rows);
  state.counters["modeled_ms"] = physical.modeled_seconds * 1e3;
  state.counters["edges"] = static_cast<double>(physical.edges.size());
}

/// The same query as one hand-written tuple-at-a-time loop nest: no
/// operators, no chunks, no radix machinery — the fused baseline a person
/// would write for exactly this query and nothing else.
void BM_HandFusedPipeline(benchmark::State& state) {
  const workload::ChainWorkload& w = Chain();
  const auto& k0 = w.tables[0].key();
  const auto& a01 = w.tables[0].attr(1);
  const auto& k1 = w.tables[1].key();
  const auto& k2 = w.tables[2].key();
  const auto& a21 = w.tables[2].attr(1);
  const size_t n0 = w.tables[0].cardinality();

  size_t groups = 0;
  for (auto _ : state) {
    // Build sides once per query, as the operator pipeline must.
    std::unordered_map<value_t, oid_t> h1(w.tables[1].cardinality() * 2);
    for (size_t j = 0; j < w.tables[1].cardinality(); ++j) {
      h1.emplace(k1[j], static_cast<oid_t>(j));
    }
    std::unordered_map<value_t, oid_t> h2(w.tables[2].cardinality() * 2);
    for (size_t j = 0; j < w.tables[2].cardinality(); ++j) {
      h2.emplace(k2[j], static_cast<oid_t>(j));
    }
    struct Acc {
      int64_t sum = 0;
      int64_t count = 0;
    };
    std::unordered_map<value_t, Acc> agg;
    for (size_t i = 0; i < n0; ++i) {
      if (a01[i] >= kSelectBound) continue;
      auto it1 = h1.find(k0[i]);
      if (it1 == h1.end()) continue;
      auto it2 = h2.find(k1[it1->second]);
      if (it2 == h2.end()) continue;
      Acc& acc = agg[a21[it2->second]];
      acc.sum += a01[i];
      acc.count += 1;
    }
    groups = agg.size();
    benchmark::DoNotOptimize(groups);
  }
  state.counters["groups"] = static_cast<double>(groups);
}

void Args(benchmark::internal::Benchmark* b) {
  b->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond)->Iterations(1);
}

}  // namespace

BENCHMARK(BM_OpsPipeline)->Apply(Args);
BENCHMARK(BM_HandFusedPipeline)->Unit(benchmark::kMillisecond)->Iterations(1);

BENCHMARK_MAIN();
